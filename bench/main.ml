(* The benchmark harness: regenerates every table/figure of the paper
   (one section per experiment id of DESIGN.md), then runs bechamel
   micro-benchmarks over the performance-critical kernels.

   The model-checking experiments are single-shot wall-clock rows (a
   4-node SAT/BDD run is minutes, far outside bechamel's regime); the
   default uses 3-node clusters so a full run finishes in about a
   minute — pass --paper-scale for the 4-node runs recorded in
   EXPERIMENTS.md. Numeric experiments re-verify the paper's constants
   on every run. *)

let paper_scale = Array.exists (( = ) "--paper-scale") Sys.argv
let skip_micro = Array.exists (( = ) "--no-micro") Sys.argv

(* Quick mode for CI and iteration on the image-computation fast path:
   run only the reach suite (and write BENCH_bdd.json), skipping the
   full table/figure reproduction. *)
let reach_only = Array.exists (( = ) "--reach-only") Sys.argv

(* Quick mode for CI and iteration on warm solver sessions: run only
   the warm-vs-cold near-miss stream (and write BENCH_sessions.json),
   skipping the full table/figure reproduction. *)
let sessions_only = Array.exists (( = ) "--sessions-only") Sys.argv

(* Quick mode for the guardian design-space synthesizer: one seeded
   sweep on the direct pool path, the same sweep again as warm-session
   traffic through an in-process daemon, verdict agreement enforced,
   BENCH_synth.json written. *)
let synth_only = Array.exists (( = ) "--synth-only") Sys.argv

let nodes = if paper_scale then 4 else 3

let heading fmt =
  Printf.ksprintf
    (fun s ->
      Printf.printf "\n%s\n%s\n" s (String.make (String.length s) '-'))
    fmt

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Section 5 results: one row per configuration (E1-E5). *)

let measured_of verdict =
  match verdict with
  | Tta_model.Engine.Holds { detail } -> "holds (" ^ detail ^ ")"
  | Tta_model.Engine.Violated { trace; model } ->
      let ok =
        match Symkit.Trace.validate model trace with
        | Ok () -> "validated"
        | Error e -> "INVALID: " ^ e
      in
      Printf.sprintf "violated by a %d-step trace (%s)" (Array.length trace)
        ok
  | Tta_model.Engine.Unknown { detail } -> "unknown (" ^ detail ^ ")"

(* Machine-readable Section 5 results: per-config outcome and wall
   time plus the full telemetry (whose records carry each run's
   counters). Consumed by CI as a build artifact. *)
let bench_json_path = "BENCH_portfolio.json"

let write_bench_json telemetry results dt =
  let row ((j : Portfolio.job), (r : Portfolio.result)) =
    Json.Obj
      [
        ("label", Json.String j.Portfolio.label);
        ( "engine",
          Json.String (Tta_model.Engine.id_to_string r.Portfolio.engine) );
        ( "outcome",
          Json.String
            (Portfolio.Telemetry.outcome_to_string
               (Portfolio.Telemetry.outcome_of_verdict r.Portfolio.verdict)) );
        ("wall_s", Json.Float r.Portfolio.wall_s);
        ("cache_hit", Json.Bool r.Portfolio.cache_hit);
      ]
  in
  let j =
    Json.Obj
      [
        ("nodes", Json.Int nodes);
        ("paper_scale", Json.Bool paper_scale);
        ("matrix_wall_s", Json.Float dt);
        ("configs", Json.List (List.map row results));
        ("telemetry", Portfolio.Telemetry.to_json telemetry);
      ]
  in
  let oc = open_out_bin bench_json_path in
  output_string oc (Json.to_string ~pretty:true j);
  output_char oc '\n';
  close_out oc

let section5 () =
  heading "Section 5.2 — star-coupler fault tolerance (%d nodes, %s)" nodes
    (if paper_scale then "paper scale"
     else "reduced scale; --paper-scale for 4 nodes");
  (* The six verdict rows (E1-E5 plus the E9 SAT-BMC ablation) run
     through the portfolio pool — same engines and depths as before,
     now drained by Domain workers. No verdict cache here: the bench
     exists to measure the actual checking time. *)
  let telemetry = Portfolio.Telemetry.create () in
  let jobs = Portfolio.section5_jobs ~nodes () in
  let expects = [ "holds"; "holds"; "holds"; "violated"; "violated";
                  "violated" ] in
  let results, dt =
    timed (fun () -> Portfolio.run_matrix ~telemetry jobs)
  in
  List.iter2
    (fun expect ((j : Portfolio.job), (r : Portfolio.result)) ->
      Printf.printf "%-36s expect: %-10s got: %s [%.1fs]\n%!"
        j.Portfolio.label expect
        (measured_of r.Portfolio.verdict)
        r.Portfolio.wall_s)
    expects results;
  Printf.printf "matrix wall clock on %d domain(s): %.1fs\n%!"
    (Portfolio.Pool.default_domains ()) dt;
  Format.printf "%a%!" Portfolio.Telemetry.pp_table telemetry;
  write_bench_json telemetry results dt;
  Printf.printf "machine-readable results written to %s\n%!" bench_json_path

(* ------------------------------------------------------------------ *)
(* Section 6 numbers and Figure 3 (E6, E7). *)

let section6 () =
  heading "Section 6 — buffer-size tradeoffs (E6)";
  List.iter
    (fun (e : Analysis.Buffer.worked_example) ->
      Printf.printf "  %-40s = %.6g %s\n" e.Analysis.Buffer.label
        e.Analysis.Buffer.result e.Analysis.Buffer.unit_)
    (Analysis.Buffer.worked_examples ());
  print_endline "  paper: 115,000 bits / 30.26% / 1.11%";
  heading "Figure 3 — clock-ratio limit vs frame-size range (E7)";
  List.iter
    (fun s -> Format.printf "%a@." Analysis.Figure3.pp_series s)
    (Analysis.Figure3.default_families ());
  match Analysis.Figure3.highlighted_point () with
  | Some r ->
      Printf.printf
        "  highlighted point (128, 128): ratio = %.1f (paper: f_max/5)\n" r
  | None -> print_endline "  highlighted point infeasible (unexpected!)"

(* ------------------------------------------------------------------ *)
(* E8: leaky-bucket validation of equation (1). *)

let section_leaky () =
  heading "Leaky bucket — measured occupancy vs B_min (E8)";
  Printf.printf "  %-10s %-10s %-8s %-10s %-8s\n" "node rate" "hub rate"
    "frame" "measured" "B_min";
  List.iter
    (fun (node_rate, guardian_rate, frame_bits) ->
      let measured =
        Guardian.Leaky_bucket.required_buffer ~node_rate ~guardian_rate
          ~frame_bits ~le:4
      in
      let bound =
        Guardian.Leaky_bucket.analytic_bound ~node_rate ~guardian_rate
          ~frame_bits ~le:4
      in
      Printf.printf "  %-10g %-10g %-8d %-10d %-8.1f\n" node_rate guardian_rate
        frame_bits measured bound)
    [
      (1.0, 1.0002, 2076);
      (1.0002, 1.0, 2076);
      (1.0, 1.0111, 2076);
      (1.0, 1.1, 2076);
      (1.0, 1.3026, 76);
    ]

(* ------------------------------------------------------------------ *)
(* E10: simulator reproduction + campaign summary. *)

let section_sim () =
  heading "Simulator — replay vs passive faults (E10) and campaigns";
  let o = Core.Experiments.e10 () in
  Printf.printf "  %s\n  -> %s [%s]\n" o.Core.Experiments.title
    o.Core.Experiments.measured
    (if o.Core.Experiments.matches then "REPRODUCED" else "MISMATCH");
  Printf.printf
    "\n  campaign (16 trials/feature set, one random coupler fault each):\n";
  Printf.printf "  %-16s %-14s %-14s %-14s\n" "feature set" "healthy froze"
    "majority lost" "reintegr. blocked";
  List.iter
    (fun feature_set ->
      let s =
        Sim.Campaign.summarize
          (Sim.Campaign.run ~feature_set ~nodes:4 ~trials:16 ())
      in
      Printf.printf "  %-16s %-14d %-14d %-14d\n"
        (Guardian.Feature_set.to_string feature_set)
        s.Sim.Campaign.with_healthy_freeze s.Sim.Campaign.with_cluster_loss
        s.Sim.Campaign.with_integration_block)
    Guardian.Feature_set.all

(* ------------------------------------------------------------------ *)
(* Extension experiments: E11 (mailbox trap), E12 (clock drift),
   E13 (bus vs star). *)

let section_extensions () =
  let open Ttp in
  let medl = Medl.uniform ~nodes:4 () in
  heading "E11 — the data-continuity mailbox: a fault-free failure";
  let c =
    Sim.Cluster.create ~feature_set:Guardian.Feature_set.Full_shifting
      ~data_continuity:true medl
  in
  ignore (Sim.Cluster.boot c);
  Controller.host_freeze (Sim.Cluster.controller c 3);
  ignore
    (Sim.Cluster.run_until c ~max_slots:12 (fun c ->
         Controller.slot (Sim.Cluster.controller c 0) = 2
         && Controller.state (Sim.Cluster.controller c 0) = Controller.Active));
  Sim.Cluster.start_node c 3;
  Sim.Cluster.run c ~slots:18;
  Printf.printf
    "  mailbox substitutions: %d; re-integrating node expelled with zero \
     faults: %b\n"
    (Guardian.Coupler.substitutions (Sim.Cluster.coupler c 0))
    (Controller.freeze_cause (Sim.Cluster.controller c 3)
    = Some Controller.Clique_error);

  heading "E12 — oscillator drift (one 4000 ppm node, 120 slots)";
  Printf.printf "  %-40s %-9s %-14s\n" "configuration" "freezes"
    "clock spread";
  let drift_row label feature_set sync window =
    let c = Sim.Cluster.create ~feature_set medl in
    Sim.Cluster.set_drift c
      (Sim.Clock_model.create ~sync ~window ~ppm:[| 0.0; 0.0; 0.0; 4000.0 |] ());
    ignore (Sim.Cluster.boot c);
    Sim.Cluster.run c ~slots:120;
    let spread =
      match Sim.Cluster.drift c with
      | Some d -> Sim.Clock_model.spread d
      | None -> nan
    in
    Printf.printf "  %-40s %-9d %-14.2f\n" label
      (List.length (Sim.Event_log.freezes (Sim.Cluster.log c)))
      spread
  in
  drift_row "time-windows, no clock sync" Guardian.Feature_set.Time_windows
    false 1.0;
  drift_row "time-windows, FTA clock sync" Guardian.Feature_set.Time_windows
    true 1.0;
  drift_row "small-shifting (reshaping), no sync"
    Guardian.Feature_set.Small_shifting false 30.0;

  heading "E13 — bus (Figure 1) vs star (Figure 2): the babbling idiot";
  let bus_row label guardian_fault =
    let b = Sim.Bus.create medl in
    ignore (Sim.Bus.boot b);
    Sim.Bus.set_node_fault b ~node:3 (Sim.Node_fault.Babbling { in_slot = 1 });
    (match guardian_fault with
    | Some gf -> Sim.Bus.set_guardian_fault b ~node:3 gf
    | None -> ());
    Sim.Bus.run b ~slots:40;
    Printf.printf "  %-44s active nodes after: %d/4\n" label
      (Sim.Bus.count_in_state b Controller.Active)
  in
  bus_row "bus, babbler, healthy local guardian" None;
  bus_row "bus, babbler, its local guardian stuck open"
    (Some Sim.Bus.G_stuck_open);
  let star = Sim.Cluster.create ~feature_set:Guardian.Feature_set.Time_windows medl in
  ignore (Sim.Cluster.boot star);
  Sim.Cluster.set_node_fault star ~node:3
    (Sim.Node_fault.Babbling { in_slot = 1 });
  Sim.Cluster.run star ~slots:40;
  Printf.printf "  %-44s active nodes after: %d/4\n"
    "star, babbler, central time-window guardian"
    (Sim.Cluster.count_in_state star Controller.Active)

(* ------------------------------------------------------------------ *)
(* Image-computation fast path: the full Section 5 verdict matrix
   (E1-E5) through every fixpoint strategy (BFS, chaining, saturation)
   crossed with multi-domain image computation and dynamic variable
   reordering — twelve combinations per configuration, all of which
   must agree on the verdict and counterexample length (and on the
   iteration count among the BFS-shaped strategies). A budgeted
   monolithic-relprod run per configuration is the pre-optimization
   baseline the headline speedup is measured against; at paper scale
   the baseline routinely exhausts its budget, so the recorded speedup
   is a lower bound. Writes BENCH_bdd.json for CI. *)

let bdd_json_path = "BENCH_bdd.json"

let section_reach () =
  heading
    "Image-computation fast path — strategies x domains x reordering (%d \
     nodes)"
    nodes;
  let par_n = if paper_scale then 4 else 2 in
  let reorder_w = if paper_scale then 200_000 else 20_000 in
  let budget_s = if paper_scale then 120.0 else 60.0 in
  let configs =
    [
      ("E1 passive", nodes, Tta_model.Configs.passive ~nodes ());
      ("E2 time-windows", nodes, Tta_model.Configs.time_windows ~nodes ());
      ( "E3 small-shifting",
        nodes,
        Tta_model.Configs.small_shifting ~nodes () );
      ("E4 full-shifting", nodes, Tta_model.Configs.full_shifting ~nodes ());
      (* The C-state-duplication instance needs three participants. *)
      ( "E5 full-shifting-nodup",
        max 3 nodes,
        Tta_model.Configs.full_shifting ~nodes:(max 3 nodes)
          ~forbid_cold_start_duplication:true () );
    ]
  in
  let strategies =
    [
      ("bfs", Symkit.Reach.Bfs);
      ("chaining", Symkit.Reach.Chaining);
      ("saturation", Symkit.Reach.Saturation);
    ]
  in
  let combos =
    List.concat_map
      (fun (sname, s) ->
        List.concat_map
          (fun par ->
            List.map
              (fun rw ->
                let label =
                  sname
                  ^ (if par > 1 then Printf.sprintf "-par%d" par else "")
                  ^ if rw > 0 then "-reorder" else ""
                in
                ( label,
                  {
                    Symkit.Reach.default_tuning with
                    Symkit.Reach.strategy = s;
                    par_domains = par;
                    reorder_watermark = rw;
                  } ))
              [ 0; reorder_w ])
          [ 1; par_n ])
      strategies
  in
  Printf.printf "  %-24s %-22s %-9s %4s %6s %4s %8s\n" "config" "combo"
    "verdict" "len" "iters" "ro" "time";
  let run_one cfg_name cfg_nodes cfg (label, tuning) =
    let mgr = Bdd.create_manager () in
    let enc = Symkit.Enc.create mgr (Tta_model.Build.model cfg) in
    let bad = Tta_model.Props.integrated_node_frozen ~nodes:cfg_nodes in
    let result, wall =
      timed (fun () -> Symkit.Reach.check ~max_iterations:100 ~tuning enc ~bad)
    in
    let verdict, trace_len, stats =
      match result with
      | Symkit.Reach.Safe s -> ("safe", 0, s)
      | Symkit.Reach.Unsafe (t, s) -> ("violated", Array.length t, s)
      | Symkit.Reach.Depth_exhausted s -> ("exhausted", 0, s)
    in
    let partitions =
      if tuning.Symkit.Reach.partitioned then Symkit.Enc.n_partitions enc
      else 1
    in
    Printf.printf "  %-24s %-22s %-9s %4d %6d %4d %7.2fs\n%!" cfg_name label
      verdict trace_len stats.Symkit.Reach.iterations (Bdd.reorder_count mgr)
      wall;
    ( Json.Obj
        [
          ("config", Json.String cfg_name);
          ("combo", Json.String label);
          ( "strategy",
            Json.String
              (match tuning.Symkit.Reach.strategy with
              | Symkit.Reach.Bfs -> "bfs"
              | Symkit.Reach.Chaining -> "chaining"
              | Symkit.Reach.Saturation -> "saturation") );
          ("par_domains", Json.Int tuning.Symkit.Reach.par_domains);
          ("reorder_watermark", Json.Int tuning.Symkit.Reach.reorder_watermark);
          ("verdict", Json.String verdict);
          ("trace_len", Json.Int trace_len);
          ("iterations", Json.Int stats.Symkit.Reach.iterations);
          ("peak_nodes", Json.Int stats.Symkit.Reach.peak_nodes);
          ("partitions", Json.Int partitions);
          ("gc_count", Json.Int (Bdd.gc_count mgr));
          ("reorder_count", Json.Int (Bdd.reorder_count mgr));
          ("reorder_gain", Json.Int (Bdd.reorder_gain mgr));
          ("live_nodes", Json.Int (Bdd.live_nodes mgr));
          ("bdd_peak_nodes", Json.Int (Bdd.peak_nodes mgr));
          ("wall_s", Json.Float wall);
        ],
      (verdict, trace_len, stats.Symkit.Reach.iterations, wall) )
  in
  let all_agree = ref true in
  let rows = ref [] in
  let baseline_rows = ref [] in
  let speedups = ref [] in
  let tuned = ref [] in
  List.iter
    (fun (cfg_name, cfg_nodes, cfg) ->
      let runs = List.map (run_one cfg_name cfg_nodes cfg) combos in
      rows := !rows @ List.map fst runs;
      (* Agreement: verdict and trace length across all twelve combos;
         iteration counts additionally among the BFS-shaped rows
         (saturation counts outer sweeps and converges in fewer). *)
      let outcomes = List.map (fun (_, (v, l, _, _)) -> (v, l)) runs in
      if not (List.for_all (( = ) (List.hd outcomes)) outcomes) then begin
        all_agree := false;
        Printf.printf "  %-24s DISAGREEMENT across combos!\n" cfg_name
      end;
      let bfs_shaped =
        List.filteri
          (fun i _ ->
            let label, _ = List.nth combos i in
            not
              (String.length label >= 10
              && String.sub label 0 10 = "saturation"))
          runs
      in
      let iters = List.map (fun (_, (_, _, i, _)) -> i) bfs_shaped in
      if not (List.for_all (( = ) (List.hd iters)) iters) then begin
        all_agree := false;
        Printf.printf "  %-24s BFS-shaped iteration counts diverge!\n" cfg_name
      end;
      let v, l, _, w = snd (List.hd runs) in
      tuned := !tuned @ [ (cfg_name, cfg_nodes, cfg, v, l, w) ])
    configs;
  (* The pre-optimization baseline, measured last so that an abandoned
     baseline cannot pollute the combo timings above: one monolithic
     relprod per configuration, run under the supervisor's hang
     watchdog because at paper scale the monolithic transition relation
     blows up *inside* one image step, where cooperative cancellation
     cannot reach it. A baseline that exhausts its budget is recorded
     as a lower bound on the speedup. The GC watermark (absent from the
     seed monolithic tuning, which predates node GC) only bounds the
     abandoned run's memory; it does not help it finish. *)
  let baseline_tuning =
    {
      Symkit.Reach.monolithic_tuning with
      Symkit.Reach.gc_watermark = 1_000_000;
    }
  in
  let policy =
    {
      Resilience.Supervisor.default with
      Resilience.Supervisor.retries = 0;
      watchdog_s = Some budget_s;
      hang_grace_s = 1.0;
    }
  in
  let engine = Tta_model.Engine.get Tta_model.Engine.Bdd_reach in
  List.iter
    (fun (cfg_name, _cfg_nodes, cfg, tv, tlen, tuned_wall) ->
      let o =
        Resilience.Supervisor.run ~policy ~max_depth:100
          ~reach_tuning:baseline_tuning engine cfg
      in
      let bv, blen =
        match o.Resilience.Supervisor.result with
        | Ok r -> (
            match r.Tta_model.Engine.verdict with
            | Tta_model.Engine.Holds _ -> ("safe", 0)
            | Tta_model.Engine.Violated { trace; _ } ->
                ("violated", Array.length trace)
            | Tta_model.Engine.Unknown _ -> ("exhausted", 0))
        | Error (Resilience.Supervisor.Hung _) -> ("hung", 0)
        | Error (Resilience.Supervisor.Crashed _) -> ("crashed", 0)
      in
      let bwall = o.Resilience.Supervisor.wall_s in
      let completed = bv = "safe" || bv = "violated" in
      if completed && (bv, blen) <> (tv, tlen) then begin
        all_agree := false;
        Printf.printf "  %-24s baseline verdict disagrees!\n" cfg_name
      end;
      Printf.printf "  %-24s %-22s %-9s %4d %18.2fs\n%!" cfg_name
        "monolithic-baseline" bv blen bwall;
      baseline_rows :=
        !baseline_rows
        @ [
            Json.Obj
              [
                ("config", Json.String cfg_name);
                ("verdict", Json.String bv);
                ("trace_len", Json.Int blen);
                ("wall_s", Json.Float bwall);
                ("completed", Json.Bool completed);
              ];
          ];
      let speedup = bwall /. tuned_wall in
      Printf.printf "  %-24s speedup vs monolithic baseline: %.1fx%s\n%!"
        cfg_name speedup
        (if completed then "" else " (baseline budget exhausted; lower bound)");
      speedups := !speedups @ [ (cfg_name, Json.Float speedup) ])
    !tuned;
  let min_speedup =
    List.fold_left
      (fun acc (_, j) -> match j with Json.Float f -> min acc f | _ -> acc)
      infinity !speedups
  in
  let j =
    Json.Obj
      [
        ("nodes", Json.Int nodes);
        ("paper_scale", Json.Bool paper_scale);
        ("par_domains", Json.Int par_n);
        ("reorder_watermark", Json.Int reorder_w);
        ("baseline_budget_s", Json.Float budget_s);
        ("verdicts_agree", Json.Bool !all_agree);
        ("min_speedup_vs_monolithic", Json.Float min_speedup);
        ("speedup", Json.Obj !speedups);
        ("baseline", Json.List !baseline_rows);
        ("rows", Json.List !rows);
      ]
  in
  let oc = open_out_bin bdd_json_path in
  output_string oc (Json.to_string ~pretty:true j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "machine-readable results written to %s\n%!" bdd_json_path

(* ------------------------------------------------------------------ *)
(* E15: sensitivity of the BDD engine to the variable order, measured
   as peak BDD size and proof time of the passive-configuration
   fixpoint. All orders must agree on the verdict. *)

let section_orders () =
  heading "E15 — BDD variable-order sensitivity (passive config, %d nodes)"
    nodes;
  let cfg = Tta_model.Configs.passive ~nodes () in
  let model = Tta_model.Build.model cfg in
  let bad = Tta_model.Props.integrated_node_frozen ~nodes in
  Printf.printf "  %-48s %-10s %-12s %-8s\n" "order" "verdict" "peak nodes"
    "time";
  List.iter
    (fun (label, order) ->
      let enc =
        Symkit.Enc.create ~var_order:order (Bdd.create_manager ()) model
      in
      let result, dt =
        timed (fun () -> Symkit.Reach.check ~max_iterations:100 enc ~bad)
      in
      let verdict, peak =
        match result with
        | Symkit.Reach.Safe s -> ("safe", s.Symkit.Reach.peak_nodes)
        | Symkit.Reach.Unsafe (_, s) -> ("VIOLATED?!", s.Symkit.Reach.peak_nodes)
        | Symkit.Reach.Depth_exhausted s ->
            ("exhausted", s.Symkit.Reach.peak_nodes)
      in
      Printf.printf "  %-48s %-10s %-12d %.1fs\n%!" label verdict peak dt)
    (Tta_model.Build.var_order_strategies cfg)

(* ------------------------------------------------------------------ *)
(* E17: why model checking and not fault injection — random walks on
   the very same formal model essentially never assemble the precise
   conjunction of choices the replay failure needs, while BMC derives
   it deterministically. *)

let section_walks () =
  heading
    "E17 — random-walk fault injection vs model checking (full shifting, 2 \
     nodes)";
  let cfg = Tta_model.Configs.full_shifting ~nodes:2 () in
  let ctx = Tta_model.Exec.make_ctx cfg in
  let model = Tta_model.Exec.model ctx in
  let bad_pred = Tta_model.Props.integrated_node_frozen ~nodes:2 in
  let bad s = Symkit.Model.eval_pred model bad_pred s in
  let rng = Random.State.make [| 42 |] in
  let (hits, walks), dt =
    timed (fun () ->
        let walks = if paper_scale then 3000 else 1000 in
        (Tta_model.Exec.random_walks ctx rng ~walks ~depth:14 ~bad, walks))
  in
  Printf.printf
    "  random walks (depth 14):        %d/%d hit the failure [%.1fs]\n" hits
    walks dt;
  let verdict, dt =
    timed (fun () ->
        let enc = Symkit.Enc.create (Bdd.create_manager ()) model in
        Symkit.Bmc.check ~max_depth:14 enc ~bad:bad_pred)
  in
  (match verdict with
  | Symkit.Bmc.Counterexample trace ->
      Printf.printf
        "  SAT bounded model checking:     counterexample, %d steps [%.1fs]\n"
        (Array.length trace) dt
  | Symkit.Bmc.No_counterexample d ->
      Printf.printf "  SAT BMC: unexpectedly clean to depth %d [%.1fs]\n"
        (Option.value ~default:(-1) d)
        dt);
  print_endline
    "  (the paper's predecessors used hardware/software fault injection;\n\
    \   this asymmetry is why Section 3 reaches for a model checker)"

(* ------------------------------------------------------------------ *)
(* E16: the asynchronous masquerade (the paper's concluding claim). *)

let section_async () =
  heading "E16 — asynchronous (CAN-like) masquerade and the identification fix";
  let senders () =
    [| Sim.Async_net.sender ~can_id:1 ~period:7;
       Sim.Async_net.sender ~can_id:3 ~period:5 |]
  in
  Printf.printf "  %-42s %-10s %-12s %-10s %-10s\n" "configuration" "accepted"
    "masquerades" "staleness" "detected";
  List.iter
    (fun (label, gateway, check_sequence) ->
      let net = Sim.Async_net.create ~check_sequence ~gateway (senders ()) in
      Sim.Async_net.run net ~ticks:200;
      let r = Sim.Async_net.reception net in
      Printf.printf "  %-42s %-10d %-12d %-10d %-10d\n" label
        r.Sim.Async_net.accepted r.Sim.Async_net.stale_accepted
        r.Sim.Async_net.max_staleness r.Sim.Async_net.replays_detected)
    [
      ("transparent gateway", Sim.Async_net.Transparent, false);
      ( "buffering gateway (CAN emulation)",
        Sim.Async_net.Store_and_forward { replay_at = [ 11; 23; 41; 83 ] },
        false );
      ( "buffering gateway + sequence numbers",
        Sim.Async_net.Store_and_forward { replay_at = [ 11; 23; 41; 83 ] },
        true );
    ]

(* ------------------------------------------------------------------ *)
(* Warm solver sessions: a seeded near-miss stream (the same model
   families asked at climbing bounds, interleaved) served twice — cold,
   with a fresh session per query, and warm, against one shared pool.
   The bench enforces verdict equality itself: any cold/warm
   disagreement is a hard failure, not a JSON field for CI to notice. *)

let sessions_json_path = "BENCH_sessions.json"

let section_sessions () =
  (* 2-node families: the stream measures the latency distribution of
     state reuse, not checking scale, and 20 cold BMC runs at 3 nodes
     would dominate the suite's wall clock for no extra signal. *)
  let snodes = 2 in
  heading "Warm solver sessions — near-miss stream, cold vs pooled (%d nodes)"
    snodes;
  let families =
    [
      ("passive", Tta_model.Configs.passive ~nodes:snodes ());
      ("time-windows", Tta_model.Configs.time_windows ~nodes:snodes ());
      ("small-shifting", Tta_model.Configs.small_shifting ~nodes:snodes ());
      ("full-shifting", Tta_model.Configs.full_shifting ~nodes:snodes ());
    ]
  in
  (* Depth-major interleave: a climbing ratchet to 12, then a backfill
     round at the intermediate bounds a client probing for a minimal
     counterexample would ask next. Every query is a distinct
     (family, bound) pair — none could be answered by the exact-key
     verdict cache — but the backfill bounds sit under the session's
     clean depth, so the memo answers them instantly while a cold
     solver re-unrolls and re-solves from scratch. *)
  let stream =
    List.concat_map
      (fun depth -> List.map (fun (n, c) -> (n, c, depth)) families)
      [ 4; 6; 8; 10; 12; 5; 7; 9; 11 ]
  in
  let engine = Tta_model.Engine.Sat_bmc in
  let verdict_key = function
    | Tta_model.Engine.Holds { detail } -> "holds: " ^ detail
    | Tta_model.Engine.Unknown { detail } -> "unknown: " ^ detail
    | Tta_model.Engine.Violated { trace; _ } ->
        Printf.sprintf "violated in %d steps" (Array.length trace)
  in
  let pool = Sessions.create () in
  let run_query ~warm (name, cfg, depth) =
    let p = if warm then pool else Sessions.create () in
    let (r, attr), wall =
      timed (fun () -> Sessions.run p ~engine ~max_depth:depth cfg)
    in
    (name, depth, verdict_key r.Tta_model.Engine.verdict, wall *. 1000., attr)
  in
  let cold = List.map (run_query ~warm:false) stream in
  let warm = List.map (run_query ~warm:true) stream in
  let percentile p ms =
    let a = Array.of_list ms in
    Array.sort compare a;
    let n = Array.length a in
    a.(max 0 (min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1)))
  in
  let all_agree = ref true in
  Printf.printf "  %-16s %5s %-28s %9s %9s %5s\n" "family" "depth" "verdict"
    "cold" "warm" "hit";
  let rows =
    List.map2
      (fun (name, depth, vc, cold_ms, _) (name', depth', vw, warm_ms, attr) ->
        assert (name = name' && depth = depth');
        if vc <> vw then begin
          all_agree := false;
          Printf.printf
            "  %-16s %5d VERDICT MISMATCH: cold %S vs warm %S\n%!" name depth
            vc vw
        end
        else
          Printf.printf "  %-16s %5d %-28s %7.1fms %7.1fms %5s\n%!" name depth
            vc cold_ms warm_ms
            (if attr.Sessions.reused then "warm" else "cold");
        Json.Obj
          [
            ("family", Json.String name);
            ("depth", Json.Int depth);
            ("verdict", Json.String vc);
            ("cold_ms", Json.Float cold_ms);
            ("warm_ms", Json.Float warm_ms);
            ("reused", Json.Bool attr.Sessions.reused);
            ("warm_depth", Json.Int attr.Sessions.warm_depth);
          ])
      cold warm
  in
  let ms_of qs = List.map (fun (_, _, _, ms, _) -> ms) qs in
  let cold_p50 = percentile 50. (ms_of cold)
  and cold_p95 = percentile 95. (ms_of cold)
  and warm_p50 = percentile 50. (ms_of warm)
  and warm_p95 = percentile 95. (ms_of warm) in
  let reused =
    List.length (List.filter (fun (_, _, _, _, a) -> a.Sessions.reused) warm)
  in
  let speedup_p50 = cold_p50 /. warm_p50
  and speedup_p95 = cold_p95 /. warm_p95 in
  let s = Sessions.stats pool in
  Printf.printf
    "  p50: cold %.1fms, warm %.1fms (%.1fx)   p95: cold %.1fms, warm %.1fms \
     (%.1fx)\n"
    cold_p50 warm_p50 speedup_p50 cold_p95 warm_p95 speedup_p95;
  Printf.printf "  %d/%d warm-session reuses; pool: %d hits, %d misses\n%!"
    reused (List.length warm) s.Sessions.hits s.Sessions.misses;
  let j =
    Json.Obj
      [
        ("nodes", Json.Int snodes);
        ("engine", Json.String (Tta_model.Engine.id_to_string engine));
        ("queries", Json.Int (List.length stream));
        ("verdicts_agree", Json.Bool !all_agree);
        ("reused", Json.Int reused);
        ("cold_p50_ms", Json.Float cold_p50);
        ("cold_p95_ms", Json.Float cold_p95);
        ("warm_p50_ms", Json.Float warm_p50);
        ("warm_p95_ms", Json.Float warm_p95);
        ("speedup_p50", Json.Float speedup_p50);
        ("speedup_p95", Json.Float speedup_p95);
        ("rows", Json.List rows);
      ]
  in
  let oc = open_out_bin sessions_json_path in
  output_string oc (Json.to_string ~pretty:true j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "machine-readable results written to %s\n%!" sessions_json_path;
  if not !all_agree then begin
    Printf.printf "FATAL: warm sessions changed a verdict\n%!";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Guardian design-space synthesis: the Section 6 sweep, once on the
   in-process pool and once as wire traffic against an in-process
   daemon whose session pool the sweep is meant to keep warm. *)

let synth_json_path = "BENCH_synth.json"

let section_synth () =
  (* 2-node lowerings: the sweep measures pipeline throughput and
     session reuse, not checking scale (the configurations themselves
     are the Section 5 matrix the other suites already scale up). *)
  let snodes = 2 in
  heading "Guardian design-space synthesis — Section 6 sweep (%d nodes)" snodes;
  let space = Synthesis.Space.default () in
  let seed = 42 in
  (* 236 sampled + 4 paper anchors = 240 swept candidates. *)
  let sample = 236 in
  let direct = Synthesis.run ~seed ~sample ~nodes:snodes space in
  Format.printf "%a" Synthesis.pp_report direct;
  (* The same sweep as daemon traffic: sessions on, verdict cache off,
     so every request is answered by an engine run and the measured
     reuse is the session pool's, not the cache's. *)
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tta_synth_bench_%d.sock" (Unix.getpid ()))
  in
  let sessions = Sessions.create () in
  let server =
    Service.Server.start ~workers:2 ~sessions (Service.Server.Unix_socket sock)
  in
  let service =
    Fun.protect
      ~finally:(fun () ->
        Service.Server.stop server;
        Service.Server.wait server;
        try Unix.unlink sock with Unix.Unix_error _ -> ())
    @@ fun () ->
    Synthesis.run ~seed ~sample ~nodes:snodes
      ~via:(Synthesis.Service (Service.Server.bound_addr server))
      space
  in
  let agree =
    Synthesis.verdict_summary direct = Synthesis.verdict_summary service
  in
  let requests = List.length service.Synthesis.outcomes in
  let reuse_rate =
    float_of_int service.Synthesis.session_reuses
    /. float_of_int (max 1 requests)
  in
  Printf.printf
    "  service path: %d requests in %.1fs, %d warm-session reuses (%.0f%%); \
     verdicts agree with direct path: %b\n%!"
    requests service.Synthesis.wall_s service.Synthesis.session_reuses
    (100. *. reuse_rate) agree;
  let j =
    Json.Obj
      [
        ("nodes", Json.Int snodes);
        ("seed", Json.Int seed);
        ("space_size", Json.Int direct.Synthesis.space_size);
        ("candidates", Json.Int direct.Synthesis.candidates);
        ("rejected", Json.Int direct.Synthesis.rejected);
        ( "rejections",
          Json.Obj
            (List.map
               (fun (k, v) -> (k, Json.Int v))
               direct.Synthesis.rejections) );
        ("survivors", Json.Int direct.Synthesis.survivors);
        ("upheld", Json.Int direct.Synthesis.upheld);
        ("breached", Json.Int direct.Synthesis.breached);
        ("undetermined", Json.Int direct.Synthesis.undetermined);
        ("envelope_agreement", Json.Bool direct.Synthesis.envelope_agreement);
        ("frontier_size", Json.Int (List.length direct.Synthesis.frontier));
        ( "frontier",
          Json.List
            (List.map Synthesis.Pareto.to_json direct.Synthesis.frontier) );
        ("paper_frontier", Json.Bool (Synthesis.paper_frontier_ok direct));
        ("candidates_per_s", Json.Float direct.Synthesis.candidates_per_s);
        ("wall_s", Json.Float direct.Synthesis.wall_s);
        ("verdicts_agree", Json.Bool agree);
        ("service_requests", Json.Int requests);
        ("session_reuses", Json.Int service.Synthesis.session_reuses);
        ("session_reuse_rate", Json.Float reuse_rate);
        ("service_wall_s", Json.Float service.Synthesis.wall_s);
      ]
  in
  let oc = open_out_bin synth_json_path in
  output_string oc (Json.to_string ~pretty:true j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "machine-readable results written to %s\n%!" synth_json_path;
  let ok =
    agree && direct.Synthesis.rejected > 0
    && direct.Synthesis.envelope_agreement
    && service.Synthesis.envelope_agreement
    && Synthesis.paper_frontier_ok direct
    && reuse_rate > 0.5
  in
  if not ok then begin
    Printf.printf "FATAL: synthesis sweep violated an acceptance invariant\n%!";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks over the kernels. *)

let micro_tests () =
  let open Bechamel in
  let medl4 = Ttp.Medl.uniform ~nodes:4 () in
  let cs = Ttp.Cstate.initial ~nodes:4 in
  let x_frame =
    Ttp.Frame.make ~kind:Ttp.Frame.X ~sender:0 ~cstate:cs
      ~payload:(List.init 120 (fun i -> i))
      ()
  in
  let model2 =
    Tta_model.Build.model (Tta_model.Configs.full_shifting ~nodes:2 ())
  in
  let enc2 =
    let enc = Symkit.Enc.create (Bdd.create_manager ()) model2 in
    ignore (Symkit.Enc.trans_bdd enc);
    ignore (Symkit.Enc.schedule enc);
    enc
  in
  [
    Test.make ~name:"crc/x-frame-2076-bits"
      (Staged.stage (fun () -> Ttp.Frame.crc_of ~channel:0 x_frame));
    Test.make ~name:"frame/x-frame-serialize"
      (Staged.stage (fun () -> Ttp.Frame.to_bits ~channel:0 x_frame));
    Test.make ~name:"sim/cluster-boot-4-nodes"
      (Staged.stage (fun () ->
           let c = Sim.Cluster.create medl4 in
           ignore (Sim.Cluster.boot c)));
    Test.make ~name:"guardian/leaky-bucket-delta-1pc"
      (Staged.stage (fun () ->
           Guardian.Leaky_bucket.required_buffer ~node_rate:1.0
             ~guardian_rate:1.01 ~frame_bits:2076 ~le:4));
    Test.make ~name:"analysis/figure3-families"
      (Staged.stage (fun () -> Analysis.Figure3.default_families ()));
    Test.make ~name:"mc/compile-model-2-nodes"
      (Staged.stage (fun () ->
           let enc = Symkit.Enc.create (Bdd.create_manager ()) model2 in
           ignore (Symkit.Enc.trans_bdd enc)));
    Test.make ~name:"mc/bdd-image-partitioned-2-nodes"
      (Staged.stage (fun () ->
           ignore (Symkit.Reach.image enc2 (Symkit.Enc.init_bdd enc2))));
    Test.make ~name:"mc/bdd-image-monolithic-2-nodes"
      (Staged.stage (fun () ->
           ignore
             (Symkit.Reach.image ~tuning:Symkit.Reach.monolithic_tuning enc2
                (Symkit.Enc.init_bdd enc2))));
    Test.make ~name:"sat/pigeonhole-6-into-5"
      (Staged.stage (fun () ->
           let s = Sat.create () in
           let var i j = (i * 5) + j in
           for _ = 0 to 29 do
             ignore (Sat.new_var s)
           done;
           for i = 0 to 5 do
             Sat.add_clause s (List.init 5 (fun j -> Sat.pos (var i j)))
           done;
           for j = 0 to 4 do
             for i = 0 to 5 do
               for i' = i + 1 to 5 do
                 Sat.add_clause s [ Sat.neg (var i j); Sat.neg (var i' j) ]
               done
             done
           done;
           ignore (Sat.solve s)));
  ]

let run_micro () =
  let open Bechamel in
  heading "Micro-benchmarks (bechamel, OLS time per run)";
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let nanos =
            match Analyze.OLS.estimates ols_result with
            | Some [ t ] -> t
            | _ -> nan
          in
          let pretty =
            if Float.is_nan nanos then "n/a"
            else if nanos > 1e9 then Printf.sprintf "%8.2f s " (nanos /. 1e9)
            else if nanos > 1e6 then Printf.sprintf "%8.2f ms" (nanos /. 1e6)
            else if nanos > 1e3 then Printf.sprintf "%8.2f us" (nanos /. 1e3)
            else Printf.sprintf "%8.0f ns" nanos
          in
          Printf.printf "  %-36s %s/run\n%!" name pretty)
        results)
    (micro_tests ())

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf
    "Reproduction benches: Morris, Kroening, Koopman — \"Fault Tolerance \
     Tradeoffs in Moving from Decentralized to Centralized Embedded \
     Systems\" (DSN 2004)\n";
  if reach_only then section_reach ()
  else if sessions_only then section_sessions ()
  else if synth_only then section_synth ()
  else begin
    section5 ();
    section6 ();
    section_leaky ();
    section_sim ();
    section_extensions ();
    section_reach ();
    section_orders ();
    section_async ();
    section_walks ();
    section_sessions ();
    if not skip_micro then run_micro ()
  end;
  print_newline ()
