(* The verification daemon: a long-running server answering JSON-lines
   verification requests over a Unix-domain or TCP socket.

   Examples:
     tta_served --socket /tmp/tta.sock
     tta_served --socket 127.0.0.1:7171 --workers 2 --queue-cap 16
     tta_served --socket /tmp/tta.sock --cache-dir _cache \
                --cache-max-entries 256 --trace served_trace.json

   Protocol, scheduling and shutdown semantics: doc/service.md.
   Send SIGTERM (or SIGINT) for a graceful drain. *)

let main socket workers queue_cap cache_dir no_cache cache_max sessions
    session_cap grace chaos obs =
  let addr =
    match Service.Server.addr_of_string socket with
    | Ok a -> a
    | Error e ->
        prerr_endline ("tta_served: " ^ e);
        exit 2
  in
  let faults = Cli.faults_of_chaos chaos in
  let cache =
    if no_cache then None
    else
      Some
        (Portfolio.Cache.create ~dir:cache_dir ?max_entries:cache_max ~faults
           ())
  in
  let session_pool =
    if sessions then Some (Sessions.create ~capacity:session_cap ())
    else None
  in
  Service.Server.serve ?cache ?sessions:session_pool ~workers ~queue_cap
    ?obs:(Cli.obs_collector obs) ~faults ~grace
    ~on_ready:(fun srv ->
      (* Machine-readable readiness first — supervisors (the cluster
         router, CI scripts) parse this one line to learn the bound
         address, including a kernel-assigned port for --socket HOST:0.
         The human-oriented banner follows. *)
      let bound = Service.Server.bound_addr srv in
      let fields =
        [
          ("ready", Json.Bool true);
          ("socket", Json.String (Service.Server.addr_to_string bound));
        ]
        @
        match bound with
        | Service.Server.Tcp (_, port) -> [ ("port", Json.Int port) ]
        | Service.Server.Unix_socket _ -> []
      in
      print_string (Json.to_string (Json.Obj fields) ^ "\n");
      Printf.printf "tta_served: listening on %s (%d workers, queue cap %d)%s\n%!"
        (Service.Server.addr_to_string bound)
        workers queue_cap
        (if Resilience.Faults.enabled faults then
           " [chaos " ^ Resilience.Faults.to_spec faults ^ "]"
         else ""))
    addr;
  (* serve returned: a signal triggered the drain. *)
  (match session_pool with
  | Some p ->
      let s = Sessions.stats p in
      Printf.printf
        "sessions: %d hits, %d misses (%d family mismatches), %d evicted, %d \
         discarded, %d warm\n"
        s.Sessions.hits s.Sessions.misses s.Sessions.mismatches
        s.Sessions.evictions s.Sessions.discards s.Sessions.idle
  | None -> ());
  (match cache with
  | Some c ->
      Printf.printf "cache: %d hits, %d misses, %d entries, %d evicted, %d \
                     quarantined\n"
        (Portfolio.Cache.hits c) (Portfolio.Cache.misses c)
        (Portfolio.Cache.entries c)
        (Portfolio.Cache.evictions c)
        (Portfolio.Cache.quarantined c)
  | None -> ());
  if Resilience.Faults.enabled faults then begin
    Printf.printf "chaos: spec %s\n" (Resilience.Faults.to_spec faults);
    List.iter
      (fun (rule, n) -> Printf.printf "  %-28s fired %d\n" rule n)
      (Resilience.Faults.injections faults)
  end;
  Cli.obs_finish obs;
  Printf.printf "tta_served: drained, bye\n%!"

let () =
  let open Cmdliner in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "s"; "socket" ] ~docv:"ADDR"
          ~doc:
            "Listen address: a Unix-domain socket path, or HOST:PORT for \
             TCP.")
  in
  let workers =
    Arg.(
      value
      & opt int (Portfolio.Pool.default_domains ())
      & info [ "w"; "workers" ] ~docv:"N"
          ~doc:"Verification worker domains (default: all cores).")
  in
  let queue_cap =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission bound: queued computations beyond N are shed with an \
             overloaded response.")
  in
  let cache_dir =
    Arg.(
      value & opt string "_cache"
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Verdict cache directory.")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the verdict cache.")
  in
  let sessions =
    Arg.(
      value & flag
      & info [ "sessions" ]
          ~doc:
            "Keep a pool of warm incremental solver sessions: \
             single-SAT-engine requests of a family they have seen reuse \
             unrolling and learned clauses instead of starting cold.")
  in
  let session_cap =
    Arg.(
      value & opt int 32
      & info [ "session-cap" ] ~docv:"N"
          ~doc:"Idle warm sessions kept before LRU eviction (with --sessions).")
  in
  let grace =
    Arg.(
      value & opt float 5.0
      & info [ "grace" ] ~docv:"SECONDS"
          ~doc:
            "Drain grace period: on SIGTERM, in-flight runs are \
             force-cancelled after this long.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "tta_served"
         ~doc:"Long-running TTA verification daemon (JSON lines over a socket)")
      Term.(
        const main $ socket $ workers $ queue_cap $ cache_dir $ no_cache
        $ Cli.cache_max_entries ()
        $ sessions $ session_cap $ grace $ Cli.chaos () $ Cli.obs ())
  in
  exit (Cmd.eval cmd)
