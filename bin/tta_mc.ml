(* Model-check the TTA star-coupler configurations of the paper.

   Examples:
     tta_mc --config full-shifting            # expect a counterexample
     tta_mc --config passive --engine bdd     # expect a safety proof
     tta_mc --config full-shifting --no-cold-start-duplication
     tta_mc --engine bdd --trace run.json     # Chrome trace of the run
*)

let run config_name engine_name nodes max_depth no_cs_dup oos_budget
    partitioned gc_watermark no_restrict reorder par_image strategy export_smv
    json_path obs =
  let reach_tuning =
    Cli.reach_tuning_of ~reorder ~par_image ~strategy ~partitioned
      ~gc_watermark ~no_restrict ()
  in
  let feature_set = Cli.feature_set_of_config config_name in
  let engine = Cli.engine_of_name engine_name in
  let cfg =
    Tta_model.Configs.make ~nodes
      ?oos_budget:
        (match (feature_set, oos_budget) with
        | Guardian.Feature_set.Full_shifting, b -> b
        | _, _ -> None)
      ~forbid_cold_start_duplication:no_cs_dup feature_set
  in
  Printf.printf "configuration: %s (%d nodes)\n" (Tta_model.Configs.name cfg)
    nodes;
  (match export_smv with
  | Some path ->
      Tta_model.Engine.export_smv cfg path;
      Printf.printf "model exported to %s (SMV input language)\n" path
  | None -> ());
  Printf.printf "engine: %s, depth bound %d\n%!" engine.Tta_model.Engine.name
    max_depth;
  let t0 = Unix.gettimeofday () in
  let r =
    engine.Tta_model.Engine.run
      ~obs:(Cli.obs_track obs ("mc/" ^ engine.Tta_model.Engine.name))
      ~max_depth ~reach_tuning cfg
  in
  let dt = Unix.gettimeofday () -. t0 in
  (match r.Tta_model.Engine.verdict with
  | Tta_model.Engine.Holds { detail } ->
      Printf.printf "PROPERTY HOLDS: %s\n" detail
  | Tta_model.Engine.Unknown { detail } ->
      Printf.printf "UNDECIDED: %s\n" detail
  | Tta_model.Engine.Violated { trace; model } ->
      Printf.printf
        "PROPERTY VIOLATED: a single coupler fault froze an integrated \
         node.\nCounterexample (%d steps):\n%s"
        (Array.length trace)
        (Tta_model.Engine.describe_trace model trace ~nodes);
      (match Symkit.Trace.validate model trace with
      | Ok () -> Printf.printf "(trace replays cleanly against the model)\n"
      | Error e -> Printf.printf "WARNING: trace validation failed: %s\n" e));
  Printf.printf "elapsed: %.2fs\n" dt;
  (match json_path with
  | Some path ->
      let outcome =
        match r.Tta_model.Engine.verdict with
        | Tta_model.Engine.Holds { detail } -> [ ("verdict", Json.String "holds"); ("detail", Json.String detail) ]
        | Tta_model.Engine.Unknown { detail } -> [ ("verdict", Json.String "unknown"); ("detail", Json.String detail) ]
        | Tta_model.Engine.Violated { trace; _ } ->
            [
              ("verdict", Json.String "violated");
              ( "detail",
                Json.String
                  (Printf.sprintf "counterexample of %d steps"
                     (Array.length trace)) );
            ]
      in
      Cli.write_json path
        (Json.Obj
           ([
              ("config", Json.String (Tta_model.Configs.name cfg));
              ("engine", Json.String engine.Tta_model.Engine.name);
              ("nodes", Json.Int nodes);
              ("max_depth", Json.Int max_depth);
              ("wall_s", Json.Float dt);
            ]
           @ outcome
           @ [
               ( "counters",
                 Json.Obj
                   (List.map
                      (fun (n, v) -> (n, Json.Int v))
                      r.Tta_model.Engine.counters) );
             ]));
      Printf.printf "results written to %s\n" path
  | None -> ());
  Cli.obs_finish obs

let () =
  let open Cmdliner in
  let export_smv =
    Arg.(
      value
      & opt (some string) None
      & info [ "export-smv" ] ~docv:"FILE"
          ~doc:
            "Also write the model to FILE in the SMV input language \
             (NuSMV dialect), with the property as an INVARSPEC.")
  in
  let no_cs_dup =
    Arg.(
      value & flag
      & info
          [ "no-cold-start-duplication" ]
          ~doc:
            "Prohibit replaying buffered cold-start frames (forces the \
             paper's second counterexample).")
  in
  let oos_budget =
    Arg.(
      value
      & opt (some int) (Some 1)
      & info [ "oos-budget" ] ~docv:"K"
          ~doc:
            "Limit on out-of-slot errors for full-shifting couplers \
             (paper: 1).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "tta_mc"
         ~doc:"Model-check TTA star-coupler fault-tolerance configurations")
      Term.(
        const run $ Cli.config () $ Cli.engine () $ Cli.nodes ()
        $ Cli.depth () $ no_cs_dup $ oos_budget $ Cli.partitioned ()
        $ Cli.gc_watermark () $ Cli.no_restrict () $ Cli.reorder ()
        $ Cli.par_image () $ Cli.strategy () $ export_smv
        $ Cli.json () $ Cli.obs ())
  in
  exit (Cmd.eval cmd)
