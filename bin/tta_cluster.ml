(* Cluster router: one Protocol socket in front of N supervised
   tta_served worker processes, sharded by consistent hashing.

   Examples:
     tta_cluster --socket /tmp/tta.sock --workers 4
     tta_cluster --socket 127.0.0.1:7171 --workers 4 \
                 --cache-dir _cache --chaos '7:engine_start=crash@0.2x3'
     tta_cluster --bench --json BENCH_cluster.json

   Architecture, failover and benchmark methodology: doc/cluster.md.
   Send SIGTERM (or SIGINT) for a graceful drain. *)

let default_served_exe () =
  Filename.concat (Filename.dirname Sys.executable_name) "tta_served.exe"

let rec mkdir_p d =
  if d <> "" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* One stable line per supervision event — CI and the tests grep
   these, so the shapes are part of the tool's interface. *)
let print_event ev =
  (match (ev : Cluster.Router.event) with
  | Cluster.Router.Worker_spawned { name; pid } ->
      Printf.printf "tta_cluster: event spawn %s pid=%d\n" name pid
  | Cluster.Router.Worker_ready { name; addr } ->
      Printf.printf "tta_cluster: event ready %s addr=%s\n" name addr
  | Cluster.Router.Worker_exited { name; reason } ->
      Printf.printf "tta_cluster: event exit %s reason=%s\n" name reason
  | Cluster.Router.Worker_backoff { name; delay_s } ->
      Printf.printf "tta_cluster: event backoff %s delay=%.3f\n" name delay_s
  | Cluster.Router.Worker_gave_up { name } ->
      Printf.printf "tta_cluster: event gave-up %s\n" name
  | Cluster.Router.Rerouted { id; worker } ->
      Printf.printf "tta_cluster: event reroute id=%s worker=%s\n" id worker
  | Cluster.Router.Killed_by_request { name; nth } ->
      Printf.printf "tta_cluster: event kill %s nth=%d\n" name nth
  | Cluster.Router.Breaker_opened { name } ->
      Printf.printf "tta_cluster: event breaker-open %s\n" name
  | Cluster.Router.Breaker_closed { name } ->
      Printf.printf "tta_cluster: event breaker-close %s\n" name
  | Cluster.Router.Hedged { id; worker } ->
      Printf.printf "tta_cluster: event hedge id=%s worker=%s\n" id worker);
  flush stdout

let worker_args ~cache_dir ~cache_max ~sched_workers ~queue_cap ~sessions
    ~chaos =
  [ "--cache-dir"; cache_dir; "--workers"; string_of_int sched_workers;
    "--queue-cap"; string_of_int queue_cap ]
  @ (match cache_max with
    | Some n -> [ "--cache-max-entries"; string_of_int n ]
    | None -> [])
  @ (if sessions then [ "--sessions" ] else [])
  @ match chaos with Some spec -> [ "--chaos"; spec ] | None -> []

let print_stats router =
  let s = Cluster.Router.stats router in
  Printf.printf "tta_cluster: forwarded %s\n"
    (if s.Cluster.Router.forwarded = [] then "(nothing)"
     else
       String.concat ", "
         (List.map
            (fun (w, n) -> Printf.sprintf "%s:%d" w n)
            s.Cluster.Router.forwarded));
  Printf.printf
    "tta_cluster: %d rerouted, %d worker restarts, %d hedged, %d breaker \
     opens\n\
     %!"
    s.Cluster.Router.rerouted s.Cluster.Router.restarts
    s.Cluster.Router.hedged s.Cluster.Router.breaker_opens

(* ------------------------------------------------------------------ *)
(* Serve mode *)

let serve socket workers served_exe cache_dir cache_max sched_workers
    queue_cap sessions chaos hedge_ms breaker_window vnodes max_restarts
    restart_window kill_after grace =
  let addr =
    match Service.Server.addr_of_string socket with
    | Ok a -> a
    | Error e ->
        prerr_endline ("tta_cluster: " ^ e);
        exit 2
  in
  mkdir_p cache_dir;
  (* The same spec arms two registries: each worker daemon's (where the
     engine_*/cache_*/sock_* points live) via --chaos pass-through, and
     the router's own (where the link_* points fire, per router<->worker
     line). Each registry draws its own deterministic decision stream
     from the seed. *)
  let faults = Cli.faults_of_chaos chaos in
  let router =
    Cluster.Router.start ~vnodes ~max_restarts ~restart_window_s:restart_window
      ?kill_after ~grace ~faults ~hedge_ms ~breaker_window
      ~on_event:print_event ~exe:served_exe
      ~worker_args:
        (worker_args ~cache_dir ~cache_max ~sched_workers ~queue_cap ~sessions
           ~chaos)
      ~workers addr
  in
  let bound = Cluster.Router.bound_addr router in
  let fields =
    [
      ("ready", Json.Bool true);
      ("socket", Json.String (Service.Server.addr_to_string bound));
    ]
    @
    match bound with
    | Service.Server.Tcp (_, port) -> [ ("port", Json.Int port) ]
    | Service.Server.Unix_socket _ -> []
  in
  print_string (Json.to_string (Json.Obj fields) ^ "\n");
  Printf.printf "tta_cluster: routing %s across %d workers (cache %s)\n%!"
    (Service.Server.addr_to_string bound)
    workers cache_dir;
  let handler =
    Sys.Signal_handle (fun _ -> Cluster.Router.stop router)
  in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  Cluster.Router.wait router;
  print_stats router;
  if Resilience.Faults.enabled faults then begin
    Printf.printf "chaos: router spec %s\n" (Resilience.Faults.to_spec faults);
    List.iter
      (fun (rule, n) -> Printf.printf "  %-28s fired %d\n" rule n)
      (Resilience.Faults.injections faults)
  end;
  Printf.printf "tta_cluster: drained, bye\n%!"

(* ------------------------------------------------------------------ *)
(* Benchmark mode: 1 -> 2 -> 4 -> 8 worker scaling

   Every request carries an injected [engine_start=stall] fault in the
   worker, a deterministic per-attempt service-time floor. That floor,
   not engine CPU, dominates the workload — deliberately: it makes the
   scaling curve measure the cluster fabric (routing, sharding,
   supervision overhead) identically on a single-core container and a
   many-core CI runner, where honest CPU-bound scaling would measure
   the host instead. The engine runs are real but depth-capped short
   of conclusiveness (that keeps CPU under the floor); every row must
   report identical verdict counts, and verdict fidelity under
   failover is the CI cluster smoke's job (conclusive depths). *)

let bench_configs =
  [ "passive"; "time-windows"; "small-shifting"; "full-shifting" ]

let bench_one ~served_exe ~requests ~concurrency ~stall_ms ~nodes_choices
    ~depths ~n =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tta_cluster_bench_%d_w%d" (Unix.getpid ()) n)
  in
  mkdir_p dir;
  let cache_dir = Filename.concat dir "cache" in
  mkdir_p cache_dir;
  let addr = Service.Server.Unix_socket (Filename.concat dir "router.sock") in
  let ready = Atomic.make 0 in
  (* 1200 vnodes pins a key->worker assignment that stays balanced at
     every bench fleet size (max 4/3/2 of the 8 routing keys on one
     worker at 2/4/8 workers); the serve-mode default is coarser. *)
  let router =
    Cluster.Router.start ~vnodes:1200
      ~on_event:(function
        | Cluster.Router.Worker_ready _ -> Atomic.incr ready
        | _ -> ())
      ~exe:served_exe
      ~worker_args:
        (worker_args ~cache_dir ~cache_max:None ~sched_workers:1
           ~queue_cap:256 ~sessions:false
           ~chaos:(Some (Printf.sprintf "1:engine_start=stall%d" stall_ms)))
      ~workers:n addr
  in
  (* Start the clock only once the whole fleet is up: the row should
     measure steady-state capacity, not daemon boot time. *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  while Atomic.get ready < n && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.05
  done;
  if Atomic.get ready < n then begin
    prerr_endline "tta_cluster: bench workers failed to become ready";
    exit 1
  end;
  let report =
    Service.Loadgen.run ~seed:20 ~exhaustive:true ~nodes_choices ~depths
      ~configs:bench_configs ~engines:[ "bdd" ] ~retry_budget:2
      ~mode:(Service.Loadgen.Closed_loop concurrency)
      ~requests addr
  in
  Cluster.Router.stop router;
  Cluster.Router.wait router;
  report

let bench served_exe requests concurrency stall_ms json_path =
  (* Shallow depths keep the honest per-request CPU well under the
     injected stall (the floor must dominate for the curve to measure
     the fabric); the spread still defeats coalescing. *)
  let nodes_choices = [ 2; 3 ] and depths = List.init 8 (fun i -> 2 + i) in
  let fleet_sizes = [ 1; 2; 4; 8 ] in
  let rows =
    List.map
      (fun n ->
        Printf.printf "tta_cluster: bench %d worker%s...\n%!" n
          (if n = 1 then "" else "s");
        let r =
          bench_one ~served_exe ~requests ~concurrency ~stall_ms
            ~nodes_choices ~depths ~n
        in
        Printf.printf
          "  %d workers: %.1f req/s (%d ok, %d errors, imbalance %.2f)\n%!" n
          r.Service.Loadgen.throughput_rps r.Service.Loadgen.ok
          r.Service.Loadgen.protocol_errors r.Service.Loadgen.imbalance;
        (n, r))
      fleet_sizes
  in
  let base =
    match rows with
    | (1, r) :: _ -> r.Service.Loadgen.throughput_rps
    | _ -> assert false
  in
  let speedup r = r.Service.Loadgen.throughput_rps /. Float.max 1e-9 base in
  let row_json (n, r) =
    Json.Obj
      [
        ("workers", Json.Int n);
        ("throughput_rps", Json.Float r.Service.Loadgen.throughput_rps);
        ("speedup", Json.Float (speedup r));
        ("ok", Json.Int r.Service.Loadgen.ok);
        ("holds", Json.Int r.Service.Loadgen.holds);
        ("violated", Json.Int r.Service.Loadgen.violated);
        ("unknown", Json.Int r.Service.Loadgen.unknown);
        ("protocol_errors", Json.Int r.Service.Loadgen.protocol_errors);
        ("retries", Json.Int r.Service.Loadgen.retries);
        ("p50_ms", Json.Float r.Service.Loadgen.p50_ms);
        ("p99_ms", Json.Float r.Service.Loadgen.p99_ms);
        ("imbalance", Json.Float r.Service.Loadgen.imbalance);
        ( "per_worker",
          Json.Obj
            (List.map
               (fun (w, c) -> (w, Json.Int c))
               r.Service.Loadgen.per_worker) );
      ]
  in
  let final_speedup =
    match List.rev rows with row :: _ -> speedup (snd row) | [] -> 0.
  in
  let j =
    Json.Obj
      [
        ("bench", Json.String "cluster_scaling");
        ("generated_by", Json.String "tta_cluster --bench");
        ( "workload",
          Json.Obj
            [
              ("requests", Json.Int requests);
              ("concurrency", Json.Int concurrency);
              ("seed", Json.Int 20);
              ("exhaustive", Json.Bool true);
              ("vnodes", Json.Int 1200);
              ("engine", Json.String "bdd");
              ( "configs",
                Json.List
                  (List.map (fun c -> Json.String c) bench_configs) );
              ( "nodes_choices",
                Json.List (List.map (fun n -> Json.Int n) nodes_choices) );
              ( "depths",
                Json.String
                  (Printf.sprintf "%d..%d"
                     (List.hd depths)
                     (List.hd (List.rev depths))) );
              ( "chaos",
                Json.String
                  (Printf.sprintf "1:engine_start=stall%d" stall_ms) );
              ( "note",
                Json.String
                  "Each engine attempt carries a deterministic injected \
                   stall as a service-time floor, so the curve measures \
                   cluster-fabric scaling (consistent-hash sharding, \
                   routing, supervision) rather than raw engine CPU — \
                   host-independent, honest on a single-core container. \
                   Shards are model fingerprints: 4 configs x 2 node \
                   counts = 8 routing keys over the worker ring. The \
                   shallow depth bound keeps CPU under the stall floor \
                   at the cost of mostly inconclusive verdicts; rows \
                   must agree on verdict counts (asserted, exit 1), and \
                   verdict fidelity under failover is pinned by the CI \
                   cluster smoke at conclusive depths." );
            ] );
        ("rows", Json.List (List.map row_json rows));
        ("speedup_at_max_workers", Json.Float final_speedup);
      ]
  in
  (match json_path with
  | Some path ->
      Cli.write_json path j;
      Printf.printf "tta_cluster: bench written to %s\n%!" path
  | None -> print_string (Json.to_string ~pretty:true j ^ "\n"));
  let all_clean =
    List.for_all (fun (_, r) -> r.Service.Loadgen.protocol_errors = 0) rows
  in
  (* The same seeded stream must yield the same verdict counts no
     matter how many workers served it — sharding must not change
     answers. *)
  let verdicts (_, r) =
    Service.Loadgen.
      (r.ok, r.holds, r.violated, r.unknown)
  in
  let verdicts_agree =
    match rows with
    | first :: rest ->
        List.for_all (fun row -> verdicts row = verdicts first) rest
    | [] -> true
  in
  if not verdicts_agree then
    prerr_endline "tta_cluster: bench rows disagree on verdict counts";
  exit (if all_clean && verdicts_agree then 0 else 1)

(* ------------------------------------------------------------------ *)
(* Resilience benchmark: availability and tail latency under seeded
   link chaos, hedging on vs off.

   One closed-loop (concurrency 1) seeded stream per row, so the
   router<->worker line sequence — and therefore which line a capped
   link fault hits — is deterministic: the health interval is pushed
   past the row's duration (no heartbeat lines compete for the fault
   caps) and the fault caps are x1. The delay rows inject one 2 s
   tail-latency event on the first worker response; with hedging off
   it lands in p99 whole, with hedging on the duplicate leg answers at
   about the hedge delay. The drop row loses the first forwarded
   request line outright; the hedge leg is the only recovery inside
   the bench's horizon (the retransmit net sits at 3x the stretched
   health timeout), so zero lost requests demonstrates it working.
   Verdict fidelity is enforced against a direct in-process
   Service.Server run of the same stream — chaos and hedging may move
   latency, never answers. *)

let res_delay_spec = "9:link_recv=delay2000x1"
let res_drop_spec = "9:link_send=dropx1"
let res_depths = [ 32; 36; 40 ]
let res_nodes = [ 2; 3 ]

let res_loadgen ~requests addr =
  Service.Loadgen.run ~seed:20 ~exhaustive:true ~nodes_choices:res_nodes
    ~depths:res_depths ~configs:bench_configs ~engines:[ "bdd" ]
    ~retry_budget:3
    ~mode:(Service.Loadgen.Closed_loop 1)
    ~requests addr

let res_row ~served_exe ~requests ~breaker_window ~label ~chaos ~hedge_ms =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tta_cluster_res_%d_%s" (Unix.getpid ()) label)
  in
  mkdir_p dir;
  let cache_dir = Filename.concat dir "cache" in
  mkdir_p cache_dir;
  let addr = Service.Server.Unix_socket (Filename.concat dir "router.sock") in
  let ready = Atomic.make 0 in
  let faults = Cli.faults_of_chaos chaos in
  let router =
    Cluster.Router.start ~vnodes:1200 ~health_interval:60.
      ~health_timeout:120. ~faults ~hedge_ms ~breaker_window
      ~on_event:(function
        | Cluster.Router.Worker_ready _ -> Atomic.incr ready
        | _ -> ())
      ~exe:served_exe
      ~worker_args:
        (worker_args ~cache_dir ~cache_max:None ~sched_workers:1
           ~queue_cap:256 ~sessions:false ~chaos:None)
      ~workers:2 addr
  in
  let deadline = Unix.gettimeofday () +. 30.0 in
  while Atomic.get ready < 2 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.05
  done;
  if Atomic.get ready < 2 then begin
    prerr_endline "tta_cluster: resilience bench workers failed to start";
    exit 1
  end;
  let report = res_loadgen ~requests addr in
  let s = Cluster.Router.stats router in
  Cluster.Router.stop router;
  Cluster.Router.wait router;
  (* The router's own counters are authoritative: hedges whose
     duplicate leg lost the race are invisible in response
     annotations, and breaker trips never reach the wire at all. *)
  let report =
    {
      report with
      Service.Loadgen.hedged = s.Cluster.Router.hedged;
      breaker_opens = s.Cluster.Router.breaker_opens;
    }
  in
  (report, Resilience.Faults.injections faults)

let bench_resilience served_exe requests hedge_ms breaker_window json_path =
  (* Direct in-process reference: same seeded stream, no router, no
     chaos — the verdicts every row must reproduce. *)
  let direct_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tta_cluster_res_%d_direct" (Unix.getpid ()))
  in
  mkdir_p direct_dir;
  let direct_addr =
    Service.Server.Unix_socket (Filename.concat direct_dir "direct.sock")
  in
  Printf.printf "tta_cluster: resilience bench, direct reference...\n%!";
  let server = Service.Server.start ~workers:2 direct_addr in
  let direct = res_loadgen ~requests (Service.Server.bound_addr server) in
  Service.Server.stop server;
  Service.Server.wait server;
  let rows =
    List.map
      (fun (label, chaos, hedge_ms) ->
        Printf.printf "tta_cluster: resilience bench, row %s...\n%!" label;
        let r, fired = res_row ~served_exe ~requests ~breaker_window ~label
            ~chaos ~hedge_ms in
        Printf.printf
          "  %s: %d ok, %d degraded, %.1fms p99, %d hedged, %d retries\n%!"
          label r.Service.Loadgen.ok r.Service.Loadgen.degraded
          r.Service.Loadgen.p99_ms r.Service.Loadgen.hedged
          r.Service.Loadgen.retries;
        (label, chaos, hedge_ms, r, fired))
      [
        ("baseline", None, 0);
        ("delay_hedge_off", Some res_delay_spec, 0);
        ("delay_hedge_on", Some res_delay_spec, hedge_ms);
        ("drop_hedge_on", Some res_drop_spec, hedge_ms);
      ]
  in
  let availability (r : Service.Loadgen.report) =
    float_of_int (r.Service.Loadgen.ok + r.Service.Loadgen.degraded)
    /. float_of_int (max 1 r.Service.Loadgen.requests)
  in
  let row_json (label, chaos, hedge, r, fired) =
    Json.Obj
      [
        ("row", Json.String label);
        ( "chaos",
          match chaos with
          | Some s -> Json.String s
          | None -> Json.Null );
        ("hedge_ms", Json.Int hedge);
        ("ok", Json.Int r.Service.Loadgen.ok);
        ("degraded", Json.Int r.Service.Loadgen.degraded);
        ("availability", Json.Float (availability r));
        ("holds", Json.Int r.Service.Loadgen.holds);
        ("violated", Json.Int r.Service.Loadgen.violated);
        ("unknown", Json.Int r.Service.Loadgen.unknown);
        ("protocol_errors", Json.Int r.Service.Loadgen.protocol_errors);
        ("conn_retries", Json.Int r.Service.Loadgen.conn_retries);
        ("engine_retries", Json.Int r.Service.Loadgen.engine_retries);
        ("hedged", Json.Int r.Service.Loadgen.hedged);
        ("breaker_opens", Json.Int r.Service.Loadgen.breaker_opens);
        ("p50_ms", Json.Float r.Service.Loadgen.p50_ms);
        ("p99_ms", Json.Float r.Service.Loadgen.p99_ms);
        ("max_ms", Json.Float r.Service.Loadgen.max_ms);
        ( "injections",
          Json.Obj (List.map (fun (rule, n) -> (rule, Json.Int n)) fired) );
      ]
  in
  let find label =
    let _, _, _, r, _ =
      List.find (fun (l, _, _, _, _) -> l = label) rows
    in
    r
  in
  let off = find "delay_hedge_off" and on_ = find "delay_hedge_on" in
  let j =
    Json.Obj
      [
        ("bench", Json.String "cluster_resilience");
        ("generated_by", Json.String "tta_cluster --bench-resilience");
        ( "workload",
          Json.Obj
            [
              ("requests", Json.Int requests);
              ("concurrency", Json.Int 1);
              ("seed", Json.Int 20);
              ("exhaustive", Json.Bool true);
              ("workers", Json.Int 2);
              ("engine", Json.String "bdd");
              ( "configs",
                Json.List (List.map (fun c -> Json.String c) bench_configs) );
              ( "nodes_choices",
                Json.List (List.map (fun n -> Json.Int n) res_nodes) );
              ( "depths",
                Json.List (List.map (fun d -> Json.Int d) res_depths) );
              ("hedge_ms", Json.Int hedge_ms);
              ("breaker_window", Json.Int breaker_window);
              ( "note",
                Json.String
                  "Closed-loop concurrency 1 with the heartbeat interval \
                   pushed past the row duration makes the router<->worker \
                   line sequence deterministic, so the x1-capped link \
                   faults hit the same line on every run: the delay rows \
                   inject one 2 s tail-latency event on the first worker \
                   response (whole in p99 with hedging off, absorbed at \
                   about the hedge delay with hedging on), and the drop \
                   row loses the first forwarded request, recovered by \
                   the hedge leg. Verdict counts must equal the direct \
                   in-process single-daemon run of the same stream \
                   (asserted, exit 1) — chaos and hedging move latency, \
                   never answers." );
            ] );
        ( "direct_reference",
          Json.Obj
            [
              ("ok", Json.Int direct.Service.Loadgen.ok);
              ("holds", Json.Int direct.Service.Loadgen.holds);
              ("violated", Json.Int direct.Service.Loadgen.violated);
              ("unknown", Json.Int direct.Service.Loadgen.unknown);
              ("p99_ms", Json.Float direct.Service.Loadgen.p99_ms);
            ] );
        ("rows", Json.List (List.map row_json rows));
        ( "hedge_p99_speedup",
          Json.Float
            (off.Service.Loadgen.p99_ms
            /. Float.max 1e-9 on_.Service.Loadgen.p99_ms) );
      ]
  in
  (match json_path with
  | Some path ->
      Cli.write_json path j;
      Printf.printf "tta_cluster: resilience bench written to %s\n%!" path
  | None -> print_string (Json.to_string ~pretty:true j ^ "\n"));
  (* The acceptance gates, in the exit code so CI cannot drift from
     the committed numbers' meaning. *)
  let problems = ref [] in
  let check cond msg = if not cond then problems := msg :: !problems in
  List.iter
    (fun (label, _, _, r, _) ->
      check
        (r.Service.Loadgen.protocol_errors = 0)
        (label ^ ": protocol errors");
      check
        (r.Service.Loadgen.ok + r.Service.Loadgen.degraded
        = r.Service.Loadgen.requests)
        (label ^ ": lost requests");
      check
        (Service.Loadgen.
           (r.holds, r.violated, r.unknown)
        = Service.Loadgen.
            (direct.holds, direct.violated, direct.unknown))
        (label ^ ": verdicts differ from the direct reference"))
    rows;
  check
    (on_.Service.Loadgen.p99_ms < off.Service.Loadgen.p99_ms)
    "hedging did not improve p99 under delay chaos";
  check (on_.Service.Loadgen.hedged > 0) "delay_hedge_on never hedged";
  check
    ((find "drop_hedge_on").Service.Loadgen.hedged > 0)
    "drop_hedge_on never hedged";
  List.iter (fun m -> prerr_endline ("tta_cluster: resilience bench: " ^ m))
    !problems;
  exit (if !problems = [] then 0 else 1)

(* ------------------------------------------------------------------ *)

let main socket workers served_exe cache_dir cache_max sched_workers
    queue_cap sessions chaos hedge_ms breaker_window vnodes max_restarts
    restart_window kill_after grace run_bench run_bench_resilience
    bench_requests bench_concurrency bench_stall_ms json_path =
  let served_exe =
    match served_exe with Some p -> p | None -> default_served_exe ()
  in
  if run_bench then
    bench served_exe bench_requests bench_concurrency bench_stall_ms
      json_path
  else if run_bench_resilience then
    bench_resilience served_exe bench_requests
      (if hedge_ms > 0 then hedge_ms else 150)
      (if breaker_window > 0 then breaker_window else 8)
      json_path
  else
    match socket with
    | None ->
        prerr_endline
          "tta_cluster: --socket is required (unless --bench or \
           --bench-resilience)";
        exit 2
    | Some socket ->
        serve socket workers served_exe cache_dir cache_max sched_workers
          queue_cap sessions chaos hedge_ms breaker_window vnodes
          max_restarts restart_window kill_after grace

let () =
  let open Cmdliner in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "socket" ] ~docv:"ADDR"
          ~doc:
            "Client-facing listen address: a Unix-domain socket path, or \
             HOST:PORT for TCP (port 0 = kernel-assigned).")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "w"; "workers" ] ~docv:"N" ~doc:"Worker daemons to run.")
  in
  let served_exe =
    Arg.(
      value
      & opt (some string) None
      & info [ "served-exe" ] ~docv:"PATH"
          ~doc:
            "The tta_served executable (default: next to this binary).")
  in
  let cache_dir =
    Arg.(
      value & opt string "_cache"
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Verdict cache directory, shared by every worker (cross-process \
             LRU via the cache's advisory lock).")
  in
  let sched_workers =
    Arg.(
      value & opt int 1
      & info [ "sched-workers" ] ~docv:"N"
          ~doc:"Scheduler domains inside each worker daemon.")
  in
  let queue_cap =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N" ~doc:"Per-worker admission bound.")
  in
  let sessions =
    Arg.(
      value & flag
      & info [ "sessions" ]
          ~doc:
            "Pass --sessions to every worker daemon: each keeps a pool of \
             warm incremental solver sessions for single-SAT-engine \
             requests. Consistent hashing already sends a family to the \
             same worker, so warm hits survive sharding.")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SEED[:SPEC]"
          ~doc:
            "Fault-injection spec, armed twice: passed through to every \
             worker daemon (engine/cache/socket points) and armed on the \
             router's own registry, where the link_send/link_recv points \
             fire per router<->worker line (drop loses the line, delayMS \
             defers it, crash kills the connection).")
  in
  let hedge_ms =
    Arg.(
      value & opt int 0
      & info [ "hedge-ms" ] ~docv:"MS"
          ~doc:
            "Hedged requests: duplicate a request onto the next live ring \
             worker when its first answer has not arrived within MS \
             milliseconds; first conclusive answer wins (0 = off).")
  in
  let breaker_window =
    Arg.(
      value & opt int 0
      & info [ "breaker-window" ] ~docv:"N"
          ~doc:
            "Per-worker circuit breaker over the last N request outcomes: \
             a worker failing half the window is routed around until a \
             heartbeat pong and a successful probe close the circuit \
             (0 = off).")
  in
  let vnodes =
    Arg.(
      value & opt int 512
      & info [ "vnodes" ] ~docv:"N"
          ~doc:"Virtual points per worker on the consistent-hash ring.")
  in
  let max_restarts =
    Arg.(
      value & opt int 5
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:"Give up on a worker after N deaths within the window.")
  in
  let restart_window =
    Arg.(
      value & opt float 30.0
      & info [ "restart-window" ] ~docv:"SECONDS"
          ~doc:"Sliding window for the restart-intensity gate.")
  in
  let kill_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after" ] ~docv:"N"
          ~doc:
            "Testing hook: SIGKILL the worker that receives the Nth \
             forwarded request (exercises mid-stream failover).")
  in
  let grace =
    Arg.(
      value & opt float 10.0
      & info [ "grace" ] ~docv:"SECONDS"
          ~doc:"Drain bound: cancel whatever is still unanswered this long \
                after SIGTERM.")
  in
  let run_bench =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:
            "Run the 1/2/4/8-worker scaling benchmark instead of serving \
             (see doc/cluster.md for the methodology).")
  in
  let run_bench_resilience =
    Arg.(
      value & flag
      & info [ "bench-resilience" ]
          ~doc:
            "Run the partition-tolerance benchmark instead of serving: \
             availability and tail latency under seeded link chaos, \
             hedging on vs off, with verdict fidelity enforced against a \
             direct in-process run (see doc/cluster.md).")
  in
  let bench_requests =
    Arg.(
      value & opt int 64
      & info [ "bench-requests" ] ~docv:"N"
          ~doc:"Requests per benchmark row.")
  in
  let bench_concurrency =
    Arg.(
      value & opt int 16
      & info [ "bench-concurrency" ] ~docv:"N"
          ~doc:"Closed-loop client connections during the benchmark.")
  in
  let bench_stall_ms =
    Arg.(
      value & opt int 900
      & info [ "bench-stall-ms" ] ~docv:"MS"
          ~doc:
            "Injected per-attempt service-time floor in the workers (must \
             dominate the honest per-request CPU for the scaling curve to \
             be host-independent).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "tta_cluster"
         ~doc:
           "Sharded multi-worker TTA verification cluster (consistent-hash \
            router over supervised tta_served daemons)")
      Term.(
        const main $ socket $ workers $ served_exe $ cache_dir
        $ Cli.cache_max_entries () $ sched_workers $ queue_cap $ sessions
        $ chaos $ hedge_ms $ breaker_window $ vnodes $ max_restarts
        $ restart_window $ kill_after $ grace $ run_bench
        $ run_bench_resilience $ bench_requests $ bench_concurrency
        $ bench_stall_ms $ Cli.json ())
  in
  exit (Cmd.eval cmd)
