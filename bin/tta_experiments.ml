(* Run the experiment registry: every reproduced result of the paper as
   a structured paper-vs-measured row (see DESIGN.md's per-experiment
   index and EXPERIMENTS.md for the recorded paper-scale outcomes).

     tta_experiments                 # the fast set (numeric + simulator)
     tta_experiments --all           # also the model-checking verdicts,
                                     # scheduled by the portfolio pool
     tta_experiments --all --nodes 4 # paper-scale model checking
     tta_experiments --all --sequential  # bypass pool and cache
*)

let run all sequential no_cache nodes domains json_path obs =
  let telemetry = Portfolio.Telemetry.create () in
  let outcomes =
    if all then begin
      (* Depths chosen to cover the minimal counterexamples at the
         requested scale. *)
      if sequential then begin
        Printf.printf
          "running the full registry at %d nodes (sequential model \
           checking)...\n%!"
          nodes;
        Core.Experiments.all ~nodes ~safe_depth:100 ~unsafe_depth:100 ()
      end
      else begin
        Printf.printf
          "running the full registry at %d nodes (model checking on %d \
           domain(s), cached)...\n%!"
          nodes domains;
        let cache =
          if no_cache then None else Some (Portfolio.Cache.create ())
        in
        Core.Experiments.all_portfolio ~nodes ~safe_depth:100
          ~unsafe_depth:100 ~domains ?cache ~telemetry
          ?obs:(Cli.obs_collector obs) ()
      end
    end
    else Core.Experiments.quick ()
  in
  let failures = ref 0 in
  List.iter
    (fun o ->
      if not o.Core.Experiments.matches then incr failures;
      Format.printf "%a@.@." Core.Experiments.pp_outcome o)
    outcomes;
  if Portfolio.Telemetry.records telemetry <> [] then
    Format.printf "%a@." Portfolio.Telemetry.pp_table telemetry;
  (match json_path with
  | Some path ->
      Portfolio.Telemetry.dump_json telemetry path;
      Printf.printf "telemetry written to %s\n" path
  | None -> ());
  Printf.printf "%d/%d experiments reproduced\n"
    (List.length outcomes - !failures)
    (List.length outcomes);
  Cli.obs_finish obs;
  exit (if !failures = 0 then 0 else 1)

let () =
  let open Cmdliner in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Also run the model-checking experiments (E1-E5), scheduled by \
             the portfolio pool.")
  in
  let sequential =
    Arg.(
      value & flag
      & info [ "sequential" ]
          ~doc:"Run the model checks sequentially, bypassing pool and cache.")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the verdict cache.")
  in
  let domains =
    Arg.(
      value
      & opt int (Portfolio.Pool.default_domains ())
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:"Worker domains for the portfolio pool (default: all cores).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "tta_experiments"
         ~doc:"Reproduce every result of the paper as paper-vs-measured rows")
      Term.(
        const run $ all $ sequential $ no_cache
        $ Cli.nodes ~default:3 ()
        $ domains $ Cli.json () $ Cli.obs ())
  in
  exit (Cmd.eval cmd)
