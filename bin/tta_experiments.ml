(* Run the experiment registry: every reproduced result of the paper as
   a structured paper-vs-measured row (see DESIGN.md's per-experiment
   index and EXPERIMENTS.md for the recorded paper-scale outcomes).

     tta_experiments                 # the fast set (numeric + simulator)
     tta_experiments --all           # also the model-checking verdicts,
                                     # scheduled by the portfolio pool
     tta_experiments --all --nodes 4 # paper-scale model checking
     tta_experiments --all --sequential  # bypass pool and cache
*)

let () =
  let all = Array.exists (( = ) "--all") Sys.argv in
  let sequential = Array.exists (( = ) "--sequential") Sys.argv in
  let no_cache = Array.exists (( = ) "--no-cache") Sys.argv in
  let int_flag name default =
    let rec find i =
      if i >= Array.length Sys.argv - 1 then default
      else if Sys.argv.(i) = name then int_of_string Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let nodes = int_flag "--nodes" 3 in
  let domains = int_flag "--domains" (Portfolio.Pool.default_domains ()) in
  let telemetry = Portfolio.Telemetry.create () in
  let outcomes =
    if all then begin
      (* Depths chosen to cover the minimal counterexamples at the
         requested scale. *)
      if sequential then begin
        Printf.printf
          "running the full registry at %d nodes (sequential model \
           checking)...\n%!"
          nodes;
        Core.Experiments.all ~nodes ~safe_depth:100 ~unsafe_depth:100 ()
      end
      else begin
        Printf.printf
          "running the full registry at %d nodes (model checking on %d \
           domain(s), cached)...\n%!"
          nodes domains;
        let cache =
          if no_cache then None else Some (Portfolio.Cache.create ())
        in
        Core.Experiments.all_portfolio ~nodes ~safe_depth:100
          ~unsafe_depth:100 ~domains ?cache ~telemetry ()
      end
    end
    else Core.Experiments.quick ()
  in
  let failures = ref 0 in
  List.iter
    (fun o ->
      if not o.Core.Experiments.matches then incr failures;
      Format.printf "%a@.@." Core.Experiments.pp_outcome o)
    outcomes;
  if Portfolio.Telemetry.records telemetry <> [] then
    Format.printf "%a@." Portfolio.Telemetry.pp_table telemetry;
  Printf.printf "%d/%d experiments reproduced\n" (List.length outcomes - !failures)
    (List.length outcomes);
  exit (if !failures = 0 then 0 else 1)
