(* Print the Section 6 analysis: the worked buffer-size examples
   (equations 6, 8, 9), the Figure 3 series, and the leaky-bucket
   empirical validation of equation (1). *)

let print_worked_examples () =
  print_endline "== Worked examples (Section 6) ==";
  List.iter
    (fun (e : Analysis.Buffer.worked_example) ->
      Printf.printf "  %-40s = %.6g %s\n" e.Analysis.Buffer.label
        e.Analysis.Buffer.result e.Analysis.Buffer.unit_)
    (Analysis.Buffer.worked_examples ());
  print_newline ()

let print_figure3 () =
  print_endline
    "== Figure 3: rho_max/rho_min limit vs f_max (feasible region below) ==";
  List.iter
    (fun s -> Format.printf "%a@." Analysis.Figure3.pp_series s)
    (Analysis.Figure3.default_families ());
  (match Analysis.Figure3.highlighted_point () with
  | Some r ->
      Printf.printf
        "highlighted point: f_min = f_max = 128  =>  ratio = %.1f (= f_max/5, \
         not f_max)\n"
        r
  | None -> print_endline "highlighted point infeasible (unexpected)");
  print_newline ()

let print_leaky_bucket () =
  print_endline
    "== Leaky bucket: measured buffer occupancy vs analytic B_min (eq 1) ==";
  let le = Analysis.Frames_catalog.line_encoding_bits in
  Printf.printf "  %-12s %-12s %-8s %-10s %-10s\n" "node rate" "hub rate"
    "frame" "measured" "B_min";
  List.iter
    (fun (node_rate, guardian_rate, frame_bits) ->
      let measured =
        Guardian.Leaky_bucket.required_buffer ~node_rate ~guardian_rate
          ~frame_bits ~le
      in
      let bound =
        Guardian.Leaky_bucket.analytic_bound ~node_rate ~guardian_rate
          ~frame_bits ~le
      in
      Printf.printf "  %-12g %-12g %-8d %-10d %-10.1f\n" node_rate
        guardian_rate frame_bits measured bound)
    [
      (1.0, 1.0002, 2076);
      (1.0002, 1.0, 2076);
      (1.0, 1.0111, 2076);
      (1.0, 1.1, 2076);
      (1.0, 1.3026, 76);
      (1.0, 2.0, 76);
    ];
  print_newline ()

let print_frame_catalog () =
  print_endline "== Frame sizes: specification constants vs executable codec ==";
  Printf.printf
    "  spec: N=%d cold-start=%d I(min)=%d I(protocol)=%d X(max)=%d le=%d\n"
    Analysis.Frames_catalog.min_n_frame_bits
    Analysis.Frames_catalog.min_cold_start_bits
    Analysis.Frames_catalog.min_i_frame_bits
    Analysis.Frames_catalog.protocol_i_frame_bits
    Analysis.Frames_catalog.max_x_frame_bits
    Analysis.Frames_catalog.line_encoding_bits;
  Printf.printf "  codec:";
  List.iter
    (fun (k, bits) -> Printf.printf " %s=%d" k bits)
    (Analysis.Frames_catalog.codec_sizes ());
  print_newline ();
  print_newline ()

let analysis_json () =
  let worked =
    Json.List
      (List.map
         (fun (e : Analysis.Buffer.worked_example) ->
           Json.Obj
             [
               ("label", Json.String e.Analysis.Buffer.label);
               ("result", Json.Float e.Analysis.Buffer.result);
               ("unit", Json.String e.Analysis.Buffer.unit_);
             ])
         (Analysis.Buffer.worked_examples ()))
  in
  let series (s : Analysis.Figure3.series) =
    Json.Obj
      [
        ("f_min", Json.Int s.Analysis.Figure3.f_min);
        ("le", Json.Int s.Analysis.Figure3.le);
        ( "points",
          Json.List
            (List.map
               (fun (p : Analysis.Figure3.point) ->
                 Json.Obj
                   [
                     ("f_max", Json.Int p.Analysis.Figure3.f_max);
                     ( "ratio",
                       match p.Analysis.Figure3.ratio with
                       | None -> Json.Null
                       | Some r -> Json.Float r );
                   ])
               s.Analysis.Figure3.points) );
      ]
  in
  Json.Obj
    [
      ("worked_examples", worked);
      ( "figure3",
        Json.List (List.map series (Analysis.Figure3.default_families ())) );
    ]

let run figure3_only json_path =
  if figure3_only then print_figure3 ()
  else begin
    print_worked_examples ();
    print_figure3 ();
    print_leaky_bucket ();
    print_frame_catalog ()
  end;
  match json_path with
  | Some path ->
      Cli.write_json path (analysis_json ());
      Printf.printf "results written to %s\n" path
  | None -> ()

let () =
  let open Cmdliner in
  let fig3 =
    Arg.(
      value & flag
      & info [ "figure3" ] ~doc:"Print only the Figure 3 data series.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "tta_analysis"
         ~doc:"Buffer-size / frame-size / clock-rate tradeoff analysis")
      Term.(const run $ fig3 $ Cli.json ())
  in
  exit (Cmd.eval cmd)
