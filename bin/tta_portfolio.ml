(* Portfolio-verify the paper's configuration matrix on multiple cores.

   Examples:
     tta_portfolio                          # Section 5 matrix, all cores
     tta_portfolio --nodes 3 --domains 2    # reduced scale, two workers
     tta_portfolio --race -c full-shifting  # race all four engines
     tta_portfolio --json telemetry.json    # dump the run telemetry
     tta_portfolio --trace trace.json       # Chrome trace of every run

   Verdicts are cached under _cache/ (keyed by a content hash of the
   compiled model plus engine parameters), so a re-run only re-checks
   what changed; --no-cache forces cold runs. *)

let pp_verdict ~nodes verdict =
  match verdict with
  | Tta_model.Engine.Holds { detail } ->
      Printf.printf "PROPERTY HOLDS: %s\n" detail
  | Tta_model.Engine.Unknown { detail } -> Printf.printf "UNDECIDED: %s\n" detail
  | Tta_model.Engine.Violated { trace; model } ->
      Printf.printf
        "PROPERTY VIOLATED: a single coupler fault froze an integrated \
         node.\nCounterexample (%d steps):\n%s"
        (Array.length trace)
        (Tta_model.Engine.describe_trace model trace ~nodes);
      (match Symkit.Trace.validate model trace with
      | Ok () -> Printf.printf "(trace replays cleanly against the model)\n"
      | Error e -> Printf.printf "WARNING: trace validation failed: %s\n" e)

let run_race ~config_name ~nodes ~depth ~engines ~cache ~telemetry ~obs
    ~faults ~reach_tuning =
  let cfg =
    (* The named constructors, not [Configs.make], so the raced
       instance is exactly the Section 5 one (full-shifting carries the
       paper's one-error out-of-slot budget). *)
    match Cli.feature_set_of_config config_name with
    | Guardian.Feature_set.Passive -> Tta_model.Configs.passive ~nodes ()
    | Guardian.Feature_set.Time_windows ->
        Tta_model.Configs.time_windows ~nodes ()
    | Guardian.Feature_set.Small_shifting ->
        Tta_model.Configs.small_shifting ~nodes ()
    | Guardian.Feature_set.Full_shifting ->
        Tta_model.Configs.full_shifting ~nodes ()
  in
  Printf.printf "racing %s on %s (%d nodes), depth bound %d\n%!"
    (String.concat " vs "
       (List.map Tta_model.Engine.id_to_string engines))
    (Tta_model.Configs.name cfg)
    nodes depth;
  let r =
    Portfolio.race ?cache ~telemetry ?obs:(Cli.obs_collector obs) ~faults
      ~engines ~max_depth:depth ~reach_tuning cfg
  in
  List.iter
    (fun (e, msg) ->
      Printf.printf "  %-16s FAILED     %s\n"
        (Tta_model.Engine.id_to_string e)
        msg)
    r.Portfolio.failures;
  List.iter
    (fun (e, v, wall) ->
      Printf.printf "  %-16s %-9s %.2fs%s\n"
        (Tta_model.Engine.id_to_string e)
        (Portfolio.Telemetry.outcome_to_string
           (Portfolio.Telemetry.outcome_of_verdict v))
        wall
        (if e = r.Portfolio.engine then "  <- selected (priority)"
         else ""))
    r.Portfolio.runs;
  if r.Portfolio.cache_hit then
    Printf.printf "  (cache hit: verdict served from %s)\n"
      (Tta_model.Engine.id_to_string r.Portfolio.engine);
  Printf.printf "winner: %s in %.2fs\n"
    (Tta_model.Engine.id_to_string r.Portfolio.engine)
    r.Portfolio.wall_s;
  pp_verdict ~nodes r.Portfolio.verdict;
  match r.Portfolio.verdict with
  | Tta_model.Engine.Unknown _ -> 1
  | _ -> 0

let run_matrix ~nodes ~domains ~safe_depth ~unsafe_depth ~cache ~telemetry
    ~obs ~faults ~reach_tuning =
  let jobs =
    Portfolio.section5_jobs ~nodes ?safe_depth ?unsafe_depth ()
  in
  Printf.printf
    "Section 5 matrix at %d nodes: %d jobs across %d domain(s)%s\n%!" nodes
    (List.length jobs) domains
    (match cache with
    | Some c -> Printf.sprintf ", cache at %s/" (Portfolio.Cache.dir c)
    | None -> ", cache disabled");
  let t0 = Unix.gettimeofday () in
  let results =
    Portfolio.run_matrix ~domains ?cache ~telemetry
      ?obs:(Cli.obs_collector obs) ~faults ~reach_tuning jobs
  in
  let dt = Unix.gettimeofday () -. t0 in
  let failures = ref 0 in
  List.iter
    (fun (j, r) ->
      let ok =
        match r.Portfolio.verdict with
        | Tta_model.Engine.Unknown _ ->
            incr failures;
            false
        | _ -> true
      in
      Printf.printf "  %-36s %-9s %7.2fs %s%s\n" j.Portfolio.label
        (Portfolio.Telemetry.outcome_to_string
           (Portfolio.Telemetry.outcome_of_verdict r.Portfolio.verdict))
        r.Portfolio.wall_s
        (if r.Portfolio.cache_hit then "[cache]" else "")
        (if ok then "" else "  <- no verdict"))
    results;
  Printf.printf "matrix wall clock: %.2fs\n" dt;
  !failures

let main config_name race nodes depth safe_depth unsafe_depth domains
    engines_s cache_dir no_cache cache_max reorder par_image strategy
    json_path chaos obs =
  let engines = Cli.engine_ids_of_names engines_s in
  let faults = Cli.faults_of_chaos chaos in
  let reach_tuning =
    Cli.reach_tuning_of ~reorder ~par_image ~strategy ~partitioned:true
      ~gc_watermark:None ~no_restrict:false ()
  in
  let cache =
    if no_cache then None
    else
      Some
        (Portfolio.Cache.create ~dir:cache_dir ?max_entries:cache_max ~faults
           ())
  in
  let telemetry = Portfolio.Telemetry.create () in
  let failures =
    if race || config_name <> "" then
      let config_name = if config_name = "" then "full-shifting" else config_name in
      run_race ~config_name ~nodes ~depth ~engines ~cache ~telemetry ~obs
        ~faults ~reach_tuning
    else
      run_matrix ~nodes ~domains ~safe_depth ~unsafe_depth ~cache ~telemetry
        ~obs ~faults ~reach_tuning
  in
  print_newline ();
  Format.printf "%a" Portfolio.Telemetry.pp_table telemetry;
  (match cache with
  | Some c ->
      Printf.printf "cache: %d hits, %d misses, %d entries%s%s under %s/\n"
        (Portfolio.Cache.hits c) (Portfolio.Cache.misses c)
        (Portfolio.Cache.entries c)
        (match Portfolio.Cache.max_entries c with
        | Some cap ->
            Printf.sprintf " (cap %d, %d evicted)" cap
              (Portfolio.Cache.evictions c)
        | None -> "")
        (match Portfolio.Cache.quarantined c with
        | 0 -> ""
        | n -> Printf.sprintf ", %d quarantined" n)
        (Portfolio.Cache.dir c)
  | None -> ());
  if Resilience.Faults.enabled faults then begin
    Printf.printf "chaos: spec %s\n" (Resilience.Faults.to_spec faults);
    List.iter
      (fun (rule, n) -> Printf.printf "  %-28s fired %d\n" rule n)
      (Resilience.Faults.injections faults)
  end;
  (match json_path with
  | Some path ->
      Portfolio.Telemetry.dump_json telemetry path;
      Printf.printf "telemetry written to %s\n" path
  | None -> ());
  Cli.obs_finish obs;
  exit (if failures = 0 then 0 else 1)

let () =
  let open Cmdliner in
  let config =
    Arg.(
      value & opt string ""
      & info
          [ "c"; "config"; "f"; "feature-set" ]
          ~docv:"CONFIG"
          ~doc:
            "Race the engines on one feature set (passive, time-windows, \
             small-shifting, full-shifting) instead of running the matrix.")
  in
  let race =
    Arg.(
      value & flag
      & info [ "race" ]
          ~doc:
            "Engine-racing mode (implied by $(b,--config)); defaults to \
             full-shifting.")
  in
  let safe_depth =
    Arg.(
      value & opt (some int) None
      & info [ "safe-depth" ] ~docv:"K"
          ~doc:"Matrix mode: iteration bound for the safe rows (default 100).")
  in
  let unsafe_depth =
    Arg.(
      value & opt (some int) None
      & info [ "unsafe-depth" ] ~docv:"K"
          ~doc:"Matrix mode: bound for the violated rows (default 100).")
  in
  let domains =
    Arg.(
      value & opt int (Portfolio.Pool.default_domains ())
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:"Worker domains for the matrix (default: all cores).")
  in
  let cache_dir =
    Arg.(
      value & opt string "_cache"
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Verdict cache directory.")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the verdict cache.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "tta_portfolio"
         ~doc:
           "Multicore portfolio verification of the TTA star-coupler matrix")
      Term.(
        const main $ config $ race $ Cli.nodes ()
        $ Cli.depth ~default:100 ()
        $ safe_depth $ unsafe_depth $ domains $ Cli.engines () $ cache_dir
        $ no_cache
        $ Cli.cache_max_entries ()
        $ Cli.reorder () $ Cli.par_image () $ Cli.strategy ()
        $ Cli.json () $ Cli.chaos () $ Cli.obs ())
  in
  exit (Cmd.eval cmd)
