(* Simulate a TTA cluster: boot it, optionally inject a coupler or node
   fault, and print the event log.

   Examples:
     tta_sim                                      # clean boot, 4 nodes
     tta_sim --coupler-fault out-of-slot --config full-shifting
     tta_sim --node-fault sos --node 2
     tta_sim --campaign 50 --config full-shifting --metrics
*)

open Ttp

let parse_node_fault name node =
  match name with
  | "none" -> Some Sim.Node_fault.Healthy
  | "crash" -> Some Sim.Node_fault.Crashed
  | "sos" -> Some (Sim.Node_fault.Sos { timing = 0.5; value = 0.0 })
  | "babbling" ->
      Some (Sim.Node_fault.Babbling { in_slot = (node + 1) mod 4 })
  | "bad-cstate" -> Some (Sim.Node_fault.Bad_cstate { time_offset = 7 })
  | "masquerade" ->
      Some (Sim.Node_fault.Masquerade { as_slot = (node + 1) mod 4 })
  | _ -> None

let print_summary cluster =
  print_endline "== availability ==";
  Format.printf "%a@." Sim.Stats.pp (Sim.Stats.of_cluster cluster);
  print_endline "== event log ==";
  print_string (Sim.Event_log.to_string (Sim.Cluster.log cluster))

let campaign_json feature_set nodes (s : Sim.Campaign.summary) =
  Json.Obj
    [
      ("feature_set", Json.String (Guardian.Feature_set.to_string feature_set));
      ("nodes", Json.Int nodes);
      ("trials", Json.Int s.Sim.Campaign.trials);
      ("with_healthy_freeze", Json.Int s.Sim.Campaign.with_healthy_freeze);
      ("with_cluster_loss", Json.Int s.Sim.Campaign.with_cluster_loss);
      ( "with_integration_block",
        Json.Int s.Sim.Campaign.with_integration_block );
    ]

let run_campaign feature_set nodes trials json_path obs =
  Printf.printf
    "campaign: %d trials, %d nodes, %s couplers, one random coupler fault \
     per trial\n%!"
    trials nodes
    (Guardian.Feature_set.to_string feature_set);
  let outcomes =
    Sim.Campaign.run ~obs:(Cli.obs_track obs "campaign") ~feature_set ~nodes
      ~trials ()
  in
  let s = Sim.Campaign.summarize outcomes in
  Printf.printf "trials:                 %d\n" s.Sim.Campaign.trials;
  Printf.printf "healthy node froze:     %d\n" s.Sim.Campaign.with_healthy_freeze;
  Printf.printf "cluster lost majority:  %d\n" s.Sim.Campaign.with_cluster_loss;
  Printf.printf "re-integration blocked: %d\n"
    s.Sim.Campaign.with_integration_block;
  match json_path with
  | Some path ->
      Cli.write_json path (campaign_json feature_set nodes s);
      Printf.printf "results written to %s\n" path
  | None -> ()

let run feature_set_name nodes slots coupler_fault channel node_fault node
    campaign json_path obs =
  let feature_set = Cli.feature_set_of_config feature_set_name in
  (match campaign with
  | Some trials -> run_campaign feature_set nodes trials json_path obs
  | None ->
      let medl = Medl.uniform ~nodes () in
      let cluster = Sim.Cluster.create ~feature_set medl in
      let booted = Sim.Cluster.boot cluster in
      Printf.printf "boot: %s\n"
        (if booted then "all nodes active" else "startup incomplete");
      (match coupler_fault with
      | "none" -> ()
      | name -> (
          match Guardian.Fault.of_string name with
          | Some f -> Sim.Cluster.set_coupler_fault cluster ~channel f
          | None ->
              prerr_endline "unknown --coupler-fault";
              exit 2));
      (match node_fault with
      | "none" -> ()
      | name -> (
          match parse_node_fault name node with
          | Some f -> Sim.Cluster.set_node_fault cluster ~node f
          | None ->
              prerr_endline "unknown --node-fault";
              exit 2));
      Sim.Cluster.run cluster ~slots;
      print_summary cluster);
  Cli.obs_finish obs

let () =
  let open Cmdliner in
  let slots =
    Arg.(
      value & opt int 32
      & info [ "s"; "slots" ] ~doc:"Slots to run after boot/injection.")
  in
  let coupler_fault =
    Arg.(
      value & opt string "none"
      & info [ "coupler-fault" ] ~docv:"FAULT"
          ~doc:"Inject after boot: silence, bad-frame, out-of-slot.")
  in
  let channel =
    Arg.(
      value & opt int 0 & info [ "channel" ] ~doc:"Channel for the coupler fault.")
  in
  let node_fault =
    Arg.(
      value & opt string "none"
      & info [ "node-fault" ] ~docv:"FAULT"
          ~doc:"Inject after boot: crash, sos, babbling, bad-cstate, masquerade.")
  in
  let node =
    Arg.(value & opt int 0 & info [ "node" ] ~doc:"Node for the node fault.")
  in
  let campaign =
    Arg.(
      value
      & opt (some int) None
      & info [ "campaign" ] ~docv:"TRIALS"
          ~doc:"Run a randomized fault-injection campaign instead.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "tta_sim" ~doc:"Simulate a TTA cluster with fault injection")
      Term.(
        const run
        $ Cli.config ~default:"time-windows" ()
        $ Cli.nodes () $ slots $ coupler_fault $ channel $ node_fault $ node
        $ campaign $ Cli.json () $ Cli.obs ())
  in
  exit (Cmd.eval cmd)
