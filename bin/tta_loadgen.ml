(* Load generator for tta_served: replays a seeded synthetic request
   stream from the Section 5 configuration matrix and reports
   throughput, latency percentiles and the dedup/shedding breakdown.

   Examples:
     tta_loadgen --socket /tmp/tta.sock --requests 200 --concurrency 4
     tta_loadgen --socket /tmp/tta.sock --requests 100 --rate 50 \
                 --deadline-ms 2000 --json BENCH_service.json

   --rate selects the open-loop shape (target requests/second over one
   connection); --concurrency (the default, 4) the closed-loop shape
   (N connections, one outstanding request each). *)

let main socket requests rate concurrency seed nodes depth nodes_choices_s
    depths_s deadline_ms configs_s engines_s retry_budget json_path =
  let addr =
    match Service.Server.addr_of_string socket with
    | Ok a -> a
    | Error e ->
        prerr_endline ("tta_loadgen: " ^ e);
        exit 2
  in
  let split s =
    match
      List.filter
        (fun p -> p <> "")
        (List.map String.trim (String.split_on_char ',' s))
    with
    | [] -> None
    | l -> Some l
  in
  let split_ints flag s =
    Option.map
      (List.map (fun p ->
           match int_of_string_opt p with
           | Some n -> n
           | None ->
               Printf.eprintf "tta_loadgen: %s: %S is not an integer\n" flag p;
               exit 2))
      (split s)
  in
  let mode =
    match rate with
    | Some r when r > 0. -> Service.Loadgen.Open_loop r
    | _ -> Service.Loadgen.Closed_loop concurrency
  in
  let report =
    Service.Loadgen.run ~seed ~nodes ~depth
      ?nodes_choices:(split_ints "--nodes-choices" nodes_choices_s)
      ?depths:(split_ints "--depths" depths_s)
      ?deadline_ms ?configs:(split configs_s) ?engines:(split engines_s)
      ~retry_budget ~mode ~requests addr
  in
  Format.printf "%a" Service.Loadgen.pp_report report;
  (match json_path with
  | Some path ->
      Cli.write_json path (Service.Loadgen.report_to_json ~mode report);
      Printf.printf "report written to %s\n" path
  | None -> ());
  (* Protocol errors are a failure of the daemon or of this tool;
     overload shedding and deadline misses are expected behaviors. *)
  exit (if report.Service.Loadgen.protocol_errors = 0 then 0 else 1)

let () =
  let open Cmdliner in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "s"; "socket" ] ~docv:"ADDR"
          ~doc:"Daemon address: a Unix-domain socket path or HOST:PORT.")
  in
  let requests =
    Arg.(
      value & opt int 100
      & info [ "r"; "requests" ] ~docv:"N" ~doc:"Requests to send.")
  in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"RPS"
          ~doc:"Open-loop mode: send at this target rate (req/s).")
  in
  let concurrency =
    Arg.(
      value & opt int 4
      & info [ "concurrency" ] ~docv:"N"
          ~doc:"Closed-loop mode (default): concurrent connections.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"Stream sampling seed.")
  in
  let nodes_choices =
    Arg.(
      value & opt string ""
      & info [ "nodes-choices" ] ~docv:"LIST"
          ~doc:
            "Comma-separated node counts to sample per request (overrides \
             --nodes). Distinct counts shard to distinct cluster workers.")
  in
  let depths =
    Arg.(
      value & opt string ""
      & info [ "depths" ] ~docv:"LIST"
          ~doc:
            "Comma-separated depths to sample per request (overrides \
             --depth); distinct depths defeat request coalescing.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Attach this deadline to every request.")
  in
  let configs =
    Arg.(
      value & opt string ""
      & info [ "configs" ] ~docv:"LIST"
          ~doc:
            "Comma-separated feature sets to sample from (default: all \
             four).")
  in
  let retry_budget =
    Arg.(
      value & opt int 2
      & info [ "retry-budget" ] ~docv:"N"
          ~doc:
            "Resend a request up to N times after a dropped connection or \
             an engine_failed response (0 disables retries).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "tta_loadgen"
         ~doc:"Synthetic load for the TTA verification daemon")
      Term.(
        const main $ socket $ requests $ rate $ concurrency $ seed
        $ Cli.nodes ~default:2 ()
        $ Cli.depth ~default:24 ()
        $ nodes_choices $ depths $ deadline_ms $ configs
        $ Cli.engines ~default:"bdd" ()
        $ retry_budget $ Cli.json ())
  in
  exit (Cmd.eval cmd)
