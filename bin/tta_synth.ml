(* Guardian design-space synthesis: sweep the Section 6 space, reject
   candidates analytically, model-check the survivors, print the
   containment/cost Pareto frontier.

   Examples:
     tta_synth --sample 120 --seed 7        # seeded sample + paper anchors
     tta_synth --sweep                      # the full 4800-point grid
     tta_synth --via-service /tmp/tta.sock  # survivors as daemon traffic
     tta_synth --via-service 127.0.0.1:7171 --json synth.json
     tta_synth --chaos 42:engine            # chaos on the direct pool path

   Exits 0 when the run kept the acceptance invariants: the analytic
   pre-filter rejected something, every model-checked candidate is
   inside the Section 6 envelope, the frontier is non-empty — and, when
   the paper anchors are swept (always, unless --no-anchors), the
   frontier reproduces the paper's shape. *)

open Cmdliner

let main sweep sample seed nodes depth via_service no_anchors chaos json_path
    obs =
  let space = Synthesis.Space.default () in
  let sample = if sweep then None else Some sample in
  let via =
    match via_service with
    | None -> Synthesis.Direct
    | Some s -> (
        match Service.Server.addr_of_string s with
        | Ok addr -> Synthesis.Service addr
        | Error e ->
            Printf.eprintf "tta_synth: bad --via-service address %S: %s\n" s e;
            exit 2)
  in
  let faults = Cli.faults_of_chaos chaos in
  (match via with
  | Synthesis.Direct -> ()
  | Synthesis.Service _ ->
      if chaos <> None then
        prerr_endline
          "tta_synth: note: --chaos applies to the direct pool path; the \
           service path inherits the daemon's own --chaos");
  let anchors = not no_anchors in
  Printf.printf "synthesizing over %d-point space (%s, %d nodes)%s\n%!"
    (Synthesis.Space.size space)
    (match sample with
    | None -> "full sweep"
    | Some n -> Printf.sprintf "sample %d, seed %d" n seed)
    nodes
    (match via with
    | Synthesis.Direct -> ""
    | Synthesis.Service addr ->
        Printf.sprintf ", via daemon at %s" (Service.Server.addr_to_string addr));
  let r =
    Synthesis.run ~seed ?sample ~anchors ~nodes ?depth ~faults ~via space
  in
  Format.printf "%a" Synthesis.pp_report r;
  Option.iter (fun path -> Cli.write_json path (Synthesis.report_to_json r))
    json_path;
  Cli.obs_finish obs;
  let ok =
    r.Synthesis.rejected > 0 && r.Synthesis.envelope_agreement
    && r.Synthesis.frontier <> []
    && ((not anchors) || Synthesis.paper_frontier_ok r)
  in
  if ok then 0 else 1

let () =
  let sweep =
    Arg.(value & flag & info [ "sweep" ] ~doc:"Enumerate the full grid.")
  in
  let sample =
    Arg.(
      value & opt int 120
      & info [ "sample" ] ~docv:"N"
          ~doc:"Sample $(docv) candidates (ignored under $(b,--sweep)).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Sampling seed.")
  in
  let depth =
    Arg.(
      value & opt (some int) None
      & info [ "d"; "depth" ] ~docv:"BOUND"
          ~doc:
            "Verification bound (default: 100 for the direct BDD jobs, a \
             20/22/24 BMC ratchet via the service).")
  in
  let via_service =
    Arg.(
      value & opt (some string) None
      & info [ "via-service" ] ~docv:"ADDR"
          ~doc:
            "Check survivors against a running verification daemon \
             (HOST:PORT or a Unix socket path) instead of the in-process \
             pool — the sweep becomes warm-session traffic.")
  in
  let no_anchors =
    Arg.(
      value & flag
      & info [ "no-anchors" ]
          ~doc:
            "Do not force the four Section 5 designs into the candidate \
             list.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "tta_synth"
         ~doc:
           "Guardian design-space synthesis over the Section 6 envelope \
            with a model-checked Pareto frontier")
      Term.(
        const main $ sweep $ sample $ seed $ Cli.nodes ~default:2 () $ depth
        $ via_service $ no_anchors $ Cli.chaos () $ Cli.json () $ Cli.obs ())
  in
  exit (Cmd.eval' cmd)
