(* The observability library: span nesting, cross-domain counter
   soundness, the Chrome trace exporter (against a golden file, with an
   injected deterministic clock) and the zero-allocation guarantee of
   the disabled path. *)

(* A deterministic clock: every reading advances time by 1ms, so span
   starts, durations and instants are fully reproducible. *)
let stepping_clock () =
  let t = ref 0.0 in
  fun () ->
    let v = !t in
    t := v +. 0.001;
    v

(* ------------------------------------------------------------------ *)
(* Span nesting *)

let jsonl_records col =
  Obs.Collector.to_jsonl col
  |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l ->
         match Json.of_string l with
         | Ok j -> j
         | Error e -> Alcotest.failf "unparseable jsonl line %S: %s" l e)

let field name j = Option.get (Json.member name j)

let test_span_nesting () =
  let col = Obs.Collector.create ~clock:(stepping_clock ()) () in
  let t = Obs.Collector.track col "nest" in
  let parent = Obs.start t "parent" in
  let child = Obs.start t "child" in
  Obs.instant t "marker";
  Obs.stop child;
  Obs.stop parent;
  (* A sibling opened after the parent closed is back at depth 0. *)
  let sibling = Obs.start t "sibling" in
  Obs.stop sibling;
  let spans =
    List.filter
      (fun j ->
        match Json.member "type" j with
        | Some (Json.String ("span" | "instant")) -> true
        | _ -> false)
      (jsonl_records col)
  in
  let depth_of name =
    let j =
      List.find
        (fun j -> Json.member "name" j = Some (Json.String name))
        spans
    in
    Option.get (Json.int_value (field "depth" j))
  in
  Alcotest.(check int) "parent at depth 0" 0 (depth_of "parent");
  Alcotest.(check int) "child nested at depth 1" 1 (depth_of "child");
  Alcotest.(check int) "instant inherits open depth" 2 (depth_of "marker");
  Alcotest.(check int) "sibling back at depth 0" 0 (depth_of "sibling");
  (* Timeline containment: the child lies within the parent. *)
  let bounds name =
    let j =
      List.find
        (fun j -> Json.member "name" j = Some (Json.String name))
        spans
    in
    let ts = Option.get (Json.float_value (field "ts_us" j)) in
    let dur = Option.get (Json.float_value (field "dur_us" j)) in
    (ts, ts +. dur)
  in
  let p0, p1 = bounds "parent" and c0, c1 = bounds "child" in
  Alcotest.(check bool) "child starts after parent" true (c0 >= p0);
  Alcotest.(check bool) "child ends before parent" true (c1 <= p1)

let test_with_span_restores_depth_on_raise () =
  let col = Obs.Collector.create ~clock:(stepping_clock ()) () in
  let t = Obs.Collector.track col "raise" in
  (try
     Obs.with_span t "explodes" (fun () -> failwith "boom")
   with Failure _ -> ());
  let after = Obs.start t "after" in
  Obs.stop after;
  let after_depth =
    List.find_map
      (fun j ->
        if Json.member "name" j = Some (Json.String "after") then
          Option.bind (Json.member "depth" j) Json.int_value
        else None)
      (jsonl_records col)
  in
  Alcotest.(check (option int)) "depth restored after raise" (Some 0)
    after_depth

(* ------------------------------------------------------------------ *)
(* Concurrent increments from several domains *)

let test_concurrent_counters () =
  let col = Obs.Collector.create () in
  let t = Obs.Collector.track col "shared" in
  let c = Obs.counter t "hits" in
  let g = Obs.gauge t "peak" in
  let per_domain = 25_000 and domains = 4 in
  let worker d () =
    for i = 1 to per_domain do
      Obs.tick c;
      Obs.record g ((d * per_domain) + i)
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  let cs = Obs.counters t in
  Alcotest.(check (option int)) "no lost increments"
    (Some (domains * per_domain))
    (List.assoc_opt "hits" cs);
  Alcotest.(check (option int)) "gauge keeps the global max"
    (Some (domains * per_domain))
    (List.assoc_opt "peak" cs);
  (* Aggregation across tracks: counters sum, gauges max. *)
  let t2 = Obs.Collector.track col "shared2" in
  Obs.incr_by t2 "hits" 5;
  Obs.set_max t2 "peak" 1;
  let tot = Obs.Collector.totals col in
  Alcotest.(check (option int)) "totals sum counters"
    (Some ((domains * per_domain) + 5))
    (List.assoc_opt "hits" tot);
  Alcotest.(check (option int)) "totals max gauges"
    (Some (domains * per_domain))
    (List.assoc_opt "peak" tot)

(* ------------------------------------------------------------------ *)
(* Chrome trace exporter golden *)

let golden_path = "golden/obs_trace.expected"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let trace_scenario () =
  let col = Obs.Collector.create ~clock:(stepping_clock ()) () in
  let t = Obs.Collector.track col "E4 full-shifting/bdd" in
  let run = Obs.start t ~args:[ ("engine", "bdd") ] "engine.run" in
  let iter = Obs.start t "reach.iteration" in
  Obs.instant t "reach.fixpoint";
  Obs.stop iter;
  Obs.stop run;
  Obs.incr_by t "bdd.alloc" 42;
  Obs.set_max t "reach.peak_nodes" 7;
  let pool = Obs.Collector.track col "pool" in
  Obs.incr_by pool "pool.tasks" 3;
  col

let test_chrome_trace_golden () =
  let col = trace_scenario () in
  let actual =
    Json.to_string ~pretty:true (Obs.Collector.chrome_trace col) ^ "\n"
  in
  (* Left next to the test binary so a legitimate format change can be
     promoted with: cp _build/default/test/obs_trace.actual
     test/golden/obs_trace.expected *)
  let oc = open_out_bin "obs_trace.actual" in
  output_string oc actual;
  close_out oc;
  let expected = read_file golden_path in
  Alcotest.(check string) "chrome trace matches golden" expected actual;
  (* And the trace must be valid JSON of the trace_event shape. *)
  match Json.of_string actual with
  | Error e -> Alcotest.failf "trace does not reparse: %s" e
  | Ok j ->
      let events = Json.to_list (field "traceEvents" j) in
      let phases =
        List.filter_map
          (fun e -> Option.bind (Json.member "ph" e) Json.string_value)
          events
      in
      List.iter
        (fun ph ->
          Alcotest.(check bool)
            ("phase " ^ ph ^ " present")
            true (List.mem ph phases))
        [ "M"; "X"; "i"; "C" ]

(* ------------------------------------------------------------------ *)
(* Telemetry names golden: dashboards, the bench JSON consumers and the
   service metrics all key on these strings, so a rename must fail a
   test, not silently break a consumer. *)

let test_bdd_counter_names_golden () =
  let m = Bdd.create_manager () in
  ignore (Bdd.dand m (Bdd.var m 0) (Bdd.var m 1));
  Alcotest.(check (list string))
    "Bdd.counters names are pinned"
    [
      "bdd.cache_hits";
      "bdd.cache_misses";
      "bdd.cache_sweeps";
      "bdd.gc_count";
      "bdd.nodes_allocated";
      "bdd.reorder_count";
      "bdd.reorder_gain";
    ]
    (List.map fst (Bdd.counters m))

let test_engine_run_counter_names_golden () =
  (* A real (tiny) BDD-engine run must surface the reachability and
     BDD memory-pressure telemetry under these exact names. *)
  let cfg = Tta_model.Configs.passive ~nodes:2 () in
  let e = Tta_model.Engine.get Tta_model.Engine.Bdd_reach in
  let r = e.Tta_model.Engine.run ~max_depth:6 cfg in
  let names = List.map fst r.Tta_model.Engine.counters in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    [
      "bdd.cache_hits";
      "bdd.cache_misses";
      "bdd.gc_count";
      "bdd.nodes_allocated";
      "bdd.reorder_count";
      "bdd.reorder_gain";
      "bdd.live_nodes";
      "bdd.peak_nodes";
      "reach.iterations";
      "reach.peak_nodes";
      "reach.frontier_nodes";
      "reach.partitions";
      "reach.image_domains";
      "gc.minor_collections";
      "gc.major_collections";
    ];
  (* Gauges carry real values: the peak is at least the survivors. *)
  let get n = List.assoc n r.Tta_model.Engine.counters in
  Alcotest.(check bool) "live_nodes positive" true (get "bdd.live_nodes" > 0);
  Alcotest.(check bool) "peak >= live" true
    (get "bdd.peak_nodes" >= get "bdd.live_nodes");
  Alcotest.(check bool) "partitioned by default" true
    (get "reach.partitions" > 1)

(* ------------------------------------------------------------------ *)
(* Disabled-path overhead guard *)

let test_disabled_path_allocates_nothing () =
  let c = Obs.counter Obs.disabled "x" in
  let g = Obs.gauge Obs.disabled "y" in
  (* Warm up so any lazy setup is done before measuring. *)
  Obs.tick c;
  Obs.record g 1;
  let w0 = Gc.minor_words () in
  for i = 1 to 1_000_000 do
    Obs.tick c;
    Obs.add c 2;
    Obs.record g i
  done;
  let s = Obs.start Obs.disabled "nope" in
  Obs.stop s;
  Obs.instant Obs.disabled "nope";
  let w1 = Gc.minor_words () in
  (* Gc.minor_words itself boxes its float result; anything beyond a
     handful of words means the hot loop allocated. *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled path allocated %.0f words" (w1 -. w0))
    true
    (w1 -. w0 < 64.0);
  Alcotest.(check (list (pair string int))) "disabled handle has no cells"
    [] (Obs.counters Obs.disabled);
  Alcotest.(check bool) "disabled is not enabled" false
    (Obs.enabled Obs.disabled)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting depths and containment" `Quick
            test_span_nesting;
          Alcotest.test_case "with_span unwinds on raise" `Quick
            test_with_span_restores_depth_on_raise;
        ] );
      ( "cells",
        [
          Alcotest.test_case "concurrent increments from 4 domains" `Quick
            test_concurrent_counters;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace golden" `Quick
            test_chrome_trace_golden;
        ] );
      ( "names",
        [
          Alcotest.test_case "bdd counter names golden" `Quick
            test_bdd_counter_names_golden;
          Alcotest.test_case "engine run counter names golden" `Quick
            test_engine_run_counter_names_golden;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "disabled path does not allocate" `Quick
            test_disabled_path_allocates_nothing;
        ] );
    ]
