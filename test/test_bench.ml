(* Schema smoke test over the committed BENCH_*.json files. Every
   bench artifact the repo commits must decode via lib/json, carry its
   required keys, and still clear the headline bars it was committed
   to demonstrate — so a stale or hand-mangled bench fails `dune
   runtest` instead of silently rotting. Tests run from
   _build/default/test, so the repo root is one level up. *)

let load name =
  let path = Filename.concat ".." name in
  let ic = open_in path in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string raw with
  | Ok json -> json
  | Error e -> Alcotest.failf "%s does not parse: %s" name e

let check_keys name json keys =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (name ^ ": has " ^ k)
        true
        (Json.member k json <> None))
    keys

let get_bool name json key =
  match Json.member key json with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "%s: %s is not a bool" name key

let get_num name json key =
  match Json.member key json with
  | Some (Json.Int i) -> float_of_int i
  | Some (Json.Float f) -> f
  | _ -> Alcotest.failf "%s: %s is not a number" name key

let get_rows name json =
  match Json.member "rows" json with
  | Some (Json.List rows) -> rows
  | _ -> Alcotest.failf "%s: rows is not a list" name

(* ------------------------------------------------------------------ *)

let test_cluster () =
  let name = "BENCH_cluster.json" in
  let j = load name in
  check_keys name j
    [ "bench"; "generated_by"; "workload"; "rows"; "speedup_at_max_workers" ];
  let rows = get_rows name j in
  Alcotest.(check bool) "cluster: has rows" true (rows <> []);
  List.iter
    (fun row ->
      check_keys name row
        [
          "workers";
          "throughput_rps";
          "speedup";
          "ok";
          "holds";
          "violated";
          "unknown";
          "protocol_errors";
          "retries";
          "p50_ms";
          "p99_ms";
          "imbalance";
          "per_worker";
        ])
    rows;
  Alcotest.(check bool) "cluster: scales at max workers" true
    (get_num name j "speedup_at_max_workers" >= 3.0)

let test_sessions () =
  let name = "BENCH_sessions.json" in
  let j = load name in
  check_keys name j
    [
      "nodes";
      "engine";
      "queries";
      "verdicts_agree";
      "reused";
      "cold_p50_ms";
      "cold_p95_ms";
      "warm_p50_ms";
      "warm_p95_ms";
      "speedup_p50";
      "speedup_p95";
      "rows";
    ];
  let rows = get_rows name j in
  Alcotest.(check bool) "sessions: has rows" true (rows <> []);
  List.iter
    (fun row ->
      check_keys name row
        [ "family"; "depth"; "verdict"; "cold_ms"; "warm_ms"; "reused" ])
    rows;
  Alcotest.(check bool) "sessions: verdicts agree" true
    (get_bool name j "verdicts_agree");
  Alcotest.(check bool) "sessions: warm path reused" true
    (get_num name j "reused" > 0.0);
  Alcotest.(check bool) "sessions: warm speedup" true
    (get_num name j "speedup_p50" >= 1.5)

let test_synth () =
  let name = "BENCH_synth.json" in
  let j = load name in
  check_keys name j
    [
      "nodes";
      "seed";
      "space_size";
      "candidates";
      "rejected";
      "rejections";
      "survivors";
      "upheld";
      "breached";
      "undetermined";
      "envelope_agreement";
      "frontier_size";
      "frontier";
      "paper_frontier";
      "candidates_per_s";
      "wall_s";
      "verdicts_agree";
      "service_requests";
      "session_reuses";
      "session_reuse_rate";
      "service_wall_s";
    ];
  Alcotest.(check bool) "synth: sweep is non-trivial" true
    (get_num name j "candidates" >= 200.0);
  Alcotest.(check bool) "synth: pre-filter rejected something" true
    (get_num name j "rejected" > 0.0);
  Alcotest.(check bool) "synth: envelope agreement" true
    (get_bool name j "envelope_agreement");
  Alcotest.(check bool) "synth: paper frontier" true
    (get_bool name j "paper_frontier");
  Alcotest.(check bool) "synth: direct and service agree" true
    (get_bool name j "verdicts_agree");
  Alcotest.(check bool) "synth: warm-session reuse above half" true
    (get_num name j "session_reuse_rate" > 0.5);
  (match Json.member "frontier" j with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "synth: frontier is empty or not a list");
  match Json.member "rejections" j with
  | Some (Json.Obj ((_ :: _) as kvs)) ->
      Alcotest.(check bool) "synth: rejection counts are ints" true
        (List.for_all (function _, Json.Int _ -> true | _ -> false) kvs)
  | _ -> Alcotest.fail "synth: rejections is not an object"

let test_chaos () =
  let name = "BENCH_chaos.json" in
  let j = load name in
  check_keys name j
    [
      "mode";
      "requests";
      "ok";
      "degraded";
      "holds";
      "violated";
      "unknown";
      "protocol_errors";
      "retries";
      "conn_retries";
      "engine_retries";
      "engine_failed";
      "cache_hits";
      "coalesced";
      "hedged";
      "breaker_opens";
      "p50_ms";
      "p99_ms";
    ];
  (* The chaos run's whole point: every request answered despite the
     injected faults, the retry budget visibly spent. *)
  Alcotest.(check bool) "chaos: all answered" true
    (get_num name j "ok" +. get_num name j "degraded"
    = get_num name j "requests");
  Alcotest.(check bool) "chaos: no protocol errors" true
    (get_num name j "protocol_errors" = 0.0);
  Alcotest.(check bool) "chaos: retries split sums" true
    (get_num name j "conn_retries" +. get_num name j "engine_retries"
    = get_num name j "retries")

let test_resilience () =
  let name = "BENCH_resilience.json" in
  let j = load name in
  check_keys name j
    [
      "bench";
      "generated_by";
      "workload";
      "direct_reference";
      "rows";
      "hedge_p99_speedup";
    ];
  let rows = get_rows name j in
  Alcotest.(check int) "resilience: four rows" 4 (List.length rows);
  List.iter
    (fun row ->
      check_keys name row
        [
          "row";
          "chaos";
          "hedge_ms";
          "ok";
          "degraded";
          "availability";
          "holds";
          "violated";
          "unknown";
          "protocol_errors";
          "conn_retries";
          "engine_retries";
          "hedged";
          "breaker_opens";
          "p50_ms";
          "p99_ms";
          "injections";
        ];
      Alcotest.(check bool) "resilience: row fully available" true
        (get_num name row "availability" = 1.0);
      Alcotest.(check bool) "resilience: row clean" true
        (get_num name row "protocol_errors" = 0.0))
    rows;
  (* Verdict fidelity under chaos, re-checked from the committed
     numbers (the bench exe already enforced it at generation time). *)
  let dr =
    match Json.member "direct_reference" j with
    | Some d -> d
    | None -> Alcotest.fail "resilience: no direct_reference"
  in
  List.iter
    (fun row ->
      List.iter
        (fun k ->
          Alcotest.(check bool)
            ("resilience: " ^ k ^ " matches direct run")
            true
            (get_num name row k = get_num name dr k))
        [ "holds"; "violated"; "unknown" ])
    rows;
  Alcotest.(check bool) "resilience: hedging improves p99" true
    (get_num name j "hedge_p99_speedup" > 1.0)

let get_str name json key =
  match Json.member key json with
  | Some (Json.String s) -> s
  | _ -> Alcotest.failf "%s: %s is not a string" name key

let test_bdd () =
  let name = "BENCH_bdd.json" in
  let j = load name in
  check_keys name j
    [
      "nodes";
      "paper_scale";
      "par_domains";
      "reorder_watermark";
      "baseline_budget_s";
      "verdicts_agree";
      "min_speedup_vs_monolithic";
      "speedup";
      "baseline";
      "rows";
    ];
  (* The committed artifact must be the paper-scale run: the whole
     point of the matrix is the 4-node E1-E5 wall under 30s. *)
  Alcotest.(check bool) "bdd: paper scale" true (get_bool name j "paper_scale");
  Alcotest.(check bool) "bdd: 4 nodes" true (get_num name j "nodes" >= 4.0);
  Alcotest.(check bool) "bdd: verdicts agree" true
    (get_bool name j "verdicts_agree");
  Alcotest.(check bool) "bdd: beats monolithic baseline 2x" true
    (get_num name j "min_speedup_vs_monolithic" >= 2.0);
  let rows = get_rows name j in
  (* 3 strategies x {1, N} domains x {off, on} reordering per config. *)
  Alcotest.(check int) "bdd: five configs x twelve combos" 60
    (List.length rows);
  let seen = Hashtbl.create 16 in
  List.iter
    (fun row ->
      check_keys name row
        [
          "config";
          "combo";
          "strategy";
          "par_domains";
          "reorder_watermark";
          "verdict";
          "trace_len";
          "iterations";
          "peak_nodes";
          "partitions";
          "gc_count";
          "reorder_count";
          "reorder_gain";
          "live_nodes";
          "bdd_peak_nodes";
          "wall_s";
        ];
      Hashtbl.replace seen
        ( get_str name row "strategy",
          get_num name row "par_domains" > 1.0,
          get_num name row "reorder_watermark" > 0.0 )
        ();
      (* The headline bar — each experiment under 30s — is on the
         default-tuned row; the instrumented combos (reordering pays
         its sifting cost up front) get a looser sanity cap. *)
      let cap = if get_str name row "combo" = "bfs" then 30.0 else 120.0 in
      Alcotest.(check bool)
        (Printf.sprintf "bdd: %s/%s under %.0fs"
           (get_str name row "config")
           (get_str name row "combo") cap)
        true
        (get_num name row "wall_s" < cap))
    rows;
  List.iter
    (fun s ->
      List.iter
        (fun par ->
          List.iter
            (fun ro ->
              Alcotest.(check bool)
                (Printf.sprintf "bdd: combo %s/par:%b/reorder:%b covered" s
                   par ro)
                true
                (Hashtbl.mem seen (s, par, ro)))
            [ false; true ])
        [ false; true ])
    [ "bfs"; "chaining"; "saturation" ]

(* The committed paper-scale transcript: its Section 5.2 verdict table
   must list exactly the experiment registry's jobs (E1-E5 plus the E9
   ablation), and every measured verdict must match its expectation.
   Parsing the human-readable table keeps the committed artifact and
   the registry from drifting apart silently. *)
let test_paper_scale_table () =
  let name = "bench/bench_paper_scale.txt" in
  let path = Filename.concat ".." name in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  let labels =
    List.map
      (fun (job : Portfolio.job) -> job.Portfolio.label)
      (Portfolio.section5_jobs ~nodes:4 ())
  in
  let expects =
    [ "holds"; "holds"; "holds"; "violated"; "violated"; "violated" ]
  in
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let field key line =
    let klen = String.length key and n = String.length line in
    let rec find i =
      if i + klen > n then
        Alcotest.failf "%s: row %S has no %S field" name line key
      else if String.sub line i klen = key then
        String.trim (String.sub line (i + klen) (n - i - klen))
      else find (i + 1)
    in
    find 0
  in
  List.iter2
    (fun label expect ->
      match List.find_opt (starts_with label) lines with
      | None -> Alcotest.failf "%s: no row for %S" name label
      | Some line ->
          let expect_field =
            match String.split_on_char ' ' (field "expect:" line) with
            | w :: _ -> w
            | [] -> ""
          in
          Alcotest.(check string)
            (label ^ ": expectation matches the registry")
            expect expect_field;
          Alcotest.(check bool)
            (label ^ ": got matches expect")
            true
            (starts_with expect (field "got:" line)))
    labels expects

let () =
  Alcotest.run "bench schemas"
    [
      ( "committed artifacts",
        [
          Alcotest.test_case "BENCH_cluster.json" `Quick test_cluster;
          Alcotest.test_case "BENCH_sessions.json" `Quick test_sessions;
          Alcotest.test_case "BENCH_synth.json" `Quick test_synth;
          Alcotest.test_case "BENCH_chaos.json" `Quick test_chaos;
          Alcotest.test_case "BENCH_resilience.json" `Quick test_resilience;
          Alcotest.test_case "BENCH_bdd.json" `Quick test_bdd;
          Alcotest.test_case "bench_paper_scale.txt" `Quick
            test_paper_scale_table;
        ] );
    ]
