(* Tests for lib/sessions: the warm solver-session pool.

   The load-bearing property is verdict equality — a request served by
   a warm pooled session must answer exactly what a cold engine run at
   the same bound answers, across the full Section 5 configuration
   matrix and both SAT engines. The rest covers the pool mechanics
   (keying, hits/misses, LRU eviction) and the incremental win itself
   (a warm depth-(k+1) solve spends strictly fewer conflicts than a
   cold session solving 0..k+1). *)

module Engine = Tta_model.Engine
module Configs = Tta_model.Configs

let nodes = 2

let matrix =
  [
    ("passive", Configs.passive ~nodes ());
    ("time-windows", Configs.time_windows ~nodes ());
    ("small-shifting", Configs.small_shifting ~nodes ());
    ("full-shifting", Configs.full_shifting ~nodes ());
  ]

(* ------------------------------------------------------------------ *)
(* Family keying *)

let test_family_of () =
  let fam cfg = Sessions.family_of cfg in
  Alcotest.(check string) "fingerprint is deterministic"
    (fam (Configs.passive ~nodes ()))
    (fam (Configs.passive ~nodes ()));
  Alcotest.(check bool) "node count changes the family" true
    (fam (Configs.passive ~nodes:2 ()) <> fam (Configs.passive ~nodes:3 ()));
  Alcotest.(check bool) "feature set changes the family" true
    (fam (Configs.passive ~nodes ())
    <> fam (Configs.full_shifting ~nodes ()));
  (* The whole point: the family is bound- and property-independent,
     so near-miss requests (same model, different depth) share it. *)
  Alcotest.(check bool) "distinct matrix rows get distinct families" true
    (let fams = List.map (fun (_, cfg) -> fam cfg) matrix in
     List.length (List.sort_uniq compare fams) = List.length fams)

let test_non_sat_engine_rejected () =
  let pool = Sessions.create () in
  Alcotest.check_raises "bdd engine is not session-backed"
    (Invalid_argument "Sessions.run: bdd-reachability is not session-backed")
    (fun () ->
      ignore
        (Sessions.run pool ~engine:Engine.Bdd_reach ~max_depth:4
           (Configs.passive ~nodes ())))

(* ------------------------------------------------------------------ *)
(* Verdict equality: pooled warm sessions vs cold engine runs *)

let verdict_key = function
  | Engine.Holds { detail } -> "holds: " ^ detail
  | Engine.Unknown { detail } -> "unknown: " ^ detail
  | Engine.Violated { trace; _ } ->
      Printf.sprintf "violated in %d steps" (Array.length trace)

let check_matrix_equality ~engine ~max_depth =
  let pool = Sessions.create () in
  let ename = Engine.id_to_string engine in
  List.iter
    (fun (name, cfg) ->
      let cold =
        ((Engine.get engine).Engine.run ~max_depth cfg).Engine.verdict
      in
      (* Two pooled passes: the first builds the session, the second
         must find it warm — and both must answer like the cold run. *)
      let r1, a1 = Sessions.run pool ~engine ~max_depth cfg in
      let r2, a2 = Sessions.run pool ~engine ~max_depth cfg in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s cold pass verdict" ename name)
        (verdict_key cold)
        (verdict_key r1.Engine.verdict);
      Alcotest.(check string)
        (Printf.sprintf "%s/%s warm pass verdict" ename name)
        (verdict_key cold)
        (verdict_key r2.Engine.verdict);
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s first pass is a miss" ename name)
        false a1.Sessions.reused;
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s second pass is warm" ename name)
        true a2.Sessions.reused)
    matrix

let test_bmc_matrix_equality () =
  check_matrix_equality ~engine:Engine.Sat_bmc ~max_depth:12

let test_induction_matrix_equality () =
  check_matrix_equality ~engine:Engine.Sat_induction ~max_depth:8

let test_warm_deeper_bound_equality () =
  (* The near-miss pattern the pool exists for: the same family asked
     at increasing bounds. Every warm answer must equal a cold run at
     that bound, and the session's unrolling must carry over. *)
  let pool = Sessions.create () in
  let cfg = Configs.full_shifting ~nodes () in
  List.iter
    (fun depth ->
      let cold =
        ((Engine.get Engine.Sat_bmc).Engine.run ~max_depth:depth cfg)
          .Engine.verdict
      in
      let r, _ = Sessions.run pool ~engine:Engine.Sat_bmc ~max_depth:depth cfg in
      Alcotest.(check string)
        (Printf.sprintf "depth %d verdict" depth)
        (verdict_key cold) (verdict_key r.Engine.verdict))
    [ 2; 4; 6; 8; 10; 12 ];
  let s = Sessions.stats pool in
  Alcotest.(check int) "one session built" 1 s.Sessions.misses;
  Alcotest.(check int) "five warm hits" 5 s.Sessions.hits

(* ------------------------------------------------------------------ *)
(* The incremental win *)

let test_warm_solve_fewer_conflicts () =
  (* Solving depth k+1 on a session warm at depth k must cost strictly
     fewer conflicts than a cold session scanning 0..k+1 — the learned
     clauses and the clean-depth memo are doing real work. *)
  let cfg = Configs.time_windows ~nodes () in
  let model = Tta_model.Build.model cfg in
  let bad = Tta_model.Props.integrated_node_frozen ~nodes in
  let session () =
    Symkit.Bmc.create (Symkit.Enc.create (Bdd.create_manager ()) model)
  in
  let cold = session () in
  ignore (Symkit.Bmc.check_session ~max_depth:9 cold ~bad);
  let cold_conflicts = Symkit.Bmc.conflicts cold in
  let warm = session () in
  ignore (Symkit.Bmc.check_session ~max_depth:8 warm ~bad);
  let before = Symkit.Bmc.conflicts warm in
  ignore (Symkit.Bmc.check_session ~max_depth:9 warm ~bad);
  let warm_delta = Symkit.Bmc.conflicts warm - before in
  Alcotest.(check bool) "cold scan hits conflicts" true (cold_conflicts > 0);
  Alcotest.(check bool)
    (Printf.sprintf "warm solve cheaper (%d < %d)" warm_delta cold_conflicts)
    true
    (warm_delta < cold_conflicts)

(* ------------------------------------------------------------------ *)
(* Pool mechanics *)

let test_pool_lru_eviction () =
  let pool = Sessions.create ~capacity:1 () in
  let run cfg = ignore (Sessions.run pool ~engine:Engine.Sat_bmc ~max_depth:3 cfg) in
  let c2 = Configs.passive ~nodes:2 () in
  let c3 = Configs.passive ~nodes:3 () in
  run c2;
  run c3;
  (* Capacity 1: checking c3's entry in evicted c2's (the LRU). *)
  let s = Sessions.stats pool in
  Alcotest.(check int) "both built cold" 2 s.Sessions.misses;
  Alcotest.(check int) "one eviction" 1 s.Sessions.evictions;
  Alcotest.(check int) "one idle entry survives" 1 s.Sessions.idle;
  run c3;
  Alcotest.(check int) "the survivor is the recent family" 1
    (Sessions.stats pool).Sessions.hits;
  run c2;
  Alcotest.(check int) "the evicted family rebuilds" 3
    (Sessions.stats pool).Sessions.misses

let test_family_override () =
  (* An explicit family key names the pool bucket, so a fingerprint
     match split across custom keys (per-tenant isolation) does not
     share state. *)
  let pool = Sessions.create () in
  let cfg = Configs.passive ~nodes () in
  let run family =
    snd (Sessions.run pool ~engine:Engine.Sat_bmc ~family ~max_depth:3 cfg)
  in
  Alcotest.(check bool) "custom family starts cold" false
    (run "tenant-a").Sessions.reused;
  Alcotest.(check bool) "same custom family is warm" true
    (run "tenant-a").Sessions.reused;
  Alcotest.(check bool) "other tenant does not share" false
    (run "tenant-b").Sessions.reused

let test_family_mismatch_is_miss () =
  (* The cache-poisoning scenario: a stale override naming a bucket
     warmed by a *different* model must not check out that state — the
     fingerprint stored in each entry is verified at checkout, a
     mismatch is a miss, and every request keeps the verdict of its
     own model. *)
  let pool = Sessions.create () in
  let c2 = Configs.passive ~nodes:2 () in
  let c3 = Configs.passive ~nodes:3 () in
  let cold cfg =
    ((Engine.get Engine.Sat_bmc).Engine.run ~max_depth:4 cfg).Engine.verdict
  in
  let run cfg =
    Sessions.run pool ~engine:Engine.Sat_bmc ~family:"shared" ~max_depth:4 cfg
  in
  let r2, a2 = run c2 in
  let r3, a3 = run c3 in
  Alcotest.(check bool) "first tenant-bucket use is cold" false
    a2.Sessions.reused;
  Alcotest.(check bool) "mismatched model must not reuse the entry" false
    a3.Sessions.reused;
  Alcotest.(check string) "2-node verdict is its own model's"
    (verdict_key (cold c2))
    (verdict_key r2.Engine.verdict);
  Alcotest.(check string) "3-node verdict is its own model's"
    (verdict_key (cold c3))
    (verdict_key r3.Engine.verdict);
  let s = Sessions.stats pool in
  Alcotest.(check int) "the foreign checkout is counted" 1
    s.Sessions.mismatches;
  (* Both entries now idle under the shared bucket: each model still
     finds exactly its own. *)
  let _, a2' = run c2 in
  let _, a3' = run c3 in
  Alcotest.(check bool) "2-node model reuses its own entry" true
    a2'.Sessions.reused;
  Alcotest.(check bool) "3-node model reuses its own entry" true
    a3'.Sessions.reused

let test_crashed_run_retried_on_fresh_session () =
  (* An engine exception (here an injected chaos crash at the first
     cooperative safepoint) must discard the poisoned session and
     retry on a fresh one under the supervisor policy, ending in the
     cold verdict — the parity the scheduler relies on for the
     --sessions path under --chaos. *)
  let faults =
    match Resilience.Faults.of_spec "5:engine_step=crash@1x1" with
    | Ok f -> f
    | Error e -> Alcotest.failf "bad chaos spec: %s" e
  in
  let supervisor =
    { Resilience.Supervisor.default with retries = 1; backoff_s = 0.001 }
  in
  let pool = Sessions.create () in
  let cfg = Configs.passive ~nodes () in
  let cold =
    ((Engine.get Engine.Sat_bmc).Engine.run ~max_depth:4 cfg).Engine.verdict
  in
  let r, _ =
    Sessions.run pool ~engine:Engine.Sat_bmc ~supervisor ~faults ~max_depth:4
      cfg
  in
  Alcotest.(check string) "retried verdict equals a cold run"
    (verdict_key cold)
    (verdict_key r.Engine.verdict);
  Alcotest.(check bool) "the retry was counted" true
    (List.assoc_opt "supervisor.retries" r.Engine.counters = Some 1);
  let s = Sessions.stats pool in
  Alcotest.(check int) "poisoned session discarded" 1 s.Sessions.discards;
  Alcotest.(check int) "retry rebuilt a fresh session" 2 s.Sessions.misses;
  Alcotest.(check int) "only the healthy session returned to the pool" 1
    s.Sessions.idle

let test_engine_failed_carries_clean_depth () =
  (* Exhausted retries must surface Engine_failed carrying the best
     clean depth the family had certified — the content of a degraded
     verdict. The warm entry proved depth 8 fault-free, so the failure
     can report at least 8 but never more than a fault-free conclusive
     run at the failed request's own bound. *)
  let pool = Sessions.create () in
  let cfg = Configs.passive ~nodes () in
  let warm_bound = 8 and failed_bound = 12 in
  let r, a = Sessions.run pool ~engine:Engine.Sat_bmc ~max_depth:warm_bound cfg in
  (match r.Engine.verdict with
  | Engine.Holds _ -> ()
  | _ -> Alcotest.fail "warm-up run must be conclusive");
  Alcotest.(check int) "warm-up certifies its bound" warm_bound
    a.Sessions.clean_depth;
  (* Every attempt of the second run now crashes at the first
     cooperative safepoint, so no attempt deepens the certificate. *)
  let faults =
    match Resilience.Faults.of_spec "5:engine_step=crash" with
    | Ok f -> f
    | Error e -> Alcotest.failf "bad chaos spec: %s" e
  in
  let supervisor =
    { Resilience.Supervisor.default with retries = 1; backoff_s = 0.001 }
  in
  match
    Sessions.run pool ~engine:Engine.Sat_bmc ~supervisor ~faults
      ~max_depth:failed_bound cfg
  with
  | _ -> Alcotest.fail "expected Engine_failed"
  | exception Sessions.Engine_failed { message; clean_depth } ->
      Alcotest.(check bool) "failure names the underlying exception" true
        (message <> "");
      Alcotest.(check int) "clean depth survives from the warm entry"
        warm_bound clean_depth;
      Alcotest.(check bool) "bounded by a fault-free conclusive run" true
        (clean_depth <= failed_bound)

let test_peek_clean_depth () =
  (* The no-run degraded path: a deadline-dead request reads the best
     idle certificate without checking anything out. *)
  let pool = Sessions.create () in
  let cfg = Configs.passive ~nodes () in
  Alcotest.(check int) "empty pool has no certificate" (-1)
    (Sessions.peek_clean_depth pool cfg);
  ignore (Sessions.run pool ~engine:Engine.Sat_bmc ~max_depth:6 cfg);
  Alcotest.(check int) "idle entry's certificate visible" 6
    (Sessions.peek_clean_depth pool cfg);
  (* Family override names a different bucket: no certificate there. *)
  Alcotest.(check int) "override bucket is separate" (-1)
    (Sessions.peek_clean_depth pool ~family:"tenant-b" cfg);
  (* A different model in the same pool must not leak its depth. *)
  let other = Configs.passive ~nodes:3 () in
  Alcotest.(check int) "other model sees no certificate" (-1)
    (Sessions.peek_clean_depth pool other)

let () =
  Alcotest.run "sessions"
    [
      ( "keying",
        [
          Alcotest.test_case "family fingerprints" `Quick test_family_of;
          Alcotest.test_case "non-SAT engines rejected" `Quick
            test_non_sat_engine_rejected;
          Alcotest.test_case "family override" `Quick test_family_override;
          Alcotest.test_case "family mismatch is a miss" `Quick
            test_family_mismatch_is_miss;
        ] );
      ( "verdict-equality",
        [
          Alcotest.test_case "bmc matrix, cold and warm passes" `Quick
            test_bmc_matrix_equality;
          Alcotest.test_case "induction matrix, cold and warm passes" `Quick
            test_induction_matrix_equality;
          Alcotest.test_case "increasing bounds on one warm session" `Quick
            test_warm_deeper_bound_equality;
        ] );
      ( "incremental-win",
        [
          Alcotest.test_case "warm solve spends fewer conflicts" `Quick
            test_warm_solve_fewer_conflicts;
        ] );
      ( "pool",
        [
          Alcotest.test_case "LRU eviction at capacity" `Quick
            test_pool_lru_eviction;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "crashed run retried on a fresh session" `Quick
            test_crashed_run_retried_on_fresh_session;
          Alcotest.test_case "exhausted retries carry the clean depth" `Quick
            test_engine_failed_carries_clean_depth;
          Alcotest.test_case "peek reads idle certificates" `Quick
            test_peek_clean_depth;
        ] );
    ]
