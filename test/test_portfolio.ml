(* Tests for the portfolio engine: the JSON codec, the work-stealing
   pool, the persistent verdict cache (hit/miss/invalidation), engine
   cancellation, deterministic winner selection, and an end-to-end
   matrix run checked verdict-for-verdict against the sequential
   runner. 2-node clusters throughout, as in test_tta_model. *)

module Engine = Tta_model.Engine
module Configs = Tta_model.Configs

(* The historical [check] signature the assertions were written
   against, shimmed over the unified [Engine] interface. *)
let local_check ?cancel ~engine ~max_depth cfg =
  ((Engine.get engine).Engine.run ?cancel ~max_depth cfg).Engine.verdict

let nodes = 2

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "portfolio_test_%d_%d" (Unix.getpid ()) !counter)
    in
    (* Cache.create mkdir-s it. *)
    d

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let v =
    Portfolio.Json.(
      Obj
        [
          ("null", Null);
          ("bools", List [ Bool true; Bool false ]);
          ("int", Int (-42));
          ("float", Float 1.5);
          ("string", String "line\nbreak \"quoted\" \t tab");
          ("empty_obj", Obj []);
          ("empty_list", List []);
          ("nested", Obj [ ("xs", List [ Int 1; Int 2; Int 3 ]) ]);
        ])
  in
  List.iter
    (fun pretty ->
      match Portfolio.Json.(of_string (to_string ~pretty v)) with
      | Ok v' ->
          Alcotest.(check bool)
            (Printf.sprintf "roundtrip (pretty=%b)" pretty)
            true (v = v')
      | Error e -> Alcotest.failf "reparse failed: %s" e)
    [ false; true ]

let test_json_errors () =
  List.iter
    (fun s ->
      match Portfolio.Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed JSON: %s" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "[1] trailing" ]

let test_json_accessors () =
  let v =
    match Portfolio.Json.of_string {|{"a": [1, 2], "b": "x", "c": true}|} with
    | Ok v -> v
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let open Portfolio.Json in
  Alcotest.(check (option string))
    "member b" (Some "x")
    (Option.bind (member "b" v) string_value);
  Alcotest.(check int) "list length" 2
    (List.length (to_list (Option.get (member "a" v))));
  Alcotest.(check (option bool))
    "member c" (Some true)
    (Option.bind (member "c" v) bool_value);
  Alcotest.(check bool) "missing member" true (member "zzz" v = None)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_order () =
  let items = List.init 50 Fun.id in
  List.iter
    (fun domains ->
      let got = Portfolio.Pool.map_exn ~domains (fun i -> i * i) items in
      Alcotest.(check (list int))
        (Printf.sprintf "squares in order (%d domains)" domains)
        (List.map (fun i -> i * i) items)
        got)
    [ 1; 2; 3; 64 ]

let test_pool_exception () =
  (* [map] captures per-item failures instead of tearing down the
     pool: the healthy items still deliver their results. *)
  let f i =
    if i = 5 then failwith "item 5"
    else if i = 7 then failwith "item 7"
    else i
  in
  let got = Portfolio.Pool.map ~domains:3 f (List.init 10 Fun.id) in
  Alcotest.(check int) "every item has a slot" 10 (List.length got);
  List.iteri
    (fun i r ->
      match r with
      | Ok v ->
          Alcotest.(check bool)
            (Printf.sprintf "item %d ok" i)
            true
            (v = i && i <> 5 && i <> 7)
      | Error (Failure msg) ->
          Alcotest.(check string)
            (Printf.sprintf "item %d failure recorded" i)
            (Printf.sprintf "item %d" i)
            msg
      | Error e -> Alcotest.failf "unexpected exception: %s" (Printexc.to_string e))
    got;
  (* [map_exn] keeps the old contract: the first failure re-raises. *)
  Alcotest.check_raises "map_exn re-raises the first failure"
    (Failure "item 5") (fun () ->
      ignore (Portfolio.Pool.map_exn ~domains:3 f (List.init 10 Fun.id)))

let test_pool_stealing () =
  (* One deliberately slow task on worker 0's deque; with two workers
     the other 19 tasks must still all complete (stolen or local). *)
  let got =
    Portfolio.Pool.map_exn ~domains:2
      (fun i ->
        if i = 0 then Unix.sleepf 0.2;
        i + 1)
      (List.init 20 Fun.id)
  in
  Alcotest.(check (list int)) "all tasks ran" (List.init 20 (fun i -> i + 1)) got

(* ------------------------------------------------------------------ *)
(* Cache *)

let verdict_kind = function
  | Engine.Holds _ -> "holds"
  | Engine.Violated _ -> "violated"
  | Engine.Unknown _ -> "unknown"

let test_cache_hit_miss () =
  let c = Portfolio.Cache.create ~dir:(temp_dir ()) () in
  let model = Tta_model.Build.model (Configs.passive ~nodes ()) in
  let engine = Engine.Bdd_reach and max_depth = 50 in
  Alcotest.(check bool) "cold lookup misses" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth = None);
  Portfolio.Cache.store c ~model ~engine ~max_depth
    (Engine.Holds { detail = "proved safe: test entry" });
  (match Portfolio.Cache.lookup c ~model ~engine ~max_depth with
  | Some (Engine.Holds { detail }) ->
      Alcotest.(check string) "detail survives" "proved safe: test entry"
        detail
  | other ->
      Alcotest.failf "expected Holds, got %s"
        (match other with None -> "miss" | Some v -> verdict_kind v));
  Alcotest.(check int) "one hit" 1 (Portfolio.Cache.hits c);
  Alcotest.(check int) "one miss" 1 (Portfolio.Cache.misses c);
  Alcotest.(check int) "one entry on disk" 1 (Portfolio.Cache.entries c);
  (* Unknown verdicts are never persisted. *)
  Portfolio.Cache.store c ~model ~engine ~max_depth:99
    (Engine.Unknown { detail = "gave up" });
  Alcotest.(check bool) "Unknown not stored" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth:99 = None)

let test_cache_keying () =
  let c = Portfolio.Cache.create ~dir:(temp_dir ()) () in
  let model = Tta_model.Build.model (Configs.passive ~nodes ()) in
  let engine = Engine.Bdd_reach and max_depth = 50 in
  Portfolio.Cache.store c ~model ~engine ~max_depth
    (Engine.Holds { detail = "proved" });
  (* A different model (another feature set) must miss: the key is the
     model's content hash, so any change to the compiled transition
     system invalidates the entry. *)
  let model' = Tta_model.Build.model (Configs.time_windows ~nodes ()) in
  Alcotest.(check bool) "different model misses" true
    (Portfolio.Cache.lookup c ~model:model' ~engine ~max_depth = None);
  (* Same model, different engine or bound: also a miss. *)
  Alcotest.(check bool) "different engine misses" true
    (Portfolio.Cache.lookup c ~model ~engine:Engine.Sat_bmc ~max_depth = None);
  Alcotest.(check bool) "different depth misses" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth:51 = None);
  Alcotest.(check bool) "original still hits" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth <> None)

let test_cache_corrupt_entry () =
  let dir = temp_dir () in
  let c = Portfolio.Cache.create ~dir () in
  let model = Tta_model.Build.model (Configs.passive ~nodes ()) in
  let engine = Engine.Bdd_reach and max_depth = 50 in
  Portfolio.Cache.store c ~model ~engine ~max_depth
    (Engine.Holds { detail = "proved" });
  (* Truncate the single entry file in place. *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".json" then begin
        let oc = open_out (Filename.concat dir f) in
        output_string oc "{\"spilled";
        close_out oc
      end)
    (Sys.readdir dir);
  Alcotest.(check bool) "corrupt entry degrades to a miss" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth = None);
  (* The unreadable file is quarantined, not left to fail every
     lookup: it is renamed aside and no longer counts as an entry. *)
  Alcotest.(check int) "quarantine counted" 1 (Portfolio.Cache.quarantined c);
  Alcotest.(check int) "no live entries left" 0 (Portfolio.Cache.entries c);
  let files = Sys.readdir dir in
  Alcotest.(check bool) "entry renamed aside" true
    (Array.exists
       (fun f -> Filename.check_suffix f ".json.quarantined")
       files
    && not (Array.exists (fun f -> Filename.check_suffix f ".json") files))

let test_cache_violated_trace_roundtrip () =
  let c = Portfolio.Cache.create ~dir:(temp_dir ()) () in
  let cfg = Configs.full_shifting ~nodes () in
  let model = Tta_model.Build.model cfg in
  let verdict = local_check ~engine:Engine.Bdd_reach ~max_depth:60 cfg in
  let trace =
    match verdict with
    | Engine.Violated { trace; _ } -> trace
    | v -> Alcotest.failf "setup: expected Violated, got %s" (verdict_kind v)
  in
  Portfolio.Cache.store c ~model ~engine:Engine.Bdd_reach ~max_depth:60
    verdict;
  match Portfolio.Cache.lookup c ~model ~engine:Engine.Bdd_reach ~max_depth:60 with
  | Some (Engine.Violated { trace = trace'; model = model' }) ->
      Alcotest.(check int) "trace length survives" (Array.length trace)
        (Array.length trace');
      (match Symkit.Trace.validate model' trace' with
      | Ok () -> ()
      | Error e -> Alcotest.failf "decoded trace does not replay: %s" e);
      Alcotest.(check bool) "states decode identically" true
        (Array.for_all2 (fun a b -> a = b) trace trace')
  | other ->
      Alcotest.failf "expected cached Violated, got %s"
        (match other with None -> "miss" | Some v -> verdict_kind v)

(* Distinct conclusive entries: one per depth bound. *)
let store_depths c ~model ~engine depths =
  List.iter
    (fun d ->
      Portfolio.Cache.store c ~model ~engine ~max_depth:d
        (Engine.Holds { detail = Printf.sprintf "entry %d" d });
      (* Space the mtimes out so the LRU order is unambiguous even on
         a coarse-grained filesystem clock. *)
      Unix.sleepf 0.02)
    depths

let test_cache_prune_to_cap () =
  let c = Portfolio.Cache.create ~dir:(temp_dir ()) ~max_entries:3 () in
  Alcotest.(check bool) "cap recorded" true
    (Portfolio.Cache.max_entries c = Some 3);
  let model = Tta_model.Build.model (Configs.passive ~nodes ()) in
  let engine = Engine.Bdd_reach in
  store_depths c ~model ~engine [ 10; 11; 12; 13; 14 ];
  Alcotest.(check int) "pruned back to the cap" 3
    (Portfolio.Cache.entries c);
  Alcotest.(check int) "evictions counted" 2 (Portfolio.Cache.evictions c);
  (* Oldest-first: the survivors are the three newest stores. *)
  Alcotest.(check bool) "oldest entries evicted" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth:10 = None
    && Portfolio.Cache.lookup c ~model ~engine ~max_depth:11 = None);
  Alcotest.(check bool) "newest entries survive" true
    (List.for_all
       (fun d -> Portfolio.Cache.lookup c ~model ~engine ~max_depth:d <> None)
       [ 12; 13; 14 ])

let test_cache_lru_touch () =
  let c = Portfolio.Cache.create ~dir:(temp_dir ()) ~max_entries:3 () in
  let model = Tta_model.Build.model (Configs.passive ~nodes ()) in
  let engine = Engine.Bdd_reach in
  store_depths c ~model ~engine [ 10; 11; 12 ];
  (* Serve the oldest entry: the hit refreshes its mtime, so the next
     eviction victim must be depth 11, not 10. *)
  Alcotest.(check bool) "warm hit" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth:10 <> None);
  Unix.sleepf 0.02;
  store_depths c ~model ~engine [ 13 ];
  Alcotest.(check int) "still at the cap" 3 (Portfolio.Cache.entries c);
  Alcotest.(check bool) "recently served entry kept" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth:10 <> None);
  Alcotest.(check bool) "least recently used entry evicted" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth:11 = None)

let test_cache_sidecar_recency () =
  (* Rapid-fire accesses land in the same mtime second on coarse
     filesystems; the access-sequence sidecar must order them anyway.
     Note: no sleeps in this test — that is the point. *)
  let c = Portfolio.Cache.create ~dir:(temp_dir ()) ~max_entries:2 () in
  let model = Tta_model.Build.model (Configs.passive ~nodes ()) in
  let engine = Engine.Bdd_reach in
  let store d =
    Portfolio.Cache.store c ~model ~engine ~max_depth:d
      (Engine.Holds { detail = "x" })
  in
  store 10;
  store 11;
  (* Serving depth 10 makes it the most recently used of the two. *)
  Alcotest.(check bool) "warm hit" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth:10 <> None);
  store 12;
  Alcotest.(check int) "still at the cap" 2 (Portfolio.Cache.entries c);
  Alcotest.(check bool) "served entry survives rapid-fire eviction" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth:10 <> None);
  Alcotest.(check bool) "victim chosen by access ticket, not mtime" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth:11 = None)

let test_cache_shared_dir () =
  (* Two Cache values over one directory — the cluster's worker view of
     the shared cache. The access counter lives in the directory, so
     recency recorded through one instance steers the other's prune. *)
  let dir = temp_dir () in
  let a = Portfolio.Cache.create ~dir ~max_entries:2 () in
  let b = Portfolio.Cache.create ~dir ~max_entries:2 () in
  let model = Tta_model.Build.model (Configs.passive ~nodes ()) in
  let engine = Engine.Bdd_reach in
  let store c d =
    Portfolio.Cache.store c ~model ~engine ~max_depth:d
      (Engine.Holds { detail = "x" })
  in
  store a 10;
  store b 11;
  Alcotest.(check bool) "hit through the other instance" true
    (Portfolio.Cache.lookup b ~model ~engine ~max_depth:10 <> None);
  (* b served 10 most recently; a's store must therefore evict 11 even
     though a never touched either entry itself. *)
  store a 12;
  Alcotest.(check int) "shared dir at the cap" 2 (Portfolio.Cache.entries a);
  Alcotest.(check bool) "cross-instance recency honored" true
    (Portfolio.Cache.lookup a ~model ~engine ~max_depth:10 <> None
    && Portfolio.Cache.lookup a ~model ~engine ~max_depth:11 = None)

let test_cache_unbounded_never_prunes () =
  let c = Portfolio.Cache.create ~dir:(temp_dir ()) () in
  let model = Tta_model.Build.model (Configs.passive ~nodes ()) in
  List.iter
    (fun d ->
      Portfolio.Cache.store c ~model ~engine:Engine.Bdd_reach ~max_depth:d
        (Engine.Holds { detail = "x" }))
    [ 10; 11; 12; 13; 14 ];
  Portfolio.Cache.prune c;
  Alcotest.(check int) "all entries kept" 5 (Portfolio.Cache.entries c);
  Alcotest.(check int) "no evictions" 0 (Portfolio.Cache.evictions c)

(* ------------------------------------------------------------------ *)
(* Cancellation *)

let test_cancel_stops_engines () =
  (* With the flag permanently raised every engine must return its
     inconclusive verdict almost immediately — a full run of any of
     these instances takes seconds. *)
  let cfg = Configs.full_shifting ~nodes () in
  let always = fun () -> true in
  List.iter
    (fun engine ->
      let t0 = Unix.gettimeofday () in
      let v = local_check ~cancel:always ~engine ~max_depth:100 cfg in
      let dt = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Engine.id_to_string engine ^ " stops promptly")
        true (dt < 2.0);
      match (engine, v) with
      | Engine.Sat_bmc, Engine.Holds { detail } ->
          (* BMC's cancelled claim is the vacuous depth -1 bound; the
             race demotes it, the raw runner reports it as-is. *)
          Alcotest.(check string)
            "bmc cancelled detail" "no counterexample up to depth -1" detail
      | _, Engine.Unknown _ -> ()
      | _, v ->
          Alcotest.failf "%s: expected Unknown after cancel, got %s"
            (Engine.id_to_string engine)
            (verdict_kind v))
    [ Engine.Bdd_reach; Engine.Explicit_bfs; Engine.Sat_induction;
      Engine.Sat_bmc ]

let test_race_cancels_losers () =
  (* BDD proves the passive configuration in well under a second; the
     race must come back with that proof long before the explicit
     engine's exhaustive search would finish on its own. *)
  let t0 = Unix.gettimeofday () in
  let r =
    Portfolio.race
      ~engines:[ Engine.Bdd_reach; Engine.Explicit_bfs ]
      ~max_depth:100
      (Configs.passive ~nodes ())
  in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check string) "bdd wins" "bdd-reachability"
    (Engine.id_to_string r.Portfolio.engine);
  Alcotest.(check string) "proof verdict" "holds"
    (verdict_kind r.Portfolio.verdict);
  Alcotest.(check int) "both engines reported" 2
    (List.length r.Portfolio.runs);
  Alcotest.(check bool) "race returned promptly" true (dt < 30.0)

let test_race_external_cancel () =
  (* The serving layer's hook: with [?cancel] permanently raised, a
     race over every engine must come back inconclusive quickly — and
     a cancelled BMC partial bound must be demoted to Unknown exactly
     as for an internal cancellation. *)
  let t0 = Unix.gettimeofday () in
  let r =
    Portfolio.race
      ~cancel:(fun () -> true)
      ~max_depth:100
      (Configs.full_shifting ~nodes ())
  in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "externally cancelled race returns promptly" true
    (dt < 10.0);
  Alcotest.(check string) "no verdict claimed" "unknown"
    (verdict_kind r.Portfolio.verdict);
  List.iter
    (fun (e, v, _) ->
      Alcotest.(check string)
        (Engine.id_to_string e ^ " inconclusive")
        "unknown" (verdict_kind v))
    r.Portfolio.runs

(* ------------------------------------------------------------------ *)
(* Deterministic selection *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let test_select_priority_over_arrival () =
  let holds = Engine.Holds { detail = "proved" } in
  let unknown = Engine.Unknown { detail = "cancelled" } in
  let model = Tta_model.Build.model (Configs.passive ~nodes ()) in
  let violated = Engine.Violated { trace = [||]; model } in
  (* Two conclusive results: whatever order they arrive in, the
     higher-priority engine (explicit-bfs over sat-bmc) is selected. *)
  let results =
    [ (Engine.Sat_bmc, violated, 0.1); (Engine.Explicit_bfs, holds, 5.0);
      (Engine.Bdd_reach, unknown, 0.0); (Engine.Sat_induction, unknown, 2.0) ]
  in
  List.iter
    (fun arrival ->
      match Portfolio.select arrival with
      | Some (e, v, _) ->
          Alcotest.(check string) "winner independent of arrival order"
            "explicit-bfs" (Engine.id_to_string e);
          Alcotest.(check string) "its verdict" "holds" (verdict_kind v)
      | None -> Alcotest.fail "no selection")
    (permutations results);
  (* All inconclusive: the top-priority engine is still reported. *)
  let all_unknown =
    [ (Engine.Sat_bmc, unknown, 0.1); (Engine.Bdd_reach, unknown, 9.0) ]
  in
  List.iter
    (fun arrival ->
      match Portfolio.select arrival with
      | Some (e, _, _) ->
          Alcotest.(check string) "inconclusive fallback" "bdd-reachability"
            (Engine.id_to_string e)
      | None -> Alcotest.fail "no selection")
    (permutations all_unknown);
  Alcotest.(check bool) "empty input" true (Portfolio.select [] = None)

let test_race_reproducible () =
  (* Two full races on the violated instance: the selected engine, the
     verdict kind and the counterexample length must agree run to run
     (the trace is minimal, so every sound engine agrees on it). *)
  let race () =
    Portfolio.race ~max_depth:40 (Configs.full_shifting ~nodes ())
  in
  let r1 = race () and r2 = race () in
  Alcotest.(check string) "same winner"
    (Engine.id_to_string r1.Portfolio.engine)
    (Engine.id_to_string r2.Portfolio.engine);
  match (r1.Portfolio.verdict, r2.Portfolio.verdict) with
  | Engine.Violated { trace = t1; _ }, Engine.Violated { trace = t2; _ } ->
      Alcotest.(check int) "same counterexample length" (Array.length t1)
        (Array.length t2);
      Alcotest.(check bool) "counterexample is non-empty" true
        (Array.length t1 > 0)
  | v1, v2 ->
      Alcotest.failf "expected two Violated verdicts, got %s / %s"
        (verdict_kind v1) (verdict_kind v2)

(* ------------------------------------------------------------------ *)
(* End-to-end: portfolio matrix vs the sequential runner *)

let feature_sets =
  [
    ("passive", Configs.passive ~nodes ());
    ("time-windows", Configs.time_windows ~nodes ());
    ("small-shifting", Configs.small_shifting ~nodes ());
    ("full-shifting", Configs.full_shifting ~nodes ());
  ]

let test_matrix_matches_sequential () =
  let dir = temp_dir () in
  let depth = 60 in
  let jobs =
    List.map
      (fun (label, cfg) ->
        Portfolio.job ~label ~engine:Engine.Bdd_reach ~max_depth:depth cfg)
      feature_sets
  in
  let run () =
    let cache = Portfolio.Cache.create ~dir () in
    let telemetry = Portfolio.Telemetry.create () in
    (Portfolio.run_matrix ~domains:2 ~cache ~telemetry jobs, cache, telemetry)
  in
  let check_results results =
    List.iter2
      (fun (label, cfg) (_, (r : Portfolio.result)) ->
        let seq = local_check ~engine:Engine.Bdd_reach ~max_depth:depth cfg in
        Alcotest.(check string)
          (label ^ ": portfolio verdict = sequential verdict")
          (verdict_kind seq)
          (verdict_kind r.Portfolio.verdict);
        match (seq, r.Portfolio.verdict) with
        | Engine.Violated { trace = t1; _ }, Engine.Violated { trace = t2; _ }
          ->
            Alcotest.(check int)
              (label ^ ": same trace length")
              (Array.length t1) (Array.length t2);
            Alcotest.(check bool)
              (label ^ ": non-empty trace")
              true
              (Array.length t2 > 0)
        | _ -> ())
      feature_sets results
  in
  (* Cold run: everything computed, everything stored. *)
  let cold, cache1, _ = run () in
  check_results cold;
  Alcotest.(check int) "cold run stores every verdict" 4
    (Portfolio.Cache.entries cache1);
  Alcotest.(check int) "cold run has no hits" 0 (Portfolio.Cache.hits cache1);
  (* The three safe sets hold, full-shifting is violated. *)
  let kinds =
    List.map (fun (_, (r : Portfolio.result)) -> verdict_kind r.Portfolio.verdict) cold
  in
  Alcotest.(check (list string)) "expected verdict pattern"
    [ "holds"; "holds"; "holds"; "violated" ]
    kinds;
  (* Warm run: same verdicts, all four from the cache. *)
  let warm, cache2, telemetry = run () in
  check_results warm;
  Alcotest.(check int) "warm run hits every entry" 4
    (Portfolio.Cache.hits cache2);
  Alcotest.(check int) "warm run misses nothing" 0
    (Portfolio.Cache.misses cache2);
  List.iter
    (fun (rec_ : Portfolio.Telemetry.record) ->
      Alcotest.(check bool)
        (rec_.Portfolio.Telemetry.config ^ " served from cache")
        true rec_.Portfolio.Telemetry.cache_hit)
    (Portfolio.Telemetry.records telemetry)

let test_telemetry_json_shape () =
  let telemetry = Portfolio.Telemetry.create () in
  let cfg = Configs.passive ~nodes () in
  ignore
    (Portfolio.run_matrix ~domains:1 ~telemetry
       [ Portfolio.job ~label:"shape" ~engine:Engine.Bdd_reach ~max_depth:60 cfg ]);
  let json = Portfolio.Telemetry.to_json telemetry in
  let reparsed =
    Portfolio.Json.of_string (Portfolio.Json.to_string ~pretty:true json)
  in
  Alcotest.(check bool) "dump reparses" true (Result.is_ok reparsed);
  let open Portfolio.Json in
  let records = Option.get (member "records" json) in
  Alcotest.(check int) "one record" 1 (List.length (to_list records));
  let r = List.hd (to_list records) in
  List.iter
    (fun field ->
      Alcotest.(check bool) ("record has " ^ field) true
        (member field r <> None))
    [ "config"; "engine"; "outcome"; "detail"; "wall_s"; "cache_hit";
      "winner"; "counters" ];
  (* The counters object replaces the old hardwired triple; a BDD run
     always reports its peak node count through it. *)
  let counters = Option.get (member "counters" r) in
  Alcotest.(check bool) "counters carry reach.peak_nodes" true
    (member "reach.peak_nodes" counters <> None);
  let s = Option.get (member "summary" json) in
  Alcotest.(check (option int)) "summary counts the task" (Some 1)
    (Option.bind (member "tasks" s) int_value);
  Alcotest.(check (option int)) "holds counted" (Some 1)
    (Option.bind (member "holds" s) int_value)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "portfolio"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "pool",
        [
          Alcotest.test_case "order" `Quick test_pool_order;
          Alcotest.test_case "exception" `Quick test_pool_exception;
          Alcotest.test_case "stealing" `Quick test_pool_stealing;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit-miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "keying" `Quick test_cache_keying;
          Alcotest.test_case "corrupt entry" `Quick test_cache_corrupt_entry;
          Alcotest.test_case "violated trace roundtrip" `Quick
            test_cache_violated_trace_roundtrip;
          Alcotest.test_case "prune to cap" `Quick test_cache_prune_to_cap;
          Alcotest.test_case "LRU touch" `Quick test_cache_lru_touch;
          Alcotest.test_case "sidecar recency (no sleeps)" `Quick
            test_cache_sidecar_recency;
          Alcotest.test_case "shared directory instances" `Quick
            test_cache_shared_dir;
          Alcotest.test_case "unbounded never prunes" `Quick
            test_cache_unbounded_never_prunes;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "engines stop on the flag" `Quick
            test_cancel_stops_engines;
          Alcotest.test_case "race cancels losers" `Quick
            test_race_cancels_losers;
          Alcotest.test_case "external cancel hook" `Quick
            test_race_external_cancel;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "select ignores arrival order" `Quick
            test_select_priority_over_arrival;
          Alcotest.test_case "race is reproducible" `Quick
            test_race_reproducible;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "matrix matches sequential" `Quick
            test_matrix_matches_sequential;
          Alcotest.test_case "telemetry json shape" `Quick
            test_telemetry_json_shape;
        ] );
    ]
