(* Tests for the verification daemon (lib/service): protocol codec
   round-trips and validation, scheduler coalescing / deadlines /
   admission control / drain, and the server + load generator end to
   end over a real Unix-domain socket. 2-node clusters throughout. *)

module Engine = Tta_model.Engine
module Configs = Tta_model.Configs
module Protocol = Service.Protocol
module Scheduler = Service.Scheduler

let nodes = 2

let temp_dir =
  let counter = ref 0 in
  fun () ->
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "service_test_%d_%d" (Unix.getpid ())
           (incr counter; !counter))
    in
    Unix.mkdir d 0o755;
    d

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_request_roundtrip () =
  let j =
    Protocol.request ~id:"r1" ~config:"full-shifting" ~nodes ~engine:"bdd"
      ~depth:30 ~deadline_ms:1500 ~family:"fam-7"
      ~forbid_cold_start_duplication:true ()
  in
  (* Through the wire: serialize, reparse, validate. *)
  match Protocol.decode_request_line (Json.to_string j) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok req ->
      Alcotest.(check string) "id" "r1" req.Protocol.id;
      Alcotest.(check int) "nodes" nodes req.Protocol.cfg.Configs.nodes;
      Alcotest.(check bool) "feature set" true
        (req.Protocol.cfg.Configs.feature_set
        = Guardian.Feature_set.Full_shifting);
      Alcotest.(check bool) "forbid flag" true
        req.Protocol.cfg.Configs.forbid_cold_start_duplication;
      Alcotest.(check bool) "single engine" true
        (req.Protocol.engines = [ Engine.Bdd_reach ]);
      Alcotest.(check int) "depth" 30 req.Protocol.max_depth;
      Alcotest.(check bool) "deadline" true
        (req.Protocol.deadline_ms = Some 1500);
      Alcotest.(check (option string)) "family" (Some "fam-7")
        req.Protocol.family

let test_request_defaults () =
  let j = Protocol.request ~id:"r2" ~config:"passive" () in
  match Protocol.decode_request_line (Json.to_string j) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok req ->
      Alcotest.(check int) "default depth" 24 req.Protocol.max_depth;
      Alcotest.(check bool) "no deadline" true
        (req.Protocol.deadline_ms = None);
      Alcotest.(check (option string)) "no family" None req.Protocol.family;
      Alcotest.(check int) "default engine list races the portfolio" 4
        (List.length req.Protocol.engines)

let test_request_golden () =
  (* The wire form itself is part of the contract: a field rename
     would break every deployed client. *)
  Alcotest.(check string) "request wire format"
    {|{"id":"r1","config":"passive","nodes":2,"engine":"race","depth":24}|}
    (Json.to_string
       (Protocol.request ~id:"r1" ~config:"passive" ~nodes:2 ~engine:"race"
          ~depth:24 ()))

let test_response_golden () =
  Alcotest.(check string) "response wire format"
    {|{"id":"r1","status":"ok","verdict":"unknown","detail":"cancelled","reason":"deadline_exceeded","engine":"sat-bmc","cache_hit":false,"coalesced":true,"wall_ms":12.5,"queue_ms":3.25,"reused_session":true,"warm_depth":18}|}
    (Json.to_string
       (Protocol.encode_response
          (Protocol.Answer
             {
               id = "r1";
               verdict =
                 Protocol.Unknown
                   { detail = "cancelled"; reason = Some "deadline_exceeded" };
               engine = "sat-bmc";
               cache_hit = false;
               coalesced = true;
               wall_ms = 12.5;
               queue_ms = 3.25;
               reused_session = true;
               warm_depth = 18;
             })))

let test_response_presession_compat () =
  (* A response from a daemon predating warm sessions has no
     reused_session/warm_depth fields; it must still decode, with cold
     attribution. *)
  match
    Protocol.decode_response_line
      {|{"id":"r1","status":"ok","verdict":"holds","detail":"proved","engine":"bdd-reachability","cache_hit":false,"coalesced":false,"wall_ms":1.5,"queue_ms":0.25}|}
  with
  | Ok (Protocol.Answer { reused_session; warm_depth; _ }) ->
      Alcotest.(check bool) "defaults to not reused" false reused_session;
      Alcotest.(check int) "defaults to cold depth" 0 warm_depth
  | Ok _ -> Alcotest.fail "expected an answer"
  | Error e -> Alcotest.failf "pre-session answer did not decode: %s" e

let test_error_codes_golden () =
  (* Every rejection carries a machine-readable [code]; clients branch
     on it (the loadgen retries [engine_failed]), so the wire form is
     contractual. *)
  Alcotest.(check string) "error wire format"
    {|{"id":"r2","status":"error","code":"engine_failed","reason":"all engines failed"}|}
    (Json.to_string
       (Protocol.encode_response
          (Protocol.Error
             {
               id = Some "r2";
               code = Protocol.code_engine_failed;
               reason = "all engines failed";
             })));
  Alcotest.(check string) "overloaded wire format"
    {|{"id":"r3","status":"overloaded","code":"overloaded"}|}
    (Json.to_string
       (Protocol.encode_response (Protocol.Overloaded { id = "r3" })));
  Alcotest.(check string) "cancelled wire format"
    {|{"id":"r4","status":"cancelled","code":"draining","reason":"bye"}|}
    (Json.to_string
       (Protocol.encode_response
          (Protocol.Cancelled { id = "r4"; reason = "bye" })));
  (* A pre-code daemon's error line still decodes, defaulting to
     bad_request. *)
  match
    Protocol.decode_response_line
      {|{"id":"r5","status":"error","reason":"invalid JSON"}|}
  with
  | Ok (Protocol.Error { id = Some "r5"; code; reason = "invalid JSON" }) ->
      Alcotest.(check string) "legacy error defaults to bad_request"
        Protocol.code_bad_request code
  | Ok _ -> Alcotest.fail "unexpected decode"
  | Error e -> Alcotest.failf "legacy error did not decode: %s" e

let test_degraded_golden () =
  (* The graceful-degradation answer: a partial verdict with content.
     Clients (and the synthesis harness) branch on [status:"degraded"]
     + [code], so the wire form is contractual like the error codes. *)
  Alcotest.(check string) "degraded wire format"
    {|{"id":"r7","status":"degraded","code":"deadline_exceeded","clean_depth":28,"detail":"no counterexample up to depth 28","engine":"sat-bmc","wall_ms":12.5,"queue_ms":3.25,"reused_session":true,"warm_depth":28}|}
    (Json.to_string
       (Protocol.encode_response
          (Protocol.Degraded
             {
               id = "r7";
               code = Protocol.code_deadline_exceeded;
               clean_depth = 28;
               engine = "sat-bmc";
               wall_ms = 12.5;
               queue_ms = 3.25;
               reused_session = true;
               warm_depth = 28;
             })));
  (* clean_depth is the answer's whole content: a degraded line
     without it must be rejected, not defaulted. *)
  (match
     Protocol.decode_response_line
       {|{"id":"r8","status":"degraded","code":"engine_failed","engine":"sat-bmc","wall_ms":1.0,"queue_ms":0.5}|}
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "degraded without clean_depth must not decode");
  (* Optional attribution fields default like the Answer decoder's. *)
  match
    Protocol.decode_response_line
      {|{"id":"r9","status":"degraded","code":"engine_failed","clean_depth":12,"engine":"sat-bmc","wall_ms":1.0,"queue_ms":0.5}|}
  with
  | Ok (Protocol.Degraded { clean_depth = 12; reused_session; warm_depth; _ })
    ->
      Alcotest.(check bool) "defaults to not reused" false reused_session;
      Alcotest.(check int) "defaults to cold depth" 0 warm_depth
  | Ok _ -> Alcotest.fail "expected a degraded response"
  | Error e -> Alcotest.failf "minimal degraded did not decode: %s" e

let test_response_roundtrip () =
  let responses =
    [
      Protocol.Answer
        {
          id = "a";
          verdict = Protocol.Holds { detail = "proved" };
          engine = "bdd-reachability";
          cache_hit = true;
          coalesced = false;
          wall_ms = 0.5;
          queue_ms = 0.;
          reused_session = false;
          warm_depth = 0;
        };
      Protocol.Answer
        {
          id = "b";
          verdict =
            Protocol.Violated
              { steps = 2; trace = [ [ "x"; "y" ]; [ "z"; "w" ] ] };
          engine = "explicit-bfs";
          cache_hit = false;
          coalesced = false;
          wall_ms = 100.;
          queue_ms = 7.5;
          reused_session = true;
          warm_depth = 12;
        };
      Protocol.Degraded
        {
          id = "b2";
          code = Protocol.code_deadline_exceeded;
          clean_depth = 16;
          engine = "sat-bmc";
          wall_ms = 0.25;
          queue_ms = 250.5;
          reused_session = true;
          warm_depth = 16;
        };
      Protocol.Degraded
        {
          id = "b3";
          code = Protocol.code_engine_failed;
          clean_depth = 0;
          engine = "sat-bmc";
          wall_ms = 4.5;
          queue_ms = 0.;
          reused_session = false;
          warm_depth = 0;
        };
      Protocol.Overloaded { id = "c" };
      Protocol.Cancelled { id = "d"; reason = "shutting down" };
      Protocol.Error
        {
          id = Some "e";
          code = Protocol.code_bad_request;
          reason = "unknown engine \"vdd\"";
        };
      Protocol.Error
        {
          id = None;
          code = Protocol.code_bad_request;
          reason = "invalid JSON: offset 0";
        };
      Protocol.Error
        {
          id = Some "f";
          code = Protocol.code_engine_failed;
          reason = "all engines failed";
        };
    ]
  in
  List.iter
    (fun r ->
      match Protocol.decode_response_line (Protocol.response_line r) with
      | Ok r' -> Alcotest.(check bool) "response roundtrips" true (r = r')
      | Error e -> Alcotest.failf "reparse failed: %s" e)
    responses

let test_request_validation () =
  let expect_error what line =
    match Protocol.decode_request_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected a decode error" what
  in
  expect_error "not JSON" "][";
  expect_error "not an object" "[1,2]";
  expect_error "missing id" {|{"config":"passive"}|};
  expect_error "missing config" {|{"id":"r"}|};
  expect_error "unknown config" {|{"id":"r","config":"imaginary"}|};
  expect_error "unknown engine" {|{"id":"r","config":"passive","engine":"vdd"}|};
  expect_error "bad nodes" {|{"id":"r","config":"passive","nodes":1}|};
  expect_error "bad depth" {|{"id":"r","config":"passive","depth":0}|};
  expect_error "bad deadline"
    {|{"id":"r","config":"passive","deadline_ms":-5}|};
  expect_error "non-int depth" {|{"id":"r","config":"passive","depth":"x"}|};
  (* The id is still recoverable from an invalid request, so the
     error response can name it. *)
  Alcotest.(check bool) "id recovered from invalid request" true
    (Protocol.request_id_of_line {|{"id":"r9","config":"imaginary"}|}
    = Some "r9")

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let submit_collect sched ?deadline ?family ~engines ~max_depth cfg results
    lock =
  Scheduler.submit sched ?deadline ?family ~engines ~max_depth
    ~callback:(fun o ->
      Mutex.lock lock;
      results := o :: !results;
      Mutex.unlock lock)
    cfg

let test_scheduler_coalesces_identical () =
  (* One worker, four identical requests: the first admission queues a
     computation, the rest must coalesce onto it — exactly one engine
     run for all four answers. The computation stays coalescable for
     its whole run, so this holds regardless of when the worker picks
     it up. *)
  let sched = Scheduler.create ~workers:1 () in
  let cfg = Configs.full_shifting ~nodes () in
  let results = ref [] and lock = Mutex.create () in
  let admissions =
    List.init 4 (fun _ ->
        submit_collect sched ~engines:[ Engine.Explicit_bfs ] ~max_depth:60
          cfg results lock)
  in
  Alcotest.(check bool) "first admission queues" true
    (List.hd admissions = `Queued);
  Alcotest.(check int) "three coalesced admissions" 3
    (List.length (List.filter (fun a -> a = `Coalesced) admissions));
  Scheduler.drain sched;
  let rs = !results in
  Alcotest.(check int) "every waiter answered" 4 (List.length rs);
  let st = Scheduler.stats sched in
  Alcotest.(check int) "exactly one engine run" 1 st.Scheduler.runs;
  Alcotest.(check int) "stats: coalesced" 3 st.Scheduler.coalesced;
  Alcotest.(check int) "stats: completed" 4 st.Scheduler.completed;
  Alcotest.(check int) "one flagged as the originating request" 1
    (List.length
       (List.filter
          (fun (o : Scheduler.outcome) -> not o.Scheduler.coalesced)
          rs));
  (* All four see the same verdict. *)
  let kinds =
    List.map
      (fun (o : Scheduler.outcome) ->
        match o.Scheduler.result.Portfolio.verdict with
        | Engine.Holds _ -> "holds"
        | Engine.Violated _ -> "violated"
        | Engine.Unknown _ -> "unknown")
      rs
  in
  Alcotest.(check int) "one distinct verdict" 1
    (List.length (List.sort_uniq compare kinds))

let test_scheduler_family_partitions_coalescing () =
  (* Coalescing must respect the family override: a submission joining
     an inflight computation would otherwise silently inherit the
     first submitter's family (wrong attribution, wrong session
     bucket). Same model + engines + depth but a different family must
     run separately; a matching family still coalesces. *)
  let sched = Scheduler.create ~workers:1 () in
  let cfg = Configs.full_shifting ~nodes () in
  let results = ref [] and lock = Mutex.create () in
  let submit family =
    submit_collect sched ?family ~engines:[ Engine.Explicit_bfs ]
      ~max_depth:60 cfg results lock
  in
  let a1 = submit (Some "tenant-a") in
  let a2 = submit (Some "tenant-b") in
  let a3 = submit (Some "tenant-a") in
  let a4 = submit None in
  Alcotest.(check bool) "first tenant-a queues" true (a1 = `Queued);
  Alcotest.(check bool) "tenant-b does not coalesce onto tenant-a" true
    (a2 = `Queued);
  Alcotest.(check bool) "second tenant-a coalesces" true (a3 = `Coalesced);
  Alcotest.(check bool) "no-family does not coalesce onto a tenant" true
    (a4 = `Queued);
  Scheduler.drain sched;
  let st = Scheduler.stats sched in
  Alcotest.(check int) "three engine runs" 3 st.Scheduler.runs;
  Alcotest.(check int) "one coalesced waiter" 1 st.Scheduler.coalesced;
  Alcotest.(check int) "all four answered" 4 st.Scheduler.completed

let test_scheduler_cache_hit () =
  let cache = Portfolio.Cache.create ~dir:(temp_dir ()) () in
  let sched = Scheduler.create ~workers:1 ~cache () in
  let cfg = Configs.passive ~nodes () in
  let results = ref [] and lock = Mutex.create () in
  let a1 =
    submit_collect sched ~engines:[ Engine.Bdd_reach ] ~max_depth:50 cfg
      results lock
  in
  Alcotest.(check bool) "cold submit queues" true (a1 = `Queued);
  (* Wait for completion, then resubmit: the verdict must come straight
     from the cache, without a second run. *)
  let rec wait_for n =
    Mutex.lock lock;
    let got = List.length !results in
    Mutex.unlock lock;
    if got < n then begin
      Unix.sleepf 0.02;
      wait_for n
    end
  in
  wait_for 1;
  let a2 =
    submit_collect sched ~engines:[ Engine.Bdd_reach ] ~max_depth:50 cfg
      results lock
  in
  Alcotest.(check bool) "warm submit answers from the cache" true
    (a2 = `Cache_hit);
  Scheduler.drain sched;
  let st = Scheduler.stats sched in
  Alcotest.(check int) "one run" 1 st.Scheduler.runs;
  Alcotest.(check int) "one admission-time cache hit" 1
    st.Scheduler.cache_hits;
  let hit =
    List.find (fun o -> o.Scheduler.result.Portfolio.cache_hit) !results
  in
  Alcotest.(check bool) "cached outcome is conclusive" true
    (Portfolio.conclusive hit.Scheduler.result.Portfolio.verdict)

let test_scheduler_expired_deadline_skips_run () =
  let sched = Scheduler.create ~workers:1 () in
  let cfg = Configs.full_shifting ~nodes () in
  let results = ref [] and lock = Mutex.create () in
  let a =
    submit_collect sched
      ~deadline:(Unix.gettimeofday () -. 1.0)
      ~engines:[ Engine.Explicit_bfs ] ~max_depth:60 cfg results lock
  in
  Alcotest.(check bool) "expired submission still admitted" true
    (a = `Queued);
  Scheduler.drain sched;
  (match !results with
  | [ o ] ->
      Alcotest.(check bool) "flagged expired" true o.Scheduler.expired;
      (match o.Scheduler.result.Portfolio.verdict with
      | Engine.Unknown _ -> ()
      | _ -> Alcotest.fail "expected an inconclusive verdict")
  | rs -> Alcotest.failf "expected one outcome, got %d" (List.length rs));
  let st = Scheduler.stats sched in
  Alcotest.(check int) "no engine ran" 0 st.Scheduler.runs;
  Alcotest.(check int) "counted as expired" 1 st.Scheduler.expired

let test_scheduler_sheds_over_cap () =
  (* One worker, queue capped at 1: occupy the worker with one slow
     computation, fill the single queue slot with a second, and watch
     a third (distinct — coalescing never sheds) bounce. *)
  let sched = Scheduler.create ~workers:1 ~queue_cap:1 () in
  let results = ref [] and lock = Mutex.create () in
  let submit cfg =
    submit_collect sched ~engines:[ Engine.Explicit_bfs ] ~max_depth:60 cfg
      results lock
  in
  let a1 = submit (Configs.full_shifting ~nodes ()) in
  (* Give the worker a moment to take the first computation off the
     queue, freeing the slot for the second. *)
  let rec wait_pickup n =
    if n > 0 && Scheduler.inflight sched = 0 then begin
      Unix.sleepf 0.01;
      wait_pickup (n - 1)
    end
  in
  wait_pickup 200;
  let a2 = submit (Configs.small_shifting ~nodes ()) in
  let a3 = submit (Configs.time_windows ~nodes ()) in
  Alcotest.(check bool) "first admitted" true (a1 = `Queued);
  Alcotest.(check bool) "second queued" true (a2 = `Queued);
  Alcotest.(check bool) "third shed" true (a3 = `Shed);
  Scheduler.drain sched;
  let st = Scheduler.stats sched in
  Alcotest.(check int) "shed counted" 1 st.Scheduler.shed;
  Alcotest.(check int) "shed request never answered" 2
    (List.length !results)

let test_scheduler_drain_answers_everything () =
  let dir = temp_dir () in
  let cache = Portfolio.Cache.create ~dir () in
  let sched = Scheduler.create ~workers:1 ~cache () in
  let results = ref [] and lock = Mutex.create () in
  let configs =
    [
      Configs.passive ~nodes ();
      Configs.time_windows ~nodes ();
      Configs.small_shifting ~nodes ();
      Configs.full_shifting ~nodes ();
    ]
  in
  List.iter
    (fun cfg ->
      ignore
        (submit_collect sched ~engines:[ Engine.Bdd_reach ] ~max_depth:50 cfg
           results lock))
    configs;
  (* A short grace: whatever is still running when it elapses is
     force-cancelled, but every accepted request gets an answer. *)
  Scheduler.drain ~grace:0.5 sched;
  Alcotest.(check int) "every accepted request answered" 4
    (List.length !results);
  Alcotest.(check bool) "submissions after drain are refused" true
    (submit_collect sched ~engines:[ Engine.Bdd_reach ] ~max_depth:50
       (Configs.passive ~nodes ()) results lock
    = `Draining);
  (* The cache directory holds only complete, renamed-into-place
     entries — no half-written temporaries survive the drain. *)
  Array.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "no temp file %s left behind" f)
        false
        (Filename.check_suffix f ".tmp"))
    (Sys.readdir dir)

let test_scheduler_crash_still_answers () =
  (* Every engine attempt crashes (injected, unlimited) and the
     supervisor fails fast: a drain must still answer every accepted
     request — with the structured all-engines-failed result, never by
     dropping a waiter. *)
  let faults =
    match Resilience.Faults.of_spec "5:engine_start=crash" with
    | Ok f -> f
    | Error e -> Alcotest.failf "spec rejected: %s" e
  in
  let supervisor =
    { Resilience.Supervisor.default with retries = 1; backoff_s = 0.005 }
  in
  let sched = Scheduler.create ~workers:2 ~supervisor ~faults () in
  let results = ref [] and lock = Mutex.create () in
  let configs =
    [
      Configs.passive ~nodes ();
      Configs.time_windows ~nodes ();
      Configs.small_shifting ~nodes ();
      Configs.full_shifting ~nodes ();
    ]
  in
  List.iter
    (fun cfg ->
      ignore
        (submit_collect sched ~engines:[ Engine.Bdd_reach ] ~max_depth:50 cfg
           results lock))
    configs;
  Scheduler.drain sched;
  let rs = !results in
  Alcotest.(check int) "every accepted request answered" 4 (List.length rs);
  List.iter
    (fun (o : Scheduler.outcome) ->
      Alcotest.(check bool) "flagged all-failed" true
        (Portfolio.all_failed o.Scheduler.result);
      match o.Scheduler.result.Portfolio.failures with
      | [ (Engine.Bdd_reach, _) ] -> ()
      | _ -> Alcotest.fail "expected one bdd failure entry")
    rs;
  let st = Scheduler.stats sched in
  Alcotest.(check int) "every run completed" 4 st.Scheduler.completed

let test_scheduler_warm_sessions () =
  (* With a session pool attached, a second single-SAT-engine request
     of the same family (different depth, so no coalescing and no
     cache key match) must run on the warm session: its outcome is
     attributed reused_session with the first request's unrolling
     depth, and the verdict matches a cold run's. *)
  let pool = Sessions.create () in
  let sched = Scheduler.create ~workers:1 ~sessions:pool () in
  let cfg = Configs.passive ~nodes () in
  let results = ref [] and lock = Mutex.create () in
  let rec wait_for n =
    Mutex.lock lock;
    let got = List.length !results in
    Mutex.unlock lock;
    if got < n then begin
      Unix.sleepf 0.02;
      wait_for n
    end
  in
  ignore
    (submit_collect sched ~engines:[ Engine.Sat_bmc ] ~max_depth:8 cfg results
       lock);
  wait_for 1;
  ignore
    (submit_collect sched ~engines:[ Engine.Sat_bmc ] ~max_depth:10 cfg
       results lock);
  wait_for 2;
  Scheduler.drain sched;
  (match List.rev !results with
  | [ cold; warm ] ->
      Alcotest.(check bool) "first request is cold" false
        cold.Scheduler.reused_session;
      Alcotest.(check int) "cold warm_depth" 0 cold.Scheduler.warm_depth;
      Alcotest.(check bool) "second request reuses the session" true
        warm.Scheduler.reused_session;
      Alcotest.(check bool) "warm depth carries the first unrolling" true
        (warm.Scheduler.warm_depth >= 8);
      (match warm.Scheduler.result.Portfolio.verdict with
      | Engine.Holds { detail } ->
          Alcotest.(check string) "warm verdict equals a cold bmc run"
            "no counterexample up to depth 10" detail
      | _ -> Alcotest.fail "expected Holds from the warm session")
  | rs -> Alcotest.failf "expected two outcomes, got %d" (List.length rs));
  let st = Scheduler.stats sched in
  Alcotest.(check int) "one session reuse counted" 1
    st.Scheduler.session_reuses;
  let ps = Sessions.stats pool in
  Alcotest.(check int) "one pool hit" 1 ps.Sessions.hits;
  Alcotest.(check int) "one pool miss" 1 ps.Sessions.misses;
  Alcotest.(check int) "entry back in the pool" 1 ps.Sessions.idle

(* ------------------------------------------------------------------ *)
(* Server + load generator, end to end *)

let test_server_end_to_end () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "tta.sock" in
  let cache = Portfolio.Cache.create ~dir:(Filename.concat dir "cache") () in
  let server =
    Service.Server.start ~workers:2 ~cache ~grace:2.0
      (Service.Server.Unix_socket sock)
  in
  let report =
    Service.Loadgen.run ~seed:7 ~nodes ~depth:20
      ~mode:(Service.Loadgen.Closed_loop 3) ~requests:40
      (Service.Server.Unix_socket sock)
  in
  Service.Server.stop server;
  Service.Server.wait server;
  Alcotest.(check int) "all requests answered ok" 40
    report.Service.Loadgen.ok;
  Alcotest.(check int) "zero protocol errors" 0
    report.Service.Loadgen.protocol_errors;
  Alcotest.(check bool) "dedup or cache hits occurred" true
    (report.Service.Loadgen.cache_hits + report.Service.Loadgen.coalesced > 0);
  Alcotest.(check bool) "verdicts split between holds and violated" true
    (report.Service.Loadgen.holds > 0
    && report.Service.Loadgen.violated > 0);
  (* The stream is seeded, so a rerun against a warm daemon would be
     deterministic; here we just need the percentile plumbing to have
     seen real latencies. *)
  Alcotest.(check bool) "latency percentiles populated" true
    (report.Service.Loadgen.p50_ms > 0.
    && report.Service.Loadgen.p99_ms >= report.Service.Loadgen.p50_ms)

let test_server_chaos_answers_everything () =
  (* Chaos-hardened serving, end to end: the daemon aborts the first
     two response writes (injected socket crashes) and its engines'
     first two start attempts crash; the loadgen's reconnect-and-retry
     budget must still get every request answered ok, and the report
     must show the retries it spent doing so. *)
  let faults =
    match
      Resilience.Faults.of_spec "11:sock_send=crashx2,engine_start=crashx2"
    with
    | Ok f -> f
    | Error e -> Alcotest.failf "spec rejected: %s" e
  in
  let dir = temp_dir () in
  let sock = Filename.concat dir "tta.sock" in
  let cache =
    Portfolio.Cache.create ~dir:(Filename.concat dir "cache") ~faults ()
  in
  let server =
    Service.Server.start ~workers:2 ~cache ~faults ~grace:2.0
      (Service.Server.Unix_socket sock)
  in
  let report =
    Service.Loadgen.run ~seed:7 ~nodes ~depth:20 ~retry_budget:2
      ~mode:(Service.Loadgen.Closed_loop 3) ~requests:30
      (Service.Server.Unix_socket sock)
  in
  Service.Server.stop server;
  Service.Server.wait server;
  Alcotest.(check int) "every request answered ok under chaos" 30
    report.Service.Loadgen.ok;
  Alcotest.(check int) "zero protocol errors" 0
    report.Service.Loadgen.protocol_errors;
  (* Both injected socket crashes aborted a connection with a request
     in flight, so the loadgen must have retried at least twice. *)
  Alcotest.(check bool) "retries spent recovering" true
    (report.Service.Loadgen.retries >= 2);
  Alcotest.(check bool) "verdicts still split" true
    (report.Service.Loadgen.holds > 0 && report.Service.Loadgen.violated > 0)

let test_server_degraded_deadline () =
  (* A request that arrives with its deadline already spent, but whose
     family holds a warm session, must degrade to an answer with
     content — the pool's certified clean depth on [status:"degraded"]
     — instead of a bare unknown. The degraded depth can never exceed
     what a fault-free conclusive run at the same bound would certify. *)
  let dir = temp_dir () in
  let sock = Filename.concat dir "tta.sock" in
  let pool = Sessions.create () in
  let server =
    Service.Server.start ~workers:1 ~sessions:pool ~grace:2.0
      (Service.Server.Unix_socket sock)
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let send j =
    let line = Json.to_string j ^ "\n" in
    ignore (Unix.write_substring fd line 0 (String.length line))
  in
  let ic = Unix.in_channel_of_descr fd in
  let read_resp () =
    match Protocol.decode_response_line (input_line ic) with
    | Ok r -> r
    | Error e -> Alcotest.failf "undecodable response: %s" e
  in
  (* Warm the family with a conclusive run: the fault-free reference
     certifies exactly depth 8. *)
  send
    (Protocol.request ~id:"w1" ~config:"passive" ~nodes ~engine:"bmc" ~depth:8
       ());
  (match read_resp () with
  | Protocol.Answer { id = "w1"; verdict = Protocol.Holds _; _ } -> ()
  | r ->
      Alcotest.failf "expected a conclusive warm-up answer, got %s"
        (Json.to_string (Protocol.encode_response r)));
  (* Same family, deeper bound, no time left at all. *)
  send
    (Protocol.request ~id:"d1" ~config:"passive" ~nodes ~engine:"bmc"
       ~depth:40 ~deadline_ms:0 ());
  (match read_resp () with
  | Protocol.Degraded { id = "d1"; code; clean_depth; _ } ->
      Alcotest.(check string) "degraded names the cause"
        Protocol.code_deadline_exceeded code;
      Alcotest.(check int) "clean depth is the warm session's certificate" 8
        clean_depth
  | r ->
      Alcotest.failf "expected a degraded answer, got %s"
        (Json.to_string (Protocol.encode_response r)));
  Unix.close fd;
  Service.Server.stop server;
  Service.Server.wait server

(* ------------------------------------------------------------------ *)
(* Loadgen retry accounting, against a scripted stand-in daemon *)

(* A stand-in for the daemon whose per-line behaviour the test scripts
   exactly: [behave ~conn_n line] returns [`Reply resp] or [`Close]
   (hang up mid-request). Lets the loadgen's two retry currencies —
   transport vs structured engine failure — be exercised one at a
   time, which real chaos specs cannot guarantee. *)
let stub_server sock_path behave =
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX sock_path);
  Unix.listen listen_fd 8;
  let domain =
    Domain.spawn (fun () ->
        let conn_n = ref 0 in
        let rec serve () =
          match Unix.accept listen_fd with
          | exception Unix.Unix_error _ -> ()
          | conn, _ ->
              incr conn_n;
              let ic = Unix.in_channel_of_descr conn in
              let rec session () =
                match input_line ic with
                | exception End_of_file -> ()
                | line -> (
                    match behave ~conn_n:!conn_n line with
                    | `Close -> ()
                    | `Reply resp ->
                        ignore
                          (Unix.write_substring conn resp 0
                             (String.length resp));
                        session ())
              in
              session ();
              (try Unix.close conn with Unix.Unix_error _ -> ());
              serve ()
        in
        serve ())
  in
  let stop () =
    (try Unix.shutdown listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    Domain.join domain
  in
  stop

let stub_answer id =
  Protocol.response_line
    (Protocol.Answer
       {
         id;
         verdict = Protocol.Holds { detail = "stub" };
         engine = "stub";
         cache_hit = false;
         coalesced = false;
         wall_ms = 1.0;
         queue_ms = 0.0;
         reused_session = false;
         warm_depth = 0;
       })

let test_loadgen_engine_retry_accounting () =
  (* Every request's first attempt is answered with a structured
     engine_failed error on a live connection; the retry must be
     booked as an engine retry, never a transport one. *)
  let dir = temp_dir () in
  let sock = Filename.concat dir "stub.sock" in
  let seen = Hashtbl.create 16 in
  let behave ~conn_n:_ line =
    match Protocol.decode_request_line line with
    | Error _ -> `Close
    | Ok req ->
        let id = req.Protocol.id in
        if Hashtbl.mem seen id then `Reply (stub_answer id)
        else begin
          Hashtbl.add seen id ();
          `Reply
            (Protocol.response_line
               (Protocol.Error
                  {
                    id = Some id;
                    code = Protocol.code_engine_failed;
                    reason = "scripted: first attempt always fails";
                  }))
        end
  in
  let stop = stub_server sock behave in
  let report =
    Service.Loadgen.run ~seed:3 ~nodes ~depth:8 ~retry_budget:2
      ~mode:(Service.Loadgen.Closed_loop 1) ~requests:6
      (Service.Server.Unix_socket sock)
  in
  stop ();
  Alcotest.(check int) "all answered on the second ask" 6
    report.Service.Loadgen.ok;
  Alcotest.(check int) "one engine retry per request" 6
    report.Service.Loadgen.engine_retries;
  Alcotest.(check int) "no transport retries" 0
    report.Service.Loadgen.conn_retries;
  Alcotest.(check int) "each failure response counted" 6
    report.Service.Loadgen.engine_failed;
  Alcotest.(check int) "combined retries keep the legacy total" 6
    report.Service.Loadgen.retries;
  Alcotest.(check int) "no protocol errors" 0
    report.Service.Loadgen.protocol_errors

let test_loadgen_conn_retry_accounting () =
  (* The first connection hangs up mid-request without a response (a
     drop-injected link in miniature); the resend must be booked as a
     transport retry, with the engine column untouched. *)
  let dir = temp_dir () in
  let sock = Filename.concat dir "stub.sock" in
  let behave ~conn_n line =
    if conn_n = 1 then `Close
    else
      match Protocol.decode_request_line line with
      | Error _ -> `Close
      | Ok req -> `Reply (stub_answer req.Protocol.id)
  in
  let stop = stub_server sock behave in
  let report =
    Service.Loadgen.run ~seed:3 ~nodes ~depth:8 ~retry_budget:2
      ~mode:(Service.Loadgen.Closed_loop 1) ~requests:5
      (Service.Server.Unix_socket sock)
  in
  stop ();
  Alcotest.(check int) "all answered after the reconnect" 5
    report.Service.Loadgen.ok;
  Alcotest.(check int) "the hangup cost one transport retry" 1
    report.Service.Loadgen.conn_retries;
  Alcotest.(check int) "no engine retries" 0
    report.Service.Loadgen.engine_retries;
  Alcotest.(check int) "no protocol errors" 0
    report.Service.Loadgen.protocol_errors

let test_server_rejects_malformed_lines () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "tta.sock" in
  let server =
    Service.Server.start ~workers:1 (Service.Server.Unix_socket sock)
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let send s = ignore (Unix.write_substring fd s 0 (String.length s)) in
  send "this is not json\n";
  send {|{"id":"q1","config":"imaginary"}|};
  send "\n";
  send
    (Json.to_string
       (Protocol.request ~id:"q2" ~config:"passive" ~nodes ~engine:"bdd"
          ~depth:20 ())
    ^ "\n");
  let ic = Unix.in_channel_of_descr fd in
  let read_resp () =
    match Protocol.decode_response_line (input_line ic) with
    | Ok r -> r
    | Error e -> Alcotest.failf "undecodable response: %s" e
  in
  (match read_resp () with
  | Protocol.Error { id = None; _ } -> ()
  | _ -> Alcotest.fail "expected an anonymous error response");
  (match read_resp () with
  | Protocol.Error { id = Some "q1"; _ } -> ()
  | _ -> Alcotest.fail "expected an error response naming q1");
  (match read_resp () with
  | Protocol.Answer { id = "q2"; _ } -> ()
  | _ -> Alcotest.fail "expected an answer for q2");
  Unix.close fd;
  Service.Server.stop server;
  Service.Server.wait server

let test_server_ping_pong () =
  (* Golden wire check for the health-probe path: a ping bypasses the
     scheduler and is answered verbatim with a pong. *)
  let dir = temp_dir () in
  let sock = Filename.concat dir "tta.sock" in
  let server =
    Service.Server.start ~workers:1 (Service.Server.Unix_socket sock)
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let line = Json.to_string (Protocol.ping ~id:"h1") ^ "\n" in
  ignore (Unix.write_substring fd line 0 (String.length line));
  let ic = Unix.in_channel_of_descr fd in
  Alcotest.(check string) "pong golden" {|{"id":"h1","status":"pong"}|}
    (input_line ic);
  Unix.close fd;
  Service.Server.stop server;
  Service.Server.wait server

let test_server_ephemeral_port () =
  (* --port 0 support: bind port 0, read the kernel-chosen port back
     through bound_addr, and talk to it. *)
  let server =
    Service.Server.start ~workers:1 (Service.Server.Tcp ("127.0.0.1", 0))
  in
  (match Service.Server.bound_addr server with
  | Service.Server.Tcp (host, port) ->
      Alcotest.(check string) "bound host" "127.0.0.1" host;
      Alcotest.(check bool) "ephemeral port resolved" true (port > 0);
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      let line = Json.to_string (Protocol.ping ~id:"h2") ^ "\n" in
      ignore (Unix.write_substring fd line 0 (String.length line));
      let ic = Unix.in_channel_of_descr fd in
      (match Protocol.decode_response_line (input_line ic) with
      | Ok (Protocol.Pong { id }) ->
          Alcotest.(check string) "pong id" "h2" id
      | Ok _ -> Alcotest.fail "expected a pong"
      | Error e -> Alcotest.failf "undecodable response: %s" e);
      Unix.close fd
  | Service.Server.Unix_socket _ ->
      Alcotest.fail "TCP server must report a TCP bound address");
  Service.Server.stop server;
  Service.Server.wait server

let test_server_sigterm_drains () =
  (* The real signal path: serve in a background domain, deliver an
     actual SIGTERM to the process, and require serve to return after
     answering the in-flight request. *)
  let dir = temp_dir () in
  let sock = Filename.concat dir "tta.sock" in
  let ready = Atomic.make false in
  let served =
    Domain.spawn (fun () ->
        Service.Server.serve ~workers:1 ~grace:2.0
          ~on_ready:(fun _ -> Atomic.set ready true)
          (Service.Server.Unix_socket sock))
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.01
  done;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let line =
    Json.to_string
      (Protocol.request ~id:"s1" ~config:"full-shifting" ~nodes
         ~engine:"explicit" ~depth:60 ())
    ^ "\n"
  in
  ignore (Unix.write_substring fd line 0 (String.length line));
  Unix.sleepf 0.2;
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  (* serve must drain and return; the accepted request must have been
     answered (conclusively or as a shutdown cancellation) before the
     connection died. *)
  Domain.join served;
  let ic = Unix.in_channel_of_descr fd in
  (match Protocol.decode_response_line (input_line ic) with
  | Ok (Protocol.Answer { id = "s1"; _ }) -> ()
  | Ok r ->
      Alcotest.failf "unexpected response %s"
        (Json.to_string (Protocol.encode_response r))
  | Error e -> Alcotest.failf "undecodable response: %s" e);
  Unix.close fd

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "request defaults" `Quick test_request_defaults;
          Alcotest.test_case "request golden" `Quick test_request_golden;
          Alcotest.test_case "response golden" `Quick test_response_golden;
          Alcotest.test_case "pre-session response compatible" `Quick
            test_response_presession_compat;
          Alcotest.test_case "error codes golden" `Quick
            test_error_codes_golden;
          Alcotest.test_case "degraded golden" `Quick test_degraded_golden;
          Alcotest.test_case "response roundtrip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "request validation" `Quick
            test_request_validation;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "identical requests coalesce" `Quick
            test_scheduler_coalesces_identical;
          Alcotest.test_case "family partitions coalescing" `Quick
            test_scheduler_family_partitions_coalescing;
          Alcotest.test_case "warm cache answers at admission" `Quick
            test_scheduler_cache_hit;
          Alcotest.test_case "expired deadline skips the run" `Quick
            test_scheduler_expired_deadline_skips_run;
          Alcotest.test_case "admission control sheds over cap" `Quick
            test_scheduler_sheds_over_cap;
          Alcotest.test_case "drain answers everything" `Quick
            test_scheduler_drain_answers_everything;
          Alcotest.test_case "crashing engines still answered" `Quick
            test_scheduler_crash_still_answers;
          Alcotest.test_case "warm sessions serve near-miss requests" `Quick
            test_scheduler_warm_sessions;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end with loadgen" `Quick
            test_server_end_to_end;
          Alcotest.test_case "deadline-dead request degrades with content"
            `Quick test_server_degraded_deadline;
          Alcotest.test_case "loadgen books engine retries" `Quick
            test_loadgen_engine_retry_accounting;
          Alcotest.test_case "loadgen books transport retries" `Quick
            test_loadgen_conn_retry_accounting;
          Alcotest.test_case "chaos answered with retries" `Quick
            test_server_chaos_answers_everything;
          Alcotest.test_case "malformed lines rejected" `Quick
            test_server_rejects_malformed_lines;
          Alcotest.test_case "ping answered with pong" `Quick
            test_server_ping_pong;
          Alcotest.test_case "ephemeral port via bound_addr" `Quick
            test_server_ephemeral_port;
          Alcotest.test_case "SIGTERM drains gracefully" `Quick
            test_server_sigterm_drains;
        ] );
    ]
