(* Cluster layer: ring properties, health timing, readiness parsing,
   id rewriting, restart gating, and an end-to-end router test over
   real worker daemons. *)

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tta_cluster_test_%d_%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

(* ------------------------------------------------------------------ *)
(* Ring *)

let names n = List.init n (Printf.sprintf "w%d")
let keys n = List.init n (Printf.sprintf "key-%d")

let test_ring_members () =
  let r = Cluster.Ring.create ~vnodes:8 [ "b"; "a"; "b"; "c" ] in
  Alcotest.(check (list string)) "deduplicated and sorted" [ "a"; "b"; "c" ]
    (Cluster.Ring.members r);
  Alcotest.(check bool) "empty ring" true
    (Cluster.Ring.is_empty (Cluster.Ring.create []));
  Alcotest.(check bool) "empty ring routes nowhere" true
    (Cluster.Ring.route (Cluster.Ring.create []) "k" = None)

let test_ring_singleton () =
  let r = Cluster.Ring.create [ "only" ] in
  List.iter
    (fun k ->
      Alcotest.(check (option string)) "lone member owns everything"
        (Some "only") (Cluster.Ring.route r k))
    (keys 50)

let test_ring_deterministic () =
  let r1 = Cluster.Ring.create (names 5) in
  let r2 = Cluster.Ring.create (List.rev (names 5)) in
  List.iter
    (fun k ->
      Alcotest.(check (option string)) "order of creation irrelevant"
        (Cluster.Ring.route r1 k) (Cluster.Ring.route r2 k))
    (keys 200)

let test_ring_balance () =
  (* 10k keys over 8 workers: every worker takes a share within a
     moderate band of even. The bound is loose enough to be stable
     (the ring is deterministic, so this is really a regression pin on
     the hash quality at 128 vnodes). *)
  let workers = 8 and n_keys = 10_000 in
  let r = Cluster.Ring.create ~vnodes:128 (names workers) in
  let counts = Hashtbl.create workers in
  List.iter
    (fun k ->
      match Cluster.Ring.route r k with
      | None -> Alcotest.fail "non-empty ring must route"
      | Some w ->
          Hashtbl.replace counts w
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts w)))
    (keys n_keys);
  Alcotest.(check int) "every worker owns keys" workers
    (Hashtbl.length counts);
  let mean = float_of_int n_keys /. float_of_int workers in
  Hashtbl.iter
    (fun w c ->
      let ratio = float_of_int c /. mean in
      if ratio < 0.5 || ratio > 1.5 then
        Alcotest.failf "worker %s load %.2fx mean (want within [0.5, 1.5])"
          w ratio)
    counts

let test_ring_remove_remaps_minimally () =
  let r = Cluster.Ring.create ~vnodes:64 (names 8) in
  let r' = Cluster.Ring.remove r "w3" in
  let ks = keys 4_000 in
  let moved = ref 0 in
  List.iter
    (fun k ->
      let before = Option.get (Cluster.Ring.route r k) in
      let after = Option.get (Cluster.Ring.route r' k) in
      if before = "w3" then begin
        incr moved;
        Alcotest.(check bool) "orphaned keys get a new owner" true
          (after <> "w3")
      end
      else
        Alcotest.(check string) "keys of surviving workers do not move"
          before after)
    ks;
  (* Only w3's share moved: about 1/8 of the keyspace. *)
  let frac = float_of_int !moved /. float_of_int (List.length ks) in
  if frac < 0.04 || frac > 0.30 then
    Alcotest.failf "moved fraction %.3f out of expected band" frac

let test_ring_add_remaps_minimally () =
  let r = Cluster.Ring.create ~vnodes:64 (names 8) in
  let r' = Cluster.Ring.add r "w8" in
  let ks = keys 4_000 in
  let moved = ref 0 in
  List.iter
    (fun k ->
      let before = Option.get (Cluster.Ring.route r k) in
      let after = Option.get (Cluster.Ring.route r' k) in
      if before <> after then begin
        incr moved;
        Alcotest.(check string) "moved keys go only to the new member"
          "w8" after
      end)
    ks;
  let frac = float_of_int !moved /. float_of_int (List.length ks) in
  if frac < 0.03 || frac > 0.25 then
    Alcotest.failf "moved fraction %.3f out of expected band" frac

let test_ring_failover_order () =
  (* route with an accept predicate must walk the same order as
     [successors]: dead owner -> next distinct live member. *)
  let r = Cluster.Ring.create ~vnodes:64 (names 4) in
  List.iter
    (fun k ->
      match Cluster.Ring.successors r k with
      | owner :: next :: _ ->
          Alcotest.(check (option string)) "owner is the route" (Some owner)
            (Cluster.Ring.route r k);
          Alcotest.(check (option string)) "failover = next on the ring"
            (Some next)
            (Cluster.Ring.route ~accept:(fun w -> w <> owner) r k);
          Alcotest.(check (option string)) "two down, third takes over"
            (List.nth_opt (Cluster.Ring.successors r k) 2)
            (Cluster.Ring.route
               ~accept:(fun w -> w <> owner && w <> next)
               r k)
      | _ -> Alcotest.fail "4-member ring must list >= 2 successors")
    (keys 100);
  List.iter
    (fun k ->
      let succ = Cluster.Ring.successors r k in
      Alcotest.(check int) "successors cover the membership" 4
        (List.length succ);
      Alcotest.(check (list string)) "successors are distinct"
        (List.sort_uniq compare succ)
        (List.sort compare succ))
    (keys 20)

(* ------------------------------------------------------------------ *)
(* Health *)

let test_health_timing () =
  let h = Cluster.Health.create ~interval:1.0 ~timeout:3.0 ~now:0.0 "w0" in
  Alcotest.(check (option string)) "not due yet" None
    (Cluster.Health.next_ping ~now:0.5 h);
  (match Cluster.Health.next_ping ~now:1.0 h with
  | Some id ->
      Alcotest.(check bool) "heartbeat namespace" true
        (Cluster.Health.is_ping_id id);
      (* One probe in flight at a time. *)
      Alcotest.(check (option string)) "no second probe" None
        (Cluster.Health.next_ping ~now:2.5 h);
      (* A foreign pong changes nothing. *)
      Cluster.Health.pong ~now:2.0 h "hb:w0:999";
      Alcotest.(check bool) "still overdue later without the real pong" true
        (Cluster.Health.overdue ~now:3.5 h);
      Cluster.Health.pong ~now:2.0 h id
  | None -> Alcotest.fail "probe due at the interval");
  Alcotest.(check bool) "pong cleared the overdue clock" false
    (Cluster.Health.overdue ~now:4.9 h);
  Alcotest.(check bool) "silence past the timeout is overdue" true
    (Cluster.Health.overdue ~now:5.1 h);
  (* After the pong the next probe re-arms off the last send. *)
  Alcotest.(check bool) "probe cycle re-arms" true
    (Cluster.Health.next_ping ~now:2.1 h <> None);
  Cluster.Health.reset ~now:10.0 h;
  Alcotest.(check bool) "reset clears overdue" false
    (Cluster.Health.overdue ~now:12.9 h)

let test_health_ids_distinct () =
  let h = Cluster.Health.create ~interval:0.5 ~timeout:2.0 ~now:0.0 "w7" in
  let id1 = Option.get (Cluster.Health.next_ping ~now:1.0 h) in
  Cluster.Health.pong ~now:1.1 h id1;
  let id2 = Option.get (Cluster.Health.next_ping ~now:2.0 h) in
  Alcotest.(check bool) "sequence numbers advance" true (id1 <> id2);
  Alcotest.(check bool) "ids name the worker" true
    (String.length id1 > 3 && String.sub id1 3 2 = "w7")

(* ------------------------------------------------------------------ *)
(* Readiness parsing and id rewriting *)

let test_parse_ready () =
  Alcotest.(check bool) "tcp readiness" true
    (Cluster.Worker.parse_ready
       {|{"ready":true,"socket":"127.0.0.1:4321","port":4321}|}
    = Some ("127.0.0.1:4321", Some 4321));
  Alcotest.(check bool) "unix-socket readiness" true
    (Cluster.Worker.parse_ready {|{"ready":true,"socket":"/tmp/w.sock"}|}
    = Some ("/tmp/w.sock", None));
  Alcotest.(check bool) "banner line rejected" true
    (Cluster.Worker.parse_ready "tta_served: listening on ..." = None);
  Alcotest.(check bool) "ready:false rejected" true
    (Cluster.Worker.parse_ready {|{"ready":false,"socket":"x"}|} = None);
  Alcotest.(check bool) "missing socket rejected" true
    (Cluster.Worker.parse_ready {|{"ready":true}|} = None)

let test_rewrite_request_id () =
  let line = {|{"id":"r7","config":"passive","nodes":2,"depth":9}|} in
  (match Cluster.Router.rewrite_request_id line ~id:"q42" with
  | None -> Alcotest.fail "object line must rewrite"
  | Some out ->
      let j = Result.get_ok (Json.of_string out) in
      Alcotest.(check (option string)) "id replaced" (Some "q42")
        (Option.bind (Json.member "id" j) Json.string_value);
      Alcotest.(check (option string)) "payload preserved" (Some "passive")
        (Option.bind (Json.member "config" j) Json.string_value));
  Alcotest.(check bool) "non-object refused" true
    (Cluster.Router.rewrite_request_id "[1,2]" ~id:"q1" = None
    && Cluster.Router.rewrite_request_id "garbage" ~id:"q1" = None)

let test_rewrite_response_line () =
  let line = {|{"id":"q42","status":"ok","verdict":"holds","engine":"bdd"}|} in
  match Cluster.Router.rewrite_response_line line ~id:"r7" ~worker:"w3" with
  | None -> Alcotest.fail "object line must rewrite"
  | Some out -> (
      let j = Result.get_ok (Json.of_string out) in
      Alcotest.(check (option string)) "client id restored" (Some "r7")
        (Option.bind (Json.member "id" j) Json.string_value);
      Alcotest.(check (option string)) "worker attributed" (Some "w3")
        (Option.bind (Json.member "worker" j) Json.string_value);
      Alcotest.(check (option string)) "payload preserved" (Some "holds")
        (Option.bind (Json.member "verdict" j) Json.string_value);
      (* Re-rewriting replaces, never duplicates, the worker field. *)
      match Cluster.Router.rewrite_response_line out ~id:"r8" ~worker:"w4" with
      | None -> Alcotest.fail "rewritten line must rewrite again"
      | Some out2 ->
          let j2 = Result.get_ok (Json.of_string out2) in
          (match j2 with
          | Json.Obj fields ->
              Alcotest.(check int) "single worker field" 1
                (List.length
                   (List.filter (fun (k, _) -> k = "worker") fields))
          | _ -> Alcotest.fail "object expected");
          Alcotest.(check (option string)) "worker updated" (Some "w4")
            (Option.bind (Json.member "worker" j2) Json.string_value))

(* ------------------------------------------------------------------ *)
(* Restart gate *)

let test_restarts_gate () =
  let policy = Resilience.Supervisor.default in
  let gate =
    Resilience.Supervisor.Restarts.create ~max_restarts:3 ~window_s:10.0
      policy
  in
  (* Deaths 1..3 inside the window: deterministic escalating backoff,
     exactly the supervisor's schedule. *)
  List.iteri
    (fun i now ->
      match Resilience.Supervisor.Restarts.record ~now gate with
      | `Backoff d ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "death %d backoff" (i + 1))
            (Resilience.Supervisor.backoff_delay policy i)
            d
      | `Give_up -> Alcotest.failf "death %d must not give up" (i + 1))
    [ 0.0; 1.0; 2.0 ];
  (match Resilience.Supervisor.Restarts.record ~now:3.0 gate with
  | `Give_up -> ()
  | `Backoff _ -> Alcotest.fail "4th death in the window must give up");
  (* Outside the window the intensity decays: an old gate recovers. *)
  (match Resilience.Supervisor.Restarts.record ~now:100.0 gate with
  | `Backoff d ->
      Alcotest.(check (float 1e-9)) "window expiry resets the curve"
        (Resilience.Supervisor.backoff_delay policy 0)
        d
  | `Give_up -> Alcotest.fail "deaths outside the window must not count");
  Alcotest.(check int) "only the fresh death remains" 1
    (Resilience.Supervisor.Restarts.count gate)

(* ------------------------------------------------------------------ *)
(* End to end: a real router over real worker daemons *)

let served_exe () =
  let p = Filename.concat (Sys.getcwd ()) "../bin/tta_served.exe" in
  if not (Sys.file_exists p) then
    Alcotest.skip ();
  p

let wait_ready ~timeout_s ~target ready =
  let deadline = Unix.gettimeofday () +. timeout_s in
  while Atomic.get ready < target && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.05
  done;
  Alcotest.(check bool) "workers became ready" true
    (Atomic.get ready >= target)

(* ------------------------------------------------------------------ *)
(* Circuit breaker: a pure count-window state machine, tested without
   any processes or clocks. *)

let state_name = function
  | Cluster.Breaker.Closed -> "closed"
  | Cluster.Breaker.Open -> "open"
  | Cluster.Breaker.Half_open -> "half-open"

let check_state msg expected b =
  Alcotest.(check string) msg (state_name expected)
    (state_name (Cluster.Breaker.state b))

let test_breaker_trips_at_threshold () =
  (* window 8, default threshold max 1 (8/2) = 4. *)
  let b = Cluster.Breaker.create ~window:8 () in
  check_state "starts closed" Cluster.Breaker.Closed b;
  Alcotest.(check bool) "closed admits" true (Cluster.Breaker.admits b);
  for _ = 1 to 3 do
    Cluster.Breaker.record b ~ok:false
  done;
  check_state "below threshold stays closed" Cluster.Breaker.Closed b;
  Cluster.Breaker.record b ~ok:false;
  check_state "threshold failure trips" Cluster.Breaker.Open b;
  Alcotest.(check bool) "open refuses" false (Cluster.Breaker.admits b);
  Alcotest.(check int) "one open counted" 1 (Cluster.Breaker.opens b);
  (* Stragglers from requests sent before the trip carry no new
     evidence: they must not disturb the open state. *)
  Cluster.Breaker.record b ~ok:true;
  Cluster.Breaker.record b ~ok:false;
  check_state "stragglers ignored while open" Cluster.Breaker.Open b

let test_breaker_window_slides () =
  (* Failures spread thinly across a sliding window never accumulate
     to the threshold: old outcomes age out. *)
  let b = Cluster.Breaker.create ~window:4 ~threshold:3 () in
  for _ = 1 to 20 do
    Cluster.Breaker.record b ~ok:false;
    Cluster.Breaker.record b ~ok:true;
    Cluster.Breaker.record b ~ok:true
  done;
  check_state "sparse failures stay closed" Cluster.Breaker.Closed b;
  Alcotest.(check int) "never opened" 0 (Cluster.Breaker.opens b);
  (* ...but the same total failure count, adjacent, trips. *)
  Cluster.Breaker.record b ~ok:false;
  Cluster.Breaker.record b ~ok:false;
  Cluster.Breaker.record b ~ok:false;
  check_state "dense failures trip" Cluster.Breaker.Open b

let test_breaker_create_validates () =
  let invalid f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "window 0 rejected" true
    (invalid (fun () -> Cluster.Breaker.create ~window:0 ()));
  Alcotest.(check bool) "threshold 0 rejected" true
    (invalid (fun () -> Cluster.Breaker.create ~window:4 ~threshold:0 ()));
  Alcotest.(check bool) "threshold > window rejected" true
    (invalid (fun () -> Cluster.Breaker.create ~window:4 ~threshold:5 ()))

let test_breaker_pings_ok_requests_fail () =
  (* The scenario the breaker exists for: the worker process is alive
     and answering health pings, but every request it serves fails.
     Pongs are not request evidence — the breaker must still trip. *)
  let b = Cluster.Breaker.create ~window:6 ~threshold:3 () in
  Cluster.Breaker.note_pong b;
  Cluster.Breaker.record b ~ok:false;
  Cluster.Breaker.note_pong b;
  Cluster.Breaker.record b ~ok:false;
  check_state "pongs do not absolve failures" Cluster.Breaker.Closed b;
  Cluster.Breaker.record b ~ok:false;
  check_state "trips despite healthy pings" Cluster.Breaker.Open b;
  Alcotest.(check bool) "sick-but-alive worker refused" false
    (Cluster.Breaker.admits b)

let test_breaker_half_open_probe () =
  let b = Cluster.Breaker.create ~window:4 ~threshold:2 () in
  Cluster.Breaker.record b ~ok:false;
  Cluster.Breaker.record b ~ok:false;
  check_state "tripped" Cluster.Breaker.Open b;
  (* A pong is the evidence that reopens the door — to exactly one
     probe request. *)
  Cluster.Breaker.note_pong b;
  check_state "pong moves open to half-open" Cluster.Breaker.Half_open b;
  Alcotest.(check bool) "half-open admits the probe" true
    (Cluster.Breaker.admits b);
  Cluster.Breaker.probe_started b;
  Alcotest.(check bool) "no second request while probing" false
    (Cluster.Breaker.admits b);
  (* Probe succeeds: circuit closes and traffic resumes. *)
  Cluster.Breaker.record b ~ok:true;
  check_state "probe success closes" Cluster.Breaker.Closed b;
  Alcotest.(check bool) "closed again admits" true (Cluster.Breaker.admits b);
  Alcotest.(check int) "still one open" 1 (Cluster.Breaker.opens b)

let test_breaker_probe_failure_reopens () =
  let b = Cluster.Breaker.create ~window:4 ~threshold:2 () in
  Cluster.Breaker.record b ~ok:false;
  Cluster.Breaker.record b ~ok:false;
  Cluster.Breaker.note_pong b;
  Cluster.Breaker.probe_started b;
  Cluster.Breaker.record b ~ok:false;
  check_state "probe failure re-opens" Cluster.Breaker.Open b;
  Alcotest.(check int) "second open counted" 2 (Cluster.Breaker.opens b);
  (* The cycle repeats: another pong earns another single probe. *)
  Cluster.Breaker.note_pong b;
  check_state "pong re-arms the probe" Cluster.Breaker.Half_open b;
  Cluster.Breaker.probe_started b;
  Cluster.Breaker.record b ~ok:true;
  check_state "eventual success closes" Cluster.Breaker.Closed b

let test_breaker_reset_on_respawn () =
  let b = Cluster.Breaker.create ~window:4 ~threshold:2 () in
  Cluster.Breaker.record b ~ok:false;
  Cluster.Breaker.record b ~ok:false;
  check_state "tripped before respawn" Cluster.Breaker.Open b;
  (* The supervisor replaced the process: clean slate, but the
     lifetime trip count survives for stats. *)
  Cluster.Breaker.reset b;
  check_state "reset closes" Cluster.Breaker.Closed b;
  Alcotest.(check bool) "fresh worker admits" true (Cluster.Breaker.admits b);
  Alcotest.(check int) "opens survive reset" 1 (Cluster.Breaker.opens b);
  (* And the window really is fresh: one failure is again below the
     threshold. *)
  Cluster.Breaker.record b ~ok:false;
  check_state "window restarted clean" Cluster.Breaker.Closed b

let test_router_end_to_end () =
  let exe = served_exe () in
  let dir = temp_dir () in
  let addr = Service.Server.Unix_socket (Filename.concat dir "router.sock") in
  let ready = Atomic.make 0 in
  let router =
    Cluster.Router.start
      ~on_event:(function
        | Cluster.Router.Worker_ready _ -> Atomic.incr ready
        | _ -> ())
      ~exe
      ~worker_args:
        [ "--cache-dir"; Filename.concat dir "cache"; "--workers"; "1" ]
      ~workers:2 addr
  in
  Fun.protect
    ~finally:(fun () ->
      Cluster.Router.stop router;
      Cluster.Router.wait router)
    (fun () ->
      wait_ready ~timeout_s:20.0 ~target:2 ready;
      let report =
        Service.Loadgen.run ~seed:3 ~nodes_choices:[ 2 ] ~depths:[ 2; 3; 4 ]
          ~configs:[ "passive"; "time-windows"; "small-shifting" ]
          ~engines:[ "bdd" ]
          ~mode:(Service.Loadgen.Closed_loop 3) ~requests:12 addr
      in
      Alcotest.(check int) "every request answered" 12
        report.Service.Loadgen.ok;
      Alcotest.(check int) "no protocol errors" 0
        report.Service.Loadgen.protocol_errors;
      (* Responses carry worker attribution added by the router. *)
      Alcotest.(check int) "responses attributed to workers" 12
        (List.fold_left
           (fun acc (_, n) -> acc + n)
           0 report.Service.Loadgen.per_worker);
      let s = Cluster.Router.stats router in
      Alcotest.(check int) "router forwarded everything it answered" 12
        (List.fold_left
           (fun acc (_, n) -> acc + n)
           0 s.Cluster.Router.forwarded))

let test_router_failover_mid_stream () =
  (* Kill a worker while requests are in flight (the kill_after hook
     SIGKILLs the worker receiving the 3rd forwarded request) and
     require zero lost requests: orphans re-route to the ring
     successor, the dead worker respawns. *)
  let exe = served_exe () in
  let dir = temp_dir () in
  let addr = Service.Server.Unix_socket (Filename.concat dir "router.sock") in
  let ready = Atomic.make 0 in
  let killed = Atomic.make 0 in
  let respawned = Atomic.make 0 in
  let router =
    Cluster.Router.start ~kill_after:3
      ~on_event:(function
        | Cluster.Router.Worker_ready _ -> Atomic.incr ready
        | Cluster.Router.Killed_by_request _ -> Atomic.incr killed
        | Cluster.Router.Worker_backoff _ -> Atomic.incr respawned
        | _ -> ())
      ~exe
      ~worker_args:
        [ "--cache-dir"; Filename.concat dir "cache"; "--workers"; "1" ]
      ~workers:2 addr
  in
  Fun.protect
    ~finally:(fun () ->
      Cluster.Router.stop router;
      Cluster.Router.wait router)
    (fun () ->
      wait_ready ~timeout_s:20.0 ~target:2 ready;
      let report =
        Service.Loadgen.run ~seed:5 ~nodes_choices:[ 2 ] ~depths:[ 2; 3; 4; 5 ]
          ~configs:[ "passive"; "time-windows"; "small-shifting" ]
          ~engines:[ "bdd" ] ~retry_budget:3
          ~mode:(Service.Loadgen.Closed_loop 4) ~requests:16 addr
      in
      Alcotest.(check int) "kill hook fired" 1 (Atomic.get killed);
      Alcotest.(check int) "zero lost requests" 16
        report.Service.Loadgen.ok;
      Alcotest.(check int) "no protocol errors" 0
        report.Service.Loadgen.protocol_errors;
      let s = Cluster.Router.stats router in
      Alcotest.(check bool) "death observed and re-dispatch happened" true
        (s.Cluster.Router.restarts >= 1);
      Alcotest.(check bool) "victim scheduled for respawn" true
        (Atomic.get respawned >= 1))

let () =
  Alcotest.run "cluster"
    [
      ( "ring",
        [
          Alcotest.test_case "members" `Quick test_ring_members;
          Alcotest.test_case "singleton" `Quick test_ring_singleton;
          Alcotest.test_case "deterministic" `Quick test_ring_deterministic;
          Alcotest.test_case "balance across 8 workers" `Quick
            test_ring_balance;
          Alcotest.test_case "remove remaps minimally" `Quick
            test_ring_remove_remaps_minimally;
          Alcotest.test_case "add remaps minimally" `Quick
            test_ring_add_remaps_minimally;
          Alcotest.test_case "failover order" `Quick test_ring_failover_order;
        ] );
      ( "health",
        [
          Alcotest.test_case "probe timing" `Quick test_health_timing;
          Alcotest.test_case "probe ids" `Quick test_health_ids_distinct;
        ] );
      ( "wire",
        [
          Alcotest.test_case "parse readiness" `Quick test_parse_ready;
          Alcotest.test_case "rewrite request id" `Quick
            test_rewrite_request_id;
          Alcotest.test_case "rewrite response line" `Quick
            test_rewrite_response_line;
        ] );
      ( "supervision",
        [ Alcotest.test_case "restart gate" `Quick test_restarts_gate ] );
      ( "breaker",
        [
          Alcotest.test_case "trips at threshold" `Quick
            test_breaker_trips_at_threshold;
          Alcotest.test_case "window slides" `Quick test_breaker_window_slides;
          Alcotest.test_case "create validates" `Quick
            test_breaker_create_validates;
          Alcotest.test_case "pings ok, requests fail" `Quick
            test_breaker_pings_ok_requests_fail;
          Alcotest.test_case "half-open probe" `Quick
            test_breaker_half_open_probe;
          Alcotest.test_case "probe failure reopens" `Quick
            test_breaker_probe_failure_reopens;
          Alcotest.test_case "reset on respawn" `Quick
            test_breaker_reset_on_respawn;
        ] );
      ( "router",
        [
          Alcotest.test_case "end to end" `Quick test_router_end_to_end;
          Alcotest.test_case "failover mid-stream" `Quick
            test_router_failover_mid_stream;
        ] );
    ]
