(* Tests for the Section 6 analysis: the buffer-size equations against
   the paper's published numbers, algebraic relationships between the
   equations, the Figure 3 curve, and the frame catalogue against the
   executable codec. *)

let approx ?(eps = 1e-9) = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* The paper's worked examples. *)

let test_eq5_commodity_delta () =
  approx "Delta = 2 * 100ppm" 0.0002
    Analysis.Frames_catalog.commodity_oscillator_delta;
  approx "drift bound agrees" 0.0002
    (Ttp.Clocksync.drift_bound ~ppm_a:100 ~ppm_b:100)

let test_eq6_f_max_115000 () =
  approx "f_max = (28-1-4)/0.0002" 115_000.0
    (Analysis.Buffer.f_max_limit ~f_min:28 ~le:4 ~delta:0.0002)

let test_eq8_minimal_protocol () =
  approx ~eps:1e-6 "Delta = 23/76" 0.302631578947
    (Analysis.Buffer.delta_limit ~f_min:28 ~le:4 ~f_max:76)

let test_eq9_max_frames () =
  approx ~eps:1e-6 "Delta = 23/2076" 0.011079
    (Analysis.Buffer.delta_limit ~f_min:28 ~le:4 ~f_max:2076)

let test_worked_examples_registry () =
  match Analysis.Buffer.worked_examples () with
  | [ e6; e8; e9 ] ->
      approx "e6" 115_000.0 e6.Analysis.Buffer.result;
      approx ~eps:1e-4 "e8" 0.3026 e8.Analysis.Buffer.result;
      approx ~eps:1e-4 "e9" 0.0111 e9.Analysis.Buffer.result
  | _ -> Alcotest.fail "expected three worked examples"

(* ------------------------------------------------------------------ *)
(* Algebraic relationships between the equations. *)

let prop_eq4_eq7_inverses =
  QCheck.Test.make ~name:"f_max_limit and delta_limit are inverses" ~count:200
    QCheck.(pair (int_range 10 100) (int_range 101 4000))
    (fun (f_min, f_max) ->
      let le = 4 in
      let delta = Analysis.Buffer.delta_limit ~f_min ~le ~f_max in
      delta <= 0.0
      || Float.abs (Analysis.Buffer.f_max_limit ~f_min ~le ~delta -. float_of_int f_max)
         < 1e-6 *. float_of_int f_max)

let prop_feasible_iff_buffers_fit =
  QCheck.Test.make ~name:"feasible <=> B_min <= B_max" ~count:200
    QCheck.(
      quad (int_range 10 100) (int_range 10 4000)
        (QCheck.float_range 1.0 10.0) (QCheck.float_range 1.0 10.0))
    (fun (f_min, f_max_raw, a, b) ->
      let f_max = max f_min f_max_raw in
      let rho_max = Float.max a b and rho_min = Float.min a b in
      let le = 4 in
      let delta = Analysis.Buffer.delta ~rho_max ~rho_min in
      let lhs = Analysis.Buffer.feasible ~f_min ~f_max ~le ~rho_max ~rho_min in
      let rhs =
        Analysis.Buffer.b_min ~le ~delta ~f_max
        <= float_of_int (Analysis.Buffer.b_max ~f_min)
      in
      lhs = rhs)

let prop_eq10_matches_feasibility =
  QCheck.Test.make
    ~name:"clock_ratio_limit is the feasibility boundary of eq (10)"
    ~count:200
    QCheck.(pair (int_range 10 100) (int_range 10 4000))
    (fun (f_min, f_max_raw) ->
      let f_max = max f_min f_max_raw in
      let le = 4 in
      match Analysis.Buffer.clock_ratio_limit ~f_min ~le ~f_max with
      | None -> true
      | Some limit ->
          (* Slightly inside the limit is feasible; slightly outside is
             not. *)
          let inside = limit *. 0.999 and outside = limit *. 1.001 in
          Analysis.Buffer.feasible ~f_min ~f_max ~le ~rho_max:inside
            ~rho_min:1.0
          && ((not
                 (Analysis.Buffer.feasible ~f_min ~f_max ~le ~rho_max:outside
                    ~rho_min:1.0))
             || limit > 1e6 (* numerically degenerate, skip *)))

let prop_b_min_monotone =
  QCheck.Test.make ~name:"B_min monotone in Delta and f_max" ~count:200
    QCheck.(
      quad (QCheck.float_range 0.0 0.5) (QCheck.float_range 0.0 0.5)
        (int_range 10 2000) (int_range 10 2000))
    (fun (d1, d2, f1, f2) ->
      let le = 4 in
      let d_lo = Float.min d1 d2 and d_hi = Float.max d1 d2 in
      let f_lo = min f1 f2 and f_hi = max f1 f2 in
      Analysis.Buffer.b_min ~le ~delta:d_lo ~f_max:f_lo
      <= Analysis.Buffer.b_min ~le ~delta:d_hi ~f_max:f_lo +. 1e-9
      && Analysis.Buffer.b_min ~le ~delta:d_lo ~f_max:f_lo
         <= Analysis.Buffer.b_min ~le ~delta:d_lo ~f_max:f_hi +. 1e-9)

let test_delta_validation () =
  Alcotest.check_raises "rho_max < rho_min"
    (Invalid_argument "Buffer.delta: rho_max < rho_min") (fun () ->
      ignore (Analysis.Buffer.delta ~rho_max:1.0 ~rho_min:2.0))

(* ------------------------------------------------------------------ *)
(* The feasibility envelope at its boundary — the synthesis pre-filter
   (lib/synthesis) rejects on [feasible], so its edges matter. *)

(* With rho_min = 1, the spread that produces a given delta:
   delta = (rho_max - rho_min) / rho_max  =>  rho_max = 1/(1 - delta). *)
let rho_of_delta d = 1.0 /. (1.0 -. d)

let test_feasible_boundary_equality () =
  (* delta_limit (eq 7) is the equality case B_min = B_max of
     equations (1) and (3); cross-checked at the two worked-example
     frame ranges (eq 8: 30.26 % at f_max 76, eq 9: 1.11 % at
     f_max 2076). Just inside the limit is feasible, just outside is
     not. *)
  List.iter
    (fun (f_min, f_max) ->
      let le = 4 in
      let d = Analysis.Buffer.delta_limit ~f_min ~le ~f_max in
      approx ~eps:1e-6 "B_min = B_max at delta_limit"
        (float_of_int (Analysis.Buffer.b_max ~f_min))
        (Analysis.Buffer.b_min ~le ~delta:d ~f_max);
      Alcotest.(check bool) "just inside is feasible" true
        (Analysis.Buffer.feasible ~f_min ~f_max ~le
           ~rho_max:(rho_of_delta (d *. 0.999))
           ~rho_min:1.0);
      Alcotest.(check bool) "just outside is infeasible" false
        (Analysis.Buffer.feasible ~f_min ~f_max ~le
           ~rho_max:(rho_of_delta (d *. 1.001))
           ~rho_min:1.0))
    [ (28, 76); (28, 2076) ]

let test_feasible_boundary_f_max () =
  (* The third worked example (eq 6): at the commodity delta the
     longest transmittable frame is 115,000 bits — frames just under
     are feasible, just over are not. *)
  let le = 4 and f_min = 28 and delta = 0.0002 in
  let f_max = Analysis.Buffer.f_max_limit ~f_min ~le ~delta in
  approx "eq 6" 115_000.0 f_max;
  let rho_max = rho_of_delta delta in
  Alcotest.(check bool) "just under 115000 is feasible" true
    (Analysis.Buffer.feasible ~f_min
       ~f_max:(int_of_float f_max - 1)
       ~le ~rho_max ~rho_min:1.0);
  Alcotest.(check bool) "just over 115000 is infeasible" false
    (Analysis.Buffer.feasible ~f_min
       ~f_max:(int_of_float f_max + 1)
       ~le ~rho_max ~rho_min:1.0)

let test_feasible_delta_zero () =
  (* Perfect clocks: equation (4) degenerates to infinity — any frame
     length transmits — and feasibility reduces to le <= f_min - 1. *)
  Alcotest.(check bool) "f_max_limit infinite at delta 0" true
    (Analysis.Buffer.f_max_limit ~f_min:28 ~le:4 ~delta:0.0 = infinity);
  Alcotest.(check bool) "any f_max feasible" true
    (Analysis.Buffer.feasible ~f_min:28 ~f_max:10_000_000 ~le:4 ~rho_max:1.0
       ~rho_min:1.0);
  Alcotest.(check bool) "le past B_max still infeasible" false
    (Analysis.Buffer.feasible ~f_min:5 ~f_max:10 ~le:10 ~rho_max:1.0
       ~rho_min:1.0)

let prop_feasible_monotone =
  (* Feasibility is monotone along each design axis: growing the
     shortest frame can only help (B_max grows), growing the longest
     frame or the encoding overhead can only hurt (B_min grows). *)
  QCheck.Test.make
    ~name:"feasible monotone: up in f_min, down in f_max and le" ~count:300
    QCheck.(
      quad
        (pair (int_range 10 200) (int_range 10 200))
        (pair (int_range 10 4000) (int_range 10 4000))
        (pair (int_range 0 40) (int_range 0 40))
        (QCheck.float_range 1.0 2.0))
    (fun ((fm1, fm2), (fx1, fx2), (le1, le2), rho_max) ->
      let feas ~f_min ~f_max ~le =
        Analysis.Buffer.feasible ~f_min ~f_max ~le ~rho_max ~rho_min:1.0
      in
      let imp a b = (not a) || b in
      let f_min_lo = min fm1 fm2 and f_min_hi = max fm1 fm2 in
      let f_max_lo = min fx1 fx2 and f_max_hi = max fx1 fx2 in
      let le_lo = min le1 le2 and le_hi = max le1 le2 in
      imp
        (feas ~f_min:f_min_lo ~f_max:f_max_lo ~le:le_lo)
        (feas ~f_min:f_min_hi ~f_max:f_max_lo ~le:le_lo)
      && imp
           (feas ~f_min:f_min_lo ~f_max:f_max_hi ~le:le_lo)
           (feas ~f_min:f_min_lo ~f_max:f_max_lo ~le:le_lo)
      && imp
           (feas ~f_min:f_min_lo ~f_max:f_max_lo ~le:le_hi)
           (feas ~f_min:f_min_lo ~f_max:f_max_lo ~le:le_lo))

(* ------------------------------------------------------------------ *)
(* Figure 3 *)

let test_figure3_highlighted_point () =
  match Analysis.Figure3.highlighted_point () with
  | Some r -> approx ~eps:1e-9 "128/5" 25.6 r
  | None -> Alcotest.fail "highlighted point should be feasible"

let test_figure3_series_shape () =
  List.iter
    (fun (s : Analysis.Figure3.series) ->
      let ratios =
        List.filter_map (fun p -> p.Analysis.Figure3.ratio) s.Analysis.Figure3.points
      in
      Alcotest.(check bool)
        (Printf.sprintf "f_min=%d nonempty" s.Analysis.Figure3.f_min)
        true (ratios <> []);
      (* Decreasing toward the asymptote at 1. *)
      let rec decreasing = function
        | a :: (b :: _ as rest) -> a +. 1e-9 >= b && decreasing rest
        | _ -> true
      in
      Alcotest.(check bool) "monotone decreasing" true (decreasing ratios);
      Alcotest.(check bool) "above the asymptote" true
        (List.for_all (fun r -> r >= 1.0) ratios))
    (Analysis.Figure3.default_families ())

let test_figure3_infeasible_region () =
  (* If f_min exceeds f_max + 1 + le the denominator of eq (10) is
     non-positive: no clock spread works at all. *)
  Alcotest.(check bool) "infeasible denominator" true
    (Analysis.Buffer.clock_ratio_limit ~f_min:200 ~le:4 ~f_max:100 = None)

(* ------------------------------------------------------------------ *)
(* Frame catalogue vs codec *)

let test_catalog_matches_codec () =
  let sizes = Analysis.Frames_catalog.codec_sizes () in
  Alcotest.(check (option int)) "N" (Some 28) (List.assoc_opt "N" sizes);
  Alcotest.(check (option int)) "I" (Some 76) (List.assoc_opt "I" sizes);
  Alcotest.(check (option int)) "X max" (Some 2076)
    (List.assoc_opt "X-max" sizes);
  (* The documented discrepancy: the paper quotes 40 bits but its field
     list encodes to 50. *)
  Alcotest.(check (option int)) "cold-start field list" (Some 50)
    (List.assoc_opt "cold-start" sizes);
  Alcotest.(check int) "paper constant kept at 40" 40
    Analysis.Frames_catalog.min_cold_start_bits

(* ------------------------------------------------------------------ *)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_eq4_eq7_inverses;
      prop_feasible_iff_buffers_fit;
      prop_eq10_matches_feasibility;
      prop_b_min_monotone;
      prop_feasible_monotone;
    ]

let () =
  Alcotest.run "analysis"
    [
      ( "worked examples",
        [
          Alcotest.test_case "eq 5: commodity Delta" `Quick test_eq5_commodity_delta;
          Alcotest.test_case "eq 6: f_max = 115000" `Quick test_eq6_f_max_115000;
          Alcotest.test_case "eq 8: 30.26%" `Quick test_eq8_minimal_protocol;
          Alcotest.test_case "eq 9: 1.11%" `Quick test_eq9_max_frames;
          Alcotest.test_case "registry" `Quick test_worked_examples_registry;
          Alcotest.test_case "delta validation" `Quick test_delta_validation;
        ] );
      ( "envelope boundary",
        [
          Alcotest.test_case "B_min = B_max at delta_limit" `Quick
            test_feasible_boundary_equality;
          Alcotest.test_case "f_max_limit boundary (eq 6)" `Quick
            test_feasible_boundary_f_max;
          Alcotest.test_case "delta = 0 degenerate case" `Quick
            test_feasible_delta_zero;
        ] );
      ( "figure 3",
        [
          Alcotest.test_case "highlighted point 25.6" `Quick
            test_figure3_highlighted_point;
          Alcotest.test_case "series shape" `Quick test_figure3_series_shape;
          Alcotest.test_case "infeasible region" `Quick
            test_figure3_infeasible_region;
        ] );
      ( "frame catalogue",
        [ Alcotest.test_case "codec agreement" `Quick test_catalog_matches_codec ] );
      ("properties", qtests);
    ]
