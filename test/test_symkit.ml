(* Tests for the symbolic model-checking kernel: expression evaluation,
   BDD encoding vs concrete evaluation, and the three engines (BDD
   reachability, SAT BMC, explicit BFS) cross-checked on small models
   with known answers. *)

open Symkit

let v_int n = Expr.Int n
let v_sym s = Expr.Sym s

(* --- A 3-bit counter that wraps: bad = (c = 5) reachable in 5 steps. *)
let counter_model =
  let open Expr in
  let open Expr.Syntax in
  Model.make ~name:"counter"
    ~vars:[ ("c", Model.Range (0, 7)) ]
    ~init:[ cur "c" == int 0 ]
    ~trans:[ nxt "c" == ite (cur "c" == int 7) (int 0) (cur "c" + int 1) ]

(* --- A counter that saturates at 3: bad = (c = 5) unreachable. *)
let saturating_model =
  let open Expr in
  let open Expr.Syntax in
  Model.make ~name:"saturating"
    ~vars:[ ("c", Model.Range (0, 7)) ]
    ~init:[ cur "c" == int 0 ]
    ~trans:
      [ nxt "c" == ite (cur "c" < int 3) (cur "c" + int 1) (cur "c") ]

(* --- Two-process mutual exclusion with a shared turn variable
   (Peterson-like, simplified to a strict alternation token): the bad
   state "both critical" is unreachable. *)
let mutex_model =
  let open Expr in
  let open Expr.Syntax in
  let proc p other =
    let st = p ^ "_st" in
    [
      (* idle -> trying (nondeterministic), trying -> critical if token,
         critical -> idle passing the token. *)
      cur st == sym "idle"
      ==> member (nxt st) [ v_sym "idle"; v_sym "trying" ];
      cur st == sym "trying"
      ==> ite
            (cur "turn" == sym p)
            (nxt st == sym "critical")
            (nxt st == sym "trying");
      cur st == sym "critical" ==> (nxt st == sym "idle");
      (* Token passes when leaving the critical section. *)
      cur st == sym "critical" ==> (nxt "turn" == sym other);
      ((cur st != sym "critical") && (cur (other ^ "_st") != sym "critical"))
      ==> (nxt "turn" == cur "turn");
    ]
  in
  Model.make ~name:"mutex"
    ~vars:
      [
        ("p_st", Model.Enum [ "idle"; "trying"; "critical" ]);
        ("q_st", Model.Enum [ "idle"; "trying"; "critical" ]);
        ("turn", Model.Enum [ "p"; "q" ]);
      ]
    ~init:
      [ cur "p_st" == sym "idle"; cur "q_st" == sym "idle";
        cur "turn" == sym "p" ]
    ~trans:(proc "p" "q" @ proc "q" "p")

let both_critical =
  let open Expr in
  let open Expr.Syntax in
  (cur "p_st" == sym "critical") && (cur "q_st" == sym "critical")

(* A reachable condition in the mutex model, to exercise counterexample
   extraction on an interesting model. *)
let q_critical =
  let open Expr in
  let open Expr.Syntax in
  cur "q_st" == sym "critical"

let c_is n =
  let open Expr in
  let open Expr.Syntax in
  cur "c" == int n

(* ------------------------------------------------------------------ *)

let check_reach model bad =
  let enc = Enc.create (Bdd.create_manager ()) model in
  Reach.check enc ~bad

let check_bmc ?(max_depth = 20) model bad =
  let enc = Enc.create (Bdd.create_manager ()) model in
  Bmc.check ~max_depth enc ~bad

let check_explicit ?(max_depth = 50) model bad =
  let all = Model.enumerate_states model in
  Explicit.search ~max_depth
    ~initial:(Model.initial_states_brute model)
    ~next:(Model.successors_brute model all)
    ~bad:(fun s -> Model.eval_pred model bad s)
    ()

let expect_trace name model trace expected_len =
  Alcotest.(check int) (name ^ " length") expected_len (Array.length trace);
  match Trace.validate model trace with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invalid trace: %s" name e

let test_counter_reachable () =
  (match check_reach counter_model (c_is 5) with
  | Reach.Unsafe (trace, _) ->
      expect_trace "reach" counter_model trace 6;
      Alcotest.(check bool) "last state is bad" true
        (Model.eval_pred counter_model (c_is 5) trace.(5))
  | _ -> Alcotest.fail "reach: expected Unsafe");
  (match check_bmc counter_model (c_is 5) with
  | Bmc.Counterexample trace -> expect_trace "bmc" counter_model trace 6
  | _ -> Alcotest.fail "bmc: expected counterexample");
  match check_explicit counter_model (c_is 5) with
  | Explicit.Violation trace ->
      Alcotest.(check int) "explicit length" 6 (List.length trace)
  | _ -> Alcotest.fail "explicit: expected violation"

let test_counter_wraps () =
  (* c = 0 is re-reachable after wrapping; the set of reachable states
     is the full range. *)
  match check_reach counter_model (c_is 7) with
  | Reach.Unsafe (trace, stats) ->
      Alcotest.(check int) "length" 8 (Array.length trace);
      Alcotest.(check bool) "reachable counted" true
        (stats.Reach.reachable_states >= 7.0)
  | _ -> Alcotest.fail "expected Unsafe"

let test_saturating_safe () =
  (match check_reach saturating_model (c_is 5) with
  | Reach.Safe stats ->
      Alcotest.(check bool) "reachable = 4 states" true
        (int_of_float stats.Reach.reachable_states = 4)
  | _ -> Alcotest.fail "reach: expected Safe");
  (match check_bmc ~max_depth:10 saturating_model (c_is 5) with
  | Bmc.No_counterexample (Some d) -> Alcotest.(check int) "depth" 10 d
  | _ -> Alcotest.fail "bmc: expected no counterexample");
  match check_explicit saturating_model (c_is 5) with
  | Explicit.Exhausted { states; _ } ->
      Alcotest.(check int) "explicit states" 4 states
  | _ -> Alcotest.fail "explicit: expected exhausted"

let test_mutex_safe () =
  (match check_reach mutex_model both_critical with
  | Reach.Safe _ -> ()
  | Reach.Unsafe (trace, _) ->
      Alcotest.failf "reach: spurious violation:\n%s"
        (Trace.to_string mutex_model trace)
  | Reach.Depth_exhausted _ -> Alcotest.fail "reach: exhausted");
  (match check_bmc ~max_depth:12 mutex_model both_critical with
  | Bmc.No_counterexample _ -> ()
  | Bmc.Counterexample trace ->
      Alcotest.failf "bmc: spurious violation:\n%s"
        (Trace.to_string mutex_model trace));
  match check_explicit mutex_model both_critical with
  | Explicit.Exhausted _ -> ()
  | _ -> Alcotest.fail "explicit: expected exhausted"

let test_mutex_progress () =
  (* q can reach its critical section; all engines agree on the minimal
     number of steps. *)
  let reach_len =
    match check_reach mutex_model q_critical with
    | Reach.Unsafe (trace, _) ->
        expect_trace "reach" mutex_model trace (Array.length trace);
        Array.length trace
    | _ -> Alcotest.fail "reach: expected Unsafe"
  in
  let bmc_len =
    match check_bmc mutex_model q_critical with
    | Bmc.Counterexample trace ->
        expect_trace "bmc" mutex_model trace (Array.length trace);
        Array.length trace
    | _ -> Alcotest.fail "bmc: expected counterexample"
  in
  let explicit_len =
    match check_explicit mutex_model q_critical with
    | Explicit.Violation trace -> List.length trace
    | _ -> Alcotest.fail "explicit: expected violation"
  in
  Alcotest.(check int) "reach = bmc" reach_len bmc_len;
  Alcotest.(check int) "reach = explicit" reach_len explicit_len

(* ------------------------------------------------------------------ *)
(* Image-computation strategies: the partitioned image/preimage (early
   quantification over Enc.schedule's clusters) must equal the
   monolithic relprod at every iteration of the BFS fixpoint, on every
   seed model — and Reach.check must produce the same verdict, trace
   length and iteration count under every tuning. *)

let seed_models =
  [
    ("counter", counter_model);
    ("saturating", saturating_model);
    ("mutex", mutex_model);
  ]

let test_partitioned_image_agreement () =
  List.iter
    (fun (name, model) ->
      let enc = Enc.create (Bdd.create_manager ()) model in
      let m = Enc.mgr enc in
      let part = Reach.default_tuning in
      let mono = Reach.monolithic_tuning in
      let rec go i reach frontier =
        let img = Reach.image ~tuning:part enc frontier in
        Alcotest.(check bool)
          (Printf.sprintf "%s: image agrees at iteration %d" name i)
          true
          (Bdd.equal img (Reach.image ~tuning:mono enc frontier));
        Alcotest.(check bool)
          (Printf.sprintf "%s: preimage agrees at iteration %d" name i)
          true
          (Bdd.equal
             (Reach.preimage ~tuning:part enc frontier)
             (Reach.preimage ~tuning:mono enc frontier));
        let fresh = Bdd.dand m img (Bdd.dnot m reach) in
        if not (Bdd.is_zero fresh) then
          go (i + 1) (Bdd.dor m reach fresh) fresh
      in
      let init = Enc.init_bdd enc in
      go 0 init init)
    seed_models

let test_tuning_verdict_agreement () =
  (* The low-watermark tuning forces node-GC sweeps inside the fixpoint
     on these small models; verdicts must still be identical. *)
  let tunings =
    [
      ("monolithic", Reach.monolithic_tuning);
      ("partitioned", Reach.default_tuning);
      ("no-restrict", { Reach.default_tuning with Reach.use_restrict = false });
      ("gc-200", { Reach.default_tuning with Reach.gc_watermark = 200 });
    ]
  in
  List.iter
    (fun (mname, model, bad) ->
      let outcome (_, tuning) =
        let enc = Enc.create (Bdd.create_manager ()) model in
        match Reach.check ~tuning enc ~bad with
        | Reach.Safe s -> ("safe", 0, s.Reach.iterations)
        | Reach.Unsafe (t, s) -> ("unsafe", Array.length t, s.Reach.iterations)
        | Reach.Depth_exhausted s -> ("exhausted", 0, s.Reach.iterations)
      in
      let reference = outcome (List.hd tunings) in
      List.iter
        (fun t ->
          let v, len, iters = outcome t in
          let rv, rlen, riters = reference in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s verdict" mname (fst t))
            rv v;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s trace length" mname (fst t))
            rlen len;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s iterations" mname (fst t))
            riters iters)
        (List.tl tunings))
    [
      ("counter", counter_model, c_is 5);
      ("saturating", saturating_model, c_is 5);
      ("mutex-safe", mutex_model, both_critical);
      ("mutex-progress", mutex_model, q_critical);
    ]

let test_strategy_agreement () =
  (* Every fixpoint strategy × image parallelism × dynamic reordering
     must agree on verdict and counterexample length. Iteration counts
     must match among the BFS-shaped strategies (Bfs and Chaining);
     Saturation counts outer sweeps and is excluded from that check.
     The tiny reorder watermark forces sifting to actually fire
     mid-fixpoint on these small models. *)
  let d = Reach.default_tuning in
  let tunings =
    [
      ("bfs", d, true);
      ("chaining", { d with Reach.strategy = Reach.Chaining }, true);
      ("saturation", { d with Reach.strategy = Reach.Saturation }, false);
      ("bfs-par2", { d with Reach.par_domains = 2 }, true);
      ( "chaining-par2",
        { d with Reach.strategy = Reach.Chaining; par_domains = 2 },
        true );
      ( "saturation-par2",
        { d with Reach.strategy = Reach.Saturation; par_domains = 2 },
        false );
      ("bfs-reorder", { d with Reach.reorder_watermark = 500 }, true);
      ( "chaining-reorder",
        { d with Reach.strategy = Reach.Chaining; reorder_watermark = 500 },
        true );
      ( "saturation-reorder",
        { d with Reach.strategy = Reach.Saturation; reorder_watermark = 500 },
        false );
    ]
  in
  List.iter
    (fun (mname, model, bad) ->
      let outcome tuning =
        let enc = Enc.create (Bdd.create_manager ()) model in
        match Reach.check ~tuning enc ~bad with
        | Reach.Safe s -> ("safe", 0, s.Reach.iterations)
        | Reach.Unsafe (t, s) -> ("unsafe", Array.length t, s.Reach.iterations)
        | Reach.Depth_exhausted s -> ("exhausted", 0, s.Reach.iterations)
      in
      let rv, rlen, riters =
        match tunings with
        | (_, t, _) :: _ -> outcome t
        | [] -> assert false
      in
      List.iter
        (fun (tname, t, bfs_shaped) ->
          let v, len, iters = outcome t in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s verdict" mname tname)
            rv v;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s trace length" mname tname)
            rlen len;
          if bfs_shaped then
            Alcotest.(check int)
              (Printf.sprintf "%s/%s iterations" mname tname)
              riters iters)
        (List.tl tunings))
    [
      ("counter", counter_model, c_is 5);
      ("saturating", saturating_model, c_is 5);
      ("mutex-safe", mutex_model, both_critical);
      ("mutex-progress", mutex_model, q_critical);
    ]

let test_reachable_set_cancel_and_obs () =
  (* Immediate cancellation returns the initial states (the trivial
     lower bound) — and the iteration counter lands in the track. *)
  let col = Obs.Collector.create () in
  let t = Obs.Collector.track col "reach" in
  let enc = Enc.create (Bdd.create_manager ()) counter_model in
  let cancelled =
    Reach.reachable_set ~cancel:(fun () -> true) ~obs:t enc
  in
  Alcotest.(check bool) "lower bound = init" true
    (Bdd.equal cancelled (Enc.init_bdd enc));
  Alcotest.(check (option int)) "no iterations recorded" (Some 0)
    (List.assoc_opt "reach.iterations" (Obs.counters t));
  (* A budget of two polls gives a strict lower bound strictly above
     the initial set (the counter model grows every step). *)
  let polls = ref 0 in
  let partial =
    Reach.reachable_set
      ~cancel:(fun () ->
        incr polls;
        !polls > 2)
      enc
  in
  let full = Reach.reachable_set ~obs:t enc in
  let m = Enc.mgr enc in
  let strictly_below a b =
    (not (Bdd.equal a b)) && Bdd.is_zero (Bdd.dand m a (Bdd.dnot m b))
  in
  Alcotest.(check bool) "partial above init" true
    (strictly_below (Enc.init_bdd enc) partial);
  Alcotest.(check bool) "partial below full" true (strictly_below partial full);
  Alcotest.(check (option int)) "full run counted its iterations" (Some 8)
    (List.assoc_opt "reach.iterations" (Obs.counters t))

(* ------------------------------------------------------------------ *)
(* Encoder correctness: symbolic predicate evaluation agrees with the
   concrete evaluator on every state, for randomly generated
   predicates over a small mixed-domain model. *)

let pred_test_model =
  Model.make ~name:"pred-space"
    ~vars:
      [
        ("a", Model.Range (0, 4));
        ("b", Model.Range (1, 3));
        ("e", Model.Enum [ "red"; "green"; "blue" ]);
        ("f", Model.Bool);
      ]
    ~init:[] ~trans:[]

let random_pred_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Expr.int n) (int_range (-1) 5);
        oneofl
          [ Expr.cur "a"; Expr.cur "b"; Expr.sym "red"; Expr.sym "green" ];
        return (Expr.cur "e");
      ]
  in
  let bool_leaf =
    oneof
      [
        return (Expr.cur "f");
        return Expr.tt;
        return Expr.ff;
        map2 (fun a b -> Expr.Eq (a, b)) leaf leaf;
        map2 (fun a b -> Expr.Lt (a, b)) leaf leaf;
        map
          (fun v -> Expr.member (Expr.cur "e") [ v_sym "red"; v ])
          (oneofl [ v_sym "green"; v_sym "blue" ]);
        map2
          (fun x y ->
            Expr.Eq (Expr.Add (Expr.cur "a", Expr.int x),
                     Expr.Add (Expr.cur "b", Expr.int y)))
          (int_range 0 3) (int_range 0 3);
      ]
  in
  sized @@ fix (fun self n ->
      if n <= 0 then bool_leaf
      else
        frequency
          [
            (2, bool_leaf);
            (1, map (fun a -> Expr.Not a) (self (n - 1)));
            (2, map2 (fun a b -> Expr.And (a, b)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun a b -> Expr.Or (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map2 (fun a b -> Expr.Imp (a, b)) (self (n / 2)) (self (n / 2)));
            ( 1,
              map3
                (fun a b c -> Expr.Ite (a, b, c))
                (self (n / 3)) (self (n / 3)) (self (n / 3)) );
          ])

let prop_pred_agrees =
  QCheck.Test.make ~name:"symbolic predicate = concrete evaluation"
    ~count:200
    (QCheck.make ~print:Expr.to_string random_pred_gen)
    (fun e ->
      (* Ill-typed expressions (e.g. comparing a sym with <) may be
         generated; they must fail identically in both evaluators. *)
      let model = pred_test_model in
      let enc = Enc.create (Bdd.create_manager ()) model in
      match Enc.pred enc e with
      | exception Expr.Type_error _ -> true
      | d ->
          List.for_all
            (fun s ->
              let concrete =
                try Some (Model.eval_pred model e s)
                with Expr.Type_error _ -> None
              in
              match concrete with
              | None -> true
              | Some b ->
                  let cube = Enc.state_cube enc s in
                  let inter = Bdd.dand (Enc.mgr enc) cube d in
                  Bdd.is_zero inter <> b)
            (Model.enumerate_states model))

(* The same agreement over state PAIRS, for predicates mentioning
   primed variables (i.e. transition constraints — the encoder path the
   whole model checker stands on). *)
let random_trans_pred_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Expr.int n) (int_range (-1) 5);
        oneofl
          [ Expr.cur "a"; Expr.cur "b"; Expr.nxt "a"; Expr.nxt "b";
            Expr.cur "e"; Expr.nxt "e" ];
      ]
  in
  let bool_leaf =
    oneof
      [
        oneofl [ Expr.cur "f"; Expr.nxt "f" ];
        map2 (fun a b -> Expr.Eq (a, b)) leaf leaf;
        map2 (fun a b -> Expr.Lt (a, b)) leaf leaf;
        map2
          (fun x b ->
            Expr.Eq (Expr.Add (Expr.cur "a", Expr.int x),
                     if b then Expr.nxt "a" else Expr.nxt "b"))
          (int_range 0 3) bool;
      ]
  in
  sized @@ fix (fun self n ->
      if n <= 0 then bool_leaf
      else
        frequency
          [
            (2, bool_leaf);
            (1, map (fun a -> Expr.Not a) (self (n - 1)));
            (2, map2 (fun a b -> Expr.And (a, b)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun a b -> Expr.Or (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map2 (fun a b -> Expr.Iff (a, b)) (self (n / 2)) (self (n / 2)));
          ])

let prop_trans_pred_agrees =
  QCheck.Test.make ~name:"symbolic transition predicate = concrete evaluation"
    ~count:60
    (QCheck.make ~print:Expr.to_string random_trans_pred_gen)
    (fun e ->
      let model = pred_test_model in
      let enc = Enc.create (Bdd.create_manager ()) model in
      match Enc.pred enc e with
      | exception Expr.Type_error _ -> true
      | d ->
          let states = Model.enumerate_states model in
          List.for_all
            (fun s ->
              let cube_s = Enc.state_cube enc s in
              List.for_all
                (fun s' ->
                  let concrete =
                    try Some (Model.eval_trans model e s s')
                    with Expr.Type_error _ -> None
                  in
                  match concrete with
                  | None -> true
                  | Some b ->
                      (* Pair cube: current bits from s, primed bits
                         from s' (via the renaming). *)
                      let cube' =
                        Enc.rename_cur_to_nxt enc (Enc.state_cube enc s')
                      in
                      let pair =
                        Bdd.dand (Enc.mgr enc) cube_s cube'
                      in
                      Bdd.is_zero (Bdd.dand (Enc.mgr enc) pair d) <> b)
                states)
            states)

let prop_state_roundtrip =
  QCheck.Test.make ~name:"state_cube / decode_state roundtrip" ~count:100
    (QCheck.make
       ~print:(fun _ -> "<state>")
       QCheck.Gen.(
         let model = pred_test_model in
         let states = Array.of_list (Model.enumerate_states model) in
         map (fun i -> states.(i)) (int_bound (Array.length states - 1))))
    (fun s ->
      let enc = Enc.create (Bdd.create_manager ()) pred_test_model in
      let s' = Enc.decode_state enc (Enc.state_cube enc s) in
      s = s')

(* ------------------------------------------------------------------ *)
(* Expression evaluator unit tests. *)

let test_eval_basic () =
  let lookup_cur = function
    | "x" -> v_int 3
    | "m" -> v_sym "on"
    | v -> Alcotest.failf "unexpected var %s" v
  in
  let lookup_nxt = function
    | "x" -> v_int 4
    | v -> Alcotest.failf "unexpected primed var %s" v
  in
  let ev e = Expr.eval ~lookup_cur ~lookup_nxt e in
  let open Expr in
  let open Expr.Syntax in
  Alcotest.(check bool) "x + 1 = x'" true
    (ev (cur "x" + int 1 == nxt "x") = Bool true);
  Alcotest.(check bool) "x < 2 is false" true
    (ev (cur "x" < int 2) = Bool false);
  Alcotest.(check bool) "member" true
    (ev (member (cur "m") [ v_sym "off"; v_sym "on" ]) = Bool true);
  Alcotest.(check bool) "ite" true
    (ev (ite (cur "x" == int 3) (sym "yes") (sym "no")) = Sym "yes");
  Alcotest.(check bool) "x - 5 negative" true (ev (cur "x" - int 5) = Int (-2))

let test_eval_type_errors () =
  let lookup_cur = function "x" -> v_int 1 | _ -> v_sym "s" in
  let lookup_nxt _ = v_int 0 in
  let open Expr in
  let open Expr.Syntax in
  Alcotest.check_raises "sym + int" (Expr.Type_error "dummy") (fun () ->
      try ignore (eval ~lookup_cur ~lookup_nxt (cur "y" + int 1)) with
      | Expr.Type_error _ -> raise (Expr.Type_error "dummy"));
  Alcotest.check_raises "int as bool" (Expr.Type_error "dummy") (fun () ->
      try ignore (eval ~lookup_cur ~lookup_nxt (cur "x" && tt)) with
      | Expr.Type_error _ -> raise (Expr.Type_error "dummy"))

let test_model_validation () =
  let open Expr in
  let open Expr.Syntax in
  Alcotest.check_raises "undeclared var"
    (Invalid_argument "Model bad: undeclared variable y in (y = 0)")
    (fun () ->
      ignore
        (Model.make ~name:"bad"
           ~vars:[ ("x", Model.Range (0, 1)) ]
           ~init:[ cur "y" == int 0 ]
           ~trans:[]));
  Alcotest.check_raises "primed in init"
    (Invalid_argument "Model bad2: primed variable in init constraint (x' = 0)")
    (fun () ->
      ignore
        (Model.make ~name:"bad2"
           ~vars:[ ("x", Model.Range (0, 1)) ]
           ~init:[ nxt "x" == int 0 ]
           ~trans:[]))

let test_trace_validate_rejects () =
  let bad_trace = [| [| v_int 3 |]; [| v_int 9 |] |] in
  match Trace.validate counter_model bad_trace with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected invalid trace"

(* ------------------------------------------------------------------ *)
(* K-induction. *)

let test_induction_proves_saturating () =
  let enc = Enc.create (Bdd.create_manager ()) saturating_model in
  match Induction.check ~max_k:10 enc ~bad:(c_is 5) with
  | Induction.Proved k -> Alcotest.(check bool) "small k" true (k <= 6)
  | Induction.Refuted _ -> Alcotest.fail "spurious refutation"
  | Induction.Unknown k -> Alcotest.failf "inconclusive at k=%d" k

let test_induction_refutes_counter () =
  let enc = Enc.create (Bdd.create_manager ()) counter_model in
  match Induction.check ~max_k:10 enc ~bad:(c_is 5) with
  | Induction.Refuted trace ->
      Alcotest.(check int) "minimal trace" 6 (Array.length trace);
      (match Trace.validate counter_model trace with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid trace: %s" e)
  | _ -> Alcotest.fail "expected refutation"

let test_induction_proves_mutex () =
  let enc = Enc.create (Bdd.create_manager ()) mutex_model in
  match Induction.check ~max_k:12 enc ~bad:both_critical with
  | Induction.Proved _ -> ()
  | Induction.Refuted trace ->
      Alcotest.failf "spurious refutation:\n%s"
        (Trace.to_string mutex_model trace)
  | Induction.Unknown k -> Alcotest.failf "inconclusive at k=%d" k

let test_induction_tautology_at_k0 () =
  (* A property true of every valid state is 0-inductive. *)
  let enc = Enc.create (Bdd.create_manager ()) saturating_model in
  let open Expr in
  let open Expr.Syntax in
  match Induction.check ~max_k:3 enc ~bad:(cur "c" > int 7) with
  | Induction.Proved 0 -> ()
  | _ -> Alcotest.fail "expected a proof at k=0"

(* ------------------------------------------------------------------ *)
(* CTL. *)

let ctl_check model f =
  let enc = Enc.create (Bdd.create_manager ()) model in
  (Ctl.check enc f).Ctl.holds

let test_ctl_counter () =
  (* The wrapping counter visits every value from every state. *)
  Alcotest.(check bool) "AG EF c=0" true
    (ctl_check counter_model Ctl.(AG (EF (atom (c_is 0)))));
  Alcotest.(check bool) "EF c=5" true
    (ctl_check counter_model Ctl.(EF (atom (c_is 5))));
  Alcotest.(check bool) "AF c=5" true
    (ctl_check counter_model Ctl.(AF (atom (c_is 5))));
  (* Deterministic: AX agrees with the successor. *)
  Alcotest.(check bool) "AX from init" true
    (let enc = Enc.create (Bdd.create_manager ()) counter_model in
     (Ctl.check enc Ctl.(Imp (atom (c_is 0), AX (atom (c_is 1)))))
       .Ctl.holds)

let test_ctl_saturating () =
  Alcotest.(check bool) "AG c<=3" true
    (ctl_check saturating_model
       Ctl.(AG (atom Expr.(Syntax.( <= ) (cur "c") (int 3)))));
  Alcotest.(check bool) "EF c=5 fails" false
    (ctl_check saturating_model Ctl.(EF (atom (c_is 5))));
  (* The saturated state is a sink: AG (c=3 -> AX c=3). *)
  Alcotest.(check bool) "saturation is absorbing" true
    (ctl_check saturating_model
       Ctl.(AG (Imp (atom (c_is 3), AX (atom (c_is 3))))))

let test_ctl_mutex () =
  let p_critical =
    let open Expr in
    let open Expr.Syntax in
    cur "p_st" == sym "critical"
  in
  Alcotest.(check bool) "AG not both critical" true
    (ctl_check mutex_model Ctl.(AG (Not (atom both_critical))));
  (* Recoverability: from every reachable state, p can still reach its
     critical section. *)
  Alcotest.(check bool) "AG EF p critical" true
    (ctl_check mutex_model Ctl.(AG (EF (atom p_critical))));
  (* But it is not inevitable: p may idle forever. *)
  Alcotest.(check bool) "AF p critical fails" false
    (ctl_check mutex_model Ctl.(AF (atom p_critical)));
  (* E[not-critical U critical]: a path keeps p out until it enters. *)
  Alcotest.(check bool) "EU" true
    (ctl_check mutex_model Ctl.(EU (Not (atom p_critical), atom p_critical)))

let test_ctl_failing_state_is_reachable () =
  let enc = Enc.create (Bdd.create_manager ()) counter_model in
  (* A plain atom: the failing states are exactly the reachable states
     where it is false, so the witness must falsify it. *)
  let v = Ctl.check enc (Ctl.atom (c_is 0)) in
  Alcotest.(check bool) "fails" false v.Ctl.holds;
  (match v.Ctl.failing_state with
  | Some s ->
      Alcotest.(check bool) "witness falsifies the atom" true
        (not (Model.eval_pred counter_model (c_is 0) s))
  | None -> Alcotest.fail "expected a failing state");
  (* AG of the same atom also fails, but there the witness may be any
     reachable state (even c = 0 violates AG through its future). *)
  let v2 = Ctl.check enc Ctl.(AG (atom (c_is 0))) in
  Alcotest.(check bool) "AG fails too" false v2.Ctl.holds;
  Alcotest.(check bool) "AG has a witness" true (v2.Ctl.failing_state <> None)

(* ------------------------------------------------------------------ *)
(* SMV export. *)

let test_smv_export_shape () =
  let smv = Smv_export.to_string ~invarspec:both_critical mutex_model in
  let has needle =
    let n = String.length needle and m = String.length smv in
    let rec go i = i + n <= m && (String.sub smv i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "module header" true (has "MODULE main");
  Alcotest.(check bool) "variables declared" true
    (has "p_st : {idle, trying, critical};");
  Alcotest.(check bool) "primed variables use next()" true (has "next(");
  Alcotest.(check bool) "property emitted" true (has "INVARSPEC");
  Alcotest.(check bool) "init sections" true (has "INIT");
  Alcotest.(check bool) "trans sections" true (has "TRANS")

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pred_agrees; prop_trans_pred_agrees; prop_state_roundtrip ]

let suite =
  [
    Alcotest.test_case "eval basics" `Quick test_eval_basic;
    Alcotest.test_case "eval type errors" `Quick test_eval_type_errors;
    Alcotest.test_case "model validation" `Quick test_model_validation;
    Alcotest.test_case "counter reachable (3 engines)" `Quick
      test_counter_reachable;
    Alcotest.test_case "counter wraps" `Quick test_counter_wraps;
    Alcotest.test_case "saturating safe (3 engines)" `Quick
      test_saturating_safe;
    Alcotest.test_case "mutex safe (3 engines)" `Quick test_mutex_safe;
    Alcotest.test_case "mutex progress agreement" `Quick test_mutex_progress;
    Alcotest.test_case "trace validation rejects" `Quick
      test_trace_validate_rejects;
    Alcotest.test_case "partitioned image = monolithic (per iteration)" `Quick
      test_partitioned_image_agreement;
    Alcotest.test_case "tuning verdict agreement" `Quick
      test_tuning_verdict_agreement;
    Alcotest.test_case "strategy/par/reorder agreement" `Quick
      test_strategy_agreement;
    Alcotest.test_case "reachable_set cancel + obs" `Quick
      test_reachable_set_cancel_and_obs;
    Alcotest.test_case "k-induction proves saturating" `Quick
      test_induction_proves_saturating;
    Alcotest.test_case "k-induction refutes counter" `Quick
      test_induction_refutes_counter;
    Alcotest.test_case "k-induction proves mutex" `Quick
      test_induction_proves_mutex;
    Alcotest.test_case "k-induction tautology at k=0" `Quick
      test_induction_tautology_at_k0;
    Alcotest.test_case "ctl: counter" `Quick test_ctl_counter;
    Alcotest.test_case "ctl: saturating" `Quick test_ctl_saturating;
    Alcotest.test_case "ctl: mutex" `Quick test_ctl_mutex;
    Alcotest.test_case "ctl: failing state" `Quick
      test_ctl_failing_state_is_reachable;
    Alcotest.test_case "smv export shape" `Quick test_smv_export_shape;
  ]
  @ qtests

let () = Alcotest.run "symkit" [ ("symkit", suite) ]
