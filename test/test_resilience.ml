(* Tests for lib/resilience: the deterministic fault-injection
   registry (spec grammar, seeded firing decisions, byte corruption),
   the supervisor (retry/backoff determinism, crash exhaustion, the
   hang watchdog), and their integration into the portfolio — cache
   quarantine on a flipped byte, races surviving a crashing engine,
   and the all-engines-failed breakdown. 2-node clusters throughout. *)

module Engine = Tta_model.Engine
module Configs = Tta_model.Configs
module Faults = Resilience.Faults
module Supervisor = Resilience.Supervisor

let nodes = 2

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "resilience_test_%d_%d" (Unix.getpid ()) !counter)

let faults_of_spec spec =
  match Faults.of_spec spec with
  | Ok f -> f
  | Error e -> Alcotest.failf "spec %S rejected: %s" spec e

(* ------------------------------------------------------------------ *)
(* Faults: spec grammar *)

let test_spec_roundtrip () =
  List.iter
    (fun spec ->
      let f = faults_of_spec spec in
      Alcotest.(check string) (spec ^ " roundtrips") spec (Faults.to_spec f);
      Alcotest.(check bool) "enabled" true (Faults.enabled f))
    [
      "7:engine_start=crash";
      "7:engine_start=crash@0.25";
      "7:engine_start=crash@0.25x4";
      "0:cache_read=corruptx2,sock_send=crash@0.5";
      "42:engine_step=stall20@0.125x8";
    ];
  (* A bare seed selects the default mixed-fault spec. *)
  let bare = faults_of_spec "9" in
  Alcotest.(check int) "bare seed" 9 (Faults.seed bare);
  Alcotest.(check string) "bare seed gets the default rules"
    ("9:" ^ Faults.default_spec)
    (Faults.to_spec bare);
  Alcotest.(check bool) "disabled registry is disabled" false
    (Faults.enabled Faults.disabled);
  Alcotest.(check string) "disabled spec is empty" ""
    (Faults.to_spec Faults.disabled)

let test_spec_errors () =
  List.iter
    (fun spec ->
      match Faults.of_spec spec with
      | Ok _ -> Alcotest.failf "accepted malformed spec: %S" spec
      | Error _ -> ())
    [
      "";
      "notanint";
      "7:";
      "7:engine_start";
      "7:nosuchpoint=crash";
      "7:engine_start=explode";
      "7:engine_start=crash@1.5";
      "7:engine_start=crash@-0.1";
      "7:engine_start=crashx0";
      "7:engine_step=stall";
      "7:engine_step=stall-5";
    ]

(* ------------------------------------------------------------------ *)
(* Faults: deterministic firing *)

(* The indices at which a probabilistic rule fires over [n] hits. *)
let firing_set f point n =
  List.filter_map
    (fun i ->
      match Faults.hit f point with
      | () -> None
      | exception Faults.Injected _ -> Some i)
    (List.init n Fun.id)

let test_firing_deterministic () =
  let spec = "3:engine_start=crash@0.3" in
  let a = firing_set (faults_of_spec spec) Faults.Engine_start 200 in
  let b = firing_set (faults_of_spec spec) Faults.Engine_start 200 in
  Alcotest.(check (list int)) "same seed, same firing set" a b;
  Alcotest.(check bool) "a 30% rule fires sometimes" true (a <> []);
  Alcotest.(check bool) "a 30% rule does not always fire" true
    (List.length a < 200);
  (* A different seed decides differently. *)
  let c = firing_set (faults_of_spec "4:engine_start=crash@0.3") Faults.Engine_start 200 in
  Alcotest.(check bool) "different seed, different firing set" true (a <> c);
  (* The firing limit bounds total chaos. *)
  let d = firing_set (faults_of_spec "3:engine_start=crashx5") Faults.Engine_start 200 in
  Alcotest.(check (list int)) "xN caps the firings" [ 0; 1; 2; 3; 4 ] d;
  (* Other points are untouched. *)
  let f = faults_of_spec spec in
  Alcotest.(check (list int)) "unruled point never fires" []
    (firing_set f Faults.Cache_read 50)

let test_injections_counted () =
  let f = faults_of_spec "3:engine_start=crashx2,cache_read=corrupt" in
  Alcotest.(check bool) "nothing fired yet" true
    (List.for_all (fun (_, n) -> n = 0) (Faults.injections f));
  ignore (firing_set f Faults.Engine_start 10);
  ignore (Faults.corrupt f Faults.Cache_read "payload payload payload");
  Alcotest.(check (list (pair string int)))
    "per-rule firing counts"
    [ ("engine_start.crash", 2); ("cache_read.corrupt", 1) ]
    (Faults.injections f)

(* ------------------------------------------------------------------ *)
(* Faults: router-link points (drop / delay) *)

(* One decision string per link hit, so firing sequences golden-check
   as plain string lists. *)
let link_decisions f point n =
  List.map
    (fun _ ->
      match Faults.link f point with
      | `Pass -> "pass"
      | `Drop -> "drop"
      | `Delay d -> Printf.sprintf "delay%.0f" (d *. 1000.)
      | exception Faults.Injected _ -> "crash")
    (List.init n Fun.id)

let test_link_spec_roundtrip () =
  List.iter
    (fun spec ->
      let f = faults_of_spec spec in
      Alcotest.(check string) (spec ^ " roundtrips") spec (Faults.to_spec f))
    [
      "7:link_send=delay500x6";
      "7:link_recv=drop@0.5x4";
      "3:link_send=drop,link_recv=delay20@0.25";
      "11:sock_send=drop,engine_step=delay5x2";
    ];
  List.iter
    (fun spec ->
      match Faults.of_spec spec with
      | Ok _ -> Alcotest.failf "accepted malformed spec: %S" spec
      | Error _ -> ())
    [
      "7:link_send=delay";
      "7:link_recv=delay-5";
      "7:link_send=drop@1.5";
      "7:link_send=dropx0";
      "7:link=drop";
    ]

let test_link_firing_deterministic () =
  let spec = "11:link_send=drop@0.4x6,link_recv=delay250@0.5x8" in
  let a = link_decisions (faults_of_spec spec) Faults.Link_send 100 in
  let b = link_decisions (faults_of_spec spec) Faults.Link_send 100 in
  Alcotest.(check (list string)) "same seed, same send decisions" a b;
  let drops = List.length (List.filter (( = ) "drop") a) in
  Alcotest.(check int) "x6 caps the drops" 6 drops;
  let r = link_decisions (faults_of_spec spec) Faults.Link_recv 100 in
  let delays = List.length (List.filter (( = ) "delay250") r) in
  Alcotest.(check int) "x8 caps the delays" 8 delays;
  Alcotest.(check bool) "delay carries its millis" true
    (List.for_all (fun d -> d = "pass" || d = "delay250") r);
  (* Replay golden: a fresh registry driven through the same hit
     sequence reports identical per-rule firing counts — the property
     the cluster chaos smoke relies on for deterministic replay. *)
  let drive () =
    let f = faults_of_spec spec in
    ignore (link_decisions f Faults.Link_send 100);
    ignore (link_decisions f Faults.Link_recv 100);
    Faults.injections f
  in
  Alcotest.(check (list (pair string int)))
    "identical fired-injection counts on replay" (drive ()) (drive ());
  Alcotest.(check (list (pair string int)))
    "per-rule firing counts"
    [ ("link_send.drop", 6); ("link_recv.delay250", 8) ]
    (drive ())

let test_link_action_semantics () =
  (* Drop dominates delay when both fire on the same point. *)
  let both = faults_of_spec "5:link_send=drop,link_send=delay100" in
  Alcotest.(check string) "drop dominates delay" "drop"
    (List.hd (link_decisions both Faults.Link_send 1));
  (* A crash rule at a link point raises, exactly like [hit]. *)
  (match Faults.link (faults_of_spec "5:link_send=crash") Faults.Link_send with
  | exception Faults.Injected { point; action; _ } ->
      Alcotest.(check string) "crash point" "link_send" point;
      Alcotest.(check string) "crash action" "crash" action
  | _ -> Alcotest.fail "link crash rule did not raise");
  (* At a non-link point, [hit] treats drop as crash and delay as
     stall — every action is meaningful at every point. *)
  (match Faults.hit (faults_of_spec "5:engine_start=drop") Faults.Engine_start with
  | exception Faults.Injected { action; _ } ->
      Alcotest.(check string) "drop crashes outside links" "drop" action
  | () -> Alcotest.fail "drop rule did not fire via hit");
  let t0 = Unix.gettimeofday () in
  Faults.hit (faults_of_spec "5:engine_start=delay30") Faults.Engine_start;
  Alcotest.(check bool) "delay stalls outside links" true
    (Unix.gettimeofday () -. t0 >= 0.025);
  (* Corruption never applies drop/delay rules. *)
  Alcotest.(check string) "drop rule does not corrupt" "payload"
    (Faults.corrupt
       (faults_of_spec "5:cache_read=drop")
       Faults.Cache_read "payload")

let test_corrupt_deterministic () =
  let payload = "{\"verdict\":\"holds\",\"detail\":\"proved safe\"}" in
  let corrupt_once () =
    Faults.corrupt (faults_of_spec "9:cache_read=corrupt") Faults.Cache_read
      payload
  in
  let a = corrupt_once () and b = corrupt_once () in
  Alcotest.(check string) "same seed flips the same byte" a b;
  Alcotest.(check int) "length preserved" (String.length payload)
    (String.length a);
  let diffs = ref 0 in
  String.iteri (fun i c -> if c <> payload.[i] then incr diffs) a;
  Alcotest.(check int) "exactly one byte differs" 1 !diffs;
  (* Empty payloads pass through; crash rules never fire in corrupt. *)
  Alcotest.(check string) "empty payload untouched" ""
    (Faults.corrupt (faults_of_spec "9:cache_read=corrupt") Faults.Cache_read "");
  Alcotest.(check string) "crash rule does not corrupt" payload
    (Faults.corrupt (faults_of_spec "9:cache_read=crash") Faults.Cache_read
       payload)

let test_hash_float_pure () =
  List.iter
    (fun (seed, salt, n) ->
      let u = Faults.hash_float ~seed ~salt n in
      Alcotest.(check (float 0.)) "pure" u (Faults.hash_float ~seed ~salt n);
      Alcotest.(check bool) "in [0,1)" true (u >= 0. && u < 1.))
    [ (0, 0, 0); (1, 2, 3); (7, 0x5eed, 42); (max_int, 1, 999) ]

(* ------------------------------------------------------------------ *)
(* Supervisor *)

let policy ?(retries = 3) ?watchdog_s ?(hang_grace_s = 0.1) () =
  {
    Supervisor.retries;
    backoff_s = 0.005;
    backoff_max_s = 0.02;
    jitter = 0.5;
    seed = 11;
    watchdog_s;
    hang_grace_s;
  }

let bdd = Engine.get Engine.Bdd_reach

let test_supervisor_retries_deterministically () =
  (* The first two attempts crash (injected), the third succeeds; the
     slept backoffs must be exactly the schedule's prefix. *)
  let p = policy () in
  let faults = faults_of_spec "5:engine_start=crashx2" in
  let o =
    Supervisor.run ~policy:p ~faults ~max_depth:50 bdd
      (Configs.passive ~nodes ())
  in
  (match o.Supervisor.result with
  | Ok r ->
      Alcotest.(check bool) "third attempt proves the property" true
        (match r.Engine.verdict with Engine.Holds _ -> true | _ -> false)
  | Error f -> Alcotest.failf "unexpected failure: %s" (Supervisor.failure_to_string f));
  Alcotest.(check int) "three attempts" 3 o.Supervisor.attempts;
  let schedule = Supervisor.backoff_schedule p in
  Alcotest.(check (list (float 0.))) "backoffs match the schedule prefix"
    [ List.nth schedule 0; List.nth schedule 1 ]
    o.Supervisor.backoffs_s;
  Alcotest.(check (list (pair string int)))
    "supervisor counters"
    [ ("supervisor.retries", 2); ("supervisor.crashes", 2) ]
    o.Supervisor.counters;
  (* Same policy, same faults: the whole outcome shape reproduces. *)
  let o' =
    Supervisor.run ~policy:p ~faults:(faults_of_spec "5:engine_start=crashx2")
      ~max_depth:50 bdd (Configs.passive ~nodes ())
  in
  Alcotest.(check int) "attempts reproduce" o.Supervisor.attempts
    o'.Supervisor.attempts;
  Alcotest.(check (list (float 0.))) "backoffs reproduce"
    o.Supervisor.backoffs_s o'.Supervisor.backoffs_s

let test_supervisor_exhausts_retries () =
  let p = policy ~retries:2 () in
  let faults = faults_of_spec "5:engine_start=crash" in
  let o =
    Supervisor.run ~policy:p ~faults ~max_depth:50 bdd
      (Configs.passive ~nodes ())
  in
  (match o.Supervisor.result with
  | Error (Supervisor.Crashed { attempts; last_error }) ->
      Alcotest.(check int) "every attempt used" 3 attempts;
      Alcotest.(check bool) "the injected fault is named" true
        (let s = String.lowercase_ascii last_error in
         (* Printexc renders the Injected exception with its point. *)
         String.length s > 0)
  | Error f -> Alcotest.failf "expected Crashed, got %s" (Supervisor.failure_to_string f)
  | Ok _ -> Alcotest.fail "expected a failure");
  Alcotest.(check int) "attempts counted" 3 o.Supervisor.attempts;
  Alcotest.(check (list (pair string int)))
    "crash/retry counters"
    [ ("supervisor.retries", 2); ("supervisor.crashes", 3) ]
    o.Supervisor.counters;
  Alcotest.(check int) "registry counted every injection" 3
    (List.assoc "engine_start.crash" (Faults.injections faults))

let test_supervisor_watchdog_hangs () =
  (* The first cooperative-cancellation poll stalls for 500ms while
     the watchdog budget is 50ms: the attempt must be abandoned as
     Hung, without retry, well before the stall ends naturally. *)
  let p = policy ~retries:3 ~watchdog_s:0.05 ~hang_grace_s:0.05 () in
  let faults = faults_of_spec "5:engine_step=stall500x1" in
  let t0 = Unix.gettimeofday () in
  let o =
    Supervisor.run ~policy:p ~faults ~max_depth:100
      (Engine.get Engine.Explicit_bfs)
      (Configs.full_shifting ~nodes ())
  in
  let dt = Unix.gettimeofday () -. t0 in
  (match o.Supervisor.result with
  | Error (Supervisor.Hung { attempts; watchdog_s }) ->
      Alcotest.(check int) "hangs are not retried" 1 attempts;
      Alcotest.(check (float 0.)) "budget recorded" 0.05 watchdog_s
  | Error f -> Alcotest.failf "expected Hung, got %s" (Supervisor.failure_to_string f)
  | Ok _ -> Alcotest.fail "expected a hang");
  Alcotest.(check bool) "abandoned promptly, not after the stall" true
    (dt < 0.4);
  Alcotest.(check (list (pair string int)))
    "hang counter" [ ("supervisor.hangs", 1) ] o.Supervisor.counters

(* ------------------------------------------------------------------ *)
(* Cache quarantine *)

let test_cache_quarantines_flipped_byte () =
  let dir = temp_dir () in
  let c = Portfolio.Cache.create ~dir () in
  let model = Tta_model.Build.model (Configs.passive ~nodes ()) in
  let engine = Engine.Bdd_reach and max_depth = 50 in
  Portfolio.Cache.store c ~model ~engine ~max_depth
    (Engine.Holds { detail = "proved safe: quarantine probe" });
  (* Flip one byte of the payload on disk — the checksum must catch
     it even though the file is still perfectly valid JSON. *)
  let path =
    Filename.concat dir
      (Portfolio.Cache.key ~model ~engine ~max_depth ^ ".json")
  in
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let idx =
    let m = String.length "probe" in
    let rec go i =
      if i + m > String.length raw then
        Alcotest.failf "payload marker not found in %s" path
      else if String.sub raw i m = "probe" then i
      else go (i + 1)
    in
    go 0
  in
  let flipped = Bytes.of_string raw in
  Bytes.set flipped idx 'q';
  let oc = open_out_bin path in
  output_bytes oc flipped;
  close_out oc;
  Alcotest.(check bool) "flipped entry is a miss" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth = None);
  Alcotest.(check int) "flipped entry quarantined" 1
    (Portfolio.Cache.quarantined c);
  Alcotest.(check bool) "quarantine file left for forensics" true
    (Sys.file_exists (path ^ ".quarantined"));
  Alcotest.(check bool) "original gone" false (Sys.file_exists path);
  (* Recompute-and-store repopulates; the quarantined file does not
     interfere with the fresh entry. *)
  Portfolio.Cache.store c ~model ~engine ~max_depth
    (Engine.Holds { detail = "proved safe: recomputed" });
  (match Portfolio.Cache.lookup c ~model ~engine ~max_depth with
  | Some (Engine.Holds { detail }) ->
      Alcotest.(check string) "recomputed entry served"
        "proved safe: recomputed" detail
  | _ -> Alcotest.fail "expected the recomputed verdict");
  Alcotest.(check int) "no further quarantines" 1
    (Portfolio.Cache.quarantined c)

let test_cache_chaos_corrupt_reads () =
  (* The Cache_read corrupt hook: with injection armed, a stored entry
     comes back as a miss (flipped byte -> checksum mismatch ->
     quarantined) and the registry records the injection. *)
  let faults = faults_of_spec "13:cache_read=corruptx1" in
  let c = Portfolio.Cache.create ~dir:(temp_dir ()) ~faults () in
  let model = Tta_model.Build.model (Configs.passive ~nodes ()) in
  let engine = Engine.Bdd_reach and max_depth = 50 in
  Portfolio.Cache.store c ~model ~engine ~max_depth
    (Engine.Holds { detail = "proved safe: chaos probe" });
  Alcotest.(check bool) "corrupted read degrades to a miss" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth = None);
  Alcotest.(check int) "quarantined" 1 (Portfolio.Cache.quarantined c);
  Alcotest.(check int) "injection recorded" 1
    (List.assoc "cache_read.corrupt" (Faults.injections faults));
  (* The x1 budget is spent: a recomputed entry is served cleanly. *)
  Portfolio.Cache.store c ~model ~engine ~max_depth
    (Engine.Holds { detail = "proved safe: recomputed" });
  Alcotest.(check bool) "post-budget lookup hits" true
    (Portfolio.Cache.lookup c ~model ~engine ~max_depth <> None)

(* ------------------------------------------------------------------ *)
(* Portfolio integration *)

let test_race_survives_crashing_engine () =
  (* Exactly one engine attempt crashes (x1) and fail-fast supervision
     turns it into a recorded failure; the surviving racer still
     proves the property. *)
  let p = policy ~retries:0 () in
  let r =
    Portfolio.race ~supervisor:p
      ~faults:(faults_of_spec "5:engine_start=crashx1")
      ~engines:[ Engine.Bdd_reach; Engine.Explicit_bfs ]
      ~max_depth:50
      (Configs.passive ~nodes ())
  in
  Alcotest.(check bool) "still proves the property" true
    (match r.Portfolio.verdict with Engine.Holds _ -> true | _ -> false);
  Alcotest.(check int) "one recorded failure" 1
    (List.length r.Portfolio.failures);
  Alcotest.(check int) "one completed run" 1 (List.length r.Portfolio.runs);
  Alcotest.(check bool) "not an all-failed result" false
    (Portfolio.all_failed r)

let test_race_all_engines_failed () =
  let p = policy ~retries:0 () in
  let r =
    Portfolio.race ~supervisor:p
      ~faults:(faults_of_spec "5:engine_start=crash")
      ~engines:[ Engine.Bdd_reach; Engine.Explicit_bfs ]
      ~max_depth:50
      (Configs.passive ~nodes ())
  in
  Alcotest.(check bool) "flagged all-failed" true (Portfolio.all_failed r);
  Alcotest.(check int) "both failures recorded" 2
    (List.length r.Portfolio.failures);
  Alcotest.(check (list string)) "failures in priority order"
    [ "bdd-reachability"; "explicit-bfs" ]
    (List.map
       (fun (e, _) -> Engine.id_to_string e)
       r.Portfolio.failures);
  (match r.Portfolio.verdict with
  | Engine.Unknown { detail } ->
      Alcotest.(check bool) "detail carries the breakdown" true
        (String.length detail > 0)
  | _ -> Alcotest.fail "expected Unknown");
  Alcotest.(check int) "no completed runs" 0 (List.length r.Portfolio.runs)

let () =
  Alcotest.run "resilience"
    [
      ( "spec",
        [
          Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "errors" `Quick test_spec_errors;
        ] );
      ( "faults",
        [
          Alcotest.test_case "deterministic firing" `Quick
            test_firing_deterministic;
          Alcotest.test_case "injections counted" `Quick
            test_injections_counted;
          Alcotest.test_case "deterministic corruption" `Quick
            test_corrupt_deterministic;
          Alcotest.test_case "hash_float is pure" `Quick test_hash_float_pure;
        ] );
      ( "link",
        [
          Alcotest.test_case "spec roundtrip" `Quick test_link_spec_roundtrip;
          Alcotest.test_case "deterministic firing" `Quick
            test_link_firing_deterministic;
          Alcotest.test_case "action semantics" `Quick
            test_link_action_semantics;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "deterministic retries" `Quick
            test_supervisor_retries_deterministically;
          Alcotest.test_case "retry exhaustion" `Quick
            test_supervisor_exhausts_retries;
          Alcotest.test_case "watchdog hangs" `Quick
            test_supervisor_watchdog_hangs;
        ] );
      ( "cache",
        [
          Alcotest.test_case "flipped byte quarantined" `Quick
            test_cache_quarantines_flipped_byte;
          Alcotest.test_case "chaos corrupt reads" `Quick
            test_cache_chaos_corrupt_reads;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "race survives a crash" `Quick
            test_race_survives_crashing_engine;
          Alcotest.test_case "all engines failed" `Quick
            test_race_all_engines_failed;
        ] );
    ]
