(* Tests for the formal TTA model: construction, well-formedness
   (deadlock freedom), the paper's verification results at small scale
   (2-node clusters keep each check under a few seconds; the 4-node
   paper-scale runs live in the benchmark harness and EXPERIMENTS.md),
   cross-engine agreement, and semantic checks on the counterexamples. *)

open Symkit

let nodes = 2

(* The historical [check] signature the assertions were written
   against, shimmed over the unified [Engine] interface. *)
let tta_check ?cancel ~engine ~max_depth cfg =
  ((Tta_model.Engine.get engine).Tta_model.Engine.run ?cancel ~max_depth cfg)
    .Tta_model.Engine.verdict

let enc_of cfg = Enc.create (Bdd.create_manager ()) (Tta_model.Build.model cfg)

(* ------------------------------------------------------------------ *)
(* Construction and static structure *)

let test_construction_all_configs () =
  List.iter
    (fun cfg ->
      let model = Tta_model.Build.model cfg in
      Alcotest.(check bool)
        (Tta_model.Configs.name cfg ^ " has variables")
        true
        (List.length model.Model.vars > 0))
    [
      Tta_model.Configs.passive ~nodes ();
      Tta_model.Configs.time_windows ~nodes ();
      Tta_model.Configs.small_shifting ~nodes ();
      Tta_model.Configs.full_shifting ~nodes ();
      Tta_model.Configs.full_shifting ~nodes ~forbid_cold_start_duplication:true ();
    ]

let test_variable_inventory () =
  let model = Tta_model.Build.model (Tta_model.Configs.full_shifting ~nodes:4 ()) in
  (* 7 variables per node, 3 per coupler, 1 budget. *)
  Alcotest.(check int) "variable count" ((7 * 4) + (3 * 2) + 1)
    (List.length model.Model.vars);
  (* Without a budget, one fewer. *)
  let model2 = Tta_model.Build.model (Tta_model.Configs.passive ~nodes:4 ()) in
  Alcotest.(check int) "no budget variable" ((7 * 4) + (3 * 2))
    (List.length model2.Model.vars)

let test_config_validation () =
  Alcotest.check_raises "too few nodes"
    (Invalid_argument "Configs.make: need at least 2 nodes") (fun () ->
      ignore (Tta_model.Configs.passive ~nodes:1 ()))

let test_initial_state_unique () =
  let enc = enc_of (Tta_model.Configs.passive ~nodes ()) in
  let init = Enc.init_bdd enc in
  Alcotest.(check bool) "exactly one initial state" true
    (Bdd.sat_count (Enc.mgr enc) ~nvars:(2 * Enc.nbits enc) init
     /. (2.0 ** float_of_int (Enc.nbits enc))
    = 1.0)

(* ------------------------------------------------------------------ *)
(* Deadlock freedom: the conjoined constraints never paint a reachable
   state into a corner. This is the key well-formedness property of a
   relational model. *)

let test_deadlock_freedom () =
  List.iter
    (fun cfg ->
      let enc = enc_of cfg in
      let reach = Reach.reachable_set enc in
      let stuck = Reach.deadlocked enc reach in
      Alcotest.(check bool)
        (Tta_model.Configs.name cfg ^ " deadlock-free")
        true (Bdd.is_zero stuck))
    [
      Tta_model.Configs.passive ~nodes ();
      Tta_model.Configs.full_shifting ~nodes ();
      Tta_model.Configs.full_shifting ~nodes ~forbid_cold_start_duplication:true ();
    ]

(* ------------------------------------------------------------------ *)
(* The paper's verification results at 2-node scale *)

let bad = Tta_model.Props.integrated_node_frozen ~nodes

let test_safe_configurations_proved () =
  List.iter
    (fun cfg ->
      match tta_check ~engine:Tta_model.Engine.Bdd_reach ~max_depth:60 cfg with
      | Tta_model.Engine.Holds _ -> ()
      | Tta_model.Engine.Violated { trace; model } ->
          Alcotest.failf "%s: spurious violation:\n%s"
            (Tta_model.Configs.name cfg)
            (Trace.to_string model trace)
      | Tta_model.Engine.Unknown { detail } ->
          Alcotest.failf "%s: %s" (Tta_model.Configs.name cfg) detail)
    [
      Tta_model.Configs.passive ~nodes ();
      Tta_model.Configs.time_windows ~nodes ();
      Tta_model.Configs.small_shifting ~nodes ();
    ]

let get_violation ~engine cfg =
  match tta_check ~engine ~max_depth:16 cfg with
  | Tta_model.Engine.Violated { trace; model } -> (trace, model)
  | _ -> Alcotest.fail "expected a violation"

let test_full_shifting_violated_and_traces_agree () =
  let cfg = Tta_model.Configs.full_shifting ~nodes () in
  let bdd_trace, model = get_violation ~engine:Tta_model.Engine.Bdd_reach cfg in
  let bmc_trace, _ = get_violation ~engine:Tta_model.Engine.Sat_bmc cfg in
  (* Both engines find minimal counterexamples of the same length, and
     both replay against the model. *)
  Alcotest.(check int) "engines agree on minimal length"
    (Array.length bdd_trace) (Array.length bmc_trace);
  List.iter
    (fun trace ->
      match Trace.validate model trace with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid trace: %s" e)
    [ bdd_trace; bmc_trace ]

(* Semantic checks on the counterexample: the budget is respected, the
   replay actually happens, and the victim had integrated. *)
let count_steps_with model trace pred =
  Array.fold_left
    (fun acc s -> if Model.eval_pred model pred s then acc + 1 else acc)
    0 trace

let test_counterexample_semantics () =
  let cfg = Tta_model.Configs.full_shifting ~nodes () in
  let trace, model = get_violation ~engine:Tta_model.Engine.Bdd_reach cfg in
  let oos = Tta_model.Props.replay_active in
  let replays = count_steps_with model trace oos in
  Alcotest.(check int) "exactly one out-of-slot step (budget = 1)" 1 replays;
  (* The final state exhibits the property violation and nothing
     earlier does (minimality). *)
  let last = trace.(Array.length trace - 1) in
  Alcotest.(check bool) "final state is bad" true (Model.eval_pred model bad last);
  Alcotest.(check int) "no earlier bad state" 1
    (count_steps_with model trace bad)

let test_forbid_cold_start_duplication () =
  (* With cold-start replays prohibited, two nodes are provably safe (a
     2-node victim of a C-state replay always counts its own frame as
     agreed and survives)... *)
  let cfg2 =
    Tta_model.Configs.full_shifting ~nodes:2 ~forbid_cold_start_duplication:true ()
  in
  (match tta_check ~engine:Tta_model.Engine.Bdd_reach ~max_depth:60 cfg2 with
  | Tta_model.Engine.Holds _ -> ()
  | _ -> Alcotest.fail "2 nodes without cold-start duplication should be safe");
  (* ...but from three nodes on, the paper's second counterexample (a
     duplicated C-state frame) appears. *)
  let cfg =
    Tta_model.Configs.full_shifting ~nodes:3 ~forbid_cold_start_duplication:true ()
  in
  let get_violation ~engine cfg =
    match tta_check ~engine ~max_depth:24 cfg with
    | Tta_model.Engine.Violated { trace; model } -> (trace, model)
    | _ -> Alcotest.fail "expected a violation"
  in
  let trace, model = get_violation ~engine:Tta_model.Engine.Bdd_reach cfg in
  (* The C-state duplication variant is still a violation, but no step
     replays a buffered cold-start frame. *)
  let cs_replay k =
    let open Expr in
    let open Expr.Syntax in
    (cur (Printf.sprintf "c%d_fault" k) == sym "out_of_slot")
    && (cur (Printf.sprintf "c%d_buf_frame" k) == sym "cold_start")
  in
  Alcotest.(check int) "no cold-start replay anywhere" 0
    (count_steps_with model trace (Expr.disj [ cs_replay 0; cs_replay 1 ]));
  (* Some replay still happens — necessarily of a C-state frame. *)
  Alcotest.(check bool) "a replay happened" true
    (count_steps_with model trace Tta_model.Props.replay_active > 0)

let test_unlimited_budget_also_violated () =
  let cfg =
    Tta_model.Configs.make ~nodes Guardian.Feature_set.Full_shifting
  in
  match tta_check ~engine:Tta_model.Engine.Bdd_reach ~max_depth:16 cfg with
  | Tta_model.Engine.Violated { trace; _ } ->
      (* Without the budget constraint the counterexample can only get
         shorter or stay equal. *)
      let budget_trace, _ =
        get_violation ~engine:Tta_model.Engine.Bdd_reach
          (Tta_model.Configs.full_shifting ~nodes ())
      in
      Alcotest.(check bool) "not longer than the budgeted trace" true
        (Array.length trace <= Array.length budget_trace)
  | _ -> Alcotest.fail "expected a violation"

(* K-induction as a third independent engine: it must refute the
   full-shifting configuration with the same minimal trace, and — an
   honest negative result — the safe property is not k-inductive at
   practical k (the BDD fixpoint is the proving engine of record). *)
let test_k_induction_on_tta () =
  let cfg = Tta_model.Configs.full_shifting ~nodes () in
  let enc = enc_of cfg in
  (match
     Induction.check ~max_k:14 enc ~bad:(Tta_model.Props.integrated_node_frozen ~nodes)
   with
  | Induction.Refuted trace ->
      Alcotest.(check int) "same minimal length as BDD/BMC" 12
        (Array.length trace)
  | _ -> Alcotest.fail "expected a refutation");
  let enc2 = enc_of (Tta_model.Configs.passive ~nodes ()) in
  match
    Induction.check ~max_k:6 enc2
      ~bad:(Tta_model.Props.integrated_node_frozen ~nodes)
  with
  | Induction.Unknown _ -> ()
  | Induction.Proved k ->
      (* Would be a pleasant surprise; record it loudly if it starts
         happening after model changes. *)
      Alcotest.failf "passive unexpectedly k-inductive at k=%d" k
  | Induction.Refuted _ -> Alcotest.fail "spurious refutation"

(* The SMV export of the paper's model round-trips its key structure. *)
let test_smv_export_of_tta () =
  let cfg = Tta_model.Configs.full_shifting ~nodes:4 () in
  let model = Tta_model.Build.model cfg in
  let smv =
    Smv_export.to_string
      ~invarspec:(Tta_model.Props.integrated_node_frozen ~nodes:4)
      model
  in
  let has needle =
    let n = String.length needle and m = String.length smv in
    let rec go i = i + n <= m && (String.sub smv i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "declares the node state machines" true
    (has "n1_state : {freeze, init, listen, cold_start, active, passive, \
          await, test, download};");
  Alcotest.(check bool) "declares coupler faults" true
    (has "c0_fault : {none, silence, bad_frame, out_of_slot};");
  Alcotest.(check bool) "has the property" true (has "INVARSPEC")

(* ------------------------------------------------------------------ *)
(* Reachability probes: the model exhibits the good behaviours too. *)

let test_integration_reachable () =
  let cfg = Tta_model.Configs.passive ~nodes () in
  match
    Tta_model.Engine.witness ~max_depth:12 cfg
      (Tta_model.Props.some_node_integrated ~nodes)
  with
  | Some (trace, model) -> (
      match Trace.validate model trace with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid witness: %s" e)
  | None -> Alcotest.fail "integration unreachable: broken model"

let test_full_activity_reachable () =
  let cfg = Tta_model.Configs.passive ~nodes () in
  match
    Tta_model.Engine.witness ~max_depth:14 cfg
      (Tta_model.Props.all_nodes_active ~nodes)
  with
  | Some (trace, _) ->
      Alcotest.(check bool) "nontrivial run" true (Array.length trace > 5)
  | None -> Alcotest.fail "full activity unreachable: broken model"

(* The violation at the minimal depth is not a fluke of one schedule:
   enumeration finds several distinct minimal counterexamples, each
   validating against the model. *)
let test_enumerate_counterexamples () =
  let cfg = Tta_model.Configs.full_shifting ~nodes () in
  let model = Tta_model.Build.model cfg in
  let enc = Enc.create (Bdd.create_manager ()) model in
  let traces =
    Bmc.enumerate ~max_depth:14 ~limit:5 enc ~bad
  in
  Alcotest.(check bool) "several distinct minimal traces" true
    (List.length traces >= 3);
  let lens = List.map Array.length traces in
  Alcotest.(check bool) "all at the minimal depth" true
    (List.for_all (( = ) (List.hd lens)) lens);
  List.iteri
    (fun i trace ->
      match Trace.validate model trace with
      | Ok () -> ()
      | Error e -> Alcotest.failf "trace %d invalid: %s" i e)
    traces;
  (* Pairwise distinct. *)
  let rec distinct = function
    | [] -> true
    | t :: rest -> (not (List.exists (( = ) t) rest)) && distinct rest
  in
  Alcotest.(check bool) "pairwise distinct" true (distinct traces)

(* Conformance of the executable twin: for sampled states, the set of
   successors enumerated by the hand-coded program must equal the
   symbolic image of the constraint encoding — two independent
   implementations of the Section 4 semantics agreeing pointwise. *)
let conformance_check cfg ~samples =
  let ctx = Tta_model.Exec.make_ctx cfg in
  let enc = Enc.create (Bdd.create_manager ()) (Tta_model.Exec.model ctx) in
  let m = Enc.mgr enc in
  let rng = Random.State.make [| 20260705 |] in
  let check_state label s =
    let image = Reach.image enc (Enc.state_cube enc s) in
    let exec_set =
      List.fold_left
        (fun acc s' -> Bdd.dor m acc (Enc.state_cube enc s'))
        Bdd.zero
        (Tta_model.Exec.successors ctx s)
    in
    if not (Bdd.equal image exec_set) then begin
      let diff1 = Bdd.dand m image (Bdd.dnot m exec_set) in
      let diff2 = Bdd.dand m exec_set (Bdd.dnot m image) in
      let show d =
        if Bdd.is_zero d then "-"
        else
          Format.asprintf "%a"
            (Model.pp_state (Tta_model.Exec.model ctx))
            (Enc.decode_state enc d)
      in
      Alcotest.failf
        "%s: successor sets differ at %s\nonly symbolic: %s\nonly exec: %s"
        label
        (Format.asprintf "%a" (Model.pp_state (Tta_model.Exec.model ctx)) s)
        (show diff1) (show diff2)
    end
  in
  (* The initial state, a short random walk from it, and uniformly
     random states of the full space. *)
  let s = ref (Tta_model.Exec.initial ctx) in
  check_state "initial" !s;
  for step = 1 to samples do
    (match Tta_model.Exec.successors ctx !s with
    | [] -> s := Tta_model.Exec.initial ctx
    | succs ->
        s := List.nth succs (Random.State.int rng (List.length succs)));
    check_state (Printf.sprintf "walk step %d" step) !s
  done;
  for k = 1 to samples do
    check_state
      (Printf.sprintf "random state %d" k)
      (Tta_model.Exec.random_state ctx rng)
  done

let test_exec_conformance () =
  conformance_check (Tta_model.Configs.full_shifting ~nodes ()) ~samples:25;
  conformance_check (Tta_model.Configs.passive ~nodes ()) ~samples:15;
  conformance_check
    (Tta_model.Configs.full_shifting ~nodes
       ~forbid_cold_start_duplication:true ())
    ~samples:15

(* Protocol-mechanism ablations. The measured outcome is itself a
   finding: removing the listen-phase rules (big bang, the
   hold-on-cold-start rule, the staggered timeouts) does NOT break the
   freeze-safety invariant — the timeout reset on observed traffic
   alone prevents a second cold-start epoch from forming while one is
   active, so those rules protect start-up robustness and liveness
   rather than safety. The one safety-relevant mechanism is the one the
   paper studies: the prohibition on full-frame buffering. The big-bang
   rule does shorten the attacker's job when absent: integrating on the
   first cold-start frame lets the replay strike two slots earlier. *)
let test_protocol_ablations_preserve_safety () =
  List.iter
    (fun variant ->
      let cfg =
        Tta_model.Configs.make ~nodes
          ~variant Guardian.Feature_set.Passive
      in
      match tta_check ~engine:Tta_model.Engine.Bdd_reach ~max_depth:80 cfg with
      | Tta_model.Engine.Holds _ -> ()
      | Tta_model.Engine.Violated { trace; model } ->
          Alcotest.failf "%s: unexpectedly violated:\n%s"
            (Tta_model.Configs.name cfg)
            (Trace.to_string model trace)
      | Tta_model.Engine.Unknown { detail } ->
          Alcotest.failf "%s: %s" (Tta_model.Configs.name cfg) detail)
    [
      Tta_model.Configs.No_big_bang;
      Tta_model.Configs.No_listen_hold;
      Tta_model.Configs.No_timeout_stagger;
    ]

let test_no_big_bang_shortens_attack () =
  let trace_len variant =
    let cfg =
      Tta_model.Configs.make ~nodes ~oos_budget:1 ~variant
        Guardian.Feature_set.Full_shifting
    in
    match tta_check ~engine:Tta_model.Engine.Bdd_reach ~max_depth:20 cfg with
    | Tta_model.Engine.Violated { trace; _ } -> Array.length trace
    | _ -> Alcotest.fail "expected a violation"
  in
  let standard = trace_len Tta_model.Configs.Standard in
  let no_bb = trace_len Tta_model.Configs.No_big_bang in
  Alcotest.(check int) "standard minimal trace" 12 standard;
  Alcotest.(check bool) "first-frame integration is strictly easier to attack"
    true (no_bb < standard)

(* CTL probes over the passive model. Two notable shapes:

   - [AG (integrated -> EF active)] holds: an integrated node can
     always work its way back to active — the protocol has no
     integrated dead ends besides the freezes the safety property
     tracks.
   - [AG EF some_active] FAILS, and legitimately so: two nodes whose
     listen timeouts expire in the same silent slot enter cold start
     simultaneously and collide forever (each sees only noise, so the
     start-up check [agreed <= 1 && failed = 0] re-arms both every
     round). This cold-start contention livelock is a known property of
     the abstraction — it is precisely why the big-bang rule prevents
     anyone from *integrating* during contention — and it lies outside
     the paper's safety property, which is about freezes, not
     liveness. *)
let test_ctl_recoverability () =
  let cfg = Tta_model.Configs.passive ~nodes () in
  let enc = enc_of cfg in
  let reach = Reach.reachable_set enc in
  let active = Tta_model.Props.some_node_active ~nodes in
  let integrated = Tta_model.Props.some_node_integrated ~nodes in
  let check f = (Ctl.check ~reachable:reach enc f).Ctl.holds in
  Alcotest.(check bool) "integrated nodes can always re-activate" true
    (check Ctl.(AG (Imp (atom integrated, EF (atom active)))));
  Alcotest.(check bool) "cold-start contention livelock exists" false
    (check Ctl.(AG (EF (atom active))));
  (* From the initial state, full activity is reachable. *)
  Alcotest.(check bool) "all-active reachable initially" true
    (Ctl.check ~reachable:reach enc
       Ctl.(EF (atom (Tta_model.Props.all_nodes_active ~nodes))))
      .Ctl.holds_initially

let test_cold_start_reachable () =
  let cfg = Tta_model.Configs.passive ~nodes () in
  match
    Tta_model.Engine.witness ~max_depth:10 cfg
      (Tta_model.Props.node_in_state ~node:1 "cold_start")
  with
  | Some _ -> ()
  | None -> Alcotest.fail "cold start unreachable: broken model"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "tta_model"
    [
      ( "structure",
        [
          Alcotest.test_case "construction" `Quick test_construction_all_configs;
          Alcotest.test_case "variable inventory" `Quick test_variable_inventory;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "unique initial state" `Quick
            test_initial_state_unique;
          Alcotest.test_case "deadlock freedom" `Quick test_deadlock_freedom;
        ] );
      ( "verification results",
        [
          Alcotest.test_case "safe configurations proved" `Quick
            test_safe_configurations_proved;
          Alcotest.test_case "full shifting violated; engines agree" `Quick
            test_full_shifting_violated_and_traces_agree;
          Alcotest.test_case "counterexample semantics" `Quick
            test_counterexample_semantics;
          Alcotest.test_case "cold-start duplication prohibited" `Quick
            test_forbid_cold_start_duplication;
          Alcotest.test_case "unlimited budget" `Quick
            test_unlimited_budget_also_violated;
          Alcotest.test_case "k-induction engine" `Quick test_k_induction_on_tta;
          Alcotest.test_case "smv export" `Quick test_smv_export_of_tta;
          Alcotest.test_case "counterexample enumeration" `Quick
            test_enumerate_counterexamples;
          Alcotest.test_case "executable twin conformance" `Quick
            test_exec_conformance;
          Alcotest.test_case "ablations preserve safety" `Quick
            test_protocol_ablations_preserve_safety;
          Alcotest.test_case "no-big-bang shortens the attack" `Quick
            test_no_big_bang_shortens_attack;
        ] );
      ( "probes",
        [
          Alcotest.test_case "integration reachable" `Quick
            test_integration_reachable;
          Alcotest.test_case "full activity reachable" `Quick
            test_full_activity_reachable;
          Alcotest.test_case "cold start reachable" `Quick
            test_cold_start_reachable;
          Alcotest.test_case "ctl recoverability" `Quick
            test_ctl_recoverability;
        ] );
    ]
