(* Tests for the CDCL SAT solver: hand-written instances with known
   status, classic unsatisfiable families, assumption handling, and
   randomized cross-checking against a brute-force evaluator. *)

let lit v sign = if sign then Sat.pos v else Sat.neg v

(* Build a solver over [n] fresh variables and the given clauses, where a
   clause is a list of (var, sign). *)
let solver_of n clauses =
  let s = Sat.create () in
  for _ = 1 to n do
    ignore (Sat.new_var s)
  done;
  List.iter
    (fun c -> Sat.add_clause s (List.map (fun (v, b) -> lit v b) c))
    clauses;
  s

let check_result name expected s =
  let r = Sat.solve s in
  Alcotest.(check bool) name (expected = Sat.Sat) (r = Sat.Sat)

let test_trivial_sat () =
  check_result "x" Sat.Sat (solver_of 1 [ [ (0, true) ] ]);
  check_result "x or y" Sat.Sat (solver_of 2 [ [ (0, true); (1, true) ] ])

let test_trivial_unsat () =
  check_result "x and not x" Sat.Unsat
    (solver_of 1 [ [ (0, true) ]; [ (0, false) ] ]);
  let s = Sat.create () in
  Sat.add_clause s [];
  check_result "empty clause" Sat.Unsat s

let test_implication_chain () =
  (* x0, x0->x1, ..., x8->x9, not x9: unsat. *)
  let n = 10 in
  let clauses =
    [ [ (0, true) ]; [ (n - 1, false) ] ]
    @ List.init (n - 1) (fun i -> [ (i, false); (i + 1, true) ])
  in
  check_result "chain" Sat.Unsat (solver_of n clauses)

(* Pigeonhole: p pigeons into h holes. Variable (i, j) = pigeon i sits in
   hole j, index i*h + j. Unsat iff p > h. *)
let pigeonhole p h =
  let var i j = (i * h) + j in
  let each_pigeon =
    List.init p (fun i -> List.init h (fun j -> (var i j, true)))
  in
  let no_sharing =
    List.concat_map
      (fun j ->
        List.concat_map
          (fun i ->
            List.filter_map
              (fun i' ->
                if i' > i then
                  Some [ (var i j, false); (var i' j, false) ]
                else None)
              (List.init p Fun.id))
          (List.init p Fun.id))
      (List.init h Fun.id)
  in
  solver_of (p * h) (each_pigeon @ no_sharing)

let test_pigeonhole () =
  check_result "php 4 into 3" Sat.Unsat (pigeonhole 4 3);
  check_result "php 5 into 4" Sat.Unsat (pigeonhole 5 4);
  check_result "php 3 into 3" Sat.Sat (pigeonhole 3 3)

let test_model_extraction () =
  (* (x0 or x1) and (not x0 or x2) and (not x1 or x2): any model has x2
     unless both x0 x1 false, impossible; so x2 must be true. *)
  let s =
    solver_of 3
      [
        [ (0, true); (1, true) ];
        [ (0, false); (2, true) ];
        [ (1, false); (2, true) ];
      ]
  in
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat);
  Alcotest.(check bool) "x2 true" true (Sat.model s).(2)

let test_assumptions () =
  (* x0 -> x1, x1 -> x2. Assuming x0 and not x2 is unsat; each alone is
     sat; the solver stays reusable afterwards. *)
  let s =
    solver_of 3 [ [ (0, false); (1, true) ]; [ (1, false); (2, true) ] ]
  in
  Alcotest.(check bool) "assume x0" true
    (Sat.solve ~assumptions:[ lit 0 true ] s = Sat.Sat);
  Alcotest.(check (option bool)) "x2 follows" (Some true) (Sat.value_opt s 2);
  Alcotest.(check bool) "assume x0, not x2" true
    (Sat.solve ~assumptions:[ lit 0 true; lit 2 false ] s = Sat.Unsat);
  Alcotest.(check bool) "assume not x2 alone" true
    (Sat.solve ~assumptions:[ lit 2 false ] s = Sat.Sat);
  Alcotest.(check bool) "no assumptions still sat" true
    (Sat.solve s = Sat.Sat)

let test_tautology_and_duplicates () =
  let s = Sat.create () in
  let v = Sat.new_var s in
  (* Tautological clause must not constrain anything. *)
  Sat.add_clause s [ Sat.pos v; Sat.neg v ];
  Sat.add_clause s [ Sat.neg v; Sat.neg v ];
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat);
  Alcotest.(check (option bool)) "v unconstrained but fixed by the model"
    (Some false) (Sat.value_opt s v)

let test_model_lifecycle () =
  let s = Sat.create () in
  let v = Sat.new_var s in
  (* No query yet: no model. *)
  Alcotest.(check (option bool)) "no model before solving" None
    (Sat.value_opt s v);
  Alcotest.check_raises "model before solving raises"
    (Invalid_argument "Solver.model: no model (last answer was not Sat)")
    (fun () -> ignore (Sat.model s));
  Sat.add_clause s [ Sat.pos v ];
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat);
  Alcotest.(check (option bool)) "model available" (Some true)
    (Sat.value_opt s v);
  (* Adding a clause invalidates the snapshot — the old model may not
     satisfy the new clause, so reading it silently would be the exact
     footgun [value] used to be. *)
  let w = Sat.new_var s in
  Sat.add_clause s [ Sat.neg w ];
  Alcotest.(check (option bool)) "clause addition drops the model" None
    (Sat.value_opt s v);
  (* An Unsat answer leaves no model either. *)
  Alcotest.(check bool) "unsat under assumption" true
    (Sat.solve ~assumptions:[ Sat.pos w ] s = Sat.Unsat);
  Alcotest.(check (option bool)) "no model after unsat" None
    (Sat.value_opt s v);
  Alcotest.(check (option bool)) "out-of-range var is None" None
    (Sat.value_opt s 99)

let test_activation_groups () =
  (* x0 -> x1 globally; a retractable group adds not x1. Active: only
     not x0 models. Retracted: x0/x1 free again — the group's clauses
     (and anything learned from them) are gone. *)
  let s = Sat.create () in
  let x0 = Sat.new_var s and x1 = Sat.new_var s in
  Sat.add_clause s [ Sat.neg x0; Sat.pos x1 ];
  let g = Sat.new_group s in
  Alcotest.(check bool) "fresh group is active" true (Sat.group_active g);
  Sat.add_clause_in s g [ Sat.neg x1 ];
  Alcotest.(check bool) "group clause constrains" true
    (Sat.solve ~assumptions:[ Sat.pos x0 ] s = Sat.Unsat);
  Alcotest.(check bool) "still sat without the assumption" true
    (Sat.solve s = Sat.Sat);
  Alcotest.(check (option bool)) "model respects the group" (Some false)
    (Sat.value_opt s x1);
  Sat.retract s g;
  Alcotest.(check bool) "retracted group reads inactive" false
    (Sat.group_active g);
  Alcotest.(check bool) "retracting frees the constraint" true
    (Sat.solve ~assumptions:[ Sat.pos x0 ] s = Sat.Sat);
  Alcotest.(check (option bool)) "x1 follows x0 again" (Some true)
    (Sat.value_opt s x1);
  (* Retraction is permanent: the group takes no further clauses. *)
  Alcotest.check_raises "adding into a retracted group raises"
    (Invalid_argument "Solver.add_clause_in: group already retracted")
    (fun () -> Sat.add_clause_in s g [ Sat.pos x0 ])

let test_push_pop_scopes () =
  (* Nested scopes: each pop erases exactly the clauses added since the
     matching push, while root clauses persist. *)
  let s = Sat.create () in
  let x = Sat.new_var s and y = Sat.new_var s in
  Sat.add_clause s [ Sat.pos x; Sat.pos y ];
  Sat.push s;
  Sat.add_clause s [ Sat.neg x ];
  Sat.push s;
  Sat.add_clause s [ Sat.neg y ];
  Alcotest.(check bool) "both scoped clauses bite" true
    (Sat.solve s = Sat.Unsat);
  Sat.pop s;
  Alcotest.(check bool) "inner scope gone" true (Sat.solve s = Sat.Sat);
  Alcotest.(check (option bool)) "outer scope still binds x" (Some false)
    (Sat.value_opt s x);
  Sat.pop s;
  Alcotest.(check bool) "back to the root problem" true (Sat.solve s = Sat.Sat);
  Alcotest.check_raises "pop without a scope raises"
    (Invalid_argument "Solver.pop: no open scope") (fun () -> Sat.pop s)

let test_learned_clauses_survive_queries () =
  (* The session contract: solving the same hard instance twice on one
     solver must be cheaper the second time, because learned clauses
     are retained across queries. Assumptions keep both queries
     non-trivial. *)
  let s = pigeonhole 5 4 in
  let a = [ lit (0 * 4 + 0) true ] in
  Alcotest.(check bool) "first query unsat" true
    (Sat.solve ~assumptions:a s = Sat.Unsat);
  let after_first = Sat.conflicts s in
  Alcotest.(check bool) "first query fought" true (after_first > 0);
  Alcotest.(check bool) "second query unsat" true
    (Sat.solve ~assumptions:a s = Sat.Unsat);
  let second_cost = Sat.conflicts s - after_first in
  Alcotest.(check bool)
    (Printf.sprintf "second query cheaper (%d < %d)" second_cost after_first)
    true
    (second_cost < after_first)

(* Randomized cross-check against brute force. *)

let random_cnf_gen =
  let open QCheck.Gen in
  let nv = 8 in
  let clause =
    list_size (int_range 1 4)
      (pair (int_bound (nv - 1)) bool)
  in
  pair (return nv) (list_size (int_range 1 30) clause)

let brute_force (nv, clauses) =
  let sat_env env =
    List.for_all
      (fun c -> List.exists (fun (v, b) -> env land (1 lsl v) <> 0 = b) c)
      clauses
  in
  let rec try_env k = k < 1 lsl nv && (sat_env k || try_env (k + 1)) in
  try_env 0

let prop_random_cnf =
  QCheck.Test.make ~name:"solver agrees with brute force" ~count:300
    (QCheck.make ~print:(fun _ -> "<cnf>") random_cnf_gen)
    (fun (nv, clauses) ->
      let s = solver_of nv clauses in
      let expected = brute_force (nv, clauses) in
      let got = Sat.solve s = Sat.Sat in
      if got && expected then
        (* Also check the produced model. *)
        let m = Sat.model s in
        List.for_all
          (fun c -> List.exists (fun (v, b) -> m.(v) = b) c)
          clauses
      else got = expected)

let prop_assumption_consistency =
  QCheck.Test.make ~name:"solve under assumptions = solve with units"
    ~count:200
    (QCheck.make ~print:(fun _ -> "<cnf>") random_cnf_gen)
    (fun (nv, clauses) ->
      (* Assume x0 true: must agree with adding the unit clause. *)
      let s1 = solver_of nv clauses in
      let r1 = Sat.solve ~assumptions:[ lit 0 true ] s1 in
      let s2 = solver_of nv ([ (0, true) ] :: clauses) in
      let r2 = Sat.solve s2 in
      r1 = r2)

(* ------------------------------------------------------------------ *)
(* DIMACS *)

let test_dimacs_parse () =
  let inst =
    Sat.Dimacs.of_string
      "c a comment\np cnf 3 2\n1 -2 0\nc mid comment\n3 0\n"
  in
  Alcotest.(check int) "vars" 3 inst.Sat.Dimacs.nvars;
  Alcotest.(check (list (list int))) "clauses" [ [ 1; -2 ]; [ 3 ] ]
    inst.Sat.Dimacs.clauses

let test_dimacs_parse_errors () =
  let expect_error s =
    match Sat.Dimacs.of_string s with
    | exception Sat.Dimacs.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected a parse error on %S" s
  in
  expect_error "1 2 0\n";
  expect_error "p cnf 2 1\n1 3 0\n";
  expect_error "p cnf 2 2\n1 0\n";
  expect_error "p cnf 2 1\n1 2\n"

let test_dimacs_solve () =
  let inst = Sat.Dimacs.of_string "p cnf 3 3\n1 2 0\n-1 3 0\n-2 3 0\n" in
  let s = Sat.Dimacs.load inst in
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat);
  let model = Sat.Dimacs.model_of inst s in
  (* The model satisfies every clause. *)
  List.iter
    (fun clause ->
      Alcotest.(check bool) "clause satisfied" true
        (List.exists (fun l -> List.mem l model) clause))
    inst.Sat.Dimacs.clauses

let prop_dimacs_roundtrip =
  QCheck.Test.make ~name:"dimacs print/parse roundtrip" ~count:100
    (QCheck.make ~print:(fun _ -> "<cnf>") random_cnf_gen)
    (fun (nv, clauses) ->
      let clauses =
        (* Dedup literals within clauses so the comparison is stable,
           and use the DIMACS convention. *)
        List.map
          (fun c ->
            List.sort_uniq compare
              (List.map (fun (v, b) -> if b then v + 1 else -(v + 1)) c))
          clauses
      in
      let inst = { Sat.Dimacs.nvars = nv; clauses } in
      Sat.Dimacs.of_string (Sat.Dimacs.to_string inst) = inst)

let prop_dimacs_load_agrees =
  QCheck.Test.make ~name:"dimacs load agrees with direct construction"
    ~count:100
    (QCheck.make ~print:(fun _ -> "<cnf>") random_cnf_gen)
    (fun (nv, clauses) ->
      let direct = Sat.solve (solver_of nv clauses) = Sat.Sat in
      let inst =
        {
          Sat.Dimacs.nvars = nv;
          clauses =
            List.map
              (List.map (fun (v, b) -> if b then v + 1 else -(v + 1)))
              clauses;
        }
      in
      let via_dimacs = Sat.solve (Sat.Dimacs.load inst) = Sat.Sat in
      direct = via_dimacs)

(* Clause-database reduction must not change answers: hammer one
   incremental solver with many solve calls so reductions trigger. *)
let test_incremental_with_reduction () =
  let s = Sat.create () in
  let n = 30 in
  for _ = 0 to n do
    ignore (Sat.new_var s)
  done;
  (* A chain of xor-ish constraints with changing assumptions. *)
  for i = 0 to n - 2 do
    Sat.add_clause s [ Sat.pos i; Sat.pos (i + 1); Sat.neg (i + 2) ];
    Sat.add_clause s [ Sat.neg i; Sat.neg (i + 1); Sat.neg (i + 2) ];
    Sat.add_clause s [ Sat.pos i; Sat.neg (i + 1); Sat.pos (i + 2) ];
    Sat.add_clause s [ Sat.neg i; Sat.pos (i + 1); Sat.pos (i + 2) ]
  done;
  (* Each assumption pair fixes the chain; compare against a fresh
     solver every time. *)
  for trial = 0 to 40 do
    let a0 = trial land 1 = 0 and a1 = trial land 2 = 0 in
    let assumptions =
      [ (if a0 then Sat.pos 0 else Sat.neg 0);
        (if a1 then Sat.pos 1 else Sat.neg 1);
        (if trial land 4 = 0 then Sat.pos (n - 1) else Sat.neg (n - 1)) ]
    in
    let fresh = Sat.create () in
    for _ = 0 to n do
      ignore (Sat.new_var fresh)
    done;
    for i = 0 to n - 2 do
      Sat.add_clause fresh [ Sat.pos i; Sat.pos (i + 1); Sat.neg (i + 2) ];
      Sat.add_clause fresh [ Sat.neg i; Sat.neg (i + 1); Sat.neg (i + 2) ];
      Sat.add_clause fresh [ Sat.pos i; Sat.neg (i + 1); Sat.pos (i + 2) ];
      Sat.add_clause fresh [ Sat.neg i; Sat.pos (i + 1); Sat.pos (i + 2) ]
    done;
    Alcotest.(check bool)
      (Printf.sprintf "trial %d agrees" trial)
      (Sat.solve ~assumptions fresh = Sat.Sat)
      (Sat.solve ~assumptions s = Sat.Sat)
  done

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_random_cnf;
      prop_assumption_consistency;
      prop_dimacs_roundtrip;
      prop_dimacs_load_agrees;
    ]

let suite =
  [
    Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
    Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
    Alcotest.test_case "implication chain" `Quick test_implication_chain;
    Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
    Alcotest.test_case "model extraction" `Quick test_model_extraction;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "model lifecycle" `Quick test_model_lifecycle;
    Alcotest.test_case "activation groups" `Quick test_activation_groups;
    Alcotest.test_case "push/pop scopes" `Quick test_push_pop_scopes;
    Alcotest.test_case "learned clauses survive queries" `Quick
      test_learned_clauses_survive_queries;
    Alcotest.test_case "tautologies and duplicates" `Quick
      test_tautology_and_duplicates;
    Alcotest.test_case "dimacs parse" `Quick test_dimacs_parse;
    Alcotest.test_case "dimacs parse errors" `Quick test_dimacs_parse_errors;
    Alcotest.test_case "dimacs solve" `Quick test_dimacs_solve;
    Alcotest.test_case "incremental with clause reduction" `Quick
      test_incremental_with_reduction;
  ]
  @ qtests

let () = Alcotest.run "sat" [ ("sat", suite) ]
