(* Tests for lib/synthesis: deterministic enumeration and sampling,
   the Section 6 analytic pre-filter against hand-built violations,
   Pareto dominance and pruning, and end-to-end runs (pool and service
   path) that must reproduce the paper's four feature sets as frontier
   points. *)

let space = Synthesis.Space.default ()

let keys cands = List.map Synthesis.Space.candidate_key cands

(* ------------------------------------------------------------------ *)
(* Space: enumeration and sampling *)

let test_enumeration () =
  let all = Synthesis.Space.enumerate space in
  Alcotest.(check int) "size matches" (Synthesis.Space.size space)
    (List.length all);
  Alcotest.(check bool) "non-empty" true (all <> []);
  let distinct = List.sort_uniq compare (keys all) in
  Alcotest.(check int) "keys are unique" (List.length all)
    (List.length distinct);
  Alcotest.(check string) "candidate_at agrees with enumerate"
    (Synthesis.Space.candidate_key (List.nth all 7))
    (Synthesis.Space.candidate_key (Synthesis.Space.candidate_at space 7))

let test_sampling_deterministic () =
  let a = Synthesis.Space.sample ~seed:11 ~count:50 space in
  let b = Synthesis.Space.sample ~seed:11 ~count:50 space in
  Alcotest.(check (list string)) "same seed, same sample" (keys a) (keys b);
  Alcotest.(check int) "requested count" 50 (List.length a);
  let c = Synthesis.Space.sample ~seed:12 ~count:50 space in
  Alcotest.(check bool) "different seed, different sample" true
    (keys a <> keys c);
  (* A sample is a sub-sequence of the enumeration order. *)
  let enum = keys (Synthesis.Space.enumerate space) in
  let index k = Option.get (List.find_index (String.equal k) enum) in
  let idx = List.map index (keys a) in
  Alcotest.(check (list int)) "enumeration order preserved"
    (List.sort compare idx) idx

let test_sample_degenerate () =
  Alcotest.(check int) "count >= size is the full space"
    (Synthesis.Space.size space)
    (List.length
       (Synthesis.Space.sample ~seed:1 ~count:(Synthesis.Space.size space + 5)
          space));
  Alcotest.(check (list string)) "count 0 is empty" []
    (keys (Synthesis.Space.sample ~seed:1 ~count:0 space))

(* ------------------------------------------------------------------ *)
(* Pre-filter: the paper anchors pass, hand-built violations fail on
   the right equation *)

let test_paper_candidates_pass () =
  let anchors = Synthesis.Space.paper_candidates space in
  Alcotest.(check int) "four anchors" 4 (List.length anchors);
  List.iter
    (fun c ->
      Alcotest.(check (list string))
        (Synthesis.Space.candidate_key c)
        []
        (List.map Synthesis.Prefilter.to_string
           (Synthesis.Prefilter.check space c)))
    anchors;
  Alcotest.(check int) "all four feature sets" 4
    (List.length
       (List.sort_uniq Guardian.Feature_set.compare
          (List.map
             (fun c -> c.Synthesis.Space.feature_set)
             anchors)))

let rejects c rejection =
  List.mem rejection (Synthesis.Prefilter.check space c)

let test_prefilter_equations () =
  let anchors = Synthesis.Space.paper_candidates space in
  let anchor fs =
    List.find (fun c -> c.Synthesis.Space.feature_set = fs) anchors
  in
  let open Guardian.Feature_set in
  (* eq (2): not a clock spread at all *)
  Alcotest.(check bool) "eq2" true
    (rejects
       { (anchor Passive) with Synthesis.Space.rho_max = 0.9 }
       Synthesis.Prefilter.Clock_spread);
  (* eq (1): a reshaping coupler with no buffer *)
  Alcotest.(check bool) "eq1 small-shifting" true
    (rejects
       { (anchor Small_shifting) with Synthesis.Space.buffer_bits = 0 }
       Synthesis.Prefilter.Buffer_below_min);
  (* eq (1): full shifting below a whole frame *)
  Alcotest.(check bool) "eq1 full-shifting" true
    (rejects
       { (anchor Full_shifting) with Synthesis.Space.buffer_bits = 512 }
       Synthesis.Prefilter.Buffer_below_min);
  (* eq (3): a non-buffering coupler provisioned beyond f_min - 1 *)
  Alcotest.(check bool) "eq3" true
    (rejects
       { (anchor Time_windows) with Synthesis.Space.buffer_bits = 2076 }
       Synthesis.Prefilter.Buffer_above_max);
  (* eqs (4)/(7)/(10): a clock spread outside the envelope *)
  Alcotest.(check bool) "eq10" true
    (rejects
       { (anchor Small_shifting) with Synthesis.Space.rho_max = 2.0 }
       Synthesis.Prefilter.Clock_ratio);
  (* window narrower than the longest frame *)
  Alcotest.(check bool) "window" true
    (rejects
       { (anchor Time_windows) with Synthesis.Space.window_bits = 100 }
       Synthesis.Prefilter.Window_width);
  (* shift allowance below the in-spec skew *)
  Alcotest.(check bool) "shift" true
    (rejects
       { (anchor Small_shifting) with Synthesis.Space.shift_bits = 0 }
       Synthesis.Prefilter.Shift_allowance);
  (* a passive hub has no window, buffer or shift requirement *)
  Alcotest.(check bool) "passive unconstrained" true
    (Synthesis.Prefilter.check space
       {
         Synthesis.Space.feature_set = Passive;
         buffer_bits = 0;
         window_bits = 0;
         shift_bits = 0;
         rho_max = 1.3026;
         rho_min = 1.0;
       }
    = [])

let test_split_counts () =
  let cands = Synthesis.Space.enumerate space in
  let survivors, rejects, counts = Synthesis.Prefilter.split space cands in
  Alcotest.(check int) "partition is total" (List.length cands)
    (List.length survivors + List.length rejects);
  Alcotest.(check int) "every key reported"
    (List.length Synthesis.Prefilter.all_rejections)
    (List.length counts);
  Alcotest.(check bool) "something was rejected" true (rejects <> []);
  Alcotest.(check bool) "something survived" true (survivors <> []);
  (* Count consistency: each reject contributes one count per violated
     equation. *)
  let total_counts = List.fold_left (fun a (_, n) -> a + n) 0 counts in
  let total_violations =
    List.fold_left (fun a (_, rs) -> a + List.length rs) 0 rejects
  in
  Alcotest.(check int) "counts = violations" total_violations total_counts

(* ------------------------------------------------------------------ *)
(* Pareto dominance and pruning (synthetic points, no model checking) *)

let point ?(threats = 0) ?(upheld = true) ?(buffer = 0) ?(authority = 0) () =
  {
    Synthesis.Pareto.candidate =
      {
        Synthesis.Space.feature_set = Guardian.Feature_set.Passive;
        buffer_bits = buffer;
        window_bits = 0;
        shift_bits = 0;
        rho_max = 1.0;
        rho_min = 1.0;
      };
    objectives = { Synthesis.Pareto.threats; upheld };
    costs = { Synthesis.Pareto.buffer_bits = buffer; authority };
    faults_contained = [];
    verdict = (if upheld then Synthesis.Check.Upheld else Synthesis.Check.Breached 1);
  }

let test_dominance () =
  let open Synthesis.Pareto in
  (* same objectives, cheaper -> dominates *)
  Alcotest.(check bool) "cheaper dominates" true
    (dominates (point ~buffer:0 ()) (point ~buffer:64 ()));
  Alcotest.(check bool) "not vice versa" false
    (dominates (point ~buffer:64 ()) (point ~buffer:0 ()));
  (* more containment at higher cost: incomparable *)
  Alcotest.(check bool) "tradeoff incomparable (a)" false
    (dominates (point ~threats:2 ~authority:1 ()) (point ()));
  Alcotest.(check bool) "tradeoff incomparable (b)" false
    (dominates (point ()) (point ~threats:2 ~authority:1 ()));
  (* equal points do not dominate each other (no strict edge) *)
  Alcotest.(check bool) "equal points" false (dominates (point ()) (point ()));
  (* upheld beats breached at equal cost *)
  Alcotest.(check bool) "upheld dominates breached" true
    (dominates (point ()) (point ~upheld:false ()))

let test_frontier_pruning () =
  let open Synthesis.Pareto in
  let a = point ~buffer:0 () in
  let b = point ~buffer:64 () (* dominated by a *) in
  let c = point ~threats:2 ~authority:1 () (* incomparable *) in
  let a' = point ~buffer:0 () (* duplicate signature of a *) in
  let f = frontier [ a; b; c; a' ] in
  Alcotest.(check int) "dominated and duplicate pruned" 2 (List.length f);
  Alcotest.(check bool) "a kept" true (List.memq a f);
  Alcotest.(check bool) "c kept" true (List.memq c f)

(* ------------------------------------------------------------------ *)
(* End-to-end: determinism, envelope agreement, the paper's frontier *)

let run_once () = Synthesis.run ~seed:7 ~sample:24 ~nodes:2 space

let outcome_keys (r : Synthesis.report) =
  List.map
    (fun (o : Synthesis.Check.outcome) ->
      ( Synthesis.Space.candidate_key o.Synthesis.Check.candidate,
        Synthesis.Check.verdict_label o.Synthesis.Check.verdict ))
    r.Synthesis.outcomes

let frontier_keys (r : Synthesis.report) =
  List.map
    (fun (p : Synthesis.Pareto.point) ->
      Synthesis.Space.candidate_key p.Synthesis.Pareto.candidate)
    r.Synthesis.frontier

let test_run_deterministic () =
  let a = run_once () and b = run_once () in
  Alcotest.(check (list (pair string string)))
    "same seed: same candidates, order and verdicts" (outcome_keys a)
    (outcome_keys b);
  Alcotest.(check (list string)) "same frontier" (frontier_keys a)
    (frontier_keys b);
  Alcotest.(check (list (pair string string)))
    "same verdict summary"
    (Synthesis.verdict_summary a)
    (Synthesis.verdict_summary b)

let test_run_reproduces_paper () =
  let r = run_once () in
  Alcotest.(check bool) "pre-filter rejected something" true
    (r.Synthesis.rejected > 0);
  Alcotest.(check bool) "envelope agreement" true
    r.Synthesis.envelope_agreement;
  (* Re-verify by hand: every model-checked candidate passes the
     analytic filter. *)
  List.iter
    (fun (o : Synthesis.Check.outcome) ->
      Alcotest.(check bool)
        (Synthesis.Space.candidate_key o.Synthesis.Check.candidate)
        true
        (Synthesis.Prefilter.feasible space o.Synthesis.Check.candidate))
    r.Synthesis.outcomes;
  Alcotest.(check bool) "paper frontier shape" true
    (Synthesis.paper_frontier_ok r);
  Alcotest.(check int) "four feature sets on the frontier" 4
    (List.length (Synthesis.frontier_feature_sets r));
  (* Full shifting is the breached one; the three lower levels hold. *)
  List.iter
    (fun (p : Synthesis.Pareto.point) ->
      let fs = p.Synthesis.Pareto.candidate.Synthesis.Space.feature_set in
      let expect_upheld = fs <> Guardian.Feature_set.Full_shifting in
      Alcotest.(check bool)
        (Guardian.Feature_set.to_string fs)
        expect_upheld
        p.Synthesis.Pareto.objectives.Synthesis.Pareto.upheld)
    r.Synthesis.frontier

let test_analytic_checker_agreement_matrix () =
  (* Across the Section 5 matrix configs: the model checker's verdict
     never rescues a candidate the envelope rejects — survivors are
     exactly the anchors' envelope, and the checker's breach (full
     shifting) is a protocol-logic fact, not an envelope one. *)
  let r = Synthesis.run ~seed:3 ~sample:0 ~nodes:2 space in
  Alcotest.(check int) "anchors only" 4 r.Synthesis.survivors;
  Alcotest.(check int) "one run per Section 5 config" 4 r.Synthesis.checked;
  Alcotest.(check int) "breached configs" 1 r.Synthesis.breached;
  Alcotest.(check int) "upheld configs" 3 r.Synthesis.upheld

(* ------------------------------------------------------------------ *)
(* Service path: an in-process daemon with a session pool; verdicts
   must agree with the direct path and reuse must be attributed *)

let test_service_path_agrees () =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tta_synth_test_%d.sock" (Unix.getpid ()))
  in
  let sessions = Sessions.create () in
  let server =
    Service.Server.start ~workers:2 ~sessions
      (Service.Server.Unix_socket sock)
  in
  let service =
    Fun.protect
      ~finally:(fun () ->
        Service.Server.stop server;
        Service.Server.wait server;
        try Unix.unlink sock with Unix.Unix_error _ -> ())
    @@ fun () ->
    Synthesis.run ~seed:7 ~sample:24 ~nodes:2
      ~via:(Synthesis.Service (Service.Server.bound_addr server))
      space
  in
  let direct = run_once () in
  Alcotest.(check (list (pair string string)))
    "service verdicts agree with the direct path"
    (Synthesis.verdict_summary direct)
    (Synthesis.verdict_summary service);
  Alcotest.(check (list string)) "same frontier" (frontier_keys direct)
    (frontier_keys service);
  Alcotest.(check bool) "warm sessions were reused" true
    (service.Synthesis.session_reuses > 0);
  Alcotest.(check bool) "reuse is attributed per candidate" true
    (List.exists
       (fun (o : Synthesis.Check.outcome) ->
         o.Synthesis.Check.reused_session
         && o.Synthesis.Check.warm_depth > 0)
       service.Synthesis.outcomes)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "synthesis"
    [
      ( "space",
        [
          Alcotest.test_case "enumeration" `Quick test_enumeration;
          Alcotest.test_case "sampling determinism" `Quick
            test_sampling_deterministic;
          Alcotest.test_case "sampling degenerate cases" `Quick
            test_sample_degenerate;
        ] );
      ( "prefilter",
        [
          Alcotest.test_case "paper anchors pass" `Quick
            test_paper_candidates_pass;
          Alcotest.test_case "per-equation rejections" `Quick
            test_prefilter_equations;
          Alcotest.test_case "split counts" `Quick test_split_counts;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "dominance" `Quick test_dominance;
          Alcotest.test_case "frontier pruning" `Quick test_frontier_pruning;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "deterministic end to end" `Quick
            test_run_deterministic;
          Alcotest.test_case "reproduces the paper" `Quick
            test_run_reproduces_paper;
          Alcotest.test_case "Section 5 matrix agreement" `Quick
            test_analytic_checker_agreement_matrix;
        ] );
      ( "service",
        [
          Alcotest.test_case "daemon path agrees and reuses" `Quick
            test_service_path_agrees;
        ] );
    ]
