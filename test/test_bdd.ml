(* Tests for the BDD package: algebraic identities, semantics against
   brute-force truth tables, quantification, renaming, counting. *)

let nvars = 6

(* A small propositional formula type used to cross-check the BDD
   operations against direct evaluation. *)
type form =
  | F_var of int
  | F_not of form
  | F_and of form * form
  | F_or of form * form
  | F_xor of form * form
  | F_ite of form * form * form

let rec eval env = function
  | F_var i -> env.(i)
  | F_not f -> not (eval env f)
  | F_and (a, b) -> eval env a && eval env b
  | F_or (a, b) -> eval env a || eval env b
  | F_xor (a, b) -> eval env a <> eval env b
  | F_ite (c, t, e) -> if eval env c then eval env t else eval env e

let rec build m = function
  | F_var i -> Bdd.var m i
  | F_not f -> Bdd.dnot m (build m f)
  | F_and (a, b) -> Bdd.dand m (build m a) (build m b)
  | F_or (a, b) -> Bdd.dor m (build m a) (build m b)
  | F_xor (a, b) -> Bdd.xor m (build m a) (build m b)
  | F_ite (c, t, e) -> Bdd.ite m (build m c) (build m t) (build m e)

let form_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then map (fun i -> F_var i) (int_bound (nvars - 1))
      else
        frequency
          [
            (1, map (fun i -> F_var i) (int_bound (nvars - 1)));
            (2, map (fun f -> F_not f) (self (n - 1)));
            (3, map2 (fun a b -> F_and (a, b)) (self (n / 2)) (self (n / 2)));
            (3, map2 (fun a b -> F_or (a, b)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun a b -> F_xor (a, b)) (self (n / 2)) (self (n / 2)));
            ( 1,
              map3
                (fun a b c -> F_ite (a, b, c))
                (self (n / 3)) (self (n / 3)) (self (n / 3)) );
          ])

let form_arb = QCheck.make ~print:(fun _ -> "<form>") form_gen

let all_envs () =
  List.init (1 lsl nvars) (fun k ->
      Array.init nvars (fun i -> (k lsr i) land 1 = 1))

(* Evaluate a BDD under an environment by following the decision path. *)
let rec eval_bdd env d =
  if Bdd.is_zero d then false
  else if Bdd.is_one d then true
  else
    let v = Bdd.top_var d in
    eval_bdd env (if env.(v) then Bdd.high d else Bdd.low d)

let prop_semantics =
  QCheck.Test.make ~name:"bdd agrees with truth table" ~count:200 form_arb
    (fun f ->
      let m = Bdd.create_manager () in
      let d = build m f in
      List.for_all (fun env -> eval_bdd env d = eval env f) (all_envs ()))

let prop_canonical =
  QCheck.Test.make ~name:"equivalent formulas share a node" ~count:200
    (QCheck.pair form_arb form_arb) (fun (f, g) ->
      let m = Bdd.create_manager () in
      let df = build m f and dg = build m g in
      let equiv =
        List.for_all (fun env -> eval env f = eval env g) (all_envs ())
      in
      Bdd.equal df dg = equiv)

let prop_exists =
  QCheck.Test.make ~name:"exists = or of cofactors" ~count:100
    (QCheck.pair form_arb (QCheck.int_bound (nvars - 1))) (fun (f, v) ->
      let m = Bdd.create_manager () in
      let d = build m f in
      let q = Bdd.exists m (Bdd.varset m [ v ]) d in
      let expected =
        Bdd.dor m (Bdd.cofactor m v false d) (Bdd.cofactor m v true d)
      in
      Bdd.equal q expected)

let prop_forall =
  QCheck.Test.make ~name:"forall = and of cofactors" ~count:100
    (QCheck.pair form_arb (QCheck.int_bound (nvars - 1))) (fun (f, v) ->
      let m = Bdd.create_manager () in
      let d = build m f in
      let q = Bdd.forall m (Bdd.varset m [ v ]) d in
      let expected =
        Bdd.dand m (Bdd.cofactor m v false d) (Bdd.cofactor m v true d)
      in
      Bdd.equal q expected)

let prop_and_exists =
  QCheck.Test.make ~name:"and_exists = exists of and" ~count:100
    (QCheck.triple form_arb form_arb
       (QCheck.list_of_size (QCheck.Gen.int_range 1 3)
          (QCheck.int_bound (nvars - 1))))
    (fun (f, g, vs) ->
      let m = Bdd.create_manager () in
      let df = build m f and dg = build m g in
      let set = Bdd.varset m vs in
      Bdd.equal
        (Bdd.and_exists m set df dg)
        (Bdd.exists m set (Bdd.dand m df dg)))

let prop_sat_count =
  QCheck.Test.make ~name:"sat_count matches enumeration" ~count:100 form_arb
    (fun f ->
      let m = Bdd.create_manager () in
      let d = build m f in
      let count =
        List.length (List.filter (fun env -> eval env f) (all_envs ()))
      in
      int_of_float (Bdd.sat_count m ~nvars d) = count)

let prop_any_sat =
  QCheck.Test.make ~name:"any_sat returns a model" ~count:100 form_arb
    (fun f ->
      let m = Bdd.create_manager () in
      let d = build m f in
      if Bdd.is_zero d then true
      else begin
        let path = Bdd.any_sat d in
        let env = Array.make nvars false in
        (* Unmentioned variables are free; false works since the path
           already fixes every variable the function depends on along
           this branch. *)
        List.iter (fun (v, b) -> env.(v) <- b) path;
        eval env f
      end)

let prop_iter_sat =
  QCheck.Test.make ~name:"iter_sat enumerates exactly the models" ~count:50
    form_arb (fun f ->
      let m = Bdd.create_manager () in
      let d = build m f in
      let seen = Hashtbl.create 64 in
      Bdd.iter_sat m ~nvars d (fun a -> Hashtbl.replace seen (Array.copy a) ());
      List.for_all
        (fun env -> Hashtbl.mem seen env = eval env f)
        (all_envs ()))

let test_rename () =
  let m = Bdd.create_manager () in
  (* f(x0, x2) = x0 and not x2, renamed by +1 to f(x1, x3). *)
  let d = Bdd.dand m (Bdd.var m 0) (Bdd.dnot m (Bdd.var m 2)) in
  let r = Bdd.rename m (fun v -> v + 1) d in
  let expected = Bdd.dand m (Bdd.var m 1) (Bdd.dnot m (Bdd.var m 3)) in
  Alcotest.(check bool) "renamed" true (Bdd.equal r expected)

let test_rename_order_violation () =
  let m = Bdd.create_manager () in
  let d = Bdd.dand m (Bdd.var m 0) (Bdd.var m 1) in
  (* Swapping 0 and 1 is not monotonic. *)
  Alcotest.check_raises "order violation"
    (Invalid_argument "Bdd.rename: order-violating substitution") (fun () ->
      ignore (Bdd.rename m (fun v -> 1 - v) d))

let test_constants () =
  let m = Bdd.create_manager () in
  Alcotest.(check bool) "one" true (Bdd.is_one Bdd.one);
  Alcotest.(check bool) "zero" true (Bdd.is_zero Bdd.zero);
  Alcotest.(check bool) "x and not x" true
    (Bdd.is_zero (Bdd.dand m (Bdd.var m 0) (Bdd.nvar m 0)));
  Alcotest.(check bool) "x or not x" true
    (Bdd.is_one (Bdd.dor m (Bdd.var m 0) (Bdd.nvar m 0)));
  Alcotest.(check bool) "conj []" true (Bdd.is_one (Bdd.conj m []));
  Alcotest.(check bool) "disj []" true (Bdd.is_zero (Bdd.disj m []))

let test_support () =
  let m = Bdd.create_manager () in
  let d =
    Bdd.dand m (Bdd.var m 1) (Bdd.dor m (Bdd.var m 3) (Bdd.var m 5))
  in
  Alcotest.(check (list int)) "support" [ 1; 3; 5 ] (Bdd.support d)

let test_size () =
  let m = Bdd.create_manager () in
  let d = Bdd.var m 0 in
  Alcotest.(check int) "single var" 1 (Bdd.size d);
  let chain = Bdd.conj m (List.init 5 (fun i -> Bdd.var m i)) in
  Alcotest.(check int) "conjunction chain" 5 (Bdd.size chain)

let prop_cofactor_drops_var =
  QCheck.Test.make ~name:"cofactor removes the variable from the support"
    ~count:100
    (QCheck.triple form_arb (QCheck.int_bound (nvars - 1)) QCheck.bool)
    (fun (f, v, b) ->
      let m = Bdd.create_manager () in
      let d = Bdd.cofactor m v b (build m f) in
      not (List.mem v (Bdd.support d)))

(* Coudert–Madre restrict: the result may differ from f outside the
   care set, but must agree with f everywhere inside it. *)
let prop_restrict_sound =
  QCheck.Test.make ~name:"restrict agrees with f on the care set" ~count:200
    (QCheck.pair form_arb form_arb) (fun (f, c) ->
      let m = Bdd.create_manager () in
      let df = build m f and dc = build m c in
      let r = Bdd.restrict m df dc in
      Bdd.equal (Bdd.dand m r dc) (Bdd.dand m df dc))

let prop_restrict_full_care =
  QCheck.Test.make ~name:"restrict under a full care set is the identity"
    ~count:100 form_arb (fun f ->
      let m = Bdd.create_manager () in
      let d = build m f in
      Bdd.equal (Bdd.restrict m d Bdd.one) d)

let prop_quantification_idempotent =
  QCheck.Test.make ~name:"exists over the same set is idempotent" ~count:100
    (QCheck.pair form_arb
       (QCheck.list_of_size (QCheck.Gen.int_range 1 3)
          (QCheck.int_bound (nvars - 1))))
    (fun (f, vs) ->
      let m = Bdd.create_manager () in
      let set = Bdd.varset m vs in
      let once = Bdd.exists m set (build m f) in
      Bdd.equal once (Bdd.exists m set once))

let prop_quantifier_duality =
  QCheck.Test.make ~name:"forall = not exists not" ~count:100
    (QCheck.pair form_arb
       (QCheck.list_of_size (QCheck.Gen.int_range 1 3)
          (QCheck.int_bound (nvars - 1))))
    (fun (f, vs) ->
      let m = Bdd.create_manager () in
      let set = Bdd.varset m vs in
      let d = build m f in
      Bdd.equal (Bdd.forall m set d)
        (Bdd.dnot m (Bdd.exists m set (Bdd.dnot m d))))

(* ------------------------------------------------------------------ *)
(* Node GC: rooting, sweeping, canonicity across a sweep. *)

(* Fill the unique table with throwaway minterm diagrams. *)
let make_garbage m =
  for k = 0 to (1 lsl nvars) - 1 do
    ignore
      (Bdd.conj m
         (List.init nvars (fun j ->
              if (k lsr j) land 1 = 1 then Bdd.var m j else Bdd.nvar m j)))
  done

let test_gc_sweep () =
  let m = Bdd.create_manager () in
  let keep =
    Bdd.dand m (Bdd.var m 0) (Bdd.dor m (Bdd.var m 1) (Bdd.var m 2))
  in
  Bdd.ref m keep;
  make_garbage m;
  let before = Bdd.live_nodes m in
  Bdd.gc m;
  let after = Bdd.live_nodes m in
  Alcotest.(check bool) "sweep reclaimed nodes" true (after < before);
  Alcotest.(check int) "sweep counted" 1 (Bdd.gc_count m);
  Alcotest.(check bool) "peak saw the garbage" true (Bdd.peak_nodes m >= before);
  (* Canonicity survives the sweep: rebuilding the rooted function (and
     fresh garbage) must find the very same nodes again. *)
  let rebuilt =
    Bdd.dand m (Bdd.var m 0) (Bdd.dor m (Bdd.var m 1) (Bdd.var m 2))
  in
  Alcotest.(check bool) "canonical after sweep" true (Bdd.equal rebuilt keep);
  Alcotest.(check bool) "rooted diagram still correct" true
    (eval_bdd [| true; false; true; false; false; false |] keep);
  Bdd.deref m keep

let test_gc_roots_protocol () =
  let m = Bdd.create_manager () in
  let d = Bdd.dand m (Bdd.var m 0) (Bdd.var m 1) in
  Bdd.with_root m d (fun () ->
      Bdd.gc m;
      Alcotest.(check bool) "rooted survives a sweep inside with_root" true
        (Bdd.equal (Bdd.dand m (Bdd.var m 0) (Bdd.var m 1)) d));
  Alcotest.check_raises "with_root released its root"
    (Invalid_argument "Bdd.deref: not a registered root") (fun () ->
      Bdd.deref m d);
  (* Refcounted: two refs need two derefs. *)
  Bdd.ref m d;
  Bdd.ref m d;
  Bdd.deref m d;
  Bdd.gc m;
  Alcotest.(check bool) "still rooted after one deref" true
    (Bdd.equal (Bdd.dand m (Bdd.var m 0) (Bdd.var m 1)) d);
  Bdd.deref m d;
  Alcotest.(check bool) "constants need no roots" true
    (Bdd.with_root m Bdd.one (fun () -> true))

let test_gc_watermark () =
  let m = Bdd.create_manager ~gc_watermark:16 () in
  make_garbage m;
  Bdd.maybe_gc m;
  Alcotest.(check bool) "watermark sweep fired" true (Bdd.gc_count m >= 1);
  let sweeps = Bdd.gc_count m in
  Bdd.maybe_gc m;
  Alcotest.(check int) "no re-sweep below the watermark" sweeps
    (Bdd.gc_count m);
  Alcotest.check_raises "negative watermark rejected"
    (Invalid_argument "Bdd.set_gc_watermark: negative watermark") (fun () ->
      Bdd.set_gc_watermark m (-1))

(* Results computed *across* a sweep must still be correct: the op
   caches are cleared, so recomputation happens against the swept
   table. *)
let prop_gc_transparent =
  QCheck.Test.make ~name:"semantics unchanged across gc" ~count:100
    (QCheck.pair form_arb form_arb) (fun (f, g) ->
      let m = Bdd.create_manager () in
      let df = build m f in
      Bdd.ref m df;
      Bdd.gc m;
      let dg = build m g in
      let both = Bdd.dand m df dg in
      let ok =
        List.for_all
          (fun env -> eval_bdd env both = (eval env f && eval env g))
          (all_envs ())
      in
      Bdd.deref m df;
      ok)

(* ------------------------------------------------------------------ *)
(* Dynamic reordering: semantics, counts, and support are order
   properties of the *function*, so they must survive any sift. *)

let prop_reorder_invariant =
  QCheck.Test.make ~name:"reorder preserves semantics, sat_count and support"
    ~count:100 form_arb (fun f ->
      let m = Bdd.create_manager () in
      let d = build m f in
      Bdd.ref m d;
      let count0 = Bdd.sat_count m ~nvars d in
      let support0 = Bdd.support d in
      Bdd.reorder m;
      let ok_sem =
        List.for_all (fun env -> eval_bdd env d = eval env f) (all_envs ())
      in
      let ok =
        ok_sem
        && Bdd.sat_count m ~nvars d = count0
        && Bdd.support d = support0
      in
      Bdd.deref m d;
      ok)

let prop_reorder_canonical =
  QCheck.Test.make ~name:"rebuilding after reorder finds the same node"
    ~count:100 form_arb (fun f ->
      let m = Bdd.create_manager () in
      let d = build m f in
      Bdd.ref m d;
      Bdd.reorder m;
      let ok = Bdd.equal (build m f) d in
      Bdd.deref m d;
      ok)

let prop_reorder_iter_sat =
  QCheck.Test.make ~name:"iter_sat enumerates the same models after reorder"
    ~count:50 form_arb (fun f ->
      let m = Bdd.create_manager () in
      let d = build m f in
      Bdd.ref m d;
      Bdd.reorder m;
      let seen = Hashtbl.create 64 in
      Bdd.iter_sat m ~nvars d (fun a -> Hashtbl.replace seen (Array.copy a) ());
      let ok =
        List.for_all (fun env -> Hashtbl.mem seen env = eval env f) (all_envs ())
      in
      Bdd.deref m d;
      ok)

(* Mid-computation sweeps: arm a tiny watermark so maybe_reorder fires
   while diagrams are being combined, as it would mid-fixpoint. *)
let prop_reorder_watermark =
  QCheck.Test.make ~name:"watermark-triggered reorders are transparent"
    ~count:50 (QCheck.pair form_arb form_arb) (fun (f, g) ->
      let m = Bdd.create_manager () in
      Bdd.set_reorder_watermark m 8;
      let df = build m f in
      Bdd.ref m df;
      Bdd.maybe_reorder m;
      let dg = build m g in
      Bdd.ref m dg;
      Bdd.maybe_reorder m;
      let both = Bdd.dand m df dg in
      let ok =
        List.for_all
          (fun env -> eval_bdd env both = (eval env f && eval env g))
          (all_envs ())
      in
      Bdd.deref m df;
      Bdd.deref m dg;
      ok)

let prop_transfer_roundtrip =
  QCheck.Test.make ~name:"transfer round-trips canonically" ~count:100
    form_arb (fun f ->
      let src = Bdd.create_manager () in
      let dst = Bdd.create_manager () in
      let d = build src f in
      let d' = Bdd.transfer src dst d in
      (* Same function over the same indices: the copy must land on the
         node the destination would build itself, and the round trip
         must land back on the original. *)
      Bdd.equal d' (build dst f)
      && Bdd.equal (Bdd.transfer dst src d') d)

let prop_transfer_across_orders =
  QCheck.Test.make ~name:"transfer is exact between differently-ordered managers"
    ~count:50 form_arb (fun f ->
      let src = Bdd.create_manager () in
      let dst = Bdd.create_manager () in
      (* Give the destination a sifted (likely different) order first. *)
      let warm = build dst (F_ite (F_var 2, F_var 0, F_xor (F_var 4, F_var 1))) in
      Bdd.ref dst warm;
      Bdd.reorder dst;
      let d = build src f in
      let d' = Bdd.transfer src dst d in
      List.for_all (fun env -> eval_bdd env d' = eval env f) (all_envs ()))

let test_reorder_groups () =
  let m = Bdd.create_manager () in
  (* Pair up (0,1) and (2,3) as the encoder pairs cur/nxt bits. *)
  let d =
    Bdd.dand m
      (Bdd.iff m (Bdd.var m 0) (Bdd.var m 3))
      (Bdd.iff m (Bdd.var m 2) (Bdd.var m 5))
  in
  Bdd.ref m d;
  Bdd.set_var_groups m [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ];
  Bdd.reorder m;
  List.iter
    (fun (a, b) ->
      Alcotest.(check int)
        (Printf.sprintf "pair (%d,%d) stays adjacent" a b)
        (Bdd.level_of_var m a + 1) (Bdd.level_of_var m b))
    [ (0, 1); (2, 3); (4, 5) ];
  (* A +1 within-pair shift of an even-vars-only diagram (the encoder's
     cur -> nxt rename) is still a legal, level-monotonic rename. *)
  let cur_only =
    Bdd.dand m (Bdd.var m 0) (Bdd.dor m (Bdd.var m 2) (Bdd.var m 4))
  in
  let shifted = Bdd.rename m (fun v -> v + 1) cur_only in
  Alcotest.(check (list int)) "shift rename still legal after reorder"
    [ 1; 3; 5 ] (Bdd.support shifted);
  Bdd.deref m d

let test_reorder_shrinks () =
  let m = Bdd.create_manager () in
  (* The classic order-sensitive function: x0·x3 + x1·x4 + x2·x5 is
     linear-sized interleaved and exponential-sized separated. Built
     under the natural (separated) order, sifting must shrink it. *)
  let d =
    Bdd.disj m
      [
        Bdd.dand m (Bdd.var m 0) (Bdd.var m 3);
        Bdd.dand m (Bdd.var m 1) (Bdd.var m 4);
        Bdd.dand m (Bdd.var m 2) (Bdd.var m 5);
      ]
  in
  Bdd.ref m d;
  let before = Bdd.size d in
  Bdd.reorder m;
  let after = Bdd.size d in
  Alcotest.(check bool)
    (Printf.sprintf "sifting shrank %d -> %d" before after)
    true (after < before);
  Alcotest.(check bool) "gain recorded" true (Bdd.reorder_gain m > 0);
  Alcotest.(check int) "run counted" 1 (Bdd.reorder_count m);
  List.iter
    (fun env ->
      Alcotest.(check bool) "still the same function"
        ((env.(0) && env.(3)) || (env.(1) && env.(4)) || (env.(2) && env.(5)))
        (eval_bdd env d))
    (all_envs ());
  Bdd.deref m d

let test_reorder_watermark_guard () =
  let m = Bdd.create_manager () in
  Alcotest.check_raises "negative reorder watermark rejected"
    (Invalid_argument "Bdd.set_reorder_watermark: negative watermark")
    (fun () -> Bdd.set_reorder_watermark m (-1))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_reorder_invariant;
      prop_reorder_canonical;
      prop_reorder_iter_sat;
      prop_reorder_watermark;
      prop_transfer_roundtrip;
      prop_transfer_across_orders;
      prop_cofactor_drops_var;
      prop_restrict_sound;
      prop_restrict_full_care;
      prop_gc_transparent;
      prop_quantification_idempotent;
      prop_quantifier_duality;
      prop_semantics;
      prop_canonical;
      prop_exists;
      prop_forall;
      prop_and_exists;
      prop_sat_count;
      prop_any_sat;
      prop_iter_sat;
    ]

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "support" `Quick test_support;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "rename order violation" `Quick
      test_rename_order_violation;
    Alcotest.test_case "gc sweep" `Quick test_gc_sweep;
    Alcotest.test_case "gc roots protocol" `Quick test_gc_roots_protocol;
    Alcotest.test_case "gc watermark" `Quick test_gc_watermark;
    Alcotest.test_case "reorder groups" `Quick test_reorder_groups;
    Alcotest.test_case "reorder shrinks" `Quick test_reorder_shrinks;
    Alcotest.test_case "reorder watermark guard" `Quick
      test_reorder_watermark_guard;
  ]
  @ qtests

let () = Alcotest.run "bdd" [ ("bdd", suite) ]
