(* Tests for the star coupler / central bus guardian: feature-set
   capabilities, fault gating, the slot-level data path (time windows,
   SOS reshaping, semantic analysis, buffering, collisions), and the
   bit-level leaky-bucket forwarding model. *)

open Ttp

let medl = Medl.uniform ~nodes:4 ()

let coupler ?(feature_set = Guardian.Feature_set.Time_windows) () =
  Guardian.Coupler.create ~feature_set ~channel:0 ~medl ()

let cstate_at ~time ~slot =
  Cstate.make ~global_time:time ~round_slot:slot ~membership:0xF ()

let i_frame ~sender ~time ~slot =
  Frame.make ~kind:Frame.I ~sender ~cstate:(cstate_at ~time ~slot) ()

let cold_frame ~sender ~slot =
  Frame.make ~kind:Frame.Cold_start ~sender ~cstate:(cstate_at ~time:0 ~slot) ()

let attempt ?(sos_timing = 0.0) ?(sos_value = 0.0) frame =
  let base =
    Guardian.Coupler.clean_attempt ~sender:frame.Frame.sender ~frame
      ~crc:(Frame.crc_of ~channel:0 frame)
  in
  { base with Guardian.Coupler.sos_timing; sos_value }

let is_frame = function
  | Guardian.Coupler.Ch_frame _ -> true
  | Guardian.Coupler.Ch_silence | Guardian.Coupler.Ch_noise -> false

(* Synchronize a guardian onto the cluster timeline by feeding it one
   frame it will forward and adopt. *)
let sync t ~time ~slot =
  match
    Guardian.Coupler.step t [ attempt (i_frame ~sender:slot ~time ~slot) ]
  with
  | Guardian.Coupler.Ch_frame _ -> ()
  | _ -> Alcotest.fail "sync frame was not forwarded"

(* ------------------------------------------------------------------ *)
(* Feature sets and fault gating *)

let test_capability_table () =
  let open Guardian.Feature_set in
  Alcotest.(check (list bool)) "time windows"
    [ false; true; true; true ]
    (List.map enforces_time_windows all);
  Alcotest.(check (list bool)) "sos reshaping"
    [ false; false; true; true ]
    (List.map reshapes_sos all);
  Alcotest.(check (list bool)) "frame buffering"
    [ false; false; false; true ]
    (List.map buffers_full_frames all)

let test_fault_gating () =
  (* The out-of-slot fault needs a buffer to replay from. *)
  List.iter
    (fun fs ->
      let possible = Guardian.Fault.possible_for fs in
      let expected = Guardian.Feature_set.buffers_full_frames fs in
      Alcotest.(check bool)
        (Guardian.Feature_set.to_string fs)
        expected
        (List.mem Guardian.Fault.Out_of_slot possible))
    Guardian.Feature_set.all;
  let t = coupler ~feature_set:Guardian.Feature_set.Passive () in
  Alcotest.check_raises "out-of-slot rejected on passive"
    (Invalid_argument
       "Coupler.set_fault: out-of-slot impossible for passive coupler")
    (fun () -> Guardian.Coupler.set_fault t Guardian.Fault.Out_of_slot)

let test_authority_order () =
  let open Guardian.Feature_set in
  (* The rank is the position in [all] (increasing authority). *)
  Alcotest.(check (list int)) "ranks follow [all]" [ 0; 1; 2; 3 ]
    (List.map authority_rank all);
  Alcotest.(check bool) "compare sorts into authority order" true
    (List.sort compare (List.rev all) = all);
  List.iter
    (fun fs -> Alcotest.(check int) (to_string fs) 0 (compare fs fs))
    all;
  Alcotest.(check bool) "passive below full shifting" true
    (compare Passive Full_shifting < 0);
  (* The rank agrees with the capability lattice: strictly more
     capabilities means a strictly higher rank. *)
  let capabilities fs =
    List.length
      (List.filter
         (fun p -> p fs)
         [ enforces_time_windows; reshapes_sos; buffers_full_frames ])
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if capabilities a < capabilities b then
            Alcotest.(check bool)
              (to_string a ^ " < " ^ to_string b)
              true (compare a b < 0))
        all)
    all

let test_string_roundtrips () =
  List.iter
    (fun fs ->
      Alcotest.(check bool) "feature set" true
        (Guardian.Feature_set.of_string (Guardian.Feature_set.to_string fs)
        = Some fs))
    Guardian.Feature_set.all;
  List.iter
    (fun f ->
      Alcotest.(check bool) "fault" true
        (Guardian.Fault.of_string (Guardian.Fault.to_string f) = Some f))
    Guardian.Fault.all

(* ------------------------------------------------------------------ *)
(* Data path *)

let test_empty_slot_is_silence () =
  let t = coupler () in
  Alcotest.(check bool) "silence" true
    (Guardian.Coupler.step t [] = Guardian.Coupler.Ch_silence)

let test_collision_is_noise () =
  let t = coupler ~feature_set:Guardian.Feature_set.Passive () in
  let a = attempt (cold_frame ~sender:0 ~slot:0) in
  let b = attempt (cold_frame ~sender:1 ~slot:1) in
  Alcotest.(check bool) "noise" true
    (Guardian.Coupler.step t [ a; b ] = Guardian.Coupler.Ch_noise)

let test_unsynchronized_guardian_opens_windows () =
  (* Before integration, even a time-windows guardian forwards any
     sender — otherwise no cluster could start. *)
  let t = coupler () in
  Alcotest.(check bool) "not synchronized" false (Guardian.Coupler.synchronized t);
  let out = Guardian.Coupler.step t [ attempt (cold_frame ~sender:2 ~slot:2) ] in
  Alcotest.(check bool) "forwarded" true (is_frame out);
  Alcotest.(check bool) "now synchronized" true (Guardian.Coupler.synchronized t)

let test_time_windows_block_babbler () =
  let t = coupler () in
  (* Synchronize on node 0's frame in slot 0: the guardian now expects
     slot 1 next. *)
  sync t ~time:0 ~slot:0;
  (* Node 3 babbles during node 1's slot: blocked. *)
  let out = Guardian.Coupler.step t [ attempt (i_frame ~sender:3 ~time:10 ~slot:1) ] in
  Alcotest.(check bool) "babbler blocked" true
    (out = Guardian.Coupler.Ch_silence);
  (* The scheduled sender passes. *)
  let out = Guardian.Coupler.step t [ attempt (i_frame ~sender:2 ~time:20 ~slot:2) ] in
  Alcotest.(check bool) "scheduled sender passes" true (is_frame out)

let test_passive_forwards_babbler () =
  let t = coupler ~feature_set:Guardian.Feature_set.Passive () in
  sync t ~time:0 ~slot:0;
  let out = Guardian.Coupler.step t [ attempt (i_frame ~sender:3 ~time:10 ~slot:1) ] in
  Alcotest.(check bool) "babbler propagates on a passive hub" true (is_frame out)

let degradation_of = function
  | Guardian.Coupler.Ch_frame { degradation; _ } -> degradation
  | _ -> Alcotest.fail "expected a frame"

let test_sos_reshaping () =
  (* A marginal frame keeps its degradation through a time-windows
     coupler (receivers will disagree), but a small-shifting coupler
     reshapes it to clean. *)
  let marginal = attempt ~sos_timing:0.6 (cold_frame ~sender:0 ~slot:0) in
  let tw = coupler () in
  Alcotest.(check (float 1e-9)) "time-windows passes SOS through" 0.6
    (degradation_of (Guardian.Coupler.step tw [ marginal ]));
  let ss = coupler ~feature_set:Guardian.Feature_set.Small_shifting () in
  Alcotest.(check (float 1e-9)) "small-shifting reshapes" 0.0
    (degradation_of (Guardian.Coupler.step ss [ marginal ]));
  (* Far-off frames: noise without reshaping, suppressed with it. *)
  let hopeless = attempt ~sos_value:1.5 (cold_frame ~sender:0 ~slot:0) in
  let tw = coupler () in
  Alcotest.(check bool) "hopeless is noise" true
    (Guardian.Coupler.step tw [ hopeless ] = Guardian.Coupler.Ch_noise);
  let ss = coupler ~feature_set:Guardian.Feature_set.Small_shifting () in
  Alcotest.(check bool) "hopeless suppressed by reshaper" true
    (Guardian.Coupler.step ss [ hopeless ] = Guardian.Coupler.Ch_silence)

let test_observe_tolerances () =
  let out =
    Guardian.Coupler.Ch_frame
      { frame = cold_frame ~sender:0 ~slot:0; crc = 0; degradation = 0.5 }
  in
  (match Guardian.Coupler.observe out ~tolerance:0.3 with
  | Controller.Received { valid; _ } ->
      Alcotest.(check bool) "strict receiver rejects" false valid
  | _ -> Alcotest.fail "expected a frame");
  match Guardian.Coupler.observe out ~tolerance:0.7 with
  | Controller.Received { valid; _ } ->
      Alcotest.(check bool) "tolerant receiver accepts" true valid
  | _ -> Alcotest.fail "expected a frame"

let test_semantic_analysis_blocks_masquerade () =
  let t = coupler ~feature_set:Guardian.Feature_set.Full_shifting () in
  (* Node 2 sends a cold-start frame claiming slot 0: blocked (the
     guardian knows the physical port). *)
  let out = Guardian.Coupler.step t [ attempt (cold_frame ~sender:2 ~slot:0) ] in
  Alcotest.(check bool) "masquerading cold start blocked" true
    (out = Guardian.Coupler.Ch_silence);
  (* An honest cold-start frame passes. *)
  let out = Guardian.Coupler.step t [ attempt (cold_frame ~sender:2 ~slot:2) ] in
  Alcotest.(check bool) "honest cold start passes" true (is_frame out)

let test_semantic_analysis_blocks_wrong_cstate () =
  let t = coupler ~feature_set:Guardian.Feature_set.Full_shifting () in
  sync t ~time:0 ~slot:0;
  (* Guardian timeline is now (time 10, slot 1). A frame from node 1
     with a wrong global time is blocked. *)
  let out =
    Guardian.Coupler.step t [ attempt (i_frame ~sender:1 ~time:999 ~slot:1) ]
  in
  Alcotest.(check bool) "wrong C-state blocked" true
    (out = Guardian.Coupler.Ch_silence);
  (* Note: after a silent slot the guardian still advances. *)
  let out =
    Guardian.Coupler.step t [ attempt (i_frame ~sender:2 ~time:20 ~slot:2) ]
  in
  Alcotest.(check bool) "correct C-state passes" true (is_frame out)

let test_faults_override_data_path () =
  let t = coupler () in
  Guardian.Coupler.set_fault t Guardian.Fault.Silence;
  Alcotest.(check bool) "silence fault" true
    (Guardian.Coupler.step t [ attempt (cold_frame ~sender:0 ~slot:0) ]
    = Guardian.Coupler.Ch_silence);
  Guardian.Coupler.set_fault t Guardian.Fault.Bad_frame;
  Alcotest.(check bool) "bad-frame fault" true
    (Guardian.Coupler.step t [] = Guardian.Coupler.Ch_noise)

let test_out_of_slot_replays_buffer () =
  let t = coupler ~feature_set:Guardian.Feature_set.Full_shifting () in
  let original = cold_frame ~sender:0 ~slot:0 in
  ignore (Guardian.Coupler.step t [ attempt original ]);
  Alcotest.(check bool) "buffered" true
    (Guardian.Coupler.buffered_frame t <> None);
  Guardian.Coupler.set_fault t Guardian.Fault.Out_of_slot;
  (match Guardian.Coupler.step t [] with
  | Guardian.Coupler.Ch_frame { frame; _ } ->
      Alcotest.(check bool) "replayed the buffered frame" true (frame = original)
  | _ -> Alcotest.fail "expected a replayed frame");
  (* An empty buffer replays nothing. *)
  let t2 = coupler ~feature_set:Guardian.Feature_set.Full_shifting () in
  Guardian.Coupler.set_fault t2 Guardian.Fault.Out_of_slot;
  Alcotest.(check bool) "empty buffer silent" true
    (Guardian.Coupler.step t2 [] = Guardian.Coupler.Ch_silence)

let test_lower_authority_does_not_buffer () =
  let t = coupler ~feature_set:Guardian.Feature_set.Small_shifting () in
  ignore (Guardian.Coupler.step t [ attempt (cold_frame ~sender:0 ~slot:0) ]);
  Alcotest.(check bool) "no buffer below full shifting" true
    (Guardian.Coupler.buffered_frame t = None)

(* ------------------------------------------------------------------ *)
(* Leaky bucket *)

let prop_leaky_bucket_bound =
  QCheck.Test.make
    ~name:"measured occupancy is bounded by the analytic B_min" ~count:200
    QCheck.(
      triple (QCheck.float_range 0.5 2.0) (QCheck.float_range 0.5 2.0)
        (int_range 8 2076))
    (fun (node_rate, guardian_rate, frame_bits) ->
      let le = 4 in
      let measured =
        Guardian.Leaky_bucket.required_buffer ~node_rate ~guardian_rate
          ~frame_bits ~le
      in
      let bound =
        Guardian.Leaky_bucket.analytic_bound ~node_rate ~guardian_rate
          ~frame_bits ~le
      in
      float_of_int measured <= bound +. 1.0)

let prop_leaky_bucket_no_underrun_at_minimal_start =
  QCheck.Test.make ~name:"minimal start avoids underrun" ~count:200
    QCheck.(
      triple (QCheck.float_range 0.5 2.0) (QCheck.float_range 0.5 2.0)
        (int_range 8 512))
    (fun (node_rate, guardian_rate, frame_bits) ->
      let start =
        Guardian.Leaky_bucket.minimal_start ~node_rate ~guardian_rate
          ~frame_bits ~le:4
      in
      let r =
        Guardian.Leaky_bucket.simulate ~node_rate ~guardian_rate ~frame_bits
          ~start_after:start
      in
      not r.Guardian.Leaky_bucket.underrun)

let test_equal_rates_need_only_le () =
  let r =
    Guardian.Leaky_bucket.required_buffer ~node_rate:1.0 ~guardian_rate:1.0
      ~frame_bits:2076 ~le:4
  in
  Alcotest.(check int) "just the line-encoding bits" 4 r

let test_fast_guardian_underrun_detected () =
  (* A guardian twice as fast that starts immediately runs dry. *)
  let r =
    Guardian.Leaky_bucket.simulate ~node_rate:1.0 ~guardian_rate:2.0
      ~frame_bits:64 ~start_after:1
  in
  Alcotest.(check bool) "underrun" true r.Guardian.Leaky_bucket.underrun

let test_buffer_grows_with_delta () =
  let need d =
    Guardian.Leaky_bucket.required_buffer ~node_rate:1.0 ~guardian_rate:(1.0 +. d)
      ~frame_bits:2076 ~le:4
  in
  Alcotest.(check bool) "monotone in Delta" true
    (need 0.001 <= need 0.01 && need 0.01 <= need 0.1 && need 0.1 <= need 0.5)

(* ------------------------------------------------------------------ *)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_leaky_bucket_bound; prop_leaky_bucket_no_underrun_at_minimal_start ]

let () =
  Alcotest.run "guardian"
    [
      ( "feature sets",
        [
          Alcotest.test_case "capability table" `Quick test_capability_table;
          Alcotest.test_case "fault gating" `Quick test_fault_gating;
          Alcotest.test_case "authority order" `Quick test_authority_order;
          Alcotest.test_case "string roundtrips" `Quick test_string_roundtrips;
        ] );
      ( "data path",
        [
          Alcotest.test_case "empty slot" `Quick test_empty_slot_is_silence;
          Alcotest.test_case "collision" `Quick test_collision_is_noise;
          Alcotest.test_case "unsynchronized windows open" `Quick
            test_unsynchronized_guardian_opens_windows;
          Alcotest.test_case "time windows block babbler" `Quick
            test_time_windows_block_babbler;
          Alcotest.test_case "passive forwards babbler" `Quick
            test_passive_forwards_babbler;
          Alcotest.test_case "sos reshaping" `Quick test_sos_reshaping;
          Alcotest.test_case "observe tolerances" `Quick test_observe_tolerances;
          Alcotest.test_case "semantic analysis: masquerade" `Quick
            test_semantic_analysis_blocks_masquerade;
          Alcotest.test_case "semantic analysis: wrong C-state" `Quick
            test_semantic_analysis_blocks_wrong_cstate;
          Alcotest.test_case "fault modes override" `Quick
            test_faults_override_data_path;
          Alcotest.test_case "out-of-slot replay" `Quick
            test_out_of_slot_replays_buffer;
          Alcotest.test_case "no buffer below full shifting" `Quick
            test_lower_authority_does_not_buffer;
        ] );
      ( "leaky bucket",
        [
          Alcotest.test_case "equal rates need only le" `Quick
            test_equal_rates_need_only_le;
          Alcotest.test_case "underrun detected" `Quick
            test_fast_guardian_underrun_detected;
          Alcotest.test_case "buffer grows with Delta" `Quick
            test_buffer_grows_with_delta;
        ] );
      ("properties", qtests);
    ]
