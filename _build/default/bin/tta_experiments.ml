(* Run the experiment registry: every reproduced result of the paper as
   a structured paper-vs-measured row (see DESIGN.md's per-experiment
   index and EXPERIMENTS.md for the recorded paper-scale outcomes).

     tta_experiments            # the fast set (numeric + simulator)
     tta_experiments --all      # also the model-checking verdicts
     tta_experiments --nodes 4  # paper-scale model checking (minutes)
*)

let () =
  let all = Array.exists (( = ) "--all") Sys.argv in
  let nodes =
    let rec find i =
      if i >= Array.length Sys.argv - 1 then 3
      else if Sys.argv.(i) = "--nodes" then int_of_string Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let outcomes =
    if all then begin
      Printf.printf
        "running the full registry at %d nodes (model checking included)...\n%!"
        nodes;
      (* Depths chosen to cover the minimal counterexamples at the
         requested scale. *)
      let unsafe_depth = 100 in
      Core.Experiments.all ~nodes ~safe_depth:100 ~unsafe_depth ()
    end
    else Core.Experiments.quick ()
  in
  let failures = ref 0 in
  List.iter
    (fun o ->
      if not o.Core.Experiments.matches then incr failures;
      Format.printf "%a@.@." Core.Experiments.pp_outcome o)
    outcomes;
  Printf.printf "%d/%d experiments reproduced\n" (List.length outcomes - !failures)
    (List.length outcomes);
  exit (if !failures = 0 then 0 else 1)
