bin/sat_solve.ml: List Printf Sat Sys Unix
