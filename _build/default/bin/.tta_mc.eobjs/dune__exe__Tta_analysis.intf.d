bin/tta_analysis.mli:
