bin/tta_sim.mli:
