bin/tta_experiments.mli:
