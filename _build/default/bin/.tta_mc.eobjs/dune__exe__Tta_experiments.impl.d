bin/tta_experiments.ml: Array Core Format List Printf Sys
