bin/tta_mc.mli:
