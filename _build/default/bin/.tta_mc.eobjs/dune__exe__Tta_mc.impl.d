bin/tta_mc.ml: Arg Array Cmd Cmdliner Guardian Printf Symkit Term Tta_model Unix
