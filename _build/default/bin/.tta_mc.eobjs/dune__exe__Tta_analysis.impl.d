bin/tta_analysis.ml: Analysis Arg Cmd Cmdliner Format Guardian List Printf Term
