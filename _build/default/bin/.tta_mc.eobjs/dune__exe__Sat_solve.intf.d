bin/sat_solve.mli:
