bin/tta_sim.ml: Arg Cmd Cmdliner Format Guardian Medl Printf Sim Term Ttp
