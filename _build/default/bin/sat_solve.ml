(* A standalone DIMACS SAT solver front-end over the library's CDCL
   engine, speaking the conventional s/v output format so results can
   be compared with any other solver.

     sat_solve problem.cnf
     echo "p cnf 2 2\n1 2 0\n-1 0" | sat_solve -
*)

let read_stdin () =
  let rec go acc =
    match input_line stdin with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
        prerr_endline "usage: sat_solve <file.cnf | ->";
        exit 2
  in
  let instance =
    try
      if path = "-" then Sat.Dimacs.of_lines (read_stdin ())
      else Sat.Dimacs.of_file path
    with
    | Sat.Dimacs.Parse_error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 2
    | Sys_error msg ->
        prerr_endline msg;
        exit 2
  in
  let solver = Sat.Dimacs.load instance in
  let t0 = Unix.gettimeofday () in
  let result = Sat.solve solver in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "c %s\nc %.3fs\n" (Sat.stats solver) dt;
  match result with
  | Sat.Sat ->
      print_endline "s SATISFIABLE";
      let lits = Sat.Dimacs.model_of instance solver in
      print_string "v";
      List.iter (fun l -> Printf.printf " %d" l) lits;
      print_endline " 0";
      exit 10
  | Sat.Unsat ->
      print_endline "s UNSATISFIABLE";
      exit 20
