(* Model-check the TTA star-coupler configurations of the paper.

   Examples:
     tta_mc --config full-shifting            # expect a counterexample
     tta_mc --config passive --engine bdd     # expect a safety proof
     tta_mc --config full-shifting --no-cold-start-duplication
*)

let run config_name engine_name nodes max_depth no_cs_dup oos_budget
    export_smv =
  let feature_set =
    match Guardian.Feature_set.of_string config_name with
    | Some fs -> fs
    | None ->
        prerr_endline
          "unknown --config (expected passive | time-windows | \
           small-shifting | full-shifting)";
        exit 2
  in
  let engine =
    match engine_name with
    | "bmc" -> Tta_model.Runner.Sat_bmc
    | "bdd" -> Tta_model.Runner.Bdd_reach
    | "induction" -> Tta_model.Runner.Sat_induction
    | _ ->
        prerr_endline "unknown --engine (expected bmc | bdd | induction)";
        exit 2
  in
  let cfg =
    Tta_model.Configs.make ~nodes
      ?oos_budget:
        (match (feature_set, oos_budget) with
        | Guardian.Feature_set.Full_shifting, b -> b
        | _, _ -> None)
      ~forbid_cold_start_duplication:no_cs_dup feature_set
  in
  Printf.printf "configuration: %s (%d nodes)\n" (Tta_model.Configs.name cfg)
    nodes;
  (match export_smv with
  | Some path ->
      Tta_model.Runner.export_smv cfg path;
      Printf.printf "model exported to %s (SMV input language)\n" path
  | None -> ());
  Printf.printf "engine: %s, depth bound %d\n%!"
    (Tta_model.Runner.engine_to_string engine)
    max_depth;
  let t0 = Unix.gettimeofday () in
  let verdict = Tta_model.Runner.check ~engine ~max_depth cfg in
  let dt = Unix.gettimeofday () -. t0 in
  (match verdict with
  | Tta_model.Runner.Holds { detail } ->
      Printf.printf "PROPERTY HOLDS: %s\n" detail
  | Tta_model.Runner.Unknown { detail } ->
      Printf.printf "UNDECIDED: %s\n" detail
  | Tta_model.Runner.Violated { trace; model } ->
      Printf.printf
        "PROPERTY VIOLATED: a single coupler fault froze an integrated \
         node.\nCounterexample (%d steps):\n%s"
        (Array.length trace)
        (Tta_model.Runner.describe_trace model trace ~nodes);
      (match Symkit.Trace.validate model trace with
      | Ok () -> Printf.printf "(trace replays cleanly against the model)\n"
      | Error e -> Printf.printf "WARNING: trace validation failed: %s\n" e));
  Printf.printf "elapsed: %.2fs\n" dt

let () =
  let open Cmdliner in
  let config =
    Arg.(
      value
      & opt string "full-shifting"
      & info [ "c"; "config" ] ~docv:"CONFIG"
          ~doc:
            "Star-coupler feature set: passive, time-windows, \
             small-shifting, or full-shifting.")
  in
  let engine =
    Arg.(
      value & opt string "bmc"
      & info [ "e"; "engine" ] ~docv:"ENGINE"
          ~doc:
            "Model-checking engine: bmc (SAT), bdd (reachability), or \
             induction (SAT k-induction).")
  in
  let export_smv =
    Arg.(
      value
      & opt (some string) None
      & info [ "export-smv" ] ~docv:"FILE"
          ~doc:
            "Also write the model to FILE in the SMV input language \
             (NuSMV dialect), with the property as an INVARSPEC.")
  in
  let nodes =
    Arg.(
      value & opt int 4
      & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Cluster size (paper: 4).")
  in
  let depth =
    Arg.(
      value & opt int 24
      & info [ "d"; "depth" ] ~docv:"K"
          ~doc:"Unrolling/iteration bound for the engines.")
  in
  let no_cs_dup =
    Arg.(
      value & flag
      & info
          [ "no-cold-start-duplication" ]
          ~doc:
            "Prohibit replaying buffered cold-start frames (forces the \
             paper's second counterexample).")
  in
  let oos_budget =
    Arg.(
      value
      & opt (some int) (Some 1)
      & info [ "oos-budget" ] ~docv:"K"
          ~doc:
            "Limit on out-of-slot errors for full-shifting couplers \
             (paper: 1).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "tta_mc"
         ~doc:"Model-check TTA star-coupler fault-tolerance configurations")
      Term.(
        const run $ config $ engine $ nodes $ depth $ no_cs_dup $ oos_budget
        $ export_smv)
  in
  exit (Cmd.eval cmd)
