(** Configurations of the formal TTA star-topology model.

    A configuration fixes the cluster size, the star-coupler feature
    set (which determines the fault modes the couplers can exhibit, per
    Section 4.1) and the auxiliary constraints the paper adds when
    extracting readable counterexamples. *)

(** Ablations of individual start-up rules, to show which mechanisms
    are load-bearing for the safety property. *)
type protocol_variant =
  | Standard
  | No_big_bang
      (** integrate on the {e first} cold-start frame instead of the
          second *)
  | No_listen_hold
      (** drop the rule "stay in listen if a cold-start frame is on the
          channel even when the timeout just reached zero" — removing it
          lets two cold-start epochs coexist, and the safety property
          fails with {e no} coupler fault at all *)
  | No_timeout_stagger
      (** every node's listen timeout is the round length + 1 instead of
          being staggered by node id *)

val variant_to_string : protocol_variant -> string

type t = {
  nodes : int;  (** cluster size; the paper uses 4 (nodes A, B, C, D) *)
  feature_set : Guardian.Feature_set.t;
  single_fault : bool;
      (** at most one coupler faulty at a time (TTP/C fault hypothesis) *)
  oos_budget : int option;
      (** if [Some k], at most [k] slots may carry an out-of-slot
          replay over the whole run (the paper uses 1) *)
  forbid_cold_start_duplication : bool;
      (** disallow replaying a buffered cold-start frame; forces the
          paper's second counterexample (duplicated C-state frame) *)
  variant : protocol_variant;
}

val default_nodes : int

val make :
  ?nodes:int ->
  ?single_fault:bool ->
  ?oos_budget:int ->
  ?forbid_cold_start_duplication:bool ->
  ?variant:protocol_variant ->
  Guardian.Feature_set.t ->
  t
(** @raise Invalid_argument below 2 nodes. *)

(** The four configurations compared in Section 5: *)

val passive : ?nodes:int -> unit -> t
val time_windows : ?nodes:int -> unit -> t
val small_shifting : ?nodes:int -> unit -> t

val full_shifting :
  ?nodes:int -> ?oos_budget:int -> ?forbid_cold_start_duplication:bool ->
  unit -> t
(** The failing configuration; defaults to the paper's one-error
    budget. Use {!make} directly for an unlimited budget. *)

val name : t -> string
