(** The formal model of Section 4: a TTP/C cluster on a star topology
    with two redundant star couplers, transliterated from the paper's
    SMV constraints into the symkit DSL.

    One transition of the model corresponds to one TDMA slot. Node ids
    and slot numbers are 1-based, as in the paper. Abstractions follow
    the paper exactly: application data is not modeled; frames on a
    channel are abstracted to their type ([none], [cold_start],
    [c_state], [bad_frame], [other]) plus the slot id they claim; clock
    synchronization is folded into the slot-per-transition abstraction.

    Documented deviations from the paper's (partially elided) text:

    - The paper lists the nondeterministic successor sets of [freeze],
      [init] and [active] but elides the clique-counter update rules
      and the active/passive checkpoint; we reconstruct them from the
      TTP/C specification as described in DESIGN.md: counters reset at
      the node's own slot, a slot counts as agreed if either channel
      carries a frame whose claimed id matches the receiver's slot
      counter, and the clique test at the checkpoint freezes the node
      only when failed frames dominate ([failed' > 0] and
      [agreed' <= failed']).
    - The paper's property excludes host-commanded freezes; we simply
      do not model them (the nondeterministic [active -> freeze] arc is
      replaced by the clique-test freeze), and we track integration
      with a latch variable so the bad predicate is a state formula.
    - A node leaving cold start for listen keeps maintaining its slot
      counter (harmless; the value is dead until re-integration). *)

open Symkit

let node_var i name = Printf.sprintf "n%d_%s" i name

let states =
  [ "freeze"; "init"; "listen"; "cold_start"; "active"; "passive";
    "await"; "test"; "download" ]

let frame_types = [ "none"; "cold_start"; "c_state"; "bad_frame"; "other" ]

(* Expression-level description of one channel: the frame type and the
   claimed sender id currently on the bus. *)
type channel_exprs = { frame : Expr.t; id : Expr.t }

(* BDD variable-order strategies for the model, compared by the bench
   harness (E15). Each is a permutation of the declared variables. *)
let var_order_strategies (cfg : Configs.t) =
  let n = cfg.Configs.nodes in
  let node_fields =
    [ "state"; "slot"; "big_bang"; "listen_timeout"; "agreed"; "failed";
      "integrated" ]
  in
  let coupler_vars =
    List.concat_map
      (fun k ->
        [ Printf.sprintf "c%d_fault" k; Printf.sprintf "c%d_buf_frame" k;
          Printf.sprintf "c%d_buf_id" k ])
      [ 0; 1 ]
  in
  let budget = match cfg.Configs.oos_budget with Some _ -> [ "oos_budget" ] | None -> [] in
  let node_major =
    List.concat_map
      (fun i -> List.map (node_var i) node_fields)
      (List.init n (fun i -> i + 1))
  in
  let field_major =
    List.concat_map
      (fun field ->
        List.map (fun i -> node_var i field) (List.init n (fun i -> i + 1)))
      node_fields
  in
  [
    ("declaration (node-major, couplers last)", node_major @ coupler_vars @ budget);
    ("couplers first", coupler_vars @ budget @ node_major);
    ("field-major (same field of all nodes adjacent)",
     field_major @ coupler_vars @ budget);
  ]

let model (cfg : Configs.t) : Model.t =
  let n = cfg.nodes in
  let node_ids = List.init n (fun i -> i + 1) in
  let open Expr in
  let open Expr.Syntax in
  (* ---------------- variable declarations ---------------- *)
  let node_vars i =
    [
      (node_var i "state", Model.Enum states);
      (node_var i "slot", Model.Range (1, n));
      (node_var i "big_bang", Model.Bool);
      (node_var i "listen_timeout", Model.Range (0, 2 * n));
      (node_var i "agreed", Model.Range (0, n));
      (node_var i "failed", Model.Range (0, n));
      (node_var i "integrated", Model.Bool);
    ]
  in
  let coupler_vars k =
    [
      (Printf.sprintf "c%d_fault" k,
       Model.Enum [ "none"; "silence"; "bad_frame"; "out_of_slot" ]);
      (Printf.sprintf "c%d_buf_frame" k, Model.Enum frame_types);
      (Printf.sprintf "c%d_buf_id" k, Model.Range (0, n));
    ]
  in
  let budget_vars =
    match cfg.oos_budget with
    | Some k -> [ ("oos_budget", Model.Range (0, k)) ]
    | None -> []
  in
  let vars =
    List.concat_map node_vars node_ids
    @ coupler_vars 0 @ coupler_vars 1 @ budget_vars
  in
  (* ---------------- shorthand accessors ---------------- *)
  let st i = cur (node_var i "state") in
  let st' i = nxt (node_var i "state") in
  let slot i = cur (node_var i "slot") in
  let slot' i = nxt (node_var i "slot") in
  let big_bang i = cur (node_var i "big_bang") in
  let big_bang' i = nxt (node_var i "big_bang") in
  let lt i = cur (node_var i "listen_timeout") in
  let lt' i = nxt (node_var i "listen_timeout") in
  let agreed i = cur (node_var i "agreed") in
  let agreed' i = nxt (node_var i "agreed") in
  let failed i = cur (node_var i "failed") in
  let failed' i = nxt (node_var i "failed") in
  let integrated i = cur (node_var i "integrated") in
  let integrated' i = nxt (node_var i "integrated") in
  let fault k = cur (Printf.sprintf "c%d_fault" k) in
  (* Coupler faults have no update rule: the fault variable is free to
     change every step, subject only to the invariants below (so a
     fault may appear, change kind, or vanish at any slot, as in the
     paper). *)
  let buf_frame k = cur (Printf.sprintf "c%d_buf_frame" k) in
  let buf_frame' k = nxt (Printf.sprintf "c%d_buf_frame" k) in
  let buf_id k = cur (Printf.sprintf "c%d_buf_id" k) in
  let buf_id' k = nxt (Printf.sprintf "c%d_buf_id" k) in
  let next_slot i = ite (slot i == int n) (int 1) (slot i + int 1) in
  (* ---------------- channel contents ---------------- *)
  (* Who is sending this slot (per the paper's frame_sent): an active
     node in its own slot sends a C-state frame; a cold-starting node
     in its own slot sends a cold-start frame. *)
  let sending_cs i = (st i == sym "active") && (slot i == int i) in
  let sending_cold i = (st i == sym "cold_start") && (slot i == int i) in
  let sending i = sending_cs i || sending_cold i in
  let collision =
    disj
      (List.concat_map
         (fun i ->
           List.filter_map
             (fun j ->
               if Stdlib.( > ) j i then Some (sending i && sending j)
               else None)
             node_ids)
         node_ids)
  in
  (* What the couplers receive from the nodes, before faults. *)
  let raw_frame =
    cases
      ((collision, sym "bad_frame")
      :: List.concat_map
           (fun i ->
             [ (sending_cold i, sym "cold_start");
               (sending_cs i, sym "c_state") ])
           node_ids)
      (sym "none")
  in
  let raw_id =
    cases
      ((collision, int 0)
      :: List.map (fun i -> (sending i, int i)) node_ids)
      (int 0)
  in
  (* What channel [k] carries after its coupler's fault mode: the
     paper's channel_frame / channel id definitions. *)
  let channel k =
    {
      frame =
        cases
          [
            (fault k == sym "silence", sym "none");
            (fault k == sym "bad_frame", sym "bad_frame");
            (fault k == sym "out_of_slot", buf_frame k);
          ]
          raw_frame;
      id =
        cases
          [
            (fault k == sym "silence", int 0);
            (fault k == sym "bad_frame", int 0);
            (fault k == sym "out_of_slot", buf_id k);
          ]
          raw_id;
    }
  in
  let ch0 = channel 0 and ch1 = channel 1 in
  let cold_on_bus =
    (ch0.frame == sym "cold_start") || (ch1.frame == sym "cold_start")
  in
  let cstate_on_bus =
    (ch0.frame == sym "c_state") || (ch1.frame == sym "c_state")
  in
  (* ---------------- per-node constraints ---------------- *)
  let node_constraints i =
    let observing e = member e [ Sym "cold_start"; Sym "active"; Sym "passive" ] in
    (* Slot judgment for the clique counters: a slot is agreed when
       either channel carries a decodable frame claiming the id this
       node expects in its current slot; it is failed when decodable
       frames are present but none matches (an incorrect frame, e.g. a
       C-state disagreeing with the receiver's). Pure noise counts as
       neither: TTP/C only judges slots in which a frame is awaited,
       so noise in a quiet slot must not erode membership — otherwise a
       single bad-frame coupler fault could freeze healthy nodes even
       with a passive hub, contradicting the paper's verified result. *)
    let decodable (ch : channel_exprs) =
      member ch.frame [ Sym "c_state"; Sym "cold_start"; Sym "other" ]
    in
    let correct_on (ch : channel_exprs) = decodable ch && (ch.id == slot i) in
    let agreed_now = correct_on ch0 || correct_on ch1 in
    let failed_now = not_ agreed_now && (decodable ch0 || decodable ch1) in
    let clamp_inc e = ite (e == int n) (int n) (e + int 1) in
    (* Integration conditions (paper 4.2.3). The No_big_bang ablation
       integrates on the first cold-start frame instead of requiring a
       previously seen one. *)
    let integrating_on_c_state = (st i == sym "listen") && cstate_on_bus in
    let integrating_on_cold_start =
      match cfg.Configs.variant with
      | Configs.No_big_bang -> (st i == sym "listen") && cold_on_bus
      | Configs.Standard | Configs.No_listen_hold | Configs.No_timeout_stagger
        ->
          (st i == sym "listen") && cold_on_bus && big_bang i
    in
    let integrating = integrating_on_c_state || integrating_on_cold_start in
    let id_on_bus =
      cases
        [
          (ch0.frame == sym "c_state", ch0.id);
          (ch1.frame == sym "c_state", ch1.id);
          (ch0.frame == sym "cold_start", ch0.id);
          (ch1.frame == sym "cold_start", ch1.id);
        ]
        (int 0)
    in
    let checkpoint = next_slot i == int i in
    let clique_ok = (failed' i == int 0) || (agreed' i > failed' i) in
    [
      (* FREEZE / INIT / diagnostic states: nondeterministic host
         decisions. *)
      (st i == sym "freeze")
      ==> member (st' i) [ Sym "freeze"; Sym "init"; Sym "await"; Sym "test" ];
      (st i == sym "init")
      ==> member (st' i) [ Sym "freeze"; Sym "init"; Sym "listen" ];
      (st i == sym "await") ==> member (st' i) [ Sym "await"; Sym "freeze" ];
      (st i == sym "test") ==> member (st' i) [ Sym "test"; Sym "freeze" ];
      (st i == sym "download")
      ==> member (st' i) [ Sym "download"; Sym "freeze" ];
      (* Big-bang flag: set while listening when a cold-start frame is
         on either channel; cleared outside listen. *)
      big_bang' i
      <=> ((st' i == sym "listen") && (st i == sym "listen")
          && (big_bang i || cold_on_bus));
      (* Listen timeout (paper 4.2.3): reset on entering listen and on
         good traffic; otherwise count down to zero. *)
      lt' i
      == cases
           [
             ( ((st i != sym "listen") && (st' i == sym "listen"))
               || member ch0.frame [ Sym "cold_start"; Sym "other" ]
               || member ch1.frame [ Sym "cold_start"; Sym "other" ],
               int
                 (match cfg.Configs.variant with
                 | Configs.No_timeout_stagger -> Stdlib.( + ) n 1
                 | Configs.Standard | Configs.No_big_bang
                 | Configs.No_listen_hold ->
                     Stdlib.( + ) i n) );
             (lt i != int 0, lt i - int 1);
           ]
           (int 0);
      (* LISTEN transitions. The No_listen_hold ablation removes the
         rule that a cold-start frame on the channel holds the node in
         listen when its timeout just expired. *)
      (st i == sym "listen")
      ==> (st' i
          == cases
               ((integrating, sym "passive")
               :: ((match cfg.Configs.variant with
                   | Configs.No_listen_hold -> []
                   | Configs.Standard | Configs.No_big_bang
                   | Configs.No_timeout_stagger ->
                       [ (cold_on_bus, sym "listen") ])
                  @ [ (lt i == int 0, sym "cold_start") ]))
               (sym "listen"));
      (* Slot adoption on integration: the frame's id plus one. *)
      ((st i == sym "listen") && integrating)
      ==> (slot' i == ite (id_on_bus == int n) (int 1) (id_on_bus + int 1));
      (* COLD START entry and slot maintenance. *)
      ((st i != sym "cold_start") && (st' i == sym "cold_start"))
      ==> (slot' i == int i);
      ((st i == sym "cold_start")
      && member (st' i) [ Sym "cold_start"; Sym "active"; Sym "listen" ])
      ==> (slot' i == next_slot i);
      (* Cold-start round check (paper 4.2.4), using the updated
         counters. *)
      (st i == sym "cold_start")
      ==> (st' i
          == cases
               [
                 (not_ checkpoint, sym "cold_start");
                 ( (agreed' i <= int 1) && (failed' i == int 0),
                   sym "cold_start" );
                 (agreed' i > failed' i, sym "active");
               ]
               (sym "listen"));
      (* ACTIVE: stays active unless the clique test at the checkpoint
         fails. Host-initiated demotion to passive is deliberately not
         modeled: together with indefinite passive lingering it lets
         the cluster starve into an all-passive silent state, after
         which a later cold-start epoch necessarily clashes with the
         stale passive timelines and freezes a healthy node with no
         coupler fault at all — a scenario outside the paper's
         single-fault analysis. *)
      (st i == sym "active")
      ==> ite
            (checkpoint && not_ clique_ok)
            (st' i == sym "freeze")
            (st' i == sym "active");
      (* PASSIVE: promotion to active is automatic at a checkpoint that
         saw correct traffic dominate (the controller's job, not a host
         choice — see the note above); frozen when failures dominate. *)
      (st i == sym "passive")
      ==> ite checkpoint
            (ite (not_ clique_ok)
               (st' i == sym "freeze")
               (ite
                  (agreed' i > failed' i)
                  (st' i == sym "active")
                  (st' i == sym "passive")))
            (st' i == sym "passive");
      (* Slot maintenance while synchronized. *)
      (member (st i) [ Sym "active"; Sym "passive" ]
      && member (st' i) [ Sym "active"; Sym "passive" ])
      ==> (slot' i == next_slot i);
      (* Clique counters: reset outside the counting states and at the
         start of the node's own round; otherwise accumulate this
         slot's judgment (clamped at the round length). *)
      agreed' i
      == cases
           [
             (not_ (observing (st i)), int 0);
             (slot i == int i, ite agreed_now (int 1) (int 0));
             (agreed_now, clamp_inc (agreed i));
           ]
           (agreed i);
      failed' i
      == cases
           [
             (not_ (observing (st i)), int 0);
             (slot i == int i, ite failed_now (int 1) (int 0));
             (failed_now, clamp_inc (failed i));
           ]
           (failed i);
      (* Integration latch for the safety property. *)
      integrated' i
      <=> (integrated i
          || member (st' i) [ Sym "active"; Sym "passive" ]);
    ]
  in
  (* ---------------- coupler constraints ---------------- *)
  let coupler_constraints k =
    let ch = channel k in
    [
      (* The buffer retains the last identified frame on the channel
         (paper 4.2.7). *)
      buf_id' k == ite (ch.id == int 0) (buf_id k) ch.id;
      buf_frame' k == ite (ch.id == int 0) (buf_frame k) ch.frame;
    ]
  in
  (* Invariants asserted at the initial state and re-asserted on the
     primed variables of every transition. *)
  let invariants =
    let feature_gate k =
      if Guardian.Feature_set.buffers_full_frames cfg.feature_set then []
      else [ fault k != sym "out_of_slot" ]
    in
    let single_fault =
      if cfg.single_fault then
        [ (fault 0 == sym "none") || (fault 1 == sym "none") ]
      else []
    in
    let no_cs_dup =
      if cfg.forbid_cold_start_duplication then
        List.map
          (fun k ->
            not_ ((fault k == sym "out_of_slot")
                 && (buf_frame k == sym "cold_start")))
          [ 0; 1 ]
      else []
    in
    (* An out-of-slot error may only be active while budget remains;
       without this invariant the state (budget = 0, fault =
       out_of_slot) would be reachable but have no successor (the
       decrement leaves the budget's domain). *)
    let budget_guard =
      match cfg.oos_budget with
      | None -> []
      | Some _ ->
          [
            ((fault 0 == sym "out_of_slot") || (fault 1 == sym "out_of_slot"))
            ==> (cur "oos_budget" > int 0);
          ]
    in
    feature_gate 0 @ feature_gate 1 @ single_fault @ no_cs_dup @ budget_guard
  in
  let budget_constraints =
    match cfg.oos_budget with
    | None -> []
    | Some _ ->
        let oos_now =
          (fault 0 == sym "out_of_slot") || (fault 1 == sym "out_of_slot")
        in
        [
          nxt "oos_budget"
          == ite oos_now (cur "oos_budget" - int 1) (cur "oos_budget");
        ]
  in
  (* ---------------- initial states ---------------- *)
  let init =
    List.concat_map
      (fun i ->
        [
          st i == sym "freeze";
          slot i == int i;
          not_ (big_bang i);
          lt i == int 0;
          agreed i == int 0;
          failed i == int 0;
          not_ (integrated i);
        ])
      node_ids
    @ List.concat_map
        (fun k ->
          [
            fault k == sym "none";
            buf_frame k == sym "none";
            buf_id k == int 0;
          ])
        [ 0; 1 ]
    @ (match cfg.oos_budget with
      | Some k -> [ cur "oos_budget" == int k ]
      | None -> [])
    @ invariants
  in
  let trans =
    List.concat_map node_constraints node_ids
    @ coupler_constraints 0 @ coupler_constraints 1
    @ budget_constraints
    @ List.map Expr.prime invariants
  in
  Model.make ~name:(Configs.name cfg) ~vars ~init ~trans
