(** Properties checked against the formal model. *)

val node_var : int -> string -> string

val integrated_node_frozen : nodes:int -> Symkit.Expr.t
(** The paper's correctness criterion (Section 5.1): a node that has
    integrated (reached active or passive) is in the freeze state —
    reachability of this predicate refutes the safety property. *)

(** Sanity probes, checked as reachability targets so the engines
    produce witness traces: *)

val some_node_integrated : nodes:int -> Symkit.Expr.t
val some_node_active : nodes:int -> Symkit.Expr.t
val all_nodes_active : nodes:int -> Symkit.Expr.t
val node_in_state : node:int -> string -> Symkit.Expr.t

val replay_active : Symkit.Expr.t
(** An out-of-slot replay is armed on some channel. *)
