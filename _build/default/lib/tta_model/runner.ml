(** Running the paper's experiments against the formal model with the
    different engines. *)

open Symkit

type engine = Bdd_reach | Sat_bmc | Sat_induction

let engine_to_string = function
  | Bdd_reach -> "bdd-reachability"
  | Sat_bmc -> "sat-bmc"
  | Sat_induction -> "sat-k-induction"

type verdict =
  | Holds of { detail : string }
      (** the safety property holds (proved, or no counterexample up to
          the bound for BMC) *)
  | Violated of { trace : Model.state array; model : Model.t }
  | Unknown of { detail : string }

let check ?(engine = Sat_bmc) ?(max_depth = 24) (cfg : Configs.t) =
  let model = Build.model cfg in
  let bad = Props.integrated_node_frozen ~nodes:cfg.nodes in
  match engine with
  | Bdd_reach -> (
      let enc = Enc.create (Bdd.create_manager ()) model in
      match Reach.check ~max_iterations:max_depth enc ~bad with
      | Reach.Safe stats ->
          Holds
            {
              detail =
                Printf.sprintf "proved safe: %d iterations, %.0f reachable states"
                  stats.Reach.iterations stats.Reach.reachable_states;
            }
      | Reach.Unsafe (trace, stats) ->
          ignore stats;
          Violated { trace; model }
      | Reach.Depth_exhausted stats ->
          Unknown
            {
              detail =
                Printf.sprintf "no fixpoint after %d iterations"
                  stats.Reach.iterations;
            })
  | Sat_bmc -> (
      let enc = Enc.create (Bdd.create_manager ()) model in
      match Bmc.check ~max_depth enc ~bad with
      | Bmc.Counterexample trace -> Violated { trace; model }
      | Bmc.No_counterexample d ->
          Holds
            {
              detail = Printf.sprintf "no counterexample up to depth %d" d;
            })
  | Sat_induction -> (
      let enc = Enc.create (Bdd.create_manager ()) model in
      match Induction.check ~max_k:max_depth enc ~bad with
      | Induction.Refuted trace -> Violated { trace; model }
      | Induction.Proved k ->
          Holds { detail = Printf.sprintf "k-inductive at k = %d" k }
      | Induction.Unknown k ->
          Unknown
            {
              detail =
                Printf.sprintf
                  "not k-inductive up to k = %d (and no counterexample)" k;
            })

(* Export the configuration's model in the SMV input language, with the
   safety property as an INVARSPEC. *)
let export_smv (cfg : Configs.t) path =
  let model = Build.model cfg in
  Smv_export.to_file
    ~invarspec:(Props.integrated_node_frozen ~nodes:cfg.Configs.nodes)
    model path

(* Reachability of a probe condition (sanity experiments): returns the
   witness trace if the condition is reachable. *)
let witness ?(max_depth = 24) (cfg : Configs.t) probe =
  let model = Build.model cfg in
  let enc = Enc.create (Bdd.create_manager ()) model in
  match Bmc.check ~max_depth enc ~bad:probe with
  | Bmc.Counterexample trace -> Some (trace, model)
  | Bmc.No_counterexample _ -> None

(* A compact, human-oriented rendering of a counterexample: per step,
   each node's protocol state and slot, plus the coupler fault
   activity. Used by the CLI and EXPERIMENTS.md. *)
let describe_trace (model : Model.t) (trace : Model.state array) ~nodes =
  let buf = Buffer.create 1024 in
  let get s name = Model.state_get model s name in
  let node_letter i = String.make 1 (Char.chr (Char.code 'A' + i - 1)) in
  Array.iteri
    (fun step s ->
      Buffer.add_string buf (Printf.sprintf "step %2d:" (step + 1));
      for i = 1 to nodes do
        let state =
          match get s (Build.node_var i "state") with
          | Symkit.Expr.Sym st -> st
          | v -> Symkit.Expr.value_to_string v
        in
        let slot =
          match get s (Build.node_var i "slot") with
          | Symkit.Expr.Int k -> k
          | _ -> -1
        in
        Buffer.add_string buf
          (Printf.sprintf " %s=%s/s%d" (node_letter i) state slot)
      done;
      (match (get s "c0_fault", get s "c1_fault") with
      | Symkit.Expr.Sym "none", Symkit.Expr.Sym "none" -> ()
      | f0, f1 ->
          Buffer.add_string buf
            (Printf.sprintf "  [faults: c0=%s c1=%s]"
               (Symkit.Expr.value_to_string f0)
               (Symkit.Expr.value_to_string f1)));
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf
