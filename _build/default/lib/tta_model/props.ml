(** Properties checked against the formal model. *)

open Symkit

let node_var = Build.node_var

let ids nodes = List.init nodes (fun i -> i + 1)

(* The paper's correctness criterion (Section 5.1): since nodes are
   modeled not to fail, no single coupler fault may force a node that
   has integrated (reached active or passive) into the freeze state.
   The integration latch makes this a plain state predicate. *)
let integrated_node_frozen ~nodes =
  let node i =
    let open Expr in
    let open Expr.Syntax in
    cur (node_var i "integrated")
    && (cur (node_var i "state") == sym "freeze")
  in
  Expr.disj (List.map node (ids nodes))

(* Sanity probes, used by tests to show the model has the expected
   behaviours (reachability of these is checked as "bad" states so the
   engines produce witness traces). *)

let some_node_integrated ~nodes =
  Expr.disj (List.map (fun i -> Expr.cur (node_var i "integrated")) (ids nodes))

let some_node_active ~nodes =
  let node i =
    let open Expr in
    let open Expr.Syntax in
    cur (node_var i "state") == sym "active"
  in
  Expr.disj (List.map node (ids nodes))

let all_nodes_active ~nodes =
  let node i =
    let open Expr in
    let open Expr.Syntax in
    cur (node_var i "state") == sym "active"
  in
  Expr.conj (List.map node (ids nodes))

let node_in_state ~node state =
  let open Expr in
  let open Expr.Syntax in
  cur (node_var node "state") == sym state

(* An out-of-slot replay is armed on some channel. *)
let replay_active =
  let open Expr in
  let open Expr.Syntax in
  (cur "c0_fault" == sym "out_of_slot") || (cur "c1_fault" == sym "out_of_slot")
