lib/tta_model/build.mli: Configs Symkit
