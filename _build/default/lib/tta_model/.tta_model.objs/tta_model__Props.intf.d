lib/tta_model/props.mli: Symkit
