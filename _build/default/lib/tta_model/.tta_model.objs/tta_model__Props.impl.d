lib/tta_model/props.ml: Build Expr List Symkit
