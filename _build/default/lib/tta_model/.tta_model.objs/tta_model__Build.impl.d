lib/tta_model/build.ml: Configs Expr Guardian List Model Printf Stdlib Symkit
