lib/tta_model/runner.ml: Array Bdd Bmc Buffer Build Char Configs Enc Induction Model Printf Props Reach Smv_export String Symkit
