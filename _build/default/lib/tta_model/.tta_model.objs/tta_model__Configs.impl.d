lib/tta_model/configs.ml: Guardian Printf
