lib/tta_model/configs.mli: Guardian
