lib/tta_model/exec.mli: Configs Random Symkit
