lib/tta_model/exec.ml: Array Build Configs Expr Guardian Hashtbl List Model Option Printf Random Symkit
