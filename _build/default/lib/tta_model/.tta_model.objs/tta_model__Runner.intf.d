lib/tta_model/runner.mli: Configs Symkit
