(** Running the paper's experiments against the formal model. *)

type engine = Bdd_reach | Sat_bmc | Sat_induction

val engine_to_string : engine -> string

type verdict =
  | Holds of { detail : string }
      (** proved safe (BDD fixpoint) or no counterexample up to the
          bound (BMC) *)
  | Violated of { trace : Symkit.Model.state array; model : Symkit.Model.t }
  | Unknown of { detail : string }

val check : ?engine:engine -> ?max_depth:int -> Configs.t -> verdict
(** Check the paper's safety property against a configuration.
    [max_depth] bounds BMC unrolling / BDD iterations. *)

val witness :
  ?max_depth:int -> Configs.t -> Symkit.Expr.t ->
  (Symkit.Model.state array * Symkit.Model.t) option
(** Shortest trace reaching a probe condition, if one exists within the
    bound. *)

val describe_trace :
  Symkit.Model.t -> Symkit.Model.state array -> nodes:int -> string
(** Compact human-oriented rendering: per step, each node's protocol
    state and slot plus the coupler fault activity. *)

val export_smv : Configs.t -> string -> unit
(** Write the configuration's model to a file in the SMV input
    language, with the safety property as an INVARSPEC — for inspection
    in the paper's original notation or independent validation by an
    external SMV implementation. *)
