(* An executable twin of the formal model.

   [successors cfg state] enumerates exactly the successor states the
   transition relation of [Build.model cfg] admits — hand-coded from
   the same Section 4 semantics, but written as a program rather than
   as constraints. The test suite checks conformance state-by-state:
   for sampled states, the set produced here must equal the symbolic
   image computed by the BDD engine. Two independent encodings of the
   same semantics agreeing on every sampled state is the strongest
   cross-check the reproduction has.

   States are [Symkit.Model.state] arrays in the model's variable
   order; this module builds an index table once per configuration. *)

open Symkit

type ctx = {
  cfg : Configs.t;
  model : Model.t;
  idx : (string, int) Hashtbl.t;
}

let make_ctx cfg =
  let model = Build.model cfg in
  let idx = Hashtbl.create 64 in
  List.iteri
    (fun i (v, _) -> Hashtbl.add idx v i)
    model.Model.vars;
  { cfg; model; idx }

let model ctx = ctx.model

let geti ctx s name =
  match s.(Hashtbl.find ctx.idx name) with
  | Expr.Int i -> i
  | v -> invalid_arg ("Exec: expected int at " ^ name ^ ", got "
                      ^ Expr.value_to_string v)

let gets ctx s name =
  match s.(Hashtbl.find ctx.idx name) with
  | Expr.Sym v -> v
  | v -> invalid_arg ("Exec: expected sym at " ^ name ^ ", got "
                      ^ Expr.value_to_string v)

let getb ctx s name =
  match s.(Hashtbl.find ctx.idx name) with
  | Expr.Bool b -> b
  | v -> invalid_arg ("Exec: expected bool at " ^ name ^ ", got "
                      ^ Expr.value_to_string v)

let nv = Build.node_var

(* ------------------------------------------------------------------ *)
(* Channel contents, from the current state only. *)

type chan = { frame : string; id : int }

let channels ctx s =
  let n = ctx.cfg.Configs.nodes in
  let sending i =
    let st = gets ctx s (nv i "state") and slot = geti ctx s (nv i "slot") in
    if slot <> i then None
    else
      match st with
      | "active" -> Some "c_state"
      | "cold_start" -> Some "cold_start"
      | _ -> None
  in
  let senders =
    List.filter_map
      (fun i -> Option.map (fun f -> (i, f)) (sending i))
      (List.init n (fun i -> i + 1))
  in
  let raw =
    match senders with
    | [] -> { frame = "none"; id = 0 }
    | [ (i, f) ] -> { frame = f; id = i }
    | _ :: _ :: _ -> { frame = "bad_frame"; id = 0 }
  in
  let chan k =
    match gets ctx s (Printf.sprintf "c%d_fault" k) with
    | "silence" -> { frame = "none"; id = 0 }
    | "bad_frame" -> { frame = "bad_frame"; id = 0 }
    | "out_of_slot" ->
        {
          frame = gets ctx s (Printf.sprintf "c%d_buf_frame" k);
          id = geti ctx s (Printf.sprintf "c%d_buf_id" k);
        }
    | _ -> raw
  in
  (chan 0, chan 1)

(* ------------------------------------------------------------------ *)
(* Per-node successor fragments. *)

type node_next = {
  st' : string;
  slot' : int list;  (** the admissible values (singleton when bound) *)
  big_bang' : bool;
  lt' : int;
  agreed' : int;
  failed' : int;
  integrated' : bool;
}

let node_nexts ctx s (ch0, ch1) i =
  let cfg = ctx.cfg in
  let n = cfg.Configs.nodes in
  let st = gets ctx s (nv i "state") in
  let slot = geti ctx s (nv i "slot") in
  let big_bang = getb ctx s (nv i "big_bang") in
  let lt = geti ctx s (nv i "listen_timeout") in
  let agreed = geti ctx s (nv i "agreed") in
  let failed = geti ctx s (nv i "failed") in
  let integrated = getb ctx s (nv i "integrated") in
  let all_slots = List.init n (fun k -> k + 1) in
  let next_slot = if slot = n then 1 else slot + 1 in
  let decodable c = List.mem c.frame [ "c_state"; "cold_start"; "other" ] in
  let correct c = decodable c && c.id = slot in
  let agreed_now = correct ch0 || correct ch1 in
  let failed_now =
    (not agreed_now) && (decodable ch0 || decodable ch1)
  in
  let observing st = List.mem st [ "cold_start"; "active"; "passive" ] in
  let clamp_inc x = if x = n then n else x + 1 in
  (* Counters are functions of the current state only. *)
  let agreed' =
    if not (observing st) then 0
    else if slot = i then if agreed_now then 1 else 0
    else if agreed_now then clamp_inc agreed
    else agreed
  in
  let failed' =
    if not (observing st) then 0
    else if slot = i then if failed_now then 1 else 0
    else if failed_now then clamp_inc failed
    else failed
  in
  let cold_on_bus = ch0.frame = "cold_start" || ch1.frame = "cold_start" in
  let cstate_on_bus = ch0.frame = "c_state" || ch1.frame = "c_state" in
  let reset_value =
    match cfg.Configs.variant with
    | Configs.No_timeout_stagger -> n + 1
    | _ -> i + n
  in
  (* Everything after the state choice is deterministic. *)
  let finish st' slots' =
    let big_bang' =
      st' = "listen" && st = "listen"
      && (big_bang || cold_on_bus)
    in
    let lt' =
      if
        (st <> "listen" && st' = "listen")
        || List.mem ch0.frame [ "cold_start"; "other" ]
        || List.mem ch1.frame [ "cold_start"; "other" ]
      then reset_value
      else if lt <> 0 then lt - 1
      else 0
    in
    let integrated' =
      integrated || st' = "active" || st' = "passive"
    in
    { st'; slot' = slots'; big_bang'; lt'; agreed'; failed'; integrated' }
  in
  match st with
  | "freeze" ->
      List.map
        (fun st' ->
          if st' = "cold_start" then finish st' [ i ] else finish st' all_slots)
        [ "freeze"; "init"; "await"; "test" ]
  | "init" ->
      List.map (fun st' -> finish st' all_slots) [ "freeze"; "init"; "listen" ]
  | "await" -> List.map (fun st' -> finish st' all_slots) [ "await"; "freeze" ]
  | "test" -> List.map (fun st' -> finish st' all_slots) [ "test"; "freeze" ]
  | "download" ->
      List.map (fun st' -> finish st' all_slots) [ "download"; "freeze" ]
  | "listen" ->
      let integrating_cold =
        match cfg.Configs.variant with
        | Configs.No_big_bang -> cold_on_bus
        | _ -> cold_on_bus && big_bang
      in
      let integrating = cstate_on_bus || integrating_cold in
      let hold =
        match cfg.Configs.variant with
        | Configs.No_listen_hold -> false
        | _ -> cold_on_bus
      in
      if integrating then begin
        let id_on_bus =
          if ch0.frame = "c_state" then ch0.id
          else if ch1.frame = "c_state" then ch1.id
          else if ch0.frame = "cold_start" then ch0.id
          else ch1.id
        in
        let adopted = if id_on_bus = n then 1 else id_on_bus + 1 in
        [ finish "passive" [ adopted ] ]
      end
      else if hold then [ finish "listen" all_slots ]
      else if lt = 0 then [ finish "cold_start" [ i ] ]
      else [ finish "listen" all_slots ]
  | "cold_start" ->
      let checkpoint = next_slot = i in
      let st' =
        if not checkpoint then "cold_start"
        else if agreed' <= 1 && failed' = 0 then "cold_start"
        else if agreed' > failed' then "active"
        else "listen"
      in
      [ finish st' [ next_slot ] ]
  | "active" ->
      let checkpoint = next_slot = i in
      let clique_ok = failed' = 0 || agreed' > failed' in
      if checkpoint && not clique_ok then [ finish "freeze" all_slots ]
      else [ finish "active" [ next_slot ] ]
  | "passive" ->
      let checkpoint = next_slot = i in
      let clique_ok = failed' = 0 || agreed' > failed' in
      if checkpoint then
        if not clique_ok then [ finish "freeze" all_slots ]
        else if agreed' > failed' then [ finish "active" [ next_slot ] ]
        else [ finish "passive" [ next_slot ] ]
      else [ finish "passive" [ next_slot ] ]
  | other -> invalid_arg ("Exec: unknown state " ^ other)

(* ------------------------------------------------------------------ *)
(* Coupler fragments. *)

let coupler_next ctx s (ch0, ch1) k =
  let ch = if k = 0 then ch0 else ch1 in
  let buf_id = geti ctx s (Printf.sprintf "c%d_buf_id" k) in
  let buf_frame = gets ctx s (Printf.sprintf "c%d_buf_frame" k) in
  if ch.id = 0 then (buf_id, buf_frame) else (ch.id, ch.frame)

(* Admissible (fault0', fault1') pairs given the invariants and the
   post-state buffers/budget. *)
let fault_pairs ctx s (buf0', buf1') budget' =
  let cfg = ctx.cfg in
  let all = [ "none"; "silence"; "bad_frame"; "out_of_slot" ] in
  let allowed f =
    f <> "out_of_slot"
    || Guardian.Feature_set.buffers_full_frames cfg.Configs.feature_set
  in
  let pair_ok f0 f1 =
    allowed f0 && allowed f1
    && ((not cfg.Configs.single_fault) || f0 = "none" || f1 = "none")
    && (not cfg.Configs.forbid_cold_start_duplication
       || ((f0 <> "out_of_slot" || buf0' <> "cold_start")
          && (f1 <> "out_of_slot" || buf1' <> "cold_start")))
    && (match cfg.Configs.oos_budget with
       | None -> true
       | Some _ ->
           (f0 <> "out_of_slot" && f1 <> "out_of_slot") || budget' > 0)
  in
  ignore s;
  List.concat_map
    (fun f0 -> List.filter_map (fun f1 -> if pair_ok f0 f1 then Some (f0, f1) else None) all)
    all

(* ------------------------------------------------------------------ *)

let cartesian lists =
  List.fold_right
    (fun options acc ->
      List.concat_map (fun o -> List.map (fun tail -> o :: tail) acc) options)
    lists [ [] ]

(* All successor states of [s] under the model's transition relation. *)
let successors ctx s =
  let n = ctx.cfg.Configs.nodes in
  let chans = channels ctx s in
  let per_node =
    List.map
      (fun i ->
        List.concat_map
          (fun frag ->
            List.map (fun sl -> (i, frag, sl)) frag.slot')
          (node_nexts ctx s chans i))
      (List.init n (fun i -> i + 1))
  in
  let buf0' = coupler_next ctx s chans 0 in
  let buf1' = coupler_next ctx s chans 1 in
  let budget' =
    match ctx.cfg.Configs.oos_budget with
    | None -> 0
    | Some _ ->
        let b = geti ctx s "oos_budget" in
        let oos_now =
          gets ctx s "c0_fault" = "out_of_slot"
          || gets ctx s "c1_fault" = "out_of_slot"
        in
        if oos_now then b - 1 else b
  in
  if budget' < 0 then [] (* excluded by the budget domain *)
  else
    let faults = fault_pairs ctx s (snd buf0', snd buf1') budget' in
    List.concat_map
      (fun node_choice ->
        List.map
          (fun (f0, f1) ->
            let s' = Array.copy s in
            let set name v = s'.(Hashtbl.find ctx.idx name) <- v in
            List.iter
              (fun (i, frag, sl) ->
                set (nv i "state") (Expr.Sym frag.st');
                set (nv i "slot") (Expr.Int sl);
                set (nv i "big_bang") (Expr.Bool frag.big_bang');
                set (nv i "listen_timeout") (Expr.Int frag.lt');
                set (nv i "agreed") (Expr.Int frag.agreed');
                set (nv i "failed") (Expr.Int frag.failed');
                set (nv i "integrated") (Expr.Bool frag.integrated'))
              node_choice;
            set "c0_buf_id" (Expr.Int (fst buf0'));
            set "c0_buf_frame" (Expr.Sym (snd buf0'));
            set "c1_buf_id" (Expr.Int (fst buf1'));
            set "c1_buf_frame" (Expr.Sym (snd buf1'));
            set "c0_fault" (Expr.Sym f0);
            set "c1_fault" (Expr.Sym f1);
            (match ctx.cfg.Configs.oos_budget with
            | Some _ -> set "oos_budget" (Expr.Int budget')
            | None -> ());
            s')
          faults)
      (cartesian per_node)

(* The unique initial state. *)
let initial ctx =
  let n = ctx.cfg.Configs.nodes in
  let s =
    Array.make (List.length ctx.model.Model.vars) (Expr.Bool false)
  in
  let set name v = s.(Hashtbl.find ctx.idx name) <- v in
  for i = 1 to n do
    set (nv i "state") (Expr.Sym "freeze");
    set (nv i "slot") (Expr.Int i);
    set (nv i "big_bang") (Expr.Bool false);
    set (nv i "listen_timeout") (Expr.Int 0);
    set (nv i "agreed") (Expr.Int 0);
    set (nv i "failed") (Expr.Int 0);
    set (nv i "integrated") (Expr.Bool false)
  done;
  for k = 0 to 1 do
    set (Printf.sprintf "c%d_fault" k) (Expr.Sym "none");
    set (Printf.sprintf "c%d_buf_frame" k) (Expr.Sym "none");
    set (Printf.sprintf "c%d_buf_id" k) (Expr.Int 0)
  done;
  (match ctx.cfg.Configs.oos_budget with
  | Some k -> set "oos_budget" (Expr.Int k)
  | None -> ());
  s

(* Random-walk falsification: run [walks] uniform random walks of
   [depth] steps from the initial state and count how many hit a state
   satisfying [bad]. This is, in miniature, the software-implemented
   fault injection methodology the paper's predecessors used — and the
   bench harness uses it to show why the paper reached for a model
   checker instead: the replay failure needs a precise conjunction of
   nondeterministic choices that random exploration essentially never
   makes, while BMC derives it in seconds. *)
let random_walks ctx rng ~walks ~depth ~bad =
  let hits = ref 0 in
  for _ = 1 to walks do
    let s = ref (initial ctx) in
    let found = ref false in
    (try
       for _ = 1 to depth do
         (match successors ctx !s with
         | [] -> raise Exit
         | succs ->
             s := List.nth succs (Random.State.int rng (List.length succs)));
         if bad !s then begin
           found := true;
           raise Exit
         end
       done
     with Exit -> ());
    if !found then incr hits
  done;
  !hits

(* A uniformly random state of the declared space (not necessarily
   reachable), for conformance sampling. *)
let random_state ctx rng =
  Array.of_list
    (List.map
       (fun (_, d) ->
         let values = Model.domain_values d in
         List.nth values (Random.State.int rng (List.length values)))
       ctx.model.Model.vars)
