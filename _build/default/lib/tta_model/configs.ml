(** Configurations of the formal TTA star-topology model.

    A configuration fixes the cluster size, the star-coupler feature
    set (which determines the fault modes the couplers can exhibit, per
    Section 4.1 of the paper) and the auxiliary constraints the paper
    adds when extracting readable counterexamples: the single-fault
    hypothesis, a budget on out-of-slot errors, and the prohibition of
    cold-start duplication used to obtain the second trace. *)

(* Ablations of individual start-up rules, to show which mechanisms
   are load-bearing for the safety property (beyond the coupler
   authority the paper varies). *)
type protocol_variant =
  | Standard
  | No_big_bang
      (** integrate on the {e first} cold-start frame instead of the
          second *)
  | No_listen_hold
      (** drop the rule "stay in listen if a cold-start frame is on
          the channel even when the timeout just reached zero" *)
  | No_timeout_stagger
      (** every node's listen timeout is the round length + 1 instead
          of being staggered by node id *)

let variant_to_string = function
  | Standard -> "standard"
  | No_big_bang -> "no-big-bang"
  | No_listen_hold -> "no-listen-hold"
  | No_timeout_stagger -> "no-timeout-stagger"

type t = {
  nodes : int;  (** cluster size; the paper uses 4 (nodes A, B, C, D) *)
  feature_set : Guardian.Feature_set.t;
  single_fault : bool;
      (** at most one coupler faulty at a time (TTP/C fault hypothesis) *)
  oos_budget : int option;
      (** if [Some k], at most [k] slots may carry an out-of-slot
          replay over the whole run (the paper uses 1) *)
  forbid_cold_start_duplication : bool;
      (** disallow replaying a buffered cold-start frame; forces the
          paper's second counterexample (duplicated C-state frame) *)
  variant : protocol_variant;
}

let default_nodes = 4

let make ?(nodes = default_nodes) ?(single_fault = true) ?oos_budget
    ?(forbid_cold_start_duplication = false) ?(variant = Standard) feature_set
    =
  if nodes < 2 then invalid_arg "Configs.make: need at least 2 nodes";
  { nodes; feature_set; single_fault; oos_budget;
    forbid_cold_start_duplication; variant }

(* The four configurations compared in Section 5. *)

let passive ?nodes () = make ?nodes Guardian.Feature_set.Passive
let time_windows ?nodes () = make ?nodes Guardian.Feature_set.Time_windows
let small_shifting ?nodes () = make ?nodes Guardian.Feature_set.Small_shifting

(* The failing configuration, with the paper's trace-extraction
   constraint of at most one out-of-slot error. Use {!make} directly
   for an unlimited error budget. *)
let full_shifting ?nodes ?(oos_budget = 1)
    ?(forbid_cold_start_duplication = false) () =
  make ?nodes ~oos_budget ~forbid_cold_start_duplication
    Guardian.Feature_set.Full_shifting

let name cfg =
  Printf.sprintf "%s%s%s%s"
    (Guardian.Feature_set.to_string cfg.feature_set)
    (match cfg.oos_budget with
    | Some k -> Printf.sprintf "+oos<=%d" k
    | None -> "")
    (if cfg.forbid_cold_start_duplication then "+no-cs-dup" else "")
    (match cfg.variant with
    | Standard -> ""
    | v -> "+" ^ variant_to_string v)
