(** The formal model of Section 4: a TTP/C cluster on a star topology
    with two redundant star couplers, transliterated from the paper's
    SMV constraints into the symkit DSL.

    One transition of the model corresponds to one TDMA slot. Node ids
    and slot numbers are 1-based, as in the paper. Frames on a channel
    are abstracted to their type ([none], [cold_start], [c_state],
    [bad_frame], [other]) plus the slot id they claim.

    Where the paper elides rules, the reconstruction is documented in
    the implementation header and in DESIGN.md: clique-counter updates,
    the judgment of noise-only slots, forced passive-to-active
    promotion, and the absence of host-initiated demotion. *)

val node_var : int -> string -> string
(** [node_var i field] is the state-variable name of node [i]'s
    [field], e.g. [node_var 2 "state"] = ["n2_state"]. *)

val states : string list
(** The nine protocol states, as enum values. *)

val frame_types : string list
(** The channel-frame abstraction: none, cold_start, c_state,
    bad_frame, other. *)

val model : Configs.t -> Symkit.Model.t
(** Build the full symbolic model for a configuration. *)

val var_order_strategies : Configs.t -> (string * string list) list
(** Named BDD variable-order strategies (each a permutation of the
    model's variables), compared by the benchmark harness. *)
