(** An executable twin of the formal model.

    Hand-coded from the same Section 4 semantics as {!Build.model}, but
    written as a successor-enumerating program rather than as
    constraints. The test suite checks conformance state-by-state: for
    sampled states, {!successors} must produce exactly the symbolic
    image computed by the BDD engine — two independent encodings of one
    semantics agreeing pointwise. *)

type ctx

val make_ctx : Configs.t -> ctx
val model : ctx -> Symkit.Model.t

val initial : ctx -> Symkit.Model.state
(** The model's unique initial state. *)

val successors : ctx -> Symkit.Model.state -> Symkit.Model.state list
(** Every successor the transition relation admits (with multiplicity
    free of duplicates only up to the enumeration order; callers
    needing sets should deduplicate). States outside the invariants
    (e.g. an exhausted out-of-slot budget with the fault still active)
    correctly have no successors. *)

val random_walks :
  ctx -> Random.State.t -> walks:int -> depth:int ->
  bad:(Symkit.Model.state -> bool) -> int
(** Random-walk falsification (miniature software-implemented fault
    injection): how many of [walks] uniform random walks of [depth]
    steps from the initial state hit a bad state. The bench harness
    contrasts this with the model checker, which derives the failure
    deterministically. *)

val random_state : ctx -> Random.State.t -> Symkit.Model.state
(** A uniformly random state of the declared space (not necessarily
    reachable), for conformance sampling. *)
