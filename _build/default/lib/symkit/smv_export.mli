(** Export a model to the SMV input language (NuSMV dialect).

    Lets the models built here — in particular the paper's TTA model —
    be inspected in the notation of the original paper or validated by
    an external SMV implementation. Variables become [VAR]
    declarations, init constraints [INIT] sections, transition
    constraints [TRANS] sections, and the optional safety property an
    [INVARSPEC]. *)

val pp_expr : Format.formatter -> Expr.t -> unit
val pp_model : ?invarspec:Expr.t -> Format.formatter -> Model.t -> unit

val to_string : ?invarspec:Expr.t -> Model.t -> string

val to_file : ?invarspec:Expr.t -> Model.t -> string -> unit
(** [invarspec bad] emits [INVARSPEC !(bad)]. *)
