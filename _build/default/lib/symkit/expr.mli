(** Expressions over finite-domain state variables.

    The modeling language of the kernel — an OCaml-embedded analogue of
    the SMV constraint style used in the paper: expressions mention
    current-state variables ({!cur}) and next-state (primed) variables
    ({!nxt}); a model is a list of boolean constraint expressions over
    them (see {!Model}). *)

type value =
  | Int of int
  | Sym of string  (** a symbolic enumeration constant *)
  | Bool of bool

type t =
  | Const of value
  | Cur of string  (** current-state variable *)
  | Nxt of string  (** next-state (primed) variable *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | Eq of t * t
  | Lt of t * t
  | Add of t * t
  | Sub of t * t
  | Ite of t * t * t
  | Member of t * value list  (** set membership *)

exception Type_error of string
(** Raised by evaluation when an operator meets a value of the wrong
    sort (e.g. [<] on symbols). *)

val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Type_error} with a formatted message. *)

val value_equal : value -> value -> bool
val pp_value : Format.formatter -> value -> unit
val value_to_string : value -> string

(** {1 Constructors} *)

val tt : t
val ff : t
val int : int -> t
val sym : string -> t
val cur : string -> t
val nxt : string -> t
val not_ : t -> t
val ite : t -> t -> t -> t
val member : t -> value list -> t

val conj : t list -> t
(** Conjunction of a list ({!tt} for the empty list). *)

val disj : t list -> t
(** Disjunction of a list ({!ff} for the empty list). *)

val cases : (t * t) list -> t -> t
(** [cases [c1, e1; c2, e2] default] evaluates to the first [ei] whose
    [ci] holds, or [default] — SMV's [case] construct. *)

(** Infix operators for readable models. Precedence warning: OCaml
    derives an operator's precedence from its first character, so
    [==>] and [<=>] bind {e tighter} than [&&] and [||]; always
    parenthesize the antecedent of an implication. *)
module Syntax : sig
  val ( == ) : t -> t -> t
  val ( != ) : t -> t -> t
  val ( < ) : t -> t -> t
  val ( <= ) : t -> t -> t
  val ( > ) : t -> t -> t
  val ( >= ) : t -> t -> t
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( && ) : t -> t -> t
  val ( || ) : t -> t -> t
  val ( ==> ) : t -> t -> t
  val ( <=> ) : t -> t -> t
end

(** {1 Inspection and evaluation} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val prime : t -> t
(** Replace every current-state variable by its primed version; used to
    re-assert a state invariant on the post-state of every transition.
    @raise Invalid_argument on expressions already mentioning primed
    variables. *)

val eval :
  lookup_cur:(string -> value) -> lookup_nxt:(string -> value) -> t -> value
(** Concrete evaluation; the explicit-state engine and trace validation
    are built on this. @raise Type_error on ill-sorted expressions. *)

val vars : t -> string list * string list
(** Variables mentioned, as (current, primed), each sorted. *)
