(** Expressions over finite-domain state variables.

    This is the modeling language of the kernel — an OCaml-embedded
    analogue of the SMV constraint style used in the paper: expressions
    mention current-state variables ([cur]) and next-state variables
    ([nxt]); a model is a list of boolean constraint expressions for the
    initial states and for the transition relation. *)

type value =
  | Int of int
  | Sym of string
  | Bool of bool

type t =
  | Const of value
  | Cur of string  (** current-state variable *)
  | Nxt of string  (** next-state (primed) variable *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | Eq of t * t
  | Lt of t * t
  | Add of t * t
  | Sub of t * t
  | Ite of t * t * t
  | Member of t * value list  (** set membership *)

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let value_equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Sym x, Sym y -> String.equal x y
  | Bool x, Bool y -> x = y
  | (Int _ | Sym _ | Bool _), _ -> false

let pp_value ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Sym s -> Format.pp_print_string ppf s
  | Bool b -> Format.pp_print_bool ppf b

let value_to_string v = Format.asprintf "%a" pp_value v

(* Convenience constructors, so models read close to the paper's
   notation. The infix operators live in {!Syntax} to avoid shadowing
   the standard ones; open it locally when writing a model. *)

let tt = Const (Bool true)
let ff = Const (Bool false)
let int n = Const (Int n)
let sym s = Const (Sym s)
let cur v = Cur v
let nxt v = Nxt v
let not_ a = Not a
let ite c t e = Ite (c, t, e)
let member e vs = Member (e, vs)

let conj = function
  | [] -> tt
  | e :: es -> List.fold_left (fun a b -> And (a, b)) e es

let disj = function
  | [] -> ff
  | e :: es -> List.fold_left (fun a b -> Or (a, b)) e es

(* Multi-way case expression: [cases [c1, e1; c2, e2] default] evaluates
   to the first [ei] whose [ci] holds, or [default]. *)
let cases branches default =
  List.fold_right (fun (c, e) acc -> Ite (c, e, acc)) branches default

(* Precedence warning: OCaml derives an operator's precedence from its
   first character, so [==>] and [<=>] bind *tighter* than [&&] and
   [||]. Writing [a && b ==> c] therefore means [a && (b ==> c)].
   Always parenthesize the antecedent of an implication. When in doubt,
   prefer the prefix constructors ([conj], [disj], [cases], [Imp]). *)
module Syntax = struct
  let ( == ) a b = Eq (a, b)
  let ( != ) a b = Not (Eq (a, b))
  let ( < ) a b = Lt (a, b)
  let ( <= ) a b = Or (Lt (a, b), Eq (a, b))
  let ( > ) a b = Lt (b, a)
  let ( >= ) a b = Or (Lt (b, a), Eq (a, b))
  let ( + ) a b = Add (a, b)
  let ( - ) a b = Sub (a, b)
  let ( && ) a b = And (a, b)
  let ( || ) a b = Or (a, b)
  let ( ==> ) a b = Imp (a, b)
  let ( <=> ) a b = Iff (a, b)
end

let rec pp ppf e =
  let open Format in
  match e with
  | Const v -> pp_value ppf v
  | Cur v -> pp_print_string ppf v
  | Nxt v -> fprintf ppf "%s'" v
  | Not a -> fprintf ppf "!(%a)" pp a
  | And (a, b) -> fprintf ppf "(%a & %a)" pp a pp b
  | Or (a, b) -> fprintf ppf "(%a | %a)" pp a pp b
  | Imp (a, b) -> fprintf ppf "(%a -> %a)" pp a pp b
  | Iff (a, b) -> fprintf ppf "(%a <-> %a)" pp a pp b
  | Eq (a, b) -> fprintf ppf "(%a = %a)" pp a pp b
  | Lt (a, b) -> fprintf ppf "(%a < %a)" pp a pp b
  | Add (a, b) -> fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> fprintf ppf "(%a - %a)" pp a pp b
  | Ite (c, t, e) -> fprintf ppf "(%a ? %a : %a)" pp c pp t pp e
  | Member (a, vs) ->
      fprintf ppf "(%a in {%a})" pp a
        (pp_print_list
           ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
           pp_value)
        vs

let to_string e = Format.asprintf "%a" pp e

(* Concrete evaluation, used by the explicit-state engine and by trace
   validation in the tests. [lookup_cur]/[lookup_nxt] map variable names
   to values; [lookup_nxt] may raise if the expression should not mention
   primed variables (e.g. when evaluating an initial-state predicate). *)
let rec eval ~lookup_cur ~lookup_nxt e =
  let as_bool e =
    match eval ~lookup_cur ~lookup_nxt e with
    | Bool b -> b
    | v -> type_error "expected boolean, got %a in %a" pp_value v pp e
  in
  let as_int e =
    match eval ~lookup_cur ~lookup_nxt e with
    | Int i -> i
    | v -> type_error "expected integer, got %a in %a" pp_value v pp e
  in
  match e with
  | Const v -> v
  | Cur v -> lookup_cur v
  | Nxt v -> lookup_nxt v
  | Not a -> Bool (not (as_bool a))
  | And (a, b) -> Bool (as_bool a && as_bool b)
  | Or (a, b) -> Bool (as_bool a || as_bool b)
  | Imp (a, b) -> Bool ((not (as_bool a)) || as_bool b)
  | Iff (a, b) -> Bool (Bool.equal (as_bool a) (as_bool b))
  | Eq (a, b) ->
      Bool
        (value_equal
           (eval ~lookup_cur ~lookup_nxt a)
           (eval ~lookup_cur ~lookup_nxt b))
  | Lt (a, b) -> Bool (Stdlib.( < ) (as_int a) (as_int b))
  | Add (a, b) -> Int (Stdlib.( + ) (as_int a) (as_int b))
  | Sub (a, b) -> Int (Stdlib.( - ) (as_int a) (as_int b))
  | Ite (c, t, e) ->
      if as_bool c then eval ~lookup_cur ~lookup_nxt t
      else eval ~lookup_cur ~lookup_nxt e
  | Member (a, vs) ->
      let v = eval ~lookup_cur ~lookup_nxt a in
      Bool (List.exists (value_equal v) vs)

(* Replace every current-state variable by its primed version. Used to
   assert a state invariant at both ends of the transition relation.
   Fails on expressions that already mention primed variables. *)
let rec prime = function
  | Const v -> Const v
  | Cur v -> Nxt v
  | Nxt v -> invalid_arg (Printf.sprintf "Expr.prime: already primed: %s" v)
  | Not a -> Not (prime a)
  | And (a, b) -> And (prime a, prime b)
  | Or (a, b) -> Or (prime a, prime b)
  | Imp (a, b) -> Imp (prime a, prime b)
  | Iff (a, b) -> Iff (prime a, prime b)
  | Eq (a, b) -> Eq (prime a, prime b)
  | Lt (a, b) -> Lt (prime a, prime b)
  | Add (a, b) -> Add (prime a, prime b)
  | Sub (a, b) -> Sub (prime a, prime b)
  | Ite (a, b, c) -> Ite (prime a, prime b, prime c)
  | Member (a, vs) -> Member (prime a, vs)

(* Variables mentioned by an expression, split by priming. *)
let vars e =
  let cur = Hashtbl.create 16 and nxt = Hashtbl.create 16 in
  let rec go = function
    | Const _ -> ()
    | Cur v -> Hashtbl.replace cur v ()
    | Nxt v -> Hashtbl.replace nxt v ()
    | Not a -> go a
    | And (a, b) | Or (a, b) | Imp (a, b) | Iff (a, b)
    | Eq (a, b) | Lt (a, b) | Add (a, b) | Sub (a, b) ->
        go a;
        go b
    | Ite (a, b, c) ->
        go a;
        go b;
        go c
    | Member (a, _) -> go a
  in
  go e;
  let keys h = Hashtbl.fold (fun k () acc -> k :: acc) h [] in
  (List.sort compare (keys cur), List.sort compare (keys nxt))
