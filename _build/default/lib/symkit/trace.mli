(** Counterexample trace pretty-printing and validation. *)

type t = Model.state array

val pp_full : Model.t -> Format.formatter -> t -> unit
(** Every variable at every step. *)

val pp_delta : Model.t -> Format.formatter -> t -> unit
(** SMV style: after the first step, only the variables that changed. *)

val to_string : ?delta:bool -> Model.t -> t -> string

val validate : Model.t -> t -> (unit, string) result
(** A trace is well-formed when its first state is initial, every state
    is inside the declared domains, and every consecutive pair
    satisfies all transition constraints. Every engine's output is run
    through this in the test suite before being believed. *)

val first_violated : Model.t -> t -> (int * Expr.t) option
(** The first constraint (with its step) that a trace violates; useful
    when diagnosing a broken engine. *)
