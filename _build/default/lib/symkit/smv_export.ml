(* Export a model to the SMV input language (NuSMV dialect), so the
   models built here — in particular the paper's TTA model — can be
   inspected, diffed against the paper's description, or fed to an
   external SMV implementation for independent validation.

   The constraint style maps directly: variables become VAR
   declarations, each init constraint an INIT section, each transition
   constraint a TRANS section, and the safety property an INVARSPEC. *)

let escape name =
  (* SMV identifiers: our variable names are already compatible. *)
  name

let pp_value ppf = function
  | Expr.Int i -> Format.pp_print_int ppf i
  | Expr.Sym s -> Format.pp_print_string ppf (escape s)
  | Expr.Bool true -> Format.pp_print_string ppf "TRUE"
  | Expr.Bool false -> Format.pp_print_string ppf "FALSE"

let rec pp_expr ppf e =
  let open Format in
  match e with
  | Expr.Const v -> pp_value ppf v
  | Expr.Cur v -> pp_print_string ppf (escape v)
  | Expr.Nxt v -> fprintf ppf "next(%s)" (escape v)
  | Expr.Not a -> fprintf ppf "!(%a)" pp_expr a
  | Expr.And (a, b) -> fprintf ppf "(%a & %a)" pp_expr a pp_expr b
  | Expr.Or (a, b) -> fprintf ppf "(%a | %a)" pp_expr a pp_expr b
  | Expr.Imp (a, b) -> fprintf ppf "(%a -> %a)" pp_expr a pp_expr b
  | Expr.Iff (a, b) -> fprintf ppf "(%a <-> %a)" pp_expr a pp_expr b
  | Expr.Eq (a, b) -> fprintf ppf "(%a = %a)" pp_expr a pp_expr b
  | Expr.Lt (a, b) -> fprintf ppf "(%a < %a)" pp_expr a pp_expr b
  | Expr.Add (a, b) -> fprintf ppf "(%a + %a)" pp_expr a pp_expr b
  | Expr.Sub (a, b) -> fprintf ppf "(%a - %a)" pp_expr a pp_expr b
  | Expr.Ite (c, t, e) ->
      (* SMV's case expression; exhaustive by the TRUE default. *)
      fprintf ppf "(case %a : %a; TRUE : %a; esac)" pp_expr c pp_expr t
        pp_expr e
  | Expr.Member (a, vs) ->
      fprintf ppf "(%a in {%a})" pp_expr a
        (pp_print_list
           ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
           pp_value)
        vs

let pp_domain ppf = function
  | Model.Bool -> Format.pp_print_string ppf "boolean"
  | Model.Range (lo, hi) -> Format.fprintf ppf "%d..%d" lo hi
  | Model.Enum syms ->
      Format.fprintf ppf "{%s}" (String.concat ", " (List.map escape syms))

let pp_model ?invarspec ppf (m : Model.t) =
  let open Format in
  fprintf ppf "-- Generated from the OCaml model %S.@." m.Model.name;
  fprintf ppf "MODULE main@.@.VAR@.";
  List.iter
    (fun (v, d) -> fprintf ppf "  %s : %a;@." (escape v) pp_domain d)
    m.Model.vars;
  List.iter
    (fun e -> fprintf ppf "@.INIT@.  %a;@." pp_expr e)
    m.Model.init;
  List.iter
    (fun e -> fprintf ppf "@.TRANS@.  %a;@." pp_expr e)
    m.Model.trans;
  match invarspec with
  | Some bad ->
      fprintf ppf "@.-- The safety property: the bad condition is never reached.@.";
      fprintf ppf "INVARSPEC@.  !(%a);@." pp_expr bad
  | None -> ()

let to_string ?invarspec m =
  Format.asprintf "%a" (pp_model ?invarspec) m

let to_file ?invarspec m path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      pp_model ?invarspec ppf m;
      Format.pp_print_flush ppf ())
