(** Counterexample trace pretty-printing and validation.

    Traces are arrays of concrete states of a {!Model.t}. The printer
    mimics SMV's convention of showing, at each step after the first,
    only the variables whose values changed. Validation replays the
    trace against the model's constraints — every engine's output is
    checked this way in the test suite. *)

type t = Model.state array

let pp_full model ppf (trace : t) =
  Array.iteri
    (fun i s ->
      Format.fprintf ppf "@[<v 2>-- State %d --@,%a@]@," (i + 1)
        (Model.pp_state model) s)
    trace

let pp_delta model ppf (trace : t) =
  let vars = Array.of_list model.Model.vars in
  Array.iteri
    (fun i s ->
      Format.fprintf ppf "@[<v 2>-- State %d --" (i + 1);
      Array.iteri
        (fun vi (name, _) ->
          let changed =
            i = 0 || not (Expr.value_equal trace.(i - 1).(vi) s.(vi))
          in
          if changed then
            Format.fprintf ppf "@,%s = %a" name Expr.pp_value s.(vi))
        vars;
      Format.fprintf ppf "@]@,")
    trace

let to_string ?(delta = true) model trace =
  let pp = if delta then pp_delta else pp_full in
  Format.asprintf "@[<v>%a@]" (pp model) trace

(* A trace is well-formed when its first state is initial, every state
   is inside the declared domains, and every consecutive pair satisfies
   all transition constraints. Returns a diagnostic on failure. *)
let validate model (trace : t) =
  let n = Array.length trace in
  if n = 0 then Error "empty trace"
  else if not (Model.initial_ok model trace.(0)) then
    Error "first state violates an init constraint"
  else
    let rec check i =
      if i >= n then Ok ()
      else if not (Model.state_in_domains model trace.(i)) then
        Error (Printf.sprintf "state %d out of domain" (i + 1))
      else if i > 0 && not (Model.step_ok model trace.(i - 1) trace.(i))
      then Error (Printf.sprintf "transition %d -> %d violates a constraint" i (i + 1))
      else check (i + 1)
    in
    check 0

(* The first constraint (init or trans) that a trace violates; useful in
   error messages when diagnosing a bad engine. *)
let first_violated model (trace : t) =
  if Array.length trace = 0 then None
  else
    match
      List.find_opt
        (fun e -> not (Model.eval_pred model e trace.(0)))
        model.Model.init
    with
    | Some e -> Some (0, e)
    | None ->
        let rec go i =
          if i + 1 >= Array.length trace then None
          else
            match
              List.find_opt
                (fun e -> not (Model.eval_trans model e trace.(i) trace.(i + 1)))
                model.Model.trans
            with
            | Some e -> Some (i + 1, e)
            | None -> go (i + 1)
        in
        go 0
