lib/symkit/explicit.mli:
