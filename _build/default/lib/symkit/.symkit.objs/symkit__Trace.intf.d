lib/symkit/trace.mli: Expr Format Model
