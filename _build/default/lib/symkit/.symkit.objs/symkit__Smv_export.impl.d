lib/symkit/smv_export.ml: Expr Format Fun List Model String
