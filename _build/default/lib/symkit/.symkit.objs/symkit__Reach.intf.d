lib/symkit/reach.mli: Bdd Enc Expr Model
