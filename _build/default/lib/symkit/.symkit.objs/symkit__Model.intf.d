lib/symkit/model.mli: Expr Format
