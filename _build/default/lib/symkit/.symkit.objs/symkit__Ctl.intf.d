lib/symkit/ctl.mli: Bdd Enc Expr Format Model
