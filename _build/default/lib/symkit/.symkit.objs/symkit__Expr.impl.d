lib/symkit/expr.ml: Bool Format Hashtbl List Printf Stdlib String
