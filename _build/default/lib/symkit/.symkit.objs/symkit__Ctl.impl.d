lib/symkit/ctl.ml: Bdd Enc Expr Format Model Reach
