lib/symkit/induction.ml: Array Bdd Bmc Enc Model Sat
