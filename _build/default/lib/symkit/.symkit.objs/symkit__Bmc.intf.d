lib/symkit/bmc.mli: Bdd Enc Expr Model Sat
