lib/symkit/enc.ml: Array Bdd Expr Hashtbl List Model Printf
