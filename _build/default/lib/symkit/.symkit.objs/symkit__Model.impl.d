lib/symkit/model.ml: Array Expr Format Hashtbl List Printf String
