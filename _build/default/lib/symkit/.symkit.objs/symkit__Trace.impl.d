lib/symkit/trace.ml: Array Expr Format List Model Printf
