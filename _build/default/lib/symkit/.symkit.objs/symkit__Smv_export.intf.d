lib/symkit/smv_export.mli: Expr Format Model
