lib/symkit/bmc.ml: Array Bdd Enc Expr Hashtbl List Model Sat
