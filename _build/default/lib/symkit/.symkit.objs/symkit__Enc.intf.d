lib/symkit/enc.mli: Bdd Expr Model
