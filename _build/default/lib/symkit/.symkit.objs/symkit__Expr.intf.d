lib/symkit/expr.mli: Format
