lib/symkit/reach.ml: Array Bdd Enc Model
