lib/symkit/explicit.ml: Hashtbl List Queue
