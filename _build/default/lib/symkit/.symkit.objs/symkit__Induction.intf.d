lib/symkit/induction.mli: Enc Expr Model
