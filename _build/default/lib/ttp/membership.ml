(** Group membership vectors.

    TTP/C exposes to the host a consistent view of which nodes are
    currently operating correctly. The membership vector has one bit per
    node in the cluster (the paper's examples use 16-bit fields); a node
    is removed from the vector when its slot carried an invalid or
    incorrect frame and re-added when it transmits correctly again. *)

type t = int  (** bit [i] set = node [i] is a member *)

let empty : t = 0
let full ~nodes : t = (1 lsl nodes) - 1
let singleton i : t = 1 lsl i
let mem v i = (v lsr i) land 1 = 1
let add v i = v lor (1 lsl i)
let remove v i = v land lnot (1 lsl i)
let cardinal v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go v 0

let equal (a : t) (b : t) = a = b
let to_int (v : t) = v
let of_int (v : int) : t = v

let members ~nodes v =
  List.filter (mem v) (List.init nodes Fun.id)

let pp ~nodes ppf v =
  Format.fprintf ppf "{%s}"
    (String.concat ","
       (List.map string_of_int (members ~nodes v)))

let to_string ~nodes v = Format.asprintf "%a" (pp ~nodes) v
