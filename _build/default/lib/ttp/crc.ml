(** Bit-serial cyclic redundancy checks.

    TTP/C protects every frame with a 24-bit CRC that also covers the
    sender's C-state (either transmitted explicitly or mixed into the
    calculation implicitly), so receivers judge "correctness" by
    recomputing the CRC against their *own* C-state. This module
    implements a generic MSB-first CRC over bit sequences, plus the
    24-bit instance used by the frame codec.

    Each TTP/C channel uses a different initial value so that a frame
    intended for channel 0 cannot be mistaken for a channel 1 frame. *)

type spec = {
  width : int;  (** number of CRC bits *)
  poly : int;  (** generator polynomial, implicit top bit *)
  init : int;  (** initial shift-register value *)
}

(* 24-bit polynomial used by several aerospace protocols
   (x^24 + x^23 + x^18 + x^17 + x^14 + x^11 + x^10 + ... ), a standard
   choice with good Hamming distance at TTP/C frame lengths. *)
let crc24_poly = 0x5D6DCB

let channel_spec channel =
  { width = 24; poly = crc24_poly; init = (channel + 1) * 0x123456 land 0xFFFFFF }

(* Feed one bit (MSB-first) into the register. *)
let feed_bit spec reg bit =
  let top = (reg lsr (spec.width - 1)) land 1 in
  let reg = (reg lsl 1) land ((1 lsl spec.width) - 1) in
  if top <> Bool.to_int bit then reg lxor spec.poly else reg

let of_bits spec bits = List.fold_left (feed_bit spec) spec.init bits

(* Feed the low [n] bits of an integer, MSB first. *)
let feed_int spec reg ~bits:n x =
  let rec go reg i =
    if i < 0 then reg
    else go (feed_bit spec reg ((x lsr i) land 1 = 1)) (i - 1)
  in
  go reg (n - 1)

let of_ints spec fields =
  List.fold_left (fun reg (x, n) -> feed_int spec reg ~bits:n x) spec.init
    fields

(* This register formulation compares each data bit against the MSB of
   the register, which is equivalent to dividing the zero-augmented
   message; the transmitted CRC is simply the final register value and
   the receiver checks by recomputing and comparing. *)
let compute spec ~data_bits = of_bits spec data_bits

let check spec ~data_bits ~crc = compute spec ~data_bits = crc

(* CRC over integer-encoded fields, convenient for frame headers:
   [compute_fields spec [(x1, n1); ...]] runs the register over the low
   [ni] bits of each [xi], MSB first. *)
let compute_fields spec fields = of_ints spec fields
