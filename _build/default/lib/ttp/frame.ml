(** TTP/C frame formats and their bit-level encoding.

    Four frame kinds matter to the paper:

    - {b N-frames}: normal data frames whose C-state is {e implicit} —
      the sender mixes its C-state into the CRC calculation but does not
      transmit it. The minimal N-frame (no payload) is 28 bits: a 4-bit
      header and a 24-bit CRC.
    - {b I-frames}: initialization frames with {e explicit} C-state,
      used by integrating nodes. 4 + 48 + 24 = 76 bits.
    - {b Cold-start frames}: sent during startup before global time
      exists; carry the sender's view of time and its round slot.
    - {b X-frames}: combined explicit/implicit C-state data frames; at
      the maximum payload of 1920 bits they reach the protocol's
      longest legal frame, 2076 bits (4 header + 96 C-state + 1920 data
      + 2 x 24 CRC + 8 padding).

    Note: the paper quotes 40 bits for the minimal cold-start frame
    although its own field list (1 + 16 + 9 + 24) sums to 50; the codec
    here encodes the field list faithfully, and the Section 6 analysis
    (lib/analysis) uses the paper's quoted constants so the numeric
    results match the published ones. *)

type kind = N | I | Cold_start | X

type t = {
  kind : kind;
  sender : int;  (** sending node id *)
  mcr : int;  (** mode-change request, 3 bits *)
  cstate : Cstate.t;  (** sender's C-state (transmitted only when the
                          kind carries it explicitly) *)
  payload : int list;  (** application data, 16-bit words *)
}

let header_bits = function Cold_start -> 1 | N | I | X -> 4
let crc_bits = 24

let payload_bits f = 16 * List.length f.payload

(* Wire size of a frame in bits. *)
let size_bits f =
  match f.kind with
  | N -> header_bits N + payload_bits f + crc_bits
  | I -> header_bits I + Cstate.bits f.cstate + crc_bits
  | Cold_start -> header_bits Cold_start + 16 + 9 + crc_bits
  | X ->
      (* Explicit C-state region and data region each carry a CRC; the
         8 padding bits align the frame to a byte boundary. *)
      header_bits X + 96 + payload_bits f + (2 * crc_bits) + 8

let max_x_payload_words = 120 (* 1920 bits *)

let make ?(mcr = 0) ~kind ~sender ~cstate ?(payload = []) () =
  (match kind with
  | X when List.length payload > max_x_payload_words ->
      invalid_arg "Frame.make: X-frame payload exceeds 1920 bits"
  | I when payload <> [] ->
      invalid_arg "Frame.make: I-frames carry no application payload"
  | Cold_start when payload <> [] ->
      invalid_arg "Frame.make: cold-start frames carry no payload"
  | _ -> ());
  { kind; sender; mcr; cstate; payload }

let with_cstate f cstate = { f with cstate }

(* Header field: frame kind tag (2 bits) and mode-change request. *)
let kind_tag = function N -> 0 | I -> 1 | X -> 2 | Cold_start -> 3

(* The integer fields actually transmitted, in wire order (before the
   CRC). *)
let wire_fields f =
  let header =
    match f.kind with
    | Cold_start -> [ (1, 1) ]
    | k -> [ (kind_tag k, 2); (f.mcr, 2) ]
  in
  let body =
    match f.kind with
    | N -> List.map (fun w -> (w land 0xFFFF, 16)) f.payload
    | I -> Cstate.to_fields f.cstate
    | Cold_start ->
        [ (f.cstate.Cstate.global_time, 16); (f.cstate.Cstate.round_slot, 9) ]
    | X ->
        Cstate.to_fields_x f.cstate
        @ List.map (fun w -> (w land 0xFFFF, 16)) f.payload
  in
  header @ body

(* Fields covered by the CRC. For kinds with implicit C-state (N-frames)
   the sender's C-state fields enter the calculation without being
   transmitted — this is the mechanism that makes receivers with a
   divergent C-state reject the frame. The [cstate] argument selects
   whose C-state is mixed in: the sender's when transmitting, the
   receiver's when checking. *)
let crc_input f ~cstate =
  match f.kind with
  | N -> wire_fields f @ Cstate.to_fields cstate
  | I | Cold_start | X -> wire_fields f

(* CRC as transmitted on [channel], computed against the sender's own
   C-state. *)
let crc_of ~channel f =
  Crc.compute_fields (Crc.channel_spec channel)
    (crc_input f ~cstate:f.cstate)

(* Receiver-side correctness: recompute the CRC substituting the
   receiver's C-state for the implicit part (for N-frames) or compare
   the explicit C-state directly (for I-/X-frames). Cold-start frames
   transmit only the global time and the round slot, so only those two
   fields are compared — an integrating receiver has no membership to
   check against anyway. A frame is correct for a receiver iff this
   matches what the sender transmitted. *)
let correct_for ~channel ~receiver_cstate f ~received_crc =
  let spec = Crc.channel_spec channel in
  match f.kind with
  | N ->
      Crc.compute_fields spec (crc_input f ~cstate:receiver_cstate)
      = received_crc
  | I | X ->
      crc_of ~channel f = received_crc
      && Cstate.equal f.cstate receiver_cstate
  | Cold_start ->
      crc_of ~channel f = received_crc
      && f.cstate.Cstate.global_time = receiver_cstate.Cstate.global_time
      && f.cstate.Cstate.round_slot = receiver_cstate.Cstate.round_slot

(* Correctness with one membership bit wildcarded: during its
   acknowledgment window a sender does not yet know whether its
   receivers kept it in the membership, so it must accept a successor
   frame under either hypothesis and then read the disputed bit off
   the frame. *)
let correct_for_masked ~channel ~receiver_cstate ~mask_member f ~received_crc =
  let with_bit present =
    {
      receiver_cstate with
      Cstate.membership =
        (if present then
           Membership.add receiver_cstate.Cstate.membership mask_member
         else Membership.remove receiver_cstate.Cstate.membership mask_member);
    }
  in
  correct_for ~channel ~receiver_cstate:(with_bit true) f ~received_crc
  || correct_for ~channel ~receiver_cstate:(with_bit false) f ~received_crc

(* Bit-level serialization, MSB-first per field. X-frames carry two
   CRCs: one closing the header + explicit-C-state region, one closing
   the data region; the other kinds carry a single trailing CRC. Used
   by the leaky-bucket forwarding model and by the codec tests; the
   slot-level simulator works at frame granularity. *)
let to_bits ~channel f =
  let spec = Crc.channel_spec channel in
  let fields =
    match f.kind with
    | N | I | Cold_start -> wire_fields f @ [ (crc_of ~channel f, crc_bits) ]
    | X ->
        let header =
          [ (kind_tag X, 2); (f.mcr, 2) ] @ Cstate.to_fields_x f.cstate
        in
        let payload = List.map (fun w -> (w land 0xFFFF, 16)) f.payload in
        let crc1 = Crc.compute_fields spec header in
        let crc2 = crc_of ~channel f in
        header @ ((crc1, crc_bits) :: payload)
        @ [ (crc2, crc_bits); (0, 8) ]
  in
  List.concat_map
    (fun (x, n) -> List.init n (fun i -> (x lsr (n - 1 - i)) land 1 = 1))
    fields

let pp ppf f =
  let kind_str =
    match f.kind with
    | N -> "N"
    | I -> "I"
    | Cold_start -> "cold-start"
    | X -> "X"
  in
  Format.fprintf ppf "%s-frame from node %d (%a, %d bits)" kind_str f.sender
    Cstate.pp f.cstate (size_bits f)

let to_string f = Format.asprintf "%a" pp f
