(** Bit-serial cyclic redundancy checks.

    TTP/C protects every frame with a 24-bit CRC that also covers the
    sender's C-state (transmitted explicitly or mixed into the
    calculation implicitly), so receivers judge "correctness" by
    recomputing the CRC against their own C-state. Each channel uses a
    different initial register value, so a frame intended for channel 0
    cannot be mistaken for a channel 1 frame. *)

type spec = {
  width : int;  (** number of CRC bits *)
  poly : int;  (** generator polynomial, implicit top bit *)
  init : int;  (** initial shift-register value *)
}

val crc24_poly : int
(** The 24-bit generator polynomial used by the frame codec. *)

val channel_spec : int -> spec
(** The CRC flavour of TTP/C channel 0 or 1. *)

val feed_bit : spec -> int -> bool -> int
(** Advance the shift register by one data bit (MSB-first). *)

val of_bits : spec -> bool list -> int
val feed_int : spec -> int -> bits:int -> int -> int
(** Feed the low [bits] bits of an integer, MSB first. *)

val of_ints : spec -> (int * int) list -> int
(** Feed a list of (value, width) fields. *)

val compute : spec -> data_bits:bool list -> int
(** The CRC to transmit for the given data. *)

val check : spec -> data_bits:bool list -> crc:int -> bool
(** Does the received CRC match a recomputation over the data? *)

val compute_fields : spec -> (int * int) list -> int
(** CRC over integer-encoded (value, width) fields, convenient for
    frame headers. *)
