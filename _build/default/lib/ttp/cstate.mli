(** The TTP/C controller state (C-state).

    The protocol-critical part of a controller's state: global time,
    position in the cluster cycle (MEDL position / round slot), cluster
    mode, and the membership vector. Two nodes agree on the protocol
    exactly when their C-states are equal; every frame carries its
    sender's C-state explicitly (I-/X-frames) or implicitly folded into
    the CRC (N-frames), so a receiver with a divergent C-state rejects
    the frame as incorrect. *)

type t = {
  global_time : int;  (** 16-bit cluster time, in macroticks *)
  round_slot : int;  (** position in the cluster cycle (MEDL position) *)
  mode : int;  (** active cluster mode *)
  membership : Membership.t;
}

val make :
  ?mode:int -> global_time:int -> round_slot:int -> membership:Membership.t ->
  unit -> t
(** The global time is truncated to 16 bits. *)

val initial : nodes:int -> t
(** Time 0, slot 0, full membership. *)

val equal : t -> t -> bool

val to_fields : t -> (int * int) list
(** The 48-bit explicit layout of I-frames: time, MEDL position,
    membership (16 bits each). *)

val to_fields_x : t -> (int * int) list
(** The 96-bit X-frame layout: {!to_fields} plus mode and two reserved
    words. *)

val bits : t -> int
(** Width of {!to_fields} in bits. *)

val advance : slots:int -> slot_duration:int -> t -> t
(** Move across one TDMA slot: time by the duration (mod 2^16), the
    round slot wrapping at the cycle length. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
