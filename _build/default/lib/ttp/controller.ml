(** The TTP/C protocol controller.

    An executable, slot-synchronous implementation of the controller
    state machine described in the TTP/C specification and modeled in
    Section 4 of the paper: the nine protocol states, the "big bang"
    cold-start rule, the listen timeout, integration on explicit
    C-state frames, and the clique-avoidance test. This is the concrete
    twin of the formal model in [lib/tta_model]; the test suite checks
    that the two produce the same behaviours on the paper's scenarios.

    Operation is two-phase per TDMA slot, orchestrated by the simulator:
    first every controller is asked what it {!transmit}s in the current
    slot, the channel/coupler layer turns transmissions into
    per-receiver observations, then every controller {!receive}s its
    observations and advances. *)

type protocol_state =
  | Freeze
  | Init
  | Listen
  | Cold_start
  | Active
  | Passive
  | Await
  | Test
  | Download

let state_to_string = function
  | Freeze -> "freeze"
  | Init -> "init"
  | Listen -> "listen"
  | Cold_start -> "cold_start"
  | Active -> "active"
  | Passive -> "passive"
  | Await -> "await"
  | Test -> "test"
  | Download -> "download"

(** What a controller sees on one channel during one slot, as judged by
    its own receiver hardware. SOS faults are modeled by the channel
    layer delivering different judgments to different receivers. *)
type observation =
  | Silence  (** no activity in the slot (a null frame) *)
  | Noise  (** activity that does not decode to a frame *)
  | Received of {
      frame : Frame.t;
      crc : int;  (** CRC bits as they arrived *)
      valid : bool;
          (** timing/encoding validity in this receiver's window *)
    }

(** Judgement of a slot after combining both channels, following the
    TTP/C frame-status hierarchy. *)
type slot_status =
  | Null  (** silence on both channels *)
  | Correct of Frame.t
  | Incorrect  (** a valid frame whose C-state/CRC check failed *)
  | Invalid  (** noise or timing/encoding violation *)

type config = {
  cold_start_allowed : bool;
      (** only nodes with cold-start capability may leave listen on
          timeout *)
  auto_restart : bool;
      (** host immediately re-initializes a frozen controller (the
          paper models the host's restart decision nondeterministically;
          the simulator makes it a policy) *)
  init_delay : int;  (** slots spent in [Init] before listening *)
  ack_enabled : bool;
      (** run the TTP/C acknowledgment algorithm: after sending, check
          the membership bit the next successors report for us; two
          consecutive denials mean our own transmission failed, and the
          controller demotes itself to passive instead of staying
          active with a diverging membership. Off by default: the
          paper's model does not include acknowledgment, so the default
          keeps the executable controller aligned with it. *)
}

let default_config =
  {
    cold_start_allowed = true;
    auto_restart = false;
    init_delay = 1;
    ack_enabled = false;
  }

type freeze_reason =
  | Host_command
  | Clique_error
  | Sync_loss
  | Ack_failure
      (** the acknowledgment algorithm diagnosed a persistent
          transmission fault of this very node *)

(* Progress of the acknowledgment algorithm after our own
   transmission. *)
type ack_state =
  | Ack_idle  (** nothing outstanding *)
  | Ack_waiting of int  (** denials seen so far (0 or 1) *)

let freeze_reason_to_string = function
  | Host_command -> "host command"
  | Clique_error -> "clique avoidance error"
  | Sync_loss -> "synchronization loss"
  | Ack_failure -> "persistent transmission failure (acknowledgment)"

type t = {
  id : int;
  medl : Medl.t;
  config : config;
  mutable state : protocol_state;
  mutable slot : int;  (** current position in the TDMA round *)
  mutable cstate : Cstate.t;
  mutable big_bang : bool;  (** a first cold-start frame was seen *)
  mutable listen_timeout : int;
  mutable init_countdown : int;
  mutable agreed : int;  (** correct frames this round *)
  mutable failed : int;  (** incorrect/invalid frames this round *)
  mutable freeze_reason : freeze_reason option;
  mutable integrated_at : int option;  (** slot count at integration *)
  mutable slots_elapsed : int;  (** total slots since power-on *)
  mutable ack : ack_state;
  mutable ack_failures : int;  (** self-detected transmission failures *)
  (* Deferred mode changes: the host asks for a mode change; the next
     frame we send carries it in the MCR field; every receiver of a
     correct frame with a nonzero MCR schedules the change; the change
     is applied cluster-wide at the next cycle boundary (slot 0). The
     mode is part of the C-state, so a node that misses the
     announcement is expelled at the switch — which is why the request
     travels in every frame's protected header. *)
  mutable pending_mcr : int option;  (** host request not yet broadcast *)
  mutable scheduled_mode : int option;  (** announced, applies at wrap *)
}

let nodes_of t = Medl.nodes t.medl

(* The listen timeout of the paper's model: the round length plus the
   node's own slot number, counted in slots. Staggering by node id
   guarantees a unique first cold-starter among contenders. *)
let listen_timeout_init t = Medl.slots t.medl + t.id

let create ?(config = default_config) ~id ~medl () =
  if id < 0 || id >= Medl.nodes medl then
    invalid_arg "Controller.create: id not in MEDL";
  {
    id;
    medl;
    config;
    state = Freeze;
    slot = 0;
    cstate = Cstate.initial ~nodes:(Medl.nodes medl);
    big_bang = false;
    listen_timeout = 0;
    init_countdown = 0;
    agreed = 0;
    failed = 0;
    freeze_reason = None;
    integrated_at = None;
    slots_elapsed = 0;
    ack = Ack_idle;
    ack_failures = 0;
    pending_mcr = None;
    scheduled_mode = None;
  }

(* Host API: request a deferred cluster mode change (1..7; 0 means no
   request). Carried by this node's next transmission. *)
let host_request_mode_change t mode =
  if mode < 1 || mode > 7 then
    invalid_arg "Controller.host_request_mode_change: mode in 1..7";
  t.pending_mcr <- Some mode

(* Host API: power on / restart a frozen controller. *)
let host_start t =
  if t.state = Freeze then begin
    t.state <- Init;
    t.init_countdown <- t.config.init_delay;
    t.big_bang <- false;
    t.agreed <- 0;
    t.failed <- 0;
    t.freeze_reason <- None;
    t.ack <- Ack_idle;
    t.ack_failures <- 0;
    t.pending_mcr <- None;
    t.scheduled_mode <- None;
    t.cstate <- Cstate.initial ~nodes:(nodes_of t)
  end

let freeze t reason =
  t.state <- Freeze;
  t.freeze_reason <- Some reason

(* Host API: command the controller into the freeze state (e.g. to take
   a node down for maintenance, or to stage a re-integration test). *)
let host_freeze t = freeze t Host_command

(* ------------------------------------------------------------------ *)
(* Phase 1: transmission. *)

(* The frame this controller puts on both channels in the current slot,
   if any. Mirrors the paper's [frame_sent] definition: active nodes
   send their scheduled frame in their slot; cold-starting nodes send a
   cold-start frame in their slot; everyone else is silent. *)
let transmit t =
  let my_slot = t.slot = t.id in
  match t.state with
  | Active when my_slot ->
      let kind = Medl.frame_kind_of_slot t.medl t.slot in
      let mcr = match t.pending_mcr with Some m -> m | None -> 0 in
      Some (Frame.make ~mcr ~kind ~sender:t.id ~cstate:t.cstate ())
  | Cold_start when my_slot ->
      Some (Frame.make ~kind:Frame.Cold_start ~sender:t.id ~cstate:t.cstate ())
  | Active | Cold_start | Freeze | Init | Listen | Passive | Await | Test
  | Download ->
      None

(* ------------------------------------------------------------------ *)
(* Phase 2: reception and state advancement. *)

(* Judge one channel's observation against our C-state. Pure noise
   (collisions, a bad-frame coupler) is treated like a null slot for
   the clique counters: TTP/C only judges slots in which a frame is
   awaited, and noise in a quiet slot must not erode membership. A
   frame that arrives but fails this receiver's validity window (an
   SOS rejection) does count as an invalid slot — that asymmetry is
   exactly what lets SOS faults split the membership. *)
let judge_channel t ~channel obs =
  match obs with
  | Silence | Noise -> Null
  | Received { frame; crc; valid } ->
      if not valid then Invalid
      else if
        Frame.correct_for ~channel ~receiver_cstate:t.cstate frame
          ~received_crc:crc
      then Correct frame
      else Incorrect

(* TTP/C frame-status hierarchy across the two redundant channels: a
   correct frame on either channel wins; otherwise an incorrect frame
   dominates an invalid one; silence on both is a null slot. *)
let combine a b =
  match (a, b) with
  | Correct f, _ -> Correct f
  | _, Correct f -> Correct f
  | Incorrect, _ | _, Incorrect -> Incorrect
  | Invalid, _ | _, Invalid -> Invalid
  | Null, Null -> Null

(* A cold-start frame visible on either channel, for the big-bang and
   integration rules (judged only for validity, not correctness — an
   integrating node cannot check C-states yet). *)
let cold_start_on obs =
  match obs with
  | Received ({ frame = { Frame.kind = Frame.Cold_start; _ }; valid = true; _ }
      as r) ->
      Some r.frame
  | Received _ | Silence | Noise -> None

(* A valid frame with explicit C-state on either channel (I- or
   X-frame), used for immediate integration. *)
let cstate_frame_on obs =
  match obs with
  | Received
      ({ frame = { Frame.kind = Frame.I | Frame.X; _ }; valid = true; _ } as r)
    ->
      Some r.frame
  | Received _ | Silence | Noise -> None

let any_valid_traffic obs =
  match obs with
  | Received { valid = true; _ } -> true
  | Received _ | Silence | Noise -> false

(* Update membership and the clique counters from the slot judgment.
   A null slot is "neither invalid nor incorrect" for the clique
   counters, but the silent sender does lose its membership: everyone —
   including the silent node itself — observes that the expected frame
   did not arrive. *)
let account t status =
  let sender = Medl.sender_of_slot t.medl t.slot in
  let set_member present =
    t.cstate <-
      {
        t.cstate with
        Cstate.membership =
          (if present then Membership.add t.cstate.Cstate.membership sender
           else Membership.remove t.cstate.Cstate.membership sender);
      }
  in
  match status with
  | Null -> set_member false
  | Correct f ->
      t.agreed <- t.agreed + 1;
      set_member true;
      (* A correct frame's mode-change request is adopted by every
         receiver; it takes effect at the cycle boundary. *)
      if f.Frame.mcr <> 0 then t.scheduled_mode <- Some f.Frame.mcr
  | Incorrect | Invalid ->
      t.failed <- t.failed + 1;
      set_member false

(* Advance our position in the TDMA round and the global time; apply a
   scheduled mode change at the cycle boundary. *)
let advance_slot t =
  let duration = Medl.duration_of_slot t.medl t.slot in
  t.slot <- Medl.next_slot t.medl t.slot;
  let mode =
    if t.slot = 0 then (
      match t.scheduled_mode with
      | Some m ->
          t.scheduled_mode <- None;
          m
      | None -> t.cstate.Cstate.mode)
    else t.cstate.Cstate.mode
  in
  t.cstate <-
    {
      t.cstate with
      Cstate.global_time =
        (t.cstate.Cstate.global_time + duration) land 0xFFFF;
      Cstate.round_slot = t.slot;
      Cstate.mode = mode;
    }

(* Integration bookkeeping shared by the listen-state rules: adopt the
   C-state (or the cold-start fields) of the frame and step into the
   round at the right position. *)
let integrate_on t frame =
  let slots = Medl.slots t.medl in
  let frame_slot = frame.Frame.cstate.Cstate.round_slot in
  t.slot <- (frame_slot + 1) mod slots;
  t.cstate <-
    {
      frame.Frame.cstate with
      Cstate.round_slot = t.slot;
      Cstate.global_time =
        (frame.Frame.cstate.Cstate.global_time
        + Medl.duration_of_slot t.medl frame_slot)
        land 0xFFFF;
    };
  t.agreed <- 0;
  t.failed <- 0;
  t.state <- Passive;
  t.integrated_at <- Some t.slots_elapsed

let receive t ~obs0 ~obs1 =
  t.slots_elapsed <- t.slots_elapsed + 1;
  match t.state with
  | Freeze ->
      if t.config.auto_restart then host_start t
  | Init ->
      t.init_countdown <- t.init_countdown - 1;
      if t.init_countdown <= 0 then begin
        t.state <- Listen;
        t.listen_timeout <- listen_timeout_init t;
        t.big_bang <- false
      end
  | Listen -> begin
      let cold =
        match cold_start_on obs0 with
        | Some f -> Some f
        | None -> cold_start_on obs1
      in
      let cst =
        match cstate_frame_on obs0 with
        | Some f -> Some f
        | None -> cstate_frame_on obs1
      in
      match (cst, cold) with
      | Some frame, _ ->
          (* Frames with explicit C-state allow immediate integration. *)
          integrate_on t frame
      | None, Some frame ->
          if t.big_bang then
            (* Second cold-start frame: integrate on it. *)
            integrate_on t frame
          else begin
            (* First cold-start frame seen: the big-bang rule ignores
               it, arming integration on the next one. The timeout is
               also reset by the traffic. *)
            t.big_bang <- true;
            t.listen_timeout <- listen_timeout_init t
          end
      | None, None ->
          if any_valid_traffic obs0 || any_valid_traffic obs1 then
            t.listen_timeout <- listen_timeout_init t
          else begin
            t.listen_timeout <- max 0 (t.listen_timeout - 1);
            if t.listen_timeout = 0 then
              if t.config.cold_start_allowed then begin
                (* Start a cluster: enter cold start at our own slot. *)
                t.state <- Cold_start;
                t.slot <- t.id;
                t.cstate <-
                  {
                    (Cstate.initial ~nodes:(nodes_of t)) with
                    Cstate.round_slot = t.id;
                  };
                t.agreed <- 0;
                t.failed <- 0
              end
              else t.listen_timeout <- listen_timeout_init t
          end
    end
  | Cold_start ->
      let status =
        combine (judge_channel t ~channel:0 obs0)
          (judge_channel t ~channel:1 obs1)
      in
      (* The sender assumes its own transmission succeeded (it has no
         way to fully verify it); this is why a lone cold-starter sees
         agreed = 1 in the paper's start-up test. *)
      if t.slot = t.id then t.agreed <- t.agreed + 1
      else account t status;
      advance_slot t;
      (* After one full round, run the start-up variant of the clique
         test (the paper's cold-start constraint). *)
      if t.slot = t.id then begin
        if t.agreed <= 1 && t.failed = 0 then begin
          (* Nobody else answered: try another cold start. *)
          t.agreed <- 0;
          t.failed <- 0
        end
        else if t.agreed > t.failed then begin
          t.state <- Active;
          t.agreed <- 0;
          t.failed <- 0
        end
        else begin
          t.state <- Listen;
          t.listen_timeout <- listen_timeout_init t;
          t.big_bang <- false
        end
      end
  | Active | Passive ->
      let status =
        combine (judge_channel t ~channel:0 obs0)
          (judge_channel t ~channel:1 obs1)
      in
      (* Acknowledgment: while a transmission of ours awaits its
         acknowledgment, successor frames are judged with our own
         membership bit wildcarded, and the disputed bit is read off
         the frame: set = acknowledged; two consecutive denials = our
         own transmission failed, so we demote ourselves to passive and
         leave the membership, re-converging with the receivers' view
         instead of drifting into a clique error. *)
      let masked_correct ~channel obs =
        match obs with
        | Received { frame; crc; valid = true } ->
            if
              Frame.correct_for_masked ~channel ~receiver_cstate:t.cstate
                ~mask_member:t.id frame ~received_crc:crc
            then Some frame
            else None
        | Received _ | Silence | Noise -> None
      in
      let process_ack frame =
        match t.ack with
        | Ack_idle -> ()
        | Ack_waiting denials ->
            if Membership.mem frame.Frame.cstate.Cstate.membership t.id then begin
              t.ack <- Ack_idle;
              (* A successful acknowledgment clears the strike count. *)
              t.ack_failures <- 0
            end
            else if denials = 0 then t.ack <- Ack_waiting 1
            else begin
              (* Second successor also denies: the failure is ours. The
                 first time we step down to passive and retry from the
                 next promotion; a second consecutive ack failure means
                 a persistent transmit fault, and the controller freezes
                 with an accurate self-diagnosis (instead of drifting
                 into a misleading clique error). *)
              t.ack <- Ack_idle;
              t.ack_failures <- t.ack_failures + 1;
              t.cstate <-
                {
                  t.cstate with
                  Cstate.membership =
                    Membership.remove t.cstate.Cstate.membership t.id;
                };
              if t.ack_failures >= 2 then freeze t Ack_failure
              else if t.state = Active then t.state <- Passive
            end
      in
      let status =
        if not t.config.ack_enabled then status
        else
          match status with
          | Correct f ->
              process_ack f;
              status
          | Incorrect -> (
              match
                (masked_correct ~channel:0 obs0, masked_correct ~channel:1 obs1)
              with
              | Some f, _ | _, Some f ->
                  process_ack f;
                  (* Correct modulo the disputed bit: the sender is
                     healthy, so the slot counts as agreed. *)
                  Correct f
              | None, None -> status)
          | Null | Invalid -> status
      in
      if t.slot = t.id then begin
        if t.state = Active then begin
          t.agreed <- t.agreed + 1;
          t.cstate <-
            { t.cstate with
              Cstate.membership =
                Membership.add t.cstate.Cstate.membership t.id
            };
          if t.config.ack_enabled then t.ack <- Ack_waiting 0;
          (* Our own mode-change request went out with this frame: we
             schedule it for ourselves like every other receiver. *)
          (match t.pending_mcr with
          | Some m ->
              t.scheduled_mode <- Some m;
              t.pending_mcr <- None
          | None -> ())
        end
        else
          (* A passive node is silent in its own slot; like every other
             receiver, it observes that no frame arrived and drops
             itself from the membership until it sends again. *)
          t.cstate <-
            { t.cstate with
              Cstate.membership =
                Membership.remove t.cstate.Cstate.membership t.id
            }
      end
      else account t status;
      advance_slot t;
      if t.slot = t.id then begin
        (* Our sending slot: the clique-avoidance test. A node freezes
           only when failed frames dominate the observed traffic; a
           round with no judgeable traffic at all is not a clique
           error (a passive node may simply be waiting for the cluster
           to pick up). *)
        if t.failed > 0 && t.agreed <= t.failed then freeze t Clique_error
        else begin
          if t.state = Passive && t.agreed > t.failed then
            (* A passive node that saw correct traffic dominate has
               (re)integrated successfully and may send again. *)
            t.state <- Active;
          t.agreed <- 0;
          t.failed <- 0
        end
      end
  | Await | Test | Download ->
      (* Diagnostic states are out of the paper's scope: they return to
         freeze, from which the host may restart the node. *)
      freeze t Host_command

(* ------------------------------------------------------------------ *)
(* Introspection for the simulator and tests. *)

let state t = t.state
let slot t = t.slot
let cstate t = t.cstate
let membership t = t.cstate.Cstate.membership
let agreed t = t.agreed
let failed t = t.failed
let freeze_cause t = t.freeze_reason
let ack_failures t = t.ack_failures
let is_synchronized t = match t.state with Active | Passive -> true | _ -> false
let integrated_at t = t.integrated_at

let pp ppf t =
  Format.fprintf ppf "node %d: %s slot=%d agreed=%d failed=%d %a" t.id
    (state_to_string t.state) t.slot t.agreed t.failed Cstate.pp t.cstate
