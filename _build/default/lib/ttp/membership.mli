(** Group membership vectors.

    TTP/C exposes to the host a consistent view of which nodes are
    operating correctly: one bit per node. A node leaves the vector
    when its slot carried an invalid or incorrect frame (or silence
    where a frame was due) and re-enters when it transmits correctly
    again. Because the vector is part of the C-state — and the C-state
    feeds every frame's CRC — membership divergence makes nodes reject
    each other's frames, which is how clique detection works. *)

type t = int
(** Bit [i] set = node [i] is a member. Kept concrete: the vector
    travels inside C-state words and frame field lists. *)

val empty : t
val full : nodes:int -> t
val singleton : int -> t
val mem : t -> int -> bool
val add : t -> int -> t
val remove : t -> int -> t
val cardinal : t -> int
val equal : t -> t -> bool
val to_int : t -> int
val of_int : int -> t
val members : nodes:int -> t -> int list
val pp : nodes:int -> Format.formatter -> t -> unit
val to_string : nodes:int -> t -> string
