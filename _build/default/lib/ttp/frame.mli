(** TTP/C frame formats and their bit-level encoding.

    Four frame kinds matter to the paper:

    - {b N-frames}: normal data frames whose C-state is {e implicit} —
      the sender mixes its C-state into the CRC without transmitting
      it. The minimal N-frame (no payload) is 28 bits.
    - {b I-frames}: initialization frames with {e explicit} C-state,
      used by integrating nodes; 76 bits.
    - {b Cold-start frames}: sent during startup before global time
      exists; carry the sender's view of time and its round slot.
    - {b X-frames}: combined explicit/implicit C-state data frames; at
      the maximal 1920-bit payload they reach the protocol's longest
      legal frame, 2076 bits.

    The paper quotes 40 bits for the minimal cold-start frame although
    its own field list (1 + 16 + 9 + 24) sums to 50; this codec encodes
    the field list faithfully, while the Section 6 analysis
    ([lib/analysis]) uses the paper's quoted constants so the numeric
    results match the published ones. *)

type kind = N | I | Cold_start | X

type t = private {
  kind : kind;
  sender : int;  (** sending node id *)
  mcr : int;  (** mode-change request *)
  cstate : Cstate.t;  (** the sender's C-state *)
  payload : int list;  (** application data, 16-bit words *)
}

val make :
  ?mcr:int -> kind:kind -> sender:int -> cstate:Cstate.t ->
  ?payload:int list -> unit -> t
(** @raise Invalid_argument when the kind cannot carry the payload
    (I- and cold-start frames carry none; X-frame payloads are capped
    at 1920 bits). *)

val max_x_payload_words : int

val with_cstate : t -> Cstate.t -> t
(** Replace the frame's C-state, keeping everything else. Exists for
    fault injection: a faulty sender composes a frame around corrupted
    controller state (the CRC it then transmits is consistent with the
    corrupted C-state, which is exactly what makes the fault hard to
    detect). *)

val header_bits : kind -> int
val crc_bits : int

val size_bits : t -> int
(** Wire size in bits; the minimal N-frame is 28 and the maximal
    X-frame 2076, matching the specification constants. *)

val crc_of : channel:int -> t -> int
(** The CRC the sender transmits on the given channel, computed against
    its own C-state. *)

val correct_for :
  channel:int -> receiver_cstate:Cstate.t -> t -> received_crc:int -> bool
(** Receiver-side correctness: for N-frames the CRC is recomputed with
    the receiver's C-state substituted for the implicit part; for I-
    and X-frames the explicit C-state is compared; cold-start frames
    compare only the transmitted time and round slot. *)

val correct_for_masked :
  channel:int -> receiver_cstate:Cstate.t -> mask_member:int -> t ->
  received_crc:int -> bool
(** Like {!correct_for}, but with one membership bit wildcarded: the
    frame is accepted if it is correct under either setting of
    [mask_member] in the receiver's membership. Used by the
    acknowledgment algorithm, where a sender does not yet know whether
    its receivers kept it in the membership. *)

val to_bits : channel:int -> t -> bool list
(** Full serialization, MSB-first per field (X-frames carry two CRCs
    and padding). Its length equals {!size_bits}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
