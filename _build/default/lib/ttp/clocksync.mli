(** Fault-tolerant distributed clock synchronization.

    TTP/C aligns node clocks with the fault-tolerant average (FTA)
    algorithm: each node measures, for recent frames, the deviation
    between actual and expected arrival time; the extremes are
    discarded (tolerating Byzantine clocks) and the rest averaged into
    a correction term. The Section 6 analysis depends only on
    worst-case oscillator drift, captured by {!drift_bound}. *)

val fta : ?discard:int -> int list -> int
(** Fault-tolerant average of measured deviations (microticks): drop
    the [discard] extremes on each side (default 1) and average,
    rounding toward zero. Returns 0 when too few measurements
    survive. *)

val drift_bound : ppm_a:int -> ppm_b:int -> float
(** Worst-case relative clock-rate difference of two oscillators with
    the given tolerances; 100 ppm against 100 ppm gives the paper's
    Delta = 0.0002 (equation 5). *)

val fta_precision :
  n:int -> k:int -> reading_error:float -> drift_offset:float -> float
(** Achievable ensemble precision of FTA with [n] clocks and [k]
    tolerated faults: (reading error + drift offset) * n/(n-2k).
    @raise Invalid_argument unless n > 2k. *)

val wander : ppm:int -> interval:int -> float
(** How far a clock with the given rate deviation drifts over an
    interval (microticks). *)
