(** The TTP/C protocol controller.

    An executable, slot-synchronous implementation of the controller
    state machine described in the TTP/C specification and modeled in
    Section 4 of the paper: the nine protocol states, the "big bang"
    cold-start rule, the listen timeout, integration on explicit
    C-state frames, and the clique-avoidance test. This is the concrete
    twin of the formal model in [lib/tta_model].

    Operation is two-phase per TDMA slot, orchestrated by the
    simulator: first every controller is asked what it {!transmit}s,
    the channel/coupler layer turns transmissions into per-receiver
    observations, then every controller {!receive}s its observations
    and advances. *)

type protocol_state =
  | Freeze
  | Init
  | Listen
  | Cold_start
  | Active
  | Passive
  | Await
  | Test
  | Download

val state_to_string : protocol_state -> string

(** What a controller sees on one channel during one slot, as judged by
    its own receiver hardware. SOS faults show up as different [valid]
    judgments at different receivers. *)
type observation =
  | Silence  (** no activity in the slot (a null frame) *)
  | Noise  (** activity that does not decode to a frame *)
  | Received of {
      frame : Frame.t;
      crc : int;  (** CRC bits as they arrived *)
      valid : bool;
          (** timing/encoding validity in this receiver's window *)
    }

(** Judgment of a slot after combining both channels, following the
    TTP/C frame-status hierarchy. *)
type slot_status =
  | Null  (** nothing judgeable (silence, or pure noise) *)
  | Correct of Frame.t
  | Incorrect  (** a valid frame whose C-state/CRC check failed *)
  | Invalid  (** a frame outside this receiver's validity window *)

type config = {
  cold_start_allowed : bool;
      (** only nodes with cold-start capability may leave listen on
          timeout *)
  auto_restart : bool;
      (** the host immediately re-initializes a frozen controller *)
  init_delay : int;  (** slots spent in [Init] before listening *)
  ack_enabled : bool;
      (** run the TTP/C acknowledgment algorithm: after sending, read
          the membership bit the next successors report for us; two
          consecutive denials mean our own transmission failed and the
          controller demotes itself to passive, re-converging with the
          receivers instead of drifting into a clique error. Off by
          default to stay aligned with the paper's model, which does
          not include acknowledgment. *)
}

val default_config : config

type freeze_reason =
  | Host_command
  | Clique_error
  | Sync_loss
  | Ack_failure
      (** the acknowledgment algorithm diagnosed a persistent
          transmission fault of this very node (two consecutive
          failed acknowledgments) *)

val freeze_reason_to_string : freeze_reason -> string

type t

val create : ?config:config -> id:int -> medl:Medl.t -> unit -> t
(** A powered-off controller (in [Freeze]).
    @raise Invalid_argument if the id does not appear in the MEDL. *)

(** {1 Host interface} *)

val host_start : t -> unit
(** Power on / restart a frozen controller; no-op otherwise. *)

val host_freeze : t -> unit
(** Command the controller into the freeze state. *)

val host_request_mode_change : t -> int -> unit
(** Request a deferred cluster mode change (1..7). The node's next
    frame carries it in the MCR field; every receiver of that (correct)
    frame schedules it, and the whole cluster switches at the next
    cycle boundary. The mode is part of the C-state, so a node that
    misses the announcement is expelled at the switch.
    @raise Invalid_argument outside 1..7. *)

(** {1 The two-phase slot} *)

val transmit : t -> Frame.t option
(** The frame this controller puts on both channels in the current
    slot: active nodes send their scheduled frame in their own slot,
    cold-starting nodes a cold-start frame; everyone else is silent. *)

val receive : t -> obs0:observation -> obs1:observation -> unit
(** Consume both channels' observations for the current slot and
    advance the state machine. *)

(** {1 Introspection} *)

val state : t -> protocol_state
val slot : t -> int
(** Current position in the TDMA round, per this node's own counter. *)

val cstate : t -> Cstate.t
val membership : t -> Membership.t
val agreed : t -> int
val failed : t -> int
val freeze_cause : t -> freeze_reason option
val is_synchronized : t -> bool
(** In [Active] or [Passive]. *)

val integrated_at : t -> int option
(** Slots since power-on at the moment of the last integration. *)

val ack_failures : t -> int
(** Consecutive transmission failures this controller detected about
    itself through the acknowledgment algorithm (reset by a successful
    acknowledgment; always 0 unless [ack_enabled]). At two, the
    controller freezes with [Ack_failure]. *)

val listen_timeout_init : t -> int
(** The paper's staggered timeout: round length plus the node id. *)

val pp : Format.formatter -> t -> unit
