(** The TTP/C controller state (C-state).

    The C-state is the protocol-critical part of a controller's state:
    the global time, the current position in the cluster cycle (MEDL
    position / round slot), and the membership vector. Two nodes agree
    on the protocol exactly when their C-states are equal; every frame
    carries the sender's C-state either explicitly (I-/X-frames) or
    implicitly folded into the CRC (N-frames), so a receiver with a
    different C-state will reject the frame as incorrect. *)

type t = {
  global_time : int;  (** 16-bit cluster time, in macroticks *)
  round_slot : int;  (** position in the cluster cycle (MEDL position) *)
  mode : int;  (** active cluster mode (the paper does not model mode
                   changes; kept for frame-format fidelity) *)
  membership : Membership.t;
}

let make ?(mode = 0) ~global_time ~round_slot ~membership () =
  { global_time = global_time land 0xFFFF; round_slot; mode; membership }

let initial ~nodes =
  make ~global_time:0 ~round_slot:0 ~membership:(Membership.full ~nodes) ()

let equal a b =
  a.global_time = b.global_time
  && a.round_slot = b.round_slot
  && a.mode = b.mode
  && Membership.equal a.membership b.membership

(* Field layout used when the C-state is transmitted explicitly in an
   I-frame: 16 bits global time, 16 bits MEDL position, 16 bits
   membership — the 48-bit layout the paper uses when deriving the
   76-bit I-frame. The cluster mode travels in the frame header (mode
   change request), not here. *)
let to_fields cs =
  [
    (cs.global_time, 16);
    (cs.round_slot, 16);
    (Membership.to_int cs.membership, 16);
  ]

(* X-frames carry a 96-bit C-state: the I-frame fields plus the mode and
   two reserved words. *)
let to_fields_x cs = to_fields cs @ [ (cs.mode, 16); (0, 16); (0, 16) ]

let bits cs = List.fold_left (fun acc (_, n) -> acc + n) 0 (to_fields cs)

(* Advance the C-state across one TDMA slot: time moves by the slot
   duration, the round slot wraps at the cluster-cycle length. *)
let advance ~slots ~slot_duration cs =
  {
    cs with
    global_time = (cs.global_time + slot_duration) land 0xFFFF;
    round_slot = (cs.round_slot + 1) mod slots;
  }

let pp ppf cs =
  Format.fprintf ppf "t=%d slot=%d mode=%d members=0x%x" cs.global_time
    cs.round_slot cs.mode
    (Membership.to_int cs.membership)

let to_string cs = Format.asprintf "%a" pp cs
