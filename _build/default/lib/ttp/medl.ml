(** The Message Descriptor List (MEDL).

    TTP/C is statically scheduled: before start-up, every node holds the
    same MEDL describing the TDMA round — which node sends in which
    slot, for how long, and what kind of frame. The paper's model works
    with one round of [n] single-sender slots; this module also supports
    multi-round cluster cycles and per-slot durations so the simulator
    can exercise richer schedules. *)

type slot = {
  sender : int;  (** node id transmitting in this slot *)
  duration : int;  (** slot length in macroticks *)
  frame_kind : Frame.kind;  (** scheduled frame kind in normal operation *)
}

type t = {
  slots : slot array;  (** one TDMA round *)
  rounds_per_cycle : int;
}

let make ?(rounds_per_cycle = 1) slots =
  if slots = [] then invalid_arg "Medl.make: empty schedule";
  if rounds_per_cycle < 1 then invalid_arg "Medl.make: bad cycle length";
  let arr = Array.of_list slots in
  Array.iter
    (fun s ->
      if s.sender < 0 then invalid_arg "Medl.make: negative sender";
      if s.duration <= 0 then invalid_arg "Medl.make: non-positive duration")
    arr;
  { slots = arr; rounds_per_cycle }

(* The schedule used throughout the paper: [nodes] nodes, one slot each,
   node [i] sending an I-frame (explicit C-state) in slot [i]. *)
let uniform ~nodes ?(duration = 10) ?(frame_kind = Frame.I) () =
  make
    (List.init nodes (fun i -> { sender = i; duration; frame_kind }))

let slots t = Array.length t.slots
let slot_desc t i = t.slots.(i mod Array.length t.slots)
let sender_of_slot t i = (slot_desc t i).sender
let duration_of_slot t i = (slot_desc t i).duration
let frame_kind_of_slot t i = (slot_desc t i).frame_kind
let next_slot t i = (i + 1) mod slots t

(* Number of nodes mentioned by the schedule. *)
let nodes t =
  Array.fold_left (fun acc s -> max acc (s.sender + 1)) 0 t.slots

(* The slot in which [node] transmits, if any. The paper's model
   assumes every node owns exactly one slot per round. *)
let slot_of_node t node =
  let rec go i =
    if i >= slots t then None
    else if (slot_desc t i).sender = node then Some i
    else go (i + 1)
  in
  go 0

(* Round duration in macroticks. *)
let round_duration t =
  Array.fold_left (fun acc s -> acc + s.duration) 0 t.slots

let pp ppf t =
  Format.fprintf ppf "@[<v>MEDL (%d slots/round, %d rounds/cycle):@,"
    (slots t) t.rounds_per_cycle;
  Array.iteri
    (fun i s ->
      Format.fprintf ppf "  slot %d: node %d, %d macroticks@," i s.sender
        s.duration)
    t.slots;
  Format.fprintf ppf "@]"
