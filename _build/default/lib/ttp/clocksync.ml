(** Fault-tolerant distributed clock synchronization.

    TTP/C keeps node clocks aligned with the fault-tolerant average
    (FTA) algorithm: each node measures, for the frames of the last few
    slots, the deviation between a frame's actual and expected arrival
    time; the [k] largest and [k] smallest measurements are discarded
    (tolerating up to [k] Byzantine clocks) and the remainder is
    averaged to produce a correction term applied to the local clock.

    The functions here are pure; the simulator's node-clock model feeds
    them with measured deviations and applies the returned corrections.
    The analysis in Section 6 of the paper depends only on worst-case
    oscillator drift (in ppm), which {!drift_bound} captures. *)

(* Fault-tolerant average of the measured deviations (in microticks):
   drop the [discard] extremes on each side and average the rest.
   Returns 0 when too few measurements survive, matching a controller
   that leaves its clock alone for lack of evidence. *)
let fta ?(discard = 1) deviations =
  let n = List.length deviations in
  if n <= 2 * discard then 0
  else begin
    let sorted = List.sort compare deviations in
    let trimmed = List.filteri (fun i _ -> i >= discard && i < n - discard) sorted in
    let sum = List.fold_left ( + ) 0 trimmed in
    (* Round toward zero, as integer division does: a deliberate bias
       that avoids oscillating around the midpoint. *)
    sum / List.length trimmed
  end

(* Worst-case relative clock-rate difference between two oscillators of
   the given tolerances (in parts per million). With both at 100 ppm —
   a typical commodity crystal — this is the paper's Delta = 0.0002. *)
let drift_bound ~ppm_a ~ppm_b = float_of_int (ppm_a + ppm_b) /. 1_000_000.

(* Precision of the synchronized ensemble: with FTA the achievable
   precision is bounded by (reading error + drift offset) * n/(n-2k)
   for n clocks and k tolerated faults. A coarse but standard bound,
   used by the simulator to size its acceptance windows. *)
let fta_precision ~n ~k ~reading_error ~drift_offset =
  if n <= 2 * k then invalid_arg "Clocksync.fta_precision: need n > 2k";
  (reading_error +. drift_offset) *. float_of_int n /. float_of_int (n - (2 * k))

(* One synchronization interval of a simple local-clock model: given a
   rate deviation in ppm and an interval in microticks, how far the
   local clock wanders before the next correction. *)
let wander ~ppm ~interval =
  float_of_int interval *. float_of_int ppm /. 1_000_000.
