lib/ttp/clocksync.mli:
