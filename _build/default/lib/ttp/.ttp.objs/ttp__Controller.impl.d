lib/ttp/controller.ml: Cstate Format Frame Medl Membership
