lib/ttp/membership.mli: Format
