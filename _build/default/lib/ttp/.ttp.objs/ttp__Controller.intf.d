lib/ttp/controller.mli: Cstate Format Frame Medl Membership
