lib/ttp/membership.ml: Format Fun List String
