lib/ttp/crc.mli:
