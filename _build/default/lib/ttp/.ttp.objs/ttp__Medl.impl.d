lib/ttp/medl.ml: Array Format Frame List
