lib/ttp/frame.ml: Crc Cstate Format List Membership
