lib/ttp/cstate.ml: Format List Membership
