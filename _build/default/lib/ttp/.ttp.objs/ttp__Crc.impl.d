lib/ttp/crc.ml: Bool List
