lib/ttp/cstate.mli: Format Membership
