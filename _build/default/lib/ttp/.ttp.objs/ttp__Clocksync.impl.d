lib/ttp/clocksync.ml: List
