lib/ttp/medl.mli: Format Frame
