lib/ttp/frame.mli: Cstate Format
