(** The Message Descriptor List (MEDL).

    TTP/C is statically scheduled: before start-up every node holds the
    same MEDL describing the TDMA round — which node sends in which
    slot, for how long, and what kind of frame. *)

type slot = {
  sender : int;  (** node id transmitting in this slot *)
  duration : int;  (** slot length in macroticks *)
  frame_kind : Frame.kind;  (** scheduled frame kind in normal operation *)
}

type t

val make : ?rounds_per_cycle:int -> slot list -> t
(** @raise Invalid_argument on empty schedules, negative senders or
    non-positive durations. *)

val uniform :
  nodes:int -> ?duration:int -> ?frame_kind:Frame.kind -> unit -> t
(** The schedule used throughout the paper: [nodes] slots, node [i]
    sending in slot [i]. *)

val slots : t -> int
(** Slots per TDMA round. *)

val slot_desc : t -> int -> slot
val sender_of_slot : t -> int -> int
val duration_of_slot : t -> int -> int
val frame_kind_of_slot : t -> int -> Frame.kind
val next_slot : t -> int -> int

val nodes : t -> int
(** Number of nodes mentioned by the schedule. *)

val slot_of_node : t -> int -> int option
(** The slot in which a node transmits, if any. *)

val round_duration : t -> int
(** In macroticks. *)

val pp : Format.formatter -> t -> unit
