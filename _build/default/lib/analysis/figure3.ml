(** Figure 3 of the paper: the relationship between the frame-size
    range and the allowable ratio of clock rates.

    For line-encoding overhead le = 4, the curve plots
    rho_max/rho_min = f_max / (f_max - f_min + 1 + le) as a function of
    f_max, for a family of f_min values; feasible systems lie below the
    curve. The paper highlights that at f_min = f_max = 128 the ratio
    is not f_max but f_max / 5 (25.6), because of the "1 + le" term. *)

type point = { f_max : int; ratio : float option }

type series = { f_min : int; le : int; points : point list }

(* One curve: sweep f_max from f_min upward. *)
let series ?(le = Frames_catalog.line_encoding_bits) ~f_min ~f_max_values () =
  let points =
    List.map
      (fun f_max ->
        { f_max; ratio = Buffer.clock_ratio_limit ~f_min ~le ~f_max })
      (List.filter (fun f -> f >= f_min) f_max_values)
  in
  { f_min; le; points }

(* The default sweep used by the benchmark harness: powers-of-two-ish
   f_max values spanning the protocol's frame range, for the f_min
   values of interest (the protocol minimum 28, and the paper's
   highlighted 128). *)
let default_f_max_values =
  [ 28; 32; 48; 64; 76; 96; 128; 192; 256; 384; 512; 768; 1024; 1536; 2076 ]

let default_families () =
  List.map
    (fun f_min -> series ~f_min ~f_max_values:default_f_max_values ())
    [ 28; 64; 128 ]

(* The specific point called out in the paper's text. *)
let highlighted_point () =
  Buffer.clock_ratio_limit ~f_min:128
    ~le:Frames_catalog.line_encoding_bits ~f_max:128

let pp_series ppf s =
  Format.fprintf ppf "@[<v>f_min = %d (le = %d):@," s.f_min s.le;
  List.iter
    (fun { f_max; ratio } ->
      match ratio with
      | Some r -> Format.fprintf ppf "  f_max %5d  ratio %8.3f@," f_max r
      | None -> Format.fprintf ppf "  f_max %5d  infeasible@," f_max)
    s.points;
  Format.fprintf ppf "@]"
