(** Frame-size constants of the TTP/C Bus-Compatibility Specification,
    as quoted in Section 6 of the paper.

    The paper quotes 40 bits for the minimal cold-start frame although
    its own field list (1 + 16 + 9 + 24) sums to 50; the constants here
    keep the quoted totals so every numeric result matches the
    published ones, while the executable codec encodes the field lists
    faithfully ({!codec_sizes} shows both). *)

val line_encoding_bits : int
(** Bits that must always be buffered before forwarding can begin (the
    [le] term of equation 1). *)

val min_n_frame_bits : int
(** Shortest TTP/C frame: an N-frame with no payload, 28 bits. *)

val min_cold_start_bits : int
(** The paper's quoted 40 bits. *)

val min_i_frame_bits : int
(** The paper's quoted 48-bit minimal explicit-C-state frame. *)

val protocol_i_frame_bits : int
(** Largest frame required for minimal protocol operation: 76 bits. *)

val max_x_frame_bits : int
(** Longest allowable frame: a 2076-bit X-frame. *)

val commodity_oscillator_delta : float
(** Worst-case relative clock difference of two 100 ppm crystals
    (equation 5): 0.0002. *)

val codec_sizes : unit -> (string * int) list
(** The executable codec's actual sizes, for cross-checking. *)
