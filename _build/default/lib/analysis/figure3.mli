(** Figure 3 of the paper: the relationship between the frame-size
    range and the allowable ratio of clock rates, for line-encoding
    overhead le = 4. Feasible systems lie below the curve. *)

type point = { f_max : int; ratio : float option }

type series = { f_min : int; le : int; points : point list }

val series : ?le:int -> f_min:int -> f_max_values:int list -> unit -> series
(** One curve; values below [f_min] are dropped. *)

val default_f_max_values : int list

val default_families : unit -> series list
(** The curves the benchmark harness prints: f_min in {28, 64, 128}. *)

val highlighted_point : unit -> float option
(** The point the paper's text calls out: f_min = f_max = 128 gives
    ratio f_max/5 = 25.6, not f_max — the effect of the "1 + le" term. *)

val pp_series : Format.formatter -> series -> unit
