(** Frame-size constants of the TTP/C Bus-Compatibility Specification,
    as quoted in Section 6 of the paper.

    These are the inputs of the buffer-size analysis. The paper quotes
    the totals below; note that its cold-start field list (1 + 16 + 9 +
    24 bits) actually sums to 50, not the quoted 40 — we keep the
    quoted totals here so every numeric result matches the published
    ones, and the executable codec in [lib/ttp/frame.ml] encodes the
    field lists faithfully. *)

(* Line-encoding bits that must always be buffered before forwarding
   can begin (the [le] term of equation 1). *)
let line_encoding_bits = 4

(* Shortest frame in TTP/C: an N-frame with no application data and an
   implicit CRC — 4 bits mode-change request and frame type, 24 bits
   CRC. *)
let min_n_frame_bits = 28

(* Minimum cold-start frame as quoted by the paper. *)
let min_cold_start_bits = 40

(* Minimum frame with explicit C-state (I-frame) as quoted. *)
let min_i_frame_bits = 48

(* Largest frame required for minimal protocol operation: an I-frame of
   4 + 16 + 16 + 16 + 24 bits. *)
let protocol_i_frame_bits = 76

(* Longest allowable TTP/C frame: an X-frame with 4 bits header, 96
   bits C-state, 1920 data bits, two 24-bit CRCs and 8 bits padding. *)
let max_x_frame_bits = 2076

(* Worst-case relative clock difference between two 100 ppm commodity
   crystal oscillators (equation 5): one fast, one slow. *)
let commodity_oscillator_delta = 0.0002

(* Cross-check values against the executable codec, for the tests: the
   codec's minimal N-frame and maximal X-frame must match the
   specification totals exactly; the explicit-C-state sizes follow the
   field lists. *)
let codec_sizes () =
  let open Ttp in
  let cs = Cstate.initial ~nodes:4 in
  let n = Frame.make ~kind:Frame.N ~sender:0 ~cstate:cs () in
  let i = Frame.make ~kind:Frame.I ~sender:0 ~cstate:cs () in
  let c = Frame.make ~kind:Frame.Cold_start ~sender:0 ~cstate:cs () in
  let x =
    Frame.make ~kind:Frame.X ~sender:0 ~cstate:cs
      ~payload:(List.init 120 (fun _ -> 0))
      ()
  in
  [
    ("N", Frame.size_bits n);
    ("I", Frame.size_bits i);
    ("cold-start", Frame.size_bits c);
    ("X-max", Frame.size_bits x);
  ]
