(** The buffer-size / frame-size / clock-rate tradeoffs of Section 6
    (equations (1)-(10) of the paper, implemented verbatim).

    A central guardian that reshapes signals or analyzes semantics must
    buffer part of every frame (B_min, equation 1); one that may not
    store a complete frame — to preserve the passive-channel fault
    hypothesis — is bounded by the shortest frame (B_max, equation 3).
    Squeezing the bounds couples frame sizes to clock rates. *)

val delta : rho_max:float -> rho_min:float -> float
(** Equation (2): relative difference of the faster and slower clock.
    @raise Invalid_argument if rho_max < rho_min or rates are not
    positive. *)

val b_min : le:int -> delta:float -> f_max:int -> float
(** Equation (1): minimum bits the guardian must buffer. *)

val b_max : f_min:int -> int
(** Equation (3): strictly less than the shortest frame. *)

val f_max_limit : f_min:int -> le:int -> delta:float -> float
(** Equation (4): the largest transmittable frame; [infinity] at
    delta = 0. *)

val delta_limit : f_min:int -> le:int -> f_max:int -> float
(** Equation (7): the largest tolerable clock difference. *)

val clock_ratio_limit : f_min:int -> le:int -> f_max:int -> float option
(** Equation (10): the largest rho_max/rho_min; [None] when the frame
    range admits no clock spread at all. *)

val feasible :
  f_min:int -> f_max:int -> le:int -> rho_max:float -> rho_min:float -> bool
(** The design rule behind Figure 3: B_min <= B_max for these
    parameters. *)

(** {1 The paper's worked examples} *)

type worked_example = {
  label : string;
  f_min : int;
  f_max : int option;
  le : int;
  delta_in : float option;
  result : float;
  unit_ : string;
}

val example_commodity_f_max : unit -> worked_example
(** Equation (6): 115,000 bits. *)

val example_minimal_protocol_delta : unit -> worked_example
(** Equation (8): 30.26 %. *)

val example_max_frame_delta : unit -> worked_example
(** Equation (9): 1.11 %. *)

val worked_examples : unit -> worked_example list
