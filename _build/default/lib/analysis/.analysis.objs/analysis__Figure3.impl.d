lib/analysis/figure3.ml: Buffer Format Frames_catalog List
