lib/analysis/frames_catalog.mli:
