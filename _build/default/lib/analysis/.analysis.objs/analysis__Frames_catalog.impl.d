lib/analysis/frames_catalog.ml: Cstate Frame List Ttp
