lib/analysis/buffer.ml: Frames_catalog
