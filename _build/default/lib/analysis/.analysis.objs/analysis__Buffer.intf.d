lib/analysis/buffer.mli:
