lib/analysis/figure3.mli: Format
