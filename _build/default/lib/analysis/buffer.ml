(** The buffer-size / frame-size / clock-rate tradeoffs of Section 6.

    A central guardian that reshapes signals or analyzes frame
    semantics must buffer part of every frame; a guardian that may not
    store a complete frame (to preserve the passive-channel fault
    hypothesis) is bounded above by the shortest frame. Squeezing the
    two bounds yields the paper's equations (1)-(10), implemented here
    verbatim:

    - eq (1)  B_min = le + Delta * f_max
    - eq (2)  Delta = (rho_max - rho_min) / rho_max
    - eq (3)  B_max = f_min - 1
    - eq (4)  f_max = (f_min - 1 - le) / Delta
    - eq (7)  Delta_max = (f_min - 1 - le) / f_max
    - eq (10) rho_max/rho_min = f_max / (f_max - f_min + 1 + le) *)

(* eq (2): relative clock difference of the faster and slower rate. *)
let delta ~rho_max ~rho_min =
  if rho_max < rho_min then invalid_arg "Buffer.delta: rho_max < rho_min";
  if rho_max <= 0.0 then invalid_arg "Buffer.delta: non-positive rate";
  (rho_max -. rho_min) /. rho_max

(* eq (1): minimum bits the guardian must buffer to forward a frame of
   [f_max] bits across a relative clock difference [delta]. *)
let b_min ~le ~delta ~f_max = float_of_int le +. (delta *. float_of_int f_max)

(* eq (3): maximum buffer compatible with the passive-fault hypothesis:
   strictly less than the shortest frame. *)
let b_max ~f_min = f_min - 1

(* eq (4): largest frame transmittable given the shortest frame, the
   line-encoding overhead and the clock difference. *)
let f_max_limit ~f_min ~le ~delta =
  if delta <= 0.0 then infinity
  else float_of_int (f_min - 1 - le) /. delta

(* eq (7): largest clock difference given both frame-size extremes. *)
let delta_limit ~f_min ~le ~f_max =
  if f_max <= 0 then invalid_arg "Buffer.delta_limit: f_max must be positive";
  float_of_int (f_min - 1 - le) /. float_of_int f_max

(* eq (10): largest allowable ratio of fastest to slowest clock. The
   denominator going non-positive means no positive clock ratio
   satisfies the constraints (the frame range is too wide). *)
let clock_ratio_limit ~f_min ~le ~f_max =
  let denom = f_max - f_min + 1 + le in
  if denom <= 0 then None
  else Some (float_of_int f_max /. float_of_int denom)

(* The feasibility check behind the curve of Figure 3: a system with
   frame sizes in [f_min, f_max] and clock rates in [rho_min, rho_max]
   is safe iff the minimum required buffer stays below the maximum
   allowed one. *)
let feasible ~f_min ~f_max ~le ~rho_max ~rho_min =
  let d = delta ~rho_max ~rho_min in
  b_min ~le ~delta:d ~f_max <= float_of_int (b_max ~f_min)

(* ------------------------------------------------------------------ *)
(* The paper's worked examples (Section 6). *)

type worked_example = {
  label : string;
  f_min : int;
  f_max : int option;  (** given frame maximum, when the example fixes it *)
  le : int;
  delta_in : float option;  (** given clock difference, when fixed *)
  result : float;
  unit_ : string;
}

(* eq (6): commodity oscillators (Delta = 0.0002), f_min = 28, le = 4
   => largest allowable frame 115,000 bits. *)
let example_commodity_f_max () =
  let v =
    f_max_limit ~f_min:Frames_catalog.min_n_frame_bits
      ~le:Frames_catalog.line_encoding_bits
      ~delta:Frames_catalog.commodity_oscillator_delta
  in
  {
    label = "eq (6): f_max with 100 ppm crystals";
    f_min = Frames_catalog.min_n_frame_bits;
    f_max = None;
    le = Frames_catalog.line_encoding_bits;
    delta_in = Some Frames_catalog.commodity_oscillator_delta;
    result = v;
    unit_ = "bits";
  }

(* eq (8): minimal protocol operation (f_max = 76) allows up to 30.26 %
   clock difference. *)
let example_minimal_protocol_delta () =
  let v =
    delta_limit ~f_min:Frames_catalog.min_n_frame_bits
      ~le:Frames_catalog.line_encoding_bits
      ~f_max:Frames_catalog.protocol_i_frame_bits
  in
  {
    label = "eq (8): Delta limit at f_max = 76";
    f_min = Frames_catalog.min_n_frame_bits;
    f_max = Some Frames_catalog.protocol_i_frame_bits;
    le = Frames_catalog.line_encoding_bits;
    delta_in = None;
    result = v;
    unit_ = "relative";
  }

(* eq (9): maximal X-frames (f_max = 2076) allow only 1.11 %. *)
let example_max_frame_delta () =
  let v =
    delta_limit ~f_min:Frames_catalog.min_n_frame_bits
      ~le:Frames_catalog.line_encoding_bits
      ~f_max:Frames_catalog.max_x_frame_bits
  in
  {
    label = "eq (9): Delta limit at f_max = 2076";
    f_min = Frames_catalog.min_n_frame_bits;
    f_max = Some Frames_catalog.max_x_frame_bits;
    le = Frames_catalog.line_encoding_bits;
    delta_in = None;
    result = v;
    unit_ = "relative";
  }

let worked_examples () =
  [
    example_commodity_f_max ();
    example_minimal_protocol_delta ();
    example_max_frame_delta ();
  ]
