(** Fault modes of a star coupler.

    The paper's model gives each coupler one of three error states plus
    error-free operation. The out-of-slot fault (replaying the last
    buffered frame) only exists for couplers configured for full frame
    shifting; all other faults can occur in any configuration. *)

type t =
  | Healthy
  | Silence  (** every frame on this channel is replaced by silence *)
  | Bad_frame  (** noise is placed on the channel, frame or not *)
  | Out_of_slot  (** the last received frame is re-sent in this slot *)

val to_string : t -> string
val of_string : string -> t option
val all : t list

val possible_for : Feature_set.t -> t list
(** The faults a coupler of the given authority can exhibit. *)

val pp : Format.formatter -> t -> unit
