(** The star coupler / central bus guardian.

    One coupler instance is the hub of one channel of the star
    topology. Per TDMA slot it receives the transmission attempts of
    all connected nodes (it knows the physical port, hence the true
    sender) and decides what the channel carries. Its behaviour depends
    on its {!Feature_set.t} and its current {!Fault.t} state.

    Like a node, the guardian must integrate before it can enforce the
    TDMA schedule: while unsynchronized it opens all windows (otherwise
    no cluster could start up), and it adopts the timeline of the first
    cold-start or explicit-C-state frame it forwards. *)

open Ttp

type attempt = {
  sender : int;  (** physical port = true sending node *)
  frame : Frame.t;
  crc : int;  (** CRC bits as transmitted (a faulty node may corrupt them) *)
  sos_timing : float;
      (** deviation from the slot window: 0 = clean, (0, 1] = marginal
          (receivers disagree), > 1 = clearly invalid *)
  sos_value : float;  (** signal-level deviation, same scale *)
}

val clean_attempt : sender:int -> frame:Frame.t -> crc:int -> attempt

(** What the channel carries during the slot. [degradation] is the
    surviving SOS deviation: each receiver compares it against its own
    hardware tolerance to judge validity. *)
type output =
  | Ch_silence
  | Ch_noise
  | Ch_frame of { frame : Frame.t; crc : int; degradation : float }

type t

val create :
  ?feature_set:Feature_set.t -> ?data_continuity:bool -> channel:int ->
  medl:Medl.t -> unit -> t
(** A healthy, unsynchronized coupler for channel 0 or 1.
    [data_continuity] enables the per-slot mailbox service discussed in
    Section 6: a dead slot is filled with the slot's previous frame.
    This is the "tempting functionality" whose hazard the paper
    analyzes — the substitution is functionally an out-of-slot
    retransmission even with no fault present.
    @raise Invalid_argument if data continuity is requested without
    full-frame buffering. *)

val substitutions : t -> int
(** How many dead slots the data-continuity mailbox has filled. *)

val set_fault : t -> Fault.t -> unit
(** @raise Invalid_argument when the fault is impossible for this
    coupler's feature set (e.g. out-of-slot without a buffer). *)

val fault : t -> Fault.t
val feature_set : t -> Feature_set.t
val channel : t -> int

val buffered_frame : t -> (Frame.t * int) option
(** The frame (and its CRC) a full-shifting coupler currently retains. *)

val synchronized : t -> bool

val max_sos : float
(** Deviations above this are beyond repair for any receiver. *)

val step : t -> attempt list -> output
(** One TDMA slot: apply time windows, reshaping and semantic analysis
    per the feature set, then the fault mode; maintain the buffer and
    the guardian's own timeline. *)

val observe : output -> tolerance:float -> Controller.observation
(** Receiver-side view of the channel: a receiver with the given SOS
    tolerance in (0, 1) judges the frame's validity. This is where SOS
    disagreement between receivers materializes. *)
