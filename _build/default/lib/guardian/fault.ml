(** Fault modes of a star coupler.

    The paper's model gives each coupler one of three error states —
    silence, bad frame, out-of-slot — plus error-free operation. The
    out-of-slot fault (replaying the last buffered frame in a later
    slot) {e only exists} for couplers configured for full frame
    shifting; all other faults can occur in any configuration. TTP/C's
    single-fault hypothesis allows at most one faulty coupler at a
    time; the simulator and the formal model both enforce it. *)

type t =
  | Healthy
  | Silence  (** every frame on this channel is replaced by silence *)
  | Bad_frame  (** noise is placed on the channel, frame or not *)
  | Out_of_slot  (** the last received frame is re-sent in this slot *)

let to_string = function
  | Healthy -> "healthy"
  | Silence -> "silence"
  | Bad_frame -> "bad-frame"
  | Out_of_slot -> "out-of-slot"

let of_string = function
  | "healthy" -> Some Healthy
  | "silence" -> Some Silence
  | "bad-frame" -> Some Bad_frame
  | "out-of-slot" -> Some Out_of_slot
  | _ -> None

let all = [ Healthy; Silence; Bad_frame; Out_of_slot ]

(* Which faults a coupler of the given authority can exhibit: the
   out-of-slot replay requires a full-frame buffer to replay from. *)
let possible_for feature_set =
  List.filter
    (function
      | Out_of_slot -> Feature_set.buffers_full_frames feature_set
      | Healthy | Silence | Bad_frame -> true)
    all

let pp ppf f = Format.pp_print_string ppf (to_string f)
