(** The star coupler / central bus guardian.

    One coupler instance is the hub of one channel of the star
    topology. Per TDMA slot it receives the transmission attempts of
    all connected nodes (it knows the physical port, hence the true
    sender) and decides what the channel carries: the forwarded frame,
    silence, or noise. Its behaviour depends on its {!Feature_set.t}
    (how much authority it has) and its current {!Fault.t} state.

    Like a node, the guardian must first integrate before it can
    enforce the TDMA schedule: while unsynchronized it opens all
    windows (otherwise no cluster could ever start up), and it adopts
    the timeline of the first cold-start or explicit-C-state frame it
    forwards. Semantic analysis compares only the time and schedule
    position of a frame's C-state against the guardian's own copy —
    the guardian does not track membership, since it never judges frame
    correctness the way nodes do.

    Transmission attempts carry slightly-off-specification (SOS)
    deviations in the timing and value domains. A marginal deviation is
    judged differently by different receivers (that is precisely what
    makes SOS faults dangerous); a coupler with reshaping authority
    normalizes marginal frames so all receivers agree. *)

open Ttp

type attempt = {
  sender : int;  (** physical port = true sending node *)
  frame : Frame.t;
  crc : int;  (** CRC bits as transmitted (a faulty node may corrupt them) *)
  sos_timing : float;
      (** deviation from the slot window: 0 = clean, (0, 1] = marginal
          (receivers disagree), > 1 = clearly invalid *)
  sos_value : float;  (** signal-level deviation, same scale *)
}

let clean_attempt ~sender ~frame ~crc =
  { sender; frame; crc; sos_timing = 0.0; sos_value = 0.0 }

(** What the channel carries during the slot. [degradation] is the
    surviving SOS deviation: each receiver [r] compares it against its
    own hardware tolerance to judge validity. *)
type output =
  | Ch_silence
  | Ch_noise
  | Ch_frame of { frame : Frame.t; crc : int; degradation : float }

(* The guardian's own view of the cluster timeline: global time and
   round slot only. *)
type timeline = { g_time : int; g_slot : int }

type t = {
  channel : int;  (** 0 or 1; selects the CRC flavour *)
  feature_set : Feature_set.t;
  medl : Medl.t;
  mutable fault : Fault.t;
  (* Full-shifting couplers retain the last frame that crossed the hub;
     this is the buffer whose replay the paper's out-of-slot fault
     models. *)
  mutable buffered : (Frame.t * int) option;
  mutable timeline : timeline option;  (** None = unsynchronized *)
  (* The "data continuity" enhancement discussed in Section 6 of the
     paper: per-slot mailboxes holding the most recent frame of each
     slot, served when the slot would otherwise carry nothing. The
     paper's point is that providing it requires full-frame buffering —
     and the substitution is, functionally, an out-of-slot
     retransmission even with no fault present. [None] = disabled. *)
  mailboxes : (Frame.t * int) option array option;
  mutable substitutions : int;
}

let create ?(feature_set = Feature_set.Time_windows)
    ?(data_continuity = false) ~channel ~medl () =
  if channel < 0 || channel > 1 then invalid_arg "Coupler.create: channel";
  if data_continuity && not (Feature_set.buffers_full_frames feature_set)
  then
    invalid_arg
      "Coupler.create: the data-continuity mailbox requires full-frame \
       buffering";
  {
    channel;
    feature_set;
    medl;
    fault = Fault.Healthy;
    buffered = None;
    timeline = None;
    mailboxes =
      (if data_continuity then Some (Array.make (Medl.slots medl) None)
       else None);
    substitutions = 0;
  }

let set_fault t f =
  if not (List.mem f (Fault.possible_for t.feature_set)) then
    invalid_arg
      (Printf.sprintf "Coupler.set_fault: %s impossible for %s coupler"
         (Fault.to_string f)
         (Feature_set.to_string t.feature_set));
  t.fault <- f

let fault t = t.fault
let feature_set t = t.feature_set
let channel t = t.channel
let buffered_frame t = t.buffered
let synchronized t = t.timeline <> None
let substitutions t = t.substitutions

let max_sos = 1.0

(* Semantic analysis, available only with full-frame buffering: block
   cold-start frames whose round-slot field does not match the actual
   sender's scheduled slot (masquerading), and block explicit-C-state
   frames whose time/slot disagree with the guardian's own timeline
   (invalid C-state propagation). *)
let semantic_ok t (a : attempt) =
  match a.frame.Frame.kind with
  | Frame.Cold_start -> (
      match Medl.slot_of_node t.medl a.sender with
      | Some s -> a.frame.Frame.cstate.Cstate.round_slot = s
      | None -> false)
  | Frame.I | Frame.X -> (
      match t.timeline with
      | None -> true (* cannot judge while unsynchronized *)
      | Some tl ->
          a.frame.Frame.cstate.Cstate.global_time = tl.g_time
          && a.frame.Frame.cstate.Cstate.round_slot = tl.g_slot)
  | Frame.N -> true (* implicit C-state is not inspectable *)

(* The healthy data path: what would the coupler forward this slot? *)
let forward_healthy t attempts =
  let allowed =
    match t.timeline with
    | Some tl when Feature_set.enforces_time_windows t.feature_set ->
        let scheduled = Medl.sender_of_slot t.medl tl.g_slot in
        List.filter (fun a -> a.sender = scheduled) attempts
    | Some _ | None -> attempts
  in
  let allowed =
    if Feature_set.semantic_analysis t.feature_set then
      List.filter (semantic_ok t) allowed
    else allowed
  in
  match allowed with
  | [] -> Ch_silence
  | [ a ] ->
      let degradation = Float.max a.sos_timing a.sos_value in
      if Feature_set.reshapes_sos t.feature_set then
        if degradation <= max_sos then
          (* Active signal reshaping: boost the level and realign the
             timing, so every receiver sees a clean frame. *)
          Ch_frame { frame = a.frame; crc = a.crc; degradation = 0.0 }
        else
          (* Too far off to repair: suppress rather than propagate a
             frame some receivers might still accept. *)
          Ch_silence
      else if degradation > max_sos then Ch_noise
      else Ch_frame { frame = a.frame; crc = a.crc; degradation }
  | _ :: _ :: _ ->
      (* Two simultaneous transmissions collide on the hub. *)
      Ch_noise

(* Maintain the guardian's timeline: adopt one from integration-capable
   frames it forwards; otherwise advance slot by slot. *)
let update_timeline t out =
  let slots = Medl.slots t.medl in
  let advance tl =
    {
      g_time =
        (tl.g_time + Medl.duration_of_slot t.medl tl.g_slot) land 0xFFFF;
      g_slot = (tl.g_slot + 1) mod slots;
    }
  in
  let adopted =
    match out with
    | Ch_frame { frame; _ } -> (
        match frame.Frame.kind with
        | Frame.Cold_start | Frame.I | Frame.X ->
            Some
              {
                g_time = frame.Frame.cstate.Cstate.global_time;
                g_slot = frame.Frame.cstate.Cstate.round_slot;
              }
        | Frame.N -> None)
    | Ch_silence | Ch_noise -> None
  in
  t.timeline <-
    (match (adopted, t.timeline) with
    | Some tl, _ -> Some (advance tl)
    | None, Some tl -> Some (advance tl)
    | None, None -> None)

(* One TDMA slot of coupler operation: apply the fault mode on top of
   the healthy data path, then the data-continuity substitution, and
   maintain the buffer, mailboxes and timeline. *)
let step t attempts =
  let healthy = forward_healthy t attempts in
  let out =
    match t.fault with
    | Fault.Healthy -> healthy
    | Fault.Silence -> Ch_silence
    | Fault.Bad_frame -> Ch_noise
    | Fault.Out_of_slot -> (
        match t.buffered with
        | Some (frame, crc) -> Ch_frame { frame; crc; degradation = 0.0 }
        | None -> Ch_silence)
  in
  (* The buffer records the last frame that actually crossed the hub
     (only full-shifting couplers have one). *)
  if Feature_set.buffers_full_frames t.feature_set then begin
    match out with
    | Ch_frame { frame; crc; _ } -> t.buffered <- Some (frame, crc)
    | Ch_silence | Ch_noise -> ()
  end;
  (* Data continuity: a loaded mailbox fills an otherwise dead slot
     with the slot's previous value. The guardian's own timeline is
     maintained from the {e pre}-substitution output — it knows the
     served frame is stale even if the receivers cannot. *)
  let final =
    match (t.mailboxes, t.timeline) with
    | Some boxes, Some tl -> (
        let slot_now = tl.g_slot in
        match out with
        | Ch_frame { frame; crc; _ } ->
            boxes.(slot_now) <- Some (frame, crc);
            out
        | Ch_silence | Ch_noise -> (
            match boxes.(slot_now) with
            | Some (frame, crc) ->
                t.substitutions <- t.substitutions + 1;
                Ch_frame { frame; crc; degradation = 0.0 }
            | None -> out))
    | _ -> out
  in
  update_timeline t out;
  final

(* Receiver-side validity of the channel output: receiver [tolerance]
   (in (0, 1)) accepts a degradation up to its own threshold. This is
   where SOS disagreement between receivers materializes. *)
let observe output ~tolerance =
  match output with
  | Ch_silence -> Controller.Silence
  | Ch_noise -> Controller.Noise
  | Ch_frame { frame; crc; degradation } ->
      Controller.Received { frame; crc; valid = degradation <= tolerance }
