(** Bit-level frame forwarding through the coupler — the "leaky bucket".

    Section 6 of the paper argues that whenever the guardian's clock
    rate differs from the sender's it must buffer part of the frame;
    the minimum is B_min = le + Delta * f_max (equation 1). This module
    simulates the forwarding bit by bit so the analytic bound can be
    checked against a measured peak occupancy (experiment E8). *)

type result = {
  start_buffer_bits : int;  (** bits withheld before forwarding began *)
  peak_occupancy : int;  (** maximum bits held at once *)
  underrun : bool;  (** the forwarder needed a bit it did not yet have *)
}

val simulate :
  node_rate:float -> guardian_rate:float -> frame_bits:int ->
  start_after:int -> result
(** Forward a frame arriving at [node_rate] while retransmitting at
    [guardian_rate] (bits per second), starting once [start_after] bits
    are fully received.
    @raise Invalid_argument on non-positive rates or a start outside
    [1, frame_bits]. *)

val minimal_start :
  node_rate:float -> guardian_rate:float -> frame_bits:int -> le:int -> int
(** Smallest start delay (at least [le], the line-encoding requirement)
    that forwards the whole frame without underrun. *)

val required_buffer :
  node_rate:float -> guardian_rate:float -> frame_bits:int -> le:int -> int
(** Measured minimum buffer: peak occupancy when starting as early as
    allowed — the quantity equation (1) bounds. *)

val analytic_bound :
  node_rate:float -> guardian_rate:float -> frame_bits:int -> le:int -> float
(** The paper's B_min = le + Delta * f_max. *)
