lib/guardian/fault.ml: Feature_set Format List
