lib/guardian/fault.mli: Feature_set Format
