lib/guardian/feature_set.ml: Format
