lib/guardian/coupler.ml: Array Controller Cstate Fault Feature_set Float Frame List Medl Printf Ttp
