lib/guardian/coupler.mli: Controller Fault Feature_set Frame Medl Ttp
