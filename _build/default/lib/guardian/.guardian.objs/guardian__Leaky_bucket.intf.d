lib/guardian/leaky_bucket.mli:
