lib/guardian/leaky_bucket.ml: Float
