lib/guardian/feature_set.mli: Format
