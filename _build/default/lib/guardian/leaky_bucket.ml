(** Bit-level frame forwarding through the coupler — the "leaky bucket".

    Section 6 of the paper argues that whenever the guardian's clock
    rate differs from the sender's, the guardian must buffer part of
    the frame: if the guardian is faster it must delay its start so it
    never runs out of bits mid-transmission; if it is slower, bits pile
    up. The minimum buffer is B_min = le + Delta * f_max (equation 1).

    This module simulates the forwarding bit by bit, so the analytic
    bound can be checked against a measured peak buffer occupancy
    (experiment E8 in DESIGN.md). Time is continuous (seconds as
    floats); a bit at rate [r] occupies 1/r seconds. *)

type result = {
  start_buffer_bits : int;  (** bits withheld before forwarding began *)
  peak_occupancy : int;  (** maximum bits held at once *)
  underrun : bool;  (** the forwarder needed a bit it did not yet have *)
}

(* Simulate forwarding a [frame_bits]-long frame arriving at
   [node_rate] while retransmitting at [guardian_rate], with forwarding
   starting once [start_after] bits are fully received. *)
let simulate ~node_rate ~guardian_rate ~frame_bits ~start_after =
  if node_rate <= 0.0 || guardian_rate <= 0.0 then
    invalid_arg "Leaky_bucket.simulate: rates must be positive";
  if start_after < 1 || start_after > frame_bits then
    invalid_arg "Leaky_bucket.simulate: start_after out of range";
  (* Bit [i] (0-based) is fully received at (i+1)/node_rate and its
     retransmission begins at t_start + i/guardian_rate. *)
  let t_start = float_of_int start_after /. node_rate in
  let received_by t =
    (* Bits fully received at time t. *)
    min frame_bits (int_of_float (Float.floor (t *. node_rate +. 1e-9)))
  in
  let underrun = ref false in
  let peak = ref 0 in
  for i = 0 to frame_bits - 1 do
    let send_begin = t_start +. (float_of_int i /. guardian_rate) in
    if received_by send_begin <= i then underrun := true;
    (* Occupancy just before bit [i] leaves: everything received minus
       everything already forwarded. *)
    let occ = received_by send_begin - i in
    if occ > !peak then peak := occ
  done;
  { start_buffer_bits = start_after; peak_occupancy = !peak; underrun = !underrun }

(* Smallest start-delay (at least [le], the line-encoding requirement)
   that forwards the whole frame without underrun. *)
let minimal_start ~node_rate ~guardian_rate ~frame_bits ~le =
  let rec go b =
    if b > frame_bits then frame_bits
    else if
      not (simulate ~node_rate ~guardian_rate ~frame_bits ~start_after:b)
            .underrun
    then b
    else go (b + 1)
  in
  go (max 1 le)

(* Measured minimum buffer: peak occupancy when starting as early as
   allowed. This is the quantity equation (1) bounds. *)
let required_buffer ~node_rate ~guardian_rate ~frame_bits ~le =
  let b = minimal_start ~node_rate ~guardian_rate ~frame_bits ~le in
  (simulate ~node_rate ~guardian_rate ~frame_bits ~start_after:b)
    .peak_occupancy

(* The paper's analytic bound (equation 1): B_min = le + Delta * f_max
   with Delta the relative rate difference (equation 2). *)
let analytic_bound ~node_rate ~guardian_rate ~frame_bits ~le =
  let fast = Float.max node_rate guardian_rate in
  let slow = Float.min node_rate guardian_rate in
  let delta = (fast -. slow) /. fast in
  float_of_int le +. (delta *. float_of_int frame_bits)
