(** Slot-synchronous simulation of a TTA cluster with star topology.

    Wires [n] TTP/C controllers to two redundant channels, each with
    its own star coupler / central bus guardian, and advances the whole
    system one TDMA slot at a time. Each slot proceeds in two phases:
    every controller is asked what it transmits (with node-level faults
    applied), the couplers turn the transmission attempts into channel
    outputs, then every controller observes both channels through its
    own receiver tolerance and advances.

    Everything observable is recorded in an {!Event_log.t}. *)

open Ttp

type t

val create :
  ?feature_set:Guardian.Feature_set.t ->
  ?data_continuity:bool ->
  ?config:Controller.config ->
  ?tolerances:float array ->
  Medl.t ->
  t
(** A powered-off cluster. [tolerances] gives each receiver's SOS
    acceptance threshold (default: a deterministic spread around 0.5,
    modeling hardware variation); [data_continuity] enables the
    couplers' mailbox service (requires full shifting).
    @raise Invalid_argument unless one tolerance per node is given. *)

val default_tolerances : int -> float array

(** {1 Inspection} *)

val medl : t -> Medl.t
val log : t -> Event_log.t
val controller : t -> int -> Controller.t
val coupler : t -> int -> Guardian.Coupler.t
val nodes : t -> int
val slots_elapsed : t -> int
val states : t -> Controller.protocol_state array
val count_in_state : t -> Controller.protocol_state -> int
val all_active : t -> bool
val any_frozen_with : t -> Controller.freeze_reason -> bool
val synchronized_count : t -> int
val pp_states : Format.formatter -> t -> unit

(** {1 Control} *)

val set_coupler_fault : t -> channel:int -> Guardian.Fault.t -> unit
val set_node_fault : t -> node:int -> Node_fault.t -> unit
val start_node : t -> int -> unit
val start_all : t -> unit

val set_drift : t -> Clock_model.t -> unit
(** Attach an oscillator-drift layer: transmissions acquire timing-SOS
    degradation from their sender's clock error, and FTA clock
    synchronization runs at every round boundary (if enabled in the
    model). @raise Invalid_argument unless one clock per node. *)

val drift : t -> Clock_model.t option

(** {1 Running} *)

val step : t -> unit
(** Advance one TDMA slot. *)

val run : t -> slots:int -> unit

val run_until : t -> ?max_slots:int -> (t -> bool) -> bool
(** Run until the predicate holds (checked before each step) or the
    budget runs out; returns whether it was reached. *)

val boot : ?max_slots:int -> t -> bool
(** Start every node and run until all are active; [false] means
    start-up did not complete within the budget. *)
