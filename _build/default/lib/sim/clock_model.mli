(** Per-node oscillator drift and distributed clock synchronization.

    Re-introduces the physics beneath the slot-synchronous simulator:
    every node's oscillator deviates by some ppm, its notion of the
    slot boundary wanders, and the offset — relative to the receivers'
    acceptance window — surfaces as timing-SOS degradation on the
    coupler layer. TTP/C bounds the wander with the fault-tolerant
    average ({!Ttp.Clocksync.fta}) applied at every round boundary. *)

type t

val create : ?sync:bool -> window:float -> ppm:float array -> unit -> t
(** One clock per node; [window] is the half-width of the nominal
    acceptance window in microticks ([sync:false] disables the
    correction, for drift experiments).
    @raise Invalid_argument on a non-positive window. *)

val nodes : t -> int
val error : t -> int -> float
(** Accumulated offset of a node's clock, microticks. *)

val advance : t -> slot_duration:int -> unit
(** One TDMA slot of drift. *)

val sos_of : t -> node:int -> float
(** The timing-SOS degradation of this node's transmissions right now:
    its offset from the ensemble median, relative to the window. *)

val apply_fta : t -> heard:int list -> unit
(** End-of-round synchronization: every node corrects by the
    fault-tolerant average of the deviations against the senders it
    [heard]. No-op when synchronization is disabled. *)

val spread : t -> float
(** Worst pairwise clock offset in the ensemble, microticks. *)

val median : t -> float
