(** Scripted simulation scenarios.

    A scenario is a list of timed actions applied to a cluster while it
    runs: start nodes, inject or clear coupler and node faults. The
    examples replay the paper's counterexample traces as scenarios, and
    the test suite asserts on the resulting event logs. *)

type action =
  | Start_node of int
  | Start_all
  | Coupler_fault of { channel : int; fault : Guardian.Fault.t }
  | Node_fault of { node : int; fault : Node_fault.t }
  | Custom of (Cluster.t -> unit)

type step = { at_slot : int; action : action }

type t = step list

let at at_slot action = { at_slot; action }

let apply cluster = function
  | Start_node i -> Cluster.start_node cluster i
  | Start_all -> Cluster.start_all cluster
  | Coupler_fault { channel; fault } ->
      Cluster.set_coupler_fault cluster ~channel fault
  | Node_fault { node; fault } -> Cluster.set_node_fault cluster ~node fault
  | Custom f -> f cluster

(* Run the cluster for [slots] TDMA slots, applying each scripted
   action right before the slot it is scheduled at. Actions are applied
   in list order within a slot. *)
let run scenario cluster ~slots =
  let pending = List.sort (fun a b -> compare a.at_slot b.at_slot) scenario in
  let rec go pending slot =
    if slot < slots then begin
      let now, later =
        List.partition (fun s -> s.at_slot <= slot) pending
      in
      List.iter (fun s -> apply cluster s.action) now;
      Cluster.step cluster;
      go later (slot + 1)
    end
  in
  go pending 0
