lib/sim/async_net.ml: Array List
