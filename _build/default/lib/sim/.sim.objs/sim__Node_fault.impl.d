lib/sim/node_fault.ml: Cstate Frame Guardian Printf Ttp
