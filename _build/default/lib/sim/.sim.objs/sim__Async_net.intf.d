lib/sim/async_net.mli:
