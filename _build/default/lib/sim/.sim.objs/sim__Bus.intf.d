lib/sim/bus.mli: Controller Event_log Medl Node_fault Ttp
