lib/sim/campaign.ml: Cluster Controller Event_log Guardian List Medl Printf Random Ttp
