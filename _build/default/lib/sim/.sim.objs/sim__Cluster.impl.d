lib/sim/cluster.ml: Array Clock_model Controller Event_log Float Format Frame Guardian List Medl Node_fault Printf Ttp
