lib/sim/clock_model.ml: Array Float List
