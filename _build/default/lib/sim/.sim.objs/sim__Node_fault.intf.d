lib/sim/node_fault.mli: Cstate Frame Guardian Ttp
