lib/sim/campaign.mli: Guardian
