lib/sim/scenario.ml: Cluster Guardian List Node_fault
