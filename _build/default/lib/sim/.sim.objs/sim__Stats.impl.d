lib/sim/stats.ml: Array Cluster Controller Event_log Format List Ttp
