lib/sim/bus.ml: Array Cluster Controller Event_log Float Frame Guardian List Medl Node_fault Ttp
