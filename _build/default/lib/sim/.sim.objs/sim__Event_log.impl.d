lib/sim/event_log.ml: Controller Format Frame Guardian List Printf Ttp
