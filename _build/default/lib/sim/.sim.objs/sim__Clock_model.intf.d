lib/sim/clock_model.mli:
