lib/sim/event_log.mli: Controller Format Frame Guardian Ttp
