lib/sim/stats.mli: Cluster Controller Event_log Format Ttp
