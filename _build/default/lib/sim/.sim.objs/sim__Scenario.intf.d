lib/sim/scenario.mli: Cluster Guardian Node_fault
