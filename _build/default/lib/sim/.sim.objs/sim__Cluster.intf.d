lib/sim/cluster.mli: Clock_model Controller Event_log Format Guardian Medl Node_fault Ttp
