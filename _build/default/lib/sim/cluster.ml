(** Slot-synchronous simulation of a TTA cluster with star topology.

    Wires [n] TTP/C controllers to two redundant channels, each with
    its own star coupler / central bus guardian, and advances the whole
    system one TDMA slot at a time. Each slot proceeds in two phases:
    every controller is asked what it transmits (with node-level faults
    applied), the couplers turn the transmission attempts into channel
    outputs, then every controller observes both channels through its
    own receiver tolerance and advances.

    Everything observable is recorded in an {!Event_log.t}. *)

open Ttp

type t = {
  medl : Medl.t;
  controllers : Controller.t array;
  couplers : Guardian.Coupler.t array;  (** channel 0 and channel 1 *)
  node_faults : Node_fault.t array;
  tolerances : float array;
      (** per-receiver SOS tolerance in (0, 1): hardware spread *)
  log : Event_log.t;
  mutable slots_elapsed : int;
  mutable nominal_slot : int;
      (** free-running TDMA position, used for scheduling fault
          injection (e.g. when a babbling node fires) *)
  mutable drift : Clock_model.t option;
      (** optional oscillator-drift layer: adds timing-SOS degradation
          to transmissions and runs FTA clock sync at round boundaries *)
  mutable round_senders : int list;
      (** nodes whose frames crossed a hub since the last round
          boundary; the set FTA measures against *)
}

let default_tolerances n =
  (* A deterministic spread of hardware tolerances around 0.5: nodes
     near the low end reject marginal frames that nodes near the high
     end accept. *)
  Array.init n (fun i ->
      0.3 +. (0.4 *. float_of_int i /. float_of_int (max 1 (n - 1))))

let create ?(feature_set = Guardian.Feature_set.Time_windows)
    ?(data_continuity = false) ?(config = Controller.default_config)
    ?tolerances medl =
  let n = Medl.nodes medl in
  let tolerances =
    match tolerances with Some t -> t | None -> default_tolerances n
  in
  if Array.length tolerances <> n then
    invalid_arg "Cluster.create: one tolerance per node required";
  {
    medl;
    controllers =
      Array.init n (fun id -> Controller.create ~config ~id ~medl ());
    couplers =
      Array.init 2 (fun channel ->
          Guardian.Coupler.create ~feature_set ~data_continuity ~channel
            ~medl ());
    node_faults = Array.make n Node_fault.Healthy;
    tolerances;
    log = Event_log.create ();
    slots_elapsed = 0;
    nominal_slot = 0;
    drift = None;
    round_senders = [];
  }

(* Attach an oscillator-drift model (one clock per node). *)
let set_drift t d =
  if Clock_model.nodes d <> Array.length t.controllers then
    invalid_arg "Cluster.set_drift: one clock per node required";
  t.drift <- Some d

let drift t = t.drift

let medl t = t.medl
let log t = t.log
let controller t i = t.controllers.(i)
let coupler t c = t.couplers.(c)
let nodes t = Array.length t.controllers
let slots_elapsed t = t.slots_elapsed

let states t = Array.map Controller.state t.controllers

let set_coupler_fault t ~channel fault =
  Guardian.Coupler.set_fault t.couplers.(channel) fault;
  Event_log.record t.log ~at_slot:t.slots_elapsed
    (Event_log.Coupler_fault_set { channel; fault })

let set_node_fault t ~node fault =
  t.node_faults.(node) <- fault;
  Event_log.record t.log ~at_slot:t.slots_elapsed
    (Event_log.Node_fault_set { node; fault = Node_fault.to_string fault })

let start_node t i =
  Controller.host_start t.controllers.(i)

let start_all t = Array.iter Controller.host_start t.controllers

(* Attempts arriving at the coupler of [channel] in this slot. *)
let attempts_on t ~channel =
  let attempts = ref [] in
  Array.iteri
    (fun i ctrl ->
      (match Controller.transmit ctrl with
      | Some frame -> (
          (* Log the transmission once, not once per channel. *)
          if channel = 0 then
            Event_log.record t.log ~at_slot:t.slots_elapsed
              (Event_log.Sent { node = i; kind = frame.Frame.kind });
          match Node_fault.distort t.node_faults.(i) ~sender:i ~channel frame with
          | Some a ->
              (* Oscillator drift surfaces as timing degradation on top
                 of whatever the node fault already imposes. *)
              let a =
                match t.drift with
                | None -> a
                | Some d ->
                    let drift_sos = Clock_model.sos_of d ~node:i in
                    {
                      a with
                      Guardian.Coupler.sos_timing =
                        Float.max a.Guardian.Coupler.sos_timing drift_sos;
                    }
              in
              attempts := a :: !attempts
          | None -> ())
      | None -> ());
      match
        Node_fault.extra_attempt t.node_faults.(i) ~sender:i ~channel
          ~slot:t.nominal_slot
          ~cstate:(Controller.cstate ctrl)
      with
      | Some a -> attempts := a :: !attempts
      | None -> ())
    t.controllers;
  List.rev !attempts

let describe_output = function
  | Guardian.Coupler.Ch_silence -> "silence"
  | Guardian.Coupler.Ch_noise -> "noise"
  | Guardian.Coupler.Ch_frame { frame; degradation; _ } ->
      if degradation > 0.0 then
        Printf.sprintf "%s (SOS %.2f)" (Frame.to_string frame) degradation
      else Frame.to_string frame

(* Advance the whole cluster one TDMA slot. *)
let step t =
  let prev = states t in
  let outputs =
    Array.init 2 (fun channel ->
        let out =
          Guardian.Coupler.step t.couplers.(channel)
            (attempts_on t ~channel)
        in
        (match out with
        | Guardian.Coupler.Ch_silence -> ()
        | Guardian.Coupler.Ch_frame { frame; _ } ->
            let sender = frame.Frame.sender in
            if not (List.mem sender t.round_senders) then
              t.round_senders <- sender :: t.round_senders;
            Event_log.record t.log ~at_slot:t.slots_elapsed
              (Event_log.Channel_output
                 { channel; description = describe_output out })
        | Guardian.Coupler.Ch_noise ->
            Event_log.record t.log ~at_slot:t.slots_elapsed
              (Event_log.Channel_output
                 { channel; description = describe_output out }));
        out)
  in
  Array.iteri
    (fun i ctrl ->
      let tol = t.tolerances.(i) in
      let obs0 = Guardian.Coupler.observe outputs.(0) ~tolerance:tol in
      let obs1 = Guardian.Coupler.observe outputs.(1) ~tolerance:tol in
      Controller.receive ctrl ~obs0 ~obs1)
    t.controllers;
  (* Log state changes. *)
  Array.iteri
    (fun i ctrl ->
      let now = Controller.state ctrl in
      if now <> prev.(i) then begin
        Event_log.record t.log ~at_slot:t.slots_elapsed
          (Event_log.State_change
             { node = i; from_state = prev.(i); to_state = now });
        match now with
        | Controller.Freeze -> (
            match Controller.freeze_cause ctrl with
            | Some reason ->
                Event_log.record t.log ~at_slot:t.slots_elapsed
                  (Event_log.Froze { node = i; reason })
            | None -> ())
        | Controller.Passive -> (
            match prev.(i) with
            | Controller.Listen ->
                Event_log.record t.log ~at_slot:t.slots_elapsed
                  (Event_log.Integrated { node = i })
            | _ -> ())
        | _ -> ()
      end)
    t.controllers;
  t.slots_elapsed <- t.slots_elapsed + 1;
  t.nominal_slot <- (t.nominal_slot + 1) mod Medl.slots t.medl;
  (* Oscillator physics: drift over the slot; synchronize at the round
     boundary against the senders actually heard this round. *)
  match t.drift with
  | None -> ()
  | Some d ->
      Clock_model.advance d
        ~slot_duration:(Medl.duration_of_slot t.medl t.nominal_slot);
      if t.nominal_slot = 0 then begin
        Clock_model.apply_fta d ~heard:t.round_senders;
        t.round_senders <- []
      end

let run t ~slots =
  for _ = 1 to slots do
    step t
  done

(* Run until the predicate holds or the budget runs out; returns whether
   the predicate was reached. *)
let run_until t ?(max_slots = 1000) pred =
  let rec go budget =
    if pred t then true
    else if budget = 0 then false
    else begin
      step t;
      go (budget - 1)
    end
  in
  go max_slots

(* Common predicates. *)

let count_in_state t st =
  Array.fold_left
    (fun acc c -> if Controller.state c = st then acc + 1 else acc)
    0 t.controllers

let all_active t = count_in_state t Controller.Active = nodes t

let any_frozen_with t reason =
  Array.exists
    (fun c ->
      Controller.state c = Controller.Freeze
      && Controller.freeze_cause c = Some reason)
    t.controllers

let synchronized_count t =
  Array.fold_left
    (fun acc c -> if Controller.is_synchronized c then acc + 1 else acc)
    0 t.controllers

(* Bring a fresh cluster to steady state: start every node and run
   until all are active. Returns false if start-up failed within the
   budget (which itself is a meaningful result for some experiments). *)
let boot ?(max_slots = 200) t =
  start_all t;
  run_until t ~max_slots all_active

let pp_states ppf t =
  Array.iteri
    (fun i c ->
      Format.fprintf ppf "node %d: %s@." i
        (Controller.state_to_string (Controller.state c)))
    t.controllers
