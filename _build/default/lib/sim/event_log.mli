(** Structured record of what happened during a simulation run.

    Each entry is stamped with the global slot count. Examples and
    tests assert on this log, and the CLI pretty-prints it. *)

open Ttp

type event =
  | State_change of {
      node : int;
      from_state : Controller.protocol_state;
      to_state : Controller.protocol_state;
    }
  | Froze of { node : int; reason : Controller.freeze_reason }
  | Integrated of { node : int }
  | Sent of { node : int; kind : Frame.kind }
  | Coupler_fault_set of { channel : int; fault : Guardian.Fault.t }
  | Node_fault_set of { node : int; fault : string }
  | Channel_output of { channel : int; description : string }

type entry = { at_slot : int; event : event }

type t

val create : unit -> t
val record : t -> at_slot:int -> event -> unit

val entries : t -> entry list
(** Oldest first. *)

val event_to_string : event -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Query helpers} *)

val freezes : t -> (int * int * Controller.freeze_reason) list
(** (slot, node, reason), oldest first. *)

val integrations : t -> (int * int) list
val first_freeze : t -> (int * int * Controller.freeze_reason) option
