(** An asynchronous, priority-arbitrated broadcast network (CAN-like),
    with an optional store-and-forward gateway.

    Makes the paper's concluding claim executable: masquerading through
    a frame-buffering central component is not a synchronous-systems
    problem — in CAN, receivers identify {e data} by message identifier,
    so a gateway able to re-emit a stored frame masquerades as a fresh
    data source, and no receiver can tell. The defense is also the
    paper's: strengthen identification (sequence numbers), not timing.

    The model is deterministic and tick-based: at each tick, pending
    transmissions arbitrate by CAN id (lowest wins) and the winner is
    delivered to every receiver. *)

type message = {
  can_id : int;
  seq : int;
  payload : int;
  born : int;  (** tick of original transmission *)
}

type sender

val sender : can_id:int -> period:int -> sender
(** A periodic sender emitting every [period] ticks. *)

type gateway_spec =
  | Transparent  (** forwards in the same tick, stores nothing *)
  | Store_and_forward of { replay_at : int list }
      (** keeps per-id mailboxes (the CAN-emulation / data-continuity
          service the paper's Section 6 mentions) and re-emits the
          highest-priority stored message at the given ticks —
          deliberately or through a fault, the effect is the same *)

type reception = {
  mutable accepted : int;  (** messages believed fresh *)
  mutable stale_accepted : int;
      (** replays believed fresh — successful masquerades *)
  mutable max_staleness : int;  (** worst (now - born) among accepted *)
  mutable replays_detected : int;
      (** replays rejected by the sequence-number check *)
}

type t

val create : ?check_sequence:bool -> gateway:gateway_spec -> sender array -> t
(** [check_sequence] makes receivers enforce strictly increasing
    sequence numbers per id (the identification fix).
    @raise Invalid_argument on non-positive periods or negative ids. *)

val step : t -> unit
val run : t -> ticks:int -> unit
val reception : t -> reception
val now : t -> int
