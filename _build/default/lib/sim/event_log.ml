(** Structured record of what happened during a simulation run.

    Each entry is stamped with the global slot count. The examples and
    tests assert on this log (e.g. "node B froze with a clique error at
    slot 12 and nobody else did"), and the CLI pretty-prints it. *)

open Ttp

type event =
  | State_change of {
      node : int;
      from_state : Controller.protocol_state;
      to_state : Controller.protocol_state;
    }
  | Froze of { node : int; reason : Controller.freeze_reason }
  | Integrated of { node : int }
  | Sent of { node : int; kind : Frame.kind }
  | Coupler_fault_set of { channel : int; fault : Guardian.Fault.t }
  | Node_fault_set of { node : int; fault : string }
  | Channel_output of { channel : int; description : string }

type entry = { at_slot : int; event : event }

type t = { mutable entries : entry list (* newest first *) }

let create () = { entries = [] }
let record t ~at_slot event = t.entries <- { at_slot; event } :: t.entries
let entries t = List.rev t.entries

let frame_kind_string = function
  | Frame.N -> "N"
  | Frame.I -> "I"
  | Frame.Cold_start -> "cold-start"
  | Frame.X -> "X"

let event_to_string = function
  | State_change { node; from_state; to_state } ->
      Printf.sprintf "node %d: %s -> %s" node
        (Controller.state_to_string from_state)
        (Controller.state_to_string to_state)
  | Froze { node; reason } ->
      Printf.sprintf "node %d FROZE (%s)" node
        (Controller.freeze_reason_to_string reason)
  | Integrated { node } -> Printf.sprintf "node %d integrated" node
  | Sent { node; kind } ->
      Printf.sprintf "node %d sent a %s frame" node (frame_kind_string kind)
  | Coupler_fault_set { channel; fault } ->
      Printf.sprintf "coupler %d fault := %s" channel
        (Guardian.Fault.to_string fault)
  | Node_fault_set { node; fault } ->
      Printf.sprintf "node %d fault := %s" node fault
  | Channel_output { channel; description } ->
      Printf.sprintf "channel %d: %s" channel description

let pp ppf t =
  List.iter
    (fun { at_slot; event } ->
      Format.fprintf ppf "[slot %3d] %s@." at_slot (event_to_string event))
    (entries t)

let to_string t = Format.asprintf "%a" pp t

(* Query helpers used by tests and examples. *)

let freezes t =
  List.filter_map
    (fun { at_slot; event } ->
      match event with
      | Froze { node; reason } -> Some (at_slot, node, reason)
      | _ -> None)
    (entries t)

let integrations t =
  List.filter_map
    (fun { at_slot; event } ->
      match event with
      | Integrated { node } -> Some (at_slot, node)
      | _ -> None)
    (entries t)

let first_freeze t =
  match freezes t with [] -> None | f :: _ -> Some f
