(** Scripted simulation scenarios.

    A scenario is a list of timed actions applied to a cluster while it
    runs: start nodes, inject or clear coupler and node faults, or run
    arbitrary probes. *)

type action =
  | Start_node of int
  | Start_all
  | Coupler_fault of { channel : int; fault : Guardian.Fault.t }
  | Node_fault of { node : int; fault : Node_fault.t }
  | Custom of (Cluster.t -> unit)

type step = { at_slot : int; action : action }

type t = step list

val at : int -> action -> step

val run : t -> Cluster.t -> slots:int -> unit
(** Run for [slots] TDMA slots, applying each scripted action right
    before the slot it is scheduled at (in list order within a slot). *)
