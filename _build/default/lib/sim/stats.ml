(* Availability statistics, reconstructed from the event log.

   The log records every state change with its slot stamp, so a run's
   per-node timeline — and from it the dependability numbers that
   fail-operational systems care about (synchronized fraction,
   time-to-integration, freeze counts) — can be computed after the
   fact without instrumenting the simulation loop. *)

open Ttp

type node_summary = {
  node : int;
  final_state : Controller.protocol_state;
  synchronized_slots : int;  (** slots spent active or passive *)
  active_slots : int;  (** slots spent active (transmitting role) *)
  first_integrated_at : int option;  (** slot of the first integration *)
  freezes : int;  (** freeze events, all causes *)
  clique_freezes : int;
}

type t = {
  total_slots : int;
  per_node : node_summary array;
  availability : float;
      (** mean synchronized fraction across nodes, in [0, 1] *)
}

let is_sync = function
  | Controller.Active | Controller.Passive -> true
  | _ -> false

let of_log ~nodes ~total_slots log =
  let state = Array.make nodes Controller.Freeze in
  let since = Array.make nodes 0 in
  let sync_slots = Array.make nodes 0 in
  let active_slots = Array.make nodes 0 in
  let first_int = Array.make nodes None in
  let freezes = Array.make nodes 0 in
  let clique = Array.make nodes 0 in
  let account node upto =
    let d = max 0 (upto - since.(node)) in
    if is_sync state.(node) then
      sync_slots.(node) <- sync_slots.(node) + d;
    if state.(node) = Controller.Active then
      active_slots.(node) <- active_slots.(node) + d
  in
  List.iter
    (fun { Event_log.at_slot; event } ->
      match event with
      | Event_log.State_change { node; to_state; _ } ->
          account node at_slot;
          state.(node) <- to_state;
          since.(node) <- at_slot;
          if is_sync to_state && first_int.(node) = None then
            first_int.(node) <- Some at_slot
      | Event_log.Froze { node; reason } ->
          freezes.(node) <- freezes.(node) + 1;
          if reason = Controller.Clique_error then
            clique.(node) <- clique.(node) + 1
      | Event_log.Integrated _ | Event_log.Sent _
      | Event_log.Coupler_fault_set _ | Event_log.Node_fault_set _
      | Event_log.Channel_output _ ->
          ())
    (Event_log.entries log);
  for node = 0 to nodes - 1 do
    account node total_slots
  done;
  let per_node =
    Array.init nodes (fun node ->
        {
          node;
          final_state = state.(node);
          synchronized_slots = sync_slots.(node);
          active_slots = active_slots.(node);
          first_integrated_at = first_int.(node);
          freezes = freezes.(node);
          clique_freezes = clique.(node);
        })
  in
  let availability =
    if total_slots = 0 then 0.0
    else
      Array.fold_left
        (fun acc n -> acc +. float_of_int n.synchronized_slots)
        0.0 per_node
      /. float_of_int (nodes * total_slots)
  in
  { total_slots; per_node; availability }

let of_cluster cluster =
  of_log
    ~nodes:(Cluster.nodes cluster)
    ~total_slots:(Cluster.slots_elapsed cluster)
    (Cluster.log cluster)

let pp ppf t =
  Format.fprintf ppf "@[<v>%d slots; mean availability %.1f%%@,"
    t.total_slots (100.0 *. t.availability);
  Array.iter
    (fun n ->
      Format.fprintf ppf
        "  node %d: %-10s sync %4d/%d  active %4d  first-sync %-6s \
         freezes %d (%d clique)@,"
        n.node
        (Controller.state_to_string n.final_state)
        n.synchronized_slots t.total_slots n.active_slots
        (match n.first_integrated_at with
        | Some s -> string_of_int s
        | None -> "never")
        n.freezes n.clique_freezes)
    t.per_node;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
