(* An asynchronous, priority-arbitrated broadcast network (CAN-like),
   with an optional store-and-forward gateway.

   The paper's conclusion generalizes its result beyond time-triggered
   systems: "the same type of masquerading failures could occur in a
   distributed, asynchronous system because the underlying issue is not
   timing, but identification." This module makes that claim
   executable. In CAN, receivers identify DATA by message identifier —
   not senders by time slot — so any component able to emit a stored
   frame (here: a gateway with mailboxes, the asynchronous analogue of
   the full-shifting coupler) can masquerade as a fresh data source,
   and no receiver can tell. The defense is also the paper's:
   strengthen identification (sequence numbers), not timing.

   The model is deterministic and tick-based: at each tick, pending
   transmissions arbitrate by CAN id (lowest wins, as on a real bus),
   and the winner is delivered to every receiver. *)

type message = {
  can_id : int;  (** the identifier receivers select on; lower = higher priority *)
  seq : int;  (** sender's sequence counter (the "identification" fix) *)
  payload : int;
  born : int;  (** tick of original transmission *)
}

(* A periodic sender: emits its message every [period] ticks. *)
type sender = { can_id : int; period : int; mutable next_seq : int }

(** Gateway behaviour, as requested by the caller. *)
type gateway_spec =
  | Transparent  (** forwards in the same tick, stores nothing *)
  | Store_and_forward of { replay_at : int list }
      (** keeps per-id mailboxes (the CAN-emulation / data-continuity
          service) and re-emits the highest-priority stored message at
          the given ticks — deliberately or through a fault, the
          effect is the same *)

type gateway =
  | G_transparent
  | G_store of {
      boxes : message option array;  (** per can_id mailboxes *)
      replay_at : int list;
    }

(* What a receiver believes about each can_id, under each of the two
   identification disciplines. *)
type reception = {
  mutable accepted : int;  (** messages believed fresh *)
  mutable stale_accepted : int;
      (** replayed (born < previous born) messages believed fresh —
          successful masquerades *)
  mutable max_staleness : int;  (** worst (now - born) among accepted *)
  mutable replays_detected : int;
      (** replays rejected by the sequence-number check *)
}

type t = {
  senders : sender array;
  gateway : gateway;
  max_can_id : int;
  check_sequence : bool;
      (** receivers enforce strictly increasing sequence numbers *)
  reception : reception;
  mutable last_seq : int array;  (** per can_id, highest seq accepted *)
  mutable last_born : int array;
  mutable now : int;
}

let create ?(check_sequence = false) ~gateway senders =
  let max_can_id =
    Array.fold_left (fun acc s -> max acc s.can_id) 0 senders
  in
  Array.iter
    (fun s ->
      if s.period <= 0 then invalid_arg "Async_net.create: period";
      if s.can_id < 0 then invalid_arg "Async_net.create: can_id")
    senders;
  let gateway =
    match gateway with
    | Transparent -> G_transparent
    | Store_and_forward { replay_at } ->
        G_store { boxes = Array.make (max_can_id + 1) None; replay_at }
  in
  {
    senders;
    gateway;
    max_can_id;
    check_sequence;
    reception =
      { accepted = 0; stale_accepted = 0; max_staleness = 0;
        replays_detected = 0 };
    last_seq = Array.make (max_can_id + 1) (-1);
    last_born = Array.make (max_can_id + 1) (-1);
    now = 0;
  }

let sender ~can_id ~period = { can_id; period; next_seq = 0 }

(* Deliver one message to the (aggregated) receivers. *)
let deliver t msg =
  let r = t.reception in
  let is_replay = msg.born <= t.last_born.(msg.can_id) in
  if t.check_sequence && msg.seq <= t.last_seq.(msg.can_id) then
    r.replays_detected <- r.replays_detected + 1
  else begin
    r.accepted <- r.accepted + 1;
    if is_replay then r.stale_accepted <- r.stale_accepted + 1;
    r.max_staleness <- max r.max_staleness (t.now - msg.born);
    t.last_seq.(msg.can_id) <- msg.seq;
    t.last_born.(msg.can_id) <- max t.last_born.(msg.can_id) msg.born
  end

let step t =
  (* Fresh transmissions due this tick. *)
  let due =
    Array.to_list t.senders
    |> List.filter_map (fun s ->
           if t.now mod s.period = 0 then begin
             let m =
               { can_id = s.can_id; seq = s.next_seq; payload = t.now;
                 born = t.now }
             in
             s.next_seq <- s.next_seq + 1;
             Some m
           end
           else None)
  in
  (* The gateway may inject a replay from its mailboxes. *)
  let injected =
    match t.gateway with
    | G_transparent -> []
    | G_store g ->
        if List.mem t.now g.replay_at then
          (* Replay the highest-priority loaded box. *)
          let rec first i =
            if i >= Array.length g.boxes then []
            else match g.boxes.(i) with Some m -> [ m ] | None -> first (i + 1)
          in
          first 0
        else []
  in
  (* Bus arbitration: lowest can_id wins the tick; losers are dropped
     in this simplified model (periodic senders re-offer next period). *)
  (match
     List.sort
       (fun (a : message) (b : message) -> compare a.can_id b.can_id)
       (due @ injected)
   with
  | [] -> ()
  | winner :: _ ->
      (match t.gateway with
      | G_store g -> g.boxes.(winner.can_id) <- Some winner
      | G_transparent -> ());
      deliver t winner);
  t.now <- t.now + 1

let run t ~ticks =
  for _ = 1 to ticks do
    step t
  done

let reception t = t.reception
let now t = t.now
