(* The bus topology of Figure 1: two replicated passive buses with a
   local bus guardian at every node, the decentralized baseline the
   star topology was proposed to replace (Section 2.2 of the paper).

   A local guardian is an independent gate between its node and the
   bus: healthy, it passes exactly the transmissions the protocol
   schedule allows and blocks everything else (babbling-idiot
   protection). Because it is per-node, a guardian fault affects only
   its own node — the tradeoff the paper studies is precisely that a
   central guardian's fault affects everyone.

   The bus itself is passive: one transmission passes through with its
   SOS degradation unmitigated (no reshaping is possible on a bus),
   simultaneous transmissions collide into noise. *)

open Ttp

type guardian_fault =
  | G_healthy
  | G_stuck_closed  (** blocks everything from its node *)
  | G_stuck_open  (** passes everything, including babbling *)

let guardian_fault_to_string = function
  | G_healthy -> "healthy"
  | G_stuck_closed -> "stuck-closed"
  | G_stuck_open -> "stuck-open"

type t = {
  medl : Medl.t;
  controllers : Controller.t array;
  node_faults : Node_fault.t array;
  local_guardians : guardian_fault array;  (** one per node *)
  tolerances : float array;
  log : Event_log.t;
  mutable slots_elapsed : int;
  mutable nominal_slot : int;
}

let create ?(config = Controller.default_config) ?tolerances medl =
  let n = Medl.nodes medl in
  let tolerances =
    match tolerances with
    | Some t -> t
    | None -> Cluster.default_tolerances n
  in
  if Array.length tolerances <> n then
    invalid_arg "Bus.create: one tolerance per node required";
  {
    medl;
    controllers =
      Array.init n (fun id -> Controller.create ~config ~id ~medl ());
    node_faults = Array.make n Node_fault.Healthy;
    local_guardians = Array.make n G_healthy;
    tolerances;
    log = Event_log.create ();
    slots_elapsed = 0;
    nominal_slot = 0;
  }

let log t = t.log
let controller t i = t.controllers.(i)
let nodes t = Array.length t.controllers
let slots_elapsed t = t.slots_elapsed

let set_node_fault t ~node fault =
  t.node_faults.(node) <- fault;
  Event_log.record t.log ~at_slot:t.slots_elapsed
    (Event_log.Node_fault_set { node; fault = Node_fault.to_string fault })

let set_guardian_fault t ~node fault =
  t.local_guardians.(node) <- fault;
  Event_log.record t.log ~at_slot:t.slots_elapsed
    (Event_log.Node_fault_set
       {
         node;
         fault = "local guardian " ^ guardian_fault_to_string fault;
       })

let start_node t i = Controller.host_start t.controllers.(i)
let start_all t = Array.iter Controller.host_start t.controllers

(* What reaches bus [channel] this slot, after each node's local
   guardian. *)
let attempts_on t ~channel =
  let attempts = ref [] in
  Array.iteri
    (fun i ctrl ->
      let pass_scheduled, pass_babbling =
        match t.local_guardians.(i) with
        | G_healthy -> (true, false)
        | G_stuck_closed -> (false, false)
        | G_stuck_open -> (true, true)
      in
      (if pass_scheduled then
         match Controller.transmit ctrl with
         | Some frame -> (
             if channel = 0 then
               Event_log.record t.log ~at_slot:t.slots_elapsed
                 (Event_log.Sent { node = i; kind = frame.Frame.kind });
             match
               Node_fault.distort t.node_faults.(i) ~sender:i ~channel frame
             with
             | Some a -> attempts := a :: !attempts
             | None -> ())
         | None -> ());
      if pass_babbling then
        match
          Node_fault.extra_attempt t.node_faults.(i) ~sender:i ~channel
            ~slot:t.nominal_slot
            ~cstate:(Controller.cstate ctrl)
        with
        | Some a -> attempts := a :: !attempts
        | None -> ())
    t.controllers;
  List.rev !attempts

(* Passive-bus merge: no filtering, no reshaping. *)
let bus_output attempts =
  match attempts with
  | [] -> Guardian.Coupler.Ch_silence
  | [ a ] ->
      let degradation =
        Float.max a.Guardian.Coupler.sos_timing a.Guardian.Coupler.sos_value
      in
      if degradation > Guardian.Coupler.max_sos then Guardian.Coupler.Ch_noise
      else
        Guardian.Coupler.Ch_frame
          {
            frame = a.Guardian.Coupler.frame;
            crc = a.Guardian.Coupler.crc;
            degradation;
          }
  | _ :: _ :: _ -> Guardian.Coupler.Ch_noise

let step t =
  let prev = Array.map Controller.state t.controllers in
  let outputs =
    Array.init 2 (fun channel -> bus_output (attempts_on t ~channel))
  in
  Array.iteri
    (fun i ctrl ->
      let tol = t.tolerances.(i) in
      let obs0 = Guardian.Coupler.observe outputs.(0) ~tolerance:tol in
      let obs1 = Guardian.Coupler.observe outputs.(1) ~tolerance:tol in
      Controller.receive ctrl ~obs0 ~obs1)
    t.controllers;
  Array.iteri
    (fun i ctrl ->
      let now = Controller.state ctrl in
      if now <> prev.(i) then begin
        Event_log.record t.log ~at_slot:t.slots_elapsed
          (Event_log.State_change
             { node = i; from_state = prev.(i); to_state = now });
        match (now, Controller.freeze_cause ctrl) with
        | Controller.Freeze, Some reason ->
            Event_log.record t.log ~at_slot:t.slots_elapsed
              (Event_log.Froze { node = i; reason })
        | _ -> ()
      end)
    t.controllers;
  t.slots_elapsed <- t.slots_elapsed + 1;
  t.nominal_slot <- (t.nominal_slot + 1) mod Medl.slots t.medl

let run t ~slots =
  for _ = 1 to slots do
    step t
  done

let run_until t ?(max_slots = 1000) pred =
  let rec go budget =
    if pred t then true
    else if budget = 0 then false
    else begin
      step t;
      go (budget - 1)
    end
  in
  go max_slots

let count_in_state t st =
  Array.fold_left
    (fun acc c -> if Controller.state c = st then acc + 1 else acc)
    0 t.controllers

let all_active t = count_in_state t Controller.Active = nodes t

let boot ?(max_slots = 200) t =
  start_all t;
  run_until t ~max_slots all_active
