(** Availability statistics, reconstructed from the event log.

    The log records every state change with its slot stamp, so a run's
    per-node timeline — synchronized fraction, time-to-integration,
    freeze counts — can be computed after the fact without
    instrumenting the simulation loop. *)

open Ttp

type node_summary = {
  node : int;
  final_state : Controller.protocol_state;
  synchronized_slots : int;  (** slots spent active or passive *)
  active_slots : int;  (** slots spent active (transmitting role) *)
  first_integrated_at : int option;  (** slot of the first integration *)
  freezes : int;  (** freeze events, all causes *)
  clique_freezes : int;
}

type t = {
  total_slots : int;
  per_node : node_summary array;
  availability : float;
      (** mean synchronized fraction across nodes, in [0, 1] *)
}

val of_log : nodes:int -> total_slots:int -> Event_log.t -> t
(** Nodes are assumed frozen at slot 0 (powered off). *)

val of_cluster : Cluster.t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
