(* Per-node oscillator drift and distributed clock synchronization.

   The slot-synchronous simulator abstracts time to TDMA slots; this
   layer re-introduces the physics underneath: every node's oscillator
   deviates from nominal by some ppm, so its notion of the slot
   boundary wanders. A transmission's offset from the true window,
   measured against the receivers' acceptance window, is exactly the
   timing-SOS degradation of the coupler layer — which is how unchecked
   drift eventually produces SOS faults.

   TTP/C bounds the wander with the fault-tolerant-average algorithm
   ([Ttp.Clocksync.fta]): at the end of each round every node measures,
   for each frame it received, the deviation between the sender's clock
   and its own, discards the extremes and corrects by the average.
   Disabling synchronization (for experiments) lets the errors grow
   without bound. *)

type clock = {
  ppm : float;  (** rate deviation from nominal, parts per million *)
  mutable error : float;  (** accumulated offset in microticks *)
}

type t = {
  clocks : clock array;
  window : float;
      (** half-width of the receivers' nominal acceptance window, in
          microticks: an offset of [window] is judged marginal by the
          average receiver *)
  sync_enabled : bool;
}

let create ?(sync = true) ~window ~ppm () =
  if window <= 0.0 then invalid_arg "Clock_model.create: window";
  {
    clocks = Array.map (fun p -> { ppm = p; error = 0.0 }) ppm;
    window;
    sync_enabled = sync;
  }

let nodes t = Array.length t.clocks
let error t node = t.clocks.(node).error

(* One TDMA slot of drift: each oscillator gains duration * ppm. *)
let advance t ~slot_duration =
  Array.iter
    (fun c ->
      c.error <- c.error +. (float_of_int slot_duration *. c.ppm /. 1e6))
    t.clocks

(* The timing-SOS degradation of node [i]'s transmission: how far its
   clock sits from the ensemble's view of the slot boundary, relative
   to the acceptance window. Receivers judge a frame against their own
   clocks, so what matters is the offset between sender and receiver;
   the coupler layer applies one scalar per transmission, so we use the
   sender's offset from the ensemble median as the representative
   deviation. *)
let median t =
  let errs = Array.map (fun c -> c.error) t.clocks in
  Array.sort compare errs;
  let n = Array.length errs in
  if n mod 2 = 1 then errs.(n / 2)
  else (errs.((n / 2) - 1) +. errs.(n / 2)) /. 2.0

let sos_of t ~node =
  Float.abs (t.clocks.(node).error -. median t) /. t.window

(* Fault-tolerant average over float measurements: drop the extremes
   on each side and average the rest — the same algorithm as
   [Ttp.Clocksync.fta], at the sub-microtick resolution of a real
   time-difference capture unit. *)
let fta_float ?(discard = 1) deviations =
  let n = List.length deviations in
  if n <= 2 * discard then 0.0
  else begin
    let sorted = List.sort compare deviations in
    let trimmed =
      List.filteri (fun i _ -> i >= discard && i < n - discard) sorted
    in
    List.fold_left ( +. ) 0.0 trimmed /. float_of_int (List.length trimmed)
  end

(* End-of-round synchronization: every node corrects its clock by the
   fault-tolerant average of the deviations it measured against the
   senders it heard ([heard] lists them; a node always hears itself,
   deviation 0). *)
let apply_fta t ~heard =
  if t.sync_enabled then begin
    let corrections =
      Array.mapi
        (fun i me ->
          let deviations =
            List.map
              (fun j -> t.clocks.(j).error -. me.error)
              (if List.mem i heard then heard else i :: heard)
          in
          fta_float deviations)
        t.clocks
    in
    Array.iteri
      (fun i me -> me.error <- me.error +. corrections.(i))
      t.clocks
  end

(* Worst pairwise offset in the ensemble, the quantity a precision
   bound speaks about. *)
let spread t =
  let errs = Array.map (fun c -> c.error) t.clocks in
  let lo = Array.fold_left Float.min infinity errs in
  let hi = Array.fold_left Float.max neg_infinity errs in
  hi -. lo
