(** Node-level fault models for the simulator.

    These reproduce the fault classes of the bus-topology
    fault-injection experiments that motivated the central guardian
    (Section 2.2 of the paper): babbling idiots, SOS transmissions,
    masquerading cold-start frames, frames carrying an invalid C-state —
    plus a plain crash. *)

open Ttp

type t =
  | Healthy
  | Crashed  (** transmits nothing, forever *)
  | Sos of { timing : float; value : float }
      (** transmits with marginal timing/signal: receivers disagree on
          validity *)
  | Babbling of { in_slot : int }
      (** additionally transmits in a slot it does not own *)
  | Bad_cstate of { time_offset : int }
      (** transmits frames whose C-state time is wrong by the offset *)
  | Masquerade of { as_slot : int }
      (** cold-start frames claim a different round slot, impersonating
          another node during startup *)

val to_string : t -> string

val distort :
  t -> sender:int -> channel:int -> Frame.t -> Guardian.Coupler.attempt option
(** Apply the fault to what the healthy controller wanted to transmit
    in its own slot; [None] means nothing reaches the channel. *)

val extra_attempt :
  t -> sender:int -> channel:int -> slot:int -> cstate:Cstate.t ->
  Guardian.Coupler.attempt option
(** Extra transmissions the fault generates outside the node's own slot
    (the babbling idiot); [slot] is the cluster's current TDMA
    position. *)
