(** Node-level fault models for the simulator.

    These reproduce the fault classes of the bus-topology fault-injection
    experiments that motivated the central guardian (Ademaj et al.,
    discussed in Section 2.2 of the paper): babbling idiots, SOS
    transmissions, masquerading cold-start frames, and frames carrying
    an invalid C-state — plus a plain crash. *)

open Ttp

type t =
  | Healthy
  | Crashed  (** transmits nothing, forever *)
  | Sos of { timing : float; value : float }
      (** transmits with marginal timing/signal: receivers disagree on
          validity *)
  | Babbling of { in_slot : int }
      (** additionally transmits (noise-like traffic) in a slot it does
          not own *)
  | Bad_cstate of { time_offset : int }
      (** transmits frames whose C-state time is wrong by the offset *)
  | Masquerade of { as_slot : int }
      (** cold-start frames claim a different round slot, impersonating
          another node during startup *)

let to_string = function
  | Healthy -> "healthy"
  | Crashed -> "crashed"
  | Sos { timing; value } -> Printf.sprintf "sos(t=%.2f,v=%.2f)" timing value
  | Babbling { in_slot } -> Printf.sprintf "babbling(slot=%d)" in_slot
  | Bad_cstate { time_offset } -> Printf.sprintf "bad-cstate(+%d)" time_offset
  | Masquerade { as_slot } -> Printf.sprintf "masquerade(slot=%d)" as_slot

(* Apply the fault to what the healthy controller wanted to transmit in
   its own slot. Returns the (possibly modified) attempt. *)
let distort fault ~sender ~channel frame =
  let mk ?(sos_timing = 0.0) ?(sos_value = 0.0) f =
    let crc = Frame.crc_of ~channel f in
    { (Guardian.Coupler.clean_attempt ~sender ~frame:f ~crc) with sos_timing; sos_value }
  in
  match fault with
  | Healthy -> Some (mk frame)
  | Crashed -> None
  | Sos { timing; value } -> Some (mk ~sos_timing:timing ~sos_value:value frame)
  | Babbling _ -> Some (mk frame)
  | Bad_cstate { time_offset } ->
      let cs = frame.Frame.cstate in
      let f' =
        Frame.with_cstate frame
          {
            cs with
            Cstate.global_time =
              (cs.Cstate.global_time + time_offset) land 0xFFFF;
          }
      in
      Some (mk f')
  | Masquerade { as_slot } -> (
      match frame.Frame.kind with
      | Frame.Cold_start ->
          let cs = frame.Frame.cstate in
          let f' =
            Frame.with_cstate frame { cs with Cstate.round_slot = as_slot }
          in
          Some (mk f')
      | Frame.N | Frame.I | Frame.X -> Some (mk frame))

(* Extra transmissions the fault generates outside the node's own slot
   (the babbling idiot). [slot] is the cluster's current slot. *)
let extra_attempt fault ~sender ~channel ~slot ~cstate =
  match fault with
  | Babbling { in_slot } when slot = in_slot && in_slot <> sender ->
      let f = Frame.make ~kind:Frame.N ~sender ~cstate () in
      let crc = Frame.crc_of ~channel f lxor 0x1 (* garbled *) in
      Some { (Guardian.Coupler.clean_attempt ~sender ~frame:f ~crc) with sos_value = 0.0 }
  | Babbling _ | Healthy | Crashed | Sos _ | Bad_cstate _ | Masquerade _ ->
      None
