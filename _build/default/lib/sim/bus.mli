(** The bus topology of Figure 1: two replicated passive buses with a
    local bus guardian at every node — the decentralized baseline the
    star topology was proposed to replace.

    A local guardian is an independent gate between its node and the
    bus: healthy, it passes exactly the transmissions the schedule
    allows (babbling-idiot protection). Being per-node, a guardian
    fault affects only its own node; the bus itself is passive, so SOS
    degradation reaches the receivers unmitigated and simultaneous
    transmissions collide into noise. *)

open Ttp

type guardian_fault =
  | G_healthy
  | G_stuck_closed  (** blocks everything from its node *)
  | G_stuck_open  (** passes everything, including babbling *)

val guardian_fault_to_string : guardian_fault -> string

type t

val create :
  ?config:Controller.config -> ?tolerances:float array -> Medl.t -> t

val log : t -> Event_log.t
val controller : t -> int -> Controller.t
val nodes : t -> int
val slots_elapsed : t -> int

val set_node_fault : t -> node:int -> Node_fault.t -> unit
val set_guardian_fault : t -> node:int -> guardian_fault -> unit
val start_node : t -> int -> unit
val start_all : t -> unit

val step : t -> unit
val run : t -> slots:int -> unit
val run_until : t -> ?max_slots:int -> (t -> bool) -> bool
val count_in_state : t -> Controller.protocol_state -> int
val all_active : t -> bool
val boot : ?max_slots:int -> t -> bool
