(** Public facade of the reproduction.

    Re-exports every subsystem under one roof and hosts the experiment
    registry ({!Experiments}) that regenerates the paper's results.

    Layering (see DESIGN.md):
    - {!Bdd}, {!Sat}: decision-diagram and CDCL solver substrates.
    - {!Symkit}: finite-domain symbolic models and the model-checking
      engines (BDD reachability, SAT BMC, explicit-state BFS).
    - {!Ttp}: the TTP/C protocol (frames, CRC, MEDL, controller,
      membership, clock sync).
    - {!Guardian}: star couplers / central bus guardians and the
      bit-level leaky-bucket forwarding model.
    - {!Sim}: the slot-synchronous cluster simulator with fault
      injection.
    - {!Analysis}: the Section 6 buffer/frame/clock tradeoff equations
      and Figure 3.
    - {!Tta_model}: the paper's Section 4 formal model and its
      configurations. *)

module Bdd = Bdd
module Sat = Sat
module Symkit = Symkit
module Ttp = Ttp
module Guardian = Guardian
module Sim = Sim
module Analysis = Analysis
module Tta_model = Tta_model
module Experiments = Experiments
