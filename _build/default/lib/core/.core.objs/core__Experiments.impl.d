lib/core/experiments.ml: Analysis Array Cluster Event_log Float Format Guardian List Option Printf Sim String Symkit Tta_model Ttp
