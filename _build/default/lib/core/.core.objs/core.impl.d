lib/core/core.ml: Analysis Bdd Experiments Guardian Sat Sim Symkit Tta_model Ttp
