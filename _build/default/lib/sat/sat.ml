(** The SAT toolkit: the CDCL solver plus DIMACS CNF input/output.
    See {!Solver} for the solver API and {!Dimacs} for the file format. *)

include Solver
module Dimacs = Dimacs
