lib/sat/dimacs.ml: Buffer Fun List Printf Solver String
