lib/sat/solver.mli:
