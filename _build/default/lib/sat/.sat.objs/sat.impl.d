lib/sat/sat.ml: Dimacs Solver
