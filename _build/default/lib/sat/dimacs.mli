(** DIMACS CNF reader/writer.

    Makes the solver usable as a standalone tool ([bin/sat_solve]) and
    lets instances generated here be cross-checked against external
    solvers. *)

type instance = {
  nvars : int;
  clauses : int list list;  (** DIMACS literals: nonzero, +v / -v *)
}

exception Parse_error of string

val of_string : string -> instance
val of_file : string -> instance
val of_lines : string list -> instance

val to_string : instance -> string
val to_file : instance -> string -> unit

val load : instance -> Solver.t
(** A fresh solver with the instance's clauses; DIMACS variable [i]
    (1-based) becomes solver variable [i-1]. *)

val model_of : instance -> Solver.t -> int list
(** After a [Sat] answer: the model as DIMACS literals. *)
