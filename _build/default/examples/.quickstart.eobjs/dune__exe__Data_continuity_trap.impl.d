examples/data_continuity_trap.ml: Controller Cstate Guardian Medl Printf Sim Ttp
