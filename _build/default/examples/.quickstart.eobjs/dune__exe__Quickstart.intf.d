examples/quickstart.mli:
