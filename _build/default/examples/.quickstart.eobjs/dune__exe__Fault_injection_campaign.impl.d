examples/fault_injection_campaign.ml: Guardian List Printf Sim
