examples/mixed_speed_network.mli:
