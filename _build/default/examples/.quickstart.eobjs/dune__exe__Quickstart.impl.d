examples/quickstart.ml: Analysis Format Guardian Printf Sim Ttp
