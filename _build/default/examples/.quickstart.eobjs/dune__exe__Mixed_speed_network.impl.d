examples/mixed_speed_network.ml: Analysis Float List Printf
