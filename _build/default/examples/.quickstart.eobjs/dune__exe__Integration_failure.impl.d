examples/integration_failure.ml: Array Controller Cstate Guardian Medl Printf Sim Ttp
