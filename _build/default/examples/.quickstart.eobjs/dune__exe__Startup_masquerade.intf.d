examples/startup_masquerade.mli:
