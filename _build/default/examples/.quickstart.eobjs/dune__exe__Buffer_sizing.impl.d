examples/buffer_sizing.ml: Analysis List Printf Ttp
