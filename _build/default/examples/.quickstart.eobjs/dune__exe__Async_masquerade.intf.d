examples/async_masquerade.mli:
