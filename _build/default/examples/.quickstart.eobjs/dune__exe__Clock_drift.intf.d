examples/clock_drift.mli:
