examples/data_continuity_trap.mli:
