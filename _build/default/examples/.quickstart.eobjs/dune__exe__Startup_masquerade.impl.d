examples/startup_masquerade.ml: Array Printf Symkit Sys Tta_model
