examples/clock_drift.ml: Guardian List Medl Printf Sim Ttp
