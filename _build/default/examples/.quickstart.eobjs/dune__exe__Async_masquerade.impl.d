examples/async_masquerade.ml: Printf Sim
