examples/integration_failure.mli:
