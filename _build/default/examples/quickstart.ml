(* Quickstart: boot a 4-node TTA cluster on a star topology, watch it
   synchronize, then check the Section 6 design rule for its frames.

   Run with:  dune exec examples/quickstart.exe
*)

let () =
  (* 1. Describe the TDMA round: four nodes, one slot each, I-frames
     (explicit C-state) in normal operation. *)
  let medl = Ttp.Medl.uniform ~nodes:4 () in
  Format.printf "%a@." Ttp.Medl.pp medl;

  (* 2. Wire the cluster: two redundant channels, each hubbed by a star
     coupler with time-window authority (the TTA's babbling-idiot
     protection). *)
  let cluster =
    Sim.Cluster.create ~feature_set:Guardian.Feature_set.Time_windows medl
  in

  (* 3. Power everything on and run until all nodes are active. *)
  let booted = Sim.Cluster.boot cluster in
  Printf.printf "startup %s after %d slots\n\n"
    (if booted then "complete" else "INCOMPLETE")
    (Sim.Cluster.slots_elapsed cluster);

  (* 4. Inspect the cluster: protocol states and the membership vector
     each node ended up with. *)
  Format.printf "%a" Sim.Cluster.pp_states cluster;
  let node0 = Sim.Cluster.controller cluster 0 in
  Printf.printf "node 0 membership: %s\n\n"
    (Ttp.Membership.to_string ~nodes:4 (Ttp.Controller.membership node0));

  (* 5. The event log records every state change, transmission, and
     fault injection. *)
  print_endline "startup event log:";
  print_string (Sim.Event_log.to_string (Sim.Cluster.log cluster));

  (* 6. Sanity-check the design against the buffer-size rule of the
     paper (equation 4): with 100 ppm oscillators and 28-bit minimum
     frames, how long may our longest frame be? *)
  let f_max =
    Analysis.Buffer.f_max_limit ~f_min:28 ~le:4 ~delta:0.0002
  in
  Printf.printf
    "\ndesign rule: with 100 ppm clocks the longest frame may be %.0f bits\n"
    f_max;
  let i_frame_bits = 76 in
  Printf.printf "our I-frames are %d bits: %s\n" i_frame_bits
    (if float_of_int i_frame_bits <= f_max then "OK" else "TOO LONG")
