(* The data-continuity trap: a fault-free failure.

   Section 6 of the paper lists reasons a designer might want the
   central guardian to buffer whole frames anyway. One is a
   data-continuity service: keep "mailboxes" of recent values and serve
   a slightly stale frame instead of silence when a slot goes dead.

   This example enables exactly that service — with every component
   healthy — and reproduces the out-of-slot failure without injecting
   any fault at all: the stale frame the mailbox serves into a silent
   slot is, functionally, an out-of-slot retransmission, and a node
   re-integrating through that slot adopts its poisoned C-state.

   Run with:  dune exec examples/data_continuity_trap.exe
*)

open Ttp

let () =
  let medl = Medl.uniform ~nodes:4 () in
  let cluster =
    Sim.Cluster.create ~feature_set:Guardian.Feature_set.Full_shifting
      ~data_continuity:true medl
  in
  print_endline
    "1. Cluster with data-continuity mailboxes in the guardians (all\n\
    \   components healthy; no fault will be injected).";
  Printf.printf "   boot: %b\n\n" (Sim.Cluster.boot cluster);

  print_endline "2. Node 3 goes down for maintenance; its slot goes dead...";
  Controller.host_freeze (Sim.Cluster.controller cluster 3);
  Sim.Cluster.run cluster ~slots:8;
  Printf.printf
    "   ...except it doesn't: the mailbox has served %d stale frames so\n\
    \   far (hosts keep seeing 'fresh' node-3 data).\n\n"
    (Guardian.Coupler.substitutions (Sim.Cluster.coupler cluster 0));

  print_endline
    "3. Node 3 restarts and listens for traffic right before its own\n\
    \   slot — where the only frame on offer is the mailbox's stale copy\n\
    \   of its own last transmission.";
  let aligned =
    Sim.Cluster.run_until cluster ~max_slots:12 (fun c ->
        Controller.slot (Sim.Cluster.controller c 0) = 2
        && Controller.state (Sim.Cluster.controller c 0) = Controller.Active)
  in
  assert aligned;
  Sim.Cluster.start_node cluster 3;
  Sim.Cluster.run cluster ~slots:2;
  let victim = Sim.Cluster.controller cluster 3 in
  Printf.printf "   node 3 is now %s, believing %s\n\n"
    (Controller.state_to_string (Controller.state victim))
    (Cstate.to_string (Controller.cstate victim));

  print_endline "4. Running on with its poisoned C-state...";
  Sim.Cluster.run cluster ~slots:16;
  (match Controller.freeze_cause victim with
  | Some reason ->
      Printf.printf
        "   node 3 expelled (%s) — zero faults anywhere in the system.\n"
        (Controller.freeze_reason_to_string reason)
  | None -> print_endline "   node 3 survived (unexpected!)");
  print_newline ();
  print_endline
    "The moral (the paper's Section 6): the restriction on guardian\n\
     buffering is not about faults in the buffer — the *capability* is\n\
     the hazard. Any feature that stores frames and re-emits them later\n\
     (mailboxes, CAN emulation, prioritized messaging) re-creates the\n\
     masquerading channel that the fault analysis exposed."
