(* The paper's last word, made executable.

   "The same type of masquerading failures could occur in a
   distributed, asynchronous system because the underlying issue is
   not timing, but rather identification." (Section 7)

   On a CAN-style network, receivers identify DATA by message
   identifier, not senders by time slot. Give the central gateway the
   ability to buffer frames — say, to emulate CAN priority queues or to
   provide data continuity, the very features Section 6 lists as
   temptations — and a re-emitted stored frame is indistinguishable
   from fresh sensor data. No clock, no TDMA, same masquerade.

   Run with:  dune exec examples/async_masquerade.exe
*)

let senders () =
  [|
    Sim.Async_net.sender ~can_id:1 ~period:7 (* brake pressure, high prio *);
    Sim.Async_net.sender ~can_id:3 ~period:5 (* wheel speed *);
  |]

let show label net =
  Sim.Async_net.run net ~ticks:200;
  let r = Sim.Async_net.reception net in
  Printf.printf
    "  %-44s accepted:%3d  masquerades:%2d  worst staleness:%3d ticks  \
     detected:%2d\n"
    label r.Sim.Async_net.accepted r.Sim.Async_net.stale_accepted
    r.Sim.Async_net.max_staleness r.Sim.Async_net.replays_detected

let replays = [ 11; 23; 41; 83; 131 ]

let () =
  print_endline
    "Two periodic senders on a priority-arbitrated (CAN-like) network,\n\
     200 ticks, receivers acting on whatever carries the right message id:\n";
  show "transparent gateway"
    (Sim.Async_net.create ~gateway:Sim.Async_net.Transparent (senders ()));
  show "buffering gateway, replays stored frames"
    (Sim.Async_net.create
       ~gateway:(Sim.Async_net.Store_and_forward { replay_at = replays })
       (senders ()));
  show "same gateway, receivers check sequence numbers"
    (Sim.Async_net.create ~check_sequence:true
       ~gateway:(Sim.Async_net.Store_and_forward { replay_at = replays })
       (senders ()));
  print_newline ();
  print_endline
    "Reading the rows: the buffering gateway's replays are accepted as\n\
     fresh data (a brake-pressure reading from 6 ticks ago, believed\n\
     current). The cure is not better timing — the network has none —\n\
     but better identification: per-sender sequence numbers catch every\n\
     replay. That is the paper's point about why a central guardian must\n\
     not know how to generate (or regenerate) identifiable frames."
