(* Oscillator drift, SOS faults, and the two cures.

   The paper's SOS story in motion: a node whose oscillator drifts
   transmits ever closer to the edge of the receivers' acceptance
   windows; because hardware tolerances differ, receivers start to
   *disagree* about its frames — the slightly-off-specification fault —
   membership diverges, and clique avoidance expels a healthy node.

   Two independent mechanisms keep this from happening:
   - the protocol's fault-tolerant-average clock synchronization
     (decentralized: every node corrects every round), and
   - the central guardian's active signal reshaping (centralized:
     marginal frames are re-timed at the hub; the star topology's
     selling point in the paper's Section 2.2).

   Run with:  dune exec examples/clock_drift.exe
*)

open Ttp

let medl = Medl.uniform ~nodes:4 ()

let run ~label ~feature_set ~sync ~window =
  let cluster = Sim.Cluster.create ~feature_set medl in
  Sim.Cluster.set_drift cluster
    (Sim.Clock_model.create ~sync ~window
       ~ppm:[| 0.0; 0.0; 0.0; 4000.0 |]
       ());
  let booted = Sim.Cluster.boot cluster in
  Sim.Cluster.run cluster ~slots:120;
  let freezes = Sim.Event_log.freezes (Sim.Cluster.log cluster) in
  let spread =
    match Sim.Cluster.drift cluster with
    | Some d -> Sim.Clock_model.spread d
    | None -> nan
  in
  Printf.printf "  %-44s boot:%b  freezes:%d  clock spread:%6.2f uticks\n"
    label booted (List.length freezes) spread

let () =
  print_endline
    "4-node cluster, one 4000 ppm oscillator (node 3), 120 slots:";
  print_newline ();
  run ~label:"time-windows hub, NO clock sync"
    ~feature_set:Guardian.Feature_set.Time_windows ~sync:false ~window:1.0;
  run ~label:"time-windows hub, FTA clock sync"
    ~feature_set:Guardian.Feature_set.Time_windows ~sync:true ~window:1.0;
  run ~label:"small-shifting hub (reshaping), NO clock sync"
    ~feature_set:Guardian.Feature_set.Small_shifting ~sync:false ~window:30.0;
  print_newline ();
  print_endline
    "Reading the rows: without any mitigation the drifting node's frames\n\
     go marginal, receivers split on their validity and clique avoidance\n\
     starts expelling nodes. Either cure alone suffices: FTA keeps the\n\
     ensemble aligned (spread stays bounded), and a reshaping guardian\n\
     re-times marginal frames at the hub so receivers never disagree."
