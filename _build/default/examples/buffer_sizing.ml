(* Sizing the central guardian's buffer for a custom network design.

   You are building a TTP/C-style network and must answer: given my
   frame sizes and oscillator tolerances, can a central guardian both
   do its job (reshape signals, analyze semantics) and stay passive
   enough that the fault hypothesis survives? This walks through the
   Section 6 design rules on three candidate designs.

   Run with:  dune exec examples/buffer_sizing.exe
*)

type design = {
  name : string;
  f_min : int;  (** shortest frame, bits *)
  f_max : int;  (** longest frame, bits *)
  ppm_nodes : int;  (** node oscillator tolerance *)
  ppm_hub : int;  (** guardian oscillator tolerance *)
}

let le = Analysis.Frames_catalog.line_encoding_bits

let evaluate d =
  Printf.printf "== %s ==\n" d.name;
  Printf.printf "   frames %d..%d bits, oscillators %d/%d ppm\n" d.f_min
    d.f_max d.ppm_nodes d.ppm_hub;
  (* Worst-case relative clock difference (equation 2/5). *)
  let delta =
    Ttp.Clocksync.drift_bound ~ppm_a:d.ppm_nodes ~ppm_b:d.ppm_hub
  in
  let b_min = Analysis.Buffer.b_min ~le ~delta ~f_max:d.f_max in
  let b_max = Analysis.Buffer.b_max ~f_min:d.f_min in
  Printf.printf "   Delta = %.4g; guardian must buffer B_min = %.1f bits\n"
    delta b_min;
  Printf.printf "   passive-fault hypothesis allows  B_max = %d bits\n" b_max;
  if b_min <= float_of_int b_max then begin
    Printf.printf "   FEASIBLE (margin %.1f bits)\n" (float_of_int b_max -. b_min);
    (* How much frame-size headroom remains (equation 4)? *)
    let f_cap = Analysis.Buffer.f_max_limit ~f_min:d.f_min ~le ~delta in
    Printf.printf "   frames could grow to %.0f bits at this Delta\n" f_cap
  end
  else begin
    print_endline "   INFEASIBLE: the guardian would have to buffer a whole";
    print_endline "   short frame, re-enabling the out-of-slot failure mode.";
    (* What would it take? Either shrink f_max or improve the clocks
       (equation 7). *)
    let delta_cap =
      Analysis.Buffer.delta_limit ~f_min:d.f_min ~le ~f_max:d.f_max
    in
    Printf.printf
      "   fixes: cap frames at %.0f bits, or keep clocks within %.3g%%\n"
      (Analysis.Buffer.f_max_limit ~f_min:d.f_min ~le ~delta)
      (100. *. delta_cap)
  end;
  print_newline ()

let () =
  List.iter evaluate
    [
      {
        name = "TTP/C reference design (paper, Section 6)";
        f_min = Analysis.Frames_catalog.min_n_frame_bits;
        f_max = Analysis.Frames_catalog.max_x_frame_bits;
        ppm_nodes = 100;
        ppm_hub = 100;
      };
      {
        name = "cheap-sensor network: sloppy 5000 ppm RC oscillators";
        f_min = 28;
        f_max = 2076;
        ppm_nodes = 5000;
        ppm_hub = 5000;
      };
      {
        name = "mixed-speed backbone: hub 50x faster than slow links";
        (* The Section 6 discussion: slow cheap nodes on slow links,
           fast nodes on fast links. A 50x rate ratio is ~0.98 relative
           difference. *)
        f_min = 28;
        f_max = 512;
        ppm_nodes = 980_000;
        ppm_hub = 0;
      };
    ]
