(* The paper's second failure mode, replayed in the concrete simulator:
   a frame with a stale C-state, re-sent by a buffering star coupler,
   poisons a node that is (re-)integrating into a running cluster. The
   victim adopts the stale global time, judges every subsequent correct
   frame as incorrect, and is expelled by clique avoidance.

   Run with:  dune exec examples/integration_failure.exe
*)

open Ttp

let show_states cluster =
  Array.iteri
    (fun i st ->
      Printf.printf "  node %d: %s\n" i (Controller.state_to_string st))
    (Sim.Cluster.states cluster)

let () =
  let medl = Medl.uniform ~nodes:4 () in
  let cluster =
    Sim.Cluster.create ~feature_set:Guardian.Feature_set.Full_shifting medl
  in
  print_endline "1. Booting a 4-node cluster with full-shifting couplers...";
  let booted = Sim.Cluster.boot cluster in
  Printf.printf "   all nodes active: %b\n\n" booted;

  print_endline "2. Node 3 is taken down for maintenance (host freeze).";
  Controller.host_freeze (Sim.Cluster.controller cluster 3);

  (* Restart node 3 so it enters listen right before its own slot: the
     cluster is silent in that slot (node 3 owns it), so the only
     integration-capable frame node 3 can see there is whatever the
     coupler puts on the wire. *)
  let at_slot_2 c =
    Controller.slot (Sim.Cluster.controller c 0) = 2
    && Controller.state (Sim.Cluster.controller c 0) = Controller.Active
  in
  ignore (Sim.Cluster.run_until cluster ~max_slots:12 at_slot_2);
  print_endline "3. Node 3 restarts and starts listening for traffic.";
  Sim.Cluster.start_node cluster 3;
  Sim.Cluster.run cluster ~slots:1;

  print_endline
    "4. Coupler fault: channel 1 replays its buffered frame (node 2's\n\
    \   I-frame from the previous slot) into node 3's silent slot.";
  Sim.Cluster.set_coupler_fault cluster ~channel:1 Guardian.Fault.Out_of_slot;
  Sim.Cluster.run cluster ~slots:1;
  Sim.Cluster.set_coupler_fault cluster ~channel:1 Guardian.Fault.Healthy;

  let victim = Sim.Cluster.controller cluster 3 in
  Printf.printf
    "   node 3 integrated on the replay: state=%s, believes %s\n\n"
    (Controller.state_to_string (Controller.state victim))
    (Cstate.to_string (Controller.cstate victim));

  print_endline
    "5. Running on: every correct frame now disagrees with node 3's\n\
    \   poisoned C-state...";
  Sim.Cluster.run cluster ~slots:16;
  show_states cluster;
  (match Controller.freeze_cause victim with
  | Some reason ->
      Printf.printf
        "\nNode 3 was expelled (%s) although it never failed — the \
         centralized buffer turned a passive channel into a frame \
         source.\n"
        (Controller.freeze_reason_to_string reason)
  | None ->
      print_endline
        "\nUnexpected: node 3 survived (this contradicts the paper).");

  print_endline "\nFull event log:";
  print_string (Sim.Event_log.to_string (Sim.Cluster.log cluster))
