(* Mixed-speed networks and the limits of centralized supervision.

   Section 6 of the paper closes with a design temptation: let slow,
   cheap nodes use slow links and fast nodes use fast links, with the
   central guardian translating between them. This example quantifies
   why that rarely works: the guardian's buffer ceiling (it may never
   hold a whole short frame) caps the clock-rate ratio the network may
   span — Figure 3's curve.

   Run with:  dune exec examples/mixed_speed_network.exe
*)

let le = Analysis.Frames_catalog.line_encoding_bits

(* A candidate heterogeneous network: per-class link rates in Mbit/s
   and the frame sizes each class uses. *)
type node_class = { label : string; rate_mbps : float; frame_bits : int }

let classes =
  [
    { label = "door modules (cheap)"; rate_mbps = 0.25; frame_bits = 28 };
    { label = "body controllers"; rate_mbps = 1.0; frame_bits = 76 };
    { label = "chassis sensors"; rate_mbps = 5.0; frame_bits = 512 };
    { label = "vision backbone"; rate_mbps = 25.0; frame_bits = 2076 };
  ]

let () =
  print_endline "Candidate mixed-speed TTP/C network:";
  List.iter
    (fun c ->
      Printf.printf "  %-22s %6.2f Mbit/s, %4d-bit frames\n" c.label
        c.rate_mbps c.frame_bits)
    classes;
  print_newline ();

  (* The binding constraint is the fastest-to-slowest rate ratio versus
     Figure 3's ceiling for the frame range actually in use. *)
  let rates = List.map (fun c -> c.rate_mbps) classes in
  let rho_max = List.fold_left Float.max neg_infinity rates in
  let rho_min = List.fold_left Float.min infinity rates in
  let f_min =
    List.fold_left (fun acc c -> min acc c.frame_bits) max_int classes
  in
  let f_max =
    List.fold_left (fun acc c -> max acc c.frame_bits) 0 classes
  in
  let ratio = rho_max /. rho_min in
  Printf.printf "clock-rate ratio required: %.1f\n" ratio;
  (match Analysis.Buffer.clock_ratio_limit ~f_min ~le ~f_max with
  | Some limit ->
      Printf.printf "Figure 3 ceiling for frames %d..%d bits: %.3f\n" f_min
        f_max limit;
      if ratio <= limit then print_endline "verdict: FEASIBLE"
      else begin
        print_endline
          "verdict: INFEASIBLE — the guardian cannot bridge these rates \
           without buffering whole short frames.";
        (* What homogeneous subsets would work? Greedily split classes
           into groups whose internal ratio fits the ceiling. *)
        print_endline "\nfeasible partition into separate star networks:";
        let rec partition = function
          | [] -> []
          | c :: rest ->
              let group, others =
                List.partition
                  (fun c' ->
                    let lo = Float.min c.rate_mbps c'.rate_mbps in
                    let hi = Float.max c.rate_mbps c'.rate_mbps in
                    let fmin = min c.frame_bits c'.frame_bits in
                    let fmax = max c.frame_bits c'.frame_bits in
                    match
                      Analysis.Buffer.clock_ratio_limit ~f_min:fmin ~le
                        ~f_max:fmax
                    with
                    | Some l -> hi /. lo <= l
                    | None -> false)
                  rest
              in
              (c :: group) :: partition others
        in
        List.iteri
          (fun i group ->
            Printf.printf "  network %d:\n" (i + 1);
            List.iter
              (fun c -> Printf.printf "    - %s\n" c.label)
              group)
          (partition classes)
      end
  | None ->
      print_endline
        "Figure 3 ceiling: none — this frame range admits no rate spread \
         at all.");
  print_newline ();
  print_endline
    "Rule of thumb (eq 10): spanning a wide frame-size range and a wide \
     clock-rate range are mutually exclusive under a buffering-limited \
     central guardian.";
  (* Also show the per-frame buffering the guardian would need at the
     extreme ratio, to make the infeasibility concrete. *)
  let delta = (rho_max -. rho_min) /. rho_max in
  Printf.printf
    "at ratio %.1f the guardian would need to buffer %.0f bits of a \
     %d-bit frame, but may hold at most %d.\n"
    ratio
    (Analysis.Buffer.b_min ~le ~delta ~f_max)
    f_max
    (Analysis.Buffer.b_max ~f_min)
