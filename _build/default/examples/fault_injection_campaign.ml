(* A randomized fault-injection campaign across coupler feature sets —
   the simulation counterpart of the hardware experiments that motivated
   the paper (Ademaj et al., DSN'03), and of its model-checking verdicts:
   which coupler authority levels let a single coupler fault hurt
   healthy nodes?

   Run with:  dune exec examples/fault_injection_campaign.exe
*)

let trials = 40

let () =
  Printf.printf
    "%d trials per feature set; each trial boots a 4-node cluster, \
     injects one random coupler fault, runs on, and probes \
     re-integration.\n\n"
    trials;
  Printf.printf "%-16s %-18s %-18s %-20s\n" "feature set" "healthy froze"
    "cluster majority lost" "re-integration blocked";
  List.iter
    (fun feature_set ->
      let outcomes = Sim.Campaign.run ~feature_set ~nodes:4 ~trials () in
      let s = Sim.Campaign.summarize outcomes in
      Printf.printf "%-16s %-18s %-18s %-20s\n"
        (Guardian.Feature_set.to_string feature_set)
        (Printf.sprintf "%d/%d" s.Sim.Campaign.with_healthy_freeze
           s.Sim.Campaign.trials)
        (Printf.sprintf "%d/%d" s.Sim.Campaign.with_cluster_loss
           s.Sim.Campaign.trials)
        (Printf.sprintf "%d/%d" s.Sim.Campaign.with_integration_block
           s.Sim.Campaign.trials))
    Guardian.Feature_set.all;
  print_newline ();
  print_endline
    "Expected shape (cf. the paper's Section 5): the three restrained \
     coupler configurations tolerate every injected single fault, while \
     full-shifting couplers — whose fault repertoire includes the \
     out-of-slot replay — can freeze healthy nodes.";
  print_endline
    "(Steady-state clusters shrug off most replays; the damage \
     concentrates on startup and re-integration windows, which is why \
     the 'blocked' column matters.)"
