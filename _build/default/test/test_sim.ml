(* Tests for the cluster simulator: fault-free startup across feature
   sets, tolerance of single passive coupler faults, the SOS clique
   split on low-authority hubs (and its suppression by reshaping
   guardians), babbling-idiot containment, the out-of-slot replay
   failure, scenario scripting, and campaign aggregation. *)

open Ttp

let medl = Medl.uniform ~nodes:4 ()

let fresh ?(feature_set = Guardian.Feature_set.Time_windows) () =
  Sim.Cluster.create ~feature_set medl

let boot_ok cluster =
  Alcotest.(check bool) "boot completes" true (Sim.Cluster.boot cluster)

let clique_freezes cluster =
  List.filter
    (fun (_, _, reason) -> reason = Controller.Clique_error)
    (Sim.Event_log.freezes (Sim.Cluster.log cluster))

let test_boot_all_feature_sets () =
  List.iter
    (fun feature_set ->
      let c = fresh ~feature_set () in
      Alcotest.(check bool)
        (Guardian.Feature_set.to_string feature_set)
        true (Sim.Cluster.boot c))
    Guardian.Feature_set.all

let test_boot_membership_converges () =
  let c = fresh () in
  boot_ok c;
  Sim.Cluster.run c ~slots:8;
  for i = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "node %d sees full membership" i)
      0xF
      (Membership.to_int (Controller.membership (Sim.Cluster.controller c i)))
  done

let test_boot_cstates_agree () =
  let c = fresh () in
  boot_ok c;
  Sim.Cluster.run c ~slots:5;
  let cs0 = Controller.cstate (Sim.Cluster.controller c 0) in
  for i = 1 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "node %d C-state equals node 0's" i)
      true
      (Cstate.equal cs0 (Controller.cstate (Sim.Cluster.controller c i)))
  done

let test_single_passive_fault_tolerated () =
  List.iter
    (fun fault ->
      let c = fresh () in
      boot_ok c;
      Sim.Cluster.set_coupler_fault c ~channel:0 fault;
      Sim.Cluster.run c ~slots:32;
      Alcotest.(check int)
        (Guardian.Fault.to_string fault ^ " on one channel: nobody freezes")
        0
        (List.length (Sim.Event_log.freezes (Sim.Cluster.log c)));
      Alcotest.(check int)
        (Guardian.Fault.to_string fault ^ ": all still active")
        4
        (Sim.Cluster.count_in_state c Controller.Active))
    [ Guardian.Fault.Silence; Guardian.Fault.Bad_frame ]

let test_fault_recovery () =
  (* The channel fault clears: the cluster keeps operating as if
     nothing happened. *)
  let c = fresh () in
  boot_ok c;
  Sim.Cluster.set_coupler_fault c ~channel:1 Guardian.Fault.Silence;
  Sim.Cluster.run c ~slots:8;
  Sim.Cluster.set_coupler_fault c ~channel:1 Guardian.Fault.Healthy;
  Sim.Cluster.run c ~slots:8;
  Alcotest.(check int) "all active" 4
    (Sim.Cluster.count_in_state c Controller.Active)

(* The SOS experiment (Section 2.2 / Ademaj et al.): a node with
   marginal output splits the receivers' judgments on a low-authority
   hub, membership diverges, and clique avoidance expels a healthy
   node. A reshaping guardian removes the disagreement. *)
let sos_run feature_set =
  let c = fresh ~feature_set () in
  boot_ok c;
  Sim.Cluster.set_node_fault c ~node:1
    (Sim.Node_fault.Sos { timing = 0.5; value = 0.0 });
  Sim.Cluster.run c ~slots:32;
  c

let test_sos_splits_clique_without_reshaping () =
  let c = sos_run Guardian.Feature_set.Time_windows in
  Alcotest.(check bool) "some healthy node expelled" true
    (clique_freezes c <> []);
  (* The SOS sender itself keeps running: the victims are its
     better-tolerance peers. *)
  Alcotest.(check bool) "the marginal sender survives" true
    (Controller.state (Sim.Cluster.controller c 1) = Controller.Active)

let test_sos_reshaped_by_small_shifting () =
  let c = sos_run Guardian.Feature_set.Small_shifting in
  Alcotest.(check int) "nobody freezes behind a reshaping guardian" 0
    (List.length (Sim.Event_log.freezes (Sim.Cluster.log c)))

let test_babbling_contained_by_time_windows () =
  let c = fresh () in
  boot_ok c;
  Sim.Cluster.set_node_fault c ~node:3 (Sim.Node_fault.Babbling { in_slot = 1 });
  Sim.Cluster.run c ~slots:32;
  Alcotest.(check int) "nobody freezes" 0
    (List.length (Sim.Event_log.freezes (Sim.Cluster.log c)));
  Alcotest.(check int) "all active" 4
    (Sim.Cluster.count_in_state c Controller.Active)

let test_crashed_node_removed_from_membership () =
  let c = fresh () in
  boot_ok c;
  Sim.Cluster.set_node_fault c ~node:2 Sim.Node_fault.Crashed;
  Sim.Cluster.run c ~slots:16;
  let m = Controller.membership (Sim.Cluster.controller c 0) in
  Alcotest.(check bool) "node 2 expelled from membership" false
    (Membership.mem m 2);
  Alcotest.(check bool) "others retained" true
    (Membership.mem m 0 && Membership.mem m 1 && Membership.mem m 3);
  Alcotest.(check int) "survivors stay active" 3
    (Sim.Cluster.count_in_state c Controller.Active)

(* The headline failure: an out-of-slot replay hitting a node's
   re-integration window gets the healthy node expelled. *)
let replay_into_reintegration () =
  let c = fresh ~feature_set:Guardian.Feature_set.Full_shifting () in
  boot_ok c;
  Controller.host_freeze (Sim.Cluster.controller c 3);
  let aligned =
    Sim.Cluster.run_until c ~max_slots:12 (fun c ->
        Controller.slot (Sim.Cluster.controller c 0) = 2
        && Controller.state (Sim.Cluster.controller c 0) = Controller.Active)
  in
  Alcotest.(check bool) "alignment reached" true aligned;
  Sim.Cluster.start_node c 3;
  Sim.Cluster.run c ~slots:1;
  Sim.Cluster.set_coupler_fault c ~channel:1 Guardian.Fault.Out_of_slot;
  Sim.Cluster.run c ~slots:1;
  Sim.Cluster.set_coupler_fault c ~channel:1 Guardian.Fault.Healthy;
  c

let test_replay_freezes_reintegrating_node () =
  let c = replay_into_reintegration () in
  (* Node 3 integrated on the stale replay... *)
  Alcotest.(check bool) "victim integrated on the replay" true
    (Controller.state (Sim.Cluster.controller c 3) = Controller.Passive);
  Sim.Cluster.run c ~slots:16;
  (* ...and is expelled by clique avoidance, while the others survive. *)
  Alcotest.(check bool) "victim frozen with a clique error" true
    (Controller.freeze_cause (Sim.Cluster.controller c 3)
    = Some Controller.Clique_error);
  Alcotest.(check int) "the three others stay active" 3
    (Sim.Cluster.count_in_state c Controller.Active)

let test_replay_in_steady_state_tolerated () =
  (* Integrated nodes recognize the replayed frame as incorrect; the
     replay only hurts integrating nodes. *)
  let c = fresh ~feature_set:Guardian.Feature_set.Full_shifting () in
  boot_ok c;
  Sim.Cluster.run c ~slots:2;
  Sim.Cluster.set_coupler_fault c ~channel:1 Guardian.Fault.Out_of_slot;
  Sim.Cluster.run c ~slots:2;
  Sim.Cluster.set_coupler_fault c ~channel:1 Guardian.Fault.Healthy;
  Sim.Cluster.run c ~slots:16;
  Alcotest.(check int) "all still active" 4
    (Sim.Cluster.count_in_state c Controller.Active)

let test_mode_change_propagates () =
  let c = fresh () in
  boot_ok c;
  Sim.Cluster.run c ~slots:4;
  Controller.host_request_mode_change (Sim.Cluster.controller c 1) 3;
  (* Within two rounds: node 1 transmits the request, everyone
     schedules it, and the whole cluster switches at the cycle
     boundary. *)
  Sim.Cluster.run c ~slots:8;
  for i = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "node %d in mode 3" i)
      3
      (Controller.cstate (Sim.Cluster.controller c i)).Cstate.mode
  done;
  Alcotest.(check int) "no freezes during the switch" 0
    (List.length (Sim.Event_log.freezes (Sim.Cluster.log c)));
  (* C-states (mode included) still agree afterwards. *)
  let cs0 = Controller.cstate (Sim.Cluster.controller c 0) in
  for i = 1 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "node %d C-state agrees" i)
      true
      (Cstate.equal cs0 (Controller.cstate (Sim.Cluster.controller c i)))
  done

let test_ack_graceful_degradation_on_bus () =
  (* With acknowledgment enabled, a node whose transmissions are being
     eaten (its local guardian stuck closed) discovers the failure
     itself and steps down to passive — instead of drifting into a
     clique error as in the default configuration. *)
  let config = { Controller.default_config with Controller.ack_enabled = true } in
  let b = Sim.Bus.create ~config (Medl.uniform ~nodes:4 ()) in
  Alcotest.(check bool) "boots" true (Sim.Bus.boot b);
  Sim.Bus.set_guardian_fault b ~node:2 Sim.Bus.G_stuck_closed;
  Sim.Bus.run b ~slots:40;
  let victim = Sim.Bus.controller b 2 in
  (* First failed acknowledgment: step down and retry; second: freeze
     with the accurate self-diagnosis (no misleading clique error). *)
  Alcotest.(check bool) "victim diagnosed its own transmit fault" true
    (Controller.freeze_cause victim = Some Controller.Ack_failure);
  Alcotest.(check int) "after two consecutive failures" 2
    (Controller.ack_failures victim);
  Alcotest.(check int) "others unaffected" 3
    (Sim.Bus.count_in_state b Controller.Active);
  Alcotest.(check bool) "no clique errors anywhere" true
    (List.for_all
       (fun (_, _, r) -> r <> Controller.Clique_error)
       (Sim.Event_log.freezes (Sim.Bus.log b)))

(* ------------------------------------------------------------------ *)
(* Scenario scripting *)

let test_scenario_ordering () =
  let c = fresh () in
  let hits = ref [] in
  let scenario =
    [
      Sim.Scenario.at 0 Sim.Scenario.Start_all;
      Sim.Scenario.at 5
        (Sim.Scenario.Custom (fun _ -> hits := 5 :: !hits));
      Sim.Scenario.at 2
        (Sim.Scenario.Custom (fun _ -> hits := 2 :: !hits));
    ]
  in
  Sim.Scenario.run scenario c ~slots:8;
  Alcotest.(check (list int)) "actions applied in slot order" [ 5; 2 ] !hits;
  Alcotest.(check int) "cluster actually ran" 8 (Sim.Cluster.slots_elapsed c)

let test_scenario_fault_injection () =
  let c = fresh ~feature_set:Guardian.Feature_set.Full_shifting () in
  let scenario =
    [
      Sim.Scenario.at 0 Sim.Scenario.Start_all;
      Sim.Scenario.at 20
        (Sim.Scenario.Coupler_fault
           { channel = 0; fault = Guardian.Fault.Silence });
      Sim.Scenario.at 24
        (Sim.Scenario.Coupler_fault
           { channel = 0; fault = Guardian.Fault.Healthy });
    ]
  in
  Sim.Scenario.run scenario c ~slots:40;
  let log = Sim.Cluster.log c in
  let fault_events =
    List.filter
      (fun { Sim.Event_log.event; _ } ->
        match event with
        | Sim.Event_log.Coupler_fault_set _ -> true
        | _ -> false)
      (Sim.Event_log.entries log)
  in
  Alcotest.(check int) "both fault events logged" 2 (List.length fault_events);
  Alcotest.(check int) "cluster survived" 4
    (Sim.Cluster.count_in_state c Controller.Active)

(* ------------------------------------------------------------------ *)
(* Statistics *)

let test_stats_clean_run () =
  let c = fresh () in
  boot_ok c;
  Sim.Cluster.run c ~slots:20;
  let stats = Sim.Stats.of_cluster c in
  Alcotest.(check int) "slot count matches" (Sim.Cluster.slots_elapsed c)
    stats.Sim.Stats.total_slots;
  Array.iter
    (fun (n : Sim.Stats.node_summary) ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d ends active" n.Sim.Stats.node)
        true
        (n.Sim.Stats.final_state = Controller.Active);
      Alcotest.(check int) "no freezes" 0 n.Sim.Stats.freezes;
      Alcotest.(check bool) "integrated at some point" true
        (n.Sim.Stats.first_integrated_at <> None);
      Alcotest.(check bool) "active time within sync time" true
        (n.Sim.Stats.active_slots <= n.Sim.Stats.synchronized_slots))
    stats.Sim.Stats.per_node;
  (* Startup costs a bounded prefix; after it everyone is up. *)
  Alcotest.(check bool) "availability reflects startup + steady state" true
    (stats.Sim.Stats.availability > 0.4 && stats.Sim.Stats.availability < 1.0)

let test_stats_counts_freezes () =
  let c = replay_into_reintegration () in
  Sim.Cluster.run c ~slots:16;
  let stats = Sim.Stats.of_cluster c in
  let victim = stats.Sim.Stats.per_node.(3) in
  Alcotest.(check bool) "victim frozen at the end" true
    (victim.Sim.Stats.final_state = Controller.Freeze);
  Alcotest.(check bool) "clique freeze recorded" true
    (victim.Sim.Stats.clique_freezes >= 1);
  (* The victim still accrued some synchronized time before and after
     the replay hit. *)
  Alcotest.(check bool) "nonzero uptime" true
    (victim.Sim.Stats.synchronized_slots > 0);
  Alcotest.(check bool) "lower availability than survivors" true
    (victim.Sim.Stats.synchronized_slots
    < stats.Sim.Stats.per_node.(0).Sim.Stats.synchronized_slots)

(* ------------------------------------------------------------------ *)
(* Campaigns *)

let test_campaign_safe_feature_sets () =
  List.iter
    (fun feature_set ->
      let outcomes = Sim.Campaign.run ~feature_set ~nodes:4 ~trials:10 () in
      let s = Sim.Campaign.summarize outcomes in
      Alcotest.(check int)
        (Guardian.Feature_set.to_string feature_set ^ ": trials")
        10 s.Sim.Campaign.trials;
      Alcotest.(check int)
        (Guardian.Feature_set.to_string feature_set
        ^ ": no healthy node ever freezes")
        0 s.Sim.Campaign.with_healthy_freeze;
      Alcotest.(check int)
        (Guardian.Feature_set.to_string feature_set ^ ": cluster survives")
        0 s.Sim.Campaign.with_cluster_loss)
    [
      Guardian.Feature_set.Passive;
      Guardian.Feature_set.Time_windows;
      Guardian.Feature_set.Small_shifting;
    ]

let test_campaign_deterministic_per_seed () =
  let run () =
    Sim.Campaign.run ~feature_set:Guardian.Feature_set.Full_shifting ~nodes:4
      ~trials:5 ()
  in
  Alcotest.(check bool) "same seeds, same outcomes" true (run () = run ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sim"
    [
      ( "startup",
        [
          Alcotest.test_case "boot under every feature set" `Quick
            test_boot_all_feature_sets;
          Alcotest.test_case "membership converges" `Quick
            test_boot_membership_converges;
          Alcotest.test_case "C-states agree" `Quick test_boot_cstates_agree;
        ] );
      ( "coupler faults",
        [
          Alcotest.test_case "single passive fault tolerated" `Quick
            test_single_passive_fault_tolerated;
          Alcotest.test_case "recovery after fault clears" `Quick
            test_fault_recovery;
          Alcotest.test_case "replay freezes re-integrating node" `Quick
            test_replay_freezes_reintegrating_node;
          Alcotest.test_case "replay tolerated in steady state" `Quick
            test_replay_in_steady_state_tolerated;
        ] );
      ( "node faults",
        [
          Alcotest.test_case "SOS splits clique without reshaping" `Quick
            test_sos_splits_clique_without_reshaping;
          Alcotest.test_case "SOS reshaped by small shifting" `Quick
            test_sos_reshaped_by_small_shifting;
          Alcotest.test_case "babbling contained by time windows" `Quick
            test_babbling_contained_by_time_windows;
          Alcotest.test_case "crash removed from membership" `Quick
            test_crashed_node_removed_from_membership;
          Alcotest.test_case "mode change propagates" `Quick
            test_mode_change_propagates;
          Alcotest.test_case "ack graceful degradation" `Quick
            test_ack_graceful_degradation_on_bus;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "action ordering" `Quick test_scenario_ordering;
          Alcotest.test_case "fault injection script" `Quick
            test_scenario_fault_injection;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "clean run" `Quick test_stats_clean_run;
          Alcotest.test_case "counts freezes" `Quick test_stats_counts_freezes;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "safe feature sets" `Quick
            test_campaign_safe_feature_sets;
          Alcotest.test_case "deterministic per seed" `Quick
            test_campaign_deterministic_per_seed;
        ] );
    ]
