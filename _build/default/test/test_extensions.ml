(* Tests for the extension layers: the oscillator-drift model with FTA
   synchronization, the bus topology with local guardians (Figure 1),
   and the data-continuity mailbox — the paper's "tempting
   functionality" that re-creates the out-of-slot hazard without any
   fault. *)

open Ttp

let medl = Medl.uniform ~nodes:4 ()

(* ------------------------------------------------------------------ *)
(* Clock model in isolation *)

let test_drift_accumulates () =
  let d = Sim.Clock_model.create ~window:1.0 ~ppm:[| 0.0; 1000.0 |] () in
  for _ = 1 to 100 do
    Sim.Clock_model.advance d ~slot_duration:10
  done;
  Alcotest.(check (float 1e-9)) "perfect clock stays" 0.0
    (Sim.Clock_model.error d 0);
  Alcotest.(check (float 1e-6)) "1000 ppm over 1000 uticks" 1.0
    (Sim.Clock_model.error d 1);
  Alcotest.(check (float 1e-6)) "spread" 1.0 (Sim.Clock_model.spread d)

let test_fta_pulls_ensemble_together () =
  let d =
    Sim.Clock_model.create ~window:1.0 ~ppm:[| -500.0; 0.0; 0.0; 2000.0 |] ()
  in
  for _ = 1 to 40 do
    Sim.Clock_model.advance d ~slot_duration:10
  done;
  let before = Sim.Clock_model.spread d in
  Sim.Clock_model.apply_fta d ~heard:[ 0; 1; 2; 3 ];
  let after = Sim.Clock_model.spread d in
  Alcotest.(check bool) "spread shrinks" true (after < before);
  (* Repeated sync keeps it bounded. *)
  for _ = 1 to 50 do
    for _ = 1 to 4 do
      Sim.Clock_model.advance d ~slot_duration:10
    done;
    Sim.Clock_model.apply_fta d ~heard:[ 0; 1; 2; 3 ]
  done;
  Alcotest.(check bool) "bounded under periodic sync" true
    (Sim.Clock_model.spread d < 2.0 *. before)

let test_fta_disabled_is_noop () =
  let d =
    Sim.Clock_model.create ~sync:false ~window:1.0 ~ppm:[| 0.0; 1000.0 |] ()
  in
  Sim.Clock_model.advance d ~slot_duration:100;
  let e = Sim.Clock_model.error d 1 in
  Sim.Clock_model.apply_fta d ~heard:[ 0; 1 ];
  Alcotest.(check (float 1e-12)) "unchanged" e (Sim.Clock_model.error d 1)

let test_fta_tolerates_byzantine_clock () =
  (* One runaway clock must not drag the healthy majority. *)
  let d =
    Sim.Clock_model.create ~window:1.0
      ~ppm:[| 0.0; 0.0; 0.0; 100_000.0 |]
      ()
  in
  for _ = 1 to 20 do
    for _ = 1 to 4 do
      Sim.Clock_model.advance d ~slot_duration:10
    done;
    Sim.Clock_model.apply_fta d ~heard:[ 0; 1; 2; 3 ]
  done;
  Alcotest.(check bool) "healthy clocks stay close to zero" true
    (Float.abs (Sim.Clock_model.error d 0) < 1.0
    && Float.abs (Sim.Clock_model.error d 1) < 1.0)

(* ------------------------------------------------------------------ *)
(* Drift wired into the cluster *)

let drift_cluster ~sync ~ppm =
  let c = Sim.Cluster.create ~feature_set:Guardian.Feature_set.Time_windows medl in
  Sim.Cluster.set_drift c
    (Sim.Clock_model.create ~sync ~window:1.0 ~ppm ());
  c

let freezes c = Sim.Event_log.freezes (Sim.Cluster.log c)

let test_unsynchronized_drift_kills () =
  let c = drift_cluster ~sync:false ~ppm:[| 0.0; 0.0; 0.0; 4000.0 |] in
  Alcotest.(check bool) "boots" true (Sim.Cluster.boot c);
  Sim.Cluster.run c ~slots:120;
  Alcotest.(check bool) "drift without sync causes freezes" true
    (freezes c <> [])

let test_fta_keeps_cluster_alive () =
  let c = drift_cluster ~sync:true ~ppm:[| 0.0; 0.0; 0.0; 4000.0 |] in
  Alcotest.(check bool) "boots" true (Sim.Cluster.boot c);
  Sim.Cluster.run c ~slots:120;
  Alcotest.(check int) "no freezes under FTA sync" 0
    (List.length (freezes c));
  Alcotest.(check int) "all still active" 4
    (Sim.Cluster.count_in_state c Controller.Active)

let test_reshaping_also_rescues_drift () =
  (* The small-shifting coupler's signal reshaping absorbs marginal
     drift even without clock sync — the guardian capability the paper
     credits for eliminating SOS faults. The drift must stay marginal
     (< max_sos) over the horizon for reshaping to help. *)
  let c =
    Sim.Cluster.create ~feature_set:Guardian.Feature_set.Small_shifting medl
  in
  Sim.Cluster.set_drift c
    (Sim.Clock_model.create ~sync:false ~window:30.0
       ~ppm:[| 0.0; 0.0; 0.0; 4000.0 |]
       ());
  Alcotest.(check bool) "boots" true (Sim.Cluster.boot c);
  Sim.Cluster.run c ~slots:120;
  Alcotest.(check int) "reshaping absorbs marginal drift" 0
    (List.length (freezes c))

(* ------------------------------------------------------------------ *)
(* Bus topology *)

let test_bus_boot () =
  let b = Sim.Bus.create medl in
  Alcotest.(check bool) "boots" true (Sim.Bus.boot b);
  Alcotest.(check int) "all active" 4
    (Sim.Bus.count_in_state b Controller.Active)

let test_bus_babbler_contained_by_local_guardian () =
  let b = Sim.Bus.create medl in
  Alcotest.(check bool) "boots" true (Sim.Bus.boot b);
  Sim.Bus.set_node_fault b ~node:3 (Sim.Node_fault.Babbling { in_slot = 1 });
  Sim.Bus.run b ~slots:40;
  Alcotest.(check int) "healthy local guardian contains babbling" 4
    (Sim.Bus.count_in_state b Controller.Active)

let test_bus_babbler_with_open_guardian_kills_victim () =
  (* The decentralized failure the central guardian was invented for:
     babbler + its own stuck-open guardian destroy the victim's slot
     every round; membership diverges and the victim is expelled. *)
  let b = Sim.Bus.create medl in
  Alcotest.(check bool) "boots" true (Sim.Bus.boot b);
  Sim.Bus.set_node_fault b ~node:3 (Sim.Node_fault.Babbling { in_slot = 1 });
  Sim.Bus.set_guardian_fault b ~node:3 Sim.Bus.G_stuck_open;
  Sim.Bus.run b ~slots:40;
  (* The babbling collides with whichever node's slot happens to line
     up with the bus phase; that victim's frames never decode, its
     membership diverges, and clique avoidance expels it. *)
  let frozen =
    List.filter
      (fun i -> Controller.state (Sim.Bus.controller b i) = Controller.Freeze)
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool) "somebody was expelled" true (frozen <> []);
  Alcotest.(check bool) "the cluster did not survive intact" true
    (Sim.Bus.count_in_state b Controller.Active < 4)

let test_bus_stuck_closed_hurts_only_its_node () =
  let b = Sim.Bus.create medl in
  Alcotest.(check bool) "boots" true (Sim.Bus.boot b);
  Sim.Bus.set_guardian_fault b ~node:2 Sim.Bus.G_stuck_closed;
  Sim.Bus.run b ~slots:40;
  (* Local-guardian faults are local: only node 2 suffers. *)
  Alcotest.(check bool) "node 2 off the bus" true
    (Controller.state (Sim.Bus.controller b 2) <> Controller.Active);
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d unaffected" i)
        true
        (Controller.state (Sim.Bus.controller b i) = Controller.Active))
    [ 0; 1; 3 ]

let test_bus_sos_splits_clique () =
  (* A passive bus cannot reshape marginal signals: the SOS split
     happens exactly as on a passive star hub. *)
  let b = Sim.Bus.create medl in
  Alcotest.(check bool) "boots" true (Sim.Bus.boot b);
  Sim.Bus.set_node_fault b ~node:1
    (Sim.Node_fault.Sos { timing = 0.5; value = 0.0 });
  Sim.Bus.run b ~slots:40;
  Alcotest.(check bool) "some node expelled" true
    (Sim.Event_log.freezes (Sim.Bus.log b) <> [])

(* ------------------------------------------------------------------ *)
(* The data-continuity mailbox *)

let test_mailbox_requires_buffering () =
  Alcotest.check_raises "needs full shifting"
    (Invalid_argument
       "Coupler.create: the data-continuity mailbox requires full-frame \
        buffering")
    (fun () ->
      ignore
        (Guardian.Coupler.create
           ~feature_set:Guardian.Feature_set.Small_shifting
           ~data_continuity:true ~channel:0 ~medl ()))

let test_mailbox_fills_dead_slots () =
  let c =
    Sim.Cluster.create ~feature_set:Guardian.Feature_set.Full_shifting
      ~data_continuity:true medl
  in
  Alcotest.(check bool) "boots" true (Sim.Cluster.boot c);
  Controller.host_freeze (Sim.Cluster.controller c 3);
  Sim.Cluster.run c ~slots:24;
  (* Node 3's slot is dead, but the mailbox keeps serving its last
     frame: the host-visible "data continuity". *)
  Alcotest.(check bool) "substitutions happened" true
    (Guardian.Coupler.substitutions (Sim.Cluster.coupler c 0) > 0);
  (* The survivors tolerate the stale frames (they recognize them as
     incorrect) — in steady state the service looks benign. *)
  Alcotest.(check int) "survivors active" 3
    (Sim.Cluster.count_in_state c Controller.Active)

let test_mailbox_poisons_reintegration_without_any_fault () =
  (* The punchline: with the mailbox enabled, the out-of-slot failure
     happens with every component healthy. Node 3 re-integrates exactly
     at its own slot, where the only frame on offer is the mailbox's
     stale copy of its own last transmission. *)
  let c =
    Sim.Cluster.create ~feature_set:Guardian.Feature_set.Full_shifting
      ~data_continuity:true medl
  in
  Alcotest.(check bool) "boots" true (Sim.Cluster.boot c);
  Controller.host_freeze (Sim.Cluster.controller c 3);
  let aligned =
    Sim.Cluster.run_until c ~max_slots:12 (fun c ->
        Controller.slot (Sim.Cluster.controller c 0) = 2
        && Controller.state (Sim.Cluster.controller c 0) = Controller.Active)
  in
  Alcotest.(check bool) "aligned" true aligned;
  Sim.Cluster.start_node c 3;
  Sim.Cluster.run c ~slots:2;
  Alcotest.(check bool) "integrated on the stale mailbox frame" true
    (Controller.state (Sim.Cluster.controller c 3) = Controller.Passive);
  Sim.Cluster.run c ~slots:16;
  Alcotest.(check bool) "expelled by clique avoidance, zero faults" true
    (Controller.freeze_cause (Sim.Cluster.controller c 3)
    = Some Controller.Clique_error)

let test_mailbox_off_means_no_substitutions () =
  let c =
    Sim.Cluster.create ~feature_set:Guardian.Feature_set.Full_shifting medl
  in
  Alcotest.(check bool) "boots" true (Sim.Cluster.boot c);
  Controller.host_freeze (Sim.Cluster.controller c 3);
  Sim.Cluster.run c ~slots:24;
  Alcotest.(check int) "no substitutions" 0
    (Guardian.Coupler.substitutions (Sim.Cluster.coupler c 0))

(* ------------------------------------------------------------------ *)
(* The asynchronous (CAN-like) network: the paper's conclusion claim. *)

let async_senders () =
  [| Sim.Async_net.sender ~can_id:1 ~period:7;
     Sim.Async_net.sender ~can_id:3 ~period:5 |]

let test_async_transparent_is_fresh () =
  let net =
    Sim.Async_net.create ~gateway:Sim.Async_net.Transparent (async_senders ())
  in
  Sim.Async_net.run net ~ticks:100;
  let r = Sim.Async_net.reception net in
  Alcotest.(check bool) "traffic flowed" true (r.Sim.Async_net.accepted > 20);
  Alcotest.(check int) "no masquerades on a transparent network" 0
    r.Sim.Async_net.stale_accepted;
  Alcotest.(check int) "everything delivered the tick it was born" 0
    r.Sim.Async_net.max_staleness

let test_async_gateway_masquerades () =
  (* A store-and-forward gateway replays mailbox contents at quiet
     ticks: without sender identification, receivers accept the stale
     frames as fresh data — the asynchronous masquerade. *)
  let net =
    Sim.Async_net.create
      ~gateway:(Sim.Async_net.Store_and_forward { replay_at = [ 11; 23; 41 ] })
      (async_senders ())
  in
  Sim.Async_net.run net ~ticks:100;
  let r = Sim.Async_net.reception net in
  Alcotest.(check int) "every replay accepted as fresh" 3
    r.Sim.Async_net.stale_accepted;
  Alcotest.(check bool) "stale data reached the application" true
    (r.Sim.Async_net.max_staleness > 0);
  Alcotest.(check int) "nothing detected without identification" 0
    r.Sim.Async_net.replays_detected

let test_async_sequence_numbers_defeat_replay () =
  (* The paper's diagnosis — identification, not timing — as a fix:
     sequence numbers catch every replay. *)
  let net =
    Sim.Async_net.create ~check_sequence:true
      ~gateway:(Sim.Async_net.Store_and_forward { replay_at = [ 11; 23; 41 ] })
      (async_senders ())
  in
  Sim.Async_net.run net ~ticks:100;
  let r = Sim.Async_net.reception net in
  Alcotest.(check int) "all replays detected" 3 r.Sim.Async_net.replays_detected;
  Alcotest.(check int) "no masquerade succeeds" 0 r.Sim.Async_net.stale_accepted;
  Alcotest.(check int) "fresh traffic unaffected" 0 r.Sim.Async_net.max_staleness

let test_async_arbitration () =
  (* Two senders due the same tick: the lower id wins; the loser's
     message is not delivered that tick. *)
  let net =
    Sim.Async_net.create ~gateway:Sim.Async_net.Transparent
      [| Sim.Async_net.sender ~can_id:2 ~period:10;
         Sim.Async_net.sender ~can_id:5 ~period:10 |]
  in
  Sim.Async_net.run net ~ticks:10;
  let r = Sim.Async_net.reception net in
  (* Tick 0: both due, one winner. *)
  Alcotest.(check int) "one delivery per contention" 1 r.Sim.Async_net.accepted

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "extensions"
    [
      ( "clock model",
        [
          Alcotest.test_case "drift accumulates" `Quick test_drift_accumulates;
          Alcotest.test_case "fta pulls together" `Quick
            test_fta_pulls_ensemble_together;
          Alcotest.test_case "fta disabled" `Quick test_fta_disabled_is_noop;
          Alcotest.test_case "fta tolerates byzantine clock" `Quick
            test_fta_tolerates_byzantine_clock;
        ] );
      ( "drift in cluster",
        [
          Alcotest.test_case "unsynchronized drift kills" `Quick
            test_unsynchronized_drift_kills;
          Alcotest.test_case "fta keeps cluster alive" `Quick
            test_fta_keeps_cluster_alive;
          Alcotest.test_case "reshaping rescues marginal drift" `Quick
            test_reshaping_also_rescues_drift;
        ] );
      ( "bus topology",
        [
          Alcotest.test_case "boot" `Quick test_bus_boot;
          Alcotest.test_case "babbler contained" `Quick
            test_bus_babbler_contained_by_local_guardian;
          Alcotest.test_case "open guardian kills victim" `Quick
            test_bus_babbler_with_open_guardian_kills_victim;
          Alcotest.test_case "stuck-closed is local" `Quick
            test_bus_stuck_closed_hurts_only_its_node;
          Alcotest.test_case "sos splits clique" `Quick
            test_bus_sos_splits_clique;
        ] );
      ( "asynchronous network",
        [
          Alcotest.test_case "transparent network is fresh" `Quick
            test_async_transparent_is_fresh;
          Alcotest.test_case "gateway masquerades" `Quick
            test_async_gateway_masquerades;
          Alcotest.test_case "sequence numbers defeat replay" `Quick
            test_async_sequence_numbers_defeat_replay;
          Alcotest.test_case "arbitration" `Quick test_async_arbitration;
        ] );
      ( "data-continuity mailbox",
        [
          Alcotest.test_case "requires buffering" `Quick
            test_mailbox_requires_buffering;
          Alcotest.test_case "fills dead slots" `Quick
            test_mailbox_fills_dead_slots;
          Alcotest.test_case "poisons re-integration, zero faults" `Quick
            test_mailbox_poisons_reintegration_without_any_fault;
          Alcotest.test_case "off means off" `Quick
            test_mailbox_off_means_no_substitutions;
        ] );
    ]
