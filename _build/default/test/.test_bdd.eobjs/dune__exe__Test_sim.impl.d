test/test_sim.ml: Alcotest Array Controller Cstate Guardian List Medl Membership Printf Sim Ttp
