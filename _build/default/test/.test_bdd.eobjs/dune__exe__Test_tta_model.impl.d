test/test_tta_model.ml: Alcotest Array Bdd Bmc Ctl Enc Expr Format Guardian Induction List Model Printf Random Reach Smv_export String Symkit Trace Tta_model
