test/test_symkit.mli:
