test/test_sat.ml: Alcotest Fun List Printf QCheck QCheck_alcotest Sat
