test/test_tta_model.mli:
