test/test_guardian.ml: Alcotest Controller Cstate Frame Guardian List Medl QCheck QCheck_alcotest Ttp
