test/test_ttp.mli:
