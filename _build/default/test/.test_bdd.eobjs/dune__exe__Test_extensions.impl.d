test/test_extensions.ml: Alcotest Controller Float Guardian List Medl Printf Sim Ttp
