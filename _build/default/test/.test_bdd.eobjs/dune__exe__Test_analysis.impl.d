test/test_analysis.ml: Alcotest Analysis Float List Printf QCheck QCheck_alcotest Ttp
