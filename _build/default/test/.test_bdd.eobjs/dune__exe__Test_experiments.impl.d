test/test_experiments.ml: Alcotest Core List
