test/test_symkit.ml: Alcotest Array Bdd Bmc Ctl Enc Explicit Expr Induction List Model QCheck QCheck_alcotest Reach Smv_export String Symkit Syntax Trace
