test/test_bdd.ml: Alcotest Array Bdd Hashtbl List QCheck QCheck_alcotest
