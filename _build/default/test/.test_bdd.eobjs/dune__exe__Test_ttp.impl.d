test/test_ttp.ml: Alcotest Clocksync Controller Crc Cstate Frame List Medl Membership Printf QCheck QCheck_alcotest Ttp
