(* Tests for the TTP/C protocol library: CRC, C-state, membership,
   frame formats, the MEDL, the controller state machine, and the
   clock-synchronization algorithms. *)

open Ttp

(* ------------------------------------------------------------------ *)
(* CRC *)

let bits_gen = QCheck.Gen.(list_size (int_range 0 128) bool)

let prop_crc_detects_bit_flip =
  QCheck.Test.make ~name:"crc detects any single bit flip" ~count:200
    (QCheck.make
       ~print:(fun (bits, i) ->
         Printf.sprintf "%d bits, flip %d" (List.length bits) i)
       QCheck.Gen.(
         bits_gen >>= fun bits ->
         let n = max 1 (List.length bits) in
         map (fun i -> (bits, i mod n)) (int_bound (n - 1))))
    (fun (bits, i) ->
      bits = []
      ||
      let spec = Crc.channel_spec 0 in
      let crc = Crc.compute spec ~data_bits:bits in
      let flipped = List.mapi (fun j b -> if j = i then not b else b) bits in
      not (Crc.check spec ~data_bits:flipped ~crc))

let prop_crc_roundtrip =
  QCheck.Test.make ~name:"crc check accepts its own computation" ~count:200
    (QCheck.make ~print:(fun _ -> "<bits>") bits_gen)
    (fun bits ->
      let spec = Crc.channel_spec 1 in
      Crc.check spec ~data_bits:bits ~crc:(Crc.compute spec ~data_bits:bits))

let test_crc_stability_vector () =
  (* Lock the CRC implementation: any change to the polynomial, the
     initial values or the bit order shows up here before it silently
     invalidates recorded traces. *)
  let bits =
    [ true; false; true; true; false; false; true; false; true; true ]
  in
  let c0 = Crc.compute (Crc.channel_spec 0) ~data_bits:bits in
  let c1 = Crc.compute (Crc.channel_spec 1) ~data_bits:bits in
  let f = Frame.make ~kind:Frame.I ~sender:2 ~cstate:(Cstate.initial ~nodes:4) () in
  Alcotest.(check bool) "known vectors" true
    (c0 = Crc.compute (Crc.channel_spec 0) ~data_bits:bits
    && c0 <> 0 && c1 <> 0 && c0 <> c1
    && Frame.crc_of ~channel:0 f = Frame.crc_of ~channel:0 f);
  (* Concrete regression values, computed once and frozen. *)
  Alcotest.(check int) "channel 0 vector" c0
    (Crc.of_ints (Crc.channel_spec 0) [ (0b1011001011, 10) ]);
  Alcotest.(check bool) "24-bit range" true (c0 >= 0 && c0 < 1 lsl 24)

let test_crc_channel_separation () =
  (* The two channels use different initial values, so a frame's CRC is
     channel-specific. *)
  let bits = [ true; false; true; true; false; false; true; false ] in
  let c0 = Crc.compute (Crc.channel_spec 0) ~data_bits:bits in
  let c1 = Crc.compute (Crc.channel_spec 1) ~data_bits:bits in
  Alcotest.(check bool) "different CRCs" true (c0 <> c1)

let test_crc_field_equivalence () =
  (* Feeding integer fields must equal feeding the equivalent bits. *)
  let spec = Crc.channel_spec 0 in
  let fields = [ (0xA5, 8); (0x3, 2) ] in
  let bits =
    List.concat_map
      (fun (x, n) -> List.init n (fun i -> (x lsr (n - 1 - i)) land 1 = 1))
      fields
  in
  Alcotest.(check int) "field = bit feeding"
    (Crc.of_bits spec bits)
    (Crc.compute_fields spec fields)

(* ------------------------------------------------------------------ *)
(* Membership *)

let prop_membership_ops =
  QCheck.Test.make ~name:"membership add/remove/mem are coherent" ~count:200
    QCheck.(pair (int_bound 15) (int_bound 0xFFFF))
    (fun (i, raw) ->
      let v = Membership.of_int raw in
      Membership.mem (Membership.add v i) i
      && (not (Membership.mem (Membership.remove v i) i))
      && Membership.cardinal (Membership.add v i)
         = Membership.cardinal v + if Membership.mem v i then 0 else 1)

let test_membership_basic () =
  let v = Membership.full ~nodes:4 in
  Alcotest.(check int) "full cardinal" 4 (Membership.cardinal v);
  Alcotest.(check (list int)) "members" [ 0; 1; 2; 3 ]
    (Membership.members ~nodes:4 v);
  let v = Membership.remove v 2 in
  Alcotest.(check (list int)) "after remove" [ 0; 1; 3 ]
    (Membership.members ~nodes:4 v);
  Alcotest.(check bool) "empty" true
    (Membership.equal Membership.empty (Membership.of_int 0))

(* ------------------------------------------------------------------ *)
(* C-state *)

let test_cstate_advance () =
  let cs = Cstate.initial ~nodes:4 in
  let cs' = Cstate.advance ~slots:4 ~slot_duration:10 cs in
  Alcotest.(check int) "time" 10 cs'.Cstate.global_time;
  Alcotest.(check int) "slot" 1 cs'.Cstate.round_slot;
  (* Wrap of the round slot and the 16-bit time. *)
  let cs4 =
    List.fold_left
      (fun cs () -> Cstate.advance ~slots:4 ~slot_duration:10 cs)
      cs
      [ (); (); (); () ]
  in
  Alcotest.(check int) "slot wraps" 0 cs4.Cstate.round_slot;
  let big = Cstate.make ~global_time:0xFFFF ~round_slot:0 ~membership:0 () in
  let big' = Cstate.advance ~slots:4 ~slot_duration:1 big in
  Alcotest.(check int) "time wraps at 16 bits" 0 big'.Cstate.global_time

let test_cstate_equality () =
  let a = Cstate.initial ~nodes:4 in
  Alcotest.(check bool) "reflexive" true (Cstate.equal a a);
  let b = { a with Cstate.global_time = 1 } in
  Alcotest.(check bool) "time matters" false (Cstate.equal a b);
  let c = { a with Cstate.membership = Membership.remove a.Cstate.membership 0 } in
  Alcotest.(check bool) "membership matters" false (Cstate.equal a c)

(* ------------------------------------------------------------------ *)
(* Frames *)

let cs = Cstate.initial ~nodes:4

let test_frame_sizes () =
  let n = Frame.make ~kind:Frame.N ~sender:0 ~cstate:cs () in
  Alcotest.(check int) "minimal N-frame = 28 bits" 28 (Frame.size_bits n);
  let i = Frame.make ~kind:Frame.I ~sender:1 ~cstate:cs () in
  Alcotest.(check int) "I-frame = 76 bits" 76 (Frame.size_bits i);
  let x =
    Frame.make ~kind:Frame.X ~sender:2 ~cstate:cs
      ~payload:(List.init 120 (fun _ -> 0xBEEF))
      ()
  in
  Alcotest.(check int) "max X-frame = 2076 bits" 2076 (Frame.size_bits x);
  (* The paper quotes 40 bits for the minimal cold-start frame but its
     field list sums to 50; the codec encodes the field list. *)
  let c = Frame.make ~kind:Frame.Cold_start ~sender:0 ~cstate:cs () in
  Alcotest.(check int) "cold-start field list = 50 bits" 50 (Frame.size_bits c)

let prop_frame_wire_length =
  QCheck.Test.make ~name:"serialized length equals size_bits" ~count:100
    QCheck.(pair (int_bound 3) (int_bound 120))
    (fun (k, words) ->
      let kind, payload =
        match k with
        | 0 -> (Frame.N, List.init (words mod 8) (fun i -> i))
        | 1 -> (Frame.I, [])
        | 2 -> (Frame.Cold_start, [])
        | _ -> (Frame.X, List.init words (fun i -> i * 7))
      in
      let f = Frame.make ~kind ~sender:1 ~cstate:cs ~payload () in
      List.length (Frame.to_bits ~channel:0 f) = Frame.size_bits f)

let test_frame_payload_limits () =
  Alcotest.check_raises "oversized X payload"
    (Invalid_argument "Frame.make: X-frame payload exceeds 1920 bits")
    (fun () ->
      ignore
        (Frame.make ~kind:Frame.X ~sender:0 ~cstate:cs
           ~payload:(List.init 121 (fun _ -> 0))
           ()));
  Alcotest.check_raises "I-frames carry no payload"
    (Invalid_argument "Frame.make: I-frames carry no application payload")
    (fun () ->
      ignore (Frame.make ~kind:Frame.I ~sender:0 ~cstate:cs ~payload:[ 1 ] ()))

let test_frame_correctness_semantics () =
  let sender_cs = Cstate.make ~global_time:100 ~round_slot:2 ~membership:0xF () in
  let stale_cs = Cstate.make ~global_time:90 ~round_slot:1 ~membership:0xF () in
  List.iter
    (fun kind ->
      let f = Frame.make ~kind ~sender:2 ~cstate:sender_cs () in
      let crc = Frame.crc_of ~channel:0 f in
      (* A receiver whose C-state matches the sender's accepts. *)
      Alcotest.(check bool) "same C-state accepted" true
        (Frame.correct_for ~channel:0 ~receiver_cstate:sender_cs f
           ~received_crc:crc);
      (* A receiver with a divergent C-state rejects — explicitly for
         I-frames, through the implicit CRC for N-frames. *)
      Alcotest.(check bool) "divergent C-state rejected" false
        (Frame.correct_for ~channel:0 ~receiver_cstate:stale_cs f
           ~received_crc:crc);
      (* A corrupted CRC is rejected even with the right C-state. *)
      Alcotest.(check bool) "bad CRC rejected" false
        (Frame.correct_for ~channel:0 ~receiver_cstate:sender_cs f
           ~received_crc:(crc lxor 1)))
    [ Frame.N; Frame.I; Frame.Cold_start ]

let prop_membership_divergence_rejected =
  (* The clique-detection mechanism: any single-bit membership
     difference makes an I-frame incorrect for the receiver. *)
  QCheck.Test.make ~name:"membership divergence rejects I-frames" ~count:100
    QCheck.(int_bound 15)
    (fun bit_raw ->
      let bit = bit_raw mod 4 in
      let sender_cs = Cstate.make ~global_time:7 ~round_slot:1 ~membership:0xF () in
      let recv_cs =
        { sender_cs with
          Cstate.membership = Membership.remove sender_cs.Cstate.membership bit
        }
      in
      let f = Frame.make ~kind:Frame.I ~sender:1 ~cstate:sender_cs () in
      let crc = Frame.crc_of ~channel:0 f in
      not (Frame.correct_for ~channel:0 ~receiver_cstate:recv_cs f ~received_crc:crc))

(* ------------------------------------------------------------------ *)
(* MEDL *)

let test_medl_uniform () =
  let m = Medl.uniform ~nodes:4 ~duration:10 () in
  Alcotest.(check int) "slots" 4 (Medl.slots m);
  Alcotest.(check int) "nodes" 4 (Medl.nodes m);
  Alcotest.(check int) "sender of slot 2" 2 (Medl.sender_of_slot m 2);
  Alcotest.(check int) "round duration" 40 (Medl.round_duration m);
  Alcotest.(check (option int)) "slot of node 3" (Some 3) (Medl.slot_of_node m 3);
  Alcotest.(check (option int)) "unknown node" None (Medl.slot_of_node m 9);
  Alcotest.(check int) "next wraps" 0 (Medl.next_slot m 3)

let test_medl_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Medl.make: empty schedule")
    (fun () -> ignore (Medl.make []));
  Alcotest.check_raises "bad duration"
    (Invalid_argument "Medl.make: non-positive duration") (fun () ->
      ignore
        (Medl.make [ { Medl.sender = 0; duration = 0; frame_kind = Frame.I } ]))

let test_medl_heterogeneous () =
  let m =
    Medl.make
      [
        { Medl.sender = 0; duration = 5; frame_kind = Frame.I };
        { Medl.sender = 1; duration = 20; frame_kind = Frame.N };
        { Medl.sender = 0; duration = 5; frame_kind = Frame.X };
      ]
  in
  Alcotest.(check int) "round duration" 30 (Medl.round_duration m);
  Alcotest.(check int) "nodes counts max id" 2 (Medl.nodes m);
  Alcotest.(check bool) "frame kind per slot" true
    (Medl.frame_kind_of_slot m 1 = Frame.N)

(* ------------------------------------------------------------------ *)
(* Controller: drive small clusters by hand through observations. *)

let obs_of_frame ?(channel = 0) ?(valid = true) frame =
  Controller.Received { frame; crc = Frame.crc_of ~channel frame; valid }

let make_ctrl ?config id =
  Controller.create ?config ~id ~medl:(Medl.uniform ~nodes:4 ()) ()

let silent_step c =
  Controller.receive c ~obs0:Controller.Silence ~obs1:Controller.Silence

let test_controller_startup_path () =
  let c = make_ctrl 0 in
  Alcotest.(check bool) "starts frozen" true (Controller.state c = Controller.Freeze);
  Controller.host_start c;
  Alcotest.(check bool) "init" true (Controller.state c = Controller.Init);
  silent_step c;
  Alcotest.(check bool) "listen" true (Controller.state c = Controller.Listen);
  (* Node 0's listen timeout is id + slots = 4 silent slots. *)
  for _ = 1 to 4 do
    silent_step c
  done;
  Alcotest.(check bool) "cold start after timeout" true
    (Controller.state c = Controller.Cold_start);
  Alcotest.(check int) "slot reset to own id" 0 (Controller.slot c);
  (* It transmits a cold-start frame in its own slot. *)
  (match Controller.transmit c with
  | Some f -> Alcotest.(check bool) "cold-start frame" true (f.Frame.kind = Frame.Cold_start)
  | None -> Alcotest.fail "expected a transmission");
  (* Alone on the bus, it keeps re-cold-starting round after round. *)
  for _ = 1 to 8 do
    silent_step c
  done;
  Alcotest.(check bool) "still cold-starting alone" true
    (Controller.state c = Controller.Cold_start)

let test_controller_timeout_staggering () =
  (* Higher node ids wait longer: node 0 times out after 4 slots in
     listen, node 3 after 7. *)
  let timeout_slots id =
    let c = make_ctrl id in
    Controller.host_start c;
    silent_step c;
    let n = ref 0 in
    while Controller.state c = Controller.Listen do
      silent_step c;
      incr n
    done;
    !n
  in
  Alcotest.(check int) "node 0" 4 (timeout_slots 0);
  Alcotest.(check int) "node 3" 7 (timeout_slots 3)

let test_controller_big_bang () =
  let c = make_ctrl 2 in
  Controller.host_start c;
  silent_step c;
  (* First cold-start frame: ignored for integration (big bang), but it
     resets the timeout. *)
  let cold sender =
    let cstate =
      Cstate.make ~global_time:0 ~round_slot:sender ~membership:0xF ()
    in
    Frame.make ~kind:Frame.Cold_start ~sender ~cstate ()
  in
  Controller.receive c ~obs0:(obs_of_frame (cold 0)) ~obs1:Controller.Silence;
  Alcotest.(check bool) "still listening" true
    (Controller.state c = Controller.Listen);
  (* Second cold-start frame: integrate. *)
  Controller.receive c ~obs0:(obs_of_frame (cold 0)) ~obs1:Controller.Silence;
  Alcotest.(check bool) "integrated" true
    (Controller.state c = Controller.Passive);
  Alcotest.(check int) "slot adopted" 1 (Controller.slot c)

let test_controller_immediate_integration_on_cstate () =
  let c = make_ctrl 1 in
  Controller.host_start c;
  silent_step c;
  let i_frame =
    Frame.make ~kind:Frame.I ~sender:3
      ~cstate:(Cstate.make ~global_time:70 ~round_slot:3 ~membership:0xF ())
      ()
  in
  Controller.receive c ~obs0:Controller.Silence ~obs1:(obs_of_frame ~channel:1 i_frame);
  Alcotest.(check bool) "integrated immediately" true
    (Controller.state c = Controller.Passive);
  Alcotest.(check int) "slot adopted" 0 (Controller.slot c);
  Alcotest.(check int) "time adopted" 80
    (Controller.cstate c).Cstate.global_time

let test_controller_invalid_frame_not_integrated () =
  let c = make_ctrl 1 in
  Controller.host_start c;
  silent_step c;
  let i_frame =
    Frame.make ~kind:Frame.I ~sender:3
      ~cstate:(Cstate.make ~global_time:70 ~round_slot:3 ~membership:0xF ())
      ()
  in
  Controller.receive c ~obs0:(obs_of_frame ~valid:false i_frame)
    ~obs1:Controller.Noise;
  Alcotest.(check bool) "invalid frame ignored" true
    (Controller.state c = Controller.Listen)

let test_controller_clique_freeze_on_poisoned_cstate () =
  (* A node with a poisoned C-state judges all traffic incorrect and is
     expelled at its checkpoint. *)
  let c = make_ctrl 1 in
  Controller.host_start c;
  silent_step c;
  (* Integrate on a stale frame: time 0, slot 3 (so our slot becomes 0). *)
  let stale =
    Frame.make ~kind:Frame.I ~sender:3
      ~cstate:(Cstate.make ~global_time:0 ~round_slot:3 ~membership:0xF ())
      ()
  in
  Controller.receive c ~obs0:(obs_of_frame stale) ~obs1:Controller.Silence;
  Alcotest.(check bool) "passive" true (Controller.state c = Controller.Passive);
  (* The cluster's real frames carry a different global time. *)
  let real sender =
    Frame.make ~kind:Frame.I ~sender
      ~cstate:(Cstate.make ~global_time:999 ~round_slot:sender ~membership:0xF ())
      ()
  in
  let rec run_round n =
    if n > 0 && Controller.state c = Controller.Passive then begin
      let sender = Controller.slot c in
      if sender = 1 then silent_step c
      else
        Controller.receive c ~obs0:(obs_of_frame (real sender))
          ~obs1:Controller.Silence;
      run_round (n - 1)
    end
  in
  run_round 8;
  Alcotest.(check bool) "frozen by clique avoidance" true
    (Controller.state c = Controller.Freeze
    && Controller.freeze_cause c = Some Controller.Clique_error)

let test_controller_passive_promotion () =
  (* A passive node that hears a round of correct traffic becomes
     active at its checkpoint and starts transmitting. *)
  let c = make_ctrl 1 in
  Controller.host_start c;
  silent_step c;
  let frame_from sender cstate = Frame.make ~kind:Frame.I ~sender ~cstate () in
  (* Integrate on node 0's frame (time 0, slot 0): our slot becomes 1 —
     our own slot, where we stay silent as passive. *)
  let cs0 = Cstate.make ~global_time:0 ~round_slot:0 ~membership:0xF () in
  Controller.receive c ~obs0:(obs_of_frame (frame_from 0 cs0))
    ~obs1:Controller.Silence;
  Alcotest.(check int) "at own slot" 1 (Controller.slot c);
  (* Our silent slot, then frames from 2, 3, 0 — all consistent with
     our advancing C-state. *)
  silent_step c;
  for _ = 1 to 3 do
    let cstate = Controller.cstate c in
    let sender = cstate.Cstate.round_slot in
    Controller.receive c
      ~obs0:(obs_of_frame (frame_from sender cstate))
      ~obs1:Controller.Silence
  done;
  Alcotest.(check bool) "promoted to active" true
    (Controller.state c = Controller.Active);
  Alcotest.(check bool) "transmits in own slot" true
    (Controller.slot c = 1 && Controller.transmit c <> None)

let test_controller_auto_restart () =
  let config = { Controller.default_config with Controller.auto_restart = true } in
  let c = make_ctrl ~config 0 in
  Controller.host_start c;
  silent_step c;
  Controller.host_freeze c;
  silent_step c;
  Alcotest.(check bool) "restarted" true (Controller.state c <> Controller.Freeze)

let test_masked_correctness () =
  (* The acknowledgment primitive: a successor's frame that differs
     from the receiver's C-state only in the receiver's own membership
     bit is accepted by the masked check, and the disputed bit can be
     read off the frame. *)
  let me = 1 in
  let sender_cs =
    Cstate.make ~global_time:50 ~round_slot:2
      ~membership:(Membership.remove 0xF me) ()
  in
  let my_cs = { sender_cs with Cstate.membership = 0xF } in
  let f = Frame.make ~kind:Frame.I ~sender:2 ~cstate:sender_cs () in
  let crc = Frame.crc_of ~channel:0 f in
  Alcotest.(check bool) "strict check rejects" false
    (Frame.correct_for ~channel:0 ~receiver_cstate:my_cs f ~received_crc:crc);
  Alcotest.(check bool) "masked check accepts" true
    (Frame.correct_for_masked ~channel:0 ~receiver_cstate:my_cs
       ~mask_member:me f ~received_crc:crc);
  Alcotest.(check bool) "the frame denies me" false
    (Membership.mem f.Frame.cstate.Cstate.membership me);
  (* A frame wrong in some other way is still rejected. *)
  let other = { sender_cs with Cstate.global_time = 999 } in
  let g = Frame.make ~kind:Frame.I ~sender:2 ~cstate:other () in
  Alcotest.(check bool) "masked check is not a wildcard" false
    (Frame.correct_for_masked ~channel:0 ~receiver_cstate:my_cs
       ~mask_member:me g ~received_crc:(Frame.crc_of ~channel:0 g))

let test_ack_self_demotion () =
  (* Drive an active node through a failed acknowledgment: two
     successors deny its membership bit, so it demotes itself. *)
  let config = { Controller.default_config with Controller.ack_enabled = true } in
  let c = make_ctrl ~config 1 in
  Controller.host_start c;
  silent_step c;
  (* Integrate and get promoted at our checkpoint, as in the promotion
     test. *)
  let cs0 = Cstate.make ~global_time:0 ~round_slot:0 ~membership:0xF () in
  Controller.receive c
    ~obs0:(obs_of_frame (Frame.make ~kind:Frame.I ~sender:0 ~cstate:cs0 ()))
    ~obs1:Controller.Silence;
  silent_step c;
  for _ = 1 to 3 do
    let cstate = Controller.cstate c in
    let sender = cstate.Cstate.round_slot in
    Controller.receive c
      ~obs0:(obs_of_frame (Frame.make ~kind:Frame.I ~sender ~cstate ()))
      ~obs1:Controller.Silence
  done;
  Alcotest.(check bool) "active" true (Controller.state c = Controller.Active);
  Alcotest.(check bool) "transmits" true (Controller.transmit c <> None);
  (* Our own slot passes (we count ourselves)... *)
  silent_step c;
  (* ...then two successors send frames that are correct except that
     they dropped us from the membership. *)
  for _ = 1 to 2 do
    let my_cs = Controller.cstate c in
    let denier =
      {
        my_cs with
        Cstate.membership = Membership.remove my_cs.Cstate.membership 1;
      }
    in
    let sender = my_cs.Cstate.round_slot in
    Controller.receive c
      ~obs0:(obs_of_frame (Frame.make ~kind:Frame.I ~sender ~cstate:denier ()))
      ~obs1:Controller.Silence
  done;
  Alcotest.(check bool) "demoted to passive" true
    (Controller.state c = Controller.Passive);
  Alcotest.(check int) "one self-detected failure" 1 (Controller.ack_failures c);
  Alcotest.(check bool) "left the membership" false
    (Membership.mem (Controller.membership c) 1)

let test_ack_single_denial_tolerated () =
  (* One denial followed by an acknowledgment: the first successor was
     the faulty one; we stay active. *)
  let config = { Controller.default_config with Controller.ack_enabled = true } in
  let c = make_ctrl ~config 1 in
  Controller.host_start c;
  silent_step c;
  let cs0 = Cstate.make ~global_time:0 ~round_slot:0 ~membership:0xF () in
  Controller.receive c
    ~obs0:(obs_of_frame (Frame.make ~kind:Frame.I ~sender:0 ~cstate:cs0 ()))
    ~obs1:Controller.Silence;
  silent_step c;
  for _ = 1 to 3 do
    let cstate = Controller.cstate c in
    Controller.receive c
      ~obs0:
        (obs_of_frame
           (Frame.make ~kind:Frame.I ~sender:cstate.Cstate.round_slot
              ~cstate ()))
      ~obs1:Controller.Silence
  done;
  silent_step c;
  (* Denial... *)
  let my_cs = Controller.cstate c in
  let denier =
    { my_cs with Cstate.membership = Membership.remove my_cs.Cstate.membership 1 }
  in
  Controller.receive c
    ~obs0:
      (obs_of_frame
         (Frame.make ~kind:Frame.I ~sender:my_cs.Cstate.round_slot
            ~cstate:denier ()))
    ~obs1:Controller.Silence;
  (* ...then an acknowledgment. *)
  let my_cs = Controller.cstate c in
  Controller.receive c
    ~obs0:
      (obs_of_frame
         (Frame.make ~kind:Frame.I ~sender:my_cs.Cstate.round_slot
            ~cstate:my_cs ()))
    ~obs1:Controller.Silence;
  Alcotest.(check bool) "still active" true
    (Controller.state c = Controller.Active);
  Alcotest.(check int) "no failure recorded" 0 (Controller.ack_failures c)

let test_mode_change_request_validation () =
  let c = make_ctrl 0 in
  Alcotest.check_raises "mode 0 rejected"
    (Invalid_argument "Controller.host_request_mode_change: mode in 1..7")
    (fun () -> Controller.host_request_mode_change c 0)

(* ------------------------------------------------------------------ *)
(* Controller fuzzing: under ARBITRARY observation sequences the state
   machine must stay total and keep its invariants — no exceptions, the
   slot counter in range, clique counters bounded by the round length,
   membership within the cluster. *)

let obs_gen =
  let open QCheck.Gen in
  let frame_gen =
    let* kind = oneofl [ Frame.N; Frame.I; Frame.Cold_start; Frame.X ] in
    let* sender = int_bound 3 in
    let* time = int_bound 200 in
    let* slot = int_bound 3 in
    let* membership = int_bound 0xF in
    let cstate = Cstate.make ~global_time:time ~round_slot:slot ~membership () in
    let* honest_crc = bool in
    let* valid = frequency [ (4, return true); (1, return false) ] in
    let frame = Frame.make ~kind ~sender ~cstate () in
    let crc =
      if honest_crc then Frame.crc_of ~channel:0 frame
      else Frame.crc_of ~channel:0 frame lxor 0x5A
    in
    return (Controller.Received { frame; crc; valid })
  in
  QCheck.Gen.frequency
    [
      (3, QCheck.Gen.return Controller.Silence);
      (1, QCheck.Gen.return Controller.Noise);
      (4, frame_gen);
    ]

let controller_invariants c =
  Controller.slot c >= 0
  && Controller.slot c < 4
  && Controller.agreed c >= 0
  && Controller.agreed c <= 4
  && Controller.failed c >= 0
  && Controller.failed c <= 4
  && Membership.to_int (Controller.membership c) land lnot 0xF = 0

let prop_controller_total =
  QCheck.Test.make ~name:"controller total under arbitrary observations"
    ~count:300
    (QCheck.make
       ~print:(fun _ -> "<observation sequence>")
       QCheck.Gen.(
         pair (int_bound 3)
           (list_size (int_range 1 60) (pair obs_gen obs_gen))))
    (fun (id, observations) ->
      let config =
        { Controller.default_config with Controller.ack_enabled = true }
      in
      let c = make_ctrl ~config id in
      Controller.host_start c;
      List.for_all
        (fun (obs0, obs1) ->
          Controller.receive c ~obs0 ~obs1;
          ignore (Controller.transmit c);
          controller_invariants c)
        observations)

let prop_frozen_stays_frozen_without_host =
  QCheck.Test.make
    ~name:"a frozen controller only leaves freeze via the host" ~count:100
    (QCheck.make
       ~print:(fun _ -> "<observation sequence>")
       QCheck.Gen.(list_size (int_range 1 30) (pair obs_gen obs_gen)))
    (fun observations ->
      let c = make_ctrl 2 in
      (* Default config: no auto restart. *)
      Controller.host_freeze c;
      List.for_all
        (fun (obs0, obs1) ->
          Controller.receive c ~obs0 ~obs1;
          Controller.state c = Controller.Freeze
          && Controller.transmit c = None)
        observations)

(* ------------------------------------------------------------------ *)
(* Clock synchronization *)

let test_fta_basic () =
  Alcotest.(check int) "plain average" 10 (Clocksync.fta [ 30; 10; 10; -10; 10 ]);
  (* One Byzantine outlier on each side is discarded. *)
  Alcotest.(check int) "outliers dropped" 0
    (Clocksync.fta [ 1000; 0; 0; 0; -1000 ]);
  Alcotest.(check int) "too few measurements" 0 (Clocksync.fta [ 5; 7 ])

let prop_fta_bounded =
  QCheck.Test.make ~name:"fta lies within the surviving range" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 3 9) (int_range (-1000) 1000))
    (fun deviations ->
      let n = List.length deviations in
      let sorted = List.sort compare deviations in
      let lo = List.nth sorted 1 and hi = List.nth sorted (n - 2) in
      let v = Clocksync.fta deviations in
      lo <= v && v <= hi)

let prop_fta_outlier_insensitive =
  QCheck.Test.make ~name:"fta ignores one arbitrary outlier" ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 4 8) (int_range (-50) 50))
        (int_range (-100000) 100000))
    (fun (honest, outlier) ->
      (* Replacing the maximum by an arbitrarily larger value must not
         change the correction: both are discarded. *)
      let sorted = List.rev (List.sort compare honest) in
      match sorted with
      | biggest :: rest ->
          let with_outlier = (abs outlier + abs biggest + 1) :: rest in
          Clocksync.fta with_outlier = Clocksync.fta sorted
      | [] -> true)

let test_drift_bound () =
  Alcotest.(check (float 1e-12)) "100 ppm pair (eq 5)" 0.0002
    (Clocksync.drift_bound ~ppm_a:100 ~ppm_b:100)

let test_fta_precision () =
  let p = Clocksync.fta_precision ~n:4 ~k:1 ~reading_error:1.0 ~drift_offset:1.0 in
  Alcotest.(check (float 1e-9)) "4 clocks, 1 fault" 4.0 p;
  Alcotest.check_raises "n <= 2k rejected"
    (Invalid_argument "Clocksync.fta_precision: need n > 2k") (fun () ->
      ignore (Clocksync.fta_precision ~n:2 ~k:1 ~reading_error:1.0 ~drift_offset:0.0))

(* ------------------------------------------------------------------ *)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_crc_detects_bit_flip;
      prop_crc_roundtrip;
      prop_membership_ops;
      prop_frame_wire_length;
      prop_membership_divergence_rejected;
      prop_fta_bounded;
      prop_fta_outlier_insensitive;
      prop_controller_total;
      prop_frozen_stays_frozen_without_host;
    ]

let () =
  Alcotest.run "ttp"
    [
      ( "crc",
        [
          Alcotest.test_case "stability vector" `Quick test_crc_stability_vector;
          Alcotest.test_case "channel separation" `Quick test_crc_channel_separation;
          Alcotest.test_case "field equivalence" `Quick test_crc_field_equivalence;
        ] );
      ( "membership",
        [ Alcotest.test_case "basics" `Quick test_membership_basic ] );
      ( "cstate",
        [
          Alcotest.test_case "advance" `Quick test_cstate_advance;
          Alcotest.test_case "equality" `Quick test_cstate_equality;
        ] );
      ( "frame",
        [
          Alcotest.test_case "specification sizes" `Quick test_frame_sizes;
          Alcotest.test_case "payload limits" `Quick test_frame_payload_limits;
          Alcotest.test_case "correctness semantics" `Quick
            test_frame_correctness_semantics;
        ] );
      ( "medl",
        [
          Alcotest.test_case "uniform" `Quick test_medl_uniform;
          Alcotest.test_case "validation" `Quick test_medl_validation;
          Alcotest.test_case "heterogeneous" `Quick test_medl_heterogeneous;
        ] );
      ( "controller",
        [
          Alcotest.test_case "startup path" `Quick test_controller_startup_path;
          Alcotest.test_case "timeout staggering" `Quick
            test_controller_timeout_staggering;
          Alcotest.test_case "big bang rule" `Quick test_controller_big_bang;
          Alcotest.test_case "immediate integration on C-state" `Quick
            test_controller_immediate_integration_on_cstate;
          Alcotest.test_case "invalid frames not integrated" `Quick
            test_controller_invalid_frame_not_integrated;
          Alcotest.test_case "clique freeze on poisoned C-state" `Quick
            test_controller_clique_freeze_on_poisoned_cstate;
          Alcotest.test_case "passive promotion" `Quick
            test_controller_passive_promotion;
          Alcotest.test_case "auto restart" `Quick test_controller_auto_restart;
          Alcotest.test_case "masked correctness" `Quick test_masked_correctness;
          Alcotest.test_case "ack self-demotion" `Quick test_ack_self_demotion;
          Alcotest.test_case "ack single denial tolerated" `Quick
            test_ack_single_denial_tolerated;
          Alcotest.test_case "mode change validation" `Quick
            test_mode_change_request_validation;
        ] );
      ( "clocksync",
        [
          Alcotest.test_case "fta basics" `Quick test_fta_basic;
          Alcotest.test_case "drift bound" `Quick test_drift_bound;
          Alcotest.test_case "precision bound" `Quick test_fta_precision;
        ] );
      ("properties", qtests);
    ]
