(* The experiment registry itself: the quick (numeric + simulator) set
   must reproduce on every run, and the model-checking entries must
   reproduce at the 2-node scale used throughout the test suite (E5
   self-clamps to 3 nodes, where its failure first exists). *)

let check_all outcomes =
  List.iter
    (fun (o : Core.Experiments.outcome) ->
      Alcotest.(check bool)
        (o.Core.Experiments.id ^ ": " ^ o.Core.Experiments.measured)
        true o.Core.Experiments.matches)
    outcomes

let test_quick_set () =
  let outcomes = Core.Experiments.quick () in
  Alcotest.(check int) "four quick experiments" 4 (List.length outcomes);
  check_all outcomes

let test_model_checking_entries () =
  check_all
    [
      Core.Experiments.e1 ~nodes:2 ();
      Core.Experiments.e4 ~nodes:2 ();
      Core.Experiments.e5 ~nodes:2 () (* clamps itself to 3 *);
    ]

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "quick set reproduces" `Quick test_quick_set;
          Alcotest.test_case "model-checking entries" `Quick
            test_model_checking_entries;
        ] );
    ]
