(** Hash-consed reduced ordered binary decision diagrams (ROBDDs).

    This is the symbolic backbone of the model checker: every boolean
    function over the model's state bits is represented canonically, so
    equality is physical equality and fixpoint detection is O(1).

    Variables are identified by nonnegative integers. Their order is a
    mutable per-manager permutation of {e levels}: [level_of_var m v]
    is the position of variable [v], level 0 closest to the root. A
    fresh manager places variables in natural integer order and every
    new variable enters at the bottom, so code that never calls
    {!reorder} sees exactly the classic fixed-order behaviour.
    {!reorder} (or its growth-triggered form, {!set_reorder_watermark})
    searches for a smaller order at runtime via Rudell sifting.

    All operations on two diagrams require that they were created by
    the same manager, except {!transfer}, which copies across. *)

type manager
(** Mutable state shared by a family of diagrams: the unique-node table,
    the operation caches, and the level permutation. *)

type t
(** A BDD node. Diagrams are immutable through this interface and
    maximally shared. ({!reorder} rewrites nodes in place, but
    preserves each rooted diagram's identity and denotation.) *)

val create_manager : ?cache_size:int -> ?gc_watermark:int -> unit -> manager
(** [create_manager ()] returns a fresh manager with empty caches.
    [cache_size] is the initial size hint of the internal hash tables;
    [gc_watermark] (default [0] = never collect) arms {!maybe_gc}. *)

val clear_caches : manager -> unit
(** Drop the operation caches (the unique table is kept, so existing
    diagrams stay valid). Useful between unrelated fixpoint runs. *)

(** {1 Root registry and node reclamation}

    Hash-consing alone never forgets a node: a long fixpoint run grows
    the unique table with every intermediate result. The root registry
    names the diagrams a client still holds; {!gc} then sweeps every
    unregistered node out of the unique table and operation caches so
    the OCaml GC can reclaim them.

    {b Client obligation:} when {!gc}/{!maybe_gc} runs, every diagram
    that will be used afterwards must be reachable from a registered
    root — an unrooted diagram that survives in an OCaml variable
    across a sweep is semantically intact but loses canonicity (a
    later rebuild of an equal function may be a physically distinct
    node). Collection only ever happens inside {!gc}/{!maybe_gc} —
    and, since reordering sweeps first, inside {!reorder}/
    {!maybe_reorder} — so code that never calls them is unaffected. *)

val ref : manager -> t -> unit
(** Register a diagram as a GC root (refcounted; constants are
    implicit roots). *)

val deref : manager -> t -> unit
(** Drop one reference. @raise Invalid_argument if the diagram is not
    currently registered. *)

val with_root : manager -> t -> (unit -> 'a) -> 'a
(** [with_root m d f] runs [f] with [d] registered, dropping the
    reference on return or exception. *)

val gc : manager -> unit
(** Mark from the registered roots and sweep: unmarked nodes leave the
    unique table, and the operation caches are reset (they may hold
    swept uids). Existing rooted diagrams remain valid and canonical. *)

val maybe_gc : manager -> unit
(** Run {!gc} iff the manager has a positive watermark and at least
    that many nodes were allocated since the last sweep. The safepoint
    hook for fixpoint loops: cheap to call every iteration. *)

val set_gc_watermark : manager -> int -> unit
(** Set the allocation watermark ([0] disables collection).
    @raise Invalid_argument on a negative value. *)

val live_nodes : manager -> int
(** Current unique-table population. *)

val peak_nodes : manager -> int
(** Largest unique-table population ever observed (across sweeps). *)

val gc_count : manager -> int
(** Number of mark-and-sweep collections performed. *)

(** {1 Dynamic variable reordering}

    Rudell-style sifting: each variable (or declared {!set_var_groups}
    group) is moved through every level by adjacent-level swaps and
    parked where the whole unique table was smallest. Swaps rewrite
    affected nodes {e in place}: a rooted diagram keeps its physical
    identity, its {!id}, and its denotation across a reorder — only
    its internal shape changes.

    A reorder begins with a {!gc}, so the client obligation above
    applies in its strongest form: an {e unrooted} diagram held across
    {!reorder} is invalid afterwards (not merely non-canonical — its
    nodes may have been swept mid-sift). Root what you keep. *)

val reorder : manager -> unit
(** Sift all variables now (a no-op on an empty or single-variable
    manager). Sweeps unrooted nodes and all operation caches first. *)

val maybe_reorder : manager -> unit
(** Run {!reorder} iff a positive {!set_reorder_watermark} is armed and
    the live-node count has reached the current trigger. After firing,
    the trigger backs off to twice the settled size (but never below
    the configured watermark), so an incompressible table does not
    thrash. The safepoint hook for fixpoint loops. *)

val set_reorder_watermark : manager -> int -> unit
(** Arm {!maybe_reorder} at the given live-node count ([0] disarms).
    @raise Invalid_argument on a negative value. *)

val set_var_groups : manager -> int list list -> unit
(** Declare groups of variables that must stay at consecutive levels,
    in the listed order, across reorders — sifting moves each group as
    one block. Groups must be disjoint, have at least two members, and
    already sit at consecutive levels when declared. The encoder uses
    this to keep each current/next state-bit pair adjacent so renaming
    between the two vocabularies stays order-preserving.
    Replaces any previously declared groups. *)

val level_of_var : manager -> int -> int
(** Current level (root = 0) of a variable this manager has seen.
    @raise Invalid_argument for a variable never mentioned to this
    manager. *)

val order : manager -> int array
(** The current order as the array of variables from root to bottom
    (a fresh copy; index = level). *)

val reorder_count : manager -> int
(** Number of completed {!reorder} runs. *)

val reorder_gain : manager -> int
(** Total unique-table shrinkage achieved by reorders (sum over runs of
    nodes-before minus nodes-after, floored at zero per run). *)

(** {1 Constants and variables} *)

val zero : t
val one : t
val is_zero : t -> bool
val is_one : t -> bool

val var : manager -> int -> t
(** [var m i] is the diagram of the projection function on variable [i]. *)

val nvar : manager -> int -> t
(** [nvar m i] is the negation of variable [i]. *)

(** {1 Boolean connectives} *)

val dnot : manager -> t -> t
val dand : manager -> t -> t -> t
val dor : manager -> t -> t -> t
val xor : manager -> t -> t -> t
val iff : manager -> t -> t -> t
val imp : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t

val conj : manager -> t list -> t
(** Conjunction of a list ([one] for the empty list). *)

val disj : manager -> t list -> t
(** Disjunction of a list ([zero] for the empty list). *)

(** {1 Structure} *)

val equal : t -> t -> bool
(** Canonical, hence physical, equality. *)

val id : t -> int
(** Unique id of the node (stable within a manager's lifetime, and
    across reorders). *)

val top_var : t -> int
(** Root variable. @raise Invalid_argument on a constant. *)

val low : t -> t
val high : t -> t

val size : t -> int
(** Number of distinct internal nodes reachable from the root. *)

val support : t -> int list
(** Sorted list of variables the function actually depends on
    (independent of the current order). *)

(** {1 Quantification and substitution} *)

type varset
(** A set of variables prepared for quantification, with its own identity
    so repeated quantifications over the same set hit the cache. *)

val varset : manager -> int list -> varset

val exists : manager -> varset -> t -> t
(** Existential quantification over a variable set. *)

val forall : manager -> varset -> t -> t

val and_exists : manager -> varset -> t -> t -> t
(** [and_exists m vs a b] computes [exists m vs (dand m a b)] without
    building the full conjunction first (the relational product at the
    heart of image computation). *)

val rename : manager -> (int -> int) -> t -> t
(** [rename m f d] substitutes variable [i] by variable [f i].
    [f] must be strictly {e level}-monotonic on the support of [d]: it
    must preserve the current order, i.e.
    [level_of_var m i < level_of_var m j] on the support implies
    [level_of_var m (f i) < level_of_var m (f j)]. Under the default
    natural order this is ordinary monotonicity on indices. Checked
    lazily; violations raise [Invalid_argument]. *)

val cofactor : manager -> int -> bool -> t -> t
(** [cofactor m i b d] is the cofactor of [d] with variable [i] set to
    [b]. *)

val restrict : manager -> t -> t -> t
(** [restrict m f c] is the Coudert–Madre generalized cofactor: a
    (usually smaller) diagram agreeing with [f] wherever the care set
    [c] holds and unconstrained elsewhere, so
    [dand m (restrict m f c) c] equals [dand m f c]. Used to minimize
    the reachability frontier against the reached set before an image
    step. [restrict m f zero] is [f]. Note: the result is not
    guaranteed smaller on adversarial inputs — size-guard at the call
    site when it matters. *)

val transfer : manager -> manager -> t -> t
(** [transfer src dst d] copies a diagram from manager [src] into
    manager [dst], returning the canonical node in [dst] for the same
    boolean function over the same variable indices — correct even when
    the two managers currently order the variables differently. Used by
    parallel image computation to move slices between a worker's
    manager and the main one. [transfer m m d] is [d]. *)

(** {1 Satisfying assignments} *)

val any_sat : t -> (int * bool) list
(** One satisfying assignment as (variable, value) pairs, mentioning only
    the variables on the chosen path. @raise Not_found on [zero]. *)

val sat_count : manager -> nvars:int -> t -> float
(** Number of satisfying assignments over a space of [nvars] variables
    (as a float, since counts overflow 63 bits quickly). The count is
    order-independent. *)

val iter_sat : manager -> nvars:int -> t -> (bool array -> unit) -> unit
(** Enumerate all satisfying assignments over variables [0..nvars-1],
    calling the function with a full assignment array each time. Only
    usable for small spaces; intended for tests. *)

(** {1 Diagnostics} *)

val counters : manager -> (string * int) list
(** Effort counters as an open counter set, sorted by name: node
    allocations ([bdd.nodes_allocated]), operation-cache hits and
    misses across all caches ([bdd.cache_hits]/[bdd.cache_misses]),
    cache sweeps ([bdd.cache_sweeps], one per {!clear_caches}),
    mark-and-sweep collections ([bdd.gc_count]), completed reorders
    ([bdd.reorder_count]) and their cumulative node savings
    ([bdd.reorder_gain]). Monotone counters only — the
    {!live_nodes}/{!peak_nodes} populations are gauges and are
    surfaced separately by the engine instrumentation. Consumed by
    the {!Obs}-based engine instrumentation; the names are pinned by a
    golden test. *)

val stats : manager -> string
(** Human-readable cache/unique-table statistics. *)
