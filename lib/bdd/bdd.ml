type t =
  | Zero
  | One
  | Node of node

(* Node fields are mutable for one reason only: dynamic variable
   reordering rewrites a node in place (same uid, same function, new
   root variable) so that every parent — including the diagrams clients
   hold — survives a swap untouched. Outside [reorder] the fields are
   never written. *)
and node = { uid : int; mutable v : int; mutable lo : t; mutable hi : t }

let id = function Zero -> 0 | One -> 1 | Node n -> n.uid

let equal a b = a == b

let is_zero d = d == Zero
let is_one d = d == One

let zero = Zero
let one = One

let top_var = function
  | Node n -> n.v
  | Zero | One -> invalid_arg "Bdd.top_var: constant"

let low = function
  | Node n -> n.lo
  | Zero | One -> invalid_arg "Bdd.low: constant"

let high = function
  | Node n -> n.hi
  | Zero | One -> invalid_arg "Bdd.high: constant"

(* A variable index strictly larger than any real variable, used as the
   root index of constants so order comparisons need no special cases.
   Constants also sit at level [max_int]. *)
let leaf_var = max_int

let var_of = function Zero | One -> leaf_var | Node n -> n.v

module Key3 = struct
  type t = int * int * int

  let equal (a1, b1, c1) (a2, b2, c2) = a1 = a2 && b1 = b2 && c1 = c2
  let hash (a, b, c) = (a * 0x9e3779b1) lxor (b * 0x85ebca77) lxor (c * 0xc2b2ae3d)
end

module H3 = Hashtbl.Make (Key3)

module Key2 = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = (a * 0x9e3779b1) lxor (b * 0x85ebca77)
end

module H2 = Hashtbl.Make (Key2)

type varset = {
  vs_id : int;
  bits : Bytes.t;
  max_var : int;
  (* The deepest level of any member, under the order current at
     [lvl_epoch]; recomputed lazily after a reorder. Drives the
     "no quantified variable can appear below this node" early-outs. *)
  mutable max_level : int;
  mutable lvl_epoch : int;
}

type manager = {
  (* Per-variable unique subtables, keyed (lo_uid, hi_uid). Splitting
     the table by variable is what makes an adjacent-level swap touch
     only the two levels involved. *)
  subtables : (int, t H2.t) Hashtbl.t;
  mutable live : int; (* total unique-table population *)
  mutable next_uid : int;
  (* The mutable order: var2level.(v) is the position of variable [v]
     in the current order (level 0 = root); level2var is its inverse.
     Fresh variables append below everything already allocated, so a
     manager that never reorders keeps the natural integer order. *)
  mutable var2level : int array;
  mutable level2var : int array;
  mutable nvars : int; (* variables with an assigned level *)
  mutable order_epoch : int; (* bumped by every adjacent-level swap *)
  mutable groups : int array list;
      (* each group's variables stay at consecutive levels, in the
         listed order, across reorders (sifting moves whole groups) *)
  apply_cache : t H3.t; (* (op, id1, id2) -> result *)
  not_cache : (int, t) Hashtbl.t;
  ite_cache : t H3.t;
  quant_cache : t H3.t; (* (op, vs_id*nodes, id) *)
  mutable next_vs_id : int;
  roots : (int, t * int) Hashtbl.t; (* uid -> (diagram, refcount) *)
  mutable gc_watermark : int; (* allocations between sweeps; 0 = GC off *)
  mutable alloc_since_gc : int;
  (* Reordering state. [rc] is a transient parent-reference count kept
     only while a sift is running, so dead nodes can be dropped the
     moment a swap orphans them and the size metric steering the sift
     stays exact. *)
  mutable reorder_watermark : int; (* initial live-node trigger; 0 = off *)
  mutable reorder_next : int; (* current trigger (doubles after firing) *)
  mutable in_reorder : bool;
  mutable rc : (int, int) Hashtbl.t option;
  mutable n_reorder : int;
  mutable reorder_gain : int; (* cumulative nodes removed by reorders *)
  (* Effort counters (plain ints: an increment per cache probe is
     noise next to the probe itself). Surfaced by [counters] into the
     engines' observability tracks. *)
  mutable n_alloc : int; (* nodes created (unique-table inserts) *)
  mutable n_hit : int; (* operation-cache hits, all caches *)
  mutable n_miss : int; (* operation-cache misses, all caches *)
  mutable n_sweep : int; (* clear_caches calls *)
  mutable n_gc : int; (* mark-and-sweep collections *)
  mutable peak : int; (* largest unique-table population seen *)
}

let create_manager ?(cache_size = 65_536) ?(gc_watermark = 0) () =
  {
    subtables = Hashtbl.create 64;
    live = 0;
    next_uid = 2;
    var2level = [||];
    level2var = [||];
    nvars = 0;
    order_epoch = 0;
    groups = [];
    apply_cache = H3.create cache_size;
    not_cache = Hashtbl.create cache_size;
    ite_cache = H3.create cache_size;
    quant_cache = H3.create cache_size;
    next_vs_id = 0;
    roots = Hashtbl.create 64;
    gc_watermark;
    alloc_since_gc = 0;
    reorder_watermark = 0;
    reorder_next = 0;
    in_reorder = false;
    rc = None;
    n_reorder = 0;
    reorder_gain = 0;
    n_alloc = 0;
    n_hit = 0;
    n_miss = 0;
    n_sweep = 0;
    n_gc = 0;
    peak = 0;
  }

(* ------------------------------------------------------------------ *)
(* The level <-> variable permutation *)

(* Give levels to every variable up to [v]. New variables always go
   below everything already placed — in index order — so the identity
   order of a fresh manager extends to the identity, and variables
   created after a reorder slot in at the bottom without disturbing the
   sifted prefix. Both invariants reduce to: variable [i] of the new
   range gets level [i]. *)
let ensure_level m v =
  if v < 0 || v >= leaf_var then invalid_arg "Bdd: bad variable index";
  if v >= m.nvars then begin
    let n = Array.length m.var2level in
    if v >= n then begin
      let n' = max (v + 1) (max 16 (2 * n)) in
      let grow a = Array.init n' (fun i -> if i < n then a.(i) else i) in
      m.var2level <- grow m.var2level;
      m.level2var <- grow m.level2var
    end;
    for i = m.nvars to v do
      m.var2level.(i) <- i;
      m.level2var.(i) <- i
    done;
    m.nvars <- v + 1
  end

let level_of_var m v =
  if v < 0 || v >= m.nvars then invalid_arg "Bdd.level_of_var: unknown variable";
  m.var2level.(v)

let order m = Array.sub m.level2var 0 m.nvars

(* Level of a diagram's root; constants live below everything. *)
let lvl m = function Zero | One -> max_int | Node n -> m.var2level.(n.v)

let subtable m v =
  match Hashtbl.find_opt m.subtables v with
  | Some tbl -> tbl
  | None ->
      let tbl = H2.create 64 in
      Hashtbl.add m.subtables v tbl;
      tbl

let clear_caches m =
  m.n_sweep <- m.n_sweep + 1;
  H3.reset m.apply_cache;
  Hashtbl.reset m.not_cache;
  H3.reset m.ite_cache;
  H3.reset m.quant_cache

(* Transient refcount bookkeeping, active only inside [reorder]. *)
let rc_bump rc d =
  match d with
  | Zero | One -> ()
  | Node n ->
      Hashtbl.replace rc n.uid
        (1 + Option.value ~default:0 (Hashtbl.find_opt rc n.uid))

let rec rc_drop m rc d =
  match d with
  | Zero | One -> ()
  | Node n -> (
      match Hashtbl.find_opt rc n.uid with
      | Some k when k > 1 -> Hashtbl.replace rc n.uid (k - 1)
      | _ ->
          (* Last parent gone: drop the node from the unique table so
             the sift's size metric stays exact, and release its
             children in turn. *)
          Hashtbl.remove rc n.uid;
          H2.remove (subtable m n.v) (id n.lo, id n.hi);
          m.live <- m.live - 1;
          rc_drop m rc n.lo;
          rc_drop m rc n.hi)

(* Hash-consing constructor with the two ROBDD reduction rules. *)
let mk m v lo hi =
  if lo == hi then lo
  else
    let tbl = subtable m v in
    let key = (id lo, id hi) in
    match H2.find_opt tbl key with
    | Some d -> d
    | None ->
        let d = Node { uid = m.next_uid; v; lo; hi } in
        m.next_uid <- m.next_uid + 1;
        m.n_alloc <- m.n_alloc + 1;
        m.alloc_since_gc <- m.alloc_since_gc + 1;
        H2.add tbl key d;
        m.live <- m.live + 1;
        if m.live > m.peak then m.peak <- m.live;
        (match m.rc with None -> () | Some rc -> rc_bump rc lo; rc_bump rc hi);
        d

(* ------------------------------------------------------------------ *)
(* Root registry and mark-and-sweep node reclamation.

   Hash-consing never forgets a node, so a long fixpoint run grows the
   unique table with every intermediate result it will never look at
   again. The registry lets a client name the diagrams it still holds;
   [gc] then drops every unregistered node from the unique table and
   resets the operation caches (whose entries may reference swept
   uids), making the dead nodes collectible by the OCaml GC.

   Canonicity survives a sweep because reachability is closed under
   subdiagrams: every kept node's children are kept, and any later
   [mk] rebuilds bottom-up, finding the kept copies in the unique
   table before it can allocate a duplicate. The one obligation is the
   client's: at the moment [gc]/[maybe_gc] runs, every diagram it
   intends to keep using must be reachable from a registered root. *)

let root_incr m d =
  match d with
  | Zero | One -> () (* constants are never in the unique table *)
  | Node n -> (
      match Hashtbl.find_opt m.roots n.uid with
      | Some (_, k) -> Hashtbl.replace m.roots n.uid (d, k + 1)
      | None -> Hashtbl.replace m.roots n.uid (d, 1))

let root_decr m d =
  match d with
  | Zero | One -> ()
  | Node n -> (
      match Hashtbl.find_opt m.roots n.uid with
      | Some (_, 1) -> Hashtbl.remove m.roots n.uid
      | Some (_, k) -> Hashtbl.replace m.roots n.uid (d, k - 1)
      | None -> invalid_arg "Bdd.deref: not a registered root")

let gc m =
  m.n_gc <- m.n_gc + 1;
  m.alloc_since_gc <- 0;
  let marked = Hashtbl.create ((m.live / 2) + 16) in
  (* Recursion depth is bounded by the variable count, not the node
     count: the diagrams are ordered. *)
  let rec mark = function
    | Zero | One -> ()
    | Node n ->
        if not (Hashtbl.mem marked n.uid) then begin
          Hashtbl.add marked n.uid ();
          mark n.lo;
          mark n.hi
        end
  in
  Hashtbl.iter (fun _ (d, _) -> mark d) m.roots;
  let live = ref 0 in
  Hashtbl.iter
    (fun _ tbl ->
      H2.filter_map_inplace
        (fun _ d ->
          match d with
          | Node n ->
              if Hashtbl.mem marked n.uid then begin
                incr live;
                Some d
              end
              else None
          | Zero | One -> Some d)
        tbl)
    m.subtables;
  m.live <- !live;
  (* The operation caches key and hold possibly-swept uids: a stale
     hit would resurrect a dead node as a physically distinct twin of
     a future rebuild, so they go wholesale. *)
  clear_caches m

let maybe_gc m =
  if m.gc_watermark > 0 && m.alloc_since_gc >= m.gc_watermark then gc m

let set_gc_watermark m n =
  if n < 0 then invalid_arg "Bdd.set_gc_watermark: negative watermark";
  m.gc_watermark <- n

let live_nodes m = m.live
let peak_nodes m = m.peak
let gc_count m = m.n_gc

let var m i =
  ensure_level m i;
  mk m i Zero One

let nvar m i =
  ensure_level m i;
  mk m i One Zero

let rec dnot m d =
  match d with
  | Zero -> One
  | One -> Zero
  | Node n -> (
      match Hashtbl.find_opt m.not_cache n.uid with
      | Some r ->
          m.n_hit <- m.n_hit + 1;
          r
      | None ->
          m.n_miss <- m.n_miss + 1;
          let r = mk m n.v (dnot m n.lo) (dnot m n.hi) in
          Hashtbl.add m.not_cache n.uid r;
          r)

(* Binary boolean operations share one memoized apply; the op code keys
   the cache. Terminal cases are dispatched per operation. *)
let op_and = 0
let op_or = 1
let op_xor = 2

let rec apply m op a b =
  let terminal =
    match op with
    | 0 -> (
        (* and *)
        match (a, b) with
        | Zero, _ | _, Zero -> Some Zero
        | One, x | x, One -> Some x
        | _ -> if a == b then Some a else None)
    | 1 -> (
        (* or *)
        match (a, b) with
        | One, _ | _, One -> Some One
        | Zero, x | x, Zero -> Some x
        | _ -> if a == b then Some a else None)
    | _ -> (
        (* xor *)
        match (a, b) with
        | Zero, x | x, Zero -> Some x
        | One, x -> Some (dnot m x)
        | x, One -> Some (dnot m x)
        | _ -> if a == b then Some Zero else None)
  in
  match terminal with
  | Some r -> r
  | None ->
      (* Commutative: normalize the cache key. *)
      let ia = id a and ib = id b in
      let key = if ia <= ib then (op, ia, ib) else (op, ib, ia) in
      (match H3.find_opt m.apply_cache key with
      | Some r ->
          m.n_hit <- m.n_hit + 1;
          r
      | None ->
          m.n_miss <- m.n_miss + 1;
          let la = lvl m a and lb = lvl m b in
          (* Equal levels mean equal root variables: the split is by
             the shallower level, not the smaller index. *)
          let v = if la <= lb then var_of a else var_of b in
          let a0, a1 = if la <= lb then (low a, high a) else (a, a) in
          let b0, b1 = if lb <= la then (low b, high b) else (b, b) in
          let r = mk m v (apply m op a0 b0) (apply m op a1 b1) in
          H3.add m.apply_cache key r;
          r)

let dand m a b = apply m op_and a b
let dor m a b = apply m op_or a b
let xor m a b = apply m op_xor a b
let iff m a b = dnot m (xor m a b)
let imp m a b = dor m (dnot m a) b

let rec ite m f g h =
  match f with
  | One -> g
  | Zero -> h
  | Node _ ->
      if g == h then g
      else if g == One && h == Zero then f
      else
        let key = (id f, id g, id h) in
        (match H3.find_opt m.ite_cache key with
        | Some r ->
            m.n_hit <- m.n_hit + 1;
            r
        | None ->
            m.n_miss <- m.n_miss + 1;
            let l = min (lvl m f) (min (lvl m g) (lvl m h)) in
            let v =
              if lvl m f = l then var_of f
              else if lvl m g = l then var_of g
              else var_of h
            in
            let cof d = if lvl m d = l then (low d, high d) else (d, d) in
            let f0, f1 = cof f and g0, g1 = cof g and h0, h1 = cof h in
            let r = mk m v (ite m f0 g0 h0) (ite m f1 g1 h1) in
            H3.add m.ite_cache key r;
            r)

let conj m l = List.fold_left (dand m) One l
let disj m l = List.fold_left (dor m) Zero l

let size d =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Zero | One -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.uid) then begin
          Hashtbl.add seen n.uid ();
          go n.lo;
          go n.hi
        end
  in
  go d;
  Hashtbl.length seen

let support d =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | Zero | One -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.uid) then begin
          Hashtbl.add seen n.uid ();
          Hashtbl.replace vars n.v ();
          go n.lo;
          go n.hi
        end
  in
  go d;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort compare

let varset m vars =
  let max_var = List.fold_left max (-1) vars in
  let bits = Bytes.make (max_var + 1) '\000' in
  List.iter
    (fun v ->
      if v < 0 then invalid_arg "Bdd.varset: negative variable";
      ensure_level m v;
      Bytes.set bits v '\001')
    vars;
  let vs =
    { vs_id = m.next_vs_id; bits; max_var; max_level = -1; lvl_epoch = -1 }
  in
  m.next_vs_id <- m.next_vs_id + 1;
  vs

let vs_mem vs v = v <= vs.max_var && Bytes.get vs.bits v = '\001'

(* Deepest level of any member under the current order, refreshed
   lazily after reorders (the epoch counts adjacent-level swaps). *)
let vs_max_level m vs =
  if vs.lvl_epoch <> m.order_epoch then begin
    let ml = ref (-1) in
    for v = 0 to vs.max_var do
      if Bytes.get vs.bits v = '\001' then ml := max !ml m.var2level.(v)
    done;
    vs.max_level <- !ml;
    vs.lvl_epoch <- m.order_epoch
  end;
  vs.max_level

(* Quantification ops share quant_cache; key is (op*big + vs_id, id, id2)
   where binary and_exists uses id2 and unary exists uses 0. *)
let q_exists = 0
let q_forall = 1
let q_and_exists = 2

let rec quant m op vs d =
  match d with
  | Zero | One -> d
  | Node n ->
      if m.var2level.(n.v) > vs_max_level m vs then d
      else
        let key = ((op * 0x10000) + vs.vs_id, n.uid, 0) in
        (match H3.find_opt m.quant_cache key with
        | Some r ->
            m.n_hit <- m.n_hit + 1;
            r
        | None ->
            m.n_miss <- m.n_miss + 1;
            let l = quant m op vs n.lo and h = quant m op vs n.hi in
            let r =
              if vs_mem vs n.v then
                if op = q_exists then dor m l h else dand m l h
              else mk m n.v l h
            in
            H3.add m.quant_cache key r;
            r)

let exists m vs d = quant m q_exists vs d
let forall m vs d = quant m q_forall vs d

let rec and_exists m vs a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, d | d, One -> quant m q_exists vs d
  | Node _, Node _ ->
      if a == b then quant m q_exists vs a
      else
        let ia = id a and ib = id b in
        let i1, i2 = if ia <= ib then (ia, ib) else (ib, ia) in
        let key = ((q_and_exists * 0x10000) + vs.vs_id, i1, i2) in
        (match H3.find_opt m.quant_cache key with
        | Some r ->
            m.n_hit <- m.n_hit + 1;
            r
        | None ->
            m.n_miss <- m.n_miss + 1;
            let la = lvl m a and lb = lvl m b in
            let l = min la lb in
            let v = if la <= lb then var_of a else var_of b in
            let a0, a1 = if la = l then (low a, high a) else (a, a) in
            let b0, b1 = if lb = l then (low b, high b) else (b, b) in
            let r =
              if l > vs_max_level m vs then
                (* No quantified variable can appear below: plain and. *)
                dand m a b
              else if vs_mem vs v then
                let l' = and_exists m vs a0 b0 in
                if l' == One then One else dor m l' (and_exists m vs a1 b1)
              else mk m v (and_exists m vs a0 b0) (and_exists m vs a1 b1)
            in
            H3.add m.quant_cache key r;
            r)

let rename m f d =
  let memo = Hashtbl.create 256 in
  let rec go = function
    | Zero -> Zero
    | One -> One
    | Node n -> (
        match Hashtbl.find_opt memo n.uid with
        | Some r -> r
        | None ->
            let l = go n.lo and h = go n.hi in
            let v' = f n.v in
            ensure_level m v';
            (* Monotonicity check, against levels: the renamed root
               must still sit above both renamed children (constants
               report level [max_int]). *)
            if m.var2level.(v') >= lvl m l || m.var2level.(v') >= lvl m h then
              invalid_arg "Bdd.rename: order-violating substitution";
            let r = mk m v' l h in
            Hashtbl.add memo n.uid r;
            r)
  in
  go d

let rec cofactor m i b d =
  ensure_level m i;
  match d with
  | Zero | One -> d
  | Node n ->
      if m.var2level.(n.v) > m.var2level.(i) then d
      else if n.v = i then if b then n.hi else n.lo
      else
        (* Memoization piggybacks on the unique table via mk; recursion
           cost is bounded by diagram size in practice for our use. *)
        mk m n.v (cofactor m i b n.lo) (cofactor m i b n.hi)

(* Coudert–Madre generalized cofactor ("restrict"): simplify [f] using
   [c] as a care set. The result agrees with [f] wherever [c] holds and
   is unconstrained elsewhere, which sibling substitution exploits to
   merge subgraphs: when one branch of [c] is empty, the whole decision
   collapses onto the other branch of [f]. Shares the apply cache
   discipline of the other binary operators (non-commutative key). *)
let op_restrict = 3

let rec restrict m f c =
  if c == One || f == Zero || f == One then f
  else if c == Zero then f (* empty care set: nothing to preserve *)
  else if f == c then One
  else
    let key = (op_restrict, id f, id c) in
    match H3.find_opt m.apply_cache key with
    | Some r ->
        m.n_hit <- m.n_hit + 1;
        r
    | None ->
        m.n_miss <- m.n_miss + 1;
        let lf = lvl m f and lc = lvl m c in
        let r =
          if lc < lf then
            (* The care set branches above [f]: no cofactor of [f] to
               pick, so forget the distinction ([exists vc c]). *)
            restrict m f (dor m (low c) (high c))
          else
            let v = var_of f in
            let c0, c1 = if lc = lf then (low c, high c) else (c, c) in
            if c0 == Zero then restrict m (high f) c1
            else if c1 == Zero then restrict m (low f) c0
            else mk m v (restrict m (low f) c0) (restrict m (high f) c1)
        in
        H3.add m.apply_cache key r;
        r

let any_sat d =
  let rec go acc = function
    | Zero -> raise Not_found
    | One -> List.rev acc
    | Node n ->
        if n.lo == Zero then go ((n.v, true) :: acc) n.hi
        else go ((n.v, false) :: acc) n.lo
  in
  go [] d

(* Rank of each of the [nvars] counted variables in the current order:
   the path-counting arithmetic of [sat_count]/[iter_sat] works over
   positions among the counted set, which coincide with raw indices
   only while the order is the natural one. *)
let ranks m ~nvars =
  let by_level =
    Array.init nvars (fun v ->
        (* Variables never touched by this manager sort below every
           allocated one, in index order — where [ensure_level] would
           place them. *)
        ((if v < m.nvars then m.var2level.(v) else (max_int / 2) + v), v))
  in
  Array.sort compare by_level;
  let rank = Array.make nvars 0 in
  Array.iteri (fun r (_, v) -> rank.(v) <- r) by_level;
  (rank, Array.map snd by_level)

let sat_count m ~nvars d =
  let rank, _ = ranks m ~nvars in
  let memo = Hashtbl.create 256 in
  (* count d = assignments over the counted variables ranked below the
     root extending to sat; gaps between a node and its children are
     counted in ranks, not raw indices. *)
  let rec count d =
    match d with
    | Zero -> 0.0
    | One -> 1.0
    | Node n -> (
        match Hashtbl.find_opt memo n.uid with
        | Some c -> c
        | None ->
            let sub child =
              let c = count child in
              let gap =
                match child with
                | Zero | One -> nvars - rank.(n.v) - 1
                | Node c' -> rank.(c'.v) - rank.(n.v) - 1
              in
              c *. (2.0 ** float_of_int gap)
            in
            let c = sub n.lo +. sub n.hi in
            Hashtbl.add memo n.uid c;
            c)
  in
  match d with
  | Zero -> 0.0
  | One -> 2.0 ** float_of_int nvars
  | Node n -> count d *. (2.0 ** float_of_int rank.(n.v))

let iter_sat m ~nvars d f =
  let _, var_at_rank = ranks m ~nvars in
  let assign = Array.make nvars false in
  let rec go r d =
    if r = nvars then (match d with One -> f assign | _ -> ())
    else
      match d with
      | Zero -> ()
      | One | Node _ ->
          let v = var_at_rank.(r) in
          let follow b =
            assign.(v) <- b;
            let d' =
              match d with
              | Node n when n.v = v -> if b then n.hi else n.lo
              | _ -> d
            in
            go (r + 1) d'
          in
          follow false;
          follow true
  in
  go 0 d

(* ------------------------------------------------------------------ *)
(* Dynamic variable reordering: Rudell sifting over a mutable order.

   The primitive is the adjacent-level swap: exchanging levels l and
   l+1 rewrites, in place, exactly the nodes at level l that test the
   level-(l+1) variable in a child. Everything above survives
   physically (parents keep pointing at the same OCaml value, which
   still denotes the same function), everything below is untouched.
   Sifting then moves one variable — or one declared group, kept
   contiguous — across the whole order, records the table size at each
   stop, and parks it at the best position seen.

   Like [gc], a reorder is a safepoint operation: it sweeps unrooted
   nodes first (their subtable entries would otherwise corrupt the
   size metric), so every diagram the client still needs must be
   reachable from a registered root. Rooted diagrams survive with
   their identity and semantics intact; an unrooted diagram held in an
   OCaml variable across a reorder is *invalid* afterwards — stronger
   than the gc contract, where it merely loses canonicity. *)

(* Swap the variables at levels l and l+1. Permutation flips first so
   [mk] sees the new order while rebuilding. *)
let swap_adjacent m l =
  let x = m.level2var.(l) and y = m.level2var.(l + 1) in
  let tx = subtable m x in
  let affected =
    H2.fold
      (fun _ d acc ->
        match d with
        | Node n when var_of n.lo = y || var_of n.hi = y -> d :: acc
        | _ -> acc)
      tx []
  in
  m.level2var.(l) <- y;
  m.level2var.(l + 1) <- x;
  m.var2level.(x) <- l + 1;
  m.var2level.(y) <- l;
  m.order_epoch <- m.order_epoch + 1;
  (* Unhook every affected node before rebuilding any: their new keys
     must never collide with a stale old key. *)
  List.iter
    (fun d ->
      match d with
      | Node n -> H2.remove tx (id n.lo, id n.hi)
      | Zero | One -> ())
    affected;
  let rc = match m.rc with Some rc -> rc | None -> assert false in
  let ty = subtable m y in
  List.iter
    (fun d ->
      match d with
      | Zero | One -> ()
      | Node n ->
          let f0 = n.lo and f1 = n.hi in
          let split f = if var_of f = y then (low f, high f) else (f, f) in
          let f00, f01 = split f0 and f10, f11 = split f1 in
          (* New children first (so the old ones' release below cannot
             cascade into a grandchild the rebuild still needs), then
             the in-place rewrite. *)
          let lo' = mk m x f00 f10 and hi' = mk m x f01 f11 in
          rc_bump rc lo';
          rc_bump rc hi';
          n.v <- y;
          n.lo <- lo';
          n.hi <- hi';
          H2.add ty (id lo', id hi') d;
          rc_drop m rc f0;
          rc_drop m rc f1)
    affected

(* The sifting blocks: declared groups move as one unit; every other
   variable is its own block. Returned in level order. *)
let sift_blocks m =
  let grouped = Hashtbl.create 16 in
  List.iter
    (fun g -> Array.iter (fun v -> Hashtbl.replace grouped v ()) g)
    m.groups;
  let blocks = ref [] in
  List.iter (fun g -> blocks := g :: !blocks) m.groups;
  for v = 0 to m.nvars - 1 do
    if not (Hashtbl.mem grouped v) then blocks := [| v |] :: !blocks
  done;
  let arr = Array.of_list !blocks in
  Array.sort (fun a b -> compare m.var2level.(a.(0)) m.var2level.(b.(0))) arr;
  arr

(* Swap the adjacent blocks at positions j and j+1 of [blocks]: bubble
   each member of the right block up over the left one (a*b adjacent
   swaps). *)
let swap_blocks m blocks j =
  let a = blocks.(j) and b = blocks.(j + 1) in
  let start = m.var2level.(a.(0)) in
  Array.iteri
    (fun i bv ->
      let target = start + i in
      let cur = m.var2level.(bv) in
      for l = cur - 1 downto target do
        swap_adjacent m l
      done)
    b;
  blocks.(j) <- b;
  blocks.(j + 1) <- a

let reorder m =
  if not m.in_reorder then begin
    m.in_reorder <- true;
    Fun.protect
      ~finally:(fun () ->
        m.rc <- None;
        m.in_reorder <- false)
      (fun () ->
        (* Sweep garbage first: sifting steers by table size, and the
           op caches must not serve results keyed under the old
           structure anyway. *)
        gc m;
        let size0 = m.live in
        if size0 > 0 && m.nvars > 1 then begin
          let rc = Hashtbl.create (2 * size0) in
          Hashtbl.iter
            (fun _ tbl ->
              H2.iter
                (fun _ d ->
                  match d with
                  | Node n ->
                      rc_bump rc n.lo;
                      rc_bump rc n.hi
                  | Zero | One -> ())
                tbl)
            m.subtables;
          Hashtbl.iter (fun _ (d, _) -> rc_bump rc d) m.roots;
          m.rc <- Some rc;
          let blocks = sift_blocks m in
          let nb = Array.length blocks in
          let block_size bl =
            Array.fold_left (fun s v -> s + H2.length (subtable m v)) 0 bl
          in
          (* Largest blocks first: they have the most to gain. *)
          let order_of_attack =
            Array.init nb (fun i -> i)
            |> Array.to_list
            |> List.map (fun i -> (blocks.(i), block_size blocks.(i)))
            |> List.sort (fun (_, s1) (_, s2) -> compare s2 s1)
            |> List.map fst
          in
          let pos_of bl =
            let rec find j = if blocks.(j) == bl then j else find (j + 1) in
            find 0
          in
          List.iter
            (fun bl ->
              let p0 = pos_of bl in
              let limit = (12 * m.live / 10) + 2 in
              let best = Stdlib.ref m.live and bestpos = Stdlib.ref p0 in
              let pos = Stdlib.ref p0 in
              let note () =
                if m.live < !best then begin
                  best := m.live;
                  bestpos := !pos
                end
              in
              let down () =
                while !pos < nb - 1 && m.live <= limit do
                  swap_blocks m blocks !pos;
                  incr pos;
                  note ()
                done
              in
              let up () =
                while !pos > 0 && m.live <= limit do
                  swap_blocks m blocks (!pos - 1);
                  decr pos;
                  note ()
                done
              in
              (* Nearer end first, then sweep across, then settle at
                 the best position seen. *)
              if p0 > nb - 1 - p0 then (down (); up ()) else (up (); down ());
              while !pos < !bestpos do
                swap_blocks m blocks !pos;
                incr pos
              done;
              while !pos > !bestpos do
                swap_blocks m blocks (!pos - 1);
                decr pos
              done)
            order_of_attack;
          m.n_reorder <- m.n_reorder + 1;
          m.reorder_gain <- m.reorder_gain + max 0 (size0 - m.live)
        end;
        (* Growth-triggered refires back off to twice the settled size,
           so a table that cannot shrink does not thrash. *)
        if m.reorder_next > 0 then
          m.reorder_next <- max m.reorder_watermark (2 * m.live))
  end

let maybe_reorder m =
  if m.reorder_next > 0 && (not m.in_reorder) && m.live >= m.reorder_next then
    reorder m

let set_reorder_watermark m n =
  if n < 0 then invalid_arg "Bdd.set_reorder_watermark: negative watermark";
  m.reorder_watermark <- n;
  m.reorder_next <- n

let reorder_count m = m.n_reorder
let reorder_gain m = m.reorder_gain

let set_var_groups m groups =
  let seen = Hashtbl.create 16 in
  let as_arrays =
    List.map
      (fun g ->
        (match g with
        | [] | [ _ ] -> invalid_arg "Bdd.set_var_groups: group of fewer than 2"
        | _ -> ());
        List.iter
          (fun v ->
            ensure_level m v;
            if Hashtbl.mem seen v then
              invalid_arg "Bdd.set_var_groups: variable in two groups";
            Hashtbl.add seen v ())
          g;
        (* The declared order must match consecutive current levels:
           groups are about keeping an existing adjacency, not creating
           one. *)
        let rec check = function
          | a :: (b :: _ as rest) ->
              if m.var2level.(b) <> m.var2level.(a) + 1 then
                invalid_arg "Bdd.set_var_groups: group not level-contiguous";
              check rest
          | _ -> ()
        in
        check g;
        Array.of_list g)
      groups
  in
  m.groups <- as_arrays

(* ------------------------------------------------------------------ *)
(* Cross-manager canonical copy. Rebuilding via [ite] makes the copy
   correct even when the managers disagree on the variable order: the
   destination's own order decides the result's structure. *)

let transfer src dst d =
  if src == dst then d
  else
    let memo = Hashtbl.create 256 in
    let rec go d =
      match d with
      | Zero -> Zero
      | One -> One
      | Node n -> (
          match Hashtbl.find_opt memo n.uid with
          | Some r -> r
          | None ->
              let l = go n.lo and h = go n.hi in
              let r = ite dst (var dst n.v) h l in
              Hashtbl.add memo n.uid r;
              r)
    in
    go d

let counters m =
  [
    ("bdd.cache_hits", m.n_hit);
    ("bdd.cache_misses", m.n_miss);
    ("bdd.cache_sweeps", m.n_sweep);
    ("bdd.gc_count", m.n_gc);
    ("bdd.nodes_allocated", m.n_alloc);
    ("bdd.reorder_count", m.n_reorder);
    ("bdd.reorder_gain", m.reorder_gain);
  ]

let stats m =
  Printf.sprintf
    "unique=%d peak=%d apply=%d not=%d ite=%d quant=%d next_uid=%d hits=%d \
     misses=%d allocs=%d sweeps=%d gcs=%d reorders=%d gain=%d roots=%d"
    m.live m.peak (H3.length m.apply_cache)
    (Hashtbl.length m.not_cache) (H3.length m.ite_cache)
    (H3.length m.quant_cache) m.next_uid m.n_hit m.n_miss m.n_alloc m.n_sweep
    m.n_gc m.n_reorder m.reorder_gain (Hashtbl.length m.roots)

(* Exported names for the root registry; defined last because [ref]
   shadows [Stdlib.ref]. *)
let ref = root_incr
let deref = root_decr

let with_root m d f =
  root_incr m d;
  Fun.protect ~finally:(fun () -> root_decr m d) f
