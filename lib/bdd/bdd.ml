type t =
  | Zero
  | One
  | Node of node

and node = { uid : int; v : int; lo : t; hi : t }

let id = function Zero -> 0 | One -> 1 | Node n -> n.uid

let equal a b = a == b

let is_zero d = d == Zero
let is_one d = d == One

let zero = Zero
let one = One

let top_var = function
  | Node n -> n.v
  | Zero | One -> invalid_arg "Bdd.top_var: constant"

let low = function
  | Node n -> n.lo
  | Zero | One -> invalid_arg "Bdd.low: constant"

let high = function
  | Node n -> n.hi
  | Zero | One -> invalid_arg "Bdd.high: constant"

(* A variable index strictly larger than any real variable, used as the
   root index of constants so that order comparisons need no special
   cases. *)
let leaf_var = max_int

let var_of = function Zero | One -> leaf_var | Node n -> n.v

module Key3 = struct
  type t = int * int * int

  let equal (a1, b1, c1) (a2, b2, c2) = a1 = a2 && b1 = b2 && c1 = c2
  let hash (a, b, c) = (a * 0x9e3779b1) lxor (b * 0x85ebca77) lxor (c * 0xc2b2ae3d)
end

module H3 = Hashtbl.Make (Key3)

module Key2 = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = (a * 0x9e3779b1) lxor (b * 0x85ebca77)
end

module H2 = Hashtbl.Make (Key2)

type varset = { vs_id : int; bits : Bytes.t; max_var : int }

type manager = {
  unique : t H3.t; (* (v, lo_uid, hi_uid) -> node *)
  mutable next_uid : int;
  apply_cache : t H3.t; (* (op, id1, id2) -> result *)
  not_cache : (int, t) Hashtbl.t;
  ite_cache : t H3.t; (* (id1, id2, id3) -> result; disambiguated from
                         apply by clearing both together and distinct use *)
  quant_cache : t H3.t; (* (op, vs_id*nodes, id) *)
  mutable next_vs_id : int;
  roots : (int, t * int) Hashtbl.t; (* uid -> (diagram, refcount) *)
  mutable gc_watermark : int; (* allocations between sweeps; 0 = GC off *)
  mutable alloc_since_gc : int;
  (* Effort counters (plain ints: an increment per cache probe is
     noise next to the probe itself). Surfaced by [counters] into the
     engines' observability tracks. *)
  mutable n_alloc : int; (* nodes created (unique-table inserts) *)
  mutable n_hit : int; (* operation-cache hits, all caches *)
  mutable n_miss : int; (* operation-cache misses, all caches *)
  mutable n_sweep : int; (* clear_caches calls *)
  mutable n_gc : int; (* mark-and-sweep collections *)
  mutable peak : int; (* largest unique-table population seen *)
}

let create_manager ?(cache_size = 65_536) ?(gc_watermark = 0) () =
  {
    unique = H3.create cache_size;
    next_uid = 2;
    apply_cache = H3.create cache_size;
    not_cache = Hashtbl.create cache_size;
    ite_cache = H3.create cache_size;
    quant_cache = H3.create cache_size;
    next_vs_id = 0;
    roots = Hashtbl.create 64;
    gc_watermark;
    alloc_since_gc = 0;
    n_alloc = 0;
    n_hit = 0;
    n_miss = 0;
    n_sweep = 0;
    n_gc = 0;
    peak = 0;
  }

let clear_caches m =
  m.n_sweep <- m.n_sweep + 1;
  H3.reset m.apply_cache;
  Hashtbl.reset m.not_cache;
  H3.reset m.ite_cache;
  H3.reset m.quant_cache

(* Hash-consing constructor with the two ROBDD reduction rules. *)
let mk m v lo hi =
  if lo == hi then lo
  else
    let key = (v, id lo, id hi) in
    match H3.find_opt m.unique key with
    | Some d -> d
    | None ->
        let d = Node { uid = m.next_uid; v; lo; hi } in
        m.next_uid <- m.next_uid + 1;
        m.n_alloc <- m.n_alloc + 1;
        m.alloc_since_gc <- m.alloc_since_gc + 1;
        H3.add m.unique key d;
        let pop = H3.length m.unique in
        if pop > m.peak then m.peak <- pop;
        d

(* ------------------------------------------------------------------ *)
(* Root registry and mark-and-sweep node reclamation.

   Hash-consing never forgets a node, so a long fixpoint run grows the
   unique table with every intermediate result it will never look at
   again. The registry lets a client name the diagrams it still holds;
   [gc] then drops every unregistered node from the unique table and
   resets the operation caches (whose entries may reference swept
   uids), making the dead nodes collectible by the OCaml GC.

   Canonicity survives a sweep because reachability is closed under
   subdiagrams: every kept node's children are kept, and any later
   [mk] rebuilds bottom-up, finding the kept copies in the unique
   table before it can allocate a duplicate. The one obligation is the
   client's: at the moment [gc]/[maybe_gc] runs, every diagram it
   intends to keep using must be reachable from a registered root. *)

let root_incr m d =
  match d with
  | Zero | One -> () (* constants are never in the unique table *)
  | Node n -> (
      match Hashtbl.find_opt m.roots n.uid with
      | Some (_, k) -> Hashtbl.replace m.roots n.uid (d, k + 1)
      | None -> Hashtbl.replace m.roots n.uid (d, 1))

let root_decr m d =
  match d with
  | Zero | One -> ()
  | Node n -> (
      match Hashtbl.find_opt m.roots n.uid with
      | Some (_, 1) -> Hashtbl.remove m.roots n.uid
      | Some (_, k) -> Hashtbl.replace m.roots n.uid (d, k - 1)
      | None -> invalid_arg "Bdd.deref: not a registered root")

let gc m =
  m.n_gc <- m.n_gc + 1;
  m.alloc_since_gc <- 0;
  let marked = Hashtbl.create ((H3.length m.unique / 2) + 16) in
  (* Recursion depth is bounded by the variable count, not the node
     count: the diagrams are ordered. *)
  let rec mark = function
    | Zero | One -> ()
    | Node n ->
        if not (Hashtbl.mem marked n.uid) then begin
          Hashtbl.add marked n.uid ();
          mark n.lo;
          mark n.hi
        end
  in
  Hashtbl.iter (fun _ (d, _) -> mark d) m.roots;
  H3.filter_map_inplace
    (fun _ d ->
      match d with
      | Node n -> if Hashtbl.mem marked n.uid then Some d else None
      | Zero | One -> Some d)
    m.unique;
  (* The operation caches key and hold possibly-swept uids: a stale
     hit would resurrect a dead node as a physically distinct twin of
     a future rebuild, so they go wholesale. *)
  clear_caches m

let maybe_gc m =
  if m.gc_watermark > 0 && m.alloc_since_gc >= m.gc_watermark then gc m

let set_gc_watermark m n =
  if n < 0 then invalid_arg "Bdd.set_gc_watermark: negative watermark";
  m.gc_watermark <- n

let live_nodes m = H3.length m.unique
let peak_nodes m = m.peak
let gc_count m = m.n_gc

let var m i =
  if i < 0 || i >= leaf_var then invalid_arg "Bdd.var: bad index";
  mk m i Zero One

let nvar m i =
  if i < 0 || i >= leaf_var then invalid_arg "Bdd.nvar: bad index";
  mk m i One Zero

let rec dnot m d =
  match d with
  | Zero -> One
  | One -> Zero
  | Node n -> (
      match Hashtbl.find_opt m.not_cache n.uid with
      | Some r ->
          m.n_hit <- m.n_hit + 1;
          r
      | None ->
          m.n_miss <- m.n_miss + 1;
          let r = mk m n.v (dnot m n.lo) (dnot m n.hi) in
          Hashtbl.add m.not_cache n.uid r;
          r)

(* Binary boolean operations share one memoized apply; the op code keys
   the cache. Terminal cases are dispatched per operation. *)
let op_and = 0
let op_or = 1
let op_xor = 2

let rec apply m op a b =
  let terminal =
    match op with
    | 0 -> (
        (* and *)
        match (a, b) with
        | Zero, _ | _, Zero -> Some Zero
        | One, x | x, One -> Some x
        | _ -> if a == b then Some a else None)
    | 1 -> (
        (* or *)
        match (a, b) with
        | One, _ | _, One -> Some One
        | Zero, x | x, Zero -> Some x
        | _ -> if a == b then Some a else None)
    | _ -> (
        (* xor *)
        match (a, b) with
        | Zero, x | x, Zero -> Some x
        | One, x -> Some (dnot m x)
        | x, One -> Some (dnot m x)
        | _ -> if a == b then Some Zero else None)
  in
  match terminal with
  | Some r -> r
  | None ->
      (* Commutative: normalize the cache key. *)
      let ia = id a and ib = id b in
      let key = if ia <= ib then (op, ia, ib) else (op, ib, ia) in
      (match H3.find_opt m.apply_cache key with
      | Some r ->
          m.n_hit <- m.n_hit + 1;
          r
      | None ->
          m.n_miss <- m.n_miss + 1;
          let va = var_of a and vb = var_of b in
          let v = min va vb in
          let a0, a1 = if va = v then (low a, high a) else (a, a) in
          let b0, b1 = if vb = v then (low b, high b) else (b, b) in
          let r = mk m v (apply m op a0 b0) (apply m op a1 b1) in
          H3.add m.apply_cache key r;
          r)

let dand m a b = apply m op_and a b
let dor m a b = apply m op_or a b
let xor m a b = apply m op_xor a b
let iff m a b = dnot m (xor m a b)
let imp m a b = dor m (dnot m a) b

let rec ite m f g h =
  match f with
  | One -> g
  | Zero -> h
  | Node _ ->
      if g == h then g
      else if g == One && h == Zero then f
      else
        let key = (id f, id g, id h) in
        (match H3.find_opt m.ite_cache key with
        | Some r ->
            m.n_hit <- m.n_hit + 1;
            r
        | None ->
            m.n_miss <- m.n_miss + 1;
            let v = min (var_of f) (min (var_of g) (var_of h)) in
            let cof d =
              if var_of d = v then (low d, high d) else (d, d)
            in
            let f0, f1 = cof f and g0, g1 = cof g and h0, h1 = cof h in
            let r = mk m v (ite m f0 g0 h0) (ite m f1 g1 h1) in
            H3.add m.ite_cache key r;
            r)

let conj m l = List.fold_left (dand m) One l
let disj m l = List.fold_left (dor m) Zero l

let size d =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Zero | One -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.uid) then begin
          Hashtbl.add seen n.uid ();
          go n.lo;
          go n.hi
        end
  in
  go d;
  Hashtbl.length seen

let support d =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | Zero | One -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.uid) then begin
          Hashtbl.add seen n.uid ();
          Hashtbl.replace vars n.v ();
          go n.lo;
          go n.hi
        end
  in
  go d;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort compare

let varset m vars =
  let max_var = List.fold_left max (-1) vars in
  let bits = Bytes.make (max_var + 1) '\000' in
  List.iter
    (fun v ->
      if v < 0 then invalid_arg "Bdd.varset: negative variable";
      Bytes.set bits v '\001')
    vars;
  let vs = { vs_id = m.next_vs_id; bits; max_var } in
  m.next_vs_id <- m.next_vs_id + 1;
  vs

let vs_mem vs v = v <= vs.max_var && Bytes.get vs.bits v = '\001'

(* Quantification ops share quant_cache; key is (op*big + vs_id, id, id2)
   where binary and_exists uses id2 and unary exists uses 0. *)
let q_exists = 0
let q_forall = 1
let q_and_exists = 2

let rec quant m op vs d =
  match d with
  | Zero | One -> d
  | Node n ->
      if n.v > vs.max_var then d
      else
        let key = ((op * 0x10000) + vs.vs_id, n.uid, 0) in
        (match H3.find_opt m.quant_cache key with
        | Some r ->
            m.n_hit <- m.n_hit + 1;
            r
        | None ->
            m.n_miss <- m.n_miss + 1;
            let l = quant m op vs n.lo and h = quant m op vs n.hi in
            let r =
              if vs_mem vs n.v then
                if op = q_exists then dor m l h else dand m l h
              else mk m n.v l h
            in
            H3.add m.quant_cache key r;
            r)

let exists m vs d = quant m q_exists vs d
let forall m vs d = quant m q_forall vs d

let rec and_exists m vs a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, d | d, One -> quant m q_exists vs d
  | Node _, Node _ ->
      if a == b then quant m q_exists vs a
      else
        let ia = id a and ib = id b in
        let i1, i2 = if ia <= ib then (ia, ib) else (ib, ia) in
        let key = ((q_and_exists * 0x10000) + vs.vs_id, i1, i2) in
        (match H3.find_opt m.quant_cache key with
        | Some r ->
            m.n_hit <- m.n_hit + 1;
            r
        | None ->
            m.n_miss <- m.n_miss + 1;
            let va = var_of a and vb = var_of b in
            let v = min va vb in
            let a0, a1 = if va = v then (low a, high a) else (a, a) in
            let b0, b1 = if vb = v then (low b, high b) else (b, b) in
            let r =
              if v > vs.max_var then
                (* No quantified variable can appear below: plain and. *)
                dand m a b
              else if vs_mem vs v then
                let l = and_exists m vs a0 b0 in
                if l == One then One else dor m l (and_exists m vs a1 b1)
              else mk m v (and_exists m vs a0 b0) (and_exists m vs a1 b1)
            in
            H3.add m.quant_cache key r;
            r)

let rename m f d =
  let memo = Hashtbl.create 256 in
  let rec go = function
    | Zero -> Zero
    | One -> One
    | Node n -> (
        match Hashtbl.find_opt memo n.uid with
        | Some r -> r
        | None ->
            let l = go n.lo and h = go n.hi in
            let v' = f n.v in
            (* Monotonicity check: the renamed root must still be above
               both renamed children (constants report [leaf_var]). *)
            if v' >= var_of l || v' >= var_of h then
              invalid_arg "Bdd.rename: order-violating substitution";
            let r = mk m v' l h in
            Hashtbl.add memo n.uid r;
            r)
  in
  go d

let rec cofactor m i b d =
  match d with
  | Zero | One -> d
  | Node n ->
      if n.v > i then d
      else if n.v = i then if b then n.hi else n.lo
      else
        (* Memoization piggybacks on the unique table via mk; recursion
           cost is bounded by diagram size in practice for our use. *)
        mk m n.v (cofactor m i b n.lo) (cofactor m i b n.hi)

(* Coudert–Madre generalized cofactor ("restrict"): simplify [f] using
   [c] as a care set. The result agrees with [f] wherever [c] holds and
   is unconstrained elsewhere, which sibling substitution exploits to
   merge subgraphs: when one branch of [c] is empty, the whole decision
   collapses onto the other branch of [f]. Shares the apply cache
   discipline of the other binary operators (non-commutative key). *)
let op_restrict = 3

let rec restrict m f c =
  if c == One || f == Zero || f == One then f
  else if c == Zero then f (* empty care set: nothing to preserve *)
  else if f == c then One
  else
    let key = (op_restrict, id f, id c) in
    match H3.find_opt m.apply_cache key with
    | Some r ->
        m.n_hit <- m.n_hit + 1;
        r
    | None ->
        m.n_miss <- m.n_miss + 1;
        let vf = var_of f and vc = var_of c in
        let r =
          if vc < vf then
            (* The care set branches above [f]: no cofactor of [f] to
               pick, so forget the distinction ([exists vc c]). *)
            restrict m f (dor m (low c) (high c))
          else
            let v = vf in
            let c0, c1 = if vc = v then (low c, high c) else (c, c) in
            if c0 == Zero then restrict m (high f) c1
            else if c1 == Zero then restrict m (low f) c0
            else mk m v (restrict m (low f) c0) (restrict m (high f) c1)
        in
        H3.add m.apply_cache key r;
        r

let any_sat d =
  let rec go acc = function
    | Zero -> raise Not_found
    | One -> List.rev acc
    | Node n ->
        if n.lo == Zero then go ((n.v, true) :: acc) n.hi
        else go ((n.v, false) :: acc) n.lo
  in
  go [] d

let sat_count m ~nvars d =
  ignore m;
  let memo = Hashtbl.create 256 in
  (* count d = assignments over variables >= v_above extending to sat;
     normalize by tracking the root variable of each subdiagram. *)
  let rec count d =
    match d with
    | Zero -> 0.0
    | One -> 1.0
    | Node n -> (
        match Hashtbl.find_opt memo n.uid with
        | Some c -> c
        | None ->
            let sub child =
              let c = count child in
              let gap =
                match child with
                | Zero | One -> nvars - n.v - 1
                | Node c' -> c'.v - n.v - 1
              in
              c *. (2.0 ** float_of_int gap)
            in
            let c = sub n.lo +. sub n.hi in
            Hashtbl.add memo n.uid c;
            c)
  in
  match d with
  | Zero -> 0.0
  | One -> 2.0 ** float_of_int nvars
  | Node n -> count d *. (2.0 ** float_of_int n.v)

let iter_sat ~nvars d f =
  let assign = Array.make nvars false in
  let rec go v d =
    if v = nvars then (match d with One -> f assign | _ -> ())
    else
      match d with
      | Zero -> ()
      | One | Node _ ->
          let follow b =
            assign.(v) <- b;
            let d' =
              match d with
              | Node n when n.v = v -> if b then n.hi else n.lo
              | _ -> d
            in
            go (v + 1) d'
          in
          follow false;
          follow true
  in
  go 0 d

let counters m =
  [
    ("bdd.cache_hits", m.n_hit);
    ("bdd.cache_misses", m.n_miss);
    ("bdd.cache_sweeps", m.n_sweep);
    ("bdd.gc_count", m.n_gc);
    ("bdd.nodes_allocated", m.n_alloc);
  ]

let stats m =
  Printf.sprintf
    "unique=%d peak=%d apply=%d not=%d ite=%d quant=%d next_uid=%d hits=%d \
     misses=%d allocs=%d sweeps=%d gcs=%d roots=%d"
    (H3.length m.unique) m.peak (H3.length m.apply_cache)
    (Hashtbl.length m.not_cache) (H3.length m.ite_cache)
    (H3.length m.quant_cache) m.next_uid m.n_hit m.n_miss m.n_alloc m.n_sweep
    m.n_gc (Hashtbl.length m.roots)

(* Exported names for the root registry; defined last because [ref]
   shadows [Stdlib.ref]. *)
let ref = root_incr
let deref = root_decr

let with_root m d f =
  root_incr m d;
  Fun.protect ~finally:(fun () -> root_decr m d) f
