(* Deterministic seed-driven fault injection. See faults.mli for the
   fault model and spec grammar. *)

type point =
  | Engine_start
  | Engine_step
  | Cache_read
  | Cache_write
  | Sock_send
  | Sock_recv
  | Link_send
  | Link_recv

(* Link_* are appended so the salts (and hence the decision streams)
   of every pre-existing point are unchanged by their addition. *)
let point_index = function
  | Engine_start -> 0
  | Engine_step -> 1
  | Cache_read -> 2
  | Cache_write -> 3
  | Sock_send -> 4
  | Sock_recv -> 5
  | Link_send -> 6
  | Link_recv -> 7

let n_points = 8

let point_to_string = function
  | Engine_start -> "engine_start"
  | Engine_step -> "engine_step"
  | Cache_read -> "cache_read"
  | Cache_write -> "cache_write"
  | Sock_send -> "sock_send"
  | Sock_recv -> "sock_recv"
  | Link_send -> "link_send"
  | Link_recv -> "link_recv"

let point_of_string = function
  | "engine_start" -> Some Engine_start
  | "engine_step" -> Some Engine_step
  | "cache_read" -> Some Cache_read
  | "cache_write" -> Some Cache_write
  | "sock_send" -> Some Sock_send
  | "sock_recv" -> Some Sock_recv
  | "link_send" -> Some Link_send
  | "link_recv" -> Some Link_recv
  | _ -> None

exception Injected of { point : string; action : string }

type action =
  | Crash
  | Stall of float (* seconds *)
  | Corrupt
  | Delay of float (* seconds; returned, not slept, at link points *)
  | Drop

let action_to_string = function
  | Crash -> "crash"
  | Corrupt -> "corrupt"
  | Stall s -> Printf.sprintf "stall%.0f" (s *. 1000.)
  | Delay s -> Printf.sprintf "delay%.0f" (s *. 1000.)
  | Drop -> "drop"

type rule = {
  point : point;
  action : action;
  prob : float;
  limit : int option;  (* max total firings; None = unlimited *)
  salt : int;          (* decision-stream discriminator, unique per rule *)
  hits : int Atomic.t; (* hit counter: input to the decision hash *)
  fired : int Atomic.t;
}

type t = {
  seed : int;
  rules : rule list;              (* in spec order, for reporting *)
  by_point : rule list array;     (* length n_points; [] = fast no-op *)
}

let disabled = { seed = 0; rules = []; by_point = Array.make n_points [] }
let enabled t = t.rules <> []
let seed t = t.seed

(* splitmix64 finalizer over (seed, salt, n): a pure decision function,
   so the firing set is independent of thread interleaving. *)
let mix64 x =
  let x = Int64.add x 0x9e3779b97f4a7c15L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94d049bb133111ebL in
  Int64.logxor x (Int64.shift_right_logical x 31)

let hash64 ~seed ~salt n =
  mix64 (mix64 (mix64 (Int64.of_int seed)
                |> Int64.add (Int64.of_int salt) |> mix64)
         |> Int64.add (Int64.of_int n))

let hash_float ~seed ~salt n =
  (* Top 53 bits -> uniform float in [0,1). *)
  let bits = Int64.shift_right_logical (hash64 ~seed ~salt n) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

(* Decide whether this hit of [r] fires, respecting prob and limit.
   Returns the hit index when it does (corruption keys byte choice off
   it). *)
let fires t r =
  let n = Atomic.fetch_and_add r.hits 1 in
  if r.prob < 1.0 && hash_float ~seed:t.seed ~salt:r.salt n >= r.prob then None
  else
    match r.limit with
    | None ->
        Atomic.incr r.fired;
        Some n
    | Some lim ->
        (* fetch_and_add makes the cap race-free across domains. *)
        if Atomic.fetch_and_add r.fired 1 < lim then Some n
        else begin
          Atomic.decr r.fired;
          None
        end

let hit t point =
  match t.by_point.(point_index point) with
  | [] -> ()
  | rules ->
      List.iter
        (fun r ->
          match r.action with
          | Corrupt -> ()
          | Crash ->
              if fires t r <> None then
                raise (Injected { point = point_to_string point; action = "crash" })
          | Drop ->
              if fires t r <> None then
                raise (Injected { point = point_to_string point; action = "drop" })
          | Stall s | Delay s -> if fires t r <> None then Unix.sleepf s)
        rules

(* The link variant never sleeps: the router runs one select loop, so a
   delay must be returned to the caller (which defers the message)
   rather than blocking every connection behind it. Drop dominates any
   delay; crash rules still raise, modelling a link whose failure kills
   the endpoint's connection. *)
let link t point =
  match t.by_point.(point_index point) with
  | [] -> `Pass
  | rules ->
      List.fold_left
        (fun acc r ->
          match r.action with
          | Corrupt -> acc
          | Crash ->
              if fires t r <> None then
                raise (Injected { point = point_to_string point; action = "crash" })
              else acc
          | Drop -> if fires t r <> None then `Drop else acc
          | Stall s | Delay s -> (
              if fires t r = None then acc
              else
                match acc with
                | `Drop -> `Drop
                | `Delay d -> `Delay (Float.max d s)
                | `Pass -> `Delay s))
        `Pass rules

let corrupt t point payload =
  match t.by_point.(point_index point) with
  | [] -> payload
  | rules ->
      List.fold_left
        (fun payload r ->
          match r.action with
          | Crash | Stall _ | Delay _ | Drop -> payload
          | Corrupt -> (
              if String.length payload = 0 then payload
              else
                match fires t r with
                | None -> payload
                | Some n ->
                (* Deterministic position and a nonzero mask so the flip
                   is never the identity. *)
                let h = hash64 ~seed:t.seed ~salt:(r.salt + 7919) n in
                let pos =
                  Int64.to_int (Int64.rem (Int64.shift_right_logical h 8)
                                  (Int64.of_int (String.length payload)))
                in
                let mask = 1 lor (Int64.to_int (Int64.logand h 0xffL)) in
                let b = Bytes.of_string payload in
                Bytes.set b pos
                  (Char.chr (Char.code (Bytes.get b pos) lxor mask));
                Bytes.to_string b))
        payload rules

let injections t =
  List.map
    (fun r ->
      ( point_to_string r.point ^ "." ^ action_to_string r.action,
        Atomic.get r.fired ))
    t.rules

(* ---- spec parsing ------------------------------------------------- *)

let default_spec =
  "engine_start=crash@0.2x4,engine_step=stall20@0.02x8,\
   cache_read=corrupt@0.25x4,sock_send=crash@0.1x4"

let rule_to_spec r =
  Printf.sprintf "%s=%s%s%s" (point_to_string r.point)
    (action_to_string r.action)
    (if r.prob >= 1.0 then "" else Printf.sprintf "@%g" r.prob)
    (match r.limit with None -> "" | Some l -> Printf.sprintf "x%d" l)

let to_spec t =
  if not (enabled t) then ""
  else
    string_of_int t.seed ^ ":"
    ^ String.concat "," (List.map rule_to_spec t.rules)

let parse_action s =
  if s = "crash" then Ok Crash
  else if s = "corrupt" then Ok Corrupt
  else if s = "drop" then Ok Drop
  else if String.length s > 5 && String.sub s 0 5 = "stall" then
    match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
    | Some ms when ms >= 0 -> Ok (Stall (float_of_int ms /. 1000.))
    | _ -> Error (Printf.sprintf "bad stall duration in %S" s)
  else if String.length s > 5 && String.sub s 0 5 = "delay" then
    match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
    | Some ms when ms >= 0 -> Ok (Delay (float_of_int ms /. 1000.))
    | _ -> Error (Printf.sprintf "bad delay duration in %S" s)
  else
    Error
      (Printf.sprintf "unknown action %S (crash|corrupt|drop|stallMS|delayMS)" s)

(* Split trailing [xN] / [@P] suffixes off an action token. *)
let parse_rule idx token =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt token '=' with
  | None -> err "rule %S: expected point=action" token
  | Some eq -> (
      let pname = String.sub token 0 eq in
      let rest = String.sub token (eq + 1) (String.length token - eq - 1) in
      match point_of_string pname with
      | None -> err "rule %S: unknown point %S" token pname
      | Some point -> (
          let rest, limit =
            match String.rindex_opt rest 'x' with
            | Some i when i > 0 -> (
                let tail = String.sub rest (i + 1) (String.length rest - i - 1) in
                match int_of_string_opt tail with
                | Some l when l > 0 -> (String.sub rest 0 i, Ok (Some l))
                | _ -> (rest, Error (Printf.sprintf "rule %S: bad limit" token)))
            | _ -> (rest, Ok None)
          in
          match limit with
          | Error m -> Error m
          | Ok limit -> (
              let rest, prob =
                match String.rindex_opt rest '@' with
                | Some i -> (
                    let tail =
                      String.sub rest (i + 1) (String.length rest - i - 1)
                    in
                    match float_of_string_opt tail with
                    | Some p when p >= 0.0 && p <= 1.0 ->
                        (String.sub rest 0 i, Ok p)
                    | _ ->
                        (rest, Error (Printf.sprintf
                                        "rule %S: probability must be in [0,1]"
                                        token)))
                | None -> (rest, Ok 1.0)
              in
              match prob with
              | Error m -> Error m
              | Ok prob -> (
                  match parse_action rest with
                  | Error m -> err "rule %S: %s" token m
                  | Ok action ->
                      Ok
                        {
                          point;
                          action;
                          prob;
                          limit;
                          salt = (point_index point * 64) + idx;
                          hits = Atomic.make 0;
                          fired = Atomic.make 0;
                        }))))

let of_spec spec =
  let seed_s, rules_s =
    match String.index_opt spec ':' with
    | None -> (spec, default_spec)
    | Some i ->
        ( String.sub spec 0 i,
          String.sub spec (i + 1) (String.length spec - i - 1) )
  in
  match int_of_string_opt (String.trim seed_s) with
  | None -> Error (Printf.sprintf "bad chaos seed %S (expected an integer)" seed_s)
  | Some seed -> (
      let tokens =
        String.split_on_char ',' rules_s
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      if tokens = [] then Error "empty chaos rule list"
      else
        let rec build idx acc = function
          | [] -> Ok (List.rev acc)
          | tok :: rest -> (
              match parse_rule idx tok with
              | Error m -> Error m
              | Ok r -> build (idx + 1) (r :: acc) rest)
        in
        match build 0 [] tokens with
        | Error m -> Error m
        | Ok rules ->
            let by_point = Array.make n_points [] in
            List.iter
              (fun r ->
                let i = point_index r.point in
                by_point.(i) <- by_point.(i) @ [ r ])
              rules;
            Ok { seed; rules; by_point })
