(** Deterministic, seed-driven fault injection.

    The paper studies what a fault-tolerant system does when one of its
    own components misbehaves; this module lets the verifier stack ask
    the same question of itself. Instrumented code declares named
    {b hook points} — engine start/step, cache read/write, socket
    send/recv — and a chaos specification decides, deterministically
    from a seed, which hits of which point {b crash} (raise
    {!Injected}), {b stall} (sleep), or {b corrupt} (flip one byte of a
    payload).

    {b Zero-cost when disabled.} Mirroring {!Obs.disabled}, the
    {!disabled} registry makes every {!hit} a constant-time
    non-allocating no-op and every {!corrupt} the identity, so the hook
    points stay in the production paths unconditionally and the CLIs
    switch them on with [--chaos].

    {b Determinism.} The decision for the [n]-th hit of a rule is a
    pure hash of [(seed, rule, n)] — not a stateful RNG — so the {e
    set} of firing hit indices for a given spec is identical across
    runs and across thread interleavings (which request observes a
    given firing still depends on scheduling). Every rule can carry a
    firing cap ([xN]), bounding total chaos regardless of load.

    {b Spec grammar.}
    {v
      SEED[:RULE{,RULE}]
      RULE   ::= POINT '=' ACTION ['@' PROB] ['x' LIMIT]
      POINT  ::= engine_start | engine_step | cache_read | cache_write
               | sock_send | sock_recv | link_send | link_recv
      ACTION ::= crash | corrupt | drop | stall MILLIS | delay MILLIS
    v}
    e.g. ["7:engine_start=crash@0.2x8,cache_read=corrupt@0.3x6"] or
    ["3:link_recv=drop@0.5x8,link_send=delay400x6"]. A bare seed
    selects {!default_spec}. [PROB] defaults to 1, [LIMIT] to
    unlimited.

    The [link_send]/[link_recv] points model the router↔worker network
    and are consulted through {!link} rather than {!hit}: a [delay]
    there is {e returned} to the caller for deferred delivery instead
    of slept inline (the router is a single select loop), and [drop]
    discards the message. At every other point [delay] behaves like
    [stall] and [drop] like [crash]. *)

type point =
  | Engine_start  (** before each supervised engine attempt *)
  | Engine_step  (** every cooperative-cancellation safepoint poll *)
  | Cache_read  (** after reading a verdict-cache entry *)
  | Cache_write  (** before persisting a verdict-cache entry *)
  | Sock_send  (** before writing a response line to a client *)
  | Sock_recv  (** before reading request bytes from a client *)
  | Link_send  (** before the router writes a line to a worker *)
  | Link_recv  (** after the router reads a line from a worker *)

val point_to_string : point -> string
val point_of_string : string -> point option

exception Injected of { point : string; action : string }
(** Raised by {!hit} when a [crash] rule fires. Instrumented layers
    treat it exactly like the real failure it models (an engine
    exception, an unreadable cache entry, a dropped socket). *)

type t
(** A fault registry: a seed plus compiled rules per hook point. *)

val disabled : t
(** No rules: {!hit} and {!corrupt} are no-ops. *)

val enabled : t -> bool
(** [false] exactly for a registry with no rules. *)

val default_spec : string
(** The rule list a bare [--chaos SEED] selects: a bounded mix of
    engine crashes and stalls, cache-read corruption, and socket
    drops. *)

val of_spec : string -> (t, string) result
(** Parse [SEED[:RULES]] (grammar above). Errors name the offending
    rule. *)

val to_spec : t -> string
(** The registry's canonical spec string (round-trips through
    {!of_spec}). [""] for {!disabled}. *)

val seed : t -> int

val hit : t -> point -> unit
(** Give every [crash]/[stall] rule on [point] its chance to fire:
    raise {!Injected}, or sleep the stall duration, or do nothing.
    [drop] rules raise like [crash] (action ["drop"]), [delay] rules
    sleep like [stall]. [corrupt] rules never fire here. *)

val link : t -> point -> [ `Pass | `Drop | `Delay of float ]
(** The non-blocking variant for router↔worker link points: give every
    rule on [point] its chance to fire, but {e return} the verdict
    instead of sleeping. [`Drop] means discard the message (it
    dominates any delay); [`Delay s] means deliver it [s] seconds
    late (the longest firing delay wins); [crash] rules raise
    {!Injected} as usual. Each rule's hit counter advances exactly
    once per call, so the firing set is as deterministic as {!hit}'s. *)

val corrupt : t -> point -> string -> string
(** Give every [corrupt] rule on [point] its chance to flip one byte
    (deterministic position and mask, never a no-op flip) of the
    payload. [crash]/[stall] rules never fire here; the input is
    returned unchanged when nothing fires or when it is empty. *)

val injections : t -> (string * int) list
(** Firing counts per rule, as [("point.action", n)] pairs in rule
    order — the registry's own telemetry, nonzero exactly for the
    faults actually delivered. *)

val hash_float : seed:int -> salt:int -> int -> float
(** The decision hash, exposed for the supervisor's jitter and the
    determinism tests: a uniform float in [\[0,1)] that is a pure
    function of its arguments. *)
