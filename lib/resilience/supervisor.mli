(** Supervised engine execution: retries, backoff, and a hang watchdog.

    [run] wraps {!Tta_model.Engine.t}[.run] with a per-engine policy so
    that a crashing or hanging engine becomes a recorded {!failure}
    instead of an exception unwinding through the portfolio:

    - an engine exception (including an injected {!Faults.Injected}
      crash) is retried up to [retries] times, with capped exponential
      backoff and seeded jitter between attempts;
    - with a [watchdog_s] budget set, the attempt runs on its own
      domain; an attempt that exceeds the budget is asked to stop via
      the cooperative cancel hook, granted [hang_grace_s] to deliver a
      late conclusive verdict, and otherwise abandoned as {!Hung}
      (hangs are not retried — the watchdog is a wall-clock budget, and
      an engine that stopped polling its safepoints cannot be trusted
      twice).

    The jitter and therefore the whole backoff sequence are a pure
    function of the policy ({!backoff_schedule}), keeping supervised
    runs as reproducible as the engines they wrap. *)

type policy = {
  retries : int;  (** extra attempts after the first (0 = fail fast) *)
  backoff_s : float;  (** base delay before attempt 2 *)
  backoff_max_s : float;  (** cap on the exponential growth *)
  jitter : float;
      (** delay is multiplied by [1 + jitter * u], [u] uniform in
          [\[0,1)] derived from [seed] — deterministic, not sampled *)
  seed : int;
  watchdog_s : float option;
      (** wall-clock budget per attempt; [None] disables the watchdog
          and runs the engine on the calling domain *)
  hang_grace_s : float;
      (** extra time an over-budget attempt gets to answer the cancel
          request before being abandoned *)
}

val default : policy
(** 2 retries, 50ms base backoff capped at 2s, jitter 0.5, seed 0, no
    watchdog, 250ms hang grace. *)

val backoff_schedule : policy -> float list
(** The exact delays (seconds) [run] sleeps before attempts
    [2 .. retries + 1]: [min backoff_max_s (backoff_s * 2^k) * (1 +
    jitter * u_k)]. Exposed so tests can assert the observed backoffs
    against it. *)

val backoff_delay : policy -> int -> float
(** [backoff_delay policy k] is the single delay before attempt
    [k + 2] — [List.nth (backoff_schedule policy) k], but defined for
    any [k >= 0] (the cap makes the tail constant up to jitter). Used
    by {!Restarts} to pace process resurrection with the same
    deterministic schedule. *)

(** Process-level supervision hook: a restart-intensity gate in the
    Erlang supervisor tradition. The cluster router records one
    {!Restarts.record} per worker-process death; the gate answers with
    the deterministic backoff to wait before respawning, or [`Give_up]
    once more than [max_restarts] deaths land inside the sliding
    [window_s] — a process crash-looping that fast is a permanent
    failure, not a transient one. *)
module Restarts : sig
  type t

  val create : ?max_restarts:int -> ?window_s:float -> policy -> t
  (** Defaults: 5 restarts per 30 s window. The [policy] supplies the
      backoff curve ({!backoff_delay}); its retry count is not used.
      @raise Invalid_argument if [max_restarts < 1] or [window_s <= 0]. *)

  val record : ?now:float -> t -> [ `Backoff of float | `Give_up ]
  (** Note one death at [now] (default: the current time; injectable
      for deterministic tests). [`Backoff d] grants a respawn after [d]
      seconds — the k-th death in the window gets
      [backoff_delay policy (k - 1)]. *)

  val count : t -> int
  (** Deaths within the window as of the last {!record}. *)
end

type failure =
  | Crashed of { attempts : int; last_error : string }
      (** every attempt raised; [last_error] is [Printexc.to_string] of
          the final one *)
  | Hung of { attempts : int; watchdog_s : float }
      (** the attempt blew its watchdog budget and did not produce a
          conclusive verdict within the grace period *)

val failure_to_string : failure -> string

type outcome = {
  result : (Tta_model.Engine.result, failure) result;
  attempts : int;  (** total attempts made (>= 1) *)
  backoffs_s : float list;  (** the delays actually slept, in order *)
  counters : (string * int) list;
      (** the supervisor's own telemetry — [supervisor.retries],
          [supervisor.crashes], [supervisor.hangs] — nonzero entries
          only, disjoint from the engine's counters *)
  wall_s : float;  (** total supervised wall time, backoffs included *)
}

val run :
  ?policy:policy ->
  ?faults:Faults.t ->
  ?obs:Obs.t ->
  ?cancel:(unit -> bool) ->
  ?max_depth:int ->
  ?reach_tuning:Symkit.Reach.tuning ->
  Tta_model.Engine.t ->
  Tta_model.Configs.t ->
  outcome
(** Supervised [engine.run]. [faults] hooks {!Faults.Engine_start}
    before every attempt and {!Faults.Engine_step} into the engine's
    cooperative cancel polls. [cancel] is the external (portfolio)
    cancellation: when it turns true, pending backoffs are cut short
    and no further retries are attempted. [reach_tuning] is forwarded
    to every attempt (the BDD engine's image-computation tuning).
    [obs] receives live [supervisor.*] counter increments when
    enabled; the same values are always returned in
    [outcome.counters]. *)
