(* Supervised engine execution: bounded retries with deterministic
   backoff, and a watchdog that turns non-cooperative engines into
   recorded Hung failures. See supervisor.mli. *)

module Engine = Tta_model.Engine

type policy = {
  retries : int;
  backoff_s : float;
  backoff_max_s : float;
  jitter : float;
  seed : int;
  watchdog_s : float option;
  hang_grace_s : float;
}

let default =
  {
    retries = 2;
    backoff_s = 0.05;
    backoff_max_s = 2.0;
    jitter = 0.5;
    seed = 0;
    watchdog_s = None;
    hang_grace_s = 0.25;
  }

(* Delay before attempt [k + 2]: capped exponential with deterministic
   jitter (reused decision hash — the salt just separates the jitter
   stream from any fault rule). *)
let backoff_delay policy k =
  let base =
    Float.min policy.backoff_max_s (policy.backoff_s *. (2. ** float_of_int k))
  in
  base *. (1. +. (policy.jitter *. Faults.hash_float ~seed:policy.seed ~salt:0x5eed k))

let backoff_schedule policy =
  List.init (max 0 policy.retries) (backoff_delay policy)

(* Process-level supervision: an Erlang-style restart-intensity gate.
   Each [record] call notes one death of the supervised process; deaths
   older than [window_s] roll off. Within the window the k-th death is
   granted the same deterministic capped-exponential backoff the
   in-process supervisor uses between engine attempts; one death past
   [max_restarts] means the process is beyond help and the supervisor
   should stop resurrecting it. *)
module Restarts = struct
  type t = {
    policy : policy;
    max_restarts : int;
    window_s : float;
    mutable deaths : float list;  (** newest first, within the window *)
  }

  let create ?(max_restarts = 5) ?(window_s = 30.0) policy =
    if max_restarts < 1 then invalid_arg "Restarts.create: max_restarts < 1";
    if window_s <= 0.0 then invalid_arg "Restarts.create: window_s <= 0";
    { policy; max_restarts; window_s; deaths = [] }

  let record ?now t =
    let now = match now with Some n -> n | None -> Unix.gettimeofday () in
    let live = List.filter (fun ts -> now -. ts <= t.window_s) t.deaths in
    let deaths = now :: live in
    t.deaths <- deaths;
    let n = List.length deaths in
    if n > t.max_restarts then `Give_up
    else `Backoff (backoff_delay t.policy (n - 1))

  let count t = List.length t.deaths
end

type failure =
  | Crashed of { attempts : int; last_error : string }
  | Hung of { attempts : int; watchdog_s : float }

let failure_to_string = function
  | Crashed { attempts; last_error } ->
      Printf.sprintf "crashed after %d attempt(s): %s" attempts last_error
  | Hung { attempts; watchdog_s } ->
      Printf.sprintf "hung on attempt %d (watchdog %.3gs)" attempts watchdog_s

type outcome = {
  result : (Engine.result, failure) result;
  attempts : int;
  backoffs_s : float list;
  counters : (string * int) list;
  wall_s : float;
}

(* Sleep in short chunks so an external cancellation (the race already
   has a winner) cuts the backoff short. *)
let interruptible_sleep d cancel =
  let rec go remaining =
    if remaining > 0. && not (cancel ()) then begin
      let step = Float.min 0.01 remaining in
      Unix.sleepf step;
      go (remaining -. step)
    end
  in
  go d

let run ?(policy = default) ?(faults = Faults.disabled) ?obs
    ?(cancel = fun () -> false) ?max_depth ?reach_tuning (engine : Engine.t)
    cfg =
  let t0 = Unix.gettimeofday () in
  let retries_c = ref 0 and crashes_c = ref 0 and hangs_c = ref 0 in
  let obs_tick name =
    match obs with
    | Some o when Obs.enabled o -> Obs.incr_by o name 1
    | _ -> ()
  in
  (* The engine's cooperative safepoint doubles as the Engine_step fault
     hook: an injected crash surfaces as an engine exception mid-run, an
     injected stall as an engine that stopped making progress. *)
  let wrapped_cancel wd_fired () =
    Faults.hit faults Faults.Engine_step;
    Atomic.get wd_fired || cancel ()
  in
  let attempt wd_fired =
    try
      Faults.hit faults Faults.Engine_start;
      match policy.watchdog_s with
      | None -> (
          match engine.Engine.run ~cancel:(wrapped_cancel wd_fired) ?obs
                  ?max_depth ?reach_tuning cfg
          with
          | r -> `Done r
          | exception e -> `Raised e)
      | Some w -> (
          (* Run the attempt on its own domain so a hung engine can be
             abandoned without taking the supervisor down with it. *)
          let attempt_t0 = Unix.gettimeofday () in
          let slot = Atomic.make `Pending in
          let d =
            Domain.spawn (fun () ->
                match
                  engine.Engine.run ~cancel:(wrapped_cancel wd_fired) ?obs
                    ?max_depth ?reach_tuning cfg
                with
                | r -> Atomic.set slot (`Done r)
                | exception e -> Atomic.set slot (`Raised e))
          in
          let rec wait limit =
            match Atomic.get slot with
            | `Pending ->
                if Unix.gettimeofday () >= limit then `Timeout
                else begin
                  Unix.sleepf 0.002;
                  wait limit
                end
            | (`Done _ | `Raised _) as s -> s
          in
          match wait (attempt_t0 +. w) with
          | (`Done _ | `Raised _) as s ->
              Domain.join d;
              s
          | `Timeout -> (
              Atomic.set wd_fired true;
              match wait (Unix.gettimeofday () +. policy.hang_grace_s) with
              | `Raised e ->
                  Domain.join d;
                  `Raised e
              | `Done r -> (
                  Domain.join d;
                  (* A late but conclusive verdict is still a verdict;
                     a late "I was cancelled" is a hang on the record. *)
                  match r.Engine.verdict with
                  | Engine.Holds _ | Engine.Violated _ -> `Done r
                  | Engine.Unknown _ -> `Hung w)
              | `Timeout ->
                  (* Abandon the attempt; a detached joiner reclaims the
                     domain if it ever finishes. *)
                  ignore
                    (Domain.spawn (fun () -> try Domain.join d with _ -> ())
                      : unit Domain.t);
                  `Hung w))
    with e -> `Raised e
  in
  let backoffs = ref [] in
  let rec go attempt_no =
    let wd_fired = Atomic.make false in
    match attempt wd_fired with
    | `Done r -> (Ok r, attempt_no)
    | `Hung w ->
        (* Hangs are terminal: the watchdog is a wall-clock budget, and
           this attempt already spent it. *)
        incr hangs_c;
        obs_tick "supervisor.hangs";
        (Error (Hung { attempts = attempt_no; watchdog_s = w }), attempt_no)
    | `Raised e ->
        incr crashes_c;
        obs_tick "supervisor.crashes";
        let give_up () =
          ( Error
              (Crashed
                 { attempts = attempt_no; last_error = Printexc.to_string e }),
            attempt_no )
        in
        if attempt_no > policy.retries || cancel () then give_up ()
        else begin
          let d = backoff_delay policy (attempt_no - 1) in
          backoffs := d :: !backoffs;
          incr retries_c;
          obs_tick "supervisor.retries";
          interruptible_sleep d cancel;
          if cancel () then give_up () else go (attempt_no + 1)
        end
  in
  let result, attempts = go 1 in
  let counters =
    List.filter
      (fun (_, v) -> v > 0)
      [
        ("supervisor.retries", !retries_c);
        ("supervisor.crashes", !crashes_c);
        ("supervisor.hangs", !hangs_c);
      ]
  in
  {
    result;
    attempts;
    backoffs_s = List.rev !backoffs;
    counters;
    wall_s = Unix.gettimeofday () -. t0;
  }
