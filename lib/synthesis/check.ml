(* Lower surviving candidates to Section 5 configurations and verify
   them — on the in-process pool, or as wire traffic so a sweep
   exercises the daemon's warm session families. *)

type verdict = Upheld | Breached of int | Undetermined of string

let verdict_label = function
  | Upheld -> "upheld"
  | Breached _ -> "breached"
  | Undetermined _ -> "undetermined"

type outcome = {
  candidate : Space.candidate;
  config : Tta_model.Configs.t;
  verdict : verdict;
  reused_session : bool;
  warm_depth : int;
}

let lower ~nodes (c : Space.candidate) =
  match c.Space.feature_set with
  | Guardian.Feature_set.Passive -> Tta_model.Configs.passive ~nodes ()
  | Guardian.Feature_set.Time_windows -> Tta_model.Configs.time_windows ~nodes ()
  | Guardian.Feature_set.Small_shifting ->
      Tta_model.Configs.small_shifting ~nodes ()
  | Guardian.Feature_set.Full_shifting ->
      Tta_model.Configs.full_shifting ~nodes ()

let of_engine_verdict = function
  | Tta_model.Engine.Holds _ -> Upheld
  | Tta_model.Engine.Violated { trace; _ } -> Breached (Array.length trace)
  | Tta_model.Engine.Unknown { detail } -> Undetermined detail

(* ------------------------------------------------------------------ *)
(* Direct path: one pool job per distinct configuration *)

let direct ?domains ?supervisor ?faults ?(depth = 100) ~nodes cands =
  let by_name = Hashtbl.create 8 in
  let keyed =
    List.map
      (fun c ->
        let cfg = lower ~nodes c in
        let key = Tta_model.Configs.name cfg in
        if not (Hashtbl.mem by_name key) then Hashtbl.add by_name key cfg;
        (c, key))
      cands
  in
  let uniq =
    List.fold_left
      (fun acc (_, key) -> if List.mem_assoc key acc then acc else
         (key, Hashtbl.find by_name key) :: acc)
      [] keyed
    |> List.rev
  in
  let jobs =
    List.map
      (fun (key, cfg) ->
        Portfolio.job ~label:("synth/" ^ key)
          ~engine:Tta_model.Engine.Bdd_reach ~max_depth:depth cfg)
      uniq
  in
  let results =
    Portfolio.run_matrix ?domains ?supervisor ?faults jobs
  in
  let verdicts = Hashtbl.create 8 in
  List.iter2
    (fun (key, _) (_, (r : Portfolio.result)) ->
      Hashtbl.replace verdicts key (of_engine_verdict r.Portfolio.verdict))
    uniq results;
  List.map
    (fun (c, key) ->
      {
        candidate = c;
        config = Hashtbl.find by_name key;
        verdict = Hashtbl.find verdicts key;
        reused_session = false;
        warm_depth = 0;
      })
    keyed

(* ------------------------------------------------------------------ *)
(* Service path: sequential JSON-lines requests over one connection *)

(* Minimal blocking client, the same shape as the load generator's
   (which keeps its plumbing private). *)

let connect (addr : Service.Server.addr) =
  match addr with
  | Service.Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Service.Server.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (inet, port));
      fd

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

type line_reader = { fd : Unix.file_descr; rbuf : Buffer.t; scratch : Bytes.t }

let line_reader fd = { fd; rbuf = Buffer.create 512; scratch = Bytes.create 8192 }

let rec read_line_opt r =
  let s = Buffer.contents r.rbuf in
  match String.index_opt s '\n' with
  | Some i ->
      Buffer.clear r.rbuf;
      Buffer.add_substring r.rbuf s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)
  | None -> (
      match Unix.read r.fd r.scratch 0 (Bytes.length r.scratch) with
      | 0 -> if s = "" then None else (Buffer.clear r.rbuf; Some s)
      | n ->
          Buffer.add_subbytes r.rbuf r.scratch 0 n;
          read_line_opt r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line_opt r
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          None)

let verdict_of_response = function
  | Service.Protocol.Answer { verdict; _ } -> (
      match verdict with
      | Service.Protocol.Holds _ -> Upheld
      | Service.Protocol.Violated { steps; _ } -> Breached steps
      | Service.Protocol.Unknown { detail; _ } -> Undetermined detail)
  | Service.Protocol.Degraded { code; clean_depth; _ } ->
      Undetermined
        (Printf.sprintf "degraded (%s): no counterexample up to depth %d" code
           clean_depth)
  | Service.Protocol.Overloaded _ -> Undetermined "overloaded"
  | Service.Protocol.Cancelled { reason; _ } ->
      Undetermined ("cancelled: " ^ reason)
  | Service.Protocol.Error { reason; _ } -> Undetermined ("error: " ^ reason)
  | Service.Protocol.Pong _ -> Undetermined "unexpected pong"

let via_service ?(depth = 20) ?(depth_spread = 3) ~nodes addr cands =
  let fd = connect addr in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let reader = line_reader fd in
  List.mapi
    (fun i c ->
      let cfg = lower ~nodes c in
      let d = depth + (2 * (i mod max 1 depth_spread)) in
      let req =
        Service.Protocol.request
          ~id:(Printf.sprintf "synth-%d" i)
          ~config:(Guardian.Feature_set.to_string c.Space.feature_set)
          ~nodes ~engine:"bmc" ~depth:d ()
      in
      let line = Json.to_string req ^ "\n" in
      write_all fd line 0 (String.length line);
      let verdict, reused_session, warm_depth =
        match read_line_opt reader with
        | None -> (Undetermined "connection closed", false, 0)
        | Some l -> (
            match Service.Protocol.decode_response_line l with
            | Error e -> (Undetermined ("garbled response: " ^ e), false, 0)
            | Ok
                (Service.Protocol.Answer { reused_session; warm_depth; _ } as
                 resp) ->
                (verdict_of_response resp, reused_session, warm_depth)
            | Ok resp -> (verdict_of_response resp, false, 0))
      in
      { candidate = c; config = cfg; verdict; reused_session; warm_depth })
    cands
