(* The containment/cost frontier: vector dominance over checked
   candidates, dominated designs pruned. *)

type objectives = { threats : int; upheld : bool }
type costs = { buffer_bits : int; authority : int }

type point = {
  candidate : Space.candidate;
  objectives : objectives;
  costs : costs;
  faults_contained : (Guardian.Fault.t * bool) list;
  verdict : Check.verdict;
}

(* The paper's threat classes per capability: time windows shut out the
   babbling idiot and in-slot masquerading (2), reshaping eliminates
   SOS faults (1 more), semantic analysis blocks wrong C-states and
   masquerading cold-start frames (2 more). *)
let threats_contained fs =
  let open Guardian.Feature_set in
  (if enforces_time_windows fs then 2 else 0)
  + (if reshapes_sos fs then 1 else 0)
  + if semantic_analysis fs then 2 else 0

let point_of_outcome (o : Check.outcome) =
  let fs = o.Check.candidate.Space.feature_set in
  let upheld = o.Check.verdict = Check.Upheld in
  (* A fault mode is contained if the coupler cannot exhibit it at
     all, or if it can and the checked property still holds. The
     paper's two-channel redundancy masks silence and noise in every
     configuration; the replay fault is what breaches full shifting. *)
  let possible = Guardian.Fault.possible_for fs in
  let contained f =
    match (f : Guardian.Fault.t) with
    | Guardian.Fault.Healthy -> true
    | _ -> (not (List.mem f possible)) || upheld
  in
  {
    candidate = o.Check.candidate;
    objectives = { threats = threats_contained fs; upheld };
    costs =
      {
        buffer_bits = o.Check.candidate.Space.buffer_bits;
        authority = Guardian.Feature_set.authority_rank fs;
      };
    faults_contained = List.map (fun f -> (f, contained f)) Guardian.Fault.all;
    verdict = o.Check.verdict;
  }

let ge_bool a b = a || not b

let dominates a b =
  let obj_ge =
    a.objectives.threats >= b.objectives.threats
    && ge_bool a.objectives.upheld b.objectives.upheld
  in
  let cost_le =
    a.costs.buffer_bits <= b.costs.buffer_bits
    && a.costs.authority <= b.costs.authority
  in
  let strict =
    a.objectives.threats > b.objectives.threats
    || (a.objectives.upheld && not b.objectives.upheld)
    || a.costs.buffer_bits < b.costs.buffer_bits
    || a.costs.authority < b.costs.authority
  in
  obj_ge && cost_le && strict

let signature p =
  ( p.objectives.threats,
    p.objectives.upheld,
    p.costs.buffer_bits,
    p.costs.authority )

let frontier points =
  let non_dominated =
    List.filter (fun p -> not (List.exists (fun q -> dominates q p) points))
      points
  in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun p ->
      let s = signature p in
      if Hashtbl.mem seen s then false
      else begin
        Hashtbl.add seen s ();
        true
      end)
    non_dominated

let to_json p =
  Json.Obj
    [
      ("candidate", Space.candidate_to_json p.candidate);
      ("key", Json.String (Space.candidate_key p.candidate));
      ("threats_contained", Json.Int p.objectives.threats);
      ("upheld", Json.Bool p.objectives.upheld);
      ("buffer_bits", Json.Int p.costs.buffer_bits);
      ("authority", Json.Int p.costs.authority);
      ("verdict", Json.String (Check.verdict_label p.verdict));
      ( "faults_contained",
        Json.Obj
          (List.map
             (fun (f, ok) -> (Guardian.Fault.to_string f, Json.Bool ok))
             p.faults_contained) );
    ]

let pp_table ppf points =
  Format.fprintf ppf "%-40s %7s %6s %9s %9s  %s@."
    "candidate" "threats" "upheld" "buf(bits)" "authority" "verdict";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-40s %7d %6b %9d %9d  %s@."
        (Space.candidate_key p.candidate)
        p.objectives.threats p.objectives.upheld p.costs.buffer_bits
        p.costs.authority
        (Check.verdict_label p.verdict))
    points
