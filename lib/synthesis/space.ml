(* The guardian design space: an axis-aligned grid over authority level
   and the Section 6 physical-layer budgets, with deterministic
   enumeration and seeded sampling. *)

type candidate = {
  feature_set : Guardian.Feature_set.t;
  buffer_bits : int;
  window_bits : int;
  shift_bits : int;
  rho_max : float;
  rho_min : float;
}

let candidate_key c =
  Printf.sprintf "%s/b%d/w%d/s%d/r%g:%g"
    (Guardian.Feature_set.to_string c.feature_set)
    c.buffer_bits c.window_bits c.shift_bits c.rho_max c.rho_min

let pp_candidate ppf c = Format.pp_print_string ppf (candidate_key c)

let candidate_to_json c =
  Json.Obj
    [
      ("feature_set", Json.String (Guardian.Feature_set.to_string c.feature_set));
      ("buffer_bits", Json.Int c.buffer_bits);
      ("window_bits", Json.Int c.window_bits);
      ("shift_bits", Json.Int c.shift_bits);
      ("rho_max", Json.Float c.rho_max);
      ("rho_min", Json.Float c.rho_min);
    ]

type t = {
  feature_sets : Guardian.Feature_set.t list;
  buffer_bits : int list;
  window_bits : int list;
  shift_bits : int list;
  clock_spreads : (float * float) list;
  f_min : int;
  f_max : int;
  le : int;
}

(* Axis values chosen to straddle every Section 6 bound for the TTP/C
   frame catalog (f_min 28, f_max 2076, le 4): buffers below, at and
   above B_min and B_max; windows below and above f_max; clock spreads
   from perfect crystals through the commodity delta (0.02 %), the two
   worked-example deltas (1.11 %, 30.26 %) to an infeasible 2:1. *)
let default () =
  let f_min = Analysis.Frames_catalog.min_n_frame_bits in
  let f_max = Analysis.Frames_catalog.max_x_frame_bits in
  let le = Analysis.Frames_catalog.line_encoding_bits in
  {
    feature_sets = Guardian.Feature_set.all;
    buffer_bits = [ 0; 2; 5; 8; 16; 27; 64; 512; 2076; 4096 ];
    window_bits = [ 0; 76; 1024; 2077; 2080; 4096 ];
    shift_bits = [ 0; 1; 4; 16 ];
    clock_spreads =
      [ (1.0, 1.0); (1.0002, 1.0); (1.0111, 1.0); (1.3026, 1.0); (2.0, 1.0) ];
    f_min;
    f_max;
    le;
  }

let size t =
  List.length t.feature_sets * List.length t.buffer_bits
  * List.length t.window_bits * List.length t.shift_bits
  * List.length t.clock_spreads

(* Mixed-radix decoding of the lexicographic index: feature set major;
   clock spread minor. *)
let candidate_at t i =
  if i < 0 || i >= size t then
    invalid_arg (Printf.sprintf "Space.candidate_at: index %d out of range" i);
  let pick l i = List.nth l i in
  let nc = List.length t.clock_spreads in
  let ns = List.length t.shift_bits in
  let nw = List.length t.window_bits in
  let nb = List.length t.buffer_bits in
  let ci = i mod nc and i = i / nc in
  let si = i mod ns and i = i / ns in
  let wi = i mod nw and i = i / nw in
  let bi = i mod nb and fi = i / nb in
  let rho_max, rho_min = pick t.clock_spreads ci in
  {
    feature_set = pick t.feature_sets fi;
    buffer_bits = pick t.buffer_bits bi;
    window_bits = pick t.window_bits wi;
    shift_bits = pick t.shift_bits si;
    rho_max;
    rho_min;
  }

let enumerate t = List.init (size t) (candidate_at t)

let sample ~seed ~count t =
  let n = size t in
  if count >= n then enumerate t
  else if count <= 0 then []
  else begin
    (* Seed from the dimensions too, so the same seed over a different
       grid does not replay the same index stream. *)
    let rng = Random.State.make [| seed; n; count |] in
    let chosen = Hashtbl.create count in
    let rec draw k =
      if k < count then begin
        let i = Random.State.int rng n in
        if Hashtbl.mem chosen i then draw k
        else begin
          Hashtbl.add chosen i ();
          draw (k + 1)
        end
      end
    in
    draw 0;
    Hashtbl.fold (fun i () acc -> i :: acc) chosen []
    |> List.sort compare
    |> List.map (candidate_at t)
  end

let paper_candidates t =
  let open Guardian.Feature_set in
  (* Commodity oscillators: rho_max/rho_min = 1.0002 gives delta within
     rounding of Frames_catalog.commodity_oscillator_delta. *)
  let rho_max = 1.0002 and rho_min = 1.0 in
  let delta = Analysis.Buffer.delta ~rho_max ~rho_min in
  let fmax = float_of_int t.f_max in
  let skew = int_of_float (ceil (delta *. fmax)) in
  let b_min =
    int_of_float (ceil (Analysis.Buffer.b_min ~le:t.le ~delta ~f_max:t.f_max))
  in
  [
    (* a dumb hub: no budget at all, perfect crystals assumed *)
    {
      feature_set = Passive;
      buffer_bits = 0;
      window_bits = 0;
      shift_bits = 0;
      rho_max = 1.0;
      rho_min = 1.0;
    };
    (* time windows: no buffering, window admits the longest frame plus
       in-spec clock skew *)
    {
      feature_set = Time_windows;
      buffer_bits = 0;
      window_bits = t.f_max + skew;
      shift_bits = 0;
      rho_max;
      rho_min;
    };
    (* small shifting: the minimal reshaping budget of equation (1) *)
    {
      feature_set = Small_shifting;
      buffer_bits = b_min;
      window_bits = t.f_max + skew;
      shift_bits = skew;
      rho_max;
      rho_min;
    };
    (* full shifting: buffers a whole longest frame *)
    {
      feature_set = Full_shifting;
      buffer_bits = t.f_max;
      window_bits = t.f_max;
      shift_bits = 0;
      rho_max;
      rho_min;
    };
  ]
