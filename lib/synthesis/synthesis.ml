(* The synthesis pipeline: sweep, analytic pre-filter, model checking
   (pool or daemon), Pareto frontier. *)

module Space = Space
module Prefilter = Prefilter
module Check = Check
module Pareto = Pareto

type via = Direct | Service of Service.Server.addr

type report = {
  space_size : int;
  candidates : int;
  rejected : int;
  rejections : (string * int) list;
  survivors : int;
  checked : int;
  upheld : int;
  breached : int;
  undetermined : int;
  envelope_agreement : bool;
  session_reuses : int;
  outcomes : Check.outcome list;
  frontier : Pareto.point list;
  wall_s : float;
  candidates_per_s : float;
}

let dedup_candidates cands =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun c ->
      let k = Space.candidate_key c in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    cands

let run ?(seed = 1) ?sample ?(anchors = true) ?(nodes = 2) ?depth ?domains
    ?supervisor ?faults ?(via = Direct) (space : Space.t) =
  let t0 = Unix.gettimeofday () in
  let swept =
    match sample with
    | None -> Space.enumerate space
    | Some n -> Space.sample ~seed ~count:n space
  in
  let cands =
    dedup_candidates
      ((if anchors then Space.paper_candidates space else []) @ swept)
  in
  let survivors, _rejects, rejections = Prefilter.split space cands in
  let outcomes =
    match via with
    | Direct -> Check.direct ?domains ?supervisor ?faults ?depth ~nodes survivors
    | Service addr -> Check.via_service ?depth ~nodes addr survivors
  in
  let count p = List.length (List.filter p outcomes) in
  let upheld = count (fun o -> o.Check.verdict = Check.Upheld) in
  let breached =
    count (fun o ->
        match o.Check.verdict with Check.Breached _ -> true | _ -> false)
  in
  let undetermined = List.length outcomes - upheld - breached in
  let checked =
    match via with
    | Direct ->
        List.map (fun o -> Tta_model.Configs.name o.Check.config) outcomes
        |> List.sort_uniq String.compare |> List.length
    | Service _ -> List.length outcomes
  in
  (* The acceptance invariant, re-verified rather than assumed: nothing
     the model checker saw is outside the Section 6 envelope. *)
  let envelope_agreement =
    List.for_all (fun o -> Prefilter.check space o.Check.candidate = []) outcomes
  in
  let session_reuses = count (fun o -> o.Check.reused_session) in
  let frontier = Pareto.frontier (List.map Pareto.point_of_outcome outcomes) in
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    space_size = Space.size space;
    candidates = List.length cands;
    rejected = List.length cands - List.length survivors;
    rejections;
    survivors = List.length survivors;
    checked;
    upheld;
    breached;
    undetermined;
    envelope_agreement;
    session_reuses;
    outcomes;
    frontier;
    wall_s;
    candidates_per_s = float_of_int (List.length cands) /. Float.max 1e-9 wall_s;
  }

let frontier_feature_sets r =
  List.map (fun p -> p.Pareto.candidate.Space.feature_set) r.frontier
  |> List.sort_uniq Guardian.Feature_set.compare

let paper_frontier_ok r =
  match r.frontier with
  | [] -> false
  | first :: rest ->
      let cost (p : Pareto.point) =
        (p.Pareto.costs.Pareto.buffer_bits, p.Pareto.costs.Pareto.authority)
      in
      let cheapest =
        List.fold_left
          (fun acc p -> if cost p < cost acc then p else acc)
          first rest
      in
      let most_capable =
        List.fold_left
          (fun acc p ->
            if
              p.Pareto.objectives.Pareto.threats
              > acc.Pareto.objectives.Pareto.threats
            then p
            else acc)
          first rest
      in
      List.length (frontier_feature_sets r) = 4
      && cheapest.Pareto.candidate.Space.feature_set
         = Guardian.Feature_set.Passive
      && most_capable.Pareto.candidate.Space.feature_set
         = Guardian.Feature_set.Full_shifting

let verdict_summary r =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun o ->
      let key = Tta_model.Configs.name o.Check.config in
      let label = Check.verdict_label o.Check.verdict in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      if not (List.mem label prev) then Hashtbl.replace tbl key (label :: prev))
    r.outcomes;
  Hashtbl.fold
    (fun key labels acc ->
      (key, String.concat "/" (List.sort String.compare labels)) :: acc)
    tbl []
  |> List.sort compare

let report_to_json r =
  Json.Obj
    [
      ("space_size", Json.Int r.space_size);
      ("candidates", Json.Int r.candidates);
      ("rejected", Json.Int r.rejected);
      ( "rejections",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.rejections) );
      ("survivors", Json.Int r.survivors);
      ("checked", Json.Int r.checked);
      ("upheld", Json.Int r.upheld);
      ("breached", Json.Int r.breached);
      ("undetermined", Json.Int r.undetermined);
      ("envelope_agreement", Json.Bool r.envelope_agreement);
      ("session_reuses", Json.Int r.session_reuses);
      ( "session_reuse_rate",
        Json.Float
          (float_of_int r.session_reuses
          /. float_of_int (max 1 (List.length r.outcomes))) );
      ("frontier_size", Json.Int (List.length r.frontier));
      ("frontier", Json.List (List.map Pareto.to_json r.frontier));
      ("paper_frontier", Json.Bool (paper_frontier_ok r));
      ( "verdicts",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.String v)) (verdict_summary r)) );
      ("wall_s", Json.Float r.wall_s);
      ("candidates_per_s", Json.Float r.candidates_per_s);
    ]

let pp_report ppf r =
  Format.fprintf ppf
    "space %d points; swept %d candidates: %d rejected analytically, %d \
     survivors, %d checker runs (%.1f candidates/s, %.2f s)@."
    r.space_size r.candidates r.rejected r.survivors r.checked
    r.candidates_per_s r.wall_s;
  List.iter
    (fun (k, n) -> if n > 0 then Format.fprintf ppf "  rejected %4d  %s@." n k)
    r.rejections;
  Format.fprintf ppf
    "verdicts: %d upheld, %d breached, %d undetermined; envelope agreement %b@."
    r.upheld r.breached r.undetermined r.envelope_agreement;
  if r.session_reuses > 0 then
    Format.fprintf ppf "warm-session reuses: %d of %d requests@."
      r.session_reuses (List.length r.outcomes);
  Format.fprintf ppf "Pareto frontier (%d designs, paper shape %b):@."
    (List.length r.frontier) (paper_frontier_ok r);
  Pareto.pp_table ppf r.frontier
