(** Guardian design-space synthesis: sweep the Section 6 space, reject
    analytically, model-check the survivors, report the Pareto
    frontier.

    The pipeline (see doc/synthesis.md):
    {v
    Space ──enumerate/sample──▶ Prefilter (eqs 1–10) ──▶ Check ──▶ Pareto
          + the four paper anchors    per-equation       pool or    frontier
                                      rejection counts   daemon
    v}

    The four Section 5 designs are always kept in the candidate list
    ({!Space.paper_candidates}) so every run's frontier is comparable
    against the paper: passive is the cheapest point, full shifting the
    most capable — and the one the model checker breaches. *)

module Space = Space
module Prefilter = Prefilter
module Check = Check
module Pareto = Pareto

type via =
  | Direct  (** the in-process {!Portfolio} pool *)
  | Service of Service.Server.addr
      (** a running verification daemon — the sweep becomes sustained
          near-miss wire traffic for its warm session pool *)

type report = {
  space_size : int;  (** points in the full grid *)
  candidates : int;  (** swept this run (sample + anchors, deduped) *)
  rejected : int;  (** analytic rejections, before model checking *)
  rejections : (string * int) list;  (** per-equation counts *)
  survivors : int;  (** candidates inside the envelope *)
  checked : int;
      (** model-checker runs: distinct configurations on the direct
          path, wire requests on the service path *)
  upheld : int;
  breached : int;
  undetermined : int;
  envelope_agreement : bool;
      (** no model-checked candidate violates the Section 6 envelope
          (re-verified on the outcomes, not assumed from the filter) *)
  session_reuses : int;  (** service path: answers on warm sessions *)
  outcomes : Check.outcome list;
  frontier : Pareto.point list;
  wall_s : float;
  candidates_per_s : float;  (** swept candidates over the whole wall *)
}

val run :
  ?seed:int ->
  ?sample:int ->
  ?anchors:bool ->
  ?nodes:int ->
  ?depth:int ->
  ?domains:int ->
  ?supervisor:Resilience.Supervisor.policy ->
  ?faults:Resilience.Faults.t ->
  ?via:via ->
  Space.t ->
  report
(** One synthesis run. [sample] draws that many candidates with [seed]
    (default 1) instead of full enumeration; [anchors] (default [true])
    prepends {!Space.paper_candidates}. [nodes] (default 2) and [depth]
    (path-specific default: 100 for the direct BDD jobs, a 20/22/24
    BMC ratchet via the service) shape the lowered configurations.
    [domains]/[supervisor]/[faults] apply to the direct path ([faults]
    is the [--chaos] passthrough); the service path inherits whatever
    resilience the daemon was started with. Deterministic end to end
    for fixed arguments: same seed and space give the same candidate
    order, verdicts and frontier. *)

val frontier_feature_sets : report -> Guardian.Feature_set.t list
(** Distinct authority levels on the frontier, in authority order. *)

val paper_frontier_ok : report -> bool
(** The frontier reproduces the paper's headline shape: all four
    feature sets present, the cheapest point (fewest buffer bits, then
    least authority) is passive, and the most capable point (most
    threat classes contained) is full shifting. *)

val verdict_summary : report -> (string * string) list
(** Configuration name to verdict label(s), sorted — the comparison key
    for direct-versus-service agreement (labels, not traces: engines
    may report different counterexample lengths for the same breach).
    A configuration that somehow collected several distinct labels
    shows them all, ["/"]-joined. *)

val report_to_json : report -> Json.t
val pp_report : Format.formatter -> report -> unit
