(** The guardian design space swept by the synthesizer.

    A {e candidate} is one point of the Section 6 design space: a
    coupler authority level plus the physical-layer budget it would be
    provisioned with — buffer bits, time-window width, shift allowance
    and the cluster's oscillator spread. The paper evaluates four fixed
    points of this space (Section 5); the synthesizer enumerates or
    samples the whole grid and lets the analytic envelope and the model
    checker sort it out. *)

type candidate = {
  feature_set : Guardian.Feature_set.t;
  buffer_bits : int;  (** provisioned guardian buffer, bits *)
  window_bits : int;
      (** width of the per-slot bus-access window, in bit times (0 for
          a passive hub, which has no window to enforce) *)
  shift_bits : int;
      (** how far the coupler may shift a frame in time while
          reshaping, in bit times *)
  rho_max : float;  (** fastest oscillator rate in the cluster *)
  rho_min : float;  (** slowest oscillator rate in the cluster *)
}

val candidate_key : candidate -> string
(** A compact, unique, deterministic label
    (["small-shifting/b5/w2077/s1/r1.0002:1"]) — the identity used for
    dedup and the report tables. *)

val pp_candidate : Format.formatter -> candidate -> unit
val candidate_to_json : candidate -> Json.t

type t = {
  feature_sets : Guardian.Feature_set.t list;
  buffer_bits : int list;
  window_bits : int list;
  shift_bits : int list;
  clock_spreads : (float * float) list;  (** (rho_max, rho_min) pairs *)
  f_min : int;  (** shortest frame of the schedule, bits *)
  f_max : int;  (** longest frame of the schedule, bits *)
  le : int;  (** line-encoding overhead, bits *)
}
(** An axis-aligned grid plus the frame/encoding parameters shared by
    every candidate (the TTP/C values from
    {!Analysis.Frames_catalog}). *)

val default : unit -> t
(** The committed sweep: all four authority levels crossed with buffer
    budgets around the Section 6 bounds (0 … beyond [f_max]), window
    widths straddling [f_max], shift allowances, and clock spreads from
    perfect crystals through the commodity-oscillator and worked-example
    deltas up to an infeasible 2:1 — 4800 points. *)

val size : t -> int
val candidate_at : t -> int -> candidate
(** The [i]-th point of {!enumerate}'s order.
    @raise Invalid_argument out of range. *)

val enumerate : t -> candidate list
(** Deterministic lexicographic enumeration: feature set is the major
    axis, then buffer, window, shift, clock spread. *)

val sample : seed:int -> count:int -> t -> candidate list
(** [count] distinct candidates drawn by a PRNG seeded from [seed] (and
    the space dimensions), returned in enumeration order — so a sample
    is a deterministic sub-sequence of {!enumerate}. The whole space
    when [count >= size]. *)

val paper_candidates : t -> candidate list
(** The four Section 5 designs as points of this space, provisioned
    exactly at their Section 6 requirement: a passive hub with nothing,
    time windows at commodity clock spread, small shifting at the
    minimal buffer (ceil B_min) and shift, full shifting at a whole
    [f_max] frame. These are the anchors every synthesis run keeps in
    its candidate list so the frontier can be compared against the
    paper regardless of sampling. *)
