(** The model-checking stage: lower each surviving candidate to a
    Section 5 configuration and verify the safety property, either on
    the in-process portfolio pool or as wire traffic against a running
    verification daemon.

    Candidates of the same authority level lower to the same
    {!Tta_model.Configs.t} — the buffer/window/shift budgets are
    physical-layer provisioning that the analytic pre-filter already
    judged, while the protocol-logic consequences of the authority
    level are what the model checker decides. The direct path therefore
    deduplicates configurations and runs each once on the pool; the
    service path sends one request per candidate on purpose — a sweep
    is near-miss traffic by construction (few model families, many
    bounds), which is exactly what the daemon's warm session pool
    (doc/sessions.md) is built for, and each answer's
    [reused_session]/[warm_depth] attribution is recorded per
    candidate. *)

type verdict =
  | Upheld  (** the safety property holds *)
  | Breached of int  (** violated, with the counterexample length *)
  | Undetermined of string  (** no conclusive verdict; the detail *)

val verdict_label : verdict -> string
(** ["upheld"] / ["breached"] / ["undetermined"]. *)

type outcome = {
  candidate : Space.candidate;
  config : Tta_model.Configs.t;  (** what the candidate lowered to *)
  verdict : verdict;
  reused_session : bool;
      (** service path only: the answer ran on a warm pooled session *)
  warm_depth : int;
      (** service path only: the session's unrolling depth at checkout *)
}

val lower : nodes:int -> Space.candidate -> Tta_model.Configs.t
(** The candidate's authority level as the paper's named Section 5
    configuration (full shifting with the paper's one-replay budget). *)

val direct :
  ?domains:int ->
  ?supervisor:Resilience.Supervisor.policy ->
  ?faults:Resilience.Faults.t ->
  ?depth:int ->
  nodes:int ->
  Space.candidate list ->
  outcome list
(** Check candidates on the in-process {!Portfolio} pool: one BDD
    reachability job per {e distinct} lowered configuration
    ([depth] defaults to 100, conclusive at these cluster sizes), then
    the shared verdict mapped back onto every candidate. Outcomes in
    input order; [reused_session] is always [false] here. *)

val via_service :
  ?depth:int ->
  ?depth_spread:int ->
  nodes:int ->
  Service.Server.addr ->
  Space.candidate list ->
  outcome list
(** Check candidates against a running daemon over one connection:
    sequential JSON-lines requests, engine [bmc] (the session-backed
    path), one request per candidate. Request [i] asks depth
    [depth + 2·(i mod depth_spread)] (defaults 20 and 3) — a bound
    ratchet, so consecutive same-family requests are near misses that
    extend a warm session instead of coalescing into one computation.
    Non-answer responses (overloaded, cancelled, error) and garbled
    lines degrade to [Undetermined]; connection failures raise
    [Unix.Unix_error]. *)
