(** The containment-versus-cost Pareto frontier over checked
    candidates.

    {b Objectives} (more is better): how many of the paper's threat
    classes the authority level contains — babbling idiot and in-slot
    masquerading (time windows), slightly-off-specification faults
    (reshaping), wrong C-states and masquerading cold-start frames
    (semantic analysis) — and whether the model checker upheld the
    safety property for the lowered configuration (full shifting
    famously does not: the replay counterexample).

    {b Costs} (less is better): provisioned buffer bits and the
    authority rank itself — centralized authority is what the paper
    trades against, not a free capability.

    With these axes the paper's four Section 5 designs are mutually
    non-dominated: each step up the authority ladder buys containment
    the previous level lacks, at strictly higher cost (and, at the
    top, at the price of the replay breach). An over-provisioned
    candidate of the same level is dominated by the minimally
    provisioned one and pruned. *)

type objectives = {
  threats : int;  (** threat classes contained, 0–5 *)
  upheld : bool;  (** the model checker upheld the safety property *)
}

type costs = {
  buffer_bits : int;
  authority : int;  (** {!Guardian.Feature_set.authority_rank} *)
}

type point = {
  candidate : Space.candidate;
  objectives : objectives;
  costs : costs;
  faults_contained : (Guardian.Fault.t * bool) list;
      (** per paper fault mode: is it contained by this design —
          impossible at this authority level, or possible but the
          property still holds *)
  verdict : Check.verdict;
}

val threats_contained : Guardian.Feature_set.t -> int
(** Threat classes the authority level shuts out: 0 (passive), 2
    (time windows), 3 (+SOS), 5 (+semantic analysis). *)

val point_of_outcome : Check.outcome -> point

val dominates : point -> point -> bool
(** [dominates a b]: [a] is no worse than [b] on every objective and
    cost, and strictly better on at least one. *)

val frontier : point list -> point list
(** The non-dominated points, in input order, with identical
    (objectives, costs) signatures deduplicated to their first
    representative — so a deterministic candidate order yields a
    deterministic frontier. *)

val signature : point -> int * bool * int * int
(** (threats, upheld, buffer_bits, authority) — the dedup key. *)

val to_json : point -> Json.t
val pp_table : Format.formatter -> point list -> unit
