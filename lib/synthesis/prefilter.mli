(** The analytic pre-filter: the Section 6 envelope applied to a
    candidate before any model checking.

    Equations (1)–(10) of the paper (implemented in
    {!Analysis.Buffer}) bound what a guardian of a given authority
    level physically needs — buffer bits against reshaping (eq. 1),
    the passive-channel cap of one short frame (eq. 3), the clock-ratio
    envelope that makes both satisfiable at once (eqs. 4/7/10) — and
    what its time window and shift allowance must admit. A candidate
    that violates any of them cannot work no matter what the model
    checker says about the protocol logic, so the synthesizer rejects
    it here, for the cost of a few float operations instead of a BDD
    fixpoint. *)

type rejection =
  | Clock_spread
      (** the (rho_max, rho_min) pair is not a valid clock spread —
          equation (2) has no value *)
  | Buffer_below_min
      (** equation (1): the provisioned buffer is below what the
          authority level must store (ceil B_min for a reshaping
          coupler, a whole [f_max] frame for full-frame buffering) *)
  | Buffer_above_max
      (** equation (3): a coupler that must {e not} store a complete
          frame (every level below full shifting) is provisioned beyond
          B_max = f_min − 1 *)
  | Clock_ratio
      (** equations (4)/(7)/(10): the clock spread admits no buffer
          size at all for this frame range
          ({!Analysis.Buffer.feasible} is false) *)
  | Window_width
      (** the bus-access window is narrower than the longest frame plus
          the in-spec skew (or shift allowance) it must admit *)
  | Shift_allowance
      (** a reshaping coupler whose shift allowance cannot absorb the
          in-spec clock skew over the longest frame *)

val all_rejections : rejection list
val to_string : rejection -> string
(** Stable report keys, tagged with the equation they come from
    (["eq1-buffer-below-b-min"], …). *)

val skew_bits : delta:float -> f_max:int -> int
(** ceil(delta · f_max): how many bit times an in-spec slow/fast clock
    pair drifts apart over the longest frame. *)

val required_buffer_bits : Space.t -> Space.candidate -> int
(** The equation-(1) floor for the candidate's authority level: 0 when
    nothing is reshaped, ceil B_min for small shifting, [f_max] for
    full-frame buffering.
    @raise Invalid_argument on an invalid clock spread. *)

val check : Space.t -> Space.candidate -> rejection list
(** Every envelope violation of the candidate, in {!all_rejections}
    order; [[]] means the candidate survives to the model checker. *)

val feasible : Space.t -> Space.candidate -> bool
(** [check space c = []]. *)

val split :
  Space.t ->
  Space.candidate list ->
  Space.candidate list
  * (Space.candidate * rejection list) list
  * (string * int) list
(** Partition candidates into survivors and rejects (both in input
    order), plus per-equation rejection counts keyed by {!to_string}
    (every key present, zero counts included). A candidate violating
    several equations is counted once per violated equation. *)
