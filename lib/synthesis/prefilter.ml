(* The Section 6 envelope as a candidate filter: reject on closed-form
   equations before spending a model-checker run. *)

type rejection =
  | Clock_spread
  | Buffer_below_min
  | Buffer_above_max
  | Clock_ratio
  | Window_width
  | Shift_allowance

let all_rejections =
  [
    Clock_spread;
    Buffer_below_min;
    Buffer_above_max;
    Clock_ratio;
    Window_width;
    Shift_allowance;
  ]

let to_string = function
  | Clock_spread -> "eq2-clock-spread"
  | Buffer_below_min -> "eq1-buffer-below-b-min"
  | Buffer_above_max -> "eq3-buffer-above-b-max"
  | Clock_ratio -> "eq10-clock-ratio"
  | Window_width -> "window-width"
  | Shift_allowance -> "shift-allowance"

let skew_bits ~delta ~f_max = int_of_float (ceil (delta *. float_of_int f_max))

let required_buffer_bits (s : Space.t) (c : Space.candidate) =
  let open Guardian.Feature_set in
  if buffers_full_frames c.feature_set then s.f_max
  else if reshapes_sos c.feature_set then
    let delta = Analysis.Buffer.delta ~rho_max:c.rho_max ~rho_min:c.rho_min in
    int_of_float (ceil (Analysis.Buffer.b_min ~le:s.le ~delta ~f_max:s.f_max))
  else 0

let check (s : Space.t) (c : Space.candidate) =
  if c.rho_min <= 0.0 || c.rho_max < c.rho_min then [ Clock_spread ]
  else begin
    let open Guardian.Feature_set in
    let fs = c.feature_set in
    let delta = Analysis.Buffer.delta ~rho_max:c.rho_max ~rho_min:c.rho_min in
    let skew = skew_bits ~delta ~f_max:s.f_max in
    (* A full-frame buffer decouples forwarding from reception, so the
       eq. (3) cap, the eq. (10) envelope and the skew/shift slack only
       bind the levels below full shifting. *)
    let checks =
      [
        (Buffer_below_min, c.buffer_bits < required_buffer_bits s c);
        ( Buffer_above_max,
          (not (buffers_full_frames fs))
          && c.buffer_bits > Analysis.Buffer.b_max ~f_min:s.f_min );
        ( Clock_ratio,
          reshapes_sos fs
          && (not (buffers_full_frames fs))
          && not
               (Analysis.Buffer.feasible ~f_min:s.f_min ~f_max:s.f_max ~le:s.le
                  ~rho_max:c.rho_max ~rho_min:c.rho_min) );
        ( Window_width,
          enforces_time_windows fs
          && c.window_bits
             < s.f_max
               +
               if buffers_full_frames fs then 0
               else if reshapes_sos fs then c.shift_bits
               else skew );
        ( Shift_allowance,
          reshapes_sos fs
          && (not (buffers_full_frames fs))
          && c.shift_bits < skew );
      ]
    in
    List.filter_map (fun (r, bad) -> if bad then Some r else None) checks
  end

let feasible s c = check s c = []

let split s cands =
  let counts = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace counts r 0) all_rejections;
  let survivors, rejects =
    List.fold_left
      (fun (ok, bad) c ->
        match check s c with
        | [] -> (c :: ok, bad)
        | rs ->
            List.iter
              (fun r -> Hashtbl.replace counts r (Hashtbl.find counts r + 1))
              rs;
            (ok, (c, rs) :: bad))
      ([], []) cands
  in
  ( List.rev survivors,
    List.rev rejects,
    List.map (fun r -> (to_string r, Hashtbl.find counts r)) all_rejections )
