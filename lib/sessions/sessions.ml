(* The warm-session pool: live incremental BMC sessions keyed by family
   fingerprint, checked out exclusively and returned after each
   request. See sessions.mli and doc/sessions.md for the contract. *)

open Symkit
module Engine = Tta_model.Engine

type entry = {
  family : string;
  model : Model.t;
  enc : Enc.t;
  bmc : Bmc.t;
  mutable last_used : int;  (** pool sequence number at last check-in *)
}

type t = {
  lock : Mutex.t;
  capacity : int;
  warm : (string, entry list ref) Hashtbl.t;
  mutable seq : int;
  mutable nidle : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable discards : int;
}

type attribution = { reused : bool; warm_depth : int }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  discards : int;
  idle : int;
}

let create ?(capacity = 32) () =
  {
    lock = Mutex.create ();
    capacity = max 1 capacity;
    warm = Hashtbl.create 64;
    seq = 0;
    nidle = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    discards = 0;
  }

let family_of cfg = Model.fingerprint (Tta_model.Build.model cfg)

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        discards = t.discards;
        idle = t.nidle;
      })

(* Pop an idle entry of the family, if any. Exclusive by construction:
   a popped entry is invisible to other workers until checked back
   in. *)
let checkout t ~family cfg =
  let cached =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.warm family with
        | Some ({ contents = e :: rest } as r) ->
            r := rest;
            if rest = [] then Hashtbl.remove t.warm family;
            t.nidle <- t.nidle - 1;
            t.hits <- t.hits + 1;
            Some e
        | _ ->
            t.misses <- t.misses + 1;
            None)
  in
  match cached with
  | Some e -> (e, true)
  | None ->
      let model = Tta_model.Build.model cfg in
      let enc = Enc.create (Bdd.create_manager ()) model in
      let bmc = Bmc.create enc in
      ({ family; model; enc; bmc; last_used = 0 }, false)

(* Drop the globally least-recently-used idle entry. Called with the
   lock held. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun family r ->
      List.iter
        (fun e ->
          match !victim with
          | Some (_, v) when v.last_used <= e.last_used -> ()
          | _ -> victim := Some (family, e))
        !r)
    t.warm;
  match !victim with
  | None -> ()
  | Some (family, v) ->
      let r = Hashtbl.find t.warm family in
      r := List.filter (fun e -> e != v) !r;
      if !r = [] then Hashtbl.remove t.warm family;
      t.nidle <- t.nidle - 1;
      t.evictions <- t.evictions + 1

let checkin t e =
  Mutex.protect t.lock (fun () ->
      t.seq <- t.seq + 1;
      e.last_used <- t.seq;
      (match Hashtbl.find_opt t.warm e.family with
      | Some r -> r := e :: !r
      | None -> Hashtbl.add t.warm e.family (ref [ e ]));
      t.nidle <- t.nidle + 1;
      while t.nidle > t.capacity do
        evict_lru t
      done)

let discard t _e = Mutex.protect t.lock (fun () -> t.discards <- t.discards + 1)

let flush obs pairs = List.iter (fun (n, v) -> Obs.incr_by obs n v) pairs

(* Per-query counter deltas: the pooled session's counters are
   cumulative over its whole life, so diff a snapshot taken at
   checkout. *)
let delta before after =
  List.map
    (fun (name, v1) ->
      let v0 = try List.assoc name before with Not_found -> 0 in
      (name, v1 - v0))
    after

let run t ~engine ?(cancel = fun () -> false) ?obs ?family ~max_depth cfg =
  (match engine with
  | Engine.Sat_bmc | Engine.Sat_induction -> ()
  | _ ->
      invalid_arg
        (Printf.sprintf "Sessions.run: %s is not session-backed"
           (Engine.id_to_string engine)));
  let family = match family with Some f -> f | None -> family_of cfg in
  let entry, reused = checkout t ~family cfg in
  let warm_depth = Bmc.depth entry.bmc in
  let bad =
    Tta_model.Props.integrated_node_frozen ~nodes:cfg.Tta_model.Configs.nodes
  in
  let name = Engine.id_to_string engine in
  let obs =
    match obs with
    | Some o when Obs.enabled o -> o
    | _ -> Obs.Collector.track (Obs.Collector.create ()) name
  in
  let c0 = Bmc.counters entry.bmc in
  let verdict =
    try
      let sp = Obs.start obs ~args:[ ("engine", name) ] "engine.run" in
      Fun.protect
        ~finally:(fun () -> Obs.stop sp)
        (fun () ->
          match engine with
          | Engine.Sat_bmc -> (
              match
                Bmc.check_session ~max_depth ~cancel ~obs entry.bmc ~bad
              with
              | Bmc.Counterexample trace ->
                  Engine.Violated { trace; model = entry.model }
              | Bmc.No_counterexample (Some d) when d >= max_depth ->
                  Engine.Holds
                    {
                      detail =
                        Printf.sprintf "no counterexample up to depth %d" d;
                    }
              | Bmc.No_counterexample (Some d) ->
                  (* Cancelled mid-scan: the bounded claim stops short
                     of the requested bound — demoted exactly as the
                     portfolio demotes a cancelled BMC racer. *)
                  Engine.Unknown
                    {
                      detail =
                        Printf.sprintf
                          "cancelled: no counterexample up to depth %d (bound \
                           %d)"
                          d max_depth;
                    }
              | Bmc.No_counterexample None ->
                  Engine.Unknown
                    { detail = "cancelled before depth 0 completed" })
          | Engine.Sat_induction -> (
              (* A fresh step session per request; the base case runs on
                 the pooled warm BMC session (and deepens its memo for
                 future BMC queries of the family). *)
              let ind = Induction.create ~base:entry.bmc entry.enc ~bad in
              let r = Induction.check_session ~max_k:max_depth ~cancel ~obs ind in
              flush obs (Induction.step_counters ind);
              match r with
              | Induction.Refuted trace ->
                  Engine.Violated { trace; model = entry.model }
              | Induction.Proved k ->
                  Engine.Holds
                    { detail = Printf.sprintf "k-inductive at k = %d" k }
              | Induction.Unknown k ->
                  Engine.Unknown
                    {
                      detail =
                        Printf.sprintf
                          "not k-inductive up to k = %d (and no counterexample)"
                          k;
                    })
          | _ -> assert false)
    with e ->
      (* A raised run may leave the session in an inconsistent state:
         never return it to the pool. *)
      discard t entry;
      raise e
  in
  flush obs (delta c0 (Bmc.counters entry.bmc));
  Obs.incr_by obs "session.reused" (if reused then 1 else 0);
  Obs.incr_by obs "session.warm_depth" warm_depth;
  checkin t entry;
  ( { Engine.verdict; counters = Obs.counters obs },
    { reused; warm_depth } )
