(* The warm-session pool: live incremental BMC sessions keyed by family
   fingerprint, checked out exclusively and returned after each
   request. A client-supplied family only picks the bucket; every entry
   carries the fingerprint of the model it encodes, verified at
   checkout, so a stale or mismatched override can never serve solver
   state for a different configuration. See sessions.mli and
   doc/sessions.md for the contract. *)

open Symkit
module Engine = Tta_model.Engine

type entry = {
  family : string;  (** pool bucket key: the override, or [fp] *)
  fp : string;
      (** fingerprint of [model] — the state this entry actually
          encodes, verified against the request's at checkout *)
  model : Model.t;
  enc : Enc.t;
  bmc : Bmc.t;
  mutable last_used : int;  (** pool sequence number at last check-in *)
}

type t = {
  lock : Mutex.t;
  capacity : int;
  warm : (string, entry list ref) Hashtbl.t;
  mutable seq : int;
  mutable nidle : int;
  mutable hits : int;
  mutable misses : int;
  mutable mismatches : int;
  mutable evictions : int;
  mutable discards : int;
}

type attribution = { reused : bool; warm_depth : int; clean_depth : int }

exception Engine_failed of { message : string; clean_depth : int }

type stats = {
  hits : int;
  misses : int;
  mismatches : int;
  evictions : int;
  discards : int;
  idle : int;
}

let create ?(capacity = 32) () =
  {
    lock = Mutex.create ();
    capacity = max 1 capacity;
    warm = Hashtbl.create 64;
    seq = 0;
    nidle = 0;
    hits = 0;
    misses = 0;
    mismatches = 0;
    evictions = 0;
    discards = 0;
  }

let family_of cfg = Model.fingerprint (Tta_model.Build.model cfg)

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        mismatches = t.mismatches;
        evictions = t.evictions;
        discards = t.discards;
        idle = t.nidle;
      })

(* Pop an idle entry of the family whose fingerprint matches the
   request's model, if any. Exclusive by construction: a popped entry
   is invisible to other workers until checked back in. Entries whose
   fingerprint differs (the bucket was named by a [family] override
   covering other configurations) stay warm for the requests they
   belong to — handing one out would answer for the wrong model. *)
let checkout t ~family ~fp model =
  let cached =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.warm family with
        | Some r -> (
            let rec take acc = function
              | [] -> None
              | e :: rest when e.fp = fp -> Some (e, List.rev_append acc rest)
              | e :: rest -> take (e :: acc) rest
            in
            match take [] !r with
            | Some (e, rest) ->
                r := rest;
                if rest = [] then Hashtbl.remove t.warm family;
                t.nidle <- t.nidle - 1;
                t.hits <- t.hits + 1;
                Some e
            | None ->
                (* The bucket is never empty (removed at last pop), so
                   reaching here means every idle entry under this key
                   encodes a different model. *)
                t.mismatches <- t.mismatches + 1;
                t.misses <- t.misses + 1;
                None)
        | None ->
            t.misses <- t.misses + 1;
            None)
  in
  match cached with
  | Some e -> (e, true)
  | None ->
      let enc = Enc.create (Bdd.create_manager ()) model in
      let bmc = Bmc.create enc in
      ({ family; fp; model; enc; bmc; last_used = 0 }, false)

(* Drop the globally least-recently-used idle entry. Called with the
   lock held. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun family r ->
      List.iter
        (fun e ->
          match !victim with
          | Some (_, v) when v.last_used <= e.last_used -> ()
          | _ -> victim := Some (family, e))
        !r)
    t.warm;
  match !victim with
  | None -> ()
  | Some (family, v) ->
      let r = Hashtbl.find t.warm family in
      r := List.filter (fun e -> e != v) !r;
      if !r = [] then Hashtbl.remove t.warm family;
      t.nidle <- t.nidle - 1;
      t.evictions <- t.evictions + 1

let checkin t e =
  Mutex.protect t.lock (fun () ->
      t.seq <- t.seq + 1;
      e.last_used <- t.seq;
      (match Hashtbl.find_opt t.warm e.family with
      | Some r -> r := e :: !r
      | None -> Hashtbl.add t.warm e.family (ref [ e ]));
      t.nidle <- t.nidle + 1;
      while t.nidle > t.capacity do
        evict_lru t
      done)

let discard t _e = Mutex.protect t.lock (fun () -> t.discards <- t.discards + 1)

(* Read an idle entry's certified clean depth for [bad] without
   checking it out — a lock-held memo peek, so a request that never
   got to run (deadline already past) can still report certified
   content. [-1] when no matching idle entry exists. *)
let peek_clean_depth t ?family cfg =
  let model = Tta_model.Build.model cfg in
  let fp = Model.fingerprint model in
  let family = match family with Some f -> f | None -> fp in
  let bad =
    Tta_model.Props.integrated_node_frozen ~nodes:cfg.Tta_model.Configs.nodes
  in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.warm family with
      | None -> -1
      | Some r ->
          List.fold_left
            (fun acc e ->
              if e.fp = fp then max acc (Bmc.clean_depth e.bmc ~bad) else acc)
            (-1) !r)

let flush obs pairs = List.iter (fun (n, v) -> Obs.incr_by obs n v) pairs

(* Per-query counter deltas: the pooled session's counters are
   cumulative over its whole life, so diff a snapshot taken at
   checkout. *)
let delta before after =
  List.map
    (fun (name, v1) ->
      let v0 = try List.assoc name before with Not_found -> 0 in
      (name, v1 - v0))
    after

let run t ~engine ?(cancel = fun () -> false) ?obs ?family
    ?(supervisor = Resilience.Supervisor.default)
    ?(faults = Resilience.Faults.disabled) ~max_depth cfg =
  (match engine with
  | Engine.Sat_bmc | Engine.Sat_induction -> ()
  | _ ->
      invalid_arg
        (Printf.sprintf "Sessions.run: %s is not session-backed"
           (Engine.id_to_string engine)));
  let model = Tta_model.Build.model cfg in
  let fp = Model.fingerprint model in
  (* The override only names the bucket (e.g. a per-tenant key); the
     fingerprint carried by every entry is what guarantees the
     checked-out state encodes this request's model. *)
  let family = match family with Some f -> f | None -> fp in
  let bad =
    Tta_model.Props.integrated_node_frozen ~nodes:cfg.Tta_model.Configs.nodes
  in
  let name = Engine.id_to_string engine in
  let obs =
    match obs with
    | Some o when Obs.enabled o -> o
    | _ -> Obs.Collector.track (Obs.Collector.create ()) name
  in
  (* The engine's cooperative safepoint doubles as the Engine_step
     fault hook, exactly as under Resilience.Supervisor.run: an
     injected crash surfaces as an engine exception mid-run. *)
  let step_cancel () =
    Resilience.Faults.hit faults Resilience.Faults.Engine_step;
    cancel ()
  in
  (* Best certified clean depth across failed attempts — read before
     each failed session is discarded, so exhausted retries can still
     answer with content (the degraded verdict). *)
  let best_clean = ref (-1) in
  let attempt () =
    Resilience.Faults.hit faults Resilience.Faults.Engine_start;
    let entry, reused = checkout t ~family ~fp model in
    let warm_depth = Bmc.depth entry.bmc in
    let c0 = Bmc.counters entry.bmc in
    let verdict =
      try
        let sp = Obs.start obs ~args:[ ("engine", name) ] "engine.run" in
        Fun.protect
          ~finally:(fun () -> Obs.stop sp)
          (fun () ->
            match engine with
            | Engine.Sat_bmc -> (
                match
                  Bmc.check_session ~max_depth ~cancel:step_cancel ~obs
                    entry.bmc ~bad
                with
                | Bmc.Counterexample trace ->
                    Engine.Violated { trace; model = entry.model }
                | Bmc.No_counterexample (Some d) when d >= max_depth ->
                    Engine.Holds
                      {
                        detail =
                          Printf.sprintf "no counterexample up to depth %d" d;
                      }
                | Bmc.No_counterexample (Some d) ->
                    (* Cancelled mid-scan: the bounded claim stops short
                       of the requested bound — demoted exactly as the
                       portfolio demotes a cancelled BMC racer. *)
                    Engine.Unknown
                      {
                        detail =
                          Printf.sprintf
                            "cancelled: no counterexample up to depth %d \
                             (bound %d)"
                            d max_depth;
                      }
                | Bmc.No_counterexample None ->
                    Engine.Unknown
                      { detail = "cancelled before depth 0 completed" })
            | Engine.Sat_induction -> (
                (* A fresh step session per request; the base case runs
                   on the pooled warm BMC session (and deepens its memo
                   for future BMC queries of the family). *)
                let ind = Induction.create ~base:entry.bmc entry.enc ~bad in
                let r =
                  Induction.check_session ~max_k:max_depth
                    ~cancel:step_cancel ~obs ind
                in
                flush obs (Induction.step_counters ind);
                match r with
                | Induction.Refuted trace ->
                    Engine.Violated { trace; model = entry.model }
                | Induction.Proved k ->
                    Engine.Holds
                      { detail = Printf.sprintf "k-inductive at k = %d" k }
                | Induction.Unknown k ->
                    Engine.Unknown
                      {
                        detail =
                          Printf.sprintf
                            "not k-inductive up to k = %d (and no \
                             counterexample)"
                            k;
                      })
            | _ -> assert false)
      with e ->
        (* A raised run may leave the session in an inconsistent state:
           never return it to the pool — but read off how far it got
           first; the memo is plain data and survives any solver
           corruption the raise implies. *)
        best_clean := max !best_clean (Bmc.clean_depth entry.bmc ~bad);
        discard t entry;
        raise e
    in
    flush obs (delta c0 (Bmc.counters entry.bmc));
    Obs.incr_by obs "session.reused" (if reused then 1 else 0);
    Obs.incr_by obs "session.warm_depth" warm_depth;
    checkin t entry;
    ( verdict,
      { reused; warm_depth; clean_depth = Bmc.clean_depth entry.bmc ~bad } )
  in
  (* Supervised attempts, mirroring the portfolio path's policy: an
     engine exception (an injected chaos crash included) is retried
     with the policy's deterministic backoff, on a *fresh* checkout —
     the failed attempt's session was discarded above. The per-attempt
     watchdog is not applied here; sessions rely on the same
     cooperative [cancel] the scheduler already polls. *)
  let interruptible_sleep d =
    let rec go remaining =
      if remaining > 0. && not (cancel ()) then begin
        let step = Float.min 0.01 remaining in
        Unix.sleepf step;
        go (remaining -. step)
      end
    in
    go d
  in
  (* Exhausted retries surface as [Engine_failed] so the caller can
     recover the best certified depth along with the cause. *)
  let fail e =
    raise
      (Engine_failed
         { message = Printexc.to_string e; clean_depth = !best_clean })
  in
  let rec go attempt_no =
    match attempt () with
    | r -> r
    | exception e ->
        Obs.incr_by obs "supervisor.crashes" 1;
        if attempt_no > supervisor.Resilience.Supervisor.retries || cancel ()
        then fail e
        else begin
          Obs.incr_by obs "supervisor.retries" 1;
          interruptible_sleep
            (Resilience.Supervisor.backoff_delay supervisor (attempt_no - 1));
          if cancel () then fail e else go (attempt_no + 1)
        end
  in
  let verdict, attr = go 1 in
  ({ Engine.verdict; counters = Obs.counters obs }, attr)
