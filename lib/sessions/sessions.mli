(** A pool of live incremental solver sessions, keyed by family
    fingerprint.

    A {e family} is the model structure modulo bound and property —
    concretely {!Symkit.Model.fingerprint} of the compiled model, which
    hashes the variable declarations, initial constraints and
    transition relation but not the query's depth. Requests from the
    same family (the service tier's "near-miss" traffic: same
    configuration, different bound) check out a warm {!Symkit.Bmc}
    session and reuse its BDD compilation, CNF unrolling, learned
    clauses and per-property memo instead of starting cold;
    k-induction requests warm-start their base case from the same
    session.

    Entries are checked out {e exclusively} (a session is a
    single-threaded stateful object); concurrent requests for one
    family get independent entries. Idle entries are evicted
    least-recently-used past the pool capacity. See doc/sessions.md. *)

type t
(** A session pool (thread-safe; entries are used by one worker at a
    time). *)

val create : ?capacity:int -> unit -> t
(** [capacity] (default 32) bounds the {e idle} entries kept warm; the
    least recently used are dropped past it. Checked-out entries are
    not counted. *)

val family_of : Tta_model.Configs.t -> string
(** The configuration's family fingerprint:
    {!Symkit.Model.fingerprint} of its compiled model. *)

type attribution = {
  reused : bool;  (** the request ran on a pooled warm session *)
  warm_depth : int;
      (** the session's unrolling depth at checkout (0 when cold) *)
  clean_depth : int;
      (** the largest depth the session has certified
          counterexample-free for the request's property after the run
          ([-1] when depth 0 never finished) — the content of a
          degraded verdict when the run was cancelled short of its
          bound *)
}
(** Where a request's solver state came from — surfaced to clients in
    the wire protocol's [reused_session]/[warm_depth] response
    fields (and [clean_depth] on degraded responses). *)

exception Engine_failed of { message : string; clean_depth : int }
(** Raised by {!run} when every supervised attempt failed: [message]
    is the last underlying exception rendered, [clean_depth] the best
    certified depth across the failed attempts' sessions (each read
    just before its discard; [-1] when nothing was certified). The
    service turns this into a [status:"degraded"] response when
    [clean_depth >= 0]. *)

val run :
  t ->
  engine:Tta_model.Engine.id ->
  ?cancel:(unit -> bool) ->
  ?obs:Obs.t ->
  ?family:string ->
  ?supervisor:Resilience.Supervisor.policy ->
  ?faults:Resilience.Faults.t ->
  max_depth:int ->
  Tta_model.Configs.t ->
  Tta_model.Engine.result * attribution
(** Run a SAT-backed engine ([Sat_bmc] or [Sat_induction] — raises
    [Invalid_argument] otherwise) for the configuration's safety
    property on a pooled session of its family. [family] overrides the
    pool {e bucket} only (e.g. a per-tenant key): every entry records
    the fingerprint of the model it actually encodes, and checkout
    verifies it against the request's, so a stale or mismatched
    override is a miss — never another configuration's solver state.
    Verdicts equal a cold-start run at the same bound: memoized clean
    depths answer instantly, counterexamples are memoized at their
    minimal depth, and a cancelled partial scan degrades to [Unknown]
    exactly like the portfolio's demotion of cancelled bounded claims.
    The entry is returned to the pool afterwards, or dropped if the
    run raised.

    The run is supervised like the portfolio path: [faults] hooks
    {!Resilience.Faults.Engine_start} before every attempt and
    {!Resilience.Faults.Engine_step} into the cooperative cancel
    polls, and an engine exception is retried up to
    [supervisor.retries] times (default policy) with the policy's
    deterministic backoff — each retry on a fresh checkout, the failed
    session having been discarded. The policy's per-attempt watchdog
    is not applied on this path; cancellation stays cooperative via
    [cancel]. Once retries are exhausted, {!Engine_failed} is raised
    carrying the last exception's message and the best clean depth
    the failed attempts certified. *)

val peek_clean_depth : t -> ?family:string -> Tta_model.Configs.t -> int
(** The best certified clean depth for the configuration's safety
    property across the pool's {e idle} entries of its family, without
    checking anything out ([-1] when no matching idle entry, or none
    certified depth 0). Lets a request that never ran — deadline
    already past at dequeue — still degrade to an answer with
    content. *)

type stats = {
  hits : int;  (** checkouts served by a warm entry *)
  misses : int;  (** checkouts that built a fresh entry *)
  mismatches : int;
      (** misses where the [family] bucket held only entries whose
          fingerprint differed from the request's model (stale or
          wrong override) *)
  evictions : int;  (** idle entries dropped by the LRU bound *)
  discards : int;  (** entries dropped after a failed run *)
  idle : int;  (** entries currently warm in the pool *)
}

val stats : t -> stats
