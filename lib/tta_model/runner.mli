(** Running the paper's experiments against the formal model.

    {b Compatibility surface.} The engines themselves now live behind
    the unified {!Engine} interface; {!check} and {!check_instrumented}
    are thin wrappers kept so existing callers keep building. New code
    should use [(Engine.get id).run] directly — it returns the full
    counter set and accepts an observability handle, neither of which
    fits through this module's older types. *)

type engine = Engine.id = Bdd_reach | Sat_bmc | Sat_induction | Explicit_bfs
(** Re-exported from {!Engine.id} so [Runner.Bdd_reach] etc. keep
    working. *)

val engine_to_string : engine -> string

val engine_of_string : string -> engine option
(** Accepts both the short CLI spellings ([bdd], [bmc], [induction],
    [explicit]) and the long names of {!engine_to_string}. *)

type verdict = Engine.verdict =
  | Holds of { detail : string }
      (** proved safe (BDD fixpoint, k-induction, exhaustive BFS) or no
          counterexample up to the bound (BMC) *)
  | Violated of { trace : Symkit.Model.state array; model : Symkit.Model.t }
  | Unknown of { detail : string }

type run_stats = {
  peak_bdd_nodes : int option;  (** BDD engine: largest reachable-set BDD *)
  sat_conflicts : int option;  (** SAT engines: conflicts analyzed *)
  explored_states : int option;  (** explicit engine: states visited *)
}
(** Legacy fixed-shape stats, projected out of {!Engine.result}
    counters ([reach.peak_nodes], [sat.conflicts], [explicit.states]).
    The open counter set is strictly richer — prefer it. *)

val check :
  ?cancel:(unit -> bool) ->
  ?engine:engine -> ?max_depth:int -> Configs.t -> verdict
(** [(Engine.get engine).run], keeping only the verdict. [max_depth]
    bounds BMC unrolling / BDD iterations / BFS depth. [cancel] is
    forwarded to the engine's cooperative-cancellation hook; a
    cancelled run returns its engine's inconclusive variant (for BMC,
    the bounded claim of the last completed depth — the portfolio
    demotes that to unknown when it observes the flag). *)

val check_instrumented :
  ?cancel:(unit -> bool) ->
  ?engine:engine -> ?max_depth:int -> Configs.t -> verdict * run_stats
(** Like {!check}, also projecting the legacy {!run_stats} triple out
    of the engine's counters. *)

val witness :
  ?max_depth:int -> Configs.t -> Symkit.Expr.t ->
  (Symkit.Model.state array * Symkit.Model.t) option
(** Shortest trace reaching a probe condition, if one exists within the
    bound. *)

val describe_trace :
  Symkit.Model.t -> Symkit.Model.state array -> nodes:int -> string
(** Compact human-oriented rendering: per step, each node's protocol
    state and slot plus the coupler fault activity. *)

val export_smv : Configs.t -> string -> unit
(** Write the configuration's model to a file in the SMV input
    language, with the safety property as an INVARSPEC — for inspection
    in the paper's original notation or independent validation by an
    external SMV implementation. *)
