(* The unified verification-engine interface: one [run] signature over
   the four engines, returning a verdict plus an open counter set. *)

open Symkit

type id = Bdd_reach | Sat_bmc | Sat_induction | Explicit_bfs

let id_to_string = function
  | Bdd_reach -> "bdd-reachability"
  | Sat_bmc -> "sat-bmc"
  | Sat_induction -> "sat-k-induction"
  | Explicit_bfs -> "explicit-bfs"

let id_of_string = function
  | "bdd" | "bdd-reachability" -> Some Bdd_reach
  | "bmc" | "sat-bmc" -> Some Sat_bmc
  | "induction" | "sat-k-induction" -> Some Sat_induction
  | "explicit" | "explicit-bfs" -> Some Explicit_bfs
  | _ -> None

type verdict =
  | Holds of { detail : string }
  | Violated of { trace : Model.state array; model : Model.t }
  | Unknown of { detail : string }

type result = { verdict : verdict; counters : (string * int) list }

type t = {
  id : id;
  name : string;
  doc : string;
  run :
    ?cancel:(unit -> bool) ->
    ?obs:Obs.t ->
    ?max_depth:int ->
    ?reach_tuning:Reach.tuning ->
    Configs.t ->
    result;
}

(* Explicit-state BFS keeps a hash table entry per visited state, so it
   needs a memory bound the symbolic engines don't; past it the verdict
   degrades to Unknown rather than claiming exhaustion. *)
let explicit_max_states = 2_000_000

let flush obs pairs = List.iter (fun (n, v) -> Obs.incr_by obs n v) pairs

(* Shared run wrapper: guarantee a live track (counters must flow into
   the telemetry even when nobody asked for a trace — a private
   collector serves as the counter store and is dropped once the totals
   are read), wrap the run in a root span, and account the GC. *)
let instrumented ~name impl ?(cancel = fun () -> false) ?obs ?(max_depth = 24)
    ?(reach_tuning = Reach.default_tuning) cfg =
  let obs =
    match obs with
    | Some o when Obs.enabled o -> o
    | _ -> Obs.Collector.track (Obs.Collector.create ()) name
  in
  let gc0 = Gc.quick_stat () in
  let sp = Obs.start obs ~args:[ ("engine", name) ] "engine.run" in
  (* Close the span even when the engine raises: a supervised retry
     reuses the track, and an unbalanced span would swallow the whole
     next attempt in the trace. *)
  let verdict =
    Fun.protect ~finally:(fun () -> Obs.stop sp) (fun () ->
        impl ~cancel ~obs ~max_depth ~reach_tuning cfg)
  in
  let gc1 = Gc.quick_stat () in
  Obs.incr_by obs "gc.minor_collections"
    (gc1.Gc.minor_collections - gc0.Gc.minor_collections);
  Obs.incr_by obs "gc.major_collections"
    (gc1.Gc.major_collections - gc0.Gc.major_collections);
  { verdict; counters = Obs.counters obs }

let bad_prop (cfg : Configs.t) =
  Props.integrated_node_frozen ~nodes:cfg.Configs.nodes

(* BDD memory-pressure gauges: flushed after every BDD-backed run so
   the portfolio/service telemetry (and [tta_served]'s metrics) expose
   the live and peak unique-table populations next to the GC counters.
   The names are pinned by a golden test in [test/test_obs.ml]. *)
let flush_bdd_gauges obs mgr =
  Obs.set_max obs "bdd.live_nodes" (Bdd.live_nodes mgr);
  Obs.set_max obs "bdd.peak_nodes" (Bdd.peak_nodes mgr)

let run_bdd ~cancel ~obs ~max_depth ~reach_tuning cfg =
  let model = Build.model cfg in
  let mgr = Bdd.create_manager () in
  let enc = Enc.create mgr model in
  let verdict =
    match
      Reach.check ~max_iterations:max_depth ~cancel ~obs ~tuning:reach_tuning
        enc ~bad:(bad_prop cfg)
    with
    | Reach.Safe stats ->
        Holds
          {
            detail =
              Printf.sprintf "proved safe: %d iterations, %.0f reachable states"
                stats.Reach.iterations stats.Reach.reachable_states;
          }
    | Reach.Unsafe (trace, _) -> Violated { trace; model }
    | Reach.Depth_exhausted stats ->
        Unknown
          {
            detail =
              Printf.sprintf "no fixpoint after %d iterations"
                stats.Reach.iterations;
          }
  in
  flush obs (Bdd.counters mgr);
  flush_bdd_gauges obs mgr;
  verdict

let run_bmc ~cancel ~obs ~max_depth ~reach_tuning:_ cfg =
  let model = Build.model cfg in
  let mgr = Bdd.create_manager () in
  let enc = Enc.create mgr model in
  let verdict =
    match Bmc.check ~max_depth ~cancel ~obs enc ~bad:(bad_prop cfg) with
    | Bmc.Counterexample trace -> Violated { trace; model }
    | Bmc.No_counterexample (Some d) ->
        Holds { detail = Printf.sprintf "no counterexample up to depth %d" d }
    | Bmc.No_counterexample None ->
        Unknown { detail = "cancelled before depth 0 completed" }
  in
  flush obs (Bdd.counters mgr);
  verdict

let run_induction ~cancel ~obs ~max_depth ~reach_tuning:_ cfg =
  let model = Build.model cfg in
  let mgr = Bdd.create_manager () in
  let enc = Enc.create mgr model in
  let verdict =
    match Induction.check ~max_k:max_depth ~cancel ~obs enc ~bad:(bad_prop cfg)
    with
    | Induction.Refuted trace -> Violated { trace; model }
    | Induction.Proved k ->
        Holds { detail = Printf.sprintf "k-inductive at k = %d" k }
    | Induction.Unknown k ->
        Unknown
          {
            detail =
              Printf.sprintf
                "not k-inductive up to k = %d (and no counterexample)" k;
          }
  in
  flush obs (Bdd.counters mgr);
  verdict

let run_explicit ~cancel ~obs ~max_depth ~reach_tuning:_ cfg =
  let ctx = Exec.make_ctx cfg in
  (* The executable twin's own model instance: structurally equal to
     [Build.model cfg], and the one its states index into. *)
  let model = Exec.model ctx in
  let bad = bad_prop cfg in
  let bad_state s = Model.eval_pred model bad s in
  match
    Explicit.search ~max_states:explicit_max_states ~max_depth ~cancel ~obs
      ~initial:[ Exec.initial ctx ]
      ~next:(Exec.successors ctx) ~bad:bad_state ()
  with
  | Explicit.Violation trace -> Violated { trace = Array.of_list trace; model }
  | Explicit.Exhausted { states; depth } ->
      Holds
        {
          detail =
            Printf.sprintf
              "explicit BFS exhausted the reachable space: %d states, depth %d"
              states depth;
        }
  | Explicit.Bounded { states; depth } ->
      Unknown
        {
          detail =
            Printf.sprintf "explicit BFS stopped at a bound: %d states, depth %d"
              states depth;
        }

let make id doc impl =
  let name = id_to_string id in
  { id; name; doc; run = instrumented ~name impl }

let all =
  [
    make Bdd_reach "symbolic fixpoint reachability over BDDs" run_bdd;
    make Sat_bmc "SAT bounded model checking (incremental unrolling)" run_bmc;
    make Sat_induction "SAT k-induction with simple-path constraints"
      run_induction;
    make Explicit_bfs "explicit-state BFS over the executable twin"
      run_explicit;
  ]

let get id = List.find (fun e -> e.id = id) all
let of_string s = Option.map get (id_of_string s)

(* ------------------------------------------------------------------ *)
(* Engine-independent helpers *)

(* Export the configuration's model in the SMV input language, with the
   safety property as an INVARSPEC. *)
let export_smv (cfg : Configs.t) path =
  let model = Build.model cfg in
  Smv_export.to_file
    ~invarspec:(Props.integrated_node_frozen ~nodes:cfg.Configs.nodes)
    model path

(* Reachability of a probe condition (sanity experiments): returns the
   witness trace if the condition is reachable. *)
let witness ?(max_depth = 24) (cfg : Configs.t) probe =
  let model = Build.model cfg in
  let enc = Enc.create (Bdd.create_manager ()) model in
  match Bmc.check ~max_depth enc ~bad:probe with
  | Bmc.Counterexample trace -> Some (trace, model)
  | Bmc.No_counterexample _ -> None

(* A compact, human-oriented rendering of a counterexample: per step,
   each node's protocol state and slot, plus the coupler fault
   activity. Used by the CLIs and EXPERIMENTS.md. *)
let describe_trace (model : Model.t) (trace : Model.state array) ~nodes =
  let buf = Buffer.create 1024 in
  let get s name = Model.state_get model s name in
  let node_letter i = String.make 1 (Char.chr (Char.code 'A' + i - 1)) in
  Array.iteri
    (fun step s ->
      Buffer.add_string buf (Printf.sprintf "step %2d:" (step + 1));
      for i = 1 to nodes do
        let state =
          match get s (Build.node_var i "state") with
          | Symkit.Expr.Sym st -> st
          | v -> Symkit.Expr.value_to_string v
        in
        let slot =
          match get s (Build.node_var i "slot") with
          | Symkit.Expr.Int k -> k
          | _ -> -1
        in
        Buffer.add_string buf
          (Printf.sprintf " %s=%s/s%d" (node_letter i) state slot)
      done;
      (match (get s "c0_fault", get s "c1_fault") with
      | Symkit.Expr.Sym "none", Symkit.Expr.Sym "none" -> ()
      | f0, f1 ->
          Buffer.add_string buf
            (Printf.sprintf "  [faults: c0=%s c1=%s]"
               (Symkit.Expr.value_to_string f0)
               (Symkit.Expr.value_to_string f1)));
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf
