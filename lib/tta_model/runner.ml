(** Compatibility wrapper over {!Engine} — see the interface. Nothing
    in the repository references this module any more except its own
    tests-of-record; new code goes through {!Engine} directly. *)

type engine = Engine.id = Bdd_reach | Sat_bmc | Sat_induction | Explicit_bfs

let engine_to_string = Engine.id_to_string
let engine_of_string = Engine.id_of_string

type verdict = Engine.verdict =
  | Holds of { detail : string }
  | Violated of { trace : Symkit.Model.state array; model : Symkit.Model.t }
  | Unknown of { detail : string }

type run_stats = {
  peak_bdd_nodes : int option;
  sat_conflicts : int option;
  explored_states : int option;
}

let check ?cancel ?(engine = Sat_bmc) ?max_depth (cfg : Configs.t) =
  ((Engine.get engine).Engine.run ?cancel ?max_depth cfg).Engine.verdict

let check_instrumented ?cancel ?(engine = Sat_bmc) ?max_depth (cfg : Configs.t)
    =
  let r = (Engine.get engine).Engine.run ?cancel ?max_depth cfg in
  let find name = List.assoc_opt name r.Engine.counters in
  ( r.Engine.verdict,
    {
      peak_bdd_nodes = find "reach.peak_nodes";
      sat_conflicts = find "sat.conflicts";
      explored_states = find "explicit.states";
    } )

let export_smv = Engine.export_smv
let witness = Engine.witness
let describe_trace = Engine.describe_trace
