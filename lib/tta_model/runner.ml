(** Running the paper's experiments against the formal model with the
    different engines. *)

open Symkit

type engine = Bdd_reach | Sat_bmc | Sat_induction | Explicit_bfs

let engine_to_string = function
  | Bdd_reach -> "bdd-reachability"
  | Sat_bmc -> "sat-bmc"
  | Sat_induction -> "sat-k-induction"
  | Explicit_bfs -> "explicit-bfs"

let engine_of_string = function
  | "bdd" | "bdd-reachability" -> Some Bdd_reach
  | "bmc" | "sat-bmc" -> Some Sat_bmc
  | "induction" | "sat-k-induction" -> Some Sat_induction
  | "explicit" | "explicit-bfs" -> Some Explicit_bfs
  | _ -> None

type verdict =
  | Holds of { detail : string }
      (** the safety property holds (proved, or no counterexample up to
          the bound for BMC) *)
  | Violated of { trace : Model.state array; model : Model.t }
  | Unknown of { detail : string }

type run_stats = {
  peak_bdd_nodes : int option;  (** BDD engine: largest reachable-set BDD *)
  sat_conflicts : int option;  (** SAT engines: conflicts analyzed *)
  explored_states : int option;  (** explicit engine: states visited *)
}

let no_stats =
  { peak_bdd_nodes = None; sat_conflicts = None; explored_states = None }

(* Explicit-state BFS keeps a hash table entry per visited state, so it
   needs a memory bound the symbolic engines don't; past it the verdict
   degrades to Unknown rather than claiming exhaustion. *)
let explicit_max_states = 2_000_000

let check_instrumented ?(cancel = fun () -> false) ?(engine = Sat_bmc)
    ?(max_depth = 24) (cfg : Configs.t) =
  let model = Build.model cfg in
  let bad = Props.integrated_node_frozen ~nodes:cfg.nodes in
  match engine with
  | Bdd_reach -> (
      let enc = Enc.create (Bdd.create_manager ()) model in
      match Reach.check ~max_iterations:max_depth ~cancel enc ~bad with
      | Reach.Safe stats ->
          ( Holds
              {
                detail =
                  Printf.sprintf
                    "proved safe: %d iterations, %.0f reachable states"
                    stats.Reach.iterations stats.Reach.reachable_states;
              },
            { no_stats with peak_bdd_nodes = Some stats.Reach.peak_nodes } )
      | Reach.Unsafe (trace, stats) ->
          ( Violated { trace; model },
            { no_stats with peak_bdd_nodes = Some stats.Reach.peak_nodes } )
      | Reach.Depth_exhausted stats ->
          ( Unknown
              {
                detail =
                  Printf.sprintf "no fixpoint after %d iterations"
                    stats.Reach.iterations;
              },
            { no_stats with peak_bdd_nodes = Some stats.Reach.peak_nodes } ))
  | Sat_bmc ->
      (* The loop of {!Bmc.check}, inlined over the session API so the
         solver's conflict count survives into the telemetry. *)
      let enc = Enc.create (Bdd.create_manager ()) model in
      let t = Bmc.create enc in
      let bad_bdd = Enc.pred enc bad in
      let rec go () =
        if cancel () then
          Bmc.No_counterexample (Bmc.depth t - 1)
        else
          match Bmc.check_at_current_depth t ~bad_bdd with
          | Some trace -> Bmc.Counterexample trace
          | None ->
              if Bmc.depth t >= max_depth then
                Bmc.No_counterexample (Bmc.depth t)
              else begin
                Bmc.extend t;
                go ()
              end
      in
      let result = go () in
      let stats =
        { no_stats with sat_conflicts = Some (Sat.conflicts (Bmc.solver t)) }
      in
      (match result with
      | Bmc.Counterexample trace -> (Violated { trace; model }, stats)
      | Bmc.No_counterexample d ->
          ( Holds
              { detail = Printf.sprintf "no counterexample up to depth %d" d },
            stats ))
  | Sat_induction -> (
      let enc = Enc.create (Bdd.create_manager ()) model in
      match Induction.check ~max_k:max_depth ~cancel enc ~bad with
      | Induction.Refuted trace -> (Violated { trace; model }, no_stats)
      | Induction.Proved k ->
          (Holds { detail = Printf.sprintf "k-inductive at k = %d" k }, no_stats)
      | Induction.Unknown k ->
          ( Unknown
              {
                detail =
                  Printf.sprintf
                    "not k-inductive up to k = %d (and no counterexample)" k;
              },
            no_stats ))
  | Explicit_bfs -> (
      let ctx = Exec.make_ctx cfg in
      (* The executable twin's own model instance: structurally equal
         to [Build.model cfg], and the one its states index into. *)
      let model = Exec.model ctx in
      let bad_state s = Model.eval_pred model bad s in
      match
        Explicit.search ~max_states:explicit_max_states ~max_depth ~cancel
          ~initial:[ Exec.initial ctx ]
          ~next:(Exec.successors ctx) ~bad:bad_state ()
      with
      | Explicit.Violation trace ->
          ( Violated { trace = Array.of_list trace; model },
            no_stats )
      | Explicit.Exhausted { states; depth } ->
          ( Holds
              {
                detail =
                  Printf.sprintf
                    "explicit BFS exhausted the reachable space: %d states, \
                     depth %d"
                    states depth;
              },
            { no_stats with explored_states = Some states } )
      | Explicit.Bounded { states; depth } ->
          ( Unknown
              {
                detail =
                  Printf.sprintf
                    "explicit BFS stopped at a bound: %d states, depth %d"
                    states depth;
              },
            { no_stats with explored_states = Some states } ))

let check ?cancel ?engine ?max_depth (cfg : Configs.t) =
  fst (check_instrumented ?cancel ?engine ?max_depth cfg)

(* Export the configuration's model in the SMV input language, with the
   safety property as an INVARSPEC. *)
let export_smv (cfg : Configs.t) path =
  let model = Build.model cfg in
  Smv_export.to_file
    ~invarspec:(Props.integrated_node_frozen ~nodes:cfg.Configs.nodes)
    model path

(* Reachability of a probe condition (sanity experiments): returns the
   witness trace if the condition is reachable. *)
let witness ?(max_depth = 24) (cfg : Configs.t) probe =
  let model = Build.model cfg in
  let enc = Enc.create (Bdd.create_manager ()) model in
  match Bmc.check ~max_depth enc ~bad:probe with
  | Bmc.Counterexample trace -> Some (trace, model)
  | Bmc.No_counterexample _ -> None

(* A compact, human-oriented rendering of a counterexample: per step,
   each node's protocol state and slot, plus the coupler fault
   activity. Used by the CLI and EXPERIMENTS.md. *)
let describe_trace (model : Model.t) (trace : Model.state array) ~nodes =
  let buf = Buffer.create 1024 in
  let get s name = Model.state_get model s name in
  let node_letter i = String.make 1 (Char.chr (Char.code 'A' + i - 1)) in
  Array.iteri
    (fun step s ->
      Buffer.add_string buf (Printf.sprintf "step %2d:" (step + 1));
      for i = 1 to nodes do
        let state =
          match get s (Build.node_var i "state") with
          | Symkit.Expr.Sym st -> st
          | v -> Symkit.Expr.value_to_string v
        in
        let slot =
          match get s (Build.node_var i "slot") with
          | Symkit.Expr.Int k -> k
          | _ -> -1
        in
        Buffer.add_string buf
          (Printf.sprintf " %s=%s/s%d" (node_letter i) state slot)
      done;
      (match (get s "c0_fault", get s "c1_fault") with
      | Symkit.Expr.Sym "none", Symkit.Expr.Sym "none" -> ()
      | f0, f1 ->
          Buffer.add_string buf
            (Printf.sprintf "  [faults: c0=%s c1=%s]"
               (Symkit.Expr.value_to_string f0)
               (Symkit.Expr.value_to_string f1)));
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf
