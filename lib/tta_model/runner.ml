(** Running the paper's experiments against the formal model.

    The engine implementations have moved to {!Engine}; this module
    keeps the historical entry points alive as thin wrappers and hosts
    the engine-independent helpers (SMV export, probe witnesses, trace
    rendering). *)

open Symkit

type engine = Engine.id = Bdd_reach | Sat_bmc | Sat_induction | Explicit_bfs

let engine_to_string = Engine.id_to_string
let engine_of_string = Engine.id_of_string

type verdict = Engine.verdict =
  | Holds of { detail : string }
  | Violated of { trace : Model.state array; model : Model.t }
  | Unknown of { detail : string }

type run_stats = {
  peak_bdd_nodes : int option;
  sat_conflicts : int option;
  explored_states : int option;
}

let check ?cancel ?(engine = Sat_bmc) ?max_depth (cfg : Configs.t) =
  ((Engine.get engine).Engine.run ?cancel ?max_depth cfg).Engine.verdict

let check_instrumented ?cancel ?(engine = Sat_bmc) ?max_depth (cfg : Configs.t)
    =
  let r = (Engine.get engine).Engine.run ?cancel ?max_depth cfg in
  let find name = List.assoc_opt name r.Engine.counters in
  ( r.Engine.verdict,
    {
      peak_bdd_nodes = find "reach.peak_nodes";
      sat_conflicts = find "sat.conflicts";
      explored_states = find "explicit.states";
    } )

(* Export the configuration's model in the SMV input language, with the
   safety property as an INVARSPEC. *)
let export_smv (cfg : Configs.t) path =
  let model = Build.model cfg in
  Smv_export.to_file
    ~invarspec:(Props.integrated_node_frozen ~nodes:cfg.Configs.nodes)
    model path

(* Reachability of a probe condition (sanity experiments): returns the
   witness trace if the condition is reachable. *)
let witness ?(max_depth = 24) (cfg : Configs.t) probe =
  let model = Build.model cfg in
  let enc = Enc.create (Bdd.create_manager ()) model in
  match Bmc.check ~max_depth enc ~bad:probe with
  | Bmc.Counterexample trace -> Some (trace, model)
  | Bmc.No_counterexample _ -> None

(* A compact, human-oriented rendering of a counterexample: per step,
   each node's protocol state and slot, plus the coupler fault
   activity. Used by the CLI and EXPERIMENTS.md. *)
let describe_trace (model : Model.t) (trace : Model.state array) ~nodes =
  let buf = Buffer.create 1024 in
  let get s name = Model.state_get model s name in
  let node_letter i = String.make 1 (Char.chr (Char.code 'A' + i - 1)) in
  Array.iteri
    (fun step s ->
      Buffer.add_string buf (Printf.sprintf "step %2d:" (step + 1));
      for i = 1 to nodes do
        let state =
          match get s (Build.node_var i "state") with
          | Symkit.Expr.Sym st -> st
          | v -> Symkit.Expr.value_to_string v
        in
        let slot =
          match get s (Build.node_var i "slot") with
          | Symkit.Expr.Int k -> k
          | _ -> -1
        in
        Buffer.add_string buf
          (Printf.sprintf " %s=%s/s%d" (node_letter i) state slot)
      done;
      (match (get s "c0_fault", get s "c1_fault") with
      | Symkit.Expr.Sym "none", Symkit.Expr.Sym "none" -> ()
      | f0, f1 ->
          Buffer.add_string buf
            (Printf.sprintf "  [faults: c0=%s c1=%s]"
               (Symkit.Expr.value_to_string f0)
               (Symkit.Expr.value_to_string f1)));
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf
