(** The unified verification-engine interface.

    Every engine — BDD fixpoint reachability, SAT bounded model
    checking, SAT k-induction and the explicit-state BFS cross-check —
    is exposed as one value of type {!t} with a common [run] signature,
    so the portfolio, the CLIs and the benchmark harness drive all of
    them through the same code path. Each run returns its {!verdict}
    together with an open-ended counter set; passing [?obs] additionally
    streams spans and metrics into a live {!Obs.Collector} track. *)

type id = Bdd_reach | Sat_bmc | Sat_induction | Explicit_bfs

val id_to_string : id -> string
(** The engine's long name, e.g. ["bdd-reachability"]. *)

val id_of_string : string -> id option
(** Accepts both the short CLI spellings ([bdd], [bmc], [induction],
    [explicit]) and the long names of {!id_to_string}. *)

type verdict =
  | Holds of { detail : string }
      (** proved safe (BDD fixpoint, k-induction, exhaustive BFS) or no
          counterexample up to the bound (BMC) *)
  | Violated of { trace : Symkit.Model.state array; model : Symkit.Model.t }
  | Unknown of { detail : string }

type result = {
  verdict : verdict;
  counters : (string * int) list;
      (** the run's effort counters and gauge high-water marks, sorted
          by name — e.g. [sat.conflicts], [reach.peak_nodes],
          [explicit.states], [bdd.cache_hits], [gc.minor_collections].
          The set is open: engines add entries without an interface
          change. *)
}

type t = {
  id : id;
  name : string;  (** = [id_to_string id] *)
  doc : string;  (** one-line description for [--help] listings *)
  run :
    ?cancel:(unit -> bool) ->
    ?obs:Obs.t ->
    ?max_depth:int ->
    ?reach_tuning:Symkit.Reach.tuning ->
    Configs.t ->
    result;
      (** Check the paper's safety property against a configuration.
          [max_depth] (default 24) bounds BMC unrolling / BDD fixpoint
          iterations / induction k / BFS depth. [cancel] is the
          cooperative-cancellation hook polled by every engine's outer
          loop; a cancelled run returns its engine's inconclusive
          variant. [obs] names the track spans and metrics are written
          to; when absent (or {!Obs.disabled}), counters are still
          collected — on a private track that is dropped once
          [result.counters] has been read — but no trace is kept.
          [reach_tuning] (default {!Symkit.Reach.default_tuning})
          selects the BDD engine's image-computation strategy; the
          other engines ignore it. *)
}

val all : t list
(** Every engine, in the portfolio's default priority order. *)

val get : id -> t

val of_string : string -> t option
(** [of_string s] = [Option.map get (id_of_string s)]. *)

val explicit_max_states : int
(** Memory bound of the explicit-state engine: past it the verdict
    degrades to {!Unknown} rather than claiming exhaustion. *)

(** {1 Engine-independent helpers} *)

val witness :
  ?max_depth:int -> Configs.t -> Symkit.Expr.t ->
  (Symkit.Model.state array * Symkit.Model.t) option
(** Shortest trace reaching a probe condition, if one exists within the
    bound. *)

val describe_trace :
  Symkit.Model.t -> Symkit.Model.state array -> nodes:int -> string
(** Compact human-oriented rendering: per step, each node's protocol
    state and slot plus the coupler fault activity. *)

val export_smv : Configs.t -> string -> unit
(** Write the configuration's model to a file in the SMV input
    language, with the safety property as an INVARSPEC — for inspection
    in the paper's original notation or independent validation by an
    external SMV implementation. *)
