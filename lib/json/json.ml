(* A minimal JSON tree, writer and parser — see the interface for the
   supported subset. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if Float.is_nan f || Float.abs f = infinity then
    (* JSON has no NaN/infinity; null is the conventional degradation. *)
    "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let pad depth =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            go (depth + 1) item)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            escape_string buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) item)
          fields;
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser: plain recursive descent over the string. *)

exception Fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   Buffer.add_char buf
                     (if code < 0x80 then Char.chr code else '?');
                   pos := !pos + 5
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %s" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields (f :: acc)
            | Some '}' -> advance (); Obj (List.rev (f :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function List items -> items | _ -> []
let string_value = function String s -> Some s | _ -> None
let int_value = function Int i -> Some i | _ -> None

let float_value = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let bool_value = function Bool b -> Some b | _ -> None
