(** A minimal JSON tree, writer and parser.

    The repository's one JSON surface: the portfolio's result cache and
    telemetry dumps, the observability exporters ({!Obs}), and the
    benchmark trajectory file all emit through this module — the
    repository deliberately has no external JSON dependency. The
    writer emits valid JSON (UTF-8 passed through, control characters
    escaped); the parser accepts what the writer emits plus ordinary
    interchange JSON ([\uXXXX] escapes are decoded for the ASCII range
    and replaced by ['?'] otherwise). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [pretty] inserts newlines and two-space indentation. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error carries an offset. *)

(** {1 Accessors} (total: [None]/[[]] on shape mismatch) *)

val member : string -> t -> t option
val to_list : t -> t list
val string_value : t -> string option
val int_value : t -> int option
val float_value : t -> float option
val bool_value : t -> bool option
