(* Per-worker circuit breaker: a count-window state machine. See
   breaker.mli for the states and the health-ping interplay. *)

type state = Closed | Open | Half_open

type t = {
  window : int;
  threshold : int;
  outcomes : bool Queue.t; (* last [<= window] outcomes, true = ok *)
  mutable failures : int;  (* failures currently in [outcomes] *)
  mutable st : state;
  mutable probing : bool;  (* Half_open: probe dispatched, outcome pending *)
  mutable opens : int;
}

let create ~window ?threshold () =
  let threshold = match threshold with Some u -> u | None -> max 1 (window / 2) in
  if window <= 0 then invalid_arg "Breaker.create: window must be positive";
  if threshold <= 0 || threshold > window then
    invalid_arg "Breaker.create: need 0 < threshold <= window";
  {
    window;
    threshold;
    outcomes = Queue.create ();
    failures = 0;
    st = Closed;
    probing = false;
    opens = 0;
  }

let trip t =
  t.st <- Open;
  t.probing <- false;
  Queue.clear t.outcomes;
  t.failures <- 0;
  t.opens <- t.opens + 1

let record t ~ok =
  match t.st with
  | Open -> () (* a straggler from before the trip; no new evidence *)
  | Half_open -> if ok then (t.st <- Closed; t.probing <- false) else trip t
  | Closed ->
      Queue.push ok t.outcomes;
      if not ok then t.failures <- t.failures + 1;
      if Queue.length t.outcomes > t.window then
        if not (Queue.pop t.outcomes) then t.failures <- t.failures - 1;
      if t.failures >= t.threshold then trip t

let note_pong t = if t.st = Open then (t.st <- Half_open; t.probing <- false)

let admits t =
  match t.st with
  | Closed -> true
  | Open -> false
  | Half_open -> not t.probing

let probe_started t = if t.st = Half_open then t.probing <- true

let reset t =
  t.st <- Closed;
  t.probing <- false;
  Queue.clear t.outcomes;
  t.failures <- 0

let state t = t.st
let opens t = t.opens
