(** Spawning and reaping one [tta_served] worker process.

    The router runs each worker as a child process with stdin on
    [/dev/null], stdout on a pipe back to the router (to read the
    daemon's machine-readable readiness line and drain its banner
    output), and stderr inherited so worker diagnostics land in the
    router's own stderr stream. *)

type proc = { pid : int; stdout : Unix.file_descr }

val spawn : exe:string -> args:string list -> proc
(** Fork/exec [exe args]. The caller owns [stdout] (close it after the
    process is gone) and must eventually reap the pid.
    @raise Unix.Unix_error when the exec setup fails. *)

val parse_ready : string -> (string * int option) option
(** Recognize the daemon's readiness line
    [{"ready":true,"socket":"127.0.0.1:4321","port":4321}]:
    [Some (socket_addr, port)] when the line is one, [None] for any
    other output (banner lines, partial reads). [port] is [None] for a
    Unix-domain socket. *)

val alive : proc -> bool
(** Non-blocking: has the child neither exited nor been reaped? *)

val terminate : ?grace_s:float -> proc -> unit
(** SIGTERM (triggering the daemon's graceful drain), wait up to
    [grace_s] (default 2 s), then SIGKILL; reaps the child and closes
    its stdout pipe. Idempotent on an already-dead child. *)

val reap : proc -> unit
(** Non-blocking [waitpid] to collect an exited child (avoid zombies
    after a crash noticed via EOF on another channel). *)
