(** The cluster front end: one socket in, N supervised daemons behind.

    Clients speak the ordinary {!Service.Protocol} JSON-lines dialect
    to the router exactly as they would to a single [tta_served]; the
    router spawns and supervises [workers] daemon processes (each
    bound to a kernel-assigned local port, discovered from the
    daemon's readiness line) and consistent-hashes every verification
    request onto one of them by the fingerprint of the model it asks
    about. Same model — same shard: repeats coalesce in that worker's
    scheduler and its engines stay warm, which is the scaling story
    (throughput grows with shards) {e and} the paper's tradeoff made
    operational — a centralized front door whose fault tolerance has
    to be re-earned with supervision, health probes, and failover.

    {b Failover.} Worker death is detected three ways: EOF/reset on
    the worker connection, EOF on its stdout pipe, and missed
    heartbeat pongs ({!Health}). A dead worker's in-flight requests
    re-route to the next live worker clockwise on the ring — safe to
    re-send because workers dedup identical requests and share one
    verdict-cache directory, so a duplicated computation is answered
    from cache rather than re-proved. Respawns are paced by
    {!Resilience.Supervisor.Restarts}: deterministic capped
    exponential backoff, giving up on a worker that exceeds
    [max_restarts] deaths in [restart_window_s] (its keys then simply
    belong to its ring successors). While no worker is live, requests
    park and flush on the next ready.

    {b Id rewriting.} The router multiplexes many client connections
    onto one connection per worker, so it substitutes its own request
    ids on the worker leg and restores the client's id on the way
    back, appending a [worker] field naming the serving shard (how
    {!Service.Loadgen} measures per-worker distribution). Heartbeat
    ids live in the [hb:] namespace and never collide with these.

    {b Circuit breakers.} With [breaker_window > 0] each worker gets a
    {!Breaker}: a worker whose recent requests keep failing is routed
    around ({e before} the restart gate would fire — it may be
    perfectly alive, just sick), its pongs move the open circuit to
    half-open, and one probe request decides between closing it and
    re-opening. Requests with no admissible worker park exactly like
    requests with no live worker.

    {b Hedging.} With [hedge_ms > 0], a request whose first answer has
    not arrived within that delay is duplicated onto the next
    admissible ring worker; the first content-bearing response wins,
    the loser's inflight entry is cancelled, and the winning response
    carries ["hedged":true]. Safe because verdicts are deterministic
    and workers coalesce by fingerprint.

    {b Link chaos.} The [faults] registry's [link_send]/[link_recv]
    rules apply per router↔worker line (requests, responses, and
    heartbeats alike): [drop] loses the line, [delay] defers it on a
    queue flushed by the loop (never sleeping the loop itself), and
    [crash] kills the connection. A retransmit net re-dispatches any
    request silent for [3 * health_timeout], so a dropped line
    degrades latency, never loses the answer. *)

type event =
  | Worker_spawned of { name : string; pid : int }
  | Worker_ready of { name : string; addr : string }
  | Worker_exited of { name : string; reason : string }
  | Worker_backoff of { name : string; delay_s : float }
  | Worker_gave_up of { name : string }
  | Rerouted of { id : string; worker : string }
      (** a re-dispatch after its previous worker died; [id] is the
          client's *)
  | Killed_by_request of { name : string; nth : int }
      (** the [kill_after] testing hook fired *)
  | Breaker_opened of { name : string }
      (** the worker's failure rate tripped its circuit breaker *)
  | Breaker_closed of { name : string }
      (** a half-open probe succeeded; traffic restored *)
  | Hedged of { id : string; worker : string }
      (** a duplicate leg was dispatched to [worker]; [id] is the
          client's *)

type stats = {
  forwarded : (string * int) list;  (** per worker name, sorted *)
  rerouted : int;
  restarts : int;  (** worker deaths observed (respawned or not) *)
  hedged : int;  (** duplicate legs dispatched *)
  breaker_opens : int;  (** circuit-breaker trips across the fleet *)
}

type t

val start :
  ?vnodes:int ->
  ?supervisor:Resilience.Supervisor.policy ->
  ?max_restarts:int ->
  ?restart_window_s:float ->
  ?health_interval:float ->
  ?health_timeout:float ->
  ?start_timeout:float ->
  ?grace:float ->
  ?kill_after:int ->
  ?faults:Resilience.Faults.t ->
  ?hedge_ms:int ->
  ?breaker_window:int ->
  ?on_event:(event -> unit) ->
  exe:string ->
  worker_args:string list ->
  workers:int ->
  Service.Server.addr ->
  t
(** Bind the client-facing [addr] (TCP port [0] allowed — see
    {!bound_addr}), then run the routing loop on its own domain,
    spawning [workers] processes [exe --socket 127.0.0.1:0
    <worker_args>]. Worker names are [w0..w{n-1}]; [vnodes] (default
    512) feeds {!Ring.create}. [supervisor] supplies the restart
    backoff curve; [health_interval]/[health_timeout] (0.5 s / 3 s)
    pace the heartbeats; [start_timeout] (10 s) bounds spawn-to-ready;
    [grace] (10 s) bounds the {!stop} drain. [kill_after n] SIGKILLs
    whichever worker receives the [n]-th forwarded request — the CI
    crash-mid-stream hook. [faults] arms the router-side link chaos
    ([link_send]/[link_recv] rules; default disabled); [hedge_ms]
    (default 0 = off) is the first-byte wait before a request is
    hedged; [breaker_window] (default 0 = off) is the per-worker
    outcome window, tripping at half failing. [on_event] runs on the
    loop domain: keep it quick, never raise.
    @raise Unix.Unix_error if [addr] cannot be bound.
    @raise Invalid_argument if [workers < 1], [hedge_ms < 0], or
    [breaker_window < 0]. *)

val stop : t -> unit
(** Request a drain (idempotent, signal-safe): stop accepting, answer
    everything in flight (cancelling leftovers at [grace]), terminate
    the workers. Returns immediately — {!wait} for completion. *)

val wait : t -> unit
(** Block until the loop has exited and the workers are gone. *)

val bound_addr : t -> Service.Server.addr
(** The client-facing address actually bound (ephemeral TCP port
    resolved). *)

val stats : t -> stats

(** {1 Pure helpers}

    The id-rewriting layer, exposed for direct unit testing. Both
    return [None] when the line is not a JSON object. *)

val rewrite_request_id : string -> id:string -> string option
(** Replace the object's [id] (first field of the result). *)

val rewrite_response_line :
  ?hedged:bool -> string -> id:string -> worker:string -> string option
(** Replace [id] and append a [worker] field naming the shard, plus
    ["hedged":true] when the request was hedged (default [false]). *)
