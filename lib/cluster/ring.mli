(** Consistent-hash request routing.

    The classic Karger ring: each member contributes [vnodes] virtual
    points (hashes of ["name#i"]) on a circle; a key routes to the
    owner of the first point clockwise from the key's own hash.
    Virtual points smooth the distribution — with the default 64 per
    member, an 8-member ring keeps per-member load within a few tens
    of percent of even — and give the property the cluster actually
    buys consistency for: when a member joins or leaves, only the keys
    whose nearest point changed move ([~1/n] of them), so the shared
    verdict cache and per-worker engine warm-up survive membership
    churn. Contrast a modular hash, where one membership change
    remaps nearly every key.

    Rings are immutable values: {!add}/{!remove} return new rings, so
    a router can swap rings atomically and tests can diff ownership
    between two memberships directly. Hashing is MD5-based and
    deterministic across processes and runs. *)

type t

val create : ?vnodes:int -> string list -> t
(** A ring over the given member names (deduplicated; order
    irrelevant). [vnodes] (default 512) is the virtual-point count per
    member.
    @raise Invalid_argument if [vnodes < 1]. *)

val members : t -> string list
(** Sorted, distinct. *)

val is_empty : t -> bool
val add : t -> string -> t
val remove : t -> string -> t

val route : ?accept:(string -> bool) -> t -> string -> string option
(** The member owning [key]: the first point clockwise whose member
    satisfies [accept] (default: everyone). [None] on an empty ring or
    when no member is acceptable. Failover is this with
    [accept = is_live]: a dead owner's keys fall through to the next
    live member on the ring, and {e only} that member inherits them. *)

val successors : t -> string -> string list
(** All members in clockwise ring order starting from [key]'s owner —
    [route] is [List.nth_opt (successors t key) 0]; the tail is the
    failover order. *)
