(** Ping/pong liveness tracking for one cluster worker.

    The router periodically sends a {!Service.Protocol.ping} down each
    worker's connection and expects the matching pong; a worker that
    answers nothing for [timeout] seconds is declared dead even though
    its process may still exist (wedged event loop, livelock). This
    module is the pure bookkeeping half — when is the next probe due,
    which pong id is expected, is the worker overdue — driven by the
    router's select loop, which supplies the clock. Deterministic
    under an artificial [now], so the timing logic is unit-testable
    without sockets or sleeps.

    Probe ids are ["hb:<worker>:<seq>"] — namespaced so the router can
    tell heartbeat pongs from forwarded verification responses on the
    same connection. *)

type t

val create : ?interval:float -> ?timeout:float -> now:float -> string -> t
(** Tracker for the named worker; [now] starts both clocks (the worker
    is considered seen at creation). [interval] (default 1 s) spaces
    the probes; [timeout] (default 3 s) is silence-until-death.
    @raise Invalid_argument if [timeout <= interval]. *)

val next_ping : now:float -> t -> string option
(** [Some id] when a probe is due: the caller must send a ping with
    this id. At most one probe is outstanding — a second one is not
    due until the first is answered or the worker is declared dead. *)

val pong : now:float -> t -> string -> unit
(** An id-matching pong marks the worker seen and re-arms the probe
    cycle; stale or foreign ids are ignored. *)

val overdue : now:float -> t -> bool
(** More than [timeout] seconds since the worker was last seen. *)

val reset : now:float -> t -> unit
(** Forget history (fresh connection after a restart). *)

val is_ping_id : string -> bool
(** Whether a response id is from the heartbeat namespace ([hb:...]) —
    the router's demultiplexing test. *)
