(** Per-worker circuit breaker.

    The restart-intensity gate ({!Restarts}) protects the cluster from
    a worker that {e dies} repeatedly; it does nothing about a worker
    that stays alive but answers requests with failures (a sick BDD
    heap, a wedged cache volume, a lossy link). The breaker fills that
    gap: it watches per-request outcomes and takes a worker out of the
    routing ring {e before} the restart gate would ever fire.

    {b States.}
    {v
      Closed ──(>= threshold failures in the last window)──> Open
      Open ──(health pong received)──> Half_open
      Half_open ──(probe request succeeds)──> Closed
      Half_open ──(probe request fails)──> Open
    v}

    The window is {b count-based} ([--breaker-window N] on
    [tta_cluster]): the last [N] request outcomes, not a wall-clock
    span, so the machine is a pure function of the outcome sequence
    and unit-testable without time.

    The half-open probe {b rides the existing health ping}: the router
    calls {!note_pong} when an open worker answers a ping, which is
    the breaker's evidence that the process is reachable again; the
    next admitted request is the single probe ({!probe_started}) whose
    outcome closes or re-opens the circuit.

    Thread model: all calls happen on the router's select-loop domain;
    the type is plain mutable state with no internal locking. *)

type state = Closed | Open | Half_open

type t

val create : window:int -> ?threshold:int -> unit -> t
(** A closed breaker over the last [window] outcomes, tripping when
    [threshold] of them are failures (default [max 1 (window / 2)]).
    Raises [Invalid_argument] unless [0 < threshold <= window]. *)

val record : t -> ok:bool -> unit
(** Feed one request outcome attributed to this worker. In [Closed],
    pushes into the window and trips to [Open] when the failure count
    reaches the threshold (the window is cleared so a later close
    starts fresh). In [Half_open] this is the probe's outcome: success
    closes, failure re-opens. In [Open], late outcomes from requests
    sent before the trip are ignored. *)

val note_pong : t -> unit
(** Evidence of process reachability (a health pong). [Open] moves to
    [Half_open] with no probe outstanding; other states ignore it. *)

val admits : t -> bool
(** May a {e new} request be routed to this worker right now?
    [Closed]: yes. [Open]: no. [Half_open]: only while no probe is
    outstanding — callers must confirm the dispatch with
    {!probe_started}, after which further requests are refused until
    the probe's {!record}. *)

val probe_started : t -> unit
(** The router actually forwarded the half-open probe request; refuse
    further admissions until its outcome arrives. No-op outside
    [Half_open]. *)

val reset : t -> unit
(** Back to a fresh [Closed] window (worker restarted: its slate is
    clean). The {!opens} count survives. *)

val state : t -> state
val opens : t -> int
(** How many times this breaker has tripped to [Open] over its
    lifetime — surfaced in router stats and bench reports. *)
