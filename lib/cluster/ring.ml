(* Consistent-hash ring — see the interface for the design. *)

type t = {
  vnodes : int;
  members : string list;  (** sorted, distinct *)
  points : (int * string) array;  (** sorted by (hash, name) *)
}

(* A point on the ring: the first 8 bytes of an MD5 digest, folded into
   a non-negative OCaml int. MD5 is plenty here — the adversary is
   clustering, not collision forgery. *)
let hash_of s =
  let d = Digest.string s in
  let h = ref 0 in
  for i = 0 to 7 do
    h := (!h lsl 8) lor Char.code d.[i]
  done;
  !h land max_int

let points_of ~vnodes members =
  let pts =
    List.concat_map
      (fun name ->
        List.init vnodes (fun i ->
            (hash_of (Printf.sprintf "%s#%d" name i), name)))
      members
  in
  let arr = Array.of_list pts in
  Array.sort compare arr;
  arr

let create ?(vnodes = 512) names =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
  let members = List.sort_uniq String.compare names in
  { vnodes; members; points = points_of ~vnodes members }

let members t = t.members
let is_empty t = t.members = []

let add t name =
  if List.mem name t.members then t
  else create ~vnodes:t.vnodes (name :: t.members)

let remove t name = create ~vnodes:t.vnodes (List.filter (( <> ) name) t.members)

(* Index of the first point clockwise from the key's hash (the array is
   sorted, so this is a binary search for the least index with
   [fst points.(i) >= h], wrapping to 0 past the top). *)
let first_at_or_after points h =
  let n = Array.length points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let walk t key k =
  let n = Array.length t.points in
  if n > 0 then begin
    let start = first_at_or_after t.points (hash_of key) in
    let i = ref 0 and stop = ref false in
    while (not !stop) && !i < n do
      stop := k (snd t.points.((start + !i) mod n));
      incr i
    done
  end

let route ?(accept = fun _ -> true) t key =
  let found = ref None in
  walk t key (fun name ->
      if accept name then begin
        found := Some name;
        true
      end
      else false);
  !found

let successors t key =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  walk t key (fun name ->
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        order := name :: !order
      end;
      Hashtbl.length seen = List.length t.members);
  List.rev !order
