(* Worker process lifecycle — see the interface. *)

type proc = { pid : int; stdout : Unix.file_descr }

let spawn ~exe ~args =
  let out_r, out_w = Unix.pipe () in
  Unix.set_close_on_exec out_r;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    try
      Unix.create_process exe
        (Array.of_list (exe :: args))
        devnull out_w Unix.stderr
    with e ->
      Unix.close out_r;
      Unix.close out_w;
      Unix.close devnull;
      raise e
  in
  Unix.close out_w;
  Unix.close devnull;
  { pid; stdout = out_r }

let parse_ready line =
  match Json.of_string (String.trim line) with
  | Error _ -> None
  | Ok j ->
      if Option.bind (Json.member "ready" j) Json.bool_value <> Some true then
        None
      else
        Option.map
          (fun socket ->
            (socket, Option.bind (Json.member "port" j) Json.int_value))
          (Option.bind (Json.member "socket" j) Json.string_value)

let alive p =
  match Unix.waitpid [ Unix.WNOHANG ] p.pid with
  | 0, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false

let kill_if_alive p signal =
  try Unix.kill p.pid signal with Unix.Unix_error (Unix.ESRCH, _, _) -> ()

let terminate ?(grace_s = 2.0) p =
  kill_if_alive p Sys.sigterm;
  let deadline = Unix.gettimeofday () +. grace_s in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] p.pid with
    | 0, _ ->
        if Unix.gettimeofday () < deadline then begin
          Unix.sleepf 0.02;
          wait ()
        end
        else begin
          (* Past the grace period a drain is no longer graceful. *)
          kill_if_alive p Sys.sigkill;
          ignore (Unix.waitpid [] p.pid)
        end
    | _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ();
  try Unix.close p.stdout with Unix.Unix_error _ -> ()

let reap p =
  match Unix.waitpid [ Unix.WNOHANG ] p.pid with
  | exception Unix.Unix_error _ -> ()
  | _ -> ()
