(* Sharding front end over supervised worker daemons — see the
   interface for the design. *)

module Server = Service.Server
module Protocol = Service.Protocol

type event =
  | Worker_spawned of { name : string; pid : int }
  | Worker_ready of { name : string; addr : string }
  | Worker_exited of { name : string; reason : string }
  | Worker_backoff of { name : string; delay_s : float }
  | Worker_gave_up of { name : string }
  | Rerouted of { id : string; worker : string }
  | Killed_by_request of { name : string; nth : int }

type stats = {
  forwarded : (string * int) list;
  rerouted : int;
  restarts : int;
}

(* ------------------------------------------------------------------ *)
(* Line rewriting (pure; unit-tested directly)

   The router multiplexes many clients onto one connection per worker,
   so client request ids cannot be trusted to be distinct across
   clients. Each forwarded request gets a router-scoped id (["q<n>"]);
   the response's id is rewritten back and the serving worker's name
   appended, giving clients per-shard attribution for free. *)

let rewrite_request_id line ~id =
  match Json.of_string line with
  | Ok (Json.Obj fields) ->
      let rest = List.filter (fun (k, _) -> k <> "id") fields in
      Some (Json.to_string (Json.Obj (("id", Json.String id) :: rest)))
  | Ok _ | Error _ -> None

let rewrite_response_line line ~id ~worker =
  match Json.of_string line with
  | Ok (Json.Obj fields) ->
      let rest =
        List.filter (fun (k, _) -> k <> "id" && k <> "worker") fields
      in
      Some
        (Json.to_string
           (Json.Obj
              ((("id", Json.String id) :: rest)
              @ [ ("worker", Json.String worker) ])))
  | Ok _ | Error _ -> None

(* ------------------------------------------------------------------ *)
(* State *)

type client = {
  cfd : Unix.file_descr;
  cbuf : Buffer.t;
  mutable cclosed : bool;
}

type pending = {
  pclient : client;
  orig_id : string;
  pline : string;  (** the client's original request line *)
  pkey : string;  (** consistent-hash routing key *)
  mutable attempts : int;
  mutable pworker : string;  (** name it was last forwarded to *)
}

type wstate =
  | Idle of { until : float }  (** waiting out a restart backoff *)
  | Starting of { proc : Worker.proc; sbuf : Buffer.t; since : float }
  | Live of {
      proc : Worker.proc;
      wfd : Unix.file_descr;  (** connection to the worker's socket *)
      wbuf : Buffer.t;
      health : Health.t;
    }
  | Gone  (** restart intensity exceeded; never coming back *)

type worker = {
  wname : string;
  mutable state : wstate;
  gate : Resilience.Supervisor.Restarts.t;
}

type t = {
  listen_fd : Unix.file_descr;
  bound : Server.addr;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  stopping : bool Atomic.t;
  finished : bool Atomic.t;
  exe : string;
  worker_args : string list;
  workers : worker array;
  ring : Ring.t;
  inflight : (string, pending) Hashtbl.t;  (** router id -> pending *)
  mutable parked : pending list;  (** newest first; no live worker yet *)
  mutable qseq : int;
  keys : (Tta_model.Configs.t, string) Hashtbl.t;  (** cfg -> routing key *)
  kill_after : int option;
  mutable total_forwarded : int;
  health_interval : float;
  health_timeout : float;
  start_timeout : float;
  grace : float;
  on_event : event -> unit;
  stats_lock : Mutex.t;
  st_forwarded : (string, int) Hashtbl.t;
  mutable st_rerouted : int;
  mutable st_restarts : int;
  join_lock : Mutex.t;
  mutable loop_domain : unit Domain.t option;
}

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let client_write c s =
  if not c.cclosed then
    match write_all c.cfd s 0 (String.length s) with
    | () -> ()
    | exception Unix.Unix_error _ -> c.cclosed <- true

let client_respond c resp = client_write c (Protocol.response_line resp)

let connect addr =
  match (addr : Server.addr) with
  | Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Server.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (inet, port));
      fd

let is_live w = match w.state with Live _ -> true | _ -> false

let worker_named t name =
  (* Worker names are router-assigned and few; linear scan is fine. *)
  let found = ref None in
  Array.iter (fun w -> if w.wname = name then found := Some w) t.workers;
  Option.get !found

(* ------------------------------------------------------------------ *)
(* Routing key

   Requests shard by the *model* they ask about — Model.fingerprint of
   the compiled configuration — not by request id: repeats of the same
   model land on the same worker, whose scheduler coalesces them and
   whose engines stay warm for it. Engine and depth intentionally do
   not enter the key. *)

let routing_key t cfg =
  match Hashtbl.find_opt t.keys cfg with
  | Some k -> k
  | None ->
      let k = Symkit.Model.fingerprint (Tta_model.Build.model cfg) in
      Hashtbl.add t.keys cfg k;
      k

(* ------------------------------------------------------------------ *)
(* Dispatch and failover *)

let max_attempts t = (2 * Array.length t.workers) + 2

let bump_forwarded t name =
  Mutex.lock t.stats_lock;
  Hashtbl.replace t.st_forwarded name
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.st_forwarded name));
  Mutex.unlock t.stats_lock

(* Forward one pending request to a live worker, or park/fail it.
   Mutually recursive with the death path: a failed write to a worker
   declares that worker dead, which re-dispatches its in-flight
   requests — bounded by [max_attempts] per request and by the restart
   gate per worker. *)
let rec dispatch t ~now p =
  if p.attempts >= max_attempts t then
    client_respond p.pclient
      (Protocol.Error
         {
           id = Some p.orig_id;
           code = Protocol.code_engine_failed;
           reason = "no live worker could serve this request";
         })
  else
    match
      Ring.route ~accept:(fun n -> is_live (worker_named t n)) t.ring p.pkey
    with
    | None ->
        (* No live worker right now. Park and flush on the next ready —
           unless the whole fleet crash-looped past its restart gates,
           in which case nobody is ever coming back. *)
        if
          Array.for_all
            (fun w -> match w.state with Gone -> true | _ -> false)
            t.workers
        then
          client_respond p.pclient
            (Protocol.Error
               {
                 id = Some p.orig_id;
                 code = Protocol.code_engine_failed;
                 reason = "every worker exceeded its restart budget";
               })
        else t.parked <- p :: t.parked
    | Some name -> forward t ~now (worker_named t name) p

and forward t ~now w p =
  match w.state with
  | Live { wfd; _ } -> (
      t.qseq <- t.qseq + 1;
      let qid = Printf.sprintf "q%d" t.qseq in
      match rewrite_request_id p.pline ~id:qid with
      | None ->
          (* Unreachable for a line that decoded as a request object;
             answer rather than wedge the client. *)
          client_respond p.pclient
            (Protocol.Error
               {
                 id = Some p.orig_id;
                 code = Protocol.code_bad_request;
                 reason = "request line is not a JSON object";
               })
      | Some line ->
          let line = line ^ "\n" in
          Hashtbl.replace t.inflight qid p;
          let rerouted = p.attempts > 0 in
          p.attempts <- p.attempts + 1;
          p.pworker <- w.wname;
          (match write_all wfd line 0 (String.length line) with
          | () ->
              t.total_forwarded <- t.total_forwarded + 1;
              bump_forwarded t w.wname;
              if rerouted then begin
                Mutex.lock t.stats_lock;
                t.st_rerouted <- t.st_rerouted + 1;
                Mutex.unlock t.stats_lock;
                t.on_event (Rerouted { id = p.orig_id; worker = w.wname })
              end;
              (match t.kill_after with
              | Some n when t.total_forwarded = n -> (
                  match w.state with
                  | Live { proc; _ } ->
                      (* Testing hook: SIGKILL the worker that just
                         received the nth request — the hard-crash case
                         the failover path exists for. Detection is
                         left to the normal EOF/health machinery. *)
                      (try Unix.kill proc.Worker.pid Sys.sigkill
                       with Unix.Unix_error _ -> ());
                      t.on_event (Killed_by_request { name = w.wname; nth = n })
                  | _ -> ())
              | _ -> ())
          | exception Unix.Unix_error _ -> worker_death t ~now w "write failed"))
  | _ ->
      p.attempts <- p.attempts + 1;
      dispatch t ~now p

and flush_parked t ~now =
  let parked = List.rev t.parked in
  t.parked <- [];
  List.iter (dispatch t ~now) parked

(* A worker is dead (EOF, failed write, health timeout, startup
   failure): reap it, re-route everything it owed, and schedule the
   respawn — or give up if it is crash-looping faster than the restart
   gate allows. *)
and worker_death t ~now w reason =
  (* [terminate] with a short grace: the process is usually already
     dead (we got here via EOF); a wedged one (health timeout) gets a
     brief chance at SIGTERM before the SIGKILL. Reaps the child, so a
     restarting fleet never accumulates zombies. *)
  (match w.state with
  | Starting { proc; _ } -> Worker.terminate ~grace_s:0.2 proc
  | Live { proc; wfd; _ } ->
      (try Unix.close wfd with Unix.Unix_error _ -> ());
      Worker.terminate ~grace_s:0.2 proc
  | Idle _ | Gone -> ());
  t.on_event (Worker_exited { name = w.wname; reason });
  Mutex.lock t.stats_lock;
  t.st_restarts <- t.st_restarts + 1;
  Mutex.unlock t.stats_lock;
  (match Resilience.Supervisor.Restarts.record ~now w.gate with
  | `Backoff d ->
      w.state <- Idle { until = now +. d };
      t.on_event (Worker_backoff { name = w.wname; delay_s = d })
  | `Give_up ->
      w.state <- Gone;
      t.on_event (Worker_gave_up { name = w.wname }));
  (* Re-route the dead worker's in-flight requests. Safe to re-send:
     workers dedup/coalesce identical requests and share the verdict
     cache, so a request the dead worker had in fact completed is
     answered again, cheaply, by its successor. *)
  let orphans =
    Hashtbl.fold
      (fun qid p acc -> if p.pworker = w.wname then (qid, p) :: acc else acc)
      t.inflight []
  in
  List.iter (fun (qid, _) -> Hashtbl.remove t.inflight qid) orphans;
  List.iter (fun (_, p) -> dispatch t ~now p) orphans

(* ------------------------------------------------------------------ *)
(* Worker lifecycle driven from the loop *)

let spawn_worker t ~now w =
  match
    Worker.spawn ~exe:t.exe
      ~args:([ "--socket"; "127.0.0.1:0" ] @ t.worker_args)
  with
  | proc ->
      w.state <- Starting { proc; sbuf = Buffer.create 256; since = now };
      t.on_event (Worker_spawned { name = w.wname; pid = proc.Worker.pid })
  | exception Unix.Unix_error _ -> worker_death t ~now w "spawn failed"

let worker_ready t ~now w proc socket =
  match Server.addr_of_string socket with
  | Error e -> worker_death t ~now w ("unparseable readiness address: " ^ e)
  | Ok addr -> (
      match connect addr with
      | exception Unix.Unix_error (e, _, _) ->
          worker_death t ~now w
            ("connect to ready worker failed: " ^ Unix.error_message e)
      | wfd ->
          let health =
            Health.create ~interval:t.health_interval
              ~timeout:t.health_timeout ~now w.wname
          in
          w.state <- Live { proc; wfd; wbuf = Buffer.create 1024; health };
          t.on_event (Worker_ready { name = w.wname; addr = socket });
          flush_parked t ~now)

(* Split buffered bytes on newlines, keeping a trailing partial. *)
let drain_lines buf k =
  let s = Buffer.contents buf in
  let n = String.length s in
  let start = ref 0 in
  (try
     while true do
       let i = String.index_from s !start '\n' in
       k (String.sub s !start (i - !start));
       start := i + 1
     done
   with Not_found -> ());
  if !start > 0 then begin
    Buffer.clear buf;
    if !start < n then Buffer.add_substring buf s !start (n - !start)
  end

(* The worker's stdout pipe. While [Starting] it carries the readiness
   line; once [Live] it is banner/diagnostic output, read and
   discarded so the pipe can never fill and block the daemon. EOF
   means the process exited. *)
let handle_worker_stdout t ~now scratch w =
  match w.state with
  | Starting { proc; sbuf; _ } -> (
      match Unix.read proc.Worker.stdout scratch 0 (Bytes.length scratch) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
          worker_death t ~now w "stdout read failed"
      | 0 -> worker_death t ~now w "exited before becoming ready"
      | n ->
          Buffer.add_subbytes sbuf scratch 0 n;
          let ready = ref None in
          drain_lines sbuf (fun line ->
              if !ready = None then ready := Worker.parse_ready line);
          (match !ready with
          | Some (socket, _port) -> worker_ready t ~now w proc socket
          | None -> ()))
  | Live { proc; _ } -> (
      match Unix.read proc.Worker.stdout scratch 0 (Bytes.length scratch) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> worker_death t ~now w "process exited"
      | 0 -> worker_death t ~now w "process exited"
      | _ -> ())
  | Idle _ | Gone -> ()

let handle_worker_line t ~now w line =
  match Protocol.request_id_of_line line with
  | None -> ()  (* not attributable; drop *)
  | Some id when Health.is_ping_id id -> (
      match w.state with
      | Live { health; _ } -> Health.pong ~now health id
      | _ -> ())
  | Some qid -> (
      match Hashtbl.find_opt t.inflight qid with
      | None -> ()  (* already re-routed elsewhere; late duplicate *)
      | Some p -> (
          Hashtbl.remove t.inflight qid;
          match rewrite_response_line line ~id:p.orig_id ~worker:w.wname with
          | Some out -> client_write p.pclient (out ^ "\n")
          | None -> ()))

let handle_worker_conn t ~now scratch w =
  match w.state with
  | Live { wfd; wbuf; _ } -> (
      match Unix.read wfd scratch 0 (Bytes.length scratch) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
          worker_death t ~now w "connection reset"
      | 0 -> worker_death t ~now w "connection closed"
      | n ->
          Buffer.add_subbytes wbuf scratch 0 n;
          drain_lines wbuf (handle_worker_line t ~now w))
  | _ -> ()

(* Time-driven work: respawns due, start timeouts, health probes. *)
let tick t ~now =
  Array.iter
    (fun w ->
      match w.state with
      | Idle { until } when until <= now && not (Atomic.get t.stopping) ->
          spawn_worker t ~now w
      | Starting { since; _ } when now -. since > t.start_timeout ->
          worker_death t ~now w "start timeout"
      | Live { wfd; health; _ } -> (
          if Health.overdue ~now health then
            worker_death t ~now w "health timeout"
          else
            match Health.next_ping ~now health with
            | None -> ()
            | Some id -> (
                let line = Json.to_string (Protocol.ping ~id) ^ "\n" in
                match write_all wfd line 0 (String.length line) with
                | () -> ()
                | exception Unix.Unix_error _ ->
                    worker_death t ~now w "ping write failed"))
      | _ -> ())
    t.workers

(* ------------------------------------------------------------------ *)
(* Client side *)

let handle_request t ~now client line =
  let line = String.trim line in
  if line <> "" then
    match Protocol.decode_incoming_line line with
    | Error reason ->
        client_respond client
          (Protocol.Error
             {
               id = Protocol.request_id_of_line line;
               code = Protocol.code_bad_request;
               reason;
             })
    | Ok (Protocol.Ping { id }) ->
        (* Answered by the router itself: a pong means the routing tier
           is up, which is what a client probing the cluster asks. *)
        client_respond client (Protocol.Pong { id })
    | Ok (Protocol.Verify req) ->
        let p =
          {
            pclient = client;
            orig_id = req.Protocol.id;
            pline = line;
            pkey = routing_key t req.Protocol.cfg;
            attempts = 0;
            pworker = "";
          }
        in
        dispatch t ~now p

let handle_client_read t ~now scratch c =
  match Unix.read c.cfd scratch 0 (Bytes.length scratch) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> c.cclosed <- true
  | 0 -> c.cclosed <- true
  | n ->
      Buffer.add_subbytes c.cbuf scratch 0 n;
      drain_lines c.cbuf (handle_request t ~now c)

(* ------------------------------------------------------------------ *)
(* The loop *)

let cancel_all t reason =
  Hashtbl.iter
    (fun _ p ->
      client_respond p.pclient
        (Protocol.Cancelled { id = p.orig_id; reason }))
    t.inflight;
  Hashtbl.reset t.inflight;
  List.iter
    (fun p ->
      client_respond p.pclient
        (Protocol.Cancelled { id = p.orig_id; reason }))
    t.parked;
  t.parked <- []

let loop t =
  let clients = ref [] in
  let scratch = Bytes.create 65536 in
  let running = ref true in
  let listener_open = ref true in
  let stop_deadline = ref infinity in
  while !running do
    let now = Unix.gettimeofday () in
    tick t ~now;
    let dead, live = List.partition (fun c -> c.cclosed) !clients in
    List.iter
      (fun c -> try Unix.close c.cfd with Unix.Unix_error _ -> ())
      dead;
    clients := live;
    (* Drain exit: stopped, and nothing left to answer (or the grace
       period ran out, in which case the leftovers get cancelled). *)
    if Atomic.get t.stopping then begin
      if !listener_open then begin
        listener_open := false;
        stop_deadline := now +. t.grace;
        try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
      end;
      if Hashtbl.length t.inflight = 0 && t.parked = [] then running := false
      else if now > !stop_deadline then begin
        cancel_all t "shutting down";
        running := false
      end
    end;
    if !running then begin
      let worker_fds =
        Array.to_list t.workers
        |> List.concat_map (fun w ->
               match w.state with
               | Starting { proc; _ } -> [ (proc.Worker.stdout, `Stdout w) ]
               | Live { proc; wfd; _ } ->
                   [ (proc.Worker.stdout, `Stdout w); (wfd, `Conn w) ]
               | Idle _ | Gone -> [])
      in
      let client_fds = List.map (fun c -> (c.cfd, `Client c)) !clients in
      let read_fds =
        t.pipe_r
        :: (if !listener_open then [ t.listen_fd ] else [])
        @ List.map fst worker_fds @ List.map fst client_fds
      in
      match Unix.select read_fds [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          let now = Unix.gettimeofday () in
          if List.mem t.pipe_r ready then begin
            let b = Bytes.create 8 in
            ignore (try Unix.read t.pipe_r b 0 8 with Unix.Unix_error _ -> 0)
          end;
          if !listener_open && List.mem t.listen_fd ready then begin
            match Unix.accept t.listen_fd with
            | exception Unix.Unix_error _ -> ()
            | fd, _ ->
                clients :=
                  { cfd = fd; cbuf = Buffer.create 256; cclosed = false }
                  :: !clients
          end;
          List.iter
            (fun (fd, tag) ->
              if List.mem fd ready then
                match tag with
                | `Stdout w -> handle_worker_stdout t ~now scratch w
                | `Conn w -> handle_worker_conn t ~now scratch w)
            worker_fds;
          List.iter
            (fun (fd, tag) ->
              if List.mem fd ready then
                match tag with
                | `Client c ->
                    if not c.cclosed then handle_client_read t ~now scratch c)
            client_fds
    end
  done;
  (* Shut the fleet down and release everything. *)
  Array.iter
    (fun w ->
      match w.state with
      | Starting { proc; _ } -> Worker.terminate proc
      | Live { proc; wfd; _ } ->
          (try Unix.close wfd with Unix.Unix_error _ -> ());
          Worker.terminate proc
      | Idle _ | Gone -> ())
    t.workers;
  List.iter
    (fun c -> try Unix.close c.cfd with Unix.Unix_error _ -> ())
    !clients;
  if !listener_open then
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  try Unix.close t.pipe_w with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let bind_listen addr =
  match (addr : Server.addr) with
  | Server.Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Server.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> raise (Unix.Unix_error (Unix.EINVAL, "bind", host)))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 64;
      fd

let start ?(vnodes = 512) ?(supervisor = Resilience.Supervisor.default)
    ?(max_restarts = 5) ?(restart_window_s = 30.0) ?(health_interval = 0.5)
    ?(health_timeout = 3.0) ?(start_timeout = 10.0) ?(grace = 10.0)
    ?kill_after ?(on_event = fun (_ : event) -> ()) ~exe ~worker_args
    ~workers addr =
  if workers < 1 then invalid_arg "Router.start: workers < 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = bind_listen addr in
  let bound =
    match (addr : Server.addr) with
    | Server.Tcp (host, 0) -> (
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, port) -> Server.Tcp (host, port)
        | _ -> addr)
    | _ -> addr
  in
  let pipe_r, pipe_w = Unix.pipe () in
  let names = List.init workers (Printf.sprintf "w%d") in
  let mk name =
    {
      wname = name;
      state = Idle { until = 0.0 };  (* due immediately *)
      gate =
        Resilience.Supervisor.Restarts.create ~max_restarts
          ~window_s:restart_window_s supervisor;
    }
  in
  let t =
    {
      listen_fd;
      bound;
      pipe_r;
      pipe_w;
      stopping = Atomic.make false;
      finished = Atomic.make false;
      exe;
      worker_args;
      workers = Array.of_list (List.map mk names);
      ring = Ring.create ~vnodes names;
      inflight = Hashtbl.create 64;
      parked = [];
      qseq = 0;
      keys = Hashtbl.create 16;
      kill_after;
      total_forwarded = 0;
      health_interval;
      health_timeout;
      start_timeout;
      grace;
      on_event;
      stats_lock = Mutex.create ();
      st_forwarded = Hashtbl.create 8;
      st_rerouted = 0;
      st_restarts = 0;
      join_lock = Mutex.create ();
      loop_domain = None;
    }
  in
  t.loop_domain <-
    Some
      (Domain.spawn (fun () ->
           Fun.protect
             ~finally:(fun () -> Atomic.set t.finished true)
             (fun () -> loop t)));
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then
    try ignore (Unix.write_substring t.pipe_w "x" 0 1)
    with Unix.Unix_error _ -> ()

let wait t =
  (* Same poll-then-join dance as Server.wait: keep the main domain at
     safepoints so signal handlers still run while we wait. *)
  while not (Atomic.get t.finished) do
    Unix.sleepf 0.05
  done;
  Mutex.lock t.join_lock;
  (match t.loop_domain with
  | None -> ()
  | Some d ->
      t.loop_domain <- None;
      Domain.join d);
  Mutex.unlock t.join_lock

let bound_addr t = t.bound

let stats t =
  Mutex.lock t.stats_lock;
  let forwarded =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.st_forwarded [])
  in
  let s =
    { forwarded; rerouted = t.st_rerouted; restarts = t.st_restarts }
  in
  Mutex.unlock t.stats_lock;
  s
