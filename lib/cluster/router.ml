(* Sharding front end over supervised worker daemons — see the
   interface for the design. *)

module Server = Service.Server
module Protocol = Service.Protocol
module Faults = Resilience.Faults

type event =
  | Worker_spawned of { name : string; pid : int }
  | Worker_ready of { name : string; addr : string }
  | Worker_exited of { name : string; reason : string }
  | Worker_backoff of { name : string; delay_s : float }
  | Worker_gave_up of { name : string }
  | Rerouted of { id : string; worker : string }
  | Killed_by_request of { name : string; nth : int }
  | Breaker_opened of { name : string }
  | Breaker_closed of { name : string }
  | Hedged of { id : string; worker : string }

type stats = {
  forwarded : (string * int) list;
  rerouted : int;
  restarts : int;
  hedged : int;
  breaker_opens : int;
}

(* ------------------------------------------------------------------ *)
(* Line rewriting (pure; unit-tested directly)

   The router multiplexes many clients onto one connection per worker,
   so client request ids cannot be trusted to be distinct across
   clients. Each forwarded request gets a router-scoped id (["q<n>"]);
   the response's id is rewritten back and the serving worker's name
   appended, giving clients per-shard attribution for free. *)

let rewrite_request_id line ~id =
  match Json.of_string line with
  | Ok (Json.Obj fields) ->
      let rest = List.filter (fun (k, _) -> k <> "id") fields in
      Some (Json.to_string (Json.Obj (("id", Json.String id) :: rest)))
  | Ok _ | Error _ -> None

let rewrite_response_line ?(hedged = false) line ~id ~worker =
  match Json.of_string line with
  | Ok (Json.Obj fields) ->
      let rest =
        List.filter
          (fun (k, _) -> k <> "id" && k <> "worker" && k <> "hedged")
          fields
      in
      Some
        (Json.to_string
           (Json.Obj
              ((("id", Json.String id) :: rest)
              @ [ ("worker", Json.String worker) ]
              @ (if hedged then [ ("hedged", Json.Bool true) ] else []))))
  | Ok _ | Error _ -> None

(* ------------------------------------------------------------------ *)
(* State *)

type client = {
  cfd : Unix.file_descr;
  cbuf : Buffer.t;
  mutable cclosed : bool;
}

type pending = {
  pclient : client;
  orig_id : string;
  pline : string;  (** the client's original request line *)
  pkey : string;  (** consistent-hash routing key *)
  mutable attempts : int;
  mutable legs : (string * string) list;
      (** outstanding (router qid, worker name) legs; more than one
          while a hedge is in flight *)
  mutable sent_at : float;  (** when the newest leg was forwarded *)
  mutable hedge_sent : bool;
  mutable provisional : (string * string) option;
      (** a failure response (line, worker) held back while another
          leg may still answer conclusively *)
}

type wstate =
  | Idle of { until : float }  (** waiting out a restart backoff *)
  | Starting of { proc : Worker.proc; sbuf : Buffer.t; since : float }
  | Live of {
      proc : Worker.proc;
      wfd : Unix.file_descr;  (** connection to the worker's socket *)
      wbuf : Buffer.t;
      health : Health.t;
    }
  | Gone  (** restart intensity exceeded; never coming back *)

type worker = {
  wname : string;
  mutable state : wstate;
  gate : Resilience.Supervisor.Restarts.t;
  breaker : Breaker.t option;  (** [None] when --breaker-window is 0 *)
}

(* A router↔worker message a firing [delay] rule is holding back:
   delivered by [tick] once due, instead of sleeping on the loop. *)
type delayed_msg =
  | Delayed_send of { dworker : string; dline : string }
  | Delayed_recv of { dworker : string; dline : string }

type t = {
  listen_fd : Unix.file_descr;
  bound : Server.addr;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  stopping : bool Atomic.t;
  finished : bool Atomic.t;
  exe : string;
  worker_args : string list;
  workers : worker array;
  ring : Ring.t;
  inflight : (string, pending) Hashtbl.t;  (** router id -> pending *)
  mutable parked : pending list;  (** newest first; no live worker yet *)
  mutable qseq : int;
  keys : (Tta_model.Configs.t, string) Hashtbl.t;  (** cfg -> routing key *)
  kill_after : int option;
  mutable total_forwarded : int;
  health_interval : float;
  health_timeout : float;
  start_timeout : float;
  grace : float;
  faults : Faults.t;  (** link_send/link_recv chaos on the worker legs *)
  hedge_s : float;  (** 0 = hedging off *)
  mutable delayed : (float * delayed_msg) list;  (** due time, unsorted *)
  on_event : event -> unit;
  stats_lock : Mutex.t;
  st_forwarded : (string, int) Hashtbl.t;
  mutable st_rerouted : int;
  mutable st_restarts : int;
  mutable st_hedged : int;
  mutable st_breaker_opens : int;
  join_lock : Mutex.t;
  mutable loop_domain : unit Domain.t option;
}

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let client_write c s =
  if not c.cclosed then
    match write_all c.cfd s 0 (String.length s) with
    | () -> ()
    | exception Unix.Unix_error _ -> c.cclosed <- true

let client_respond c resp = client_write c (Protocol.response_line resp)

let connect addr =
  match (addr : Server.addr) with
  | Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Server.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (inet, port));
      fd

let is_live w = match w.state with Live _ -> true | _ -> false

(* Routing admission: alive *and* the breaker lets new traffic in. *)
let admits w =
  is_live w
  && match w.breaker with None -> true | Some b -> Breaker.admits b

(* Feed a request outcome to the worker's breaker, reporting state
   transitions as events (and counting trips). *)
let breaker_record t w ~ok =
  match w.breaker with
  | None -> ()
  | Some b ->
      let before = Breaker.state b in
      Breaker.record b ~ok;
      (match (before, Breaker.state b) with
      | (Breaker.Closed | Breaker.Half_open), Breaker.Open ->
          Mutex.lock t.stats_lock;
          t.st_breaker_opens <- t.st_breaker_opens + 1;
          Mutex.unlock t.stats_lock;
          t.on_event (Breaker_opened { name = w.wname })
      | Breaker.Half_open, Breaker.Closed ->
          t.on_event (Breaker_closed { name = w.wname })
      | _ -> ())

let worker_named t name =
  (* Worker names are router-assigned and few; linear scan is fine. *)
  let found = ref None in
  Array.iter (fun w -> if w.wname = name then found := Some w) t.workers;
  Option.get !found

(* ------------------------------------------------------------------ *)
(* Routing key

   Requests shard by the *model* they ask about — Model.fingerprint of
   the compiled configuration — not by request id: repeats of the same
   model land on the same worker, whose scheduler coalesces them and
   whose engines stay warm for it. Engine and depth intentionally do
   not enter the key. *)

let routing_key t cfg =
  match Hashtbl.find_opt t.keys cfg with
  | Some k -> k
  | None ->
      let k = Symkit.Model.fingerprint (Tta_model.Build.model cfg) in
      Hashtbl.add t.keys cfg k;
      k

(* ------------------------------------------------------------------ *)
(* Dispatch and failover *)

let max_attempts t = (2 * Array.length t.workers) + 2

let bump_forwarded t name =
  Mutex.lock t.stats_lock;
  Hashtbl.replace t.st_forwarded name
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.st_forwarded name));
  Mutex.unlock t.stats_lock

(* Forward one pending request to a live worker, or park/fail it.
   Mutually recursive with the death path: a failed write to a worker
   declares that worker dead, which re-dispatches its in-flight
   requests — bounded by [max_attempts] per request and by the restart
   gate per worker. *)
let rec dispatch t ~now p =
  if p.attempts >= max_attempts t then
    client_respond p.pclient
      (Protocol.Error
         {
           id = Some p.orig_id;
           code = Protocol.code_engine_failed;
           reason = "no live worker could serve this request";
         })
  else
    match
      Ring.route ~accept:(fun n -> admits (worker_named t n)) t.ring p.pkey
    with
    | None ->
        (* No admissible worker right now (none live, or every live
           one behind an open breaker). Park and flush on the next
           ready or breaker transition — unless the whole fleet
           crash-looped past its restart gates, in which case nobody
           is ever coming back. *)
        if
          Array.for_all
            (fun w -> match w.state with Gone -> true | _ -> false)
            t.workers
        then
          client_respond p.pclient
            (Protocol.Error
               {
                 id = Some p.orig_id;
                 code = Protocol.code_engine_failed;
                 reason = "every worker exceeded its restart budget";
               })
        else t.parked <- p :: t.parked
    | Some name -> forward t ~now (worker_named t name) p

and forward t ~now w p =
  match w.state with
  | Live { wfd; _ } -> (
      t.qseq <- t.qseq + 1;
      let qid = Printf.sprintf "q%d" t.qseq in
      match rewrite_request_id p.pline ~id:qid with
      | None ->
          (* Unreachable for a line that decoded as a request object;
             answer rather than wedge the client. *)
          client_respond p.pclient
            (Protocol.Error
               {
                 id = Some p.orig_id;
                 code = Protocol.code_bad_request;
                 reason = "request line is not a JSON object";
               })
      | Some line -> (
          let line = line ^ "\n" in
          Hashtbl.replace t.inflight qid p;
          let rerouted = p.attempts > 0 && p.legs = [] in
          p.attempts <- p.attempts + 1;
          p.legs <- (qid, w.wname) :: p.legs;
          p.sent_at <- now;
          (* If this worker is half-open, this request is its probe. *)
          (match w.breaker with
          | Some b -> Breaker.probe_started b
          | None -> ());
          t.total_forwarded <- t.total_forwarded + 1;
          bump_forwarded t w.wname;
          if rerouted then begin
            Mutex.lock t.stats_lock;
            t.st_rerouted <- t.st_rerouted + 1;
            Mutex.unlock t.stats_lock;
            t.on_event (Rerouted { id = p.orig_id; worker = w.wname })
          end;
          (match t.kill_after with
          | Some n when t.total_forwarded = n -> (
              match w.state with
              | Live { proc; _ } ->
                  (* Testing hook: SIGKILL the worker that just
                     received the nth request — the hard-crash case
                     the failover path exists for. Detection is
                     left to the normal EOF/health machinery. *)
                  (try Unix.kill proc.Worker.pid Sys.sigkill
                   with Unix.Unix_error _ -> ());
                  t.on_event (Killed_by_request { name = w.wname; nth = n })
              | _ -> ())
          | _ -> ());
          (* The outbound link hook: a firing [drop] loses the line in
             the network (the leg stays registered; the retransmit net
             or a hedge recovers it), a [delay] defers the write to
             [tick], a [crash] kills the connection. *)
          match Faults.link t.faults Faults.Link_send with
          | exception Faults.Injected _ -> worker_death t ~now w "link fault"
          | `Drop -> ()
          | `Delay d ->
              t.delayed <-
                (now +. d, Delayed_send { dworker = w.wname; dline = line })
                :: t.delayed
          | `Pass -> (
              match write_all wfd line 0 (String.length line) with
              | () -> ()
              | exception Unix.Unix_error _ ->
                  worker_death t ~now w "write failed")))
  | _ ->
      p.attempts <- p.attempts + 1;
      dispatch t ~now p

and flush_parked t ~now =
  let parked = List.rev t.parked in
  t.parked <- [];
  List.iter (dispatch t ~now) parked

(* A worker is dead (EOF, failed write, health timeout, startup
   failure): reap it, re-route everything it owed, and schedule the
   respawn — or give up if it is crash-looping faster than the restart
   gate allows. *)
and worker_death t ~now w reason =
  (* [terminate] with a short grace: the process is usually already
     dead (we got here via EOF); a wedged one (health timeout) gets a
     brief chance at SIGTERM before the SIGKILL. Reaps the child, so a
     restarting fleet never accumulates zombies. *)
  (match w.state with
  | Starting { proc; _ } -> Worker.terminate ~grace_s:0.2 proc
  | Live { proc; wfd; _ } ->
      (try Unix.close wfd with Unix.Unix_error _ -> ());
      Worker.terminate ~grace_s:0.2 proc
  | Idle _ | Gone -> ());
  t.on_event (Worker_exited { name = w.wname; reason });
  Mutex.lock t.stats_lock;
  t.st_restarts <- t.st_restarts + 1;
  Mutex.unlock t.stats_lock;
  (match Resilience.Supervisor.Restarts.record ~now w.gate with
  | `Backoff d ->
      w.state <- Idle { until = now +. d };
      t.on_event (Worker_backoff { name = w.wname; delay_s = d })
  | `Give_up ->
      w.state <- Gone;
      t.on_event (Worker_gave_up { name = w.wname }));
  (* Cut the dead worker's legs. A request whose only leg it was gets
     re-dispatched — safe to re-send: workers dedup/coalesce identical
     requests and share the verdict cache, so a request the dead
     worker had in fact completed is answered again, cheaply, by its
     successor. A hedged request with a surviving leg elsewhere just
     loses the dead leg. *)
  let orphans =
    Hashtbl.fold
      (fun qid p acc ->
        if List.exists (fun (q, wn) -> q = qid && wn = w.wname) p.legs then
          (qid, p) :: acc
        else acc)
      t.inflight []
  in
  List.iter
    (fun (qid, p) ->
      Hashtbl.remove t.inflight qid;
      p.legs <- List.filter (fun (q, _) -> q <> qid) p.legs)
    orphans;
  let stranded =
    List.fold_left
      (fun acc (_, p) ->
        if p.legs = [] && not (List.memq p acc) then p :: acc else acc)
      [] orphans
  in
  List.iter (dispatch t ~now) stranded

(* ------------------------------------------------------------------ *)
(* Worker lifecycle driven from the loop *)

let spawn_worker t ~now w =
  match
    Worker.spawn ~exe:t.exe
      ~args:([ "--socket"; "127.0.0.1:0" ] @ t.worker_args)
  with
  | proc ->
      w.state <- Starting { proc; sbuf = Buffer.create 256; since = now };
      t.on_event (Worker_spawned { name = w.wname; pid = proc.Worker.pid })
  | exception Unix.Unix_error _ -> worker_death t ~now w "spawn failed"

let worker_ready t ~now w proc socket =
  match Server.addr_of_string socket with
  | Error e -> worker_death t ~now w ("unparseable readiness address: " ^ e)
  | Ok addr -> (
      match connect addr with
      | exception Unix.Unix_error (e, _, _) ->
          worker_death t ~now w
            ("connect to ready worker failed: " ^ Unix.error_message e)
      | wfd ->
          let health =
            Health.create ~interval:t.health_interval
              ~timeout:t.health_timeout ~now w.wname
          in
          w.state <- Live { proc; wfd; wbuf = Buffer.create 1024; health };
          (* A restarted worker gets a clean slate: whatever tripped
             the breaker died with the old process. *)
          (match w.breaker with Some b -> Breaker.reset b | None -> ());
          t.on_event (Worker_ready { name = w.wname; addr = socket });
          flush_parked t ~now)

(* Split buffered bytes on newlines, keeping a trailing partial. *)
let drain_lines buf k =
  let s = Buffer.contents buf in
  let n = String.length s in
  let start = ref 0 in
  (try
     while true do
       let i = String.index_from s !start '\n' in
       k (String.sub s !start (i - !start));
       start := i + 1
     done
   with Not_found -> ());
  if !start > 0 then begin
    Buffer.clear buf;
    if !start < n then Buffer.add_substring buf s !start (n - !start)
  end

(* The worker's stdout pipe. While [Starting] it carries the readiness
   line; once [Live] it is banner/diagnostic output, read and
   discarded so the pipe can never fill and block the daemon. EOF
   means the process exited. *)
let handle_worker_stdout t ~now scratch w =
  match w.state with
  | Starting { proc; sbuf; _ } -> (
      match Unix.read proc.Worker.stdout scratch 0 (Bytes.length scratch) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
          worker_death t ~now w "stdout read failed"
      | 0 -> worker_death t ~now w "exited before becoming ready"
      | n ->
          Buffer.add_subbytes sbuf scratch 0 n;
          let ready = ref None in
          drain_lines sbuf (fun line ->
              if !ready = None then ready := Worker.parse_ready line);
          (match !ready with
          | Some (socket, _port) -> worker_ready t ~now w proc socket
          | None -> ()))
  | Live { proc; _ } -> (
      match Unix.read proc.Worker.stdout scratch 0 (Bytes.length scratch) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> worker_death t ~now w "process exited"
      | 0 -> worker_death t ~now w "process exited"
      | _ -> ())
  | Idle _ | Gone -> ()

(* Deliver [line] (from [worker]) as the answer to [p]: cancel every
   outstanding leg — a late duplicate from a hedge loser then finds no
   inflight entry and is dropped — and write the rewritten response. *)
let deliver t p line ~worker =
  List.iter (fun (q, _) -> Hashtbl.remove t.inflight q) p.legs;
  p.legs <- [];
  p.provisional <- None;
  match rewrite_response_line ~hedged:p.hedge_sent line ~id:p.orig_id ~worker with
  | Some out -> client_write p.pclient (out ^ "\n")
  | None -> ()

(* Does this response line blame the *worker* (breaker evidence, and
   worth holding back while a hedge leg may still answer)? Degraded
   answers carry content, but an engine-failed one still marks the
   worker sick. *)
let response_failure line =
  match Protocol.decode_response_line line with
  | Ok (Protocol.Error { code; _ }) -> code = Protocol.code_engine_failed
  | Ok (Protocol.Degraded { code; _ }) -> code = Protocol.code_engine_failed
  | Ok _ -> false
  | Error _ -> false

let process_worker_line t ~now w line =
  match Protocol.request_id_of_line line with
  | None -> ()  (* not attributable; drop *)
  | Some id when Health.is_ping_id id -> (
      (* A pong is the breaker's reachability evidence: an open
         circuit moves to half-open, admitting one probe request. *)
      (match w.breaker with Some b -> Breaker.note_pong b | None -> ());
      match w.state with
      | Live { health; _ } -> Health.pong ~now health id
      | _ -> ())
  | Some qid -> (
      match Hashtbl.find_opt t.inflight qid with
      | None -> ()  (* cancelled hedge loser or re-routed; late duplicate *)
      | Some p ->
          let failure = response_failure line in
          breaker_record t w ~ok:(not failure);
          Hashtbl.remove t.inflight qid;
          p.legs <- List.filter (fun (q, _) -> q <> qid) p.legs;
          if (not failure) || p.legs = [] then
            (* Content (or: every leg failed; answer with the freshest
               failure rather than wait for nothing). *)
            deliver t p line ~worker:w.wname
          else
            (* Hold the failure back: the other leg may still answer
               with content. *)
            p.provisional <- Some (line, w.wname))

let handle_worker_conn t ~now scratch w =
  match w.state with
  | Live { wfd; wbuf; _ } -> (
      match Unix.read wfd scratch 0 (Bytes.length scratch) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
          worker_death t ~now w "connection reset"
      | 0 -> worker_death t ~now w "connection closed"
      | n ->
          Buffer.add_subbytes wbuf scratch 0 n;
          (* The inbound link hook, applied per line: [drop] discards
             the line (pongs included — that is what a partition looks
             like from this side), [delay] defers its processing to
             [tick], [crash] kills the connection (flagged and applied
             after the drain, so the buffer stays coherent). *)
          let link_crash = ref false in
          drain_lines wbuf (fun line ->
              if not !link_crash then
                match Faults.link t.faults Faults.Link_recv with
                | `Pass -> process_worker_line t ~now w line
                | `Drop -> ()
                | `Delay d ->
                    t.delayed <-
                      ( now +. d,
                        Delayed_recv { dworker = w.wname; dline = line } )
                      :: t.delayed
                | exception Faults.Injected _ -> link_crash := true);
          if !link_crash then worker_death t ~now w "link fault")
  | _ -> ()

(* Flush delayed-link messages whose due time has passed. A send whose
   worker died in the meantime is dropped (its leg re-routes via the
   death path); a recv is processed as if it had just arrived. *)
let deliver_delayed t ~now =
  match t.delayed with
  | [] -> ()
  | _ ->
      let due, later = List.partition (fun (at, _) -> at <= now) t.delayed in
      t.delayed <- later;
      List.iter
        (fun (_, msg) ->
          match msg with
          | Delayed_send { dworker; dline } -> (
              let w = worker_named t dworker in
              match w.state with
              | Live { wfd; _ } -> (
                  match write_all wfd dline 0 (String.length dline) with
                  | () -> ()
                  | exception Unix.Unix_error _ ->
                      worker_death t ~now w "write failed")
              | _ -> ())
          | Delayed_recv { dworker; dline } ->
              process_worker_line t ~now (worker_named t dworker) dline)
        (List.rev due)

(* Hedging and the retransmit net, driven from [tick].

   Hedge: a request whose single leg has waited [hedge_s] gets a
   duplicate leg on the next admissible ring worker; the first
   content-bearing answer wins and cancels the other ([deliver]). Safe
   because verdicts are deterministic and workers coalesce by
   fingerprint, so the loser burns at most one cache probe.

   Retransmit: a request none of whose legs has answered for a full
   [3 * health_timeout] has very likely had a line dropped on the
   floor (an injected link fault, or a real lossy network) — without
   this net the client would wait forever, since workers answer every
   request they actually receive. Re-dispatching is safe for the same
   reason hedging is: a merely-slow computation is coalesced on the
   worker, not recomputed, and answers through the fresh leg. *)
let hedge_and_retransmit t ~now =
  let distinct = ref [] in
  Hashtbl.iter
    (fun _ p -> if not (List.memq p !distinct) then distinct := p :: !distinct)
    t.inflight;
  List.iter
    (fun p ->
      if p.legs <> [] && now -. p.sent_at > 3.0 *. t.health_timeout then begin
        List.iter (fun (q, _) -> Hashtbl.remove t.inflight q) p.legs;
        p.legs <- [];
        p.hedge_sent <- false;
        dispatch t ~now p
      end
      else if
        t.hedge_s > 0.
        && (not p.hedge_sent)
        && (match p.legs with [ _ ] -> true | _ -> false)
        && now -. p.sent_at >= t.hedge_s
      then
        let on_leg n = List.exists (fun (_, wn) -> wn = n) p.legs in
        match
          Ring.route
            ~accept:(fun n -> (not (on_leg n)) && admits (worker_named t n))
            t.ring p.pkey
        with
        | None -> ()  (* nowhere to hedge to; the net still applies *)
        | Some name ->
            p.hedge_sent <- true;
            Mutex.lock t.stats_lock;
            t.st_hedged <- t.st_hedged + 1;
            Mutex.unlock t.stats_lock;
            t.on_event (Hedged { id = p.orig_id; worker = name });
            forward t ~now (worker_named t name) p)
    !distinct

(* Time-driven work: respawns due, start timeouts, health probes,
   delayed link messages, hedges/retransmits, and parked requests a
   breaker transition may have unblocked. *)
let tick t ~now =
  Array.iter
    (fun w ->
      match w.state with
      | Idle { until } when until <= now && not (Atomic.get t.stopping) ->
          spawn_worker t ~now w
      | Starting { since; _ } when now -. since > t.start_timeout ->
          worker_death t ~now w "start timeout"
      | Live { wfd; health; _ } -> (
          if Health.overdue ~now health then
            worker_death t ~now w "health timeout"
          else
            match Health.next_ping ~now health with
            | None -> ()
            | Some id -> (
                let line = Json.to_string (Protocol.ping ~id) ^ "\n" in
                (* Pings ride the same link as requests: a dropped ping
                   never pongs, so a partitioned-off worker fails its
                   health check exactly like a dead one. *)
                match Faults.link t.faults Faults.Link_send with
                | exception Faults.Injected _ ->
                    worker_death t ~now w "link fault"
                | `Drop -> ()
                | `Delay d ->
                    t.delayed <-
                      ( now +. d,
                        Delayed_send { dworker = w.wname; dline = line } )
                      :: t.delayed
                | `Pass -> (
                    match write_all wfd line 0 (String.length line) with
                    | () -> ()
                    | exception Unix.Unix_error _ ->
                        worker_death t ~now w "ping write failed")))
      | _ -> ())
    t.workers;
  deliver_delayed t ~now;
  hedge_and_retransmit t ~now;
  if t.parked <> [] && Array.exists admits t.workers then flush_parked t ~now

(* ------------------------------------------------------------------ *)
(* Client side *)

let handle_request t ~now client line =
  let line = String.trim line in
  if line <> "" then
    match Protocol.decode_incoming_line line with
    | Error reason ->
        client_respond client
          (Protocol.Error
             {
               id = Protocol.request_id_of_line line;
               code = Protocol.code_bad_request;
               reason;
             })
    | Ok (Protocol.Ping { id }) ->
        (* Answered by the router itself: a pong means the routing tier
           is up, which is what a client probing the cluster asks. *)
        client_respond client (Protocol.Pong { id })
    | Ok (Protocol.Verify req) ->
        let p =
          {
            pclient = client;
            orig_id = req.Protocol.id;
            pline = line;
            pkey = routing_key t req.Protocol.cfg;
            attempts = 0;
            legs = [];
            sent_at = now;
            hedge_sent = false;
            provisional = None;
          }
        in
        dispatch t ~now p

let handle_client_read t ~now scratch c =
  match Unix.read c.cfd scratch 0 (Bytes.length scratch) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> c.cclosed <- true
  | 0 -> c.cclosed <- true
  | n ->
      Buffer.add_subbytes c.cbuf scratch 0 n;
      drain_lines c.cbuf (handle_request t ~now c)

(* ------------------------------------------------------------------ *)
(* The loop *)

let cancel_all t reason =
  (* A hedged request holds one inflight entry per leg; cancel each
     request once. *)
  let cancelled = ref [] in
  Hashtbl.iter
    (fun _ p ->
      if not (List.memq p !cancelled) then begin
        cancelled := p :: !cancelled;
        client_respond p.pclient
          (Protocol.Cancelled { id = p.orig_id; reason })
      end)
    t.inflight;
  Hashtbl.reset t.inflight;
  List.iter
    (fun p ->
      client_respond p.pclient
        (Protocol.Cancelled { id = p.orig_id; reason }))
    t.parked;
  t.parked <- []

let loop t =
  let clients = ref [] in
  let scratch = Bytes.create 65536 in
  let running = ref true in
  let listener_open = ref true in
  let stop_deadline = ref infinity in
  while !running do
    let now = Unix.gettimeofday () in
    tick t ~now;
    let dead, live = List.partition (fun c -> c.cclosed) !clients in
    List.iter
      (fun c -> try Unix.close c.cfd with Unix.Unix_error _ -> ())
      dead;
    clients := live;
    (* Drain exit: stopped, and nothing left to answer (or the grace
       period ran out, in which case the leftovers get cancelled). *)
    if Atomic.get t.stopping then begin
      if !listener_open then begin
        listener_open := false;
        stop_deadline := now +. t.grace;
        try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
      end;
      if Hashtbl.length t.inflight = 0 && t.parked = [] then running := false
      else if now > !stop_deadline then begin
        cancel_all t "shutting down";
        running := false
      end
    end;
    if !running then begin
      let worker_fds =
        Array.to_list t.workers
        |> List.concat_map (fun w ->
               match w.state with
               | Starting { proc; _ } -> [ (proc.Worker.stdout, `Stdout w) ]
               | Live { proc; wfd; _ } ->
                   [ (proc.Worker.stdout, `Stdout w); (wfd, `Conn w) ]
               | Idle _ | Gone -> [])
      in
      let client_fds = List.map (fun c -> (c.cfd, `Client c)) !clients in
      let read_fds =
        t.pipe_r
        :: (if !listener_open then [ t.listen_fd ] else [])
        @ List.map fst worker_fds @ List.map fst client_fds
      in
      match Unix.select read_fds [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          let now = Unix.gettimeofday () in
          if List.mem t.pipe_r ready then begin
            let b = Bytes.create 8 in
            ignore (try Unix.read t.pipe_r b 0 8 with Unix.Unix_error _ -> 0)
          end;
          if !listener_open && List.mem t.listen_fd ready then begin
            match Unix.accept t.listen_fd with
            | exception Unix.Unix_error _ -> ()
            | fd, _ ->
                clients :=
                  { cfd = fd; cbuf = Buffer.create 256; cclosed = false }
                  :: !clients
          end;
          List.iter
            (fun (fd, tag) ->
              if List.mem fd ready then
                match tag with
                | `Stdout w -> handle_worker_stdout t ~now scratch w
                | `Conn w -> handle_worker_conn t ~now scratch w)
            worker_fds;
          List.iter
            (fun (fd, tag) ->
              if List.mem fd ready then
                match tag with
                | `Client c ->
                    if not c.cclosed then handle_client_read t ~now scratch c)
            client_fds
    end
  done;
  (* Shut the fleet down and release everything. *)
  Array.iter
    (fun w ->
      match w.state with
      | Starting { proc; _ } -> Worker.terminate proc
      | Live { proc; wfd; _ } ->
          (try Unix.close wfd with Unix.Unix_error _ -> ());
          Worker.terminate proc
      | Idle _ | Gone -> ())
    t.workers;
  List.iter
    (fun c -> try Unix.close c.cfd with Unix.Unix_error _ -> ())
    !clients;
  if !listener_open then
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  try Unix.close t.pipe_w with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let bind_listen addr =
  match (addr : Server.addr) with
  | Server.Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Server.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> raise (Unix.Unix_error (Unix.EINVAL, "bind", host)))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 64;
      fd

let start ?(vnodes = 512) ?(supervisor = Resilience.Supervisor.default)
    ?(max_restarts = 5) ?(restart_window_s = 30.0) ?(health_interval = 0.5)
    ?(health_timeout = 3.0) ?(start_timeout = 10.0) ?(grace = 10.0)
    ?kill_after ?(faults = Faults.disabled) ?(hedge_ms = 0)
    ?(breaker_window = 0) ?(on_event = fun (_ : event) -> ()) ~exe
    ~worker_args ~workers addr =
  if workers < 1 then invalid_arg "Router.start: workers < 1";
  if hedge_ms < 0 then invalid_arg "Router.start: hedge_ms < 0";
  if breaker_window < 0 then invalid_arg "Router.start: breaker_window < 0";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = bind_listen addr in
  let bound =
    match (addr : Server.addr) with
    | Server.Tcp (host, 0) -> (
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, port) -> Server.Tcp (host, port)
        | _ -> addr)
    | _ -> addr
  in
  let pipe_r, pipe_w = Unix.pipe () in
  let names = List.init workers (Printf.sprintf "w%d") in
  let mk name =
    {
      wname = name;
      state = Idle { until = 0.0 };  (* due immediately *)
      gate =
        Resilience.Supervisor.Restarts.create ~max_restarts
          ~window_s:restart_window_s supervisor;
      breaker =
        (if breaker_window = 0 then None
         else Some (Breaker.create ~window:breaker_window ()));
    }
  in
  let t =
    {
      listen_fd;
      bound;
      pipe_r;
      pipe_w;
      stopping = Atomic.make false;
      finished = Atomic.make false;
      exe;
      worker_args;
      workers = Array.of_list (List.map mk names);
      ring = Ring.create ~vnodes names;
      inflight = Hashtbl.create 64;
      parked = [];
      qseq = 0;
      keys = Hashtbl.create 16;
      kill_after;
      total_forwarded = 0;
      health_interval;
      health_timeout;
      start_timeout;
      grace;
      faults;
      hedge_s = float_of_int hedge_ms /. 1000.;
      delayed = [];
      on_event;
      stats_lock = Mutex.create ();
      st_forwarded = Hashtbl.create 8;
      st_rerouted = 0;
      st_restarts = 0;
      st_hedged = 0;
      st_breaker_opens = 0;
      join_lock = Mutex.create ();
      loop_domain = None;
    }
  in
  t.loop_domain <-
    Some
      (Domain.spawn (fun () ->
           Fun.protect
             ~finally:(fun () -> Atomic.set t.finished true)
             (fun () -> loop t)));
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then
    try ignore (Unix.write_substring t.pipe_w "x" 0 1)
    with Unix.Unix_error _ -> ()

let wait t =
  (* Same poll-then-join dance as Server.wait: keep the main domain at
     safepoints so signal handlers still run while we wait. *)
  while not (Atomic.get t.finished) do
    Unix.sleepf 0.05
  done;
  Mutex.lock t.join_lock;
  (match t.loop_domain with
  | None -> ()
  | Some d ->
      t.loop_domain <- None;
      Domain.join d);
  Mutex.unlock t.join_lock

let bound_addr t = t.bound

let stats t =
  Mutex.lock t.stats_lock;
  let forwarded =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.st_forwarded [])
  in
  let s =
    {
      forwarded;
      rerouted = t.st_rerouted;
      restarts = t.st_restarts;
      hedged = t.st_hedged;
      breaker_opens = t.st_breaker_opens;
    }
  in
  Mutex.unlock t.stats_lock;
  s
