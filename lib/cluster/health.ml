(* Per-worker liveness bookkeeping — see the interface. *)

type t = {
  name : string;
  interval : float;
  timeout : float;
  mutable seq : int;
  mutable last_ping : float;  (** when the outstanding ping was sent *)
  mutable last_seen : float;  (** last pong (or [reset]) *)
  mutable outstanding : string option;
}

let create ?(interval = 1.0) ?(timeout = 3.0) ~now name =
  if timeout <= interval then
    invalid_arg "Health.create: timeout must exceed interval";
  {
    name;
    interval;
    timeout;
    seq = 0;
    last_ping = now;
    last_seen = now;
    outstanding = None;
  }

let ping_id t = Printf.sprintf "hb:%s:%d" t.name t.seq

let is_ping_id id =
  String.length id >= 3 && String.sub id 0 3 = "hb:"

let next_ping ~now t =
  match t.outstanding with
  | Some _ -> None  (* one probe in flight at a time *)
  | None ->
      if now -. t.last_ping >= t.interval then begin
        t.seq <- t.seq + 1;
        t.last_ping <- now;
        let id = ping_id t in
        t.outstanding <- Some id;
        Some id
      end
      else None

let pong ~now t id =
  if t.outstanding = Some id then begin
    t.outstanding <- None;
    t.last_seen <- now
  end

let overdue ~now t = now -. t.last_seen > t.timeout

let reset ~now t =
  t.outstanding <- None;
  t.last_ping <- now;
  t.last_seen <- now
